// Distributed TPC-H walkthrough: runs a query on the simulated 10-node
// cluster under all three transport configurations and prints the result
// table plus per-transport execution times (the Fig. 17 mechanism, one
// query at a time).
//
//   $ ./examples/tpch_query [query-number]     (default: 5)
#include <cstdio>
#include <cstdlib>

#include "tpch/cluster.h"

using namespace hatrpc;
using sim::Task;

namespace {

void print_result(const tpch::QueryResult& r) {
  for (const auto& col : r.columns) std::printf("%-22s", col.c_str());
  std::printf("\n");
  size_t shown = 0;
  for (const tpch::Row& row : r.rows) {
    if (++shown > 8) {
      std::printf("... (%zu rows total)\n", r.rows.size());
      break;
    }
    for (const tpch::Value& v : row) {
      if (std::holds_alternative<int64_t>(v))
        std::printf("%-22lld", (long long)std::get<int64_t>(v));
      else if (std::holds_alternative<double>(v))
        std::printf("%-22.2f", std::get<double>(v));
      else
        std::printf("%-22s", std::get<std::string>(v).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  int qid = argc > 1 ? std::atoi(argv[1]) : 5;
  if (qid < 1 || qid > 22) {
    std::fprintf(stderr, "query number must be 1..22\n");
    return 2;
  }
  const tpch::Query& q = tpch::all_queries()[size_t(qid - 1)];
  std::printf("TPC-H Q%d (%s), SF 0.01, 1 coordinator + 9 workers\n\n",
              qid, q.name);

  tpch::QueryResult result;
  for (auto mode : {tpch::TpchMode::kThriftIpoib,
                    tpch::TpchMode::kHatService,
                    tpch::TpchMode::kHatFunction}) {
    sim::Simulator sim;
    tpch::TpchCluster cluster(sim, 9, tpch::DbgenConfig{.scale_factor = 0.01},
                              mode);
    sim.spawn([](tpch::TpchCluster& cluster, int qid,
                 tpch::QueryResult& result) -> Task<void> {
      result = co_await cluster.run_query(qid);
      cluster.stop();
    }(cluster, qid, result));
    sim.run();
    std::printf("%-16s %8.3f ms  (%llu partial bytes gathered)\n",
                std::string(tpch::to_string(mode)).c_str(),
                sim::to_micros(cluster.last_elapsed()) / 1e3,
                (unsigned long long)cluster.last_partial_bytes());
  }
  std::printf("\nresult (identical across transports):\n");
  print_result(result);
  return 0;
}
