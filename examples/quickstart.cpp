// Quickstart: define a service in HatRPC IDL (examples/echo.hatrpc), let
// hatrpc-gen produce the stubs at build time, then run a hint-accelerated
// RPC over the simulated RDMA cluster.
//
//   $ ./examples/quickstart
//
// Shows: generated client/handler pairing, the hierarchical hint map, the
// plan the Figure-6 selection derives per function, and a few timed calls.
#include <cstdio>

#include "core/engine.h"
#include "echo_gen.h"

using namespace hatrpc;
using sim::Task;
using namespace std::chrono_literals;

namespace {

class EchoHandler : public demo::EchoIf {
 public:
  explicit EchoHandler(verbs::Node& node) : node_(node) {}

  Task<std::string> Ping(const std::string& msg) override {
    co_await node_.cpu().compute(200ns);
    co_return "pong: " + msg;
  }

  Task<std::string> Post(const std::string& blob) override {
    co_await node_.cpu().compute(2us);
    co_return "stored " + std::to_string(blob.size()) + " bytes";
  }

 private:
  verbs::Node& node_;
};

const char* poll_name(sim::PollMode m) {
  return m == sim::PollMode::kBusy ? "busy" : "event";
}

}  // namespace

int main() {
  sim::Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* client_node = fabric.add_node();
  verbs::Node* server_node = fabric.add_node();

  // Server: hints come from the IDL; the handler is plain application code.
  core::HatServer server(*server_node, demo::Echo_hints(), {});
  EchoHandler handler(*server_node);
  demo::register_Echo(server.dispatcher(), handler);

  // Client: one connection, per-function plans derived from the hints.
  core::HatConnection conn(*client_node, server);
  for (const char* fn : {"Ping", "Post"}) {
    const hint::Plan& plan = conn.plan_for(fn);
    std::printf("%-5s -> %-18s client=%s server=%s payload=%uB\n", fn,
                std::string(proto::to_string(plan.protocol)).c_str(),
                poll_name(plan.client_poll), poll_name(plan.server_poll),
                plan.expected_payload);
  }

  sim.spawn([](sim::Simulator& sim, core::HatConnection& conn,
               core::HatServer& server) -> Task<void> {
    demo::EchoClient client(conn);

    sim::Time t0 = sim.now();
    std::string r1 = co_await client.Ping("hello");
    std::printf("Ping(\"hello\") = \"%s\"  [%.2f us]\n", r1.c_str(),
                sim::to_micros(sim.now() - t0));

    std::string blob(64 * 1024, 'x');
    t0 = sim.now();
    std::string r2 = co_await client.Post(blob);
    std::printf("Post(64KB)    = \"%s\"  [%.2f us]\n", r2.c_str(),
                sim::to_micros(sim.now() - t0));

    server.stop();
  }(sim, conn, server));
  sim.run();
  std::printf("simulation complete at t=%.2f us\n",
              sim::to_micros(sim.now()));
  return 0;
}
