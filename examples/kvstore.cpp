// HatKV walkthrough: the co-designed key-value store of paper §4.4 running
// a small YCSB-A burst, printing per-operation latding/throughput and the
// hint-derived backend tuning (reader table, commit strategy).
//
//   $ ./examples/kvstore
#include <cstdio>

#include "kv/hatkv.h"
#include "ycsb/ycsb.h"

using namespace hatrpc;
using sim::Task;

int main() {
  sim::Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* server_node = fabric.add_node();
  kv::HatKVServer server(*server_node);

  std::printf("HatKV backend tuned from hints:\n");
  std::printf("  max_readers  = %u (from concurrency=128 hint)\n",
              server.handler().config().max_readers);
  std::printf("  sync_commits = %s (service goal is throughput)\n\n",
              server.handler().config().sync_commits ? "yes"
                                                     : "no (group commit)");

  constexpr int kClients = 16;
  constexpr int kOps = 40;
  std::vector<std::unique_ptr<core::HatConnection>> conns;
  ycsb::StatsCollector stats;
  sim::WaitGroup wg(sim);
  wg.add(kClients);
  for (int c = 0; c < kClients; ++c) {
    conns.push_back(std::make_unique<core::HatConnection>(
        *fabric.add_node(), server.server()));
    sim.spawn([](sim::Simulator& sim, core::HatConnection& conn, int c,
                 ycsb::StatsCollector& stats, sim::WaitGroup& wg)
                  -> Task<void> {
      hatkv::HatKVClient client(conn);
      ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::workload_a();
      spec.record_count = 500;
      ycsb::WorkloadGenerator gen(spec, uint64_t(c) + 1);
      sim::Rng vrng(uint64_t(c) + 100);
      for (uint64_t k = uint64_t(c); k < spec.record_count; k += kClients)
        co_await client.Put(gen.key_of(k), gen.make_value(vrng));
      for (int i = 0; i < kOps; ++i) {
        ycsb::Op op = gen.next();
        sim::Time t0 = sim.now();
        switch (op.type) {
          case ycsb::OpType::kGet:
            co_await client.Get(op.keys[0]);
            break;
          case ycsb::OpType::kPut:
            co_await client.Put(op.keys[0], op.values[0]);
            break;
          case ycsb::OpType::kMultiGet:
            co_await client.MultiGet(op.keys);
            break;
          case ycsb::OpType::kMultiPut: {
            std::vector<hatkv::KVPair> pairs(op.keys.size());
            for (size_t j = 0; j < op.keys.size(); ++j) {
              pairs[j].key = op.keys[j];
              pairs[j].value = op.values[j];
            }
            co_await client.MultiPut(pairs);
            break;
          }
        }
        stats.record(op.type, sim.now() - t0);
      }
      wg.done();
    }(sim, *conns.back(), c, stats, wg));
  }
  sim::Time end{};
  sim.spawn([](sim::Simulator& sim, sim::WaitGroup& wg, sim::Time& end,
               kv::HatKVServer& server) -> Task<void> {
    co_await wg.wait();
    end = sim.now();
    server.stop();
  }(sim, wg, end, server));
  sim.run();

  std::printf("%d clients x %d YCSB-A ops in %.2f ms of simulated time:\n",
              kClients, kOps, sim::to_micros(end) / 1e3);
  for (ycsb::OpType t : ycsb::kAllOps) {
    std::printf("  %-9s count=%-5llu mean=%7.2f us  %.0f kops/s\n",
                std::string(ycsb::to_string(t)).c_str(),
                static_cast<unsigned long long>(stats.count(t)),
                sim::to_micros(stats.mean_latency(t)),
                stats.throughput_kops(t, end));
  }
  const kv::EnvStats& es = server.handler().env().stats();
  std::printf("mdblite: %llu commits, %llu page reads, %llu page writes, "
              "%llu pages reclaimed\n",
              static_cast<unsigned long long>(es.commits),
              static_cast<unsigned long long>(es.page_reads),
              static_cast<unsigned long long>(es.page_writes),
              static_cast<unsigned long long>(es.reclaimed));
  return 0;
}
