// Hybrid transports (paper §3.3 / §5.5): one service where the hot data
// path runs over RDMA while a legacy/administrative function is hinted
// onto TCP — both directed purely by hints, no application code changes.
// Also contrasts the same data function over the two transports.
//
//   $ ./examples/hybrid_transport
#include <cstdio>

#include "core/engine.h"

using namespace hatrpc;
using sim::Task;
using namespace std::chrono_literals;

namespace {

core::Buffer bytes_of(const std::string& s) {
  auto* p = reinterpret_cast<const std::byte*>(s.data());
  return core::Buffer(p, p + s.size());
}

hint::ServiceHints hints_with(bool query_on_tcp) {
  using namespace hatrpc::hint;
  ServiceHints h;
  h.service().add(Side::kShared, Key::kConcurrency,
                  parse_value(Key::kConcurrency, "4"));
  h.function("Query").add(Side::kShared, Key::kPayloadSize,
                          parse_value(Key::kPayloadSize, "2048"));
  h.function("Query").add(Side::kShared, Key::kPerfGoal,
                          parse_value(Key::kPerfGoal, "latency"));
  if (query_on_tcp)
    h.function("Query").add(Side::kShared, Key::kTransport,
                            parse_value(Key::kTransport, "tcp"));
  // Admin traffic is rare and latency-insensitive: keep it off the RDMA
  // resources entirely.
  h.function("AdminDump").add(Side::kShared, Key::kTransport,
                              parse_value(Key::kTransport, "tcp"));
  return h;
}

sim::Duration measure(bool query_on_tcp) {
  sim::Simulator sim;
  verbs::Fabric fabric(sim);
  thrift::SocketNet net(fabric);
  verbs::Node* client_node = fabric.add_node();
  verbs::Node* server_node = fabric.add_node();
  core::HatServer server(*server_node, hints_with(query_on_tcp), {}, &net);
  server.dispatcher().register_method(
      "Query", [&](core::View) -> Task<core::Buffer> {
        co_await server_node->cpu().compute(500ns);
        co_return core::Buffer(2048, std::byte{0x7});
      });
  server.dispatcher().register_method(
      "AdminDump", [&](core::View) -> Task<core::Buffer> {
        co_return core::Buffer(4096, std::byte{0x1});
      });
  core::HatConnection conn(*client_node, server);
  sim::Duration mean{};
  sim.spawn([](sim::Simulator& sim, core::HatConnection& conn,
               core::HatServer& server, sim::Duration& mean) -> Task<void> {
    co_await conn.call("AdminDump", {});  // legacy path works alongside
    sim::Time t0 = sim.now();
    constexpr int kN = 40;
    for (int i = 0; i < kN; ++i)
      co_await conn.call("Query", bytes_of("select *"));
    mean = (sim.now() - t0) / kN;
    server.stop();
  }(sim, conn, server, mean));
  sim.run();
  return mean;
}

}  // namespace

int main() {
  sim::Duration rdma = measure(false);
  sim::Duration tcp = measure(true);
  std::printf("Query() mean latency:\n");
  std::printf("  transport=rdma (hint) : %8.2f us\n", sim::to_micros(rdma));
  std::printf("  transport=tcp  (hint) : %8.2f us\n", sim::to_micros(tcp));
  std::printf("RDMA speedup over IPoIB for the same function: %.1fx\n",
              sim::to_seconds(tcp) / sim::to_seconds(rdma));
  std::printf("(AdminDump stayed on TCP in both runs — hybrid transports "
              "per function, zero code changes)\n");
  return 0;
}
