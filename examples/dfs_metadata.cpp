// The motivating scenario of paper §3.3: a distributed file system whose
// RPC service is heterogeneous — metadata lookups need low latency, chunk
// reads/writes need high throughput, and heartbeats should cost nothing.
// One service, three very different functions, three different plans, all
// on one connection (optimization isolation).
//
//   $ ./examples/dfs_metadata
#include <cstdio>
#include <cstring>

#include "core/engine.h"

using namespace hatrpc;
using sim::Task;
using namespace std::chrono_literals;

namespace {

hint::ServiceHints dfs_hints() {
  using namespace hatrpc::hint;
  ServiceHints h;
  // Service defaults: a busy file server with many clients.
  h.service().add(Side::kShared, Key::kConcurrency,
                  parse_value(Key::kConcurrency, "64"));
  h.service().add(Side::kShared, Key::kPerfGoal,
                  parse_value(Key::kPerfGoal, "throughput"));
  // Stat(): small, latency-critical; clients may busy-poll, the loaded
  // server must not (lateral split).
  h.function("Stat").add(Side::kShared, Key::kPerfGoal,
                         parse_value(Key::kPerfGoal, "latency"));
  h.function("Stat").add(Side::kShared, Key::kPayloadSize,
                         parse_value(Key::kPayloadSize, "256"));
  h.function("Stat").add(Side::kServer, Key::kPolling,
                         parse_value(Key::kPolling, "event"));
  // ReadChunk(): large, throughput-oriented.
  h.function("ReadChunk").add(Side::kShared, Key::kPayloadSize,
                              parse_value(Key::kPayloadSize, "256k"));
  // Heartbeat(): periodic and unimportant — low priority.
  h.function("Heartbeat").add(Side::kShared, Key::kPriority,
                              parse_value(Key::kPriority, "low"));
  return h;
}

core::Buffer bytes_of(const std::string& s) {
  auto* p = reinterpret_cast<const std::byte*>(s.data());
  return core::Buffer(p, p + s.size());
}

const char* poll_name(sim::PollMode m) {
  return m == sim::PollMode::kBusy ? "busy" : "event";
}

}  // namespace

int main() {
  sim::Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* client_node = fabric.add_node();
  verbs::Node* server_node = fabric.add_node();

  core::HatServer server(*server_node, dfs_hints(), {});
  server.dispatcher().register_method(
      "Stat", [&](core::View) -> Task<core::Buffer> {
        co_await server_node->cpu().compute(400ns);  // inode lookup
        co_return bytes_of("size=4096 mode=0644 mtime=1636000000");
      });
  server.dispatcher().register_method(
      "ReadChunk", [&](core::View) -> Task<core::Buffer> {
        co_await server_node->cpu().compute(5us);  // page-cache read
        co_return core::Buffer(256 << 10, std::byte{0x42});
      });
  server.dispatcher().register_method(
      "Heartbeat", [&](core::View) -> Task<core::Buffer> {
        co_return bytes_of("ok");
      });

  core::HatConnection conn(*client_node, server);
  std::printf("per-function plans derived from the hint hierarchy:\n");
  for (const char* fn : {"Stat", "ReadChunk", "Heartbeat"}) {
    const hint::Plan& plan = conn.plan_for(fn);
    std::printf("  %-10s -> %-18s client=%-5s server=%-5s\n", fn,
                std::string(proto::to_string(plan.protocol)).c_str(),
                poll_name(plan.client_poll), poll_name(plan.server_poll));
  }

  sim.spawn([](sim::Simulator& sim, core::HatConnection& conn,
               core::HatServer& server) -> Task<void> {
    // A metadata-heavy burst with periodic chunk reads and heartbeats —
    // the §3.3 workload existing one-size-fits-all RPCs serve poorly.
    sim::Duration stat_total{}, chunk_total{};
    int stats = 0, chunks = 0;
    for (int i = 0; i < 60; ++i) {
      sim::Time t0 = sim.now();
      if (i % 12 == 11) {
        co_await conn.call("ReadChunk", bytes_of("chunk-7"));
        chunk_total += sim.now() - t0;
        ++chunks;
      } else if (i % 20 == 19) {
        co_await conn.call("Heartbeat", {});
      } else {
        co_await conn.call("Stat", bytes_of("/data/file.txt"));
        stat_total += sim.now() - t0;
        ++stats;
      }
    }
    std::printf("\nStat      x%-3d mean %.2f us (latency plan)\n", stats,
                sim::to_micros(stat_total / stats));
    std::printf("ReadChunk x%-3d mean %.2f us (256 KB, throughput plan)\n",
                chunks, sim::to_micros(chunk_total / chunks));
    std::printf("distinct channels on this connection: %zu\n",
                conn.channel_count());
    server.stop();
  }(sim, conn, server));
  sim.run();
  return 0;
}
