// The Figure-6 design-space mapping: resolved hints -> an execution plan
// (RDMA protocol, polling discipline per side, NUMA placement, transport).
// This is the protocol-selection algorithm of §4.3, derived from the §3.2
// characterization.
#pragma once

#include "hint/hint.h"
#include "proto/channel.h"

namespace hatrpc::hint {

/// Cluster facts the mapping needs (paper testbed defaults).
struct SelectionParams {
  uint32_t numa_node_cores = 16;  // under-subscription bound (Fig. 5/12)
  uint32_t server_cores = 28;     // full-subscription bound
  uint32_t small_msg_max = 4096;  // eager/rendezvous switch (§4.3, 4 KB)
};

/// The per-function execution plan the RDMA engine caches (§4.3: "passing
/// the pointer and caching the RPC function type").
struct Plan {
  proto::ProtocolKind protocol = proto::ProtocolKind::kHybridEagerRndv;
  sim::PollMode client_poll = sim::PollMode::kBusy;
  sim::PollMode server_poll = sim::PollMode::kBusy;
  bool numa_bind = false;          // bind client threads under-subscription
  Transport transport = Transport::kRdma;
  uint32_t expected_payload = 0;   // plumbed to READ-sized fetches

  bool operator==(const Plan&) const = default;
};

enum class Subscription : uint8_t { kUnder, kFull, kOver };

Subscription classify_subscription(uint32_t concurrency,
                                   const SelectionParams& p);

/// Maps one function's resolved hints to a plan.
Plan select_plan(const ServiceHints& hints, const std::string& function,
                 const SelectionParams& params);

/// Core mapping on already-extracted knobs (exposed for tests and for the
/// Fig. 6 design-space printer).
Plan select_plan_raw(PerfGoal goal, uint32_t concurrency,
                     uint32_t payload_bytes, bool numa_hint,
                     const SelectionParams& params);

}  // namespace hatrpc::hint
