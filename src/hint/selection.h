// The Figure-6 design-space mapping: resolved hints -> an execution plan
// (RDMA protocol, polling discipline per side, NUMA placement, transport).
// This is the protocol-selection algorithm of §4.3, derived from the §3.2
// characterization.
#pragma once

#include "hint/hint.h"
#include "proto/channel.h"

namespace hatrpc::hint {

/// Cluster facts the mapping needs (paper testbed defaults).
struct SelectionParams {
  uint32_t numa_node_cores = 16;  // under-subscription bound (Fig. 5/12)
  uint32_t server_cores = 28;     // full-subscription bound
  uint32_t small_msg_max = 4096;  // eager/rendezvous switch (§4.3, 4 KB)
};

/// The per-function execution plan the RDMA engine caches (§4.3: "passing
/// the pointer and caching the RPC function type").
struct Plan {
  proto::ProtocolKind protocol = proto::ProtocolKind::kHybridEagerRndv;
  sim::PollMode client_poll = sim::PollMode::kBusy;
  sim::PollMode server_poll = sim::PollMode::kBusy;
  bool numa_bind = false;          // bind client threads under-subscription
  Transport transport = Transport::kRdma;
  uint32_t expected_payload = 0;   // plumbed to READ-sized fetches
  /// Sliding-window depth the adaptive controller manages; 0 = unmanaged
  /// (the channel keeps whatever its ChannelConfig says). Static selection
  /// leaves this at 0, so pre-adaptive plans compare equal as before.
  uint32_t window = 0;

  bool operator==(const Plan&) const = default;
};

enum class Subscription : uint8_t { kUnder, kFull, kOver };

Subscription classify_subscription(uint32_t concurrency,
                                   const SelectionParams& p);

/// Maps one function's resolved hints to a plan.
Plan select_plan(const ServiceHints& hints, const std::string& function,
                 const SelectionParams& params);

/// Core mapping on already-extracted knobs (exposed for tests and for the
/// Fig. 6 design-space printer).
Plan select_plan_raw(PerfGoal goal, uint32_t concurrency,
                     uint32_t payload_bytes, bool numa_hint,
                     const SelectionParams& params);

// ---- Re-plan entry points (adaptive hints, ROADMAP item 4) --------------
// The static map above answers "what does the hint triple predict"; these
// answer "what do the measured counters say", re-selecting only the fields
// a live channel can actually change without invalidating its hints:
//   * protocol family — eager-family <-> rendezvous as the payload EWMA
//     crosses small_msg_max (§4.3's 4 KB switch, applied online). The
//     pre-known-buffer protocols (Direct-*/bypass) are left alone: their
//     reserved buffers already serve every size the hint promised.
//   * polling — busy while the observed concurrency under-subscribes the
//     core budget, event once it over-subscribes (the Fig-5 collapse).
// Window management lives in hint::AdaptiveController (it needs stall and
// idle-slot ratios, not just point classifications).

/// Live observations, typically sourced from an obs::FunctionFootprint.
struct Observed {
  double payload_ewma = 0;   // max(req, resp) bytes, smoothed
  double inflight_ewma = 0;  // aggregate in-flight calls, smoothed
};

/// Classified core: the caller has already decided (with hysteresis) what
/// the payload and subscription regimes are.
Plan replan_classified(const Plan& current, PerfGoal goal, bool payload_large,
                       Subscription sub, const SelectionParams& params);

/// Convenience entry: classifies the raw EWMAs with the static thresholds
/// (no hysteresis — the controller latches its own bands).
Plan replan_observed(const Plan& current, PerfGoal goal, const Observed& o,
                     const SelectionParams& params);

}  // namespace hatrpc::hint
