#include "hint/adaptive.h"

#include <algorithm>
#include <utility>

namespace hatrpc::hint {

namespace {

/// The prior plan normalized against the channel config it will drive:
/// static plans leave window at 0 ("unmanaged"), the controller manages
/// whatever the config allocated.
Plan normalized(Plan prior, const proto::ChannelConfig& cfg) {
  if (prior.window == 0) prior.window = cfg.window == 0 ? 1 : cfg.window;
  return prior;
}

}  // namespace

// ---- AdaptiveController --------------------------------------------------

AdaptiveController::AdaptiveController(sim::Simulator& sim, Plan prior,
                                       const AdaptiveParams& params,
                                       obs::FunctionFootprint* fp)
    : sim_(sim), p_(params), plan_(prior), fp_(fp ? fp : &own_fp_) {
  if (plan_.window == 0) plan_.window = 1;
  // Seed the latches from the hint's promises: the static plan IS the
  // prior, so the first decision only fires once the EWMAs leave its bands.
  payload_large_ = plan_.expected_payload > p_.selection.small_msg_max;
  sub_ = classify_subscription(std::max<uint32_t>(p_.prior_concurrency, 1),
                               p_.selection);
}

void AdaptiveController::observe(const obs::CallSample& s) {
  fp_->record(s, p_.alpha);
  ++interval_calls_;
  if (s.stalled) ++interval_stalls_;
}

void AdaptiveController::update_latches() {
  // Payload regime: small <-> large around the 4 KB switch, with a
  // relative dead band so a workload sitting AT the threshold stays put.
  const double pl = fp_->payload_ewma();
  const double sm = static_cast<double>(p_.selection.small_msg_max);
  if (payload_large_) {
    if (pl < sm * (1.0 - p_.hysteresis)) payload_large_ = false;
  } else if (pl > sm * (1.0 + p_.hysteresis)) {
    payload_large_ = true;
  }

  // Subscription regime: the same latch-with-bands discipline around the
  // two core budgets (under <= numa_node_cores < full <= server_cores).
  const double infl = fp_->inflight_ewma();
  const double under_hi = p_.selection.numa_node_cores * (1.0 + p_.hysteresis);
  const double under_lo = p_.selection.numa_node_cores * (1.0 - p_.hysteresis);
  const double over_hi = p_.selection.server_cores * (1.0 + p_.hysteresis);
  const double over_lo = p_.selection.server_cores * (1.0 - p_.hysteresis);
  switch (sub_) {
    case Subscription::kUnder:
      if (infl > over_hi) sub_ = Subscription::kOver;
      else if (infl > under_hi) sub_ = Subscription::kFull;
      break;
    case Subscription::kFull:
      if (infl > over_hi) sub_ = Subscription::kOver;
      else if (infl < under_lo) sub_ = Subscription::kUnder;
      break;
    case Subscription::kOver:
      if (infl < under_lo) sub_ = Subscription::kUnder;
      else if (infl < over_lo) sub_ = Subscription::kFull;
      break;
  }
}

uint32_t AdaptiveController::next_window(uint64_t calls,
                                         uint64_t stalls) const {
  uint32_t w = plan_.window == 0 ? 1 : plan_.window;
  const double ratio =
      calls == 0 ? 0.0 : static_cast<double>(stalls) / calls;
  if (ratio > p_.stall_grow) {
    w *= 2;  // callers are queueing on the window — open it up
  } else if (ratio < p_.idle_shrink && fp_->inflight_ewma() < w / 2.0) {
    w /= 2;  // most slots idle — hand the ring memory back
  }
  return std::clamp(w, std::max<uint32_t>(p_.min_window, 1), p_.max_window);
}

std::optional<Plan> AdaptiveController::maybe_replan() {
  if (frozen_) return std::nullopt;
  if (interval_calls_ < p_.min_samples) return std::nullopt;
  update_latches();
  const uint64_t calls = interval_calls_;
  const uint64_t stalls = interval_stalls_;
  interval_calls_ = interval_stalls_ = 0;
  // Cooldown gates ADOPTION, not observation: the latches above already
  // absorbed the interval, so the next attempt decides from fresh data.
  if (switches_ > 0 && sim_.now() - last_switch_ < p_.cooldown)
    return std::nullopt;

  Plan next = replan_classified(plan_, p_.goal, payload_large_, sub_,
                                p_.selection);
  next.window = next_window(calls, stalls);
  if (next.protocol == plan_.protocol &&
      next.client_poll == plan_.client_poll &&
      next.server_poll == plan_.server_poll && next.window == plan_.window)
    return std::nullopt;
  plan_ = next;
  ++switches_;
  last_switch_ = sim_.now();
  return next;
}

// ---- AdaptiveChannel -----------------------------------------------------

AdaptiveChannel::AdaptiveChannel(verbs::Node& client, verbs::Node& server,
                                 proto::Handler handler,
                                 proto::ChannelConfig cfg, Plan prior,
                                 const AdaptiveParams& params,
                                 obs::FunctionFootprint* fp)
    : cl_(client), sv_(server), handler_(std::move(handler)), base_cfg_(cfg),
      sim_(client.fabric().simulator()),
      ctrl_(client.fabric().simulator(), normalized(prior, cfg), params, fp) {
  // NOTE: no bind_obs() here — the wrapper must not perturb the channel
  // registration sequence a frozen run shares with its static twin.
  const Plan& p0 = ctrl_.plan();
  proto::ChannelConfig c0 = base_cfg_;
  c0.client_poll = p0.client_poll;
  c0.server_poll = p0.server_poll;
  c0.window = p0.window;
  cur_ = std::make_shared<Epoch>(sim_);
  cur_->ch = proto::make_channel(p0.protocol, cl_, sv_, handler_, c0);
}

void AdaptiveChannel::shutdown() {
  cur_->ch->shutdown();
  for (auto& e : retired_) e->ch->shutdown();
}

void AdaptiveChannel::abort() {
  cur_->ch->abort();
  for (auto& e : retired_) e->ch->abort();
}

proto::ChannelStats AdaptiveChannel::stats() const {
  proto::ChannelStats s;
  auto acc = [&s](const Epoch& e) {
    proto::ChannelStats cs = e.ch->stats();
    s.calls += cs.calls;
    s.sends += cs.sends;
    s.writes += cs.writes;
    s.write_imms += cs.write_imms;
    s.reads += cs.reads;
    s.read_retries += cs.read_retries;
    s.client_registered += cs.client_registered;
    s.server_registered += cs.server_registered;
  };
  for (const auto& e : retired_) acc(*e);
  acc(*cur_);
  return s;
}

uint64_t AdaptiveChannel::epoch_stalls(const Epoch& ep) const {
  // Heuristic stall attribution: the per-call delta of the epoch channel's
  // window_stalls counter. Concurrent calls on the same channel can blur
  // who stalled, and a hybrid epoch reports its own (quiet) scope — both
  // only soften the grow signal, never invent one.
  const obs::CounterSet* c = ep.ch->counters();
  return c ? c->get(obs::Ctr::kWindowStalls) : 0;
}

void AdaptiveChannel::leave_epoch(const std::shared_ptr<Epoch>& ep) {
  --ep->inflight;
  if (ep->retired && ep->inflight == 0) ep->drained.set();
}

sim::Task<proto::Buffer> AdaptiveChannel::do_call(proto::View req,
                                                  uint32_t resp_size_hint) {
  auto ep = cur_;  // pin: a swap mid-call must not re-route us
  ++ep->inflight;
  // Epoch-lifetime check: with inflight already raised, the reaper cannot
  // have retired this epoch — a report here means the drain gate broke.
  sim_.rc_read(ep.get(), 0, "AdaptiveChannel.epoch", RC_HERE);
  const uint64_t stalls0 = epoch_stalls(*ep);
  const uint32_t live = ctrl_.call_begin();
  proto::CallResult r = co_await ep->ch->call(req, resp_size_hint);
  ctrl_.call_end();
  leave_epoch(ep);
  const bool stalled = epoch_stalls(*ep) > stalls0;
  ctrl_.observe({req.size(), r ? r->size() : 0, stalled, live});
  if (!ctrl_.frozen()) maybe_apply();
  if (!r) throw r.error();
  co_return std::move(*r);
}

sim::Task<proto::LeasedReply> AdaptiveChannel::do_call_leased(
    proto::View req, uint32_t resp_size_hint) {
  auto ep = cur_;
  ++ep->inflight;
  sim_.rc_read(ep.get(), 0, "AdaptiveChannel.epoch", RC_HERE);
  const uint64_t stalls0 = epoch_stalls(*ep);
  const uint32_t live = ctrl_.call_begin();
  proto::LeasedResult r = co_await ep->ch->call_leased(req, resp_size_hint);
  ctrl_.call_end();
  const bool stalled = epoch_stalls(*ep) > stalls0;
  if (!r) {
    leave_epoch(ep);
    ctrl_.observe({req.size(), 0, stalled, live});
    if (!ctrl_.frozen()) maybe_apply();
    throw r.error();
  }
  proto::LeasedReply reply = std::move(*r);
  ctrl_.observe({req.size(), reply.bytes().size(), stalled, live});
  if (!ctrl_.frozen()) maybe_apply();
  if (!reply.in_place()) {
    leave_epoch(ep);
    co_return reply;
  }
  // An in-place lease points into the epoch's recv ring: the epoch counts
  // it as in flight (blocking its teardown) until the lease is released.
  auto inner = std::make_shared<proto::LeasedReply>(std::move(reply));
  co_return proto::LeasedReply(inner->bytes(), [this, ep, inner]() {
    inner->release();
    leave_epoch(ep);
  });
}

void AdaptiveChannel::maybe_apply() {
  const Plan before = ctrl_.plan();
  std::optional<Plan> next = ctrl_.maybe_replan();
  if (!next) return;
  cl_.counters().add(obs::Ctr::kPlanSwitches);
  if (next->protocol == before.protocol) {
    // Same protocol: polling flips live; the window morphs live too as
    // long as it fits the allocated rings.
    cur_->ch->set_poll_modes(next->client_poll, next->server_poll);
    if (next->window == before.window ||
        cur_->ch->resize_window(next->window))
      return;
  }
  epoch_swap(*next);
}

void AdaptiveChannel::epoch_swap(const Plan& next) {
  proto::ChannelConfig cfg = base_cfg_;
  cfg.client_poll = next.client_poll;
  cfg.server_poll = next.server_poll;
  cfg.window = next.window == 0 ? base_cfg_.window : next.window;
  auto fresh = std::make_shared<Epoch>(sim_);
  fresh->ch = proto::make_channel(next.protocol, cl_, sv_, handler_, cfg);
  auto old = cur_;
  cur_ = std::move(fresh);
  ++epoch_;
  cl_.counters().add(obs::Ctr::kEpochSwaps);
  old->retired = true;
  if (old->inflight == 0) old->drained.set();
  retired_.push_back(old);
  sim_.spawn(reap(std::move(old)));
}

AdaptiveChannel::~AdaptiveChannel() {
  // Epoch objects may share addresses with future allocations: drop their
  // racecheck histories so a recycled address can't inherit a provenance.
  if (cur_) sim_.rc_forget(cur_.get(), 0);
  for (const auto& ep : retired_) sim_.rc_forget(ep.get(), 0);
}

sim::Task<void> AdaptiveChannel::reap(std::shared_ptr<Epoch> old) {
  // In-flight calls (and leases) drain on the old plan; only then does the
  // old epoch's serve loop stop. The object itself stays alive in
  // retired_ so late lease releases still find their rings.
  co_await old->drained.wait();
  old->ch->shutdown();
  // From here on any call pinned to this epoch is a lifetime violation
  // (the drained event is the release/acquire edge ordering this retire
  // after every legal access).
  sim_.rc_retire(old.get(), 0, "AdaptiveChannel.epoch", RC_HERE);
}

std::unique_ptr<AdaptiveChannel> make_adaptive_channel(
    verbs::Node& client, verbs::Node& server, proto::Handler handler,
    proto::ChannelConfig cfg, Plan prior, const AdaptiveParams& params,
    obs::FunctionFootprint* fp) {
  return std::make_unique<AdaptiveChannel>(client, server, std::move(handler),
                                           std::move(cfg), prior, params, fp);
}

}  // namespace hatrpc::hint
