// Adaptive hints (ROADMAP item 4): a per-function runtime controller that
// starts from the static IDL hint's plan as a prior and re-selects the
// protocol, the polling discipline, and the sliding-window depth from live
// counters. The paper's engine trusts the programmer's hints verbatim
// (§4.3); this layer closes the loop for workloads whose behaviour drifts
// from what the hints promised — payload mix shifts across the 4 KB
// eager/rendezvous switch, concurrency crossing the Fig-5 busy-polling
// collapse, windows sized for the wrong depth.
//
// Three moving parts:
//   * obs::FunctionFootprint (src/obs/footprint.h) — payload/in-flight
//     EWMAs plus a live gauge, fed by every completed call.
//   * AdaptiveController — pure decision logic. Hysteresis bands around
//     each threshold (a latched regime only flips when the EWMA leaves the
//     band on the far side) and a cooldown between adopted plans keep the
//     controller from flapping when the workload sits at a boundary.
//   * AdaptiveChannel — an RpcChannel that owns the current epoch's real
//     channel and applies plan changes: polling and window shrinks apply
//     live (set_poll_modes / resize_window never touch in-flight calls);
//     protocol changes and window growth beyond the allocated rings build
//     a NEW channel (epoch swap) while calls in flight on the old epoch
//     drain on the old plan before it is shut down.
//
// Determinism: a frozen controller (freeze()) never adopts a plan, so a
// frozen AdaptiveChannel drives its inner channel exactly like the static
// channel it wraps — same-seed runs produce byte-identical counter dumps.
// AdaptiveChannel itself deliberately does NOT bind an obs channel scope:
// the frozen wrapper must not perturb the registration sequence the static
// twin produces. Plan switches and epoch swaps are charged to the CLIENT
// NODE scope (kPlanSwitches / kEpochSwaps), which stays zero-suppressed
// out of frozen dumps.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "hint/selection.h"
#include "obs/footprint.h"
#include "proto/channel.h"
#include "sim/sync.h"
#include "verbs/verbs.h"

namespace hatrpc::hint {

/// Controller tuning. The defaults favour stability over reaction speed;
/// benches that phase-shift quickly lower min_samples / cooldown.
struct AdaptiveParams {
  SelectionParams selection;
  PerfGoal goal = PerfGoal::kThroughput;
  /// EWMA smoothing weight for the footprint (new += a * (sample - new)).
  double alpha = 0.25;
  /// Relative dead band around every threshold: a latched regime flips
  /// only when the EWMA crosses threshold * (1 +/- hysteresis).
  double hysteresis = 0.25;
  /// Minimum virtual time between two ADOPTED plans (anti-flap).
  sim::Duration cooldown = std::chrono::microseconds(200);
  /// Completed calls per decision interval; no decision before this many.
  uint32_t min_samples = 8;
  /// Window bounds and the stall-driven sizing rule: grow (double) when
  /// the interval's stalls/calls ratio exceeds stall_grow, shrink (halve)
  /// when it is below idle_shrink AND the in-flight EWMA uses less than
  /// half the window (idle slots).
  uint32_t min_window = 1;
  uint32_t max_window = 64;
  double stall_grow = 0.10;
  double idle_shrink = 0.01;
  /// Concurrency prior used to seed the subscription latch before the
  /// first samples arrive (the hint's kConcurrency value).
  uint32_t prior_concurrency = 1;
};

/// Decision logic only — owns (or borrows) a FunctionFootprint and turns
/// its EWMAs into plan re-selections via selection.h's replan_classified.
class AdaptiveController {
 public:
  /// `fp` optionally points at a registry-owned footprint (so the obs
  /// layer's dump sees this function); null = controller-private scope.
  AdaptiveController(sim::Simulator& sim, Plan prior,
                     const AdaptiveParams& params,
                     obs::FunctionFootprint* fp = nullptr);

  /// Live-gauge bracket around each call (feeds CallSample::inflight).
  uint32_t call_begin() { return fp_->call_begin(); }
  void call_end() { fp_->call_end(); }

  /// Folds one completed call into the EWMAs and interval counters.
  void observe(const obs::CallSample& s);

  /// Runs one decision attempt: returns the newly adopted plan when the
  /// latched regimes (or the window rule) demand a different one and the
  /// cooldown has expired; nullopt otherwise. Decision attempts happen at
  /// most once per min_samples completed calls.
  std::optional<Plan> maybe_replan();

  /// Ablation switch: a frozen controller observes but never re-plans.
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  const Plan& plan() const { return plan_; }
  uint64_t switches() const { return switches_; }
  bool payload_large() const { return payload_large_; }
  Subscription subscription() const { return sub_; }
  const obs::FunctionFootprint& footprint() const { return *fp_; }

 private:
  void update_latches();
  uint32_t next_window(uint64_t calls, uint64_t stalls) const;

  sim::Simulator& sim_;
  AdaptiveParams p_;
  Plan plan_;
  obs::FunctionFootprint own_fp_{"adaptive"};
  obs::FunctionFootprint* fp_;
  bool payload_large_ = false;
  Subscription sub_ = Subscription::kUnder;
  bool frozen_ = false;
  uint64_t switches_ = 0;
  sim::Time last_switch_{};
  uint64_t interval_calls_ = 0;
  uint64_t interval_stalls_ = 0;
};

/// An RpcChannel that re-plans itself. Wraps the current epoch's concrete
/// channel (built through make_channel) and swaps epochs when the
/// controller adopts a plan the live channel cannot morph into.
class AdaptiveChannel : public proto::RpcChannel {
 public:
  AdaptiveChannel(verbs::Node& client, verbs::Node& server,
                  proto::Handler handler, proto::ChannelConfig cfg,
                  Plan prior, const AdaptiveParams& params,
                  obs::FunctionFootprint* fp = nullptr);
  ~AdaptiveChannel() override;

  void shutdown() override;
  void abort() override;
  proto::ProtocolKind kind() const override { return cur_->ch->kind(); }
  proto::ChannelStats stats() const override;

  // Manual overrides forward to the current epoch.
  void set_poll_modes(sim::PollMode client, sim::PollMode server) override {
    cur_->ch->set_poll_modes(client, server);
  }
  bool resize_window(uint32_t n) override {
    return cur_->ch->resize_window(n);
  }
  const obs::CounterSet* counters() const override {
    return cur_->ch->counters();
  }

  /// Freezes the controller (ablation: observe, never act).
  void freeze() { ctrl_.freeze(); }

  AdaptiveController& controller() { return ctrl_; }
  const AdaptiveController& controller() const { return ctrl_; }
  const Plan& plan() const { return ctrl_.plan(); }
  uint64_t epoch() const { return epoch_; }
  uint64_t switches() const { return ctrl_.switches(); }
  /// The concrete channel currently carrying calls (tests peek at kind()).
  proto::RpcChannel& current() { return *cur_->ch; }

 protected:
  sim::Task<proto::Buffer> do_call(proto::View req,
                                   uint32_t resp_size_hint) override;
  sim::Task<proto::LeasedReply> do_call_leased(
      proto::View req, uint32_t resp_size_hint) override;

 private:
  /// One plan generation: the concrete channel plus the in-flight count
  /// that gates its teardown. Retired epochs stay alive (leases may still
  /// point into their rings) until the AdaptiveChannel is destroyed; their
  /// serve loops are shut down once the last in-flight call drains.
  struct Epoch {
    explicit Epoch(sim::Simulator& sim) : drained(sim) {}
    std::unique_ptr<proto::RpcChannel> ch;
    uint64_t inflight = 0;  // calls + outstanding leases on this epoch
    bool retired = false;
    sim::Event drained;
  };

  void maybe_apply();
  void epoch_swap(const Plan& next);
  sim::Task<void> reap(std::shared_ptr<Epoch> old);
  uint64_t epoch_stalls(const Epoch& ep) const;
  void leave_epoch(const std::shared_ptr<Epoch>& ep);

  verbs::Node& cl_;
  verbs::Node& sv_;
  proto::Handler handler_;
  proto::ChannelConfig base_cfg_;
  sim::Simulator& sim_;
  AdaptiveController ctrl_;
  std::shared_ptr<Epoch> cur_;
  std::vector<std::shared_ptr<Epoch>> retired_;
  uint64_t epoch_ = 0;
};

/// Convenience factory mirroring make_channel: `prior` is the static
/// plan (typically select_plan's output) the controller starts from.
std::unique_ptr<AdaptiveChannel> make_adaptive_channel(
    verbs::Node& client, verbs::Node& server, proto::Handler handler,
    proto::ChannelConfig cfg, Plan prior, const AdaptiveParams& params = {},
    obs::FunctionFootprint* fp = nullptr);

}  // namespace hatrpc::hint
