#include "hint/selection.h"

namespace hatrpc::hint {

using proto::ProtocolKind;
using sim::PollMode;

Subscription classify_subscription(uint32_t concurrency,
                                   const SelectionParams& p) {
  if (concurrency <= p.numa_node_cores) return Subscription::kUnder;
  if (concurrency <= p.server_cores) return Subscription::kFull;
  return Subscription::kOver;
}

Plan select_plan_raw(PerfGoal goal, uint32_t concurrency,
                     uint32_t payload_bytes, bool numa_hint,
                     const SelectionParams& p) {
  Plan plan;
  plan.expected_payload = payload_bytes;
  Subscription sub = classify_subscription(concurrency, p);
  const bool small = payload_bytes <= p.small_msg_max;

  // Without a payload hint the pre-known-buffer protocols cannot size their
  // reserved per-connection buffers (§3: "the reserved message buffer is
  // not feasible to serve all message sizes"), so the engine must keep the
  // conservative adaptive default and only tune the polling discipline.
  if (payload_bytes == 0) {
    plan.protocol = proto::ProtocolKind::kHybridEagerRndv;
    plan.client_poll =
        goal == PerfGoal::kLatency ? PollMode::kBusy : PollMode::kEvent;
    if (goal == PerfGoal::kThroughput && sub == Subscription::kUnder)
      plan.client_poll = PollMode::kBusy;
    plan.server_poll = plan.client_poll;
    plan.numa_bind = numa_hint && sub == Subscription::kUnder;
    return plan;
  }

  switch (goal) {
    case PerfGoal::kLatency:
      // §5.2: latency hint -> busy polling + Direct-WriteIMM across sizes
      // (Fig. 4: best busy-polled latency for both small and large). The
      // lateral asymmetry of §4.1: clients always spin, but a server
      // hosting many connections only spins while it has spare cores —
      // "busy polling ... frustrates the server" otherwise.
      plan.protocol = ProtocolKind::kDirectWriteImm;
      plan.client_poll = PollMode::kBusy;
      plan.server_poll =
          sub == Subscription::kOver ? PollMode::kEvent : PollMode::kBusy;
      break;

    case PerfGoal::kThroughput:
      if (small) {
        // Fig. 5 @512B: Direct-WriteIMM wins in every regime; busy polling
        // only survives under-subscription.
        plan.protocol = ProtocolKind::kDirectWriteImm;
        plan.client_poll =
            sub == Subscription::kUnder ? PollMode::kBusy : PollMode::kEvent;
        plan.server_poll = plan.client_poll;
      } else if (sub == Subscription::kUnder) {
        // §5.2 @128KB: Direct-WriteIMM with busy polling below the
        // concurrency threshold (16)...
        plan.protocol = ProtocolKind::kDirectWriteImm;
        plan.client_poll = PollMode::kBusy;
        plan.server_poll = PollMode::kBusy;
      } else {
        // ...and event polling above it. NOTE: the paper's testbed put RFP
        // in this cell (its servers were CPU-bound posting out-bound
        // responses at 128 KB); our simulated fabric saturates the wire
        // first, where our Fig-5 characterization shows Direct-WriteIMM
        // with event polling dominating — the map follows the
        // characterization, as the paper's methodology prescribes
        // (divergence documented in EXPERIMENTS.md).
        plan.protocol = ProtocolKind::kDirectWriteImm;
        plan.client_poll = PollMode::kEvent;
        plan.server_poll = PollMode::kEvent;
      }
      break;

    case PerfGoal::kResUtil:
      // §3.3: pre-registered small buffers are cheap, large ones are not.
      plan.client_poll = PollMode::kEvent;  // spare the CPUs
      plan.server_poll = PollMode::kEvent;
      if (sub == Subscription::kUnder) {
        plan.protocol = small ? ProtocolKind::kDirectWriteImm
                              : ProtocolKind::kWriteRndv;
      } else {
        plan.protocol = small ? ProtocolKind::kEagerSendRecv
                              : ProtocolKind::kWriteRndv;
      }
      break;
  }

  // NUMA binding helps only while the bound socket has spare cores (§5.2).
  plan.numa_bind = numa_hint && sub == Subscription::kUnder;
  return plan;
}

namespace {

bool eager_family(ProtocolKind k) {
  return k == ProtocolKind::kEagerSendRecv ||
         k == ProtocolKind::kHybridEagerRndv || k == ProtocolKind::kArGrpc;
}

bool rndv_family(ProtocolKind k) {
  return k == ProtocolKind::kWriteRndv || k == ProtocolKind::kReadRndv;
}

}  // namespace

Plan replan_classified(const Plan& current, PerfGoal goal, bool payload_large,
                       Subscription sub, const SelectionParams& p) {
  Plan plan = current;

  // Protocol rule: the eager<->rendezvous switch follows the payload regime
  // (§4.3: slot staging amortizes below 4 KB, segmented copies drown above).
  // Direct-*/bypass protocols keep their pre-known buffers either way.
  if (payload_large && eager_family(current.protocol)) {
    plan.protocol = ProtocolKind::kWriteRndv;
  } else if (!payload_large && rndv_family(current.protocol)) {
    plan.protocol = ProtocolKind::kEagerSendRecv;
  }

  // Polling rule: busy polling only survives while the observed concurrency
  // leaves spare cores; once over-subscribed every spinner waits out
  // reschedule quanta (Fig. 5), so both sides drop to event. kFull is the
  // dead band — keep whatever the current plan does.
  switch (sub) {
    case Subscription::kUnder:
      plan.client_poll = sim::PollMode::kBusy;
      plan.server_poll = sim::PollMode::kBusy;
      break;
    case Subscription::kFull:
      break;
    case Subscription::kOver:
      plan.client_poll = sim::PollMode::kEvent;
      plan.server_poll = sim::PollMode::kEvent;
      break;
  }

  // A latency goal keeps the client spinning regardless (§4.1's lateral
  // asymmetry: the client burns its own core, not the server's).
  if (goal == PerfGoal::kLatency) plan.client_poll = sim::PollMode::kBusy;
  (void)p;
  return plan;
}

Plan replan_observed(const Plan& current, PerfGoal goal, const Observed& o,
                     const SelectionParams& p) {
  const bool large = o.payload_ewma > static_cast<double>(p.small_msg_max);
  const double infl = o.inflight_ewma < 0 ? 0 : o.inflight_ewma;
  const auto conc = static_cast<uint32_t>(infl + 0.5);
  return replan_classified(current, goal, large,
                           classify_subscription(conc == 0 ? 1 : conc, p), p);
}

Plan select_plan(const ServiceHints& hints, const std::string& function,
                 const SelectionParams& params) {
  auto get = [&](Key k, Perspective v) {
    return hints.lookup(function, k, v);
  };

  PerfGoal goal = PerfGoal::kThroughput;
  if (const Value* v = get(Key::kPerfGoal, Perspective::kClient))
    goal = v->goal;
  uint32_t concurrency = 1;
  if (const Value* v = get(Key::kConcurrency, Perspective::kClient))
    concurrency = static_cast<uint32_t>(v->num);
  uint32_t payload = 0;
  if (const Value* v = get(Key::kPayloadSize, Perspective::kClient))
    payload = static_cast<uint32_t>(v->num);
  bool numa = false;
  if (const Value* v = get(Key::kNumaBinding, Perspective::kClient))
    numa = v->flag;

  Plan plan = select_plan_raw(goal, concurrency, payload, numa, params);

  // Side-specific refinements: each side's own perf goal / explicit polling
  // override the derived polling without disturbing the other side
  // (optimization isolation, §4.1).
  auto side_poll = [&](Perspective view, PollMode derived) {
    if (const Value* v = view == Perspective::kServer
                             ? hints.lookup(function, Key::kPolling,
                                            Perspective::kServer)
                             : hints.lookup(function, Key::kPolling,
                                            Perspective::kClient)) {
      return v->flag ? PollMode::kBusy : PollMode::kEvent;
    }
    return derived;
  };
  // A server marked throughput/res_util while clients chase latency is the
  // canonical lateral split: re-derive each side with its own goal.
  if (const Value* sg = hints.lookup(function, Key::kPerfGoal,
                                     Perspective::kServer)) {
    if (sg->goal != goal) {
      Plan sp = select_plan_raw(sg->goal, concurrency, payload, numa, params);
      plan.server_poll = sp.server_poll;
    }
  }
  plan.client_poll = side_poll(Perspective::kClient, plan.client_poll);
  plan.server_poll = side_poll(Perspective::kServer, plan.server_poll);

  if (const Value* v = get(Key::kTransport, Perspective::kClient))
    plan.transport = v->transport;

  // Low-priority functions (heartbeats) yield resources: eager + event.
  if (const Value* v = get(Key::kPriority, Perspective::kClient)) {
    if (v->priority == Priority::kLow) {
      plan.protocol = ProtocolKind::kEagerSendRecv;
      plan.client_poll = PollMode::kEvent;
      plan.server_poll = PollMode::kEvent;
    }
  }
  return plan;
}

}  // namespace hatrpc::hint
