// The hierarchical hint scheme of paper §4.1 (Fig. 1 / Fig. 7).
//
// Hints are key=value pairs attached at two vertical levels (service,
// function) and three lateral groups ('hint' = shared, 's_hint' = server
// side, 'c_hint' = client side). Resolution for one RPC function from one
// side's perspective walks, highest priority first:
//
//     function side-specific  >  function shared
//   > service  side-specific  >  service  shared
//
// i.e. function-level hints override same-key service-level hints, and a
// side-specific group overrides the shared group at the same level —
// giving both heterogeneity across functions and server/client asymmetry
// with full optimization isolation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace hatrpc::hint {

enum class Key : uint8_t {
  kPerfGoal,     // latency | throughput | res_util
  kConcurrency,  // expected concurrent clients (positive integer)
  kPayloadSize,  // expected payload bytes (suffix k/m accepted)
  kNumaBinding,  // true | false — bind driving threads to the NIC socket
  kTransport,    // rdma | tcp — hybrid transports (§3.3, §5.5)
  kPolling,      // busy | event — explicit override of the derived choice
  kPriority,     // high | low — e.g. heartbeats marked low (§4.1)
  kShardMap,     // opaque encoded cluster shard map (dynamic hint, §4.3):
                 // the directory publishes the key→shard routing table to
                 // clients through the same hint channel as protocol hints
};

enum class PerfGoal : uint8_t { kLatency, kThroughput, kResUtil };
enum class Transport : uint8_t { kRdma, kTcp };
enum class Priority : uint8_t { kHigh, kLow };

/// Which lateral group a hint belongs to ('hint' / 's_hint' / 'c_hint').
enum class Side : uint8_t { kShared, kServer, kClient };

/// Which end is asking during resolution.
enum class Perspective : uint8_t { kServer, kClient };

class HintError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A validated hint value. Construction from IDL text happens through
/// parse(), which rejects unknown keys and out-of-domain values — the
/// compiler's "check" step (§4.2).
struct Value {
  std::string raw;
  // Exactly one of these is meaningful, fixed by the key's type.
  int64_t num = 0;
  PerfGoal goal = PerfGoal::kLatency;
  Transport transport = Transport::kRdma;
  Priority priority = Priority::kHigh;
  bool flag = false;
};

std::optional<Key> parse_key(std::string_view name);
std::string_view to_string(Key k);
std::string_view to_string(PerfGoal g);
std::string_view to_string(Side s);

/// Validates and parses `value` for `key`; throws HintError on bad input.
Value parse_value(Key key, std::string_view value);

/// One scope's hints for one lateral group.
using HintMap = std::map<Key, Value>;

/// All three lateral groups of one vertical scope (a service or function).
struct HintGroup {
  HintMap shared;
  HintMap server;
  HintMap client;

  HintMap& side(Side s) {
    switch (s) {
      case Side::kShared: return shared;
      case Side::kServer: return server;
      case Side::kClient: return client;
    }
    throw HintError("bad side");
  }
  const HintMap& side(Side s) const {
    return const_cast<HintGroup*>(this)->side(s);
  }

  /// Adds a hint, rejecting duplicate keys in the same group (the
  /// compiler's merge step collapses groups of the same side first).
  void add(Side s, Key k, Value v) {
    auto [it, inserted] = side(s).emplace(k, std::move(v));
    if (!inserted)
      throw HintError(std::string("duplicate hint '") +
                      std::string(to_string(k)) + "' in " +
                      std::string(to_string(s)) + " group");
  }

  bool empty() const {
    return shared.empty() && server.empty() && client.empty();
  }
};

/// The full hint hierarchy of one service.
class ServiceHints {
 public:
  HintGroup& service() { return service_; }
  const HintGroup& service() const { return service_; }

  HintGroup& function(const std::string& name) { return functions_[name]; }
  const std::map<std::string, HintGroup>& functions() const {
    return functions_;
  }

  /// Resolves `key` for `function` from `view`'s perspective, applying the
  /// override chain documented at the top of this header.
  const Value* lookup(const std::string& function, Key key,
                      Perspective view) const {
    Side specific =
        view == Perspective::kServer ? Side::kServer : Side::kClient;
    auto fit = functions_.find(function);
    if (fit != functions_.end()) {
      if (const Value* v = find(fit->second.side(specific), key)) return v;
      if (const Value* v = find(fit->second.shared, key)) return v;
    }
    if (const Value* v = find(service_.side(specific), key)) return v;
    return find(service_.shared, key);
  }

 private:
  static const Value* find(const HintMap& m, Key k) {
    auto it = m.find(k);
    return it == m.end() ? nullptr : &it->second;
  }

  HintGroup service_;
  std::map<std::string, HintGroup> functions_;
};

}  // namespace hatrpc::hint
