#include "hint/hint.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace hatrpc::hint {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

int64_t parse_size(std::string_view s) {
  int64_t mult = 1;
  std::string_view digits = s;
  if (!s.empty()) {
    char suffix = static_cast<char>(std::tolower(s.back()));
    if (suffix == 'k') mult = 1024;
    if (suffix == 'm') mult = 1024 * 1024;
    if (mult != 1) digits = s.substr(0, s.size() - 1);
  }
  int64_t v = 0;
  auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), v);
  if (ec != std::errc{} || ptr != digits.data() + digits.size() || v < 0)
    throw HintError("bad numeric hint value: " + std::string(s));
  return v * mult;
}

}  // namespace

std::optional<Key> parse_key(std::string_view name) {
  std::string n = lower(name);
  if (n == "perf_goal") return Key::kPerfGoal;
  if (n == "concurrency") return Key::kConcurrency;
  if (n == "payload_size") return Key::kPayloadSize;
  if (n == "numa_binding") return Key::kNumaBinding;
  if (n == "transport") return Key::kTransport;
  if (n == "polling") return Key::kPolling;
  if (n == "priority") return Key::kPriority;
  if (n == "shard_map") return Key::kShardMap;
  return std::nullopt;
}

std::string_view to_string(Key k) {
  switch (k) {
    case Key::kPerfGoal: return "perf_goal";
    case Key::kConcurrency: return "concurrency";
    case Key::kPayloadSize: return "payload_size";
    case Key::kNumaBinding: return "numa_binding";
    case Key::kTransport: return "transport";
    case Key::kPolling: return "polling";
    case Key::kPriority: return "priority";
    case Key::kShardMap: return "shard_map";
  }
  return "?";
}

std::string_view to_string(PerfGoal g) {
  switch (g) {
    case PerfGoal::kLatency: return "latency";
    case PerfGoal::kThroughput: return "throughput";
    case PerfGoal::kResUtil: return "res_util";
  }
  return "?";
}

std::string_view to_string(Side s) {
  switch (s) {
    case Side::kShared: return "hint";
    case Side::kServer: return "s_hint";
    case Side::kClient: return "c_hint";
  }
  return "?";
}

Value parse_value(Key key, std::string_view value) {
  Value v;
  v.raw = std::string(value);
  std::string lv = lower(value);
  switch (key) {
    case Key::kPerfGoal:
      if (lv == "latency") v.goal = PerfGoal::kLatency;
      else if (lv == "throughput") v.goal = PerfGoal::kThroughput;
      else if (lv == "res_util") v.goal = PerfGoal::kResUtil;
      else throw HintError("perf_goal must be latency|throughput|res_util, "
                           "got '" + std::string(value) + "'");
      return v;
    case Key::kConcurrency:
      v.num = parse_size(value);
      if (v.num < 1) throw HintError("concurrency must be >= 1");
      return v;
    case Key::kPayloadSize:
      v.num = parse_size(value);
      return v;
    case Key::kNumaBinding:
      if (lv == "true" || lv == "1") v.flag = true;
      else if (lv == "false" || lv == "0") v.flag = false;
      else throw HintError("numa_binding must be true|false");
      return v;
    case Key::kTransport:
      if (lv == "rdma") v.transport = Transport::kRdma;
      else if (lv == "tcp") v.transport = Transport::kTcp;
      else throw HintError("transport must be rdma|tcp");
      return v;
    case Key::kPolling:
      if (lv == "busy") v.flag = true;
      else if (lv == "event") v.flag = false;
      else throw HintError("polling must be busy|event");
      return v;
    case Key::kPriority:
      if (lv == "high") v.priority = Priority::kHigh;
      else if (lv == "low") v.priority = Priority::kLow;
      else throw HintError("priority must be high|low");
      return v;
    case Key::kShardMap:
      // Opaque routing payload: validated by the cluster decoder, not here
      // (the hint layer only carries it).
      return v;
  }
  throw HintError("unknown hint key");
}

}  // namespace hatrpc::hint
