#include "core/engine.h"

namespace hatrpc::core {

using sim::Task;

HatServer::HatServer(verbs::Node& node, hint::ServiceHints hints,
                     EngineConfig cfg, thrift::SocketNet* net)
    : node_(node), hints_(std::move(hints)), cfg_(cfg), net_(net) {
  if (net_) {
    tcp_server_ = std::make_unique<thrift::TServer>(
        *net_, node_, cfg_.tcp_port, processor(),
        thrift::TServer::Options{.kind = thrift::ServerKind::kThreaded});
    tcp_server_->start();
  }
}

HatServer::~HatServer() { stop(); }

proto::Handler HatServer::processor() {
  return [this](proto::View req) -> Task<proto::Buffer> {
    // Server-side deserialization + result serialization CPU.
    co_await node_.cpu().compute(
        cfg_.serialize_fixed +
        sim::transfer_time(req.size(), cfg_.serialize_gbps));
    Buffer reply = co_await dispatcher_.process(req);
    co_await node_.cpu().compute(
        cfg_.serialize_fixed +
        sim::transfer_time(reply.size(), cfg_.serialize_gbps));
    co_return reply;
  };
}

void HatServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (HatConnection* c : connections_) c->close();
  if (tcp_server_) tcp_server_->stop();
}

HatConnection::HatConnection(verbs::Node& client, HatServer& server)
    : client_(client), server_(server),
      tcp_ready_(client.fabric().simulator()) {
  server_.track(this);
}

const hint::Plan& HatConnection::plan_for(const std::string& method) {
  auto it = plans_.find(method);
  if (it == plans_.end()) {
    it = plans_
             .emplace(method,
                      hint::select_plan(server_.hints(), method,
                                        server_.config().selection))
             .first;
  }
  return it->second;
}

uint32_t HatConnection::sized_max_msg(const hint::Plan& plan) const {
  // Payload hints let the engine size the pre-known per-connection buffers
  // (with 2x headroom); unhinted plans keep the configured default.
  uint32_t base = server_.config().channel.max_msg;
  if (plan.expected_payload == 0) return base;
  return std::max<uint32_t>(64 << 10, plan.expected_payload * 2);
}

proto::RpcChannel& HatConnection::channel_for(const hint::Plan& plan) {
  ChannelKey key = key_of(plan);
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    proto::ChannelConfig cfg = server_.config().channel;
    cfg.max_msg = sized_max_msg(plan);
    cfg.client_poll = plan.client_poll;
    cfg.server_poll = plan.server_poll;
    // NUMA binding applies to the client threads; the server's NIC-side
    // thread placement is managed by the server runtime (bound when the
    // plan asks and the node is under-subscribed).
    cfg.client_numa_local = plan.numa_bind;
    cfg.server_numa_local = plan.numa_bind;
    it = channels_
             .emplace(key, proto::make_channel(plan.protocol, client_,
                                               server_.node(),
                                               server_.processor(), cfg))
             .first;
  }
  return *it->second;
}

const proto::RpcChannel* HatConnection::channel_for_plan(
    const hint::Plan& plan) const {
  auto it = channels_.find(key_of(plan));
  return it == channels_.end() ? nullptr : it->second.get();
}

Task<thrift::SocketRpcClient*> HatConnection::tcp_client() {
  if (tcp_) co_return tcp_.get();
  if (tcp_connecting_) {  // another call is mid-handshake
    co_await tcp_ready_.wait();
    co_return tcp_.get();
  }
  tcp_connecting_ = true;
  thrift::SocketNet* net = server_.socket_net();
  if (!net)
    throw std::logic_error(
        "transport=tcp hint but HatServer has no SocketNet");
  thrift::SimSocket* sock = co_await net->connect(
      client_, server_.node(), server_.config().tcp_port);
  tcp_ = std::make_unique<thrift::SocketRpcClient>(sock);
  tcp_ready_.set();
  co_return tcp_.get();
}

Task<void> HatConnection::charge_serialize(verbs::Node& node, size_t bytes) {
  const EngineConfig& cfg = server_.config();
  return node.cpu().compute(
      cfg.serialize_fixed + sim::transfer_time(bytes, cfg.serialize_gbps));
}

Task<Buffer> HatConnection::call(std::string method, View payload) {
  if (closed_) throw std::runtime_error("connection closed");
  const hint::Plan& plan = plan_for(method);
  Buffer envelope = HatDispatcher::make_call(method, payload, ++seq_);
  co_await charge_serialize(client_, envelope.size());

  Buffer reply;
  if (plan.transport == hint::Transport::kTcp) {
    thrift::SocketRpcClient* rpc = co_await tcp_client();
    reply = co_await rpc->call(envelope);
  } else {
    proto::RpcChannel& ch = channel_for(plan);
    proto::CallResult r = co_await ch.call(envelope, plan.expected_payload);
    reply = std::move(r).value();
  }

  co_await charge_serialize(client_, reply.size());
  co_return HatDispatcher::parse_reply(reply, method);
}

void HatConnection::close() {
  if (closed_) return;
  closed_ = true;
  for (auto& [key, ch] : channels_) ch->shutdown();
  if (tcp_) tcp_->close();
}

}  // namespace hatrpc::core
