// Byte-level RPC runtime interfaces that generated code targets.
//
// A generated client stub serializes its argument struct, then issues
// HatCaller::call(method, payload); a generated processor deserializes,
// invokes the user's handler implementation, and serializes the result.
// The envelope is a standard Thrift message (name, type, seqid) so the
// same bytes flow over TSocket and TRdma unchanged.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "sim/task.h"
#include "thrift/buffer.h"
#include "thrift/protocol.h"
#include "thrift/transport.h"

namespace hatrpc::core {

using thrift::Buffer;
using thrift::View;

/// Client-side generic call interface (implemented by HatConnection and by
/// the plain socket client).
class HatCaller {
 public:
  virtual ~HatCaller() = default;
  /// `method` is taken by value: coroutine implementations move it into
  /// their frame, so callers may pass temporaries safely.
  virtual sim::Task<Buffer> call(std::string method, View payload) = 0;
};

/// Server-side method table: method name -> handler over serialized args.
/// process() parses the Thrift message envelope, dispatches, and wraps the
/// result (or a TApplicationException) in a reply envelope.
class HatDispatcher {
 public:
  /// Takes the serialized args struct; returns the serialized result struct.
  using MethodFn = std::function<sim::Task<Buffer>(View args)>;

  void register_method(std::string name, MethodFn fn) {
    methods_[std::move(name)] = std::move(fn);
  }

  bool has_method(const std::string& name) const {
    return methods_.count(name) > 0;
  }

  /// Full envelope in -> full envelope out.
  sim::Task<Buffer> process(View request) {
    thrift::TMemoryBuffer in = thrift::TMemoryBuffer::wrap(request);
    thrift::TBinaryProtocol ip(in);
    auto head = ip.readMessageBegin();

    thrift::TMemoryBuffer out;
    thrift::TBinaryProtocol op(out);
    auto it = methods_.find(head.name);
    if (it == methods_.end()) {
      op.writeMessageBegin(head.name, thrift::TMessageType::kException,
                           head.seqid);
      write_application_exception(op, 1 /*UNKNOWN_METHOD*/,
                                  "unknown method: " + head.name);
      co_return out.take();
    }
    size_t consumed = request.size() - in.readable();
    // Undeclared exceptions escaping a handler become INTERNAL_ERROR
    // replies (Apache Thrift behaviour) rather than tearing down the
    // server's serve loop.
    try {
      Buffer result = co_await it->second(request.subspan(consumed));
      op.writeMessageBegin(head.name, thrift::TMessageType::kReply,
                           head.seqid);
      out.write(result.data(), result.size());
    } catch (const std::exception& e) {
      out.reset();
      op.writeMessageBegin(head.name, thrift::TMessageType::kException,
                           head.seqid);
      write_application_exception(op, 6 /*INTERNAL_ERROR*/, e.what());
    }
    co_return out.take();
  }

  /// Builds the call envelope around serialized args.
  static Buffer make_call(const std::string& method, View args,
                          int32_t seqid) {
    thrift::TMemoryBuffer buf;
    thrift::TBinaryProtocol p(buf);
    p.writeMessageBegin(method, thrift::TMessageType::kCall, seqid);
    buf.write(args.data(), args.size());
    return buf.take();
  }

  /// Strips the reply envelope; throws TApplicationException on error
  /// replies. Returns the serialized result struct bytes.
  static Buffer parse_reply(View reply, const std::string& method) {
    thrift::TMemoryBuffer buf = thrift::TMemoryBuffer::wrap(reply);
    thrift::TBinaryProtocol p(buf);
    auto head = p.readMessageBegin();
    if (head.type == thrift::TMessageType::kException) {
      throw read_application_exception(p);
    }
    if (head.name != method)
      throw thrift::TApplicationException(
          thrift::TApplicationException::Kind::kWrongMethodName,
          "reply for '" + head.name + "', expected '" + method + "'");
    size_t consumed = reply.size() - buf.readable();
    View rest = reply.subspan(consumed);
    return Buffer(rest.begin(), rest.end());
  }

 private:
  static void write_application_exception(thrift::TProtocol& p, int32_t type,
                                          const std::string& what) {
    p.writeStructBegin("TApplicationException");
    p.writeFieldBegin(thrift::TType::kString, 1);
    p.writeString(what);
    p.writeFieldBegin(thrift::TType::kI32, 2);
    p.writeI32(type);
    p.writeFieldStop();
    p.writeStructEnd();
  }

  static thrift::TApplicationException read_application_exception(
      thrift::TProtocol& p) {
    std::string what = "unknown";
    int32_t type = 0;
    p.readStructBegin();
    while (true) {
      auto f = p.readFieldBegin();
      if (f.type == thrift::TType::kStop) break;
      if (f.id == 1 && f.type == thrift::TType::kString) what = p.readString();
      else if (f.id == 2 && f.type == thrift::TType::kI32) type = p.readI32();
      else p.skip(f.type);
    }
    p.readStructEnd();
    return thrift::TApplicationException(
        static_cast<thrift::TApplicationException::Kind>(type), what);
  }

  std::map<std::string, MethodFn> methods_;
};

/// Service multiplexing (Thrift's TMultiplexedProtocol/TMultiplexedProcessor
/// pair, the fourth protocol of the paper's Fig. 2 row): several services
/// share one connection by prefixing method names with "<service>:".
constexpr char kMultiplexSeparator = ':';

/// Client side: scopes every call to one service on a shared caller.
class MultiplexedCaller : public HatCaller {
 public:
  MultiplexedCaller(HatCaller& inner, std::string service)
      : inner_(inner), prefix_(std::move(service) + kMultiplexSeparator) {}

  sim::Task<Buffer> call(std::string method, View payload) override {
    return inner_.call(prefix_ + method, payload);
  }

 private:
  HatCaller& inner_;
  std::string prefix_;
};

/// Server side: a registration view that prefixes method names, so the
/// generated register_<Service>() helpers can bind multiple services into
/// one shared HatDispatcher. (Not a dispatcher itself — processing stays
/// with the shared inner dispatcher.)
class MultiplexedDispatcher {
 public:
  MultiplexedDispatcher(HatDispatcher& inner, std::string service)
      : inner_(inner), prefix_(std::move(service) + kMultiplexSeparator) {}

  void register_method(std::string name, HatDispatcher::MethodFn fn) {
    inner_.register_method(prefix_ + name, std::move(fn));
  }

 private:
  HatDispatcher& inner_;
  std::string prefix_;
};

}  // namespace hatrpc::core
