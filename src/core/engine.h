// The hint-aware RDMA engine of §4.3 (Fig. 9), tying together the hint
// hierarchy, the Figure-6 selection algorithm, the TRdma bridge, and the
// protocol channels:
//
//   * at connection establishment, static (service-level) hints size and
//     configure the engine;
//   * per-function plans are resolved once and cached — the "dynamic hints
//     are passed by pointer / cached per RPC function type" optimization;
//   * each distinct plan materializes one protocol channel, created lazily
//     and shared by all functions mapping to the same plan (optimization
//     isolation: a latency function's busy-polled WriteIMM channel is
//     unaffected by a throughput function's event-polled RFP channel);
//   * plans with transport=tcp route through the Thrift socket stack
//     instead (hybrid transports, §5.5).
#pragma once

#include <memory>
#include <tuple>

#include "core/runtime.h"
#include "hint/selection.h"
#include "thrift/rdma.h"
#include "thrift/server.h"

namespace hatrpc::core {

struct EngineConfig {
  hint::SelectionParams selection{};
  proto::ChannelConfig channel{};  // base geometry (max_msg, slots, ...)
  /// Thrift serialization/deserialization CPU model.
  sim::Duration serialize_fixed = std::chrono::nanoseconds(250);
  double serialize_gbps = 4.0;
  uint16_t tcp_port = 9900;
};

class HatConnection;

/// Server side: owns the dispatcher, accepts HatConnections, and (when a
/// SocketNet is supplied) runs a Thrift TServer for tcp-hinted functions.
class HatServer {
 public:
  HatServer(verbs::Node& node, hint::ServiceHints hints, EngineConfig cfg,
            thrift::SocketNet* net = nullptr);
  ~HatServer();

  HatDispatcher& dispatcher() { return dispatcher_; }
  verbs::Node& node() { return node_; }
  const hint::ServiceHints& hints() const { return hints_; }
  const EngineConfig& config() const { return cfg_; }
  thrift::SocketNet* socket_net() { return net_; }

  /// The byte-level processor (envelope in/out) with server-side
  /// (de)serialization CPU charged; shared by RDMA channels and the TServer.
  proto::Handler processor();

  void stop();

 private:
  friend class HatConnection;
  void track(HatConnection* conn) { connections_.push_back(conn); }

  verbs::Node& node_;
  hint::ServiceHints hints_;
  EngineConfig cfg_;
  thrift::SocketNet* net_;
  HatDispatcher dispatcher_;
  std::unique_ptr<thrift::TServer> tcp_server_;
  std::vector<HatConnection*> connections_;
  bool stopped_ = false;
};

/// Client side of one logical connection. Implements HatCaller for the
/// generated stubs.
class HatConnection : public HatCaller {
 public:
  HatConnection(verbs::Node& client, HatServer& server);

  sim::Task<Buffer> call(std::string method, View payload) override;

  /// Resolved + cached plan for a method (exposed for tests/benches).
  const hint::Plan& plan_for(const std::string& method);

  /// Number of distinct protocol channels materialized so far.
  size_t channel_count() const { return channels_.size(); }

  const proto::RpcChannel* channel_for_plan(const hint::Plan& plan) const;

  void close();

 private:
  using ChannelKey = std::tuple<int, int, int, bool, uint32_t>;
  ChannelKey key_of(const hint::Plan& p) const {
    return {static_cast<int>(p.protocol), static_cast<int>(p.client_poll),
            static_cast<int>(p.server_poll), p.numa_bind, sized_max_msg(p)};
  }
  uint32_t sized_max_msg(const hint::Plan& p) const;

  proto::RpcChannel& channel_for(const hint::Plan& plan);
  sim::Task<thrift::SocketRpcClient*> tcp_client();
  sim::Task<void> charge_serialize(verbs::Node& node, size_t bytes);

  verbs::Node& client_;
  HatServer& server_;
  std::map<std::string, hint::Plan> plans_;
  std::map<ChannelKey, std::unique_ptr<proto::RpcChannel>> channels_;
  std::unique_ptr<thrift::SocketRpcClient> tcp_;
  bool tcp_connecting_ = false;
  sim::Event tcp_ready_;
  int32_t seq_ = 0;
  bool closed_ = false;
};

}  // namespace hatrpc::core
