// Discrete-event simulator: a virtual clock plus a hierarchical timing
// wheel of coroutine resumptions. Single-threaded and fully deterministic —
// events at equal times run in FIFO schedule order, exactly as the old
// priority-queue scheduler ordered them by (time, sequence).
//
// Scheduler layout (see DESIGN.md §12):
//   * 8 wheel levels x 64 slots; a level-L slot is 64^L ns wide, so the
//     wheel spans 64^8 ns (~3.2 simulated days) ahead of its cursor.
//     Insert/cancel are O(1); finding the next occupied slot is a handful
//     of bitmap scans (one uint64_t occupancy word per level).
//   * Timers beyond the wheel span — and timers landing behind the wheel
//     cursor after a run_until() stopped mid-window — go to one overflow
//     binary heap that competes with the wheel for the next dispatch batch.
//   * All timers sharing a timestamp dispatch as one batch, sorted by
//     sequence number. Level-0 slots are one nanosecond wide, so a slot
//     holds exactly one timestamp and the sort restores FIFO order even
//     when a cascade from a higher level appended nodes out of order.
//   * TimerNodes live in one never-shrinking vector with an index freelist;
//     a generation counter per node lets a stale TimerHandle fail safely.
//   * Shallow schedules (<= kSmallCap pending timers) bypass the wheel
//     entirely: a plain vector kept sorted by (time, seq) serves insert,
//     cancel and batch collection. Sparse timer storms used to pay wheel
//     cascades and bitmap scans per event; binary-search insert into a
//     <= 64-entry vector is cheaper until the depth crosses the threshold,
//     at which point everything migrates into the wheel/heap in one sweep.
//     The wheel mode hands back to the small queue only when it fully
//     drains, so deep workloads never flap between modes.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <ostream>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/arena.h"
#include "sim/racecheck.h"
#include "sim/task.h"
#include "sim/time.h"

namespace hatrpc::sim {

class Simulator;

/// Cancellable reference to a pending timer. Default-constructed or spent
/// handles are inert: cancel()/reschedule() on them are safe no-ops. A
/// handle is invalidated when its timer fires, is cancelled, or is
/// rescheduled — a stale handle can never touch another timer because the
/// node's generation counter no longer matches.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Removes the timer from the schedule if it has not fired yet.
  /// Returns true if this call actually cancelled a pending timer.
  bool cancel();

  /// Moves a still-pending timer to absolute time `t` (>= now). The timer
  /// re-enters the schedule as the newest event at `t` (it goes to the back
  /// of the FIFO among equal timestamps). Returns false, scheduling
  /// nothing, if the timer already fired or was cancelled.
  bool reschedule(Time t);

  /// True while the timer is still pending (not fired, not cancelled).
  bool active() const;

 private:
  friend class Simulator;
  TimerHandle(Simulator* sim, uint32_t node, uint64_t gen)
      : sim_(sim), node_(node), gen_(gen) {}

  Simulator* sim_ = nullptr;
  uint32_t node_ = 0;
  uint64_t gen_ = 0;
};

class Simulator {
 public:
  /// Snapshot returned by run()/run_until(). Converts to Time so existing
  /// `Time end = sim.run();` call sites keep compiling, and compares
  /// against Time for the same reason.
  struct RunResult {
    Time end_time{0};
    uint64_t events_processed = 0;
    uint64_t timers_cancelled = 0;
    size_t live_tasks = 0;
    size_t peak_queue_depth = 0;

    operator Time() const { return end_time; }  // NOLINT(google-explicit-*)
    friend bool operator==(const RunResult& r, Time t) {
      return r.end_time == t;
    }
    friend std::ostream& operator<<(std::ostream& os, const RunResult& r) {
      return os << "RunResult{end=" << r.end_time.count()
                << "ns processed=" << r.events_processed
                << " cancelled=" << r.timers_cancelled
                << " live=" << r.live_tasks << " peak=" << r.peak_queue_depth
                << "}";
    }
  };

  Simulator() {
    std::fill_n(slot_head_, kLevels * kSlots, kNil);
    std::fill_n(slot_tail_, kLevels * kSlots, kNil);
    rc_owner_ = std::make_unique<RaceCheck>(*this);  // sets rc_ per RACECHECK
    if (const char* s = std::getenv("RACECHECK_TIEBREAK"))
      set_tiebreak_seed(std::strtoull(s, nullptr, 10));
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// The per-simulator race/lifetime checker (see racecheck.h). Always
  /// constructed; whether its hooks run is governed by its mode.
  RaceCheck& racecheck() { return *rc_owner_; }

  /// Seeds the same-timestamp dispatch shuffle. Seed 0 (the default)
  /// keeps the classic FIFO sequence order; any other seed applies a
  /// deterministic Fisher-Yates permutation to every dispatch batch of
  /// size > 1. The RACECHECK_TIEBREAK environment variable provides the
  /// initial value; an explicit call overrides it.
  void set_tiebreak_seed(uint64_t s) {
    tiebreak_seed_ = s;
    tiebreak_state_ = s;
  }
  uint64_t tiebreak_seed() const { return tiebreak_seed_; }

  // ---- RaceCheck forwarding (no-ops when the checker is off; the token
  // ---- forms stay balanced across mode toggles by always dropping) ------
  uint32_t rc_capture() {
    return rc_ ? rc_->capture() : RaceCheck::kNoClock;
  }
  void rc_drop(uint32_t tok) {
    if (tok != RaceCheck::kNoClock) rc_owner_->drop(tok);
  }
  /// Joins a captured token into the CURRENT segment (CQE consumption).
  void rc_consume(uint32_t tok) {
    if (tok == RaceCheck::kNoClock) return;
    if (rc_) {
      rc_->acquire_token(tok);
    } else {
      rc_owner_->drop(tok);
    }
  }
  /// Rides a captured token on a pending timer's own snapshot (the
  /// notify->wake path: the waiter's pre-suspend clock joins the wake).
  void rc_join(uint32_t tok, const TimerHandle& t) {
    if (tok == RaceCheck::kNoClock) return;
    if (rc_ && t.sim_ == this && nodes_[t.node_].gen == t.gen_ &&
        nodes_[t.node_].rc_clock != RaceCheck::kNoClock) {
      rc_->merge_into(tok, nodes_[t.node_].rc_clock);
    } else {
      rc_owner_->drop(tok);
    }
  }
  void rc_read(const void* o, uint64_t sub, const char* name,
               const char* site) {
    if (rc_) rc_->access(o, sub, RaceCheck::Access::kRead, name, site);
  }
  void rc_write(const void* o, uint64_t sub, const char* name,
                const char* site) {
    if (rc_) rc_->access(o, sub, RaceCheck::Access::kWrite, name, site);
  }
  void rc_update(const void* o, uint64_t sub, const char* name,
                 const char* site) {
    if (rc_) rc_->access(o, sub, RaceCheck::Access::kUpdate, name, site);
  }
  void rc_sync_release(const void* o, uint64_t sub = 0) {
    if (rc_) rc_->sync_release(o, sub);
  }
  void rc_sync_acquire(const void* o, uint64_t sub = 0) {
    if (rc_) rc_->sync_acquire(o, sub);
  }
  void rc_retire(const void* o, uint64_t sub, const char* name,
                 const char* site) {
    if (rc_) rc_->retire(o, sub, name, site);
  }
  void rc_revive(const void* o, uint64_t sub) {
    if (rc_) rc_->revive(o, sub);
  }
  void rc_forget(const void* o, uint64_t sub) {
    if (rc_) rc_->forget(o, sub);
  }
  void rc_lifetime(const void* o, uint64_t sub, const char* name,
                   const char* site, std::string detail) {
    if (rc_) rc_->report_lifetime(o, sub, name, site, std::move(detail));
  }
  bool rc_on() const { return rc_ != nullptr; }

  /// Queues `h` to resume at absolute virtual time `t` (>= now). The
  /// returned handle can cancel or reschedule the resumption; it may be
  /// discarded freely when the timer is fire-and-forget.
  TimerHandle schedule_at(Time t, std::coroutine_handle<> h) {
    assert(t >= now_);
    uint32_t idx = alloc_node();
    TimerNode& n = nodes_[idx];
    n.t = t;
    n.seq = seq_++;
    n.h = h;
    n.rc_clock = rc_ ? rc_->capture() : RaceCheck::kNoClock;
    insert(idx);
    if (++pending_ > peak_depth_) peak_depth_ = pending_;
    return TimerHandle(this, idx, n.gen);
  }

  TimerHandle schedule_after(Duration d, std::coroutine_handle<> h) {
    return schedule_at(now_ + (d.count() > 0 ? d : Duration{0}), h);
  }

  /// Awaitable that suspends the current coroutine for `d` of virtual time.
  auto sleep(Duration d) {
    struct Awaiter {
      Simulator& sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_after(d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Suspends until absolute virtual time `t` (no-op if already past).
  auto sleep_until(Time t) { return sleep(t > now_ ? t - now_ : Duration{0}); }

  /// Reschedules the caller at the current time, letting same-time events run.
  auto yield() { return sleep(Duration{0}); }

  /// Launches a root task. It starts running immediately (at the current
  /// virtual time) until its first suspension. Exceptions escaping a spawned
  /// task are captured and rethrown by run().
  void spawn(Task<void> t);

  /// Runs until the event queue drains. Rethrows the first exception that
  /// escaped any spawned task.
  RunResult run();

  /// Runs until the event queue drains or virtual time would exceed
  /// `deadline`; events after the deadline stay queued.
  RunResult run_until(Time deadline);

  /// Number of spawned root tasks that have not yet completed. Nonzero after
  /// run() returns means tasks are deadlocked on conditions that never fire.
  size_t live_tasks() const { return live_; }

  /// Total events processed (determinism/regression checks).
  uint64_t events_processed() const { return processed_; }

  /// Timers removed via TimerHandle::cancel() before firing.
  uint64_t timers_cancelled() const { return cancelled_; }

  /// High-water mark of simultaneously pending timers.
  size_t peak_queue_depth() const { return peak_depth_; }

  /// Currently pending timers.
  size_t pending_timers() const { return pending_; }

 private:
  friend class TimerHandle;
  friend class RaceCheck;

  // --- timing wheel geometry -------------------------------------------
  static constexpr unsigned kLevelBits = 6;             // 64 slots per level
  static constexpr unsigned kSlots = 1u << kLevelBits;  // 64
  static constexpr unsigned kLevels = 8;
  static constexpr uint64_t kSlotMask = kSlots - 1;
  static constexpr uint64_t kSpan = uint64_t(1)
                                    << (kLevelBits * kLevels);  // 2^48 ns

  static constexpr uint32_t kNil = 0xffffffffu;

  struct TimerNode {
    Time t{0};
    uint64_t seq = 0;
    uint64_t gen = 0;  // bumped whenever the node leaves the schedule
    std::coroutine_handle<> h{};
    uint32_t prev = kNil;  // intrusive slot list (wheel residents only)
    uint32_t next = kNil;  // doubles as the freelist link
    uint32_t rc_clock = RaceCheck::kNoClock;  // scheduler's VC snapshot
    uint8_t level = 0;     // wheel position, valid while state == kPending
    uint8_t slot = 0;
    enum State : uint8_t {
      kFree,
      kPending,   // linked in a wheel slot
      kOverflow,  // owned by the overflow heap
      kBatched,   // collected into the current dispatch batch
      kDead,      // cancelled while heap-owned or batched; reaped lazily
      kSmallQ,    // resident in the shallow-depth sorted queue
    };
    State state = kFree;
  };

  struct HeapEntry {
    Time t;
    uint64_t seq;
    uint32_t node;
    bool operator>(const HeapEntry& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  struct Detached {
    struct promise_type {
      static void* operator new(size_t n) { return frame_arena_alloc(n); }
      static void operator delete(void* p, size_t n) {
        frame_arena_free(p, n);
      }
      Detached get_return_object() { return {}; }
      std::suspend_never initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception() noexcept { std::terminate(); }
    };
  };
  static Detached run_root(Simulator* s, Task<void> t);

  // --- node arena -------------------------------------------------------
  uint32_t alloc_node() {
    if (free_nodes_ != kNil) {
      uint32_t idx = free_nodes_;
      free_nodes_ = nodes_[idx].next;
      nodes_[idx].next = kNil;
      return idx;
    }
    nodes_.emplace_back();
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  void free_node(uint32_t idx) {
    TimerNode& n = nodes_[idx];
    ++n.gen;  // invalidate any outstanding TimerHandle
    n.h = {};
    n.state = TimerNode::kFree;
    n.prev = kNil;
    n.next = free_nodes_;
    if (n.rc_clock != RaceCheck::kNoClock) {
      rc_owner_->drop(n.rc_clock);
      n.rc_clock = RaceCheck::kNoClock;
    }
    free_nodes_ = idx;
  }

  // --- wheel operations (definitions in simulator.cc) -------------------
  void insert(uint32_t idx);
  void wheel_or_heap_insert(uint32_t idx);
  void small_insert(uint32_t idx);
  void wheel_link(uint32_t idx);
  void wheel_unlink(uint32_t idx);
  void cascade(unsigned level, unsigned slot);
  bool find_next_batch();  // fills batch_/batch_time_; false when drained
  void collect_slot_batch(unsigned slot);
  void collect_heap_batch();
  void drain(bool bounded, Time deadline);
  bool cancel_impl(uint32_t idx, uint64_t gen);
  RunResult make_result() const {
    return RunResult{now_, processed_, cancelled_, live_, peak_depth_};
  }

  // --- state ------------------------------------------------------------
  std::vector<TimerNode> nodes_;
  uint32_t free_nodes_ = kNil;

  // Intrusive FIFO list per slot, indexed level * kSlots + slot.
  uint32_t slot_head_[kLevels * kSlots];
  uint32_t slot_tail_[kLevels * kSlots];
  uint64_t occupancy_[kLevels] = {};  // bit s set <=> slot s non-empty
  uint64_t wheel_cursor_ = 0;         // ns; monotone, never decreases
  size_t wheel_count_ = 0;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      overflow_;

  // Shallow-depth fast path: while small_mode_ holds, every pending timer
  // lives in this vector, sorted by (t, seq). Crossing kSmallCap migrates
  // everything into the wheel/heap; the wheel hands back only on full drain.
  std::vector<uint32_t> small_;
  bool small_mode_ = true;
  static constexpr size_t kSmallCap = 64;

  std::vector<uint32_t> batch_;  // node ids dispatching at batch_time_
  Time batch_time_{0};

  Time now_{0};
  uint64_t seq_ = 0;
  uint64_t processed_ = 0;
  uint64_t cancelled_ = 0;
  size_t pending_ = 0;
  size_t peak_depth_ = 0;
  size_t live_ = 0;
  std::exception_ptr first_error_{};

  // RaceCheck: rc_owner_ always exists; rc_ is non-null exactly while the
  // checker is enabled (maintained by RaceCheck::set_mode), so the hot
  // path pays one pointer test when off.
  std::unique_ptr<RaceCheck> rc_owner_;
  RaceCheck* rc_ = nullptr;
  uint64_t tiebreak_seed_ = 0;   // 0 => classic FIFO dispatch order
  uint64_t tiebreak_state_ = 0;  // splitmix64 stream, advanced per draw
};

inline bool TimerHandle::cancel() {
  if (!sim_) return false;
  Simulator* s = std::exchange(sim_, nullptr);
  return s->cancel_impl(node_, gen_);
}

inline bool TimerHandle::active() const {
  return sim_ && sim_->nodes_[node_].gen == gen_;
}

inline bool TimerHandle::reschedule(Time t) {
  if (!sim_ || sim_->nodes_[node_].gen != gen_) {
    sim_ = nullptr;
    return false;
  }
  Simulator* s = sim_;
  std::coroutine_handle<> h = s->nodes_[node_].h;
  cancel();
  --s->cancelled_;  // a reschedule is a move, not a cancellation, in stats
  *this = s->schedule_at(t, h);
  return true;
}

}  // namespace hatrpc::sim
