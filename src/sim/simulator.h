// Discrete-event simulator: a virtual clock plus an event queue of
// coroutine resumptions. Single-threaded and fully deterministic — events
// at equal times run in FIFO schedule order.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <queue>
#include <vector>

#include "sim/task.h"
#include "sim/time.h"

namespace hatrpc::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Queues `h` to resume at absolute virtual time `t` (>= now).
  void schedule_at(Time t, std::coroutine_handle<> h) {
    assert(t >= now_);
    queue_.push(Event{t, seq_++, h});
  }

  void schedule_after(Duration d, std::coroutine_handle<> h) {
    schedule_at(now_ + (d.count() > 0 ? d : Duration{0}), h);
  }

  /// Awaitable that suspends the current coroutine for `d` of virtual time.
  auto sleep(Duration d) {
    struct Awaiter {
      Simulator& sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_after(d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Suspends until absolute virtual time `t` (no-op if already past).
  auto sleep_until(Time t) { return sleep(t > now_ ? t - now_ : Duration{0}); }

  /// Reschedules the caller at the current time, letting same-time events run.
  auto yield() { return sleep(Duration{0}); }

  /// Launches a root task. It starts running immediately (at the current
  /// virtual time) until its first suspension. Exceptions escaping a spawned
  /// task are captured and rethrown by run().
  void spawn(Task<void> t);

  /// Runs until the event queue drains. Returns the final virtual time.
  /// Rethrows the first exception that escaped any spawned task.
  Time run();

  /// Runs until the event queue drains or virtual time would exceed
  /// `deadline`; events after the deadline stay queued.
  Time run_until(Time deadline);

  /// Number of spawned root tasks that have not yet completed. Nonzero after
  /// run() returns means tasks are deadlocked on conditions that never fire.
  size_t live_tasks() const { return live_; }

  /// Total events processed (determinism/regression checks).
  uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    Time t;
    uint64_t seq;
    std::coroutine_handle<> h;
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  struct Detached {
    struct promise_type {
      Detached get_return_object() { return {}; }
      std::suspend_never initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception() noexcept { std::terminate(); }
    };
  };
  static Detached run_root(Simulator* s, Task<void> t);

  void drain(bool bounded, Time deadline);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_{0};
  uint64_t seq_ = 0;
  uint64_t processed_ = 0;
  size_t live_ = 0;
  std::exception_ptr first_error_{};
};

}  // namespace hatrpc::sim
