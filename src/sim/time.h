// Virtual-time units for the discrete-event simulator.
//
// All simulated clocks count nanoseconds since simulation start. We reuse
// std::chrono so call sites can write `5us` / `1ms` literals, and add the
// scaling helpers the cost model needs (durations scaled by contention
// factors, byte counts converted at a bandwidth).
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>

namespace hatrpc::sim {

using Duration = std::chrono::nanoseconds;
using Time = Duration;  // offset from simulation start

using namespace std::chrono_literals;

/// Scales a duration by a (possibly fractional) factor, rounding to ns.
constexpr Duration scale(Duration d, double factor) {
  return Duration(static_cast<int64_t>(std::llround(
      static_cast<double>(d.count()) * factor)));
}

/// Time to move `bytes` at `gbytes_per_sec` (decimal GB/s).
constexpr Duration transfer_time(uint64_t bytes, double gbytes_per_sec) {
  return Duration(static_cast<int64_t>(
      std::llround(static_cast<double>(bytes) / gbytes_per_sec)));
}

/// Seconds as a double, for throughput reporting.
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) * 1e-9;
}

constexpr double to_micros(Duration d) {
  return static_cast<double>(d.count()) * 1e-3;
}

}  // namespace hatrpc::sim
