// Lazy coroutine task type used by every simulated activity.
//
// A `Task<T>` is a coroutine that starts suspended and runs when awaited
// (symmetric transfer), completing by resuming its awaiter. Exceptions
// thrown inside a task propagate to the awaiter. Root tasks are handed to
// `Simulator::spawn`, which drives them from the event loop.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

#include "sim/arena.h"

namespace hatrpc::sim {

template <class T>
class [[nodiscard]] Task;

namespace detail {

template <class T>
struct TaskPromise;

struct TaskPromiseBase {
  // Coroutine frames are the sim's highest-churn allocation (one per
  // awaited sub-task); recycle them through the FrameArena freelists.
  static void* operator new(size_t n) { return frame_arena_alloc(n); }
  static void operator delete(void* p, size_t n) { frame_arena_free(p, n); }

  std::coroutine_handle<> continuation{};
  std::exception_ptr error{};

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <class P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { error = std::current_exception(); }
};

template <class T>
struct TaskPromise : TaskPromiseBase {
  std::optional<T> value;

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }

  T take() {
    if (error) std::rethrow_exception(error);
    return std::move(*value);
  }
};

template <>
struct TaskPromise<void> : TaskPromiseBase {
  Task<void> get_return_object();
  void return_void() {}

  void take() {
    if (error) std::rethrow_exception(error);
  }
};

}  // namespace detail

/// A lazily-started coroutine producing a `T`. Move-only; owns the frame.
template <class T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return h_ && h_.done(); }

  /// Awaiting a task starts it and suspends the awaiter until it finishes.
  auto operator co_await() & = delete;  // must await an rvalue (ownership)
  auto operator co_await() && {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() { return h.promise().take(); }
    };
    return Awaiter{h_};
  }

  /// Releases ownership of the coroutine handle (used by Simulator::spawn).
  Handle release() { return std::exchange(h_, {}); }

 private:
  Handle h_;
};

namespace detail {

template <class T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace hatrpc::sim
