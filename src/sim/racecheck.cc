#include "sim/racecheck.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "sim/simulator.h"

namespace hatrpc::sim {

std::string RaceReport::str() const {
  auto prov = [](const RaceAccess& a) {
    std::string s = a.site;
    s += " (";
    s += a.write ? "write" : "read";
    s += ", chain ";
    s += std::to_string(a.chain);
    s += ", clk ";
    s += std::to_string(a.clk);
    s += ", t=";
    s += std::to_string(a.at.count());
    s += "ns)";
    return s;
  };
  std::string out = "racecheck[";
  out += to_string(kind);
  out += "] obj=";
  out += object;
  out += ": ";
  if (prev.valid()) {
    out += prov(prev);
    out += " vs ";
  }
  out += prov(cur);
  out += ": ";
  out += detail;
  return out;
}

RaceCheck::Mode RaceCheck::env_mode() {
  const char* v = std::getenv("RACECHECK");
  if (!v) return Mode::kOff;
  if (std::strcmp(v, "abort") == 0) return Mode::kAbort;
  if (std::strcmp(v, "record") == 0 || std::strcmp(v, "on") == 0 ||
      std::strcmp(v, "1") == 0)
    return Mode::kRecord;
  return Mode::kOff;
}

RaceCheck::RaceCheck(Simulator& sim) : sim_(sim), mode_(env_mode()) {
  // Chain 0 is the root segment (main, before the first dispatch).
  cur_vc_.assign(1, 1);
  chain_tail_.assign(1, 0);
  chain_last_emit_.assign(1, 0);
  sim_.rc_ = on() ? this : nullptr;
}

void RaceCheck::set_mode(Mode m) {
  mode_ = m;
  sim_.rc_ = on() ? this : nullptr;
}

RaceAccess RaceCheck::here(bool write, const char* site) const {
  return RaceAccess{sim_.now(), cur_chain_, cur_vc_[cur_chain_], write, site};
}

void RaceCheck::join(VC& into, const VC& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (size_t i = 0; i < from.size(); ++i)
    into[i] = std::max(into[i], from[i]);
}

uint32_t RaceCheck::alloc_snap() {
  if (!snap_free_.empty()) {
    uint32_t s = snap_free_.back();
    snap_free_.pop_back();
    return s;
  }
  snaps_.emplace_back();
  return static_cast<uint32_t>(snaps_.size() - 1);
}

void RaceCheck::free_snap(uint32_t slot) {
  snaps_[slot].clear();  // keeps capacity for reuse
  snap_free_.push_back(slot);
}

uint32_t RaceCheck::capture() {
  uint32_t s = alloc_snap();
  snaps_[s] = cur_vc_;
  tick();
  return s;
}

void RaceCheck::drop(uint32_t slot) { free_snap(slot); }

void RaceCheck::merge_into(uint32_t from, uint32_t into) {
  join(snaps_[into], snaps_[from]);
  free_snap(from);
}

void RaceCheck::begin_segment(uint32_t slot) {
  // End the current segment; its chain becomes reusable.
  chain_tail_[cur_chain_] = clk();
  free_chains_.push_back(cur_chain_);

  VC v = std::move(snaps_[slot]);
  free_snap(slot);

  // A free chain may carry the new segment iff the snapshot dominates
  // everything the chain ever EMITTED (accesses / releases). Snapshot-only
  // ticks past the last emission don't block reuse — nothing observable
  // carries those clock values — which is what lets a sleeping coroutine
  // resume onto its own chain. Reuse can only under-report (same-chain
  // epochs are ordered by construction), and the emission condition rules
  // even that out.
  uint32_t c = kNoClock;
  size_t scan = std::min(free_chains_.size(), kReuseScan);
  for (size_t i = 0; i < scan; ++i) {
    size_t at = free_chains_.size() - 1 - i;
    uint32_t fc = free_chains_[at];
    uint64_t have = fc < v.size() ? v[fc] : 0;
    if (have >= chain_last_emit_[fc]) {
      c = fc;
      free_chains_.erase(free_chains_.begin() + static_cast<long>(at));
      break;
    }
  }
  if (c == kNoClock) {
    c = static_cast<uint32_t>(chain_tail_.size());
    chain_tail_.push_back(0);
    chain_last_emit_.push_back(0);
  }
  cur_vc_ = std::move(v);
  if (cur_vc_.size() <= c) cur_vc_.resize(c + 1, 0);
  cur_vc_[c] = std::max(cur_vc_[c], chain_tail_[c]) + 1;
  cur_chain_ = c;
}

void RaceCheck::acquire_token(uint32_t slot) {
  join(cur_vc_, snaps_[slot]);
  free_snap(slot);
}

void RaceCheck::run_barrier() {
  // drain() returned control to the caller: in every legal schedule the
  // caller resumes only after all dispatched segments ran to suspension,
  // so joining every chain's final clock is sound.
  for (size_t c = 0; c < chain_tail_.size(); ++c) {
    uint64_t last = std::max(chain_tail_[c], chain_last_emit_[c]);
    if (c < cur_vc_.size()) {
      cur_vc_[c] = std::max(cur_vc_[c], last);
    } else {
      cur_vc_.resize(c + 1, 0);
      cur_vc_[c] = last;
    }
  }
  tick();
}

void RaceCheck::sync_release(const void* obj, uint64_t sub) {
  VC& v = sync_[LocKey{obj, sub}];
  join(v, cur_vc_);
  emit();
  tick();
}

void RaceCheck::sync_acquire(const void* obj, uint64_t sub) {
  auto it = sync_.find(LocKey{obj, sub});
  if (it != sync_.end()) join(cur_vc_, it->second);
}

std::string RaceCheck::object_name(const Loc& l, const LocKey& k) const {
  std::string s = l.name;
  s += '[';
  s += std::to_string(k.sub);
  s += ']';
  return s;
}

void RaceCheck::record(std::vector<RaceAccess>& list, const RaceAccess& a) {
  // Replace entries this access dominates (transitivity makes them
  // redundant for future conflict checks); keep one entry per live chain.
  size_t keep = 0;
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i].chain == a.chain || hb(list[i])) continue;
    list[keep++] = list[i];
  }
  list.resize(keep);
  list.push_back(a);
}

void RaceCheck::access(const void* obj, uint64_t sub, Access a,
                       const char* name, const char* site) {
  LocKey key{obj, sub};
  Loc& l = locs_[key];
  l.name = name;
  RaceAccess cur = here(a != Access::kRead, site);

  if (l.dead) {
    report(RaceKind::kLifetime, object_name(l, key), l.retired, cur,
           "access to a retired location");
    emit();
    return;
  }

  switch (a) {
    case Access::kRead:
      if (l.write.valid() && !hb(l.write))
        report(RaceKind::kRace, object_name(l, key), l.write, cur,
               "unsynchronized write/read");
      for (const auto& u : l.updates)
        if (!hb(u))
          report(RaceKind::kRace, object_name(l, key), u, cur,
                 "unsynchronized update/read");
      record(l.reads, cur);
      break;
    case Access::kWrite:
      if (l.write.valid() && !hb(l.write))
        report(RaceKind::kRace, object_name(l, key), l.write, cur,
               "unsynchronized write/write");
      for (const auto& r : l.reads)
        if (!hb(r))
          report(RaceKind::kRace, object_name(l, key), r, cur,
                 "unsynchronized read/write");
      for (const auto& u : l.updates)
        if (!hb(u))
          report(RaceKind::kRace, object_name(l, key), u, cur,
                 "unsynchronized update/write");
      l.reads.clear();
      l.updates.clear();
      l.write = cur;
      break;
    case Access::kUpdate:
      // Relaxed: updates commute with each other by design; only strict
      // accesses (and lifetime) conflict with them.
      if (l.write.valid() && !hb(l.write))
        report(RaceKind::kRace, object_name(l, key), l.write, cur,
               "unsynchronized write/update");
      for (const auto& r : l.reads)
        if (!hb(r))
          report(RaceKind::kRace, object_name(l, key), r, cur,
                 "unsynchronized read/update");
      record(l.updates, cur);
      break;
  }
  emit();
}

void RaceCheck::retire(const void* obj, uint64_t sub, const char* name,
                       const char* site) {
  LocKey key{obj, sub};
  Loc& l = locs_[key];
  l.name = name;
  RaceAccess cur = here(true, site);
  if (l.dead) {
    report(RaceKind::kLifetime, object_name(l, key), l.retired, cur,
           "retire of an already-retired location");
  } else {
    // A retire racing a recorded access is a use-after-free in waiting.
    auto check = [&](const RaceAccess& a) {
      if (!hb(a))
        report(RaceKind::kLifetime, object_name(l, key), a, cur,
               "retired while an unordered access is live");
    };
    if (l.write.valid()) check(l.write);
    for (const auto& r : l.reads) check(r);
    for (const auto& u : l.updates) check(u);
  }
  l.dead = true;
  l.retired = cur;
  emit();
}

void RaceCheck::revive(const void* obj, uint64_t sub) {
  locs_.erase(LocKey{obj, sub});
}

void RaceCheck::forget(const void* obj, uint64_t sub) {
  locs_.erase(LocKey{obj, sub});
  sync_.erase(LocKey{obj, sub});
}

void RaceCheck::report_lifetime(const void* obj, uint64_t sub,
                                const char* name, const char* site,
                                std::string detail) {
  LocKey key{obj, sub};
  Loc& l = locs_[key];
  l.name = name;
  RaceAccess cur = here(true, site);
  RaceAccess prev = l.dead ? l.retired : RaceAccess{};
  report(RaceKind::kLifetime, object_name(l, key), prev, cur,
         std::move(detail));
  emit();
}

void RaceCheck::report(RaceKind kind, std::string object,
                       const RaceAccess& prev, const RaceAccess& cur,
                       std::string detail) {
  RaceReport r{kind, std::move(object), prev, cur, std::move(detail)};
  reports_.push_back(r);
  if (mirror_) ++*mirror_;
  if (mode_ == Mode::kAbort && tolerate_ == 0) {
    if (std::uncaught_exceptions() > 0) {
      std::fprintf(stderr, "%s\n", r.str().c_str());
    } else {
      throw RaceViolation(r);
    }
  }
}

}  // namespace hatrpc::sim
