// Deterministic, seedable random number generation for workloads.
//
// xoshiro256** seeded via SplitMix64 — fast, high quality, and reproducible
// across platforms (unlike std::mt19937 + std::uniform_int_distribution,
// whose outputs vary across standard libraries).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace hatrpc::sim {

/// SplitMix64 — used for seeding and as a cheap standalone generator.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() {
    return std::numeric_limits<uint64_t>::max();
  }
  uint64_t operator()() { return next(); }

  uint64_t next() {
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t bounded(uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    bounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform01() < p; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::array<uint64_t, 4> s_{};
};

}  // namespace hatrpc::sim
