// Arena allocation for the simulator's per-op churn objects.
//
// A million-op run allocates and frees the same small objects over and over:
// coroutine frames (one per spawned task and awaited sub-task), scheduler
// timer nodes, shared-state blocks for pending calls, and the byte buffers
// the simulated NIC snapshots payloads into. Hitting the general-purpose
// allocator for each one dominates the hot path once the event queue itself
// is O(1), so everything recyclable goes through the pools here instead:
//
//   * FrameArena — size-bucketed freelists for coroutine frames and other
//     transient blocks. First use of a size class hits ::operator new; every
//     later alloc of that class pops a recycled block (a "reuse"). Nothing
//     is returned to the OS until process exit, which is exactly the
//     behaviour a steady-state simulation wants.
//   * PoolAllocator / pooled_shared — std::allocate_shared plumbing over the
//     FrameArena so shared control blocks (PendingCall, CallState, snapshot
//     leases) stop costing one malloc per RPC.
//   * BufArena — recycled std::vector<std::byte> payload buffers for the
//     fabric's inline-WQE and READ-response snapshots; capacity is retained
//     across leases so steady state performs no byte-buffer mallocs at all.
//
// Under AddressSanitizer the pools pass straight through to the global
// allocator (poisoning/quarantine must keep seeing every free); the stats
// still count, but reuse oracles should check FrameArena::pooling_enabled().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HATRPC_SIM_ARENA_PASSTHROUGH 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define HATRPC_SIM_ARENA_PASSTHROUGH 1
#endif
#ifndef HATRPC_SIM_ARENA_PASSTHROUGH
#define HATRPC_SIM_ARENA_PASSTHROUGH 0
#endif

namespace hatrpc::sim {

/// Size-bucketed freelist recycler. Buckets are 64-byte granular up to 4 KiB;
/// larger blocks (rare: deep coroutine frames) fall through to the heap.
class FrameArena {
 public:
  struct Stats {
    uint64_t allocs = 0;        // total requests served
    uint64_t reuses = 0;        // served from a freelist
    uint64_t fresh_blocks = 0;  // served by ::operator new
    uint64_t oversize = 0;      // larger than the biggest bucket
  };

  static constexpr size_t kGranularity = 64;
  static constexpr size_t kBuckets = 64;  // up to 64 * 64 = 4096 bytes
  static constexpr size_t kMaxPooled = kGranularity * kBuckets;

  static constexpr bool pooling_enabled() {
    return !HATRPC_SIM_ARENA_PASSTHROUGH;
  }

  /// The process-wide arena used by coroutine promises and pooled_shared.
  /// (The simulator is single-threaded per Simulator; thread_local keeps
  /// independent simulators on different threads from sharing freelists.)
  static FrameArena& instance() {
    static thread_local FrameArena a;
    return a;
  }

  void* alloc(size_t n) {
    ++stats_.allocs;
    if (!pooling_enabled() || n > kMaxPooled) {
      if (n > kMaxPooled) ++stats_.oversize;
      ++stats_.fresh_blocks;
      return ::operator new(n);
    }
    size_t b = bucket(n);
    if (FreeBlock* f = free_[b]) {
      free_[b] = f->next;
      ++stats_.reuses;
      return f;
    }
    ++stats_.fresh_blocks;
    return ::operator new((b + 1) * kGranularity);
  }

  void free(void* p, size_t n) {
    if (!p) return;
    if (!pooling_enabled() || n > kMaxPooled) {
      ::operator delete(p);
      return;
    }
    auto* f = static_cast<FreeBlock*>(p);
    size_t b = bucket(n);
    f->next = free_[b];
    free_[b] = f;
  }

  const Stats& stats() const { return stats_; }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };

  static constexpr size_t bucket(size_t n) {
    return (n + kGranularity - 1) / kGranularity - 1;
  }

  FreeBlock* free_[kBuckets] = {};
  Stats stats_;
};

inline void* frame_arena_alloc(size_t n) {
  return FrameArena::instance().alloc(n);
}
inline void frame_arena_free(void* p, size_t n) {
  FrameArena::instance().free(p, n);
}

/// Minimal std::allocator replacement drawing from the FrameArena, for
/// std::allocate_shared (object + control block in one recycled block).
template <class T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <class U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(frame_arena_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) { frame_arena_free(p, n * sizeof(T)); }

  template <class U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

/// Drop-in for std::make_shared that recycles the combined allocation.
template <class T, class... Args>
std::shared_ptr<T> pooled_shared(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>{},
                                 std::forward<Args>(args)...);
}

/// Recycler of byte vectors for payload snapshots. Leases keep their
/// capacity when they come back, so a steady-state workload stops growing.
class BufArena {
 public:
  struct Stats {
    uint64_t leases = 0;
    uint64_t reuses = 0;  // lease served by a recycled vector
  };

  /// Movable RAII lease of a std::vector<std::byte> sized to `n`.
  class Lease {
   public:
    Lease() = default;
    Lease(BufArena* a, std::vector<std::byte> v)
        : arena_(a), v_(std::move(v)) {}
    Lease(Lease&& o) noexcept
        : arena_(std::exchange(o.arena_, nullptr)), v_(std::move(o.v_)) {}
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        reset();
        arena_ = std::exchange(o.arena_, nullptr);
        v_ = std::move(o.v_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { reset(); }

    std::byte* data() { return v_.data(); }
    const std::byte* data() const { return v_.data(); }
    size_t size() const { return v_.size(); }

   private:
    void reset() {
      if (arena_) arena_->recycle(std::move(v_));
      arena_ = nullptr;
    }
    BufArena* arena_ = nullptr;
    std::vector<std::byte> v_;
  };

  Lease lease(size_t n) {
    ++stats_.leases;
    if (!free_.empty()) {
      std::vector<std::byte> v = std::move(free_.back());
      free_.pop_back();
      ++stats_.reuses;
      v.resize(n);
      return Lease(this, std::move(v));
    }
    return Lease(this, std::vector<std::byte>(n));
  }

  /// Shared lease whose lifetime can ride a WQE's keep_alive slot. The
  /// control block comes from the FrameArena; the bytes recycle on release.
  std::shared_ptr<Lease> shared_lease(size_t n) {
    return pooled_shared<Lease>(lease(n));
  }

  const Stats& stats() const { return stats_; }
  size_t pooled() const { return free_.size(); }

 private:
  friend class Lease;
  void recycle(std::vector<std::byte> v) { free_.push_back(std::move(v)); }

  std::vector<std::vector<std::byte>> free_;
  Stats stats_;
};

}  // namespace hatrpc::sim
