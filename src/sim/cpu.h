// CPU contention model for a simulated node.
//
// A node owns a fixed number of cores. Two kinds of demand compete for them:
//   * computations — handler work, serialization, per-op software overheads,
//     modelled by `compute(work)` which stretches the work by the current
//     over-subscription factor (processor sharing) and charges a context
//     switch when the node is over-subscribed;
//   * busy pollers — threads spinning on a completion queue. Each registered
//     busy poller permanently occupies a core while active. Under
//     over-subscription a busy poller only sees its completion after waiting
//     for its next time slice, which is what makes busy polling collapse at
//     high client counts (paper Fig. 5) without that behaviour being
//     hard-coded anywhere.
//
// Event-polling pickups instead pay a fixed interrupt/wake-up latency plus a
// mild scheduling delay driven only by *running* work, so they scale.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/time.h"

namespace hatrpc::sim {

enum class PollMode : uint8_t { kBusy, kEvent };

class Cpu {
 public:
  struct Params {
    int cores = 28;                    // Xeon Gold 6132 (paper testbed)
    Duration timeslice = 5us;          // scheduler quantum share
    Duration ctx_switch = 2us;         // charged when over-subscribed
    Duration busy_check = 50ns;        // spin loop reaction time
    Duration interrupt_wakeup = 3us;   // event-polling wake-up (paper §3.2)
  };

  Cpu(Simulator& sim, Params p) : sim_(sim), p_(p) {}
  explicit Cpu(Simulator& sim);  // defined below (GCC NSDMI quirk)

  Simulator& simulator() { return sim_; }
  const Params& params() const { return p_; }
  int cores() const { return p_.cores; }

  /// Demand / cores, floored at 1.0. Busy pollers and active computations
  /// both count as demand.
  double oversubscription() const {
    double demand = static_cast<double>(busy_pollers_ + active_);
    return std::max(1.0, demand / static_cast<double>(p_.cores));
  }

  bool oversubscribed() const { return busy_pollers_ + active_ > p_.cores; }

  /// Runs `work` of CPU time, stretched by contention.
  Task<void> compute(Duration work) {
    ++active_;
    double f = oversubscription();
    Duration d = scale(work, f);
    if (f > 1.0) d += p_.ctx_switch;
    co_await sim_.sleep(d);
    --active_;
  }

  /// Latency between a completion becoming visible and the polling thread
  /// acting on it.
  Duration pickup_delay(PollMode mode) const {
    if (mode == PollMode::kBusy) {
      // A spinning thread reacts within its check interval while it holds a
      // core; once over-subscribed it must first be rescheduled, which costs
      // (f - 1) quanta on average.
      double f = oversubscription();
      Duration d = p_.busy_check;
      if (f > 1.0) d += scale(p_.timeslice, f - 1.0) + p_.ctx_switch;
      return d;
    }
    // Event polling: interrupt + wake-up, plus queueing behind running work
    // only (sleeping waiters do not consume cores).
    double f = std::max(
        1.0, static_cast<double>(active_) / static_cast<double>(p_.cores));
    return scale(p_.interrupt_wakeup, f);
  }

  /// RAII registration of a spinning thread. Hold while busy-polling a CQ.
  class BusyGuard {
   public:
    explicit BusyGuard(Cpu& cpu) : cpu_(&cpu) { ++cpu_->busy_pollers_; }
    BusyGuard(BusyGuard&& o) noexcept : cpu_(std::exchange(o.cpu_, nullptr)) {}
    BusyGuard& operator=(BusyGuard&& o) noexcept {
      if (this != &o) {
        reset();
        cpu_ = std::exchange(o.cpu_, nullptr);
      }
      return *this;
    }
    BusyGuard(const BusyGuard&) = delete;
    BusyGuard& operator=(const BusyGuard&) = delete;
    ~BusyGuard() { reset(); }

   private:
    void reset() {
      if (cpu_) --cpu_->busy_pollers_;
      cpu_ = nullptr;
    }
    Cpu* cpu_;
  };

  BusyGuard busy_guard() { return BusyGuard(*this); }

  int busy_pollers() const { return busy_pollers_; }
  int active_computations() const { return active_; }

 private:
  friend class BusyGuard;
  Simulator& sim_;
  Params p_;
  int busy_pollers_ = 0;
  int active_ = 0;
};

inline Cpu::Cpu(Simulator& sim) : Cpu(sim, Params{}) {}

}  // namespace hatrpc::sim
