// CPU contention model for a simulated node.
//
// A node owns a fixed number of cores. Two kinds of demand compete for them:
//   * computations — handler work, serialization, per-op software overheads,
//     modelled by `compute(work)` which stretches the work by the current
//     over-subscription factor (processor sharing) and charges a context
//     switch when the node is over-subscribed;
//   * busy pollers — threads spinning on a completion queue. Each registered
//     busy poller permanently occupies a core while active. Under
//     over-subscription a busy poller only sees its completion after waiting
//     for its next time slice, which is what makes busy polling collapse at
//     high client counts (paper Fig. 5) without that behaviour being
//     hard-coded anywhere.
//
// Event-polling pickups instead pay a fixed interrupt/wake-up latency plus a
// mild scheduling delay driven only by *running* work, so they scale.
//
// Core binding (per-core sharded servers): work and polling can be pinned to
// a specific core instead of floating over the whole node. A pinned shard
// models the Storm-style per-thread RPC context: ONE polling thread per
// shard, registered once via pin_spinner(core), runs its connections'
// handlers itself (run-to-completion). Consequences the model reproduces:
//   * pinned demand contends only on its own core — per-core processor
//     sharing, so a shard saturates at its core's capacity (the knee);
//   * two busy shards pinned to the same core each see the other's spinning
//     thread, so pickups pay reschedule quanta and compute stretches 2x —
//     the over-subscription collapse when shards exceed physical cores;
//   * one spinner is credited back while its own bound work computes (the
//     polling thread IS the compute thread), so a lone shard with one
//     in-flight handler runs at full speed.
// Unbound (core < 0) paths are bit-identical to the pre-binding model as
// long as nothing on the node is bound.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/time.h"

namespace hatrpc::sim {

enum class PollMode : uint8_t { kBusy, kEvent };

class Cpu {
 public:
  struct Params {
    int cores = 28;                    // Xeon Gold 6132 (paper testbed)
    Duration timeslice = 5us;          // scheduler quantum share
    Duration ctx_switch = 2us;         // charged when over-subscribed
    Duration busy_check = 50ns;        // spin loop reaction time
    Duration interrupt_wakeup = 3us;   // event-polling wake-up (paper §3.2)
  };

  /// "Not pinned": the legacy whole-node contention model.
  static constexpr int kAnyCore = -1;

  Cpu(Simulator& sim, Params p)
      : sim_(sim), p_(p),
        core_spin_(static_cast<size_t>(p.cores), 0),
        core_active_(static_cast<size_t>(p.cores), 0) {}
  explicit Cpu(Simulator& sim);  // defined below (GCC NSDMI quirk)

  Simulator& simulator() { return sim_; }
  const Params& params() const { return p_; }
  int cores() const { return p_.cores; }

  /// Demand / cores, floored at 1.0. Busy pollers and active computations
  /// both count as demand; pinned spinners and pinned work are part of the
  /// node's total demand too.
  double oversubscription() const {
    double demand = static_cast<double>(busy_pollers_ + active_ +
                                        bound_spin_ + bound_active_);
    return std::max(1.0, demand / static_cast<double>(p_.cores));
  }

  bool oversubscribed() const {
    return busy_pollers_ + active_ + bound_spin_ + bound_active_ > p_.cores;
  }

  /// Runs `work` of CPU time, stretched by contention. With `core >= 0` the
  /// work is pinned: it contends against that core's spinners and bound
  /// work (plus an even share of the node's floating demand) instead of the
  /// whole-node average — and one resident spinner is credited back, since
  /// the shard's polling thread executes its handlers itself.
  Task<void> compute(Duration work, int core = kAnyCore) {
    if (core < 0) {
      ++active_;
      double f = oversubscription();
      Duration d = scale(work, f);
      if (f > 1.0) d += p_.ctx_switch;
      co_await sim_.sleep(d);
      --active_;
      co_return;
    }
    const size_t k = core_index(core);
    ++core_active_[k];
    ++bound_active_;
    double spin_others =
        core_spin_[k] > 0 ? static_cast<double>(core_spin_[k] - 1) : 0.0;
    double f = std::max(1.0, spin_others +
                                 static_cast<double>(core_active_[k]) +
                                 floating_share());
    Duration d = scale(work, f);
    if (f > 1.0) d += p_.ctx_switch;
    co_await sim_.sleep(d);
    --core_active_[k];
    --bound_active_;
  }

  /// Latency between a completion becoming visible and the polling thread
  /// acting on it. With `core >= 0` the pickup is pinned: a busy pickup is
  /// the shard's spinner reacting on its own core (penalized only by what
  /// shares THAT core), and an event pickup queues behind that core's
  /// running work.
  Duration pickup_delay(PollMode mode, int core = kAnyCore) const {
    if (core < 0) {
      if (mode == PollMode::kBusy) {
        // A spinning thread reacts within its check interval while it holds
        // a core; once over-subscribed it must first be rescheduled, which
        // costs (f - 1) quanta on average.
        double f = oversubscription();
        Duration d = p_.busy_check;
        if (f > 1.0) d += scale(p_.timeslice, f - 1.0) + p_.ctx_switch;
        return d;
      }
      // Event polling: interrupt + wake-up, plus queueing behind running
      // work only (sleeping waiters do not consume cores).
      double f = std::max(
          1.0, static_cast<double>(active_ + bound_active_) /
                   static_cast<double>(p_.cores));
      return scale(p_.interrupt_wakeup, f);
    }
    const size_t k = core_index(core);
    if (mode == PollMode::kBusy) {
      double f = static_cast<double>(core_spin_[k] + core_active_[k]) +
                 floating_share();
      Duration d = p_.busy_check;
      if (f > 1.0) d += scale(p_.timeslice, f - 1.0) + p_.ctx_switch;
      return d;
    }
    double f = std::max(
        1.0, static_cast<double>(core_active_[k]) +
                 static_cast<double>(active_) / static_cast<double>(p_.cores));
    return scale(p_.interrupt_wakeup, f);
  }

  /// RAII registration of a spinning thread. Hold while busy-polling a CQ.
  class BusyGuard {
   public:
    explicit BusyGuard(Cpu& cpu) : cpu_(&cpu) { ++cpu_->busy_pollers_; }
    BusyGuard(BusyGuard&& o) noexcept : cpu_(std::exchange(o.cpu_, nullptr)) {}
    BusyGuard& operator=(BusyGuard&& o) noexcept {
      if (this != &o) {
        reset();
        cpu_ = std::exchange(o.cpu_, nullptr);
      }
      return *this;
    }
    BusyGuard(const BusyGuard&) = delete;
    BusyGuard& operator=(const BusyGuard&) = delete;
    ~BusyGuard() { reset(); }

   private:
    void reset() {
      if (cpu_) --cpu_->busy_pollers_;
      cpu_ = nullptr;
    }
    Cpu* cpu_;
  };

  BusyGuard busy_guard() { return BusyGuard(*this); }

  /// RAII registration of a shard's dedicated polling thread pinned to a
  /// core. Unlike a BusyGuard (held per wait), a SpinGuard is held for the
  /// shard's whole lifetime: the thread spins whether or not a completion
  /// is pending, which is exactly what makes oversubscribed busy shards
  /// collapse. CQs bound to the same core do NOT register per-wait guards —
  /// all their waits multiplex onto this one thread.
  class SpinGuard {
   public:
    SpinGuard() = default;
    SpinGuard(Cpu& cpu, int core) : cpu_(&cpu), k_(cpu.core_index(core)) {
      ++cpu_->core_spin_[k_];
      ++cpu_->bound_spin_;
    }
    SpinGuard(SpinGuard&& o) noexcept
        : cpu_(std::exchange(o.cpu_, nullptr)), k_(o.k_) {}
    SpinGuard& operator=(SpinGuard&& o) noexcept {
      if (this != &o) {
        reset();
        cpu_ = std::exchange(o.cpu_, nullptr);
        k_ = o.k_;
      }
      return *this;
    }
    SpinGuard(const SpinGuard&) = delete;
    SpinGuard& operator=(const SpinGuard&) = delete;
    ~SpinGuard() { reset(); }

   private:
    void reset() {
      if (cpu_) {
        --cpu_->core_spin_[k_];
        --cpu_->bound_spin_;
      }
      cpu_ = nullptr;
    }
    Cpu* cpu_ = nullptr;
    size_t k_ = 0;
  };

  SpinGuard pin_spinner(int core) { return SpinGuard(*this, core); }

  int busy_pollers() const { return busy_pollers_ + bound_spin_; }
  int active_computations() const { return active_ + bound_active_; }
  int spinners(int core) const {
    return core_spin_[core_index(core)];
  }
  int bound_active(int core) const {
    return core_active_[core_index(core)];
  }

 private:
  friend class BusyGuard;
  friend class SpinGuard;

  /// Pinning wraps: binding shard i to core i % cores is how a sweep drives
  /// more shards than physical cores into collapse.
  size_t core_index(int core) const {
    return static_cast<size_t>(core % p_.cores);
  }

  /// Unpinned demand lands evenly across all cores; pinned work sees its
  /// per-core share on top of its own core's residents.
  double floating_share() const {
    return static_cast<double>(busy_pollers_ + active_) /
           static_cast<double>(p_.cores);
  }

  Simulator& sim_;
  Params p_;
  int busy_pollers_ = 0;   // floating (unpinned) spinning waiters
  int active_ = 0;         // floating computations
  int bound_spin_ = 0;     // total pinned spinners (sum of core_spin_)
  int bound_active_ = 0;   // total pinned computations
  std::vector<int> core_spin_;
  std::vector<int> core_active_;
};

inline Cpu::Cpu(Simulator& sim) : Cpu(sim, Params{}) {}

}  // namespace hatrpc::sim
