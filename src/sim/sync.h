// Awaitable synchronization primitives for simulated tasks: wait queues,
// one-shot events, counting semaphores, MPSC/MPMC channels, wait groups,
// and a mutex. All are single-(host-)threaded; "blocking" means suspending
// the coroutine until another task signals it via the simulator queue.
//
// Waiters are linked intrusively: the list node lives inside the awaiter,
// which lives inside the suspended coroutine's frame, so parking a task
// allocates nothing. Timed waits pair the node with a cancellable
// TimerHandle — whichever of notify/deadline fires first synchronously
// removes the other, so a timed-out waiter leaves no dead event behind and
// a notified waiter leaves no stale timer pinning run() open.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "sim/arena.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace hatrpc::sim {

/// FIFO queue of suspended coroutines. Building block for everything else.
class WaitQueue {
 public:
  explicit WaitQueue(Simulator& sim) : sim_(sim) {}
  WaitQueue(const WaitQueue&) = delete;  // nodes hold pointers into *this
  WaitQueue& operator=(const WaitQueue&) = delete;

  /// Suspends the caller until notify_one()/notify_all() reaches it.
  auto wait() {
    struct Awaiter {
      WaitQueue& q;
      Node n;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        n.h = h;
        q.link(&n);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, {}};
  }

  /// Suspends until notified or absolute virtual time `deadline`, whichever
  /// comes first. Returns true if notified, false on timeout. The losing
  /// wakeup (timer or queue entry) is removed from the schedule either way.
  auto wait_until(Time deadline) {
    struct Awaiter {
      WaitQueue& q;
      Time deadline;
      Node n;
      bool await_ready() const noexcept {
        return deadline <= q.sim_.now();  // immediate timeout
      }
      bool await_suspend(std::coroutine_handle<> h) {
        n.h = h;
        q.link(&n);
        n.timer = q.sim_.schedule_at(deadline, h);
        return true;
      }
      bool await_resume() noexcept {
        if (!n.notified && n.q) n.q->unlink(&n);  // timed out while linked
        return n.notified;
      }
    };
    return Awaiter{*this, deadline, {}};
  }

  /// Resumes the oldest waiter (scheduled at the current virtual time).
  /// Returns whether anyone was actually woken.
  bool notify_one() {
    Node* n = head_;
    if (!n) return false;
    n->notified = true;  // before unlink, so unlink keeps the rc token
    unlink(n);
    n->timer.cancel();  // a timed waiter drops its deadline wakeup
    TimerHandle t = sim_.schedule_at(sim_.now(), n->h);
    // The woken segment continues the waiter: its pre-suspend clock rides
    // the wake timer alongside the notifier's snapshot.
    sim_.rc_join(n->rc_token, t);
    n->rc_token = RaceCheck::kNoClock;
    return true;
  }

  void notify_all() {
    while (notify_one()) {
    }
  }

  size_t waiting() const { return size_; }
  Simulator& simulator() { return sim_; }

 private:
  /// Embedded in the awaiter (i.e. in the waiting coroutine's frame); the
  /// destructor unlinks, so destroying a suspended waiter is safe.
  struct Node {
    std::coroutine_handle<> h{};
    Node* prev = nullptr;
    Node* next = nullptr;
    WaitQueue* q = nullptr;  // non-null while linked
    TimerHandle timer{};
    uint32_t rc_token = RaceCheck::kNoClock;  // pre-suspend clock snapshot
    bool notified = false;

    Node() = default;
    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;
    ~Node() {
      if (q) q->unlink(this);
      timer.cancel();
    }
  };

  void link(Node* n) {
    n->q = this;
    n->prev = tail_;
    n->next = nullptr;
    if (tail_) {
      tail_->next = n;
    } else {
      head_ = n;
    }
    tail_ = n;
    ++size_;
    n->rc_token = sim_.rc_capture();
  }

  void unlink(Node* n) {
    if (n->prev) {
      n->prev->next = n->next;
    } else {
      head_ = n->next;
    }
    if (n->next) {
      n->next->prev = n->prev;
    } else {
      tail_ = n->prev;
    }
    n->prev = n->next = nullptr;
    n->q = nullptr;
    --size_;
    if (!n->notified) {  // timed out / destroyed: nobody consumes the token
      sim_.rc_drop(n->rc_token);
      n->rc_token = RaceCheck::kNoClock;
    }
  }

  Simulator& sim_;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  size_t size_ = 0;
};

/// One-shot event: waiters resume once set() is called; waits after set()
/// complete immediately. State lives in a shared core so waiters that
/// outlive the Event object stay valid.
class Event {
 public:
  explicit Event(Simulator& sim) : core_(pooled_shared<Core>(sim)) {}

  Task<void> wait() {
    auto core = core_;
    while (!core->set) co_await core->q.wait();
    // Covers the no-suspend fast path (already set => no wake edge).
    core->q.simulator().rc_sync_acquire(core.get());
  }

  /// Waits until set() or virtual time `deadline`, whichever comes first;
  /// returns whether the event was set. The deadline is absolute. A timeout
  /// cancels the waiter's timer entry — unlike the old implementation,
  /// nothing lingers in the simulator queue until the deadline.
  Task<bool> wait_until(Time deadline) {
    auto core = core_;
    Simulator& sim = core->q.simulator();
    while (!core->set && sim.now() < deadline) {
      co_await core->q.wait_until(deadline);
    }
    if (core->set) sim.rc_sync_acquire(core.get());
    co_return core->set;
  }

  void set() {
    core_->q.simulator().rc_sync_release(core_.get());
    core_->set = true;
    core_->q.notify_all();
  }

  bool is_set() const { return core_->set; }

 private:
  struct Core {
    explicit Core(Simulator& sim) : q(sim) {}
    WaitQueue q;
    bool set = false;
  };

  std::shared_ptr<Core> core_;
};

/// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Simulator& sim, size_t permits) : q_(sim), permits_(permits) {}

  Task<void> acquire() {
    while (permits_ == 0) co_await q_.wait();
    --permits_;
    q_.simulator().rc_sync_acquire(this);
  }

  bool try_acquire() {
    if (permits_ == 0) return false;
    --permits_;
    q_.simulator().rc_sync_acquire(this);
    return true;
  }

  void release(size_t n = 1) {
    q_.simulator().rc_sync_release(this);
    permits_ += n;
    for (size_t i = 0; i < n; ++i) {
      if (!q_.notify_one()) break;  // no waiters left — stop early
    }
  }

  size_t available() const { return permits_; }

 private:
  WaitQueue q_;
  size_t permits_;
};

/// Unbounded multi-producer / multi-consumer channel. pop() on a closed,
/// empty channel returns nullopt.
template <class T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : q_(sim) {}

  void push(T v) {
    q_.simulator().rc_sync_release(this);
    items_.push_back(std::move(v));
    q_.notify_one();
  }

  Task<std::optional<T>> pop() {
    while (items_.empty()) {
      if (closed_) co_return std::nullopt;
      co_await q_.wait();
    }
    T v = std::move(items_.front());
    items_.pop_front();
    q_.simulator().rc_sync_acquire(this);
    co_return v;
  }

  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    q_.simulator().rc_sync_acquire(this);
    return v;
  }

  void close() {
    closed_ = true;
    q_.notify_all();
  }

  bool closed() const { return closed_; }
  size_t size() const { return items_.size(); }

 private:
  WaitQueue q_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Golang-style wait group for joining a dynamic set of tasks.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& sim) : q_(sim) {}

  void add(size_t n = 1) { count_ += n; }

  void done() {
    q_.simulator().rc_sync_release(this);
    if (--count_ == 0) q_.notify_all();
  }

  Task<void> wait() {
    while (count_ != 0) co_await q_.wait();
    q_.simulator().rc_sync_acquire(this);
  }

  size_t count() const { return count_; }

 private:
  WaitQueue q_;
  size_t count_ = 0;
};

/// Non-reentrant mutex for tasks.
class Mutex {
 public:
  explicit Mutex(Simulator& sim) : q_(sim) {}

  Task<void> lock() {
    while (locked_) co_await q_.wait();
    locked_ = true;
    q_.simulator().rc_sync_acquire(this);
  }

  void unlock() {
    q_.simulator().rc_sync_release(this);
    locked_ = false;
    q_.notify_one();
  }

  bool locked() const { return locked_; }

  /// RAII helper: `auto g = co_await mu.scoped();`
  class Guard {
   public:
    explicit Guard(Mutex& m) : m_(&m) {}
    Guard(Guard&& o) noexcept : m_(std::exchange(o.m_, nullptr)) {}
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        reset();
        m_ = std::exchange(o.m_, nullptr);
      }
      return *this;
    }
    ~Guard() { reset(); }

   private:
    void reset() {
      if (m_) m_->unlock();
      m_ = nullptr;
    }
    Mutex* m_;
  };

  Task<Guard> scoped() {
    co_await lock();
    co_return Guard{*this};
  }

 private:
  WaitQueue q_;
  bool locked_ = false;
};

}  // namespace hatrpc::sim
