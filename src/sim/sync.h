// Awaitable synchronization primitives for simulated tasks: wait queues,
// one-shot events, counting semaphores, MPSC/MPMC channels, wait groups,
// and a mutex. All are single-(host-)threaded; "blocking" means suspending
// the coroutine until another task signals it via the simulator queue.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "sim/simulator.h"
#include "sim/task.h"

namespace hatrpc::sim {

/// FIFO queue of suspended coroutines. Building block for everything else.
class WaitQueue {
 public:
  explicit WaitQueue(Simulator& sim) : sim_(sim) {}

  /// Suspends the caller until notify_one()/notify_all() reaches it.
  auto wait() {
    struct Awaiter {
      WaitQueue& q;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { q.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Resumes the oldest waiter (scheduled at the current virtual time).
  void notify_one() {
    if (waiters_.empty()) return;
    auto h = waiters_.front();
    waiters_.pop_front();
    sim_.schedule_at(sim_.now(), h);
  }

  void notify_all() {
    while (!waiters_.empty()) notify_one();
  }

  size_t waiting() const { return waiters_.size(); }
  Simulator& simulator() { return sim_; }

 private:
  Simulator& sim_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// One-shot event: waiters resume once set() is called; waits after set()
/// complete immediately. State lives in a shared core so the timer task
/// behind wait_until() stays valid even if the Event is destroyed first.
class Event {
 public:
  explicit Event(Simulator& sim) : core_(std::make_shared<Core>(sim)) {}

  Task<void> wait() {
    auto core = core_;
    while (!core->set) co_await core->q.wait();
  }

  /// Waits until set() or virtual time `deadline`, whichever comes first;
  /// returns whether the event was set. The deadline is absolute.
  Task<bool> wait_until(Time deadline) {
    auto core = core_;
    Simulator& sim = core->q.simulator();
    if (!core->set && sim.now() < deadline) sim.spawn(wake_at(core, deadline));
    while (!core->set && sim.now() < deadline) co_await core->q.wait();
    co_return core->set;
  }

  void set() {
    core_->set = true;
    core_->q.notify_all();
  }

  bool is_set() const { return core_->set; }

 private:
  struct Core {
    explicit Core(Simulator& sim) : q(sim) {}
    WaitQueue q;
    bool set = false;
  };

  static Task<void> wake_at(std::shared_ptr<Core> core, Time deadline) {
    co_await core->q.simulator().sleep_until(deadline);
    core->q.notify_all();
  }

  std::shared_ptr<Core> core_;
};

/// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Simulator& sim, size_t permits) : q_(sim), permits_(permits) {}

  Task<void> acquire() {
    while (permits_ == 0) co_await q_.wait();
    --permits_;
  }

  bool try_acquire() {
    if (permits_ == 0) return false;
    --permits_;
    return true;
  }

  void release(size_t n = 1) {
    permits_ += n;
    for (size_t i = 0; i < n; ++i) q_.notify_one();
  }

  size_t available() const { return permits_; }

 private:
  WaitQueue q_;
  size_t permits_;
};

/// Unbounded multi-producer / multi-consumer channel. pop() on a closed,
/// empty channel returns nullopt.
template <class T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : q_(sim) {}

  void push(T v) {
    items_.push_back(std::move(v));
    q_.notify_one();
  }

  Task<std::optional<T>> pop() {
    while (items_.empty()) {
      if (closed_) co_return std::nullopt;
      co_await q_.wait();
    }
    T v = std::move(items_.front());
    items_.pop_front();
    co_return v;
  }

  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  void close() {
    closed_ = true;
    q_.notify_all();
  }

  bool closed() const { return closed_; }
  size_t size() const { return items_.size(); }

 private:
  WaitQueue q_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Golang-style wait group for joining a dynamic set of tasks.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& sim) : q_(sim) {}

  void add(size_t n = 1) { count_ += n; }

  void done() {
    if (--count_ == 0) q_.notify_all();
  }

  Task<void> wait() {
    while (count_ != 0) co_await q_.wait();
  }

  size_t count() const { return count_; }

 private:
  WaitQueue q_;
  size_t count_ = 0;
};

/// Non-reentrant mutex for tasks.
class Mutex {
 public:
  explicit Mutex(Simulator& sim) : q_(sim) {}

  Task<void> lock() {
    while (locked_) co_await q_.wait();
    locked_ = true;
  }

  void unlock() {
    locked_ = false;
    q_.notify_one();
  }

  bool locked() const { return locked_; }

  /// RAII helper: `auto g = co_await mu.scoped();`
  class Guard {
   public:
    explicit Guard(Mutex& m) : m_(&m) {}
    Guard(Guard&& o) noexcept : m_(std::exchange(o.m_, nullptr)) {}
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        reset();
        m_ = std::exchange(o.m_, nullptr);
      }
      return *this;
    }
    ~Guard() { reset(); }

   private:
    void reset() {
      if (m_) m_->unlock();
      m_ = nullptr;
    }
    Mutex* m_;
  };

  Task<Guard> scoped() {
    co_await lock();
    co_return Guard{*this};
  }

 private:
  WaitQueue q_;
  bool locked_ = false;
};

}  // namespace hatrpc::sim
