// RaceCheck: a happens-before race & lifetime analyzer for the coroutine
// runtime. VerbsCheck enforces the ibverbs resource contract; RaceCheck
// enforces the ORDERING contract between coroutines — the deterministic
// same-timestamp dispatch order means an order-dependent bug can hide
// forever behind one lucky schedule, and the one-sided / lease / epoch
// paths are exactly where unsynchronized conflicting accesses concentrate.
//
// Clock model (see DESIGN.md §15): every context switch in this runtime
// goes through Simulator::schedule_at, so the scheduler itself carries the
// fork edges — schedule_at snapshots the scheduling segment's vector clock
// into the timer, and dispatch adopts that snapshot as the new segment's
// clock. Join edges are added where the runtime really synchronizes:
//   * WaitQueue notify->wake (the waiter's pre-suspend clock rides the
//     wake timer), which covers Event / Semaphore / Channel / WaitGroup /
//     Mutex and everything built on them;
//   * CQE deliver->poll (each delivered CQE carries the delivering
//     segment's clock; every poll joins it);
//   * keyed release/acquire pairs (sync_release/sync_acquire) for lease
//     and epoch handoffs that bypass a wait queue.
// Segments are assigned to a bounded set of CHAINS (vector-clock indices):
// a chain is reused when the new segment's snapshot dominates everything
// the chain ever emitted (accesses and releases), so clock width tracks
// live concurrency, not total event count.
//
// Locations are (object pointer, sub-index) pairs annotated at hazard
// sites. Three access classes:
//   * kRead / kWrite — strict: unordered conflicting accesses are races;
//   * kUpdate — relaxed, for state that is racy BY DESIGN (in-flight
//     gauges read by steering, dedupe caches, epoch-validated plan
//     snapshots, version-validated one-sided read regions): updates never
//     conflict with each other, but do conflict with strict accesses and
//     still trip lifetime checks.
// retire()/revive() track lifetimes: any access to a retired location
// (a reposted recv-ring slot, a reaped epoch, a freed pool slot) is a
// lifetime violation carrying both provenances.
//
// Modes (env var RACECHECK, or Simulator::racecheck().set_mode()):
//   * off    — every hook returns immediately; runs are byte-identical to
//              an unchecked build (the default).
//   * record — reports are collected and mirrored into the kRaceReports
//              counter; execution continues.
//   * abort  — like record, but the first report throws RaceViolation
//              (printed to stderr instead when already unwinding).
//
// The checker never advances virtual time and never touches RNG state, so
// enabling it cannot perturb a trace. Schedule PERTURBATION is separate
// and explicit: Simulator::set_tiebreak_seed(s) (or the RACECHECK_TIEBREAK
// env var) shuffles same-timestamp dispatch batches deterministically;
// seed 0 keeps the classic sequence order.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace hatrpc::sim {

class Simulator;

enum class RaceKind : uint8_t {
  kRace,      // unsynchronized conflicting accesses to one location
  kLifetime,  // access to a retired location / release discipline broken
  kCount,
};

constexpr const char* to_string(RaceKind k) {
  switch (k) {
    case RaceKind::kRace: return "race";
    case RaceKind::kLifetime: return "lifetime";
    case RaceKind::kCount: break;
  }
  return "unknown";
}

/// Provenance of one annotated access (or retire).
struct RaceAccess {
  Time at{};             // virtual timestamp
  uint32_t chain = 0;    // segment chain id
  uint64_t clk = 0;      // chain-local clock value
  bool write = false;
  const char* site = "";  // static annotation string ("file:line" or name)

  bool valid() const { return site[0] != '\0'; }
};

/// One structured report: the location plus BOTH access provenances.
struct RaceReport {
  RaceKind kind = RaceKind::kCount;
  std::string object;  // e.g. "BufferPool.slot[3]"
  RaceAccess prev;     // the earlier access (or the retire)
  RaceAccess cur;      // the offending access
  std::string detail;

  /// "racecheck[kind] obj=<o>: <prev site> (chain c, clk k, t=..ns) vs
  ///  <cur site> (...): detail"
  std::string str() const;
};

/// Thrown by abort mode at the point of violation.
class RaceViolation : public std::logic_error {
 public:
  explicit RaceViolation(const RaceReport& r)
      : std::logic_error(r.str()), report(r) {}
  RaceReport report;
};

class RaceCheck {
 public:
  enum class Mode : uint8_t { kOff, kRecord, kAbort };

  /// Parses the RACECHECK environment variable: "abort" => kAbort,
  /// "record"/"on"/"1" => kRecord, anything else (or unset) => kOff.
  static Mode env_mode();

  explicit RaceCheck(Simulator& sim);

  Mode mode() const { return mode_; }
  void set_mode(Mode m);
  bool on() const { return mode_ != Mode::kOff; }

  /// RAII scope for deliberate-violation tests: reports are still
  /// recorded, but abort mode does not throw inside the scope.
  class Tolerate {
   public:
    explicit Tolerate(RaceCheck& rc) : rc_(rc) { ++rc_.tolerate_; }
    ~Tolerate() { --rc_.tolerate_; }
    Tolerate(const Tolerate&) = delete;
    Tolerate& operator=(const Tolerate&) = delete;

   private:
    RaceCheck& rc_;
  };

  const std::vector<RaceReport>& reports() const { return reports_; }
  size_t total() const { return reports_.size(); }
  uint64_t count(RaceKind k) const {
    uint64_t n = 0;
    for (const auto& r : reports_) n += r.kind == k ? 1 : 0;
    return n;
  }
  void clear() { reports_.clear(); }

  /// Mirrors every report into an external counter slot (the owning
  /// fabric's node-0 kRaceReports counter).
  void bind_mirror(uint64_t* slot) { mirror_ = slot; }

  // ---- Scheduler hooks (called through the Simulator wrappers; every
  // ---- entry point below assumes the checker is enabled) -----------------

  static constexpr uint32_t kNoClock = 0xffffffffu;

  /// Snapshots the current segment's clock (and ticks it). Returns a
  /// snapshot slot id, attached to a timer or a CQE token.
  uint32_t capture();

  /// Discards an unconsumed snapshot (cancelled timer, mode turned off).
  void drop(uint32_t slot);

  /// Joins snapshot `from` into snapshot `into` and frees `from` — the
  /// notify path: the wake timer carries the waiter's pre-suspend clock
  /// in addition to the notifier's.
  void merge_into(uint32_t from, uint32_t into);

  /// Dispatch: ends the current segment and adopts `slot` as the new
  /// segment's clock, assigning it a (possibly reused) chain.
  void begin_segment(uint32_t slot);

  /// Joins snapshot `slot` into the CURRENT segment's clock and frees it
  /// (CQE consumption mid-segment).
  void acquire_token(uint32_t slot);

  /// Declares the end of a drain: the resuming caller (main, between
  /// run() calls) is ordered after every segment that ran.
  void run_barrier();

  // ---- Keyed release/acquire edges (lease / epoch handoffs) --------------

  void sync_release(const void* obj, uint64_t sub = 0);
  void sync_acquire(const void* obj, uint64_t sub = 0);

  // ---- Location accesses -------------------------------------------------

  enum class Access : uint8_t { kRead, kWrite, kUpdate };

  void access(const void* obj, uint64_t sub, Access a, const char* name,
              const char* site);

  /// Marks a location dead (reposted slot, reaped epoch, freed block);
  /// any later access reports a lifetime violation whose `prev`
  /// provenance is this retire. Also verifies every recorded access
  /// happens-before the retire itself.
  void retire(const void* obj, uint64_t sub, const char* name,
              const char* site);

  /// Begins a fresh lifetime for a location: clears the dead flag AND the
  /// recorded access history (a re-leased slot is a new object).
  void revive(const void* obj, uint64_t sub);

  /// Drops all state for a location (owner destroyed; protects against
  /// address reuse producing phantom provenances).
  void forget(const void* obj, uint64_t sub);

  /// Direct lifetime report for discipline violations detected by the
  /// instrumented object itself (e.g. a double lease release).
  void report_lifetime(const void* obj, uint64_t sub, const char* name,
                       const char* site, std::string detail);

 private:
  using VC = std::vector<uint64_t>;

  struct LocKey {
    const void* obj;
    uint64_t sub;
    bool operator==(const LocKey&) const = default;
  };
  struct LocKeyHash {
    size_t operator()(const LocKey& k) const {
      uint64_t h = reinterpret_cast<uintptr_t>(k.obj);
      h ^= k.sub + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return static_cast<size_t>(h * 0xff51afd7ed558ccdull);
    }
  };

  struct Loc {
    const char* name = "";
    RaceAccess write;                 // last strict write (invalid if none)
    std::vector<RaceAccess> reads;    // concurrent strict readers
    std::vector<RaceAccess> updates;  // concurrent relaxed updaters
    bool dead = false;
    RaceAccess retired;  // retire provenance, valid while dead
  };

  uint64_t clk() const { return cur_vc_[cur_chain_]; }
  void tick() { ++cur_vc_[cur_chain_]; }
  void emit() { chain_last_emit_[cur_chain_] = clk(); }
  bool hb(const RaceAccess& prev) const {
    return prev.clk <=
           (prev.chain < cur_vc_.size() ? cur_vc_[prev.chain] : 0);
  }
  RaceAccess here(bool write, const char* site) const;
  static void join(VC& into, const VC& from);
  uint32_t alloc_snap();
  void free_snap(uint32_t slot);
  void record(std::vector<RaceAccess>& list, const RaceAccess& a);
  void report(RaceKind kind, std::string object, const RaceAccess& prev,
              const RaceAccess& cur, std::string detail);
  std::string object_name(const Loc& l, const LocKey& k) const;

  Simulator& sim_;
  Mode mode_;
  int tolerate_ = 0;
  uint64_t* mirror_ = nullptr;
  std::vector<RaceReport> reports_;

  // Segment / chain state.
  VC cur_vc_;
  uint32_t cur_chain_ = 0;
  std::vector<uint64_t> chain_tail_;       // clock at last segment end
  std::vector<uint64_t> chain_last_emit_;  // clock of last access/release
  std::vector<uint32_t> free_chains_;
  static constexpr size_t kReuseScan = 32;  // free chains probed per dispatch

  // Snapshot arena (timer captures, CQE tokens, waiter link tokens).
  std::vector<VC> snaps_;
  std::vector<uint32_t> snap_free_;

  std::unordered_map<LocKey, VC, LocKeyHash> sync_;    // release clocks
  std::unordered_map<LocKey, Loc, LocKeyHash> locs_;   // access state
};

}  // namespace hatrpc::sim
