// Lightweight annotation layer over RaceCheck: wrap a hazard-site value in
// rc::shared<T> (or use the keyed RC_*_AT macros directly) and every access
// feeds the happens-before engine with a static "file:line" provenance.
// All of it compiles to a single pointer test when the checker is off.
#pragma once

#include "sim/simulator.h"

#define RC_STR_INNER(x) #x
#define RC_STR(x) RC_STR_INNER(x)
#define RC_HERE __FILE__ ":" RC_STR(__LINE__)

// Keyed forms for state that is not wrapped in rc::shared (per-slot arrays,
// per-key caches): `obj` anchors the location, `sub` selects the element.
#define RC_READ_AT(sim, obj, sub, name) \
  (sim).rc_read((obj), (sub), (name), RC_HERE)
#define RC_WRITE_AT(sim, obj, sub, name) \
  (sim).rc_write((obj), (sub), (name), RC_HERE)
#define RC_UPDATE_AT(sim, obj, sub, name) \
  (sim).rc_update((obj), (sub), (name), RC_HERE)

// Whole-object forms for rc::shared<T>.
#define RC_READ(sh) (sh).read(RC_HERE)
#define RC_WRITE(sh) (sh).write(RC_HERE)
#define RC_UPDATE(sh) (sh).update(RC_HERE)

namespace hatrpc::sim::rc {

/// A value whose accesses are checked for happens-before ordering. The
/// wrapper itself is the location key, so moving one starts a fresh
/// (unordered) history — don't move them across an access you care about.
template <class T>
class shared {
 public:
  shared(Simulator& sim, const char* name, T init = T{})
      : sim_(&sim), name_(name), v_(std::move(init)) {}
  shared(const shared&) = delete;
  shared& operator=(const shared&) = delete;
  ~shared() { sim_->rc_forget(this, 0); }

  const T& read(const char* site) const {
    sim_->rc_read(this, 0, name_, site);
    return v_;
  }
  T& write(const char* site) {
    sim_->rc_write(this, 0, name_, site);
    return v_;
  }
  /// Relaxed access for racy-by-design state (gauges, caches): updates
  /// never conflict with each other, only with strict reads/writes.
  T& update(const char* site) {
    sim_->rc_update(this, 0, name_, site);
    return v_;
  }

  /// Unchecked peek for code outside the contract (dump/debug paths).
  const T& unsafe() const { return v_; }

 private:
  Simulator* sim_;
  const char* name_;
  T v_;
};

}  // namespace hatrpc::sim::rc
