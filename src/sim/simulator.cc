#include "sim/simulator.h"

namespace hatrpc::sim {

Simulator::Detached Simulator::run_root(Simulator* s, Task<void> t) {
  try {
    co_await std::move(t);
  } catch (...) {
    if (!s->first_error_) s->first_error_ = std::current_exception();
  }
  --s->live_;
}

void Simulator::spawn(Task<void> t) {
  ++live_;
  run_root(this, std::move(t));
}

// Shallow schedules take the small-queue fast path; crossing kSmallCap
// migrates every resident into the wheel/heap in one sweep and stays in
// wheel mode until the wheel fully drains (see find_next_batch).
void Simulator::insert(uint32_t idx) {
  if (small_mode_) {
    if (small_.size() < kSmallCap) {
      small_insert(idx);
      return;
    }
    small_mode_ = false;
    std::vector<uint32_t> spill;
    spill.swap(small_);
    for (uint32_t i : spill) wheel_or_heap_insert(i);
  }
  wheel_or_heap_insert(idx);
}

// Binary-search insert keeping small_ sorted by (time, seq) — dispatch
// order is identical to what the wheel would produce.
void Simulator::small_insert(uint32_t idx) {
  TimerNode& n = nodes_[idx];
  n.state = TimerNode::kSmallQ;
  auto before = [this](uint32_t a, uint32_t b) {
    const TimerNode& x = nodes_[a];
    const TimerNode& y = nodes_[b];
    return x.t != y.t ? x.t < y.t : x.seq < y.seq;
  };
  small_.insert(std::upper_bound(small_.begin(), small_.end(), idx, before),
                idx);
}

// Places a node by its timestamp: in-window times go to the wheel, times
// beyond the window — or behind the cursor after a run_until() left the
// cursor ahead of now — go to the overflow heap. The window is the
// 64^8-aligned block containing the cursor, NOT [cursor, cursor + span):
// wheel_link derives (level, slot) from tt XOR cursor, so a timestamp just
// past the block boundary would XOR to a level >= kLevels even though its
// distance is small. `(tt ^ cursor) < kSpan` is exactly "same block".
void Simulator::wheel_or_heap_insert(uint32_t idx) {
  TimerNode& n = nodes_[idx];
  uint64_t tt = static_cast<uint64_t>(n.t.count());
  if (tt >= wheel_cursor_ && (tt ^ wheel_cursor_) < kSpan) {
    wheel_link(idx);
  } else {
    n.state = TimerNode::kOverflow;
    overflow_.push(HeapEntry{n.t, n.seq, idx});
  }
}

// Appends the node to the slot selected by the highest digit (base 64)
// in which its timestamp differs from the wheel cursor. Nodes at level 0
// share the cursor's 64 ns window, so one level-0 slot holds exactly one
// timestamp.
void Simulator::wheel_link(uint32_t idx) {
  TimerNode& n = nodes_[idx];
  uint64_t tt = static_cast<uint64_t>(n.t.count());
  uint64_t x = tt ^ wheel_cursor_;
  unsigned level =
      x ? (63u - static_cast<unsigned>(std::countl_zero(x))) / kLevelBits : 0u;
  unsigned slot = static_cast<unsigned>(tt >> (kLevelBits * level)) & kSlotMask;
  n.level = static_cast<uint8_t>(level);
  n.slot = static_cast<uint8_t>(slot);
  n.state = TimerNode::kPending;
  unsigned si = level * kSlots + slot;
  n.prev = slot_tail_[si];
  n.next = kNil;
  if (slot_tail_[si] != kNil) {
    nodes_[slot_tail_[si]].next = idx;
  } else {
    slot_head_[si] = idx;
  }
  slot_tail_[si] = idx;
  occupancy_[level] |= uint64_t(1) << slot;
  ++wheel_count_;
}

void Simulator::wheel_unlink(uint32_t idx) {
  TimerNode& n = nodes_[idx];
  unsigned si = unsigned(n.level) * kSlots + n.slot;
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    slot_head_[si] = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    slot_tail_[si] = n.prev;
  }
  if (slot_head_[si] == kNil) occupancy_[n.level] &= ~(uint64_t(1) << n.slot);
  n.prev = n.next = kNil;
  --wheel_count_;
}

// Redistributes one higher-level slot after the cursor advanced to its
// base: every node relands at a strictly lower level (its top differing
// digit against the new cursor is below `level` by construction).
void Simulator::cascade(unsigned level, unsigned slot) {
  unsigned si = level * kSlots + slot;
  uint32_t idx = slot_head_[si];
  slot_head_[si] = kNil;
  slot_tail_[si] = kNil;
  occupancy_[level] &= ~(uint64_t(1) << slot);
  while (idx != kNil) {
    uint32_t next = nodes_[idx].next;
    nodes_[idx].prev = nodes_[idx].next = kNil;
    --wheel_count_;
    wheel_link(idx);
    idx = next;
  }
}

// Pulls every node out of a level-0 slot (they all share one timestamp)
// and sorts by sequence number: a cascade may have appended an older node
// after a directly-inserted newer one, and dispatch order must stay FIFO.
void Simulator::collect_slot_batch(unsigned slot) {
  uint32_t idx = slot_head_[slot];  // level 0: slot index == array index
  slot_head_[slot] = kNil;
  slot_tail_[slot] = kNil;
  occupancy_[0] &= ~(uint64_t(1) << slot);
  while (idx != kNil) {
    TimerNode& n = nodes_[idx];
    uint32_t next = n.next;
    n.prev = n.next = kNil;
    n.state = TimerNode::kBatched;
    --wheel_count_;
    batch_.push_back(idx);
    idx = next;
  }
  batch_time_ = nodes_[batch_.front()].t;
  // Direct inserts arrive in seq order already; only a cascade can append
  // an older node behind a newer one, so the common case skips the sort.
  auto by_seq = [this](uint32_t a, uint32_t b) {
    return nodes_[a].seq < nodes_[b].seq;
  };
  if (batch_.size() > 1 && !std::is_sorted(batch_.begin(), batch_.end(), by_seq))
    std::sort(batch_.begin(), batch_.end(), by_seq);
}

// Pops every heap entry sharing the top timestamp. The heap yields equal
// timestamps in sequence order already, so no sort is needed.
void Simulator::collect_heap_batch() {
  batch_time_ = overflow_.top().t;
  while (!overflow_.empty() && overflow_.top().t == batch_time_) {
    uint32_t idx = overflow_.top().node;
    overflow_.pop();
    TimerNode& n = nodes_[idx];
    if (n.state == TimerNode::kDead) {
      free_node(idx);
      continue;
    }
    n.state = TimerNode::kBatched;
    batch_.push_back(idx);
  }
}

bool Simulator::find_next_batch() {
  if (small_mode_) {
    // The whole schedule lives in small_, already in dispatch order: the
    // batch is the front run of equal timestamps.
    if (small_.empty()) return false;
    batch_time_ = nodes_[small_.front()].t;
    size_t run = 1;
    while (run < small_.size() && nodes_[small_[run]].t == batch_time_) ++run;
    for (size_t i = 0; i < run; ++i) {
      nodes_[small_[i]].state = TimerNode::kBatched;
      batch_.push_back(small_[i]);
    }
    small_.erase(small_.begin(), small_.begin() + run);
    return true;
  }
  for (;;) {
    // Reap lazily-cancelled heap entries and migrate entries that now fall
    // inside the wheel window (the cursor may have advanced since they were
    // pushed, or they may have been scheduled beyond the span).
    while (!overflow_.empty()) {
      const HeapEntry& e = overflow_.top();
      uint32_t idx = e.node;
      if (nodes_[idx].state == TimerNode::kDead) {
        overflow_.pop();
        free_node(idx);
        continue;
      }
      uint64_t tt = static_cast<uint64_t>(e.t.count());
      if (tt >= wheel_cursor_ && (tt ^ wheel_cursor_) < kSpan) {
        overflow_.pop();
        wheel_link(idx);
        continue;
      }
      break;
    }

    if (wheel_count_ == 0) {
      if (overflow_.empty()) {
        small_mode_ = true;  // fully drained: hand back to the fast path
        return false;
      }
      uint64_t tt = static_cast<uint64_t>(overflow_.top().t.count());
      if (tt > wheel_cursor_) {
        // Everything pending is far-future: re-window the wheel around it
        // and let the migration loop pull it in.
        wheel_cursor_ = tt;
        continue;
      }
      // Behind-cursor backlog with an empty wheel.
      collect_heap_batch();
      if (batch_.empty()) continue;
      return true;
    }

    // A heap entry behind the cursor beats every wheel node (all of which
    // are at or ahead of the cursor).
    if (!overflow_.empty() &&
        static_cast<uint64_t>(overflow_.top().t.count()) < wheel_cursor_) {
      collect_heap_batch();
      if (batch_.empty()) continue;
      return true;
    }

    // Scan level 0 from the cursor's slot. Occupied slots are never behind
    // the cursor: the cursor only advances onto a slot when dispatching it
    // in full, and inserts behind the cursor go to the heap.
    unsigned s0 = static_cast<unsigned>(wheel_cursor_ & kSlotMask);
    uint64_t m0 = occupancy_[0] & (~uint64_t(0) << s0);
    if (m0) {
      unsigned s = static_cast<unsigned>(std::countr_zero(m0));
      wheel_cursor_ = (wheel_cursor_ & ~kSlotMask) | s;
      collect_slot_batch(s);
      return true;
    }

    // Level 0 is empty: advance to the nearest occupied higher-level slot,
    // cascade it down, and rescan. Occupied higher-level slots are always
    // strictly ahead of the cursor's digit at that level.
    bool cascaded = false;
    for (unsigned level = 1; level < kLevels; ++level) {
      unsigned cl = static_cast<unsigned>(
          (wheel_cursor_ >> (kLevelBits * level)) & kSlotMask);
      uint64_t m = occupancy_[level] & (~uint64_t(0) << cl);
      if (!m) continue;
      unsigned s = static_cast<unsigned>(std::countr_zero(m));
      unsigned shift = kLevelBits * level;
      uint64_t base =
          (wheel_cursor_ >> (shift + kLevelBits)) << (shift + kLevelBits);
      wheel_cursor_ = base | (uint64_t(s) << shift);
      cascade(level, s);
      cascaded = true;
      break;
    }
    assert(cascaded && "wheel_count_ > 0 but no occupied slot found");
    (void)cascaded;
  }
}

bool Simulator::cancel_impl(uint32_t idx, uint64_t gen) {
  TimerNode& n = nodes_[idx];
  if (n.gen != gen) return false;  // already fired, cancelled, or recycled
  switch (n.state) {
    case TimerNode::kPending:
      wheel_unlink(idx);
      free_node(idx);
      break;
    case TimerNode::kSmallQ:
      small_.erase(std::find(small_.begin(), small_.end(), idx));
      free_node(idx);
      break;
    case TimerNode::kOverflow:  // the heap entry is reaped lazily at pop
    case TimerNode::kBatched:   // the dispatch loop reaps it
      n.state = TimerNode::kDead;
      ++n.gen;
      break;
    default:
      return false;
  }
  --pending_;
  ++cancelled_;
  return true;
}

void Simulator::drain(bool bounded, Time deadline) {
  while (find_next_batch()) {
    if (bounded && batch_time_ > deadline) {
      // Put the collected batch back (original sequence numbers preserved,
      // so dispatch order is unchanged when a later run call reaches it).
      for (uint32_t idx : batch_) {
        if (nodes_[idx].state == TimerNode::kDead) {
          free_node(idx);
        } else {
          insert(idx);
        }
      }
      batch_.clear();
      break;
    }
    now_ = batch_time_;
    // Seeded tiebreak perturbation: any permutation of a same-timestamp
    // batch is a legal schedule (equal-time events have no imposed order
    // beyond the FIFO convention). Gated on the seed, not the stream
    // state, so a stream value of 0 cannot silently disable it.
    if (tiebreak_seed_ != 0 && batch_.size() > 1) {
      auto draw = [this] {
        tiebreak_state_ += 0x9e3779b97f4a7c15ull;  // splitmix64
        uint64_t z = tiebreak_state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
      };
      for (size_t i = batch_.size() - 1; i > 0; --i)
        std::swap(batch_[i], batch_[draw() % (i + 1)]);
    }
    // An event in this batch may cancel a later timer at the same
    // timestamp (e.g. a notify racing its timeout): dispatch re-checks
    // liveness per node. Resumptions may grow nodes_, so no references
    // are held across resume().
    for (size_t i = 0; i < batch_.size(); ++i) {
      uint32_t idx = batch_[i];
      if (nodes_[idx].state == TimerNode::kDead) {
        free_node(idx);
        continue;
      }
      std::coroutine_handle<> h = nodes_[idx].h;
      uint32_t rc_clock = nodes_[idx].rc_clock;
      nodes_[idx].rc_clock = RaceCheck::kNoClock;  // keep free_node from dropping it
      free_node(idx);
      --pending_;
      ++processed_;
      if (rc_clock != RaceCheck::kNoClock) {
        if (rc_) {
          rc_->begin_segment(rc_clock);
        } else {
          rc_owner_->drop(rc_clock);
        }
      }
      h.resume();
    }
    batch_.clear();
  }
  if (bounded && now_ < deadline && pending_ == 0) now_ = deadline;
  if (rc_) rc_->run_barrier();
  if (first_error_) {
    auto e = std::exchange(first_error_, nullptr);
    std::rethrow_exception(e);
  }
}

Simulator::RunResult Simulator::run() {
  drain(/*bounded=*/false, Time{0});
  return make_result();
}

Simulator::RunResult Simulator::run_until(Time deadline) {
  drain(/*bounded=*/true, deadline);
  return make_result();
}

}  // namespace hatrpc::sim
