#include "sim/simulator.h"

namespace hatrpc::sim {

Simulator::Detached Simulator::run_root(Simulator* s, Task<void> t) {
  try {
    co_await std::move(t);
  } catch (...) {
    if (!s->first_error_) s->first_error_ = std::current_exception();
  }
  --s->live_;
}

void Simulator::spawn(Task<void> t) {
  ++live_;
  run_root(this, std::move(t));
}

void Simulator::drain(bool bounded, Time deadline) {
  while (!queue_.empty()) {
    if (bounded && queue_.top().t > deadline) break;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    ev.h.resume();
  }
  if (bounded && now_ < deadline && queue_.empty()) now_ = deadline;
  if (first_error_) {
    auto e = std::exchange(first_error_, nullptr);
    std::rethrow_exception(e);
  }
}

Time Simulator::run() {
  drain(/*bounded=*/false, Time{0});
  return now_;
}

Time Simulator::run_until(Time deadline) {
  drain(/*bounded=*/true, deadline);
  return now_;
}

}  // namespace hatrpc::sim
