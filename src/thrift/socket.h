// Simulated TCP/IPoIB sockets — the transport under "vanilla Thrift over
// IPoIB", the paper's baseline in §5.5. IPoIB runs over the same EDR link
// as the verbs traffic but through the kernel: syscall + TCP/IP stack CPU
// on both sides, softirq wake-ups at the receiver, and a much lower
// effective throughput than native RDMA.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/sync.h"
#include "thrift/ttypes.h"
#include "verbs/fabric.h"

namespace hatrpc::thrift {

using namespace std::chrono_literals;

struct TcpCostModel {
  double eff_gbps = 3.0;            // IPoIB TCP effective throughput (GB/s)
  sim::Duration tx_syscall = 2000ns;  // send(): syscall + TCP/IP tx stack
  sim::Duration rx_syscall = 1500ns;  // recv(): syscall + copy to user
  sim::Duration rx_wakeup = 4000ns;   // softirq + scheduler wake-up
  sim::Duration per_seg_cpu = 500ns;  // per-segment stack processing
  sim::Duration handshake = 30000ns;  // 3-way handshake + socket setup
  uint32_t mss = 65536;               // IPoIB-CM segment size
};

class SocketNet;

/// One endpoint of an established byte-stream connection.
class SimSocket {
 public:
  SimSocket(SocketNet& net, verbs::Node& node);

  /// Writes the whole buffer (kernel segments it; blocks for stack CPU and
  /// link backpressure).
  sim::Task<void> write(std::span<const std::byte> data);

  /// Reads 1..max bytes; returns 0 on orderly peer close (EOF).
  sim::Task<size_t> read(std::byte* p, size_t max);

  /// Reads exactly n bytes or throws TTransportException(kEndOfFile).
  sim::Task<void> read_exact(std::byte* p, size_t n);

  void close();
  bool closed() const { return closed_; }
  verbs::Node& node() { return node_; }

 private:
  friend class SocketNet;
  void deliver(std::vector<std::byte> seg);
  void peer_closed();

  SocketNet& net_;
  verbs::Node& node_;
  SimSocket* peer_ = nullptr;
  std::deque<std::byte> rx_;
  sim::WaitQueue rx_avail_;
  sim::Mutex tx_order_;  // per-flow segment ordering on the shared wire
  bool closed_ = false;       // this end closed
  bool peer_closed_ = false;  // EOF pending once rx_ drains
};

/// Accept queue for a listening port.
class Listener {
 public:
  explicit Listener(sim::Simulator& sim) : pending_(sim) {}

  /// Waits for the next established connection; nullptr when closed.
  sim::Task<SimSocket*> accept() {
    auto s = co_await pending_.pop();
    co_return s ? *s : nullptr;
  }

  void close() { pending_.close(); }

 private:
  friend class SocketNet;
  sim::Channel<SimSocket*> pending_;
};

/// The kernel-network side of the simulated cluster. Shares the verbs
/// Fabric's nodes (CPU contention is common) and NIC links (IPoIB and
/// native RDMA traffic compete for the same wire).
class SocketNet {
 public:
  SocketNet(verbs::Fabric& fabric, TcpCostModel cost)
      : fabric_(fabric), cost_(cost) {}
  explicit SocketNet(verbs::Fabric& fabric)
      : SocketNet(fabric, TcpCostModel{}) {}

  Listener* listen(verbs::Node& node, uint16_t port);

  /// Connects to (node, port); completes after the handshake.
  sim::Task<SimSocket*> connect(verbs::Node& from, verbs::Node& to,
                                uint16_t port);

  verbs::Fabric& fabric() { return fabric_; }
  sim::Simulator& simulator() { return fabric_.simulator(); }
  const TcpCostModel& cost() const { return cost_; }

 private:
  friend class SimSocket;
  sim::Task<void> transmit(SimSocket& from, SimSocket& to,
                           std::vector<std::byte> data, bool fin = false);

  verbs::Fabric& fabric_;
  TcpCostModel cost_;
  std::unordered_map<uint64_t, std::unique_ptr<Listener>> listeners_;
  std::vector<std::unique_ptr<SimSocket>> sockets_;
};

}  // namespace hatrpc::thrift
