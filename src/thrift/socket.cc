#include "thrift/socket.h"

#include <algorithm>

#include "thrift/ttypes.h"

namespace hatrpc::thrift {

using sim::Task;
using sim::Time;

SimSocket::SimSocket(SocketNet& net, verbs::Node& node)
    : net_(net), node_(node), rx_avail_(net.simulator()),
      tx_order_(net.simulator()) {}

Task<void> SimSocket::write(std::span<const std::byte> data) {
  if (closed_ || !peer_)
    throw TTransportException(TTransportException::Kind::kNotOpen,
                              "write on closed socket");
  const TcpCostModel& cm = net_.cost();
  co_await node_.cpu().compute(cm.tx_syscall);
  size_t off = 0;
  while (off < data.size()) {
    size_t take = std::min<size_t>(cm.mss, data.size() - off);
    co_await node_.cpu().compute(cm.per_seg_cpu);
    // send() returns once the segment is queued in the kernel; delivery
    // proceeds asynchronously (segments stay ordered by FIFO link
    // reservations made at spawn time).
    net_.simulator().spawn(net_.transmit(
        *this, *peer_,
        std::vector<std::byte>(data.begin() + off,
                               data.begin() + off + take)));
    off += take;
  }
}

Task<size_t> SimSocket::read(std::byte* p, size_t max) {
  const TcpCostModel& cm = net_.cost();
  while (rx_.empty()) {
    if (peer_closed_ || closed_) co_return 0;  // EOF
    co_await rx_avail_.wait();
    // Data arrival wakes the blocked reader through the kernel.
    co_await net_.simulator().sleep(cm.rx_wakeup);
  }
  if (closed_) co_return 0;  // local close() discards buffered receive data
  co_await node_.cpu().compute(cm.rx_syscall);
  size_t n = std::min(max, rx_.size());
  for (size_t i = 0; i < n; ++i) {
    p[i] = rx_.front();
    rx_.pop_front();
  }
  co_return n;
}

Task<void> SimSocket::read_exact(std::byte* p, size_t n) {
  size_t off = 0;
  while (off < n) {
    size_t got = co_await read(p + off, n - off);
    if (got == 0)
      throw TTransportException(TTransportException::Kind::kEndOfFile,
                                "socket EOF mid-message");
    off += got;
  }
}

void SimSocket::close() {
  if (closed_) return;
  closed_ = true;
  rx_avail_.notify_all();
  // FIN is ordered behind any in-flight data (FIFO link reservations), so
  // the peer drains everything sent before seeing EOF.
  if (peer_) net_.simulator().spawn(net_.transmit(*this, *peer_, {}, true));
}

void SimSocket::deliver(std::vector<std::byte> seg) {
  rx_.insert(rx_.end(), seg.begin(), seg.end());
  rx_avail_.notify_all();
}

void SimSocket::peer_closed() {
  peer_closed_ = true;
  rx_avail_.notify_all();
}

Listener* SocketNet::listen(verbs::Node& node, uint16_t port) {
  uint64_t key = (static_cast<uint64_t>(node.id()) << 16) | port;
  auto [it, inserted] =
      listeners_.try_emplace(key, std::make_unique<Listener>(simulator()));
  if (!inserted)
    throw TTransportException(TTransportException::Kind::kNotOpen,
                              "port already listening");
  return it->second.get();
}

Task<SimSocket*> SocketNet::connect(verbs::Node& from, verbs::Node& to,
                                    uint16_t port) {
  uint64_t key = (static_cast<uint64_t>(to.id()) << 16) | port;
  auto it = listeners_.find(key);
  if (it == listeners_.end())
    throw TTransportException(TTransportException::Kind::kNotOpen,
                              "connection refused");
  co_await simulator().sleep(cost_.handshake);
  sockets_.push_back(std::make_unique<SimSocket>(*this, from));
  SimSocket* a = sockets_.back().get();
  sockets_.push_back(std::make_unique<SimSocket>(*this, to));
  SimSocket* b = sockets_.back().get();
  a->peer_ = b;
  b->peer_ = a;
  it->second->pending_.push(b);
  co_return a;
}

Task<void> SocketNet::transmit(SimSocket& from, SimSocket& to,
                               std::vector<std::byte> data, bool fin) {
  // Kernel traffic shares the NIC links with native RDMA but at IPoIB's
  // effective rate; like the RDMA path, the wire multiplexes packets from
  // different flows at ~MTU granularity. Segments of ONE flow stay ordered.
  auto order_guard = co_await from.tx_order_.scoped();
  verbs::Nic& tx = from.node_.nic();
  verbs::Nic& rx = to.node_.nic();
  constexpr uint64_t kMtu = 4096;
  uint64_t off = 0;
  do {
    uint64_t take = std::min<uint64_t>(kMtu, data.size() - off);
    sim::Duration ser = sim::transfer_time(take + 78, cost_.eff_gbps);
    Time start = std::max({simulator().now(), tx.tx_free(), rx.rx_free()});
    tx.reserve_tx(start + ser, take);
    rx.reserve_rx(start + ser, take);
    co_await simulator().sleep_until(start + ser);
    off += take;
  } while (off < data.size());
  co_await simulator().sleep(fabric_.cost().propagation);
  // Receive-side stack processing happens in softirq context on the
  // receiver's CPU.
  co_await to.node_.cpu().compute(cost_.per_seg_cpu);
  if (fin) {
    to.peer_closed();
  } else {
    to.deliver(std::move(data));
  }
}

}  // namespace hatrpc::thrift
