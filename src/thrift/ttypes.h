// Core Thrift wire-model types: field types, message types, and the
// exception hierarchy — mirroring Apache Thrift's C++ library so generated
// code and hand-written services read identically to upstream Thrift.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hatrpc::thrift {

/// Thrift field types (wire values of the Binary protocol).
enum class TType : uint8_t {
  kStop = 0,
  kBool = 2,
  kByte = 3,
  kDouble = 4,
  kI16 = 6,
  kI32 = 8,
  kI64 = 10,
  kString = 11,
  kStruct = 12,
  kMap = 13,
  kSet = 14,
  kList = 15,
};

enum class TMessageType : uint8_t {
  kCall = 1,
  kReply = 2,
  kException = 3,
  kOneway = 4,
};

class TException : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class TTransportException : public TException {
 public:
  enum class Kind { kUnknown, kNotOpen, kTimedOut, kEndOfFile, kCorrupted };
  TTransportException(Kind kind, const std::string& what)
      : TException(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

class TProtocolException : public TException {
 public:
  enum class Kind { kUnknown, kInvalidData, kBadVersion, kSizeLimit };
  TProtocolException(Kind kind, const std::string& what)
      : TException(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Server-to-client error reply, serialized as a Thrift struct in an
/// EXCEPTION message (matches TApplicationException on the wire).
class TApplicationException : public TException {
 public:
  enum class Kind : int32_t {
    kUnknown = 0,
    kUnknownMethod = 1,
    kInvalidMessageType = 2,
    kWrongMethodName = 3,
    kBadSequenceId = 4,
    kMissingResult = 5,
    kInternalError = 6,
  };
  TApplicationException(Kind kind, const std::string& what)
      : TException(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

}  // namespace hatrpc::thrift
