#include "thrift/json_protocol.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace hatrpc::thrift {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string_view TJSONProtocol::type_tag(TType t) {
  switch (t) {
    case TType::kBool: return "tf";
    case TType::kByte: return "i8";
    case TType::kI16: return "i16";
    case TType::kI32: return "i32";
    case TType::kI64: return "i64";
    case TType::kDouble: return "dbl";
    case TType::kString: return "str";
    case TType::kStruct: return "rec";
    case TType::kMap: return "map";
    case TType::kList: return "lst";
    case TType::kSet: return "set";
    default:
      throw TProtocolException(TProtocolException::Kind::kInvalidData,
                               "json: bad TType");
  }
}

TType TJSONProtocol::tag_type(std::string_view tag) {
  if (tag == "tf") return TType::kBool;
  if (tag == "i8") return TType::kByte;
  if (tag == "i16") return TType::kI16;
  if (tag == "i32") return TType::kI32;
  if (tag == "i64") return TType::kI64;
  if (tag == "dbl") return TType::kDouble;
  if (tag == "str") return TType::kString;
  if (tag == "rec") return TType::kStruct;
  if (tag == "map") return TType::kMap;
  if (tag == "lst") return TType::kList;
  if (tag == "set") return TType::kSet;
  throw TProtocolException(TProtocolException::Kind::kInvalidData,
                           "json: unknown type tag '" + std::string(tag) +
                               "'");
}

// ===========================================================================
// Writing
// ===========================================================================

void TJSONProtocol::wraw(std::string_view s) { buf_.write(s.data(), s.size()); }

void TJSONProtocol::wpush(bool in_object) {
  wstack_.push_back({in_object, 0});
}

void TJSONProtocol::wpop() { wstack_.pop_back(); }

void TJSONProtocol::rpush(bool in_object) {
  rstack_.push_back({in_object, 0});
}

void TJSONProtocol::rpop() { rstack_.pop_back(); }

void TJSONProtocol::wsep() {
  if (wstack_.empty()) return;
  Ctx& c = wstack_.back();
  if (c.emitted > 0) {
    // Object contexts alternate  key : value , key : value ...
    if (c.object) wraw(c.emitted % 2 == 1 ? ":" : ",");
    else wraw(",");
  }
  ++c.emitted;
}

void TJSONProtocol::wstring(std::string_view s) {
  wsep();
  std::string out = "\"";
  append_escaped(out, s);
  out += '"';
  wraw(out);
}

void TJSONProtocol::wnumber(int64_t v) {
  // JSON object keys must be strings: quote numerics in the key slot.
  bool key_slot = !wstack_.empty() && wstack_.back().object &&
                  wstack_.back().emitted % 2 == 0;
  wsep();
  if (key_slot) wraw("\"" + std::to_string(v) + "\"");
  else wraw(std::to_string(v));
}

void TJSONProtocol::writeMessageBegin(std::string_view name,
                                      TMessageType type, int32_t seqid) {
  wsep();
  wraw("[");
  wpush(false);
  wnumber(kVersion);
  wstring(name);
  wnumber(static_cast<int64_t>(type));
  wnumber(seqid);
}

void TJSONProtocol::writeMessageEnd() {
  wpop();
  wraw("]");
}

void TJSONProtocol::writeStructBegin(std::string_view) {
  wsep();
  wraw("{");
  wpush(true);
}

void TJSONProtocol::writeStructEnd() {
  wpop();
  wraw("}");
}

void TJSONProtocol::writeFieldBegin(TType type, int16_t id) {
  wstring(std::to_string(id));  // object key
  wsep();                       // the ':'
  wraw("{");
  wpush(true);
  wstring(type_tag(type));  // inner key; value follows via writeXxx
}

void TJSONProtocol::writeFieldEnd() {
  wpop();
  wraw("}");
}

void TJSONProtocol::writeMapBegin(TType key, TType val, uint32_t size) {
  wsep();
  wraw("[");
  wpush(false);
  wstring(type_tag(key));
  wstring(type_tag(val));
  wnumber(size);
  wsep();
  wraw("{");
  wpush(true);
}

void TJSONProtocol::writeMapEnd() {
  wpop();
  wraw("}");
  wpop();
  wraw("]");
}

void TJSONProtocol::writeListBegin(TType elem, uint32_t size) {
  wsep();
  wraw("[");
  wpush(false);
  wstring(type_tag(elem));
  wnumber(size);
}

void TJSONProtocol::writeListEnd() {
  wpop();
  wraw("]");
}

void TJSONProtocol::writeSetBegin(TType elem, uint32_t size) {
  writeListBegin(elem, size);
}

void TJSONProtocol::writeSetEnd() { writeListEnd(); }

void TJSONProtocol::writeBool(bool v) { wnumber(v ? 1 : 0); }
void TJSONProtocol::writeByte(int8_t v) { wnumber(v); }
void TJSONProtocol::writeI16(int16_t v) { wnumber(v); }
void TJSONProtocol::writeI32(int32_t v) { wnumber(v); }
void TJSONProtocol::writeI64(int64_t v) { wnumber(v); }

void TJSONProtocol::writeDouble(double v) {
  if (std::isnan(v)) {
    wstring("NaN");
  } else if (std::isinf(v)) {
    wstring(v > 0 ? "Infinity" : "-Infinity");
  } else {
    wsep();
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    wraw(buf);
  }
}

void TJSONProtocol::writeString(std::string_view v) { wstring(v); }

// ===========================================================================
// Reading
// ===========================================================================

char TJSONProtocol::rpeek() {
  // One-character pushback emulates peeking on TMemoryBuffer. At the end
  // of the buffer, peeking returns NUL (terminates number scans cleanly).
  if (!has_pushback_) {
    if (buf_.readable() == 0) return '\0';
    buf_.read(&pushback_, 1);
    has_pushback_ = true;
  }
  return pushback_;
}

char TJSONProtocol::rget() {
  if (has_pushback_) {
    has_pushback_ = false;
    return pushback_;
  }
  char c;
  buf_.read(&c, 1);
  return c;
}

void TJSONProtocol::rexpect(char want) {
  char c = rget();
  if (c != want)
    throw TProtocolException(TProtocolException::Kind::kInvalidData,
                             std::string("json: expected '") + want +
                                 "', got '" + c + "'");
}

void TJSONProtocol::rsep() {
  if (rstack_.empty()) return;
  Ctx& c = rstack_.back();
  if (c.emitted > 0) rexpect(c.object && c.emitted % 2 == 1 ? ':' : ',');
  ++c.emitted;
}

std::string TJSONProtocol::rstring_raw() {
  rexpect('"');
  std::string out;
  while (true) {
    char ch = rget();
    if (ch == '"') break;
    if (ch == '\\') {
      char esc = rget();
      switch (esc) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          char hex[5] = {};
          for (int i = 0; i < 4; ++i) hex[i] = rget();
          out += static_cast<char>(std::strtol(hex, nullptr, 16));
          break;
        }
        default: out += esc;
      }
    } else {
      out += ch;
    }
  }
  return out;
}

std::string TJSONProtocol::rstring() {
  rsep();
  rexpect('"');
  std::string out;
  while (true) {
    char ch = rget();
    if (ch == '"') break;
    if (ch == '\\') {
      char esc = rget();
      switch (esc) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          char hex[5] = {};
          for (int i = 0; i < 4; ++i) hex[i] = rget();
          out += static_cast<char>(std::strtol(hex, nullptr, 16));
          break;
        }
        default: out += esc;
      }
    } else {
      out += ch;
    }
  }
  return out;
}

int64_t TJSONProtocol::rnumber() {
  bool key_slot = !rstack_.empty() && rstack_.back().object &&
                  rstack_.back().emitted % 2 == 0;
  rsep();
  if (key_slot) rexpect('"');
  std::string digits;
  while (true) {
    char c = rpeek();
    if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
        c == 'e' || c == 'E') {
      digits += rget();
    } else {
      break;
    }
  }
  if (key_slot) rexpect('"');
  return std::strtoll(digits.c_str(), nullptr, 10);
}

double TJSONProtocol::rdouble_value() {
  bool key_slot = !rstack_.empty() && rstack_.back().object &&
                  rstack_.back().emitted % 2 == 0;
  (void)key_slot;
  rsep();
  char c = rpeek();
  if (c == '"') {
    std::string s = rstring_raw();
    if (s == "NaN") return std::nan("");
    if (s == "Infinity") return std::numeric_limits<double>::infinity();
    if (s == "-Infinity") return -std::numeric_limits<double>::infinity();
    throw TProtocolException(TProtocolException::Kind::kInvalidData,
                             "json: bad double string");
  }
  std::string digits;
  while (true) {
    char ch = rpeek();
    if ((ch >= '0' && ch <= '9') || ch == '-' || ch == '+' || ch == '.' ||
        ch == 'e' || ch == 'E') {
      digits += rget();
    } else {
      break;
    }
  }
  return std::strtod(digits.c_str(), nullptr);
}

TProtocol::MessageHead TJSONProtocol::readMessageBegin() {
  rsep();
  rexpect('[');
  rpush(false);
  if (rnumber() != kVersion)
    throw TProtocolException(TProtocolException::Kind::kBadVersion,
                             "json: bad version");
  MessageHead h;
  h.name = rstring();
  h.type = static_cast<TMessageType>(rnumber());
  h.seqid = static_cast<int32_t>(rnumber());
  return h;
}

void TJSONProtocol::readMessageEnd() {
  rpop();
  rexpect(']');
}

void TJSONProtocol::readStructBegin() {
  rsep();
  rexpect('{');
  rpush(true);
}

void TJSONProtocol::readStructEnd() {
  rpop();
  rexpect('}');
}

TProtocol::FieldHead TJSONProtocol::readFieldBegin() {
  // Either '}' (field stop) or  ,? "<id>" : {"<tag>": <value>}
  char c = rpeek();
  if (c == '}') return {TType::kStop, 0};
  if (rstack_.back().emitted > 0) rexpect(',');
  rstack_.back().emitted = 2;  // key + value slots handled manually here
  std::string id = rstring_raw();
  rexpect(':');
  rexpect('{');
  rpush(true);
  std::string tag = rstring();
  return {tag_type(tag), static_cast<int16_t>(std::stoi(id))};
}

void TJSONProtocol::readFieldEnd() {
  rpop();
  rexpect('}');
}

TProtocol::MapHead TJSONProtocol::readMapBegin() {
  rsep();
  rexpect('[');
  rpush(false);
  TType k = tag_type(rstring());
  TType v = tag_type(rstring());
  uint32_t size = static_cast<uint32_t>(rnumber());
  rsep();
  rexpect('{');
  rpush(true);
  return {k, v, size};
}

void TJSONProtocol::readMapEnd() {
  rpop();
  rexpect('}');
  rpop();
  rexpect(']');
}

TProtocol::ListHead TJSONProtocol::readListBegin() {
  rsep();
  rexpect('[');
  rpush(false);
  TType e = tag_type(rstring());
  uint32_t size = static_cast<uint32_t>(rnumber());
  return {e, size};
}

void TJSONProtocol::readListEnd() {
  rpop();
  rexpect(']');
}

TProtocol::ListHead TJSONProtocol::readSetBegin() { return readListBegin(); }
void TJSONProtocol::readSetEnd() { readListEnd(); }

bool TJSONProtocol::readBool() { return rnumber() != 0; }
int8_t TJSONProtocol::readByte() { return static_cast<int8_t>(rnumber()); }
int16_t TJSONProtocol::readI16() { return static_cast<int16_t>(rnumber()); }
int32_t TJSONProtocol::readI32() { return static_cast<int32_t>(rnumber()); }
int64_t TJSONProtocol::readI64() { return rnumber(); }
double TJSONProtocol::readDouble() { return rdouble_value(); }
std::string TJSONProtocol::readString() { return rstring(); }

}  // namespace hatrpc::thrift
