// Thrift server flavors over the socket transport (Fig. 2's server row):
//   TSimpleServer     — one connection at a time;
//   TThreadedServer   — a task per connection;
//   TThreadPoolServer — per-connection tasks gated by a fixed worker pool.
// All drive the same Processor (serialized request -> serialized response).
#pragma once

#include <memory>
#include <vector>

#include "sim/sync.h"
#include "thrift/transport.h"

namespace hatrpc::thrift {

/// Handles one serialized request message, returning the serialized reply.
using Processor = std::function<sim::Task<Buffer>(View)>;

enum class ServerKind { kSimple, kThreaded, kThreadPool };

class TServer {
 public:
  struct Options {
    ServerKind kind = ServerKind::kThreaded;
    size_t pool_workers = 8;  // TThreadPoolServer only
  };

  TServer(SocketNet& net, verbs::Node& node, uint16_t port,
          Processor processor, Options opts)
      : net_(net), node_(node), processor_(std::move(processor)),
        opts_(opts), pool_(net.simulator(), opts.pool_workers) {
    listener_ = net_.listen(node, port);
  }
  TServer(SocketNet& net, verbs::Node& node, uint16_t port,
          Processor processor)
      : TServer(net, node, port, std::move(processor), Options{}) {}

  /// Spawns the accept loop.
  void start() { net_.simulator().spawn(accept_loop()); }

  void stop() {
    stopping_ = true;
    listener_->close();
    // serve_connection unregisters as it unwinds — iterate over a snapshot
    // so the erase does not invalidate this loop.
    std::vector<SimSocket*> open = conns_;
    for (auto* s : open) s->close();
  }

  uint64_t requests_served() const { return served_; }
  size_t open_connections() const { return conns_.size(); }

 private:
  sim::Task<void> accept_loop() {
    while (true) {
      SimSocket* sock = co_await listener_->accept();
      if (!sock) break;
      conns_.push_back(sock);
      const uint64_t conn_id = next_conn_id_++;
      if (opts_.kind == ServerKind::kSimple) {
        // serial: next accept after close
        co_await serve_connection(sock, conn_id);
      } else {
        net_.simulator().spawn(serve_connection(sock, conn_id));
      }
    }
  }

  sim::Task<void> serve_connection(SimSocket* sock, uint64_t conn_id) {
    TFramedTransport framed(sock);
    obs::Obs& obs = node_.obs();
    while (!stopping_) {
      // A connection dying mid-exchange (peer reset, stop() racing a
      // request) must drop this connection only, never unwind the server.
      std::optional<Buffer> req;
      try {
        req = co_await framed.recv();
      } catch (const TTransportException&) {
        break;
      }
      if (!req) break;
      if (opts_.kind == ServerKind::kThreadPool) co_await pool_.acquire();
      node_.counters().add(obs::Ctr::kRequests);
      const sim::Time t0 = net_.simulator().now();
      Buffer resp = co_await processor_(*req);
      if (obs.tracer.enabled())
        obs.tracer.complete("tserver/request", "thrift", t0,
                            net_.simulator().now() - t0, node_.id(), conn_id);
      if (opts_.kind == ServerKind::kThreadPool) pool_.release();
      ++served_;
      try {
        co_await framed.send(resp);
      } catch (const TTransportException&) {
        break;
      }
    }
    // Unregister so conns_ tracks live connections only (it used to grow
    // for the server's lifetime, and stop() would re-close dead sockets).
    std::erase(conns_, sock);
    sock->close();
  }

  SocketNet& net_;
  verbs::Node& node_;
  Processor processor_;
  Options opts_;
  sim::Semaphore pool_;
  Listener* listener_ = nullptr;
  std::vector<SimSocket*> conns_;
  bool stopping_ = false;
  uint64_t served_ = 0;
  uint64_t next_conn_id_ = 0;
};

/// Client-side message RPC over a framed socket: the "Thrift over IPoIB"
/// call path.
class SocketRpcClient {
 public:
  explicit SocketRpcClient(SimSocket* sock) : framed_(sock) {}

  sim::Task<Buffer> call(View req) {
    co_await framed_.send(req);
    auto resp = co_await framed_.recv();
    if (!resp)
      throw TTransportException(TTransportException::Kind::kEndOfFile,
                                "server closed connection");
    co_return std::move(*resp);
  }

  void close() { framed_.close(); }

 private:
  TFramedTransport framed_;
};

}  // namespace hatrpc::thrift
