// Message-level transports. Thrift's client/server exchange whole
// serialized messages; TFramedTransport frames them over a byte stream
// (TSocket), while TRdma (rdma.h) maps them onto an RDMA protocol channel.
#pragma once

#include <optional>

#include "proto/wire.h"
#include "thrift/socket.h"

namespace hatrpc::thrift {

using Buffer = std::vector<std::byte>;
using View = std::span<const std::byte>;

/// One request or response as a unit.
class MessageTransport {
 public:
  virtual ~MessageTransport() = default;
  virtual sim::Task<void> send(View msg) = 0;
  /// nullopt on orderly EOF.
  virtual sim::Task<std::optional<Buffer>> recv() = 0;
  virtual void close() = 0;
};

/// [u32 length][payload] frames over a simulated TCP socket — Thrift's
/// TFramedTransport on TSocket.
class TFramedTransport final : public MessageTransport {
 public:
  explicit TFramedTransport(SimSocket* sock) : sock_(sock) {}

  sim::Task<void> send(View msg) override {
    Buffer frame(4 + msg.size());
    proto::put_u32(frame.data(), static_cast<uint32_t>(msg.size()));
    std::memcpy(frame.data() + 4, msg.data(), msg.size());
    co_await sock_->write(frame);
  }

  sim::Task<std::optional<Buffer>> recv() override {
    std::byte hdr[4];
    size_t got = co_await sock_->read(hdr, 1);
    if (got == 0) co_return std::nullopt;  // clean EOF between frames
    co_await sock_->read_exact(hdr + 1, 3);
    uint32_t len = proto::get_u32(hdr);
    Buffer msg(len);
    co_await sock_->read_exact(msg.data(), len);
    co_return msg;
  }

  void close() override { sock_->close(); }

  SimSocket* socket() { return sock_; }

 private:
  SimSocket* sock_;
};

}  // namespace hatrpc::thrift
