// TProtocol: the serialization interface generated code writes through,
// with the two encodings the paper's Thrift stack exercises (Fig. 2):
// Binary (strict) and Compact (varint/zigzag).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "thrift/buffer.h"
#include "thrift/ttypes.h"

namespace hatrpc::thrift {

class TProtocol {
 public:
  explicit TProtocol(TMemoryBuffer& buf) : buf_(buf) {}
  virtual ~TProtocol() = default;

  // --- writing -------------------------------------------------------------
  virtual void writeMessageBegin(std::string_view name, TMessageType type,
                                 int32_t seqid) = 0;
  virtual void writeMessageEnd() {}
  virtual void writeStructBegin(std::string_view name) = 0;
  virtual void writeStructEnd() = 0;
  virtual void writeFieldBegin(TType type, int16_t id) = 0;
  virtual void writeFieldEnd() {}
  virtual void writeFieldStop() = 0;
  virtual void writeMapBegin(TType key, TType val, uint32_t size) = 0;
  virtual void writeMapEnd() {}
  virtual void writeListBegin(TType elem, uint32_t size) = 0;
  virtual void writeListEnd() {}
  virtual void writeSetBegin(TType elem, uint32_t size) = 0;
  virtual void writeSetEnd() {}
  virtual void writeBool(bool v) = 0;
  virtual void writeByte(int8_t v) = 0;
  virtual void writeI16(int16_t v) = 0;
  virtual void writeI32(int32_t v) = 0;
  virtual void writeI64(int64_t v) = 0;
  virtual void writeDouble(double v) = 0;
  virtual void writeString(std::string_view v) = 0;
  void writeBinary(std::string_view v) { writeString(v); }

  // --- reading ---------------------------------------------------------------
  struct MessageHead {
    std::string name;
    TMessageType type;
    int32_t seqid;
  };
  virtual MessageHead readMessageBegin() = 0;
  virtual void readMessageEnd() {}
  virtual void readStructBegin() = 0;
  virtual void readStructEnd() = 0;
  struct FieldHead {
    TType type;
    int16_t id;
  };
  virtual FieldHead readFieldBegin() = 0;
  virtual void readFieldEnd() {}
  struct MapHead {
    TType key;
    TType val;
    uint32_t size;
  };
  virtual MapHead readMapBegin() = 0;
  virtual void readMapEnd() {}
  struct ListHead {
    TType elem;
    uint32_t size;
  };
  virtual ListHead readListBegin() = 0;
  virtual void readListEnd() {}
  virtual ListHead readSetBegin() = 0;
  virtual void readSetEnd() {}
  virtual bool readBool() = 0;
  virtual int8_t readByte() = 0;
  virtual int16_t readI16() = 0;
  virtual int32_t readI32() = 0;
  virtual int64_t readI64() = 0;
  virtual double readDouble() = 0;
  virtual std::string readString() = 0;
  std::string readBinary() { return readString(); }

  /// Skips a value of the given type (unknown-field tolerance).
  void skip(TType type);

  TMemoryBuffer& buffer() { return buf_; }

 protected:
  TMemoryBuffer& buf_;
};

/// Strict Thrift Binary protocol (version word 0x8001____).
class TBinaryProtocol final : public TProtocol {
 public:
  using TProtocol::TProtocol;

  void writeMessageBegin(std::string_view name, TMessageType type,
                         int32_t seqid) override;
  void writeStructBegin(std::string_view) override {}
  void writeStructEnd() override {}
  void writeFieldBegin(TType type, int16_t id) override;
  void writeFieldStop() override;
  void writeMapBegin(TType key, TType val, uint32_t size) override;
  void writeListBegin(TType elem, uint32_t size) override;
  void writeSetBegin(TType elem, uint32_t size) override;
  void writeBool(bool v) override;
  void writeByte(int8_t v) override;
  void writeI16(int16_t v) override;
  void writeI32(int32_t v) override;
  void writeI64(int64_t v) override;
  void writeDouble(double v) override;
  void writeString(std::string_view v) override;

  MessageHead readMessageBegin() override;
  void readStructBegin() override {}
  void readStructEnd() override {}
  FieldHead readFieldBegin() override;
  MapHead readMapBegin() override;
  ListHead readListBegin() override;
  ListHead readSetBegin() override;
  bool readBool() override;
  int8_t readByte() override;
  int16_t readI16() override;
  int32_t readI32() override;
  int64_t readI64() override;
  double readDouble() override;
  std::string readString() override;

 private:
  static constexpr uint32_t kVersion1 = 0x80010000;
  static constexpr uint32_t kVersionMask = 0xffff0000;
};

/// Thrift Compact protocol: zigzag varints, field-id delta encoding,
/// booleans folded into field headers.
class TCompactProtocol final : public TProtocol {
 public:
  using TProtocol::TProtocol;

  void writeMessageBegin(std::string_view name, TMessageType type,
                         int32_t seqid) override;
  void writeStructBegin(std::string_view) override;
  void writeStructEnd() override;
  void writeFieldBegin(TType type, int16_t id) override;
  void writeFieldStop() override;
  void writeMapBegin(TType key, TType val, uint32_t size) override;
  void writeListBegin(TType elem, uint32_t size) override;
  void writeSetBegin(TType elem, uint32_t size) override;
  void writeBool(bool v) override;
  void writeByte(int8_t v) override;
  void writeI16(int16_t v) override;
  void writeI32(int32_t v) override;
  void writeI64(int64_t v) override;
  void writeDouble(double v) override;
  void writeString(std::string_view v) override;

  MessageHead readMessageBegin() override;
  void readStructBegin() override;
  void readStructEnd() override;
  FieldHead readFieldBegin() override;
  MapHead readMapBegin() override;
  ListHead readListBegin() override;
  ListHead readSetBegin() override;
  bool readBool() override;
  int8_t readByte() override;
  int16_t readI16() override;
  int32_t readI32() override;
  int64_t readI64() override;
  double readDouble() override;
  std::string readString() override;

 private:
  static constexpr uint8_t kProtocolId = 0x82;
  static constexpr uint8_t kVersion = 1;

  enum class CType : uint8_t {
    kStop = 0,
    kBoolTrue = 1,
    kBoolFalse = 2,
    kByte = 3,
    kI16 = 4,
    kI32 = 5,
    kI64 = 6,
    kDouble = 7,
    kBinary = 8,
    kList = 9,
    kSet = 10,
    kMap = 11,
    kStruct = 12,
  };
  static CType to_compact(TType t);
  static TType to_ttype(CType c);

  void write_varint(uint64_t v);
  uint64_t read_varint();
  static uint64_t zigzag(int64_t v) {
    return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  }
  static int64_t unzigzag(uint64_t v) {
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
  }

  std::vector<int16_t> last_field_stack_;
  int16_t last_field_ = 0;
  // Pending bool field header (bools are encoded in the header itself).
  bool bool_field_pending_ = false;
  int16_t bool_field_id_ = 0;
  // Set while reading when the header already carried the bool value.
  bool bool_value_pending_ = false;
  bool bool_value_ = false;
};

}  // namespace hatrpc::thrift
