#include "thrift/protocol.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

namespace hatrpc::thrift {

namespace {

template <class T>
T byteswap_if_le(T v) {
  if constexpr (std::endian::native == std::endian::little) {
    auto bytes = std::bit_cast<std::array<std::byte, sizeof(T)>>(v);
    std::reverse(bytes.begin(), bytes.end());
    return std::bit_cast<T>(bytes);
  }
  return v;
}

}  // namespace

void TProtocol::skip(TType type) {
  switch (type) {
    case TType::kBool: readBool(); return;
    case TType::kByte: readByte(); return;
    case TType::kI16: readI16(); return;
    case TType::kI32: readI32(); return;
    case TType::kI64: readI64(); return;
    case TType::kDouble: readDouble(); return;
    case TType::kString: readString(); return;
    case TType::kStruct: {
      readStructBegin();
      while (true) {
        FieldHead f = readFieldBegin();
        if (f.type == TType::kStop) break;
        skip(f.type);
        readFieldEnd();
      }
      readStructEnd();
      return;
    }
    case TType::kMap: {
      MapHead m = readMapBegin();
      for (uint32_t i = 0; i < m.size; ++i) {
        skip(m.key);
        skip(m.val);
      }
      readMapEnd();
      return;
    }
    case TType::kList: {
      ListHead l = readListBegin();
      for (uint32_t i = 0; i < l.size; ++i) skip(l.elem);
      readListEnd();
      return;
    }
    case TType::kSet: {
      ListHead l = readSetBegin();
      for (uint32_t i = 0; i < l.size; ++i) skip(l.elem);
      readSetEnd();
      return;
    }
    default:
      throw TProtocolException(TProtocolException::Kind::kInvalidData,
                               "skip: bad TType");
  }
}

// ===========================================================================
// TBinaryProtocol
// ===========================================================================

void TBinaryProtocol::writeByte(int8_t v) { buf_.write(&v, 1); }

void TBinaryProtocol::writeI16(int16_t v) {
  int16_t be = byteswap_if_le(v);
  buf_.write(&be, 2);
}

void TBinaryProtocol::writeI32(int32_t v) {
  int32_t be = byteswap_if_le(v);
  buf_.write(&be, 4);
}

void TBinaryProtocol::writeI64(int64_t v) {
  int64_t be = byteswap_if_le(v);
  buf_.write(&be, 8);
}

void TBinaryProtocol::writeDouble(double v) {
  writeI64(std::bit_cast<int64_t>(v));
}

void TBinaryProtocol::writeBool(bool v) { writeByte(v ? 1 : 0); }

void TBinaryProtocol::writeString(std::string_view v) {
  writeI32(static_cast<int32_t>(v.size()));
  buf_.write(v.data(), v.size());
}

void TBinaryProtocol::writeMessageBegin(std::string_view name,
                                        TMessageType type, int32_t seqid) {
  writeI32(static_cast<int32_t>(kVersion1 | static_cast<uint32_t>(type)));
  writeString(name);
  writeI32(seqid);
}

void TBinaryProtocol::writeFieldBegin(TType type, int16_t id) {
  writeByte(static_cast<int8_t>(type));
  writeI16(id);
}

void TBinaryProtocol::writeFieldStop() {
  writeByte(static_cast<int8_t>(TType::kStop));
}

void TBinaryProtocol::writeMapBegin(TType key, TType val, uint32_t size) {
  writeByte(static_cast<int8_t>(key));
  writeByte(static_cast<int8_t>(val));
  writeI32(static_cast<int32_t>(size));
}

void TBinaryProtocol::writeListBegin(TType elem, uint32_t size) {
  writeByte(static_cast<int8_t>(elem));
  writeI32(static_cast<int32_t>(size));
}

void TBinaryProtocol::writeSetBegin(TType elem, uint32_t size) {
  writeListBegin(elem, size);
}

int8_t TBinaryProtocol::readByte() {
  int8_t v;
  buf_.read(&v, 1);
  return v;
}

int16_t TBinaryProtocol::readI16() {
  int16_t v;
  buf_.read(&v, 2);
  return byteswap_if_le(v);
}

int32_t TBinaryProtocol::readI32() {
  int32_t v;
  buf_.read(&v, 4);
  return byteswap_if_le(v);
}

int64_t TBinaryProtocol::readI64() {
  int64_t v;
  buf_.read(&v, 8);
  return byteswap_if_le(v);
}

double TBinaryProtocol::readDouble() {
  return std::bit_cast<double>(readI64());
}

bool TBinaryProtocol::readBool() { return readByte() != 0; }

std::string TBinaryProtocol::readString() {
  int32_t n = readI32();
  if (n < 0)
    throw TProtocolException(TProtocolException::Kind::kInvalidData,
                             "negative string size");
  return buf_.read_string(static_cast<size_t>(n));
}

TProtocol::MessageHead TBinaryProtocol::readMessageBegin() {
  uint32_t header = static_cast<uint32_t>(readI32());
  if ((header & kVersionMask) != kVersion1)
    throw TProtocolException(TProtocolException::Kind::kBadVersion,
                             "bad binary protocol version");
  MessageHead h;
  h.type = static_cast<TMessageType>(header & 0xff);
  h.name = readString();
  h.seqid = readI32();
  return h;
}

TProtocol::FieldHead TBinaryProtocol::readFieldBegin() {
  TType type = static_cast<TType>(readByte());
  if (type == TType::kStop) return {TType::kStop, 0};
  int16_t id = readI16();
  return {type, id};
}

TProtocol::MapHead TBinaryProtocol::readMapBegin() {
  TType k = static_cast<TType>(readByte());
  TType v = static_cast<TType>(readByte());
  int32_t n = readI32();
  if (n < 0)
    throw TProtocolException(TProtocolException::Kind::kInvalidData,
                             "negative map size");
  return {k, v, static_cast<uint32_t>(n)};
}

TProtocol::ListHead TBinaryProtocol::readListBegin() {
  TType e = static_cast<TType>(readByte());
  int32_t n = readI32();
  if (n < 0)
    throw TProtocolException(TProtocolException::Kind::kInvalidData,
                             "negative list size");
  return {e, static_cast<uint32_t>(n)};
}

TProtocol::ListHead TBinaryProtocol::readSetBegin() { return readListBegin(); }

// ===========================================================================
// TCompactProtocol
// ===========================================================================

TCompactProtocol::CType TCompactProtocol::to_compact(TType t) {
  switch (t) {
    case TType::kStop: return CType::kStop;
    case TType::kBool: return CType::kBoolTrue;  // resolved at write time
    case TType::kByte: return CType::kByte;
    case TType::kI16: return CType::kI16;
    case TType::kI32: return CType::kI32;
    case TType::kI64: return CType::kI64;
    case TType::kDouble: return CType::kDouble;
    case TType::kString: return CType::kBinary;
    case TType::kStruct: return CType::kStruct;
    case TType::kMap: return CType::kMap;
    case TType::kSet: return CType::kSet;
    case TType::kList: return CType::kList;
  }
  throw TProtocolException(TProtocolException::Kind::kInvalidData,
                           "bad TType for compact");
}

TType TCompactProtocol::to_ttype(CType c) {
  switch (c) {
    case CType::kStop: return TType::kStop;
    case CType::kBoolTrue:
    case CType::kBoolFalse: return TType::kBool;
    case CType::kByte: return TType::kByte;
    case CType::kI16: return TType::kI16;
    case CType::kI32: return TType::kI32;
    case CType::kI64: return TType::kI64;
    case CType::kDouble: return TType::kDouble;
    case CType::kBinary: return TType::kString;
    case CType::kList: return TType::kList;
    case CType::kSet: return TType::kSet;
    case CType::kMap: return TType::kMap;
    case CType::kStruct: return TType::kStruct;
  }
  throw TProtocolException(TProtocolException::Kind::kInvalidData,
                           "bad compact type");
}

void TCompactProtocol::write_varint(uint64_t v) {
  while (v >= 0x80) {
    uint8_t b = static_cast<uint8_t>((v & 0x7f) | 0x80);
    buf_.write(&b, 1);
    v >>= 7;
  }
  uint8_t b = static_cast<uint8_t>(v);
  buf_.write(&b, 1);
}

uint64_t TCompactProtocol::read_varint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    uint8_t b;
    buf_.read(&b, 1);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
    if (shift > 63)
      throw TProtocolException(TProtocolException::Kind::kInvalidData,
                               "varint too long");
  }
}

void TCompactProtocol::writeMessageBegin(std::string_view name,
                                         TMessageType type, int32_t seqid) {
  uint8_t pid = kProtocolId;
  buf_.write(&pid, 1);
  uint8_t vt = static_cast<uint8_t>((static_cast<uint8_t>(type) << 5) |
                                    (kVersion & 0x1f));
  buf_.write(&vt, 1);
  write_varint(static_cast<uint32_t>(seqid));
  write_varint(name.size());
  buf_.write(name.data(), name.size());
}

void TCompactProtocol::writeStructBegin(std::string_view) {
  last_field_stack_.push_back(last_field_);
  last_field_ = 0;
}

void TCompactProtocol::writeStructEnd() {
  last_field_ = last_field_stack_.back();
  last_field_stack_.pop_back();
}

void TCompactProtocol::writeFieldBegin(TType type, int16_t id) {
  if (type == TType::kBool) {
    bool_field_pending_ = true;
    bool_field_id_ = id;
    return;  // header written together with the value
  }
  uint8_t ct = static_cast<uint8_t>(to_compact(type));
  int16_t delta = static_cast<int16_t>(id - last_field_);
  if (delta > 0 && delta <= 15) {
    uint8_t b = static_cast<uint8_t>((delta << 4) | ct);
    buf_.write(&b, 1);
  } else {
    buf_.write(&ct, 1);
    write_varint(zigzag(id));
  }
  last_field_ = id;
}

void TCompactProtocol::writeFieldStop() {
  uint8_t b = 0;
  buf_.write(&b, 1);
}

void TCompactProtocol::writeBool(bool v) {
  CType ct = v ? CType::kBoolTrue : CType::kBoolFalse;
  if (bool_field_pending_) {
    bool_field_pending_ = false;
    int16_t delta = static_cast<int16_t>(bool_field_id_ - last_field_);
    if (delta > 0 && delta <= 15) {
      uint8_t b = static_cast<uint8_t>((delta << 4) |
                                       static_cast<uint8_t>(ct));
      buf_.write(&b, 1);
    } else {
      uint8_t b = static_cast<uint8_t>(ct);
      buf_.write(&b, 1);
      write_varint(zigzag(bool_field_id_));
    }
    last_field_ = bool_field_id_;
  } else {
    uint8_t b = v ? 1 : 0;  // bool inside a container
    buf_.write(&b, 1);
  }
}

void TCompactProtocol::writeByte(int8_t v) { buf_.write(&v, 1); }
void TCompactProtocol::writeI16(int16_t v) { write_varint(zigzag(v)); }
void TCompactProtocol::writeI32(int32_t v) { write_varint(zigzag(v)); }
void TCompactProtocol::writeI64(int64_t v) { write_varint(zigzag(v)); }

void TCompactProtocol::writeDouble(double v) {
  uint64_t bits = std::bit_cast<uint64_t>(v);
  buf_.write(&bits, 8);  // little-endian per compact spec
}

void TCompactProtocol::writeString(std::string_view v) {
  write_varint(v.size());
  buf_.write(v.data(), v.size());
}

void TCompactProtocol::writeMapBegin(TType key, TType val, uint32_t size) {
  write_varint(size);
  if (size > 0) {
    uint8_t kv = static_cast<uint8_t>(
        (static_cast<uint8_t>(to_compact(key)) << 4) |
        static_cast<uint8_t>(to_compact(val)));
    buf_.write(&kv, 1);
  }
}

void TCompactProtocol::writeListBegin(TType elem, uint32_t size) {
  uint8_t et = static_cast<uint8_t>(to_compact(elem));
  if (size <= 14) {
    uint8_t b = static_cast<uint8_t>((size << 4) | et);
    buf_.write(&b, 1);
  } else {
    uint8_t b = static_cast<uint8_t>(0xf0 | et);
    buf_.write(&b, 1);
    write_varint(size);
  }
}

void TCompactProtocol::writeSetBegin(TType elem, uint32_t size) {
  writeListBegin(elem, size);
}

TProtocol::MessageHead TCompactProtocol::readMessageBegin() {
  uint8_t pid;
  buf_.read(&pid, 1);
  if (pid != kProtocolId)
    throw TProtocolException(TProtocolException::Kind::kBadVersion,
                             "bad compact protocol id");
  uint8_t vt;
  buf_.read(&vt, 1);
  if ((vt & 0x1f) != kVersion)
    throw TProtocolException(TProtocolException::Kind::kBadVersion,
                             "bad compact version");
  MessageHead h;
  h.type = static_cast<TMessageType>((vt >> 5) & 0x7);
  h.seqid = static_cast<int32_t>(read_varint());
  size_t n = read_varint();
  h.name = buf_.read_string(n);
  return h;
}

void TCompactProtocol::readStructBegin() {
  last_field_stack_.push_back(last_field_);
  last_field_ = 0;
}

void TCompactProtocol::readStructEnd() {
  last_field_ = last_field_stack_.back();
  last_field_stack_.pop_back();
}

TProtocol::FieldHead TCompactProtocol::readFieldBegin() {
  uint8_t b;
  buf_.read(&b, 1);
  CType ct = static_cast<CType>(b & 0x0f);
  if (ct == CType::kStop) return {TType::kStop, 0};
  int16_t id;
  uint8_t delta = b >> 4;
  if (delta != 0) {
    id = static_cast<int16_t>(last_field_ + delta);
  } else {
    id = static_cast<int16_t>(unzigzag(read_varint()));
  }
  last_field_ = id;
  if (ct == CType::kBoolTrue || ct == CType::kBoolFalse) {
    bool_value_pending_ = true;
    bool_value_ = (ct == CType::kBoolTrue);
  }
  return {to_ttype(ct), id};
}

bool TCompactProtocol::readBool() {
  if (bool_value_pending_) {
    bool_value_pending_ = false;
    return bool_value_;
  }
  uint8_t b;
  buf_.read(&b, 1);
  return b == 1;
}

int8_t TCompactProtocol::readByte() {
  int8_t v;
  buf_.read(&v, 1);
  return v;
}

int16_t TCompactProtocol::readI16() {
  return static_cast<int16_t>(unzigzag(read_varint()));
}

int32_t TCompactProtocol::readI32() {
  return static_cast<int32_t>(unzigzag(read_varint()));
}

int64_t TCompactProtocol::readI64() { return unzigzag(read_varint()); }

double TCompactProtocol::readDouble() {
  uint64_t bits;
  buf_.read(&bits, 8);
  return std::bit_cast<double>(bits);
}

std::string TCompactProtocol::readString() {
  size_t n = read_varint();
  return buf_.read_string(n);
}

TProtocol::MapHead TCompactProtocol::readMapBegin() {
  uint32_t size = static_cast<uint32_t>(read_varint());
  if (size == 0) return {TType::kStop, TType::kStop, 0};
  uint8_t kv;
  buf_.read(&kv, 1);
  return {to_ttype(static_cast<CType>(kv >> 4)),
          to_ttype(static_cast<CType>(kv & 0x0f)), size};
}

TProtocol::ListHead TCompactProtocol::readListBegin() {
  uint8_t b;
  buf_.read(&b, 1);
  CType et = static_cast<CType>(b & 0x0f);
  uint32_t size = b >> 4;
  if (size == 15) size = static_cast<uint32_t>(read_varint());
  return {to_ttype(et), size};
}

TProtocol::ListHead TCompactProtocol::readSetBegin() {
  return readListBegin();
}

}  // namespace hatrpc::thrift
