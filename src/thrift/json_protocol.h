// TJSONProtocol — Apache Thrift's JSON wire protocol (the third encoding
// in the paper's Fig. 2 protocol row). Wire format follows upstream:
//   * message: [version, "name", type, seqid, <payload>]
//   * struct:  {"<field-id>":{"<type-tag>":<value>}, ...}
//   * map:     ["<ktag>","<vtag>",size,{<key>:<value>,...}]
//   * list/set: ["<etag>",size,<elem>,...]
//   * bool as 1/0; doubles as numbers (with "Infinity"/"NaN" strings);
//   * binary/string as JSON strings with escaping.
#pragma once

#include "thrift/protocol.h"

namespace hatrpc::thrift {

class TJSONProtocol final : public TProtocol {
 public:
  explicit TJSONProtocol(TMemoryBuffer& buf) : TProtocol(buf) {
    // Implicit root contexts: top-level values are ","-separated, and the
    // writer/reader keep independent state so one protocol object can
    // serialize and then deserialize (like the byte-oriented protocols).
    wstack_.push_back({});
    rstack_.push_back({});
  }

  void writeMessageBegin(std::string_view name, TMessageType type,
                         int32_t seqid) override;
  void writeMessageEnd() override;
  void writeStructBegin(std::string_view) override;
  void writeStructEnd() override;
  void writeFieldBegin(TType type, int16_t id) override;
  void writeFieldEnd() override;
  void writeFieldStop() override {}
  void writeMapBegin(TType key, TType val, uint32_t size) override;
  void writeMapEnd() override;
  void writeListBegin(TType elem, uint32_t size) override;
  void writeListEnd() override;
  void writeSetBegin(TType elem, uint32_t size) override;
  void writeSetEnd() override;
  void writeBool(bool v) override;
  void writeByte(int8_t v) override;
  void writeI16(int16_t v) override;
  void writeI32(int32_t v) override;
  void writeI64(int64_t v) override;
  void writeDouble(double v) override;
  void writeString(std::string_view v) override;

  MessageHead readMessageBegin() override;
  void readMessageEnd() override;
  void readStructBegin() override;
  void readStructEnd() override;
  FieldHead readFieldBegin() override;
  void readFieldEnd() override;
  MapHead readMapBegin() override;
  void readMapEnd() override;
  ListHead readListBegin() override;
  void readListEnd() override;
  ListHead readSetBegin() override;
  void readSetEnd() override;
  bool readBool() override;
  int8_t readByte() override;
  int16_t readI16() override;
  int32_t readI32() override;
  int64_t readI64() override;
  double readDouble() override;
  std::string readString() override;

 private:
  static constexpr int32_t kVersion = 1;

  static std::string_view type_tag(TType t);
  static TType tag_type(std::string_view tag);

  // --- writer helpers --------------------------------------------------------
  void wsep();           // emit "," when needed in the current container
  void wraw(std::string_view s);
  void wstring(std::string_view s);
  void wnumber(int64_t v);
  void wpush(bool in_object);
  void wpop();
  void rpush(bool in_object);
  void rpop();

  // --- reader helpers ----------------------------------------------------------
  void rsep();           // consume "," / ":" separators as contexts demand
  char rpeek();
  char rget();
  void rexpect(char c);
  std::string rstring_raw();  // no separator handling (object keys)
  std::string rstring();
  int64_t rnumber();
  double rdouble_value();

  struct Ctx {
    bool object = false;  // object values alternate key/value with ':'
    uint32_t emitted = 0;
  };
  std::vector<Ctx> wstack_;
  std::vector<Ctx> rstack_;
  char pushback_ = 0;
  bool has_pushback_ = false;
};

}  // namespace hatrpc::thrift
