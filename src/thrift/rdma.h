// The TRdma bridge layer of paper §4.3 (Fig. 9): TRdma / TServerRdma are
// the RDMA counterparts of TSocket / TServerSocket, keeping the same
// programming model (write -> flush -> read) so Thrift's generated code and
// runtime can drive either transport unchanged. A TRdmaEndPoint wraps one
// protocol channel of the underlying RDMA engine; TRdmaTransport performs
// the connection "handshake" (channel creation = QP/MR setup + exchange).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "hint/adaptive.h"
#include "proto/buffer_pool.h"
#include "proto/channel.h"
#include "thrift/protocol.h"
#include "thrift/transport.h"

namespace hatrpc::thrift {

/// The per-function plan cache of paper §4.3 ("caching the RPC function
/// type"), made invalidation-aware for adaptive hints: every published
/// plan carries an epoch that bumps when the plan CHANGES. Clients stamp
/// the epoch they resolved; when a runtime controller republishes a
/// re-selected plan, stamped snapshots go stale and the next flush()
/// re-resolves instead of trusting a dead plan.
class PlanCache {
 public:
  struct Snapshot {
    hint::Plan plan;
    uint64_t epoch = 0;
  };

  /// Opts the cache into race checking (per-function kUpdate accesses:
  /// publish-vs-resolve ordering is racy BY DESIGN — that is what the
  /// epoch validation in fresh() exists for).
  void bind_racecheck(sim::Simulator* sim) { rc_sim_ = sim; }

  /// Publishes `plan` for `fn`. Idempotent: the epoch bumps only when the
  /// plan actually differs from the cached one. Returns the entry's epoch.
  uint64_t publish(const std::string& fn, const hint::Plan& plan) {
    rc_touch(fn);
    Entry& e = map_[fn];
    if (e.epoch == 0 || !(e.plan == plan)) {
      e.plan = plan;
      ++e.epoch;
    }
    return e.epoch;
  }

  /// Current snapshot for `fn`; nullopt when never published.
  std::optional<Snapshot> resolve(const std::string& fn) const {
    rc_touch(fn);
    auto it = map_.find(fn);
    if (it == map_.end()) return std::nullopt;
    return Snapshot{it->second.plan, it->second.epoch};
  }

  /// Epoch validation: is a snapshot stamped `epoch` still current?
  bool fresh(const std::string& fn, uint64_t epoch) const {
    rc_touch(fn);
    auto it = map_.find(fn);
    return it != map_.end() && it->second.epoch == epoch;
  }

  size_t size() const { return map_.size(); }

 private:
  struct Entry {
    hint::Plan plan;
    uint64_t epoch = 0;
  };

  void rc_touch(const std::string& fn) const {
    if (rc_sim_)
      rc_sim_->rc_update(this, std::hash<std::string>{}(fn),
                         "PlanCache.entry", RC_HERE);
  }

  std::map<std::string, Entry> map_;  // ordered: deterministic iteration
  sim::Simulator* rc_sim_ = nullptr;
};

/// Interface point between the Thrift layer and the RDMA engine: one
/// established protocol channel. On the zero-copy send path the endpoint
/// also owns a pool of pre-registered serialization buffers on the client
/// node: TRdma stages outgoing messages there, so the channel's
/// gather/inline path posts from memory the MrCache already knows.
class TRdmaEndPoint {
 public:
  explicit TRdmaEndPoint(std::unique_ptr<proto::RpcChannel> ch)
      : channel_(std::move(ch)) {}

  TRdmaEndPoint(std::unique_ptr<proto::RpcChannel> ch, verbs::Node& client,
                const proto::ChannelConfig& cfg)
      : channel_(std::move(ch)) {
    if (cfg.zero_copy) pool_.emplace(client, cfg.max_msg, cfg.window + 1);
  }

  proto::RpcChannel& channel() { return *channel_; }
  /// Null unless the endpoint was created with zero_copy configured.
  proto::BufferPool* pool() { return pool_ ? &*pool_ : nullptr; }
  void shutdown() { channel_->shutdown(); }

 private:
  std::unique_ptr<proto::RpcChannel> channel_;
  std::optional<proto::BufferPool> pool_;
};

/// Client-side RDMA transport with TSocket-compatible buffer semantics:
/// write() appends to an outbound buffer, flush() performs the RPC, read()
/// consumes the response. (This is exactly how Thrift's generated client
/// stubs drive a transport.)
class TRdma final : public MessageTransport {
 public:
  explicit TRdma(TRdmaEndPoint& ep) : ep_(ep) {}

  /// Expected response size for the next flush (function-level payload
  /// hints plumb through here, paper §4.3 "dynamic hints").
  void set_response_size_hint(uint32_t bytes) { resp_hint_ = bytes; }

  /// Binds the transport to `fn`'s cached plan: each flush() validates its
  /// stamped epoch against the cache and — on a miss (the controller
  /// republished a re-selected plan) — re-resolves, re-stamping the
  /// response-size hint from the fresh plan. The client half of the §4.3
  /// plan-cache invalidation protocol.
  void bind_plan(PlanCache& cache, std::string fn) {
    plan_cache_ = &cache;
    plan_fn_ = std::move(fn);
    plan_epoch_ = 0;
  }
  /// How many times the bound plan went stale and was re-resolved.
  uint64_t plan_refreshes() const { return plan_refreshes_; }

  /// Leased receive path: flush() uses call_leased(), so single-segment
  /// responses are consumed straight from the channel's recv ring (read()
  /// copies out of the ring view; no intermediate materialization). The
  /// lease — and its ring slot — is held until the next flush()/close().
  void enable_leased_reads(bool on = true) { leased_reads_ = on; }

  void write(View data) {
    if (proto::BufferPool* pool = ep_.pool(); pool && out_.empty()) {
      // Zero-copy staging: the outbound message accumulates in a pooled,
      // pre-registered block instead of the heap buffer.
      if (!lease_) lease_ = pool->acquire();
      if (out_len_ + data.size() <= lease_.capacity()) {
        std::memcpy(lease_.data() + out_len_, data.data(), data.size());
        out_len_ += data.size();
        return;
      }
      // The message outgrew the block: spill to the heap and append there.
      out_.assign(lease_.data(), lease_.data() + out_len_);
      lease_.release();
      out_len_ = 0;
    }
    out_.insert(out_.end(), data.begin(), data.end());
  }

  /// Sends the buffered request through the RDMA engine and latches the
  /// response for read(). Transport failures surface as RpcError (the
  /// Result's error arm re-raised), matching TSocket's exception shape.
  sim::Task<void> flush() {
    refresh_plan();
    // The outbound bytes: the pooled lease (held across the call so the
    // channel's borrowed gather view stays valid) or the heap spill.
    Buffer heap;
    View req;
    if (lease_) {
      req = View{lease_.data(), out_len_};
    } else {
      heap = std::move(out_);
      out_.clear();
      req = heap;
    }
    if (leased_reads_) {
      proto::LeasedResult r = co_await ep_.channel().call_leased(req,
                                                                 resp_hint_);
      end_send();
      in_.clear();
      in_lease_ = std::move(r).value();
    } else {
      proto::CallResult r = co_await ep_.channel().call(req, resp_hint_);
      end_send();
      in_lease_.release();
      in_ = std::move(r).value();
    }
    rpos_ = 0;
  }

  sim::Task<size_t> read(std::byte* p, size_t max) {
    View src = in_view();
    size_t n = std::min(max, src.size() - rpos_);
    std::memcpy(p, src.data() + rpos_, n);
    rpos_ += n;
    co_return n;
  }

  // MessageTransport view (whole-message granularity).
  sim::Task<void> send(View msg) override {
    write(msg);
    co_await flush();
  }
  sim::Task<std::optional<Buffer>> recv() override {
    View src = in_view();
    Buffer b(src.begin() + static_cast<ptrdiff_t>(rpos_), src.end());
    rpos_ = src.size();
    co_return b;
  }
  void close() override {
    in_lease_.release();
    ep_.shutdown();
  }

 private:
  View in_view() const {
    return leased_reads_ ? in_lease_.bytes() : View(in_);
  }
  void end_send() {
    if (lease_) {
      lease_.release();
      out_len_ = 0;
    }
  }
  void refresh_plan() {
    if (!plan_cache_ || plan_cache_->fresh(plan_fn_, plan_epoch_)) return;
    if (auto s = plan_cache_->resolve(plan_fn_)) {
      plan_epoch_ = s->epoch;
      if (s->plan.expected_payload > 0)
        resp_hint_ = s->plan.expected_payload;
      ++plan_refreshes_;
    }
  }

  TRdmaEndPoint& ep_;
  Buffer out_;
  proto::BufferPool::Lease lease_;  // zero-copy staging block
  size_t out_len_ = 0;              // bytes staged into the lease
  Buffer in_;
  proto::LeasedReply in_lease_;     // leased-reads inbound view
  bool leased_reads_ = false;
  size_t rpos_ = 0;
  uint32_t resp_hint_ = 0;
  PlanCache* plan_cache_ = nullptr;
  std::string plan_fn_;
  uint64_t plan_epoch_ = 0;
  uint64_t plan_refreshes_ = 0;
};

/// TRdmaTransport — the connection-establishment half of the bridge layer
/// (paper §4.3: "a class that is responsible for RDMA handshaking. Upon
/// connection establishment, a TRdmaEndPoint is created"). Mirrors the
/// standard RDMA-CM deployment pattern: an out-of-band TCP exchange carries
/// the connect request (protocol kind, channel geometry, static hints) and
/// the accept reply, after which the verbs resources (QPs, CQs, registered
/// buffers) exist on both sides and the endpoint is live. The handshake
/// costs real simulated time (TCP connect + one request/reply round trip).
class TRdmaTransport {
 public:
  TRdmaTransport(SocketNet& net, verbs::Node& server, uint16_t port,
                 proto::Handler processor)
      : net_(net), server_(server), processor_(std::move(processor)) {
    listener_ = net_.listen(server_, port);
    port_ = port;
    net_.simulator().spawn(accept_loop());
  }

  /// Client side: performs the handshake and returns the live endpoint.
  sim::Task<TRdmaEndPoint*> connect(verbs::Node& client,
                                    proto::ProtocolKind kind,
                                    proto::ChannelConfig cfg) {
    SimSocket* sock = co_await net_.connect(client, server_, port_);
    TFramedTransport framed(sock);
    // ConnectRequest: protocol kind + the geometry the static hints chose.
    TMemoryBuffer req;
    TBinaryProtocol p(req);
    p.writeByte(static_cast<int8_t>(kind));
    p.writeI32(static_cast<int32_t>(client.id()));
    p.writeI32(static_cast<int32_t>(cfg.max_msg));
    p.writeI32(static_cast<int32_t>(cfg.eager_slots));
    p.writeI32(static_cast<int32_t>(cfg.window));
    p.writeByte(cfg.client_poll == sim::PollMode::kBusy ? 1 : 0);
    p.writeByte(cfg.server_poll == sim::PollMode::kBusy ? 1 : 0);
    p.writeByte(cfg.zero_copy ? 1 : 0);
    co_await framed.send(req.view());
    // AcceptReply carries the endpoint id (stand-in for the QP number /
    // rkey blob a real reply would carry).
    auto reply = co_await framed.recv();
    if (!reply)
      throw TTransportException(TTransportException::Kind::kEndOfFile,
                                "rdma handshake rejected");
    TMemoryBuffer rb = TMemoryBuffer::wrap(*reply);
    TBinaryProtocol rp(rb);
    int32_t ep_index = rp.readI32();
    sock->close();
    co_return endpoints_.at(static_cast<size_t>(ep_index)).get();
  }

  void stop() {
    listener_->close();
    for (auto& ep : endpoints_) ep->shutdown();
  }

  size_t connections() const { return endpoints_.size(); }

 private:
  sim::Task<void> accept_loop() {
    while (SimSocket* sock = co_await listener_->accept()) {
      TFramedTransport framed(sock);
      auto req = co_await framed.recv();
      if (!req) continue;
      TMemoryBuffer rb = TMemoryBuffer::wrap(*req);
      TBinaryProtocol rp(rb);
      auto kind = static_cast<proto::ProtocolKind>(rp.readByte());
      auto client_id = static_cast<uint32_t>(rp.readI32());
      proto::ChannelConfig cfg;
      cfg.max_msg = static_cast<uint32_t>(rp.readI32());
      cfg.eager_slots = static_cast<uint32_t>(rp.readI32());
      cfg.window = static_cast<uint32_t>(rp.readI32());
      cfg.client_poll = rp.readByte() ? sim::PollMode::kBusy
                                      : sim::PollMode::kEvent;
      cfg.server_poll = rp.readByte() ? sim::PollMode::kBusy
                                      : sim::PollMode::kEvent;
      cfg.zero_copy = rp.readByte() != 0;
      // Create the verbs resources on both ends (QP exchange + buffer
      // registration) and reply with the endpoint handle.
      verbs::Node& client = *server_.fabric().node(client_id);
      endpoints_.push_back(std::make_unique<TRdmaEndPoint>(
          proto::make_channel(kind, client, server_, processor_, cfg),
          client, cfg));
      TMemoryBuffer reply;
      TBinaryProtocol wp(reply);
      wp.writeI32(static_cast<int32_t>(endpoints_.size() - 1));
      co_await framed.send(reply.view());
    }
  }

  SocketNet& net_;
  verbs::Node& server_;
  proto::Handler processor_;
  Listener* listener_ = nullptr;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<TRdmaEndPoint>> endpoints_;
};

/// Connection→shard steering policy, applied once at accept time.
enum class Steering : uint8_t {
  kRoundRobin,   // accept order modulo shard count
  kLeastLoaded,  // fewest live connections, ties to the lowest shard id
  kAffinity,     // hash of the client node id (QP-hash analogue): a client
                 // always lands on the same shard, like RSS/flow steering
};

constexpr const char* to_string(Steering s) {
  switch (s) {
    case Steering::kRoundRobin: return "round_robin";
    case Steering::kLeastLoaded: return "least_loaded";
    case Steering::kAffinity: return "affinity";
  }
  return "unknown";
}

/// Server-side counterpart of TServerSocket: the RDMA engine delivers each
/// request to the processor registered at channel-creation time, so
/// TServerRdma is the factory/owner of endpoints on the server node.
///
/// With Options::shards > 0 the server splits into per-core shards, each
/// owning an independent polling context that never contends with its
/// siblings: a private SRQ (its own pre-posted recv pool), a private slab
/// of pooled buffers, a private counter scope (shard_accepts, shard_polls,
/// window_stalls), and — when bind_cores is set — a pinned core whose
/// single busy-polling thread (Cpu::pin_spinner) serves every connection
/// steered onto the shard. Doorbell coalescing batches are per QP, hence
/// never shared across shards either. Connections are steered at accept
/// time by the configured policy. shards == 0 is the legacy unsharded
/// server, bit-identical to the pre-sharding behaviour.
class TServerRdma {
 public:
  struct Options {
    /// When nonzero the server creates a shared receive queue (one per
    /// shard when sharded), pre-posts this many recv tokens on each, and
    /// attaches every accepted recv-consuming channel to its shard's (the
    /// ibv_srq deployment pattern: one recv pool instead of per-connection
    /// recv rings, so posted-recv memory scales with the expected burst,
    /// not with the connection count).
    uint32_t srq_depth = 0;
    /// Number of per-core shards; 0 = legacy unsharded server.
    uint32_t shards = 0;
    /// Connection→shard policy applied at accept time.
    Steering steering = Steering::kRoundRobin;
    /// Pin shard i to core i % cores. Off by default so that a sharded
    /// server without binding stays comparable to the legacy one; the
    /// scalability bench turns it on to study per-core saturation and
    /// over-subscription collapse.
    bool bind_cores = false;
    /// Per-shard private buffer slab (pool_blocks blocks of pool_block
    /// bytes, pre-registered): response staging memory a shard's handlers
    /// can lease without ever touching another shard's pool. 0 = none.
    uint32_t pool_block = 0;
    uint32_t pool_blocks = 0;
  };

  /// Per-shard processor factory: lets a sharded server give each shard
  /// its own handler — typically one that charges handler compute on the
  /// shard's pinned core and stages responses in the shard's private pool.
  using ShardProcessorFactory = std::function<proto::Handler(
      uint32_t shard, int core, proto::BufferPool* pool)>;

  struct Shard {
    uint32_t index = 0;
    int core = -1;  // pinned core, -1 when bind_cores is off
    uint32_t ctr_id = 0;
    /// Live in-flight gauge: every call() on a channel accepted onto this
    /// shard holds +1 while outstanding. kLeastLoaded steers on this, so a
    /// shard that accepted a long-dead burst ranks idle again the moment
    /// its calls drain (accept counts never decay; this does).
    uint64_t inflight = 0;
    obs::CounterSet* ctrs = nullptr;
    verbs::SharedReceiveQueue* srq = nullptr;
    std::optional<proto::BufferPool> pool;
    std::optional<sim::Cpu::SpinGuard> spinner;  // the shard's polling thread
    proto::Handler processor;  // empty = use the server-wide processor
    std::vector<std::unique_ptr<TRdmaEndPoint>> endpoints;
  };

  TServerRdma(verbs::Node& node, proto::Handler processor)
      : TServerRdma(node, std::move(processor), Options{}) {}

  TServerRdma(verbs::Node& node, proto::Handler processor, Options opts)
      : node_(node), processor_(std::move(processor)), opts_(opts) {
    if (opts_.shards == 0) {
      if (opts_.srq_depth > 0) {
        srq_ = node_.create_srq();
        for (uint32_t i = 0; i < opts_.srq_depth; ++i)
          srq_->post_recv(verbs::RecvWr{.wr_id = i});
      }
      return;
    }
    init_shards(nullptr);
  }

  TServerRdma(verbs::Node& node, ShardProcessorFactory factory, Options opts)
      : node_(node), opts_(opts) {
    if (opts_.shards == 0) opts_.shards = 1;
    init_shards(&factory);
  }

  /// Accepts a new connection from `client` using `kind`; the simulation
  /// analogue of TRdmaTransport's QP handshake + buffer exchange. Sharded
  /// servers steer the connection to a shard first and stamp its SRQ, core
  /// and counter scope into the channel config.
  TRdmaEndPoint* accept(verbs::Node& client, proto::ProtocolKind kind,
                        proto::ChannelConfig cfg) {
    if (shards_.empty()) {
      if (srq_) cfg.with_server_srq(srq_);
      endpoints_.push_back(std::make_unique<TRdmaEndPoint>(
          proto::make_channel(kind, client, node_, processor_, cfg), client,
          cfg));
      return endpoints_.back().get();
    }
    Shard& sh = stamp_shard(client, cfg);
    const proto::Handler& h = sh.processor ? sh.processor : processor_;
    sh.endpoints.push_back(std::make_unique<TRdmaEndPoint>(
        proto::make_channel(kind, client, node_, h, cfg), client, cfg));
    return sh.endpoints.back().get();
  }

  /// Adaptive accept: like accept(), but wraps the connection in an
  /// AdaptiveChannel seeded with `prior`, so the runtime controller
  /// re-selects protocol/polling/window from live counters. Shard
  /// resources (SRQ, core, counter scope, in-flight gauge) are stamped
  /// into the config every rebuilt epoch inherits, so plan changes never
  /// migrate a connection off its shard. When `fn` is given, the
  /// function's footprint scope (shared across connections carrying the
  /// same function) feeds the controller, and the adopted plan is
  /// published into `cache` under `fn`.
  TRdmaEndPoint* accept_adaptive(verbs::Node& client, hint::Plan prior,
                                 proto::ChannelConfig cfg,
                                 const hint::AdaptiveParams& params = {},
                                 PlanCache* cache = nullptr,
                                 const std::string& fn = {}) {
    obs::FunctionFootprint* fp = fn.empty() ? nullptr : footprint_for(fn);
    std::vector<std::unique_ptr<TRdmaEndPoint>>* home;
    const proto::Handler* h;
    if (shards_.empty()) {
      if (srq_) cfg.with_server_srq(srq_);
      home = &endpoints_;
      h = &processor_;
    } else {
      Shard& sh = stamp_shard(client, cfg);
      home = &sh.endpoints;
      h = sh.processor ? &sh.processor : &processor_;
    }
    auto ch = hint::make_adaptive_channel(client, node_, *h, cfg, prior,
                                          params, fp);
    if (cache) cache->bind_racecheck(&node_.fabric().simulator());
    if (cache && !fn.empty()) cache->publish(fn, ch->plan());
    home->push_back(
        std::make_unique<TRdmaEndPoint>(std::move(ch), client, cfg));
    return home->back().get();
  }

  /// Server half of the §4.3 plan-cache invalidation: republishes an
  /// adaptive endpoint's currently adopted plan. Returns true when the
  /// cache entry changed (every client snapshot stamped with the old epoch
  /// goes stale and re-resolves on its next flush).
  static bool refresh_plan(PlanCache& cache, const std::string& fn,
                           TRdmaEndPoint& ep) {
    auto* ad = dynamic_cast<hint::AdaptiveChannel*>(&ep.channel());
    if (!ad) return false;
    auto cur = cache.resolve(fn);
    if (cur && cur->plan == ad->plan()) return false;
    cache.publish(fn, ad->plan());
    return true;
  }

  void stop() {
    for (auto& ep : endpoints_) ep->shutdown();
    if (srq_) srq_->close();
    for (Shard& sh : shards_) {
      for (auto& ep : sh.endpoints) ep->shutdown();
      if (sh.srq) sh.srq->close();
      sh.spinner.reset();  // the polling thread parks; the core frees up
    }
  }

  verbs::Node& node() { return node_; }
  verbs::SharedReceiveQueue* srq() { return srq_; }
  size_t connections() const {
    size_t n = endpoints_.size();
    for (const Shard& sh : shards_) n += sh.endpoints.size();
    return n;
  }

  size_t shard_count() const { return shards_.size(); }
  const Shard& shard(uint32_t i) const { return shards_.at(i); }
  Shard& shard(uint32_t i) { return shards_.at(i); }

 private:
  /// Steers `client` onto a shard and stamps the shard's resources into
  /// `cfg` (shared by accept and accept_adaptive).
  Shard& stamp_shard(const verbs::Node& client, proto::ChannelConfig& cfg) {
    Shard& sh = shards_[pick_shard(client)];
    ++accepted_;
    sh.ctrs->add(obs::Ctr::kShardAccepts);
    if (sh.srq) cfg.with_server_srq(sh.srq);
    if (sh.core >= 0) cfg.with_server_core(sh.core);
    cfg.with_shard_counters(sh.ctrs);
    cfg.with_shard_inflight(&sh.inflight);
    // The shard's polling thread starts spinning with its first busy-mode
    // connection (an idle shard's core stays free for its siblings).
    if (sh.core >= 0 && cfg.server_poll == sim::PollMode::kBusy &&
        !sh.spinner)
      sh.spinner.emplace(node_.cpu().pin_spinner(sh.core));
    return sh;
  }

  /// Find-or-register the function's footprint scope: connections carrying
  /// the same function share one scope, so the controller observes the
  /// AGGREGATE concurrency (the quantity the Fig-6 map classifies on).
  obs::FunctionFootprint* footprint_for(const std::string& fn) {
    auto& reg = node_.fabric().obs().footprints;
    for (uint32_t i = 0; i < reg.function_count(); ++i)
      if (reg.function(i).name() == fn) return &reg.function(i);
    return &reg.function(reg.register_function(fn));
  }

  void init_shards(const ShardProcessorFactory* factory) {
    auto& counters = node_.fabric().obs().counters;
    shards_.reserve(opts_.shards);
    for (uint32_t i = 0; i < opts_.shards; ++i) {
      // Build the shard in place: the factory (and any handler it returns)
      // may capture the pool's address, which must be its final home inside
      // shards_, not a local about to be moved from.
      Shard& sh = shards_.emplace_back();
      sh.index = i;
      if (opts_.bind_cores) sh.core = static_cast<int>(i) % node_.cpu().cores();
      sh.ctr_id = counters.register_shard();
      sh.ctrs = &counters.shard(sh.ctr_id);
      if (opts_.srq_depth > 0) {
        sh.srq = node_.create_srq();
        for (uint32_t r = 0; r < opts_.srq_depth; ++r)
          sh.srq->post_recv(verbs::RecvWr{.wr_id = r});
      }
      if (opts_.pool_block > 0 && opts_.pool_blocks > 0)
        sh.pool.emplace(node_, opts_.pool_block, opts_.pool_blocks, sh.ctrs);
      if (factory && *factory)
        sh.processor = (*factory)(i, sh.core,
                                  sh.pool ? &*sh.pool : nullptr);
    }
  }

  /// splitmix64 finalizer — the same mix HatKV's ring uses, here standing
  /// in for hashing the QP number at accept time.
  static uint64_t mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  uint32_t pick_shard(const verbs::Node& client) const {
    const auto n = static_cast<uint32_t>(shards_.size());
    switch (opts_.steering) {
      case Steering::kRoundRobin:
        return static_cast<uint32_t>(accepted_ % n);
      case Steering::kLeastLoaded: {
        // Primary key: the live in-flight gauge (what the shard is doing
        // NOW — a shard that absorbed a burst ranks idle again once it
        // drains). Secondary: connection count, so idle shards still fill
        // evenly. Strict < keeps ties on the lowest shard id. The gauge
        // reads are deliberately unordered against the calls mutating
        // them (stale steering is still correct) — relaxed rc accesses.
        sim::Simulator& rsim = node_.fabric().simulator();
        for (uint32_t i = 0; i < n; ++i)
          rsim.rc_update(&shards_[i].inflight, 0, "shard.inflight_gauge",
                         RC_HERE);
        uint32_t best = 0;
        for (uint32_t i = 1; i < n; ++i) {
          const Shard& a = shards_[i];
          const Shard& b = shards_[best];
          if (a.inflight < b.inflight ||
              (a.inflight == b.inflight &&
               a.endpoints.size() < b.endpoints.size()))
            best = i;
        }
        return best;
      }
      case Steering::kAffinity:
        return static_cast<uint32_t>(mix(client.id()) % n);
    }
    return 0;
  }

  verbs::Node& node_;
  proto::Handler processor_;
  Options opts_;
  verbs::SharedReceiveQueue* srq_ = nullptr;  // legacy unsharded SRQ
  std::vector<std::unique_ptr<TRdmaEndPoint>> endpoints_;  // legacy path
  std::vector<Shard> shards_;
  uint64_t accepted_ = 0;  // sharded accepts (round-robin cursor)
};

}  // namespace hatrpc::thrift
