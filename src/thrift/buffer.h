// TMemoryBuffer: the synchronous byte buffer the serialization protocols
// operate on. Serialization is CPU work, not I/O, so it stays synchronous;
// the async boundary (simulated transports) is at message granularity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "thrift/ttypes.h"

namespace hatrpc::thrift {

class TMemoryBuffer {
 public:
  TMemoryBuffer() = default;

  /// Read-only view over existing bytes (zero-copy deserialization entry).
  static TMemoryBuffer wrap(std::span<const std::byte> bytes) {
    TMemoryBuffer b;
    b.buf_.assign(bytes.begin(), bytes.end());
    return b;
  }

  void write(const void* p, size_t n) {
    const std::byte* s = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), s, s + n);
  }

  void read(void* p, size_t n) {
    if (rpos_ + n > buf_.size())
      throw TTransportException(TTransportException::Kind::kEndOfFile,
                                "TMemoryBuffer underflow");
    std::memcpy(p, buf_.data() + rpos_, n);
    rpos_ += n;
  }

  std::string read_string(size_t n) {
    std::string s(n, '\0');
    read(s.data(), n);
    return s;
  }

  size_t readable() const { return buf_.size() - rpos_; }
  std::span<const std::byte> view() const { return {buf_.data(), buf_.size()}; }
  std::vector<std::byte> take() { return std::move(buf_); }

  void reset() {
    buf_.clear();
    rpos_ = 0;
  }

 private:
  std::vector<std::byte> buf_;
  size_t rpos_ = 0;
};

}  // namespace hatrpc::thrift
