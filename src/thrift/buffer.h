// TMemoryBuffer: the synchronous byte buffer the serialization protocols
// operate on. Serialization is CPU work, not I/O, so it stays synchronous;
// the async boundary (simulated transports) is at message granularity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "thrift/ttypes.h"

namespace hatrpc::thrift {

class TMemoryBuffer {
 public:
  TMemoryBuffer() = default;

  /// Read-only view over existing bytes (zero-copy deserialization entry).
  static TMemoryBuffer wrap(std::span<const std::byte> bytes) {
    TMemoryBuffer b;
    b.buf_.assign(bytes.begin(), bytes.end());
    return b;
  }

  /// Serialization target backed by caller-provided storage (a pooled,
  /// pre-registered block on the zero-copy send path): writes land in the
  /// backing in place; a message that outgrows it spills to the heap.
  static TMemoryBuffer backed(std::span<std::byte> storage) {
    TMemoryBuffer b;
    b.ext_ = storage.data();
    b.ext_cap_ = storage.size();
    return b;
  }

  void write(const void* p, size_t n) {
    const std::byte* s = static_cast<const std::byte*>(p);
    if (in_ext()) {
      if (ext_len_ + n <= ext_cap_) {
        std::memcpy(ext_ + ext_len_, s, n);
        ext_len_ += n;
        return;
      }
      buf_.assign(ext_, ext_ + ext_len_);
      spilled_ = true;
    }
    buf_.insert(buf_.end(), s, s + n);
  }

  void read(void* p, size_t n) {
    if (rpos_ + n > size())
      throw TTransportException(TTransportException::Kind::kEndOfFile,
                                "TMemoryBuffer underflow");
    std::memcpy(p, data() + rpos_, n);
    rpos_ += n;
  }

  std::string read_string(size_t n) {
    std::string s(n, '\0');
    read(s.data(), n);
    return s;
  }

  size_t readable() const { return size() - rpos_; }
  std::span<const std::byte> view() const { return {data(), size()}; }
  std::vector<std::byte> take() {
    if (in_ext()) return {ext_, ext_ + ext_len_};
    return std::move(buf_);
  }

  /// True while the contents live in the caller-provided backing (i.e. the
  /// message fit and view() points into pre-registered memory).
  bool backed_in_place() const { return in_ext(); }

  void reset() {
    buf_.clear();
    rpos_ = 0;
    ext_len_ = 0;
    spilled_ = false;
  }

 private:
  bool in_ext() const { return ext_ != nullptr && !spilled_; }
  const std::byte* data() const { return in_ext() ? ext_ : buf_.data(); }
  size_t size() const { return in_ext() ? ext_len_ : buf_.size(); }

  std::vector<std::byte> buf_;
  size_t rpos_ = 0;
  std::byte* ext_ = nullptr;  // external backing (zero-copy serialization)
  size_t ext_cap_ = 0;
  size_t ext_len_ = 0;
  bool spilled_ = false;
};

}  // namespace hatrpc::thrift
