// Umbrella header for the simulated verbs layer.
#pragma once

#include "verbs/check.h"       // IWYU pragma: export
#include "verbs/completion.h"  // IWYU pragma: export
#include "verbs/cost_model.h"  // IWYU pragma: export
#include "verbs/endpoint.h"    // IWYU pragma: export
#include "verbs/fabric.h"
#include "verbs/fault.h"      // IWYU pragma: export
#include "verbs/memory.h"      // IWYU pragma: export
#include "verbs/nic.h"         // IWYU pragma: export
#include "verbs/node.h"        // IWYU pragma: export
#include "verbs/qp.h"          // IWYU pragma: export
#include "verbs/srq.h"         // IWYU pragma: export
