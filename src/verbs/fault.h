// Seeded, deterministic fault injection for the simulated fabric.
//
// A FaultPlan is attached to a Fabric (Fabric::set_fault_plan) and consulted
// on the data path of every WQE. Two kinds of fault are supported:
//
//   * stochastic wire faults — per-attempt drop / corrupt / duplicate /
//     delay draws from a seeded xoshiro generator (sim/rng.h). Lost and
//     corrupted transmissions behave like a real RC transport: the ICRC /
//     ack-timeout machinery retransmits up to `retry_count` times (each
//     attempt still occupies the wire and waits out `retransmit_timeout`),
//     and exhaustion surfaces as kRetryExcErr at the requester. Duplicates
//     are PSN-deduped — they cost wire occupancy but have no semantic
//     effect. A finite `rnr_retry` turns unbounded receiver-not-ready
//     waiting into kRnrRetryExcErr after `rnr_retry` paced re-probes.
//
//   * scheduled faults — a QP forced into the error state, a whole node
//     crashed (all its QPs and their peers error out, its CQs close), or a
//     node's registered regions revoked (subsequent remote accesses NAK
//     with kRemAccessErr) at a chosen virtual time.
//
// Every injected fault is appended to a trace of "t=<ns> <what>" lines;
// because the simulator and the generator are both deterministic, two runs
// with the same seed and schedule produce byte-identical traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace hatrpc::verbs {

/// Stochastic fault probabilities and RC retry knobs. Probabilities are
/// per transmission attempt, drawn independently.
struct FaultProfile {
  double drop = 0.0;       // packet loss, caught by the ack timeout
  double corrupt = 0.0;    // payload corruption, caught by ICRC -> retransmit
  double duplicate = 0.0;  // duplicate delivery, PSN-deduped (wire cost only)
  double delay = 0.0;      // chance of extra queueing delay per WQE
  sim::Duration delay_max = std::chrono::microseconds(2);

  uint8_t retry_count = 7;  // transport retries before kRetryExcErr
  sim::Duration retransmit_timeout = std::chrono::microseconds(4);

  static constexpr uint8_t kRnrInfinite = 255;  // ibverbs rnr_retry = 7 (inf)
  uint8_t rnr_retry = kRnrInfinite;  // finite -> RNR exhaustion possible
  sim::Duration rnr_timer = std::chrono::microseconds(1);

  /// Worst-case time the transport spends discovering an unreachable peer.
  sim::Duration unreachable_penalty() const {
    return retransmit_timeout * (retry_count + 1);
  }
};

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed) : seed_(seed), rng_(seed) {}

  FaultProfile profile;

  // -- Scheduled faults (armed when the plan is attached to a Fabric) ------
  struct Scheduled {
    enum class Kind : uint8_t { kQpError, kNodeCrash, kRevokeMrs,
                                kNodeRestart };
    Kind kind;
    uint32_t id;  // qp_num or node id
    sim::Time at;
  };

  /// Forces the QP into the error state at virtual time `t`: posted recvs
  /// flush with kWrFlushErr and later WQEs fail.
  void fail_qp_at(uint32_t qp_num, sim::Time t) {
    scheduled_.push_back({Scheduled::Kind::kQpError, qp_num, t});
  }
  /// Crashes the whole node at `t`: its QPs enter the error state and its
  /// CQs close. Peer QPs are NOT errored instantly — they discover the
  /// silence through retransmission timeouts (unreachable_penalty), like a
  /// real fabric.
  void crash_node_at(uint32_t node_id, sim::Time t) {
    scheduled_.push_back({Scheduled::Kind::kNodeCrash, node_id, t});
  }
  /// Restarts a crashed node at `t` (fail-stop recovery): the node accepts
  /// fresh QPs/CQs/MRs again, but everything that existed at crash time
  /// stays dead — recovering software must rebuild its endpoints and
  /// re-register its regions, exactly like a rebooted machine.
  void restart_node_at(uint32_t node_id, sim::Time t) {
    scheduled_.push_back({Scheduled::Kind::kNodeRestart, node_id, t});
  }
  /// Revokes remote access to all regions currently registered on the node
  /// at `t` (a server losing its exported regions): later one-sided ops
  /// against them NAK with kRemAccessErr.
  void revoke_remote_access_at(uint32_t node_id, sim::Time t) {
    scheduled_.push_back({Scheduled::Kind::kRevokeMrs, node_id, t});
  }

  const std::vector<Scheduled>& scheduled() const { return scheduled_; }

  // -- Stochastic draws (consumed by the fabric data path in schedule
  //    order, which the single-threaded simulator makes deterministic) -----
  enum class LossKind : uint8_t { kNone, kDrop, kCorrupt };

  LossKind draw_loss() {
    if (profile.drop > 0 && rng_.chance(profile.drop)) return LossKind::kDrop;
    if (profile.corrupt > 0 && rng_.chance(profile.corrupt))
      return LossKind::kCorrupt;
    return LossKind::kNone;
  }
  bool draw_duplicate() {
    return profile.duplicate > 0 && rng_.chance(profile.duplicate);
  }
  sim::Duration draw_delay() {
    if (profile.delay <= 0 || !rng_.chance(profile.delay))
      return sim::Duration{0};
    return sim::Duration{static_cast<int64_t>(
        rng_.bounded(static_cast<uint64_t>(profile.delay_max.count()) + 1))};
  }

  // -- Deterministic trace -------------------------------------------------
  void note(sim::Time t, std::string what) {
    ++injected_;
    trace_.push_back("t=" + std::to_string(t.count()) + " " + std::move(what));
  }

  const std::vector<std::string>& trace() const { return trace_; }
  uint64_t injected() const { return injected_; }
  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
  sim::Rng rng_;
  std::vector<Scheduled> scheduled_;
  std::vector<std::string> trace_;
  uint64_t injected_ = 0;
};

}  // namespace hatrpc::verbs
