// The simulated InfiniBand fabric: owns the nodes, the cost model, and the
// data-path state machines for every verbs opcode. One Fabric == one
// cluster (the paper's testbed is 10 nodes on one EDR switch).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "verbs/cost_model.h"
#include "verbs/node.h"

namespace hatrpc::verbs {

class Fabric {
 public:
  Fabric(sim::Simulator& sim, CostModel cost)
      : sim_(sim), cost_(cost) {}
  explicit Fabric(sim::Simulator& sim) : Fabric(sim, CostModel{}) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  Node* add_node(sim::Cpu::Params cpu_params) {
    nodes_.push_back(std::make_unique<Node>(
        *this, static_cast<uint32_t>(nodes_.size()), cpu_params, sim_, cost_));
    return nodes_.back().get();
  }
  Node* add_node() { return add_node(sim::Cpu::Params{}); }

  /// Establishes a reliable connection between two queue pairs (the
  /// simulation analogue of the RDMA-CM / exchange-and-modify-QP dance).
  static void connect(QueuePair& a, QueuePair& b);

  sim::Simulator& simulator() { return sim_; }
  const CostModel& cost() const { return cost_; }
  Node* node(size_t i) { return nodes_.at(i).get(); }
  size_t node_count() const { return nodes_.size(); }

 private:
  friend class QueuePair;

  /// NIC-side execution of one WQE (spawned, runs in virtual time).
  sim::Task<void> execute_wqe(QueuePair& src, SendWr wr);
  sim::Task<void> execute_chain(QueuePair& src, std::vector<SendWr> wrs);

  /// Moves `bytes` from tx to rx at line rate, multiplexed with other
  /// traffic at MTU granularity (packets from different QPs interleave on
  /// the wire — no whole-message head-of-line blocking). Completes when
  /// the last packet has been serialized; propagation is NOT included.
  sim::Task<void> wire_transfer(Nic& tx, Nic& rx, uint64_t bytes);

  sim::Simulator& sim_;
  CostModel cost_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace hatrpc::verbs
