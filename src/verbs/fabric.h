// The simulated InfiniBand fabric: owns the nodes, the cost model, and the
// data-path state machines for every verbs opcode. One Fabric == one
// cluster (the paper's testbed is 10 nodes on one EDR switch).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/obs.h"
#include "sim/arena.h"
#include "sim/simulator.h"
#include "verbs/check.h"
#include "verbs/cost_model.h"
#include "verbs/fault.h"
#include "verbs/node.h"

namespace hatrpc::verbs {

class Fabric {
 public:
  Fabric(sim::Simulator& sim, CostModel cost)
      : sim_(sim), cost_(cost), check_(*this) {
    // Mirror race/lifetime diagnostics into the fabric-wide node-0 scope
    // (the kRaceReports counter); the checker itself lives on the sim.
    sim_.racecheck().bind_mirror(
        &obs_.counters.node(0).slot(obs::Ctr::kRaceReports));
  }
  explicit Fabric(sim::Simulator& sim) : Fabric(sim, CostModel{}) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Runs the end-of-simulation leak audit when checking is enabled
  /// (diagnostics are recorded, never thrown from a destructor).
  ~Fabric();

  Node* add_node(sim::Cpu::Params cpu_params) {
    nodes_.push_back(std::make_unique<Node>(
        *this, static_cast<uint32_t>(nodes_.size()), cpu_params, sim_, cost_,
        obs_, &check_));
    return nodes_.back().get();
  }
  Node* add_node() { return add_node(sim::Cpu::Params{}); }

  /// Establishes a reliable connection between two queue pairs: the
  /// simulation analogue of the RDMA-CM exchange-and-modify-QP dance,
  /// walking both QPs RESET -> INIT -> RTR -> RTS.
  static void connect(QueuePair& a, QueuePair& b);

  /// The fabric's contract checker (VERBSCHECK=record|abort to enable).
  VerbsCheck& check() { return check_; }
  const VerbsCheck& check() const { return check_; }

  /// Resource audit over every node: live verbs objects, never-completed
  /// WRs, unconsumed recvs/CQEs. With checking enabled, an un-clean() audit
  /// records a kLeak diagnostic. Also run by ~Fabric. Tests assert
  /// fabric.audit().clean() for leak-free teardown.
  AuditReport audit();

  sim::Simulator& simulator() { return sim_; }
  const CostModel& cost() const { return cost_; }

  /// The fabric's observability domain: per-node/per-channel counters and
  /// the virtual-time tracer every layer above charges into.
  obs::Obs& obs() { return obs_; }
  const obs::Obs& obs() const { return obs_; }
  Node* node(size_t i) { return nodes_.at(i).get(); }
  size_t node_count() const { return nodes_.size(); }

  /// Recycled byte buffers for the NIC's payload snapshots (inline WQEs,
  /// READ responses): one steady-state allocation instead of one per op.
  sim::BufArena& buf_arena() { return buf_arena_; }

  /// Attaches a fault plan: stochastic wire faults apply to every WQE from
  /// now on, and each scheduled fault is armed as a timer task. Pass
  /// nullptr to restore fault-free operation.
  void set_fault_plan(std::unique_ptr<FaultPlan> plan);
  FaultPlan* fault_plan() { return fault_plan_.get(); }

  QueuePair* find_qp(uint32_t qp_num);

 private:
  friend class QueuePair;
  friend class Node;

  /// NIC-side execution of one WQE (spawned, runs in virtual time). The
  /// outer function wraps the state machine in a post->completion trace
  /// span when the tracer is enabled.
  sim::Task<void> execute_wqe(QueuePair& src, SendWr wr);
  sim::Task<void> execute_wqe_inner(QueuePair& src, SendWr wr);
  sim::Task<void> execute_chain(QueuePair& src, std::vector<SendWr> wrs);

  /// Moves `bytes` from tx to rx at line rate, multiplexed with other
  /// traffic at MTU granularity (packets from different QPs interleave on
  /// the wire — no whole-message head-of-line blocking). Completes when
  /// the last packet has been serialized; propagation is NOT included.
  sim::Task<void> wire_transfer(Nic& tx, Nic& rx, uint64_t bytes);

  /// Timer task arming one scheduled fault from the attached plan.
  sim::Task<void> apply_fault(FaultPlan::Scheduled f);

  /// Draws and waits out the plan's stochastic queueing delay for one WQE.
  /// Must be awaited under the QP's sq_order_ mutex so the delay stalls the
  /// whole send queue (RC ordering).
  sim::Task<void> injected_delay(QueuePair& src, const SendWr& wr);

  /// Delivers an error CQE for `wr` (error completions are generated even
  /// for unsignaled WRs) and moves the requester QP to the error state.
  void fail_wqe(QueuePair& src, const SendWr& wr, WcStatus status);

  sim::Simulator& sim_;
  CostModel cost_;
  obs::Obs obs_;  // before nodes_: Node constructors register into it
  VerbsCheck check_;  // before nodes_: Node constructors capture a pointer
  std::vector<std::unique_ptr<Node>> nodes_;
  sim::BufArena buf_arena_;
  std::unique_ptr<FaultPlan> fault_plan_;
  uint32_t next_qpn_ = 1;
};

}  // namespace hatrpc::verbs
