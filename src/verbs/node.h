// A simulated cluster node: CPU complex, one RNIC, and a protection domain.
// Mirrors the paper's testbed machines (28-core Skylake, one ConnectX-5).
#pragma once

#include <memory>
#include <vector>

#include "obs/obs.h"
#include "sim/cpu.h"
#include "verbs/completion.h"
#include "verbs/memory.h"
#include "verbs/nic.h"
#include "verbs/qp.h"
#include "verbs/srq.h"

namespace hatrpc::verbs {

class Fabric;

class Node {
 public:
  Node(Fabric& fabric, uint32_t id, sim::Cpu::Params cpu_params,
       sim::Simulator& sim, const CostModel& cost, obs::Obs& obs)
      : fabric_(fabric), id_(id), cpu_(sim, cpu_params), pd_(id), cost_(cost),
        sim_(sim), obs_(obs), ctrs_(&obs.counters.node(id)) {
    pd_.set_counters(ctrs_);
  }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  uint32_t id() const { return id_; }
  Fabric& fabric() { return fabric_; }
  sim::Cpu& cpu() { return cpu_; }
  Nic& nic() { return nic_; }
  ProtectionDomain& pd() { return pd_; }
  obs::Obs& obs() { return obs_; }
  obs::CounterSet& counters() { return *ctrs_; }

  CompletionQueue* create_cq() {
    cqs_.push_back(
        std::make_unique<CompletionQueue>(sim_, cpu_, cost_, ctrs_));
    return cqs_.back().get();
  }

  QueuePair* create_qp(CompletionQueue& send_cq, CompletionQueue& recv_cq);

  /// One shared posted-recv pool, drainable by any QP on this node that is
  /// attached to it with QueuePair::set_srq.
  SharedReceiveQueue* create_srq() {
    srqs_.push_back(std::make_unique<SharedReceiveQueue>(sim_, ctrs_));
    return srqs_.back().get();
  }

  /// Fault injection: fail-stop. Every QP on this node enters the error
  /// state (as does its peer, once the transport discovers the silence),
  /// and all of the node's CQs close so pollers unblock with flush errors.
  void crash();
  bool crashed() const { return crashed_; }

 private:
  Fabric& fabric_;
  uint32_t id_;
  sim::Cpu cpu_;
  Nic nic_;
  ProtectionDomain pd_;
  const CostModel& cost_;
  sim::Simulator& sim_;
  obs::Obs& obs_;
  obs::CounterSet* ctrs_;
  std::vector<std::unique_ptr<CompletionQueue>> cqs_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
  std::vector<std::unique_ptr<SharedReceiveQueue>> srqs_;
  bool crashed_ = false;

  friend class Fabric;
};

}  // namespace hatrpc::verbs
