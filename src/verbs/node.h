// A simulated cluster node: CPU complex, one RNIC, and a protection domain.
// Mirrors the paper's testbed machines (28-core Skylake, one ConnectX-5).
#pragma once

#include <memory>
#include <vector>

#include "obs/obs.h"
#include "sim/cpu.h"
#include "verbs/completion.h"
#include "verbs/memory.h"
#include "verbs/nic.h"
#include "verbs/qp.h"
#include "verbs/srq.h"

namespace hatrpc::verbs {

class Fabric;

class Node {
 public:
  Node(Fabric& fabric, uint32_t id, sim::Cpu::Params cpu_params,
       sim::Simulator& sim, const CostModel& cost, obs::Obs& obs,
       VerbsCheck* check = nullptr)
      : fabric_(fabric), id_(id), cpu_(sim, cpu_params), pd_(id), cost_(cost),
        sim_(sim), obs_(obs), ctrs_(&obs.counters.node(id)), check_(check) {
    pd_.set_counters(ctrs_);
    pd_.set_check(check_);
  }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  uint32_t id() const { return id_; }
  Fabric& fabric() { return fabric_; }
  sim::Cpu& cpu() { return cpu_; }
  Nic& nic() { return nic_; }
  ProtectionDomain& pd() { return pd_; }
  obs::Obs& obs() { return obs_; }
  obs::CounterSet& counters() { return *ctrs_; }

  /// `cqe` is the requested CQE capacity (ibv_create_cq's cqe argument);
  /// 0 picks the cost model's default depth.
  CompletionQueue* create_cq(uint32_t cqe = 0) {
    cqs_.push_back(std::make_unique<CompletionQueue>(sim_, cpu_, cost_, ctrs_,
                                                     check_, cqe, id_));
    return cqs_.back().get();
  }

  QueuePair* create_qp(CompletionQueue& send_cq, CompletionQueue& recv_cq);

  /// ibv_destroy_qp analogue: flushes the QP into the error state and moves
  /// it to the node's graveyard. The object stays alive so stale pointers
  /// are caught by VerbsCheck (use-after-destroy) instead of being UB;
  /// Fabric::find_qp no longer returns it. Defined in fabric.cc.
  void destroy_qp(QueuePair* qp);

  /// One shared posted-recv pool, drainable by any QP on this node that is
  /// attached to it with QueuePair::set_srq. `max_wr` caps the pool depth
  /// for contract checking (0 = the cost model's default).
  SharedReceiveQueue* create_srq(uint32_t max_wr = 0) {
    srqs_.push_back(std::make_unique<SharedReceiveQueue>(
        sim_, ctrs_, check_, id_, max_wr == 0 ? cost_.max_srq_wr : max_wr));
    return srqs_.back().get();
  }

  /// Fault injection: fail-stop. Every QP on this node enters the error
  /// state (as does its peer, once the transport discovers the silence),
  /// and all of the node's CQs close so pollers unblock with flush errors.
  void crash();
  bool crashed() const { return crashed_; }

  /// Fail-stop recovery: the node comes back up and can host fresh
  /// QPs/CQs/SRQs/MRs again. Nothing that existed at crash time is
  /// resurrected — old QPs stay in the error state and old CQs stay
  /// closed, so recovering software must rebuild its endpoints (and
  /// clients must reconnect), exactly like a rebooted machine.
  void restart();

 private:
  Fabric& fabric_;
  uint32_t id_;
  sim::Cpu cpu_;
  Nic nic_;
  ProtectionDomain pd_;
  const CostModel& cost_;
  sim::Simulator& sim_;
  obs::Obs& obs_;
  obs::CounterSet* ctrs_;
  VerbsCheck* check_;
  std::vector<std::unique_ptr<CompletionQueue>> cqs_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
  std::vector<std::unique_ptr<QueuePair>> dead_qps_;  // destroy_qp graveyard
  std::vector<std::unique_ptr<SharedReceiveQueue>> srqs_;
  bool crashed_ = false;

  friend class Fabric;
};

}  // namespace hatrpc::verbs
