// Shared receive queue (ibv_srq): one posted-recv pool drained by many
// QPs, so a server's receive-buffer footprint scales with offered load
// instead of connection count (the Storm observation). A QP attached to an
// SRQ consumes recvs from the shared pool instead of its private queue;
// incoming messages pace on the RNR timer while the pool is empty, exactly
// like hardware RNR NAK flow control.
#pragma once

#include <cstddef>
#include <optional>

#include "obs/counters.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "verbs/qp.h"

namespace hatrpc::verbs {

class VerbsCheck;

class SharedReceiveQueue {
 public:
  SharedReceiveQueue(sim::Simulator& sim, obs::CounterSet* node_ctrs,
                     VerbsCheck* check = nullptr, uint32_t node_id = 0,
                     uint32_t max_wr = 0)
      : queue_(sim), node_ctrs_(node_ctrs), check_(check), node_id_(node_id),
        max_wr_(max_wr) {}

  SharedReceiveQueue(const SharedReceiveQueue&) = delete;
  SharedReceiveQueue& operator=(const SharedReceiveQueue&) = delete;

  /// Posts a recv WR into the shared pool. Posting is free (off the
  /// critical path, like QueuePair::post_recv) but counted so tests can
  /// see replenishment happening. Posts after close are dropped (and
  /// flagged by VerbsCheck as use-after-destroy — a real ibv_post_srq_recv
  /// on a destroyed SRQ is a crash). Defined in fabric.cc.
  void post_recv(RecvWr wr, obs::CounterSet* chan_ctrs = nullptr);

  /// Fabric-side, non-blocking: takes the next pooled recv if any. The
  /// fabric paces retries on the RNR timer itself (a blocking pop cannot
  /// watch the destination QP's error state, which is per-QP, not per-SRQ).
  std::optional<RecvWr> try_take() { return queue_.try_pop(); }

  size_t posted() const { return queue_.size(); }
  uint32_t node_id() const { return node_id_; }
  uint32_t max_wr() const { return max_wr_; }

  /// Shuts the pool down: pooled recvs are discarded and senders blocked on
  /// an empty pool fail over to their unreachable path. QP-level errors do
  /// NOT close the SRQ — other QPs keep draining it. Defined in fabric.cc.
  void close();
  bool is_closed() const { return closed_; }

 private:
  sim::Channel<RecvWr> queue_;
  obs::CounterSet* node_ctrs_;
  VerbsCheck* check_;
  uint32_t node_id_;
  uint32_t max_wr_;
  bool closed_ = false;
};

}  // namespace hatrpc::verbs
