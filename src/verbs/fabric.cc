#include "verbs/fabric.h"

#include <cstring>
#include <stdexcept>

namespace hatrpc::verbs {

using sim::Task;
using sim::Time;

QueuePair::QueuePair(Fabric& fabric, Node& node, CompletionQueue& send_cq,
                     CompletionQueue& recv_cq, uint32_t qp_num)
    : fabric_(fabric), node_(node), send_cq_(send_cq), recv_cq_(recv_cq),
      qp_num_(qp_num), recv_queue_(fabric.simulator()),
      sq_order_(fabric.simulator()) {}

QueuePair* Node::create_qp(CompletionQueue& send_cq,
                           CompletionQueue& recv_cq) {
  static uint32_t next_qpn = 1;
  qps_.push_back(std::make_unique<QueuePair>(fabric_, *this, send_cq, recv_cq,
                                             next_qpn++));
  return qps_.back().get();
}

void Fabric::connect(QueuePair& a, QueuePair& b) {
  if (a.peer_ || b.peer_) throw std::logic_error("QP already connected");
  a.peer_ = &b;
  b.peer_ = &a;
}

Task<RecvWr> QueuePair::take_recv() {
  auto wr = co_await recv_queue_.pop();
  if (!wr) throw std::runtime_error("recv queue closed");
  co_return *wr;
}

Task<void> QueuePair::post_send(SendWr wr) {
  if (!peer_) throw std::logic_error("QP not connected");
  const CostModel& cm = fabric_.cost();
  sim::Duration sw = cm.post_wqe_cpu + cm.mmio_doorbell;
  if (!numa_local) sw += cm.numa_remote_penalty;
  co_await node_.cpu().compute(sw);
  fabric_.simulator().spawn(fabric_.execute_wqe(*this, wr));
}

Task<void> QueuePair::post_send_chain(std::vector<SendWr> wrs) {
  if (!peer_) throw std::logic_error("QP not connected");
  const CostModel& cm = fabric_.cost();
  // One WR build per element but a single doorbell MMIO for the chain.
  sim::Duration sw = cm.post_wqe_cpu * static_cast<int64_t>(wrs.size()) +
                     cm.mmio_doorbell;
  if (!numa_local) sw += cm.numa_remote_penalty;
  co_await node_.cpu().compute(sw);
  fabric_.simulator().spawn(fabric_.execute_chain(*this, std::move(wrs)));
}

Task<void> Fabric::wire_transfer(Nic& tx, Nic& rx, uint64_t bytes) {
  constexpr uint64_t kMtu = 4096;
  uint64_t off = 0;
  do {
    uint64_t take = std::min(kMtu, bytes - off);
    sim::Duration ser =
        sim::transfer_time(take + cost_.header_bytes, cost_.link_gbps);
    Time start = std::max({sim_.now(), tx.tx_free(), rx.rx_free()});
    tx.reserve_tx(start + ser, take);
    rx.reserve_rx(start + ser, take);
    co_await sim_.sleep_until(start + ser);
    off += take;
  } while (off < bytes);
}

Task<void> Fabric::execute_chain(QueuePair& src, std::vector<SendWr> wrs) {
  // The NIC pipelines chained WQEs: it starts WQE n+1 one processing slot
  // after initiating WQE n (it does NOT wait for n's ack). Wire ordering is
  // preserved by the FIFO tx-link reservations.
  for (auto& wr : wrs) {
    sim_.spawn(execute_wqe(src, wr));
    co_await sim_.sleep(cost_.nic_wqe);
  }
}

Task<void> Fabric::execute_wqe(QueuePair& src, SendWr wr) {
  Node& s = src.node();
  QueuePair* dst_qp = src.peer();
  Node& d = dst_qp->node();
  const CostModel& cm = cost_;
  const uint64_t bytes = wr.local.length;

  // WQE fetch + NIC processing at the initiator.
  co_await sim_.sleep(cm.nic_wqe);

  switch (wr.opcode) {
    case Opcode::kSend:
    case Opcode::kWrite:
    case Opcode::kWriteImm: {
      {
        // RC in-order execution: WQE n+1's packets follow WQE n's on the
        // wire (packets of different QPs still interleave). The lock spans
        // only wire occupancy — flight time pipelines across WQEs.
        auto order_guard = co_await src.sq_order_.scoped();
        co_await wire_transfer(s.nic(), d.nic(), bytes == 0 ? 1 : bytes);
      }
      co_await sim_.sleep(cm.propagation);
      {
        if (wr.opcode == Opcode::kWrite || wr.opcode == Opcode::kWriteImm) {
          // One-sided placement into the registered remote region.
          MemoryRegion* mr = d.pd().check(wr.remote, bytes);
          if (bytes > 0)
            std::memcpy(reinterpret_cast<std::byte*>(wr.remote.addr),
                        wr.local.addr, bytes);
          mr->notify_remote_write(wr.remote.addr, bytes);
        }
        if (wr.opcode == Opcode::kSend || wr.opcode == Opcode::kWriteImm) {
          // Two-sided: consume a posted receive at the target. Waiting here
          // models RNR backpressure (which stalls this QP's later WQEs too,
          // hence inside the ordering scope).
          RecvWr rwr = co_await dst_qp->take_recv();
          if (wr.opcode == Opcode::kSend) {
            if (rwr.buf.length < bytes)
              throw std::runtime_error("recv buffer too small for SEND");
            if (bytes > 0) std::memcpy(rwr.buf.addr, wr.local.addr, bytes);
          }
          co_await sim_.sleep(cm.nic_cqe);
          dst_qp->recv_cq().deliver(Wc{
              .wr_id = rwr.wr_id,
              .opcode = wr.opcode == Opcode::kSend ? WcOpcode::kRecv
                                                   : WcOpcode::kRecvImm,
              .byte_len = static_cast<uint32_t>(bytes),
              .imm = wr.imm,
              .success = true,
              .qp_num = dst_qp->qp_num()});
        }
      }
      if (wr.signaled) {
        // Hardware ACK back to the requester, then CQE DMA.
        co_await sim_.sleep(cm.ack_delay + cm.nic_cqe);
        src.send_cq().deliver(Wc{
            .wr_id = wr.wr_id,
            .opcode = wr.opcode == Opcode::kSend ? WcOpcode::kSend
                                                 : WcOpcode::kRdmaWrite,
            .byte_len = static_cast<uint32_t>(bytes),
            .imm = 0,
            .success = true,
            .qp_num = src.qp_num()});
      }
      break;
    }

    case Opcode::kRead: {
      {
        auto order_guard = co_await src.sq_order_.scoped();
        // Request packet to the responder (header-only on the wire).
        sim::Duration req_ser = cm.wire_time(0);
        Time start = std::max(sim_.now(), s.nic().tx_free());
        s.nic().reserve_tx(start + req_ser, 0);
        co_await sim_.sleep_until(start + req_ser);
      }
      co_await sim_.sleep(cm.propagation);

      // Responder NIC serves the read in hardware: a non-posted PCIe DMA
      // read fetches the data (this PCIe round trip is what makes READ
      // latency exceed WRITE latency on real NICs). The memory is
      // snapshotted when the DMA engine reads it — NOT when the response
      // reaches the requester — so racing CPU stores at the responder
      // behave like real hardware.
      co_await sim_.sleep(cm.nic_read_response);
      auto span = d.pd().resolve(wr.remote, bytes);
      std::vector<std::byte> snapshot(span.begin(), span.end());
      co_await wire_transfer(d.nic(), s.nic(), bytes == 0 ? 1 : bytes);
      co_await sim_.sleep(cm.propagation);
      if (bytes > 0) std::memcpy(wr.local.addr, snapshot.data(), bytes);
      if (wr.signaled) {
        co_await sim_.sleep(cm.nic_cqe);
        src.send_cq().deliver(Wc{
            .wr_id = wr.wr_id,
            .opcode = WcOpcode::kRdmaRead,
            .byte_len = static_cast<uint32_t>(bytes),
            .imm = 0,
            .success = true,
            .qp_num = src.qp_num()});
      }
      break;
    }
  }
}

}  // namespace hatrpc::verbs
