#include "verbs/fabric.h"

#include <cstring>
#include <stdexcept>
#include <string>

#include "verbs/srq.h"

namespace hatrpc::verbs {

using sim::Task;
using sim::Time;

namespace {

std::string wqe_tag(const QueuePair& qp, const SendWr& wr) {
  return "qp=" + std::to_string(qp.qp_num()) +
         " wr=" + std::to_string(wr.wr_id);
}

WcOpcode send_side_opcode(Opcode op) {
  switch (op) {
    case Opcode::kSend: return WcOpcode::kSend;
    case Opcode::kRead: return WcOpcode::kRdmaRead;
    case Opcode::kWrite:
    case Opcode::kWriteImm: return WcOpcode::kRdmaWrite;
  }
  return WcOpcode::kSend;
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kSend: return "send";
    case Opcode::kWrite: return "write";
    case Opcode::kWriteImm: return "write_imm";
    case Opcode::kRead: return "read";
  }
  return "unknown";
}

/// Charges a counter to the requester's node scope and, when the QP is
/// bound to a channel, to the channel scope as well.
void count_qp(QueuePair& qp, obs::Ctr c, uint64_t v = 1) {
  qp.node().counters().add(c, v);
  if (obs::CounterSet* chan = qp.channel_counters()) chan->add(c, v);
}

/// Copies a WR's (possibly multi-SGE) payload contiguously into `dst` —
/// what the NIC's DMA gather does on the wire side.
void gather_payload(const SendWr& wr, std::byte* dst) {
  if (wr.sg_list.empty()) {
    if (wr.local.length > 0) std::memcpy(dst, wr.local.addr, wr.local.length);
    return;
  }
  for (const Sge& s : wr.sg_list) {
    if (s.length > 0) std::memcpy(dst, s.addr, s.length);
    dst += s.length;
  }
}

/// Scatters `n` fetched bytes back across a READ WR's segments.
void scatter_payload(const SendWr& wr, const std::byte* src, uint64_t n) {
  if (wr.sg_list.empty()) {
    if (n > 0) std::memcpy(wr.local.addr, src, n);
    return;
  }
  for (const Sge& s : wr.sg_list) {
    uint64_t take = std::min<uint64_t>(s.length, n);
    if (take > 0) std::memcpy(s.addr, src, take);
    src += take;
    n -= take;
    if (n == 0) break;
  }
}

}  // namespace

QueuePair::QueuePair(Fabric& fabric, Node& node, CompletionQueue& send_cq,
                     CompletionQueue& recv_cq, uint32_t qp_num)
    : fabric_(fabric), node_(node), send_cq_(send_cq), recv_cq_(recv_cq),
      qp_num_(qp_num), recv_queue_(fabric.simulator()),
      db_flushed_(fabric.simulator()), sq_order_(fabric.simulator()) {}

QueuePair* Node::create_qp(CompletionQueue& send_cq,
                           CompletionQueue& recv_cq) {
  // QP numbers are per-fabric (not process-global) so traces that mention
  // them are byte-identical across repeated runs in one process.
  qps_.push_back(std::make_unique<QueuePair>(fabric_, *this, send_cq, recv_cq,
                                             fabric_.next_qpn_++));
  QueuePair* qp = qps_.back().get();
  if (crashed_) qp->enter_error();
  return qp;
}

void Node::crash() {
  if (crashed_) return;
  crashed_ = true;
  // Local QPs die instantly; peers discover the silence through the
  // transport retry machinery (see the unreachable-peer path in
  // Fabric::execute_wqe), not by magic.
  for (auto& qp : qps_) qp->enter_error();
  for (auto& cq : cqs_) cq->close();
  for (auto& srq : srqs_) srq->close();
}

void Node::restart() {
  if (!crashed_) return;
  crashed_ = false;
  // The crash already errored every QP and closed every CQ/SRQ; they stay
  // that way. create_qp/create_cq issued after this point build live
  // objects again (create_qp stops force-erroring once crashed_ clears).
}

void QueuePair::enter_error() {
  if (state_ == QpState::kError) return;
  state_ = QpState::kError;
  // Flush every posted receive back to the recv CQ, as an RC QP
  // transitioning to the error state does.
  while (auto wr = recv_queue_.try_pop()) {
    recv_cq_.deliver(Wc{.wr_id = wr->wr_id,
                        .opcode = WcOpcode::kRecv,
                        .byte_len = 0,
                        .imm = 0,
                        .status = WcStatus::kWrFlushErr,
                        .qp_num = qp_num_});
  }
  recv_queue_.close();  // releases RNR waiters: take_recv() returns nullopt
}

void QueuePair::post_recv(RecvWr wr) {
  {
    VerbsCheck& vc = fabric_.check();
    if (vc.on()) vc.on_post_recv(*this, wr);
  }
  if (state_ == QpState::kError) {
    recv_cq_.deliver(Wc{.wr_id = wr.wr_id,
                        .opcode = WcOpcode::kRecv,
                        .byte_len = 0,
                        .imm = 0,
                        .status = WcStatus::kWrFlushErr,
                        .qp_num = qp_num_});
    return;
  }
  recv_queue_.push(wr);
}

void Fabric::connect(QueuePair& a, QueuePair& b) {
  if (a.peer_ || b.peer_) throw std::logic_error("QP already connected");
  a.peer_ = &b;
  b.peer_ = &a;
  // The modify-QP dance: both QPs walk RESET -> INIT -> RTR -> RTS, exactly
  // like the RDMA-CM exchange. Crashed/errored QPs stay where they are (the
  // transport will discover the silence; connect cannot resurrect them).
  for (QueuePair* q : {&a, &b}) {
    if (q->in_error()) continue;
    q->modify(QpState::kInit);
    q->modify(QpState::kRtr);
    q->modify(QpState::kRts);
  }
}

void QueuePair::modify(QpState next) {
  VerbsCheck& vc = fabric_.check();
  if (vc.on()) vc.on_modify(*this, state_, next);
  if (next == QpState::kError) {
    enter_error();
    return;
  }
  state_ = next;
}

void Node::destroy_qp(QueuePair* qp) {
  if (!qp) return;
  if (check_ && check_->on()) check_->on_destroy_qp(*qp);
  if (qp->destroyed_) return;
  // ibv_destroy_qp semantics: outstanding WRs flush (enter_error delivers
  // the recv flushes), then the object moves to the graveyard so stale
  // pointers hit the use-after-destroy rule instead of freed memory.
  qp->enter_error();
  qp->destroyed_ = true;
  for (auto it = qps_.begin(); it != qps_.end(); ++it) {
    if (it->get() == qp) {
      dead_qps_.push_back(std::move(*it));
      qps_.erase(it);
      break;
    }
  }
}

void CompletionQueue::deliver(Wc wc) {
  cqes_.push_back(wc);
  rc_tok_.push_back(sim_.rc_capture());  // kNoClock when the checker is off
  ++delivered_;
  if (check_) check_->on_cqe(wc, cqes_.size(), capacity_, node_id_);
  avail_.notify_all();
}

void SharedReceiveQueue::post_recv(RecvWr wr, obs::CounterSet* chan_ctrs) {
  if (check_) check_->on_srq_post(*this, node_id_, wr);
  if (closed_) return;
  queue_.push(wr);
  if (node_ctrs_) node_ctrs_->add(obs::Ctr::kSrqPosts);
  if (chan_ctrs) chan_ctrs->add(obs::Ctr::kSrqPosts);
}

void SharedReceiveQueue::close() {
  if (closed_) return;
  closed_ = true;
  queue_.close();
  if (check_) check_->on_srq_close(*this);
}

void ProtectionDomain::dereg_mr(MemoryRegion* mr) {
  if (check_) check_->on_dereg_mr(node_id_, *mr);
  if (cache_) cache_->invalidate(mr);
  dereg_mr_raw(mr);
}

AuditReport Fabric::audit() {
  AuditReport r;
  for (auto& n : nodes_) {
    r.live_qps += n->qps_.size();
    r.destroyed_qps += n->dead_qps_.size();
    r.live_cqs += n->cqs_.size();
    r.live_srqs += n->srqs_.size();
    r.live_mrs += n->pd().mr_count();
    r.external_mrs += n->pd().external_mr_count();
    r.registered_bytes += n->pd().registered_bytes();
    for (auto& cq : n->cqs_) r.unconsumed_cqes += cq->depth();
    for (auto& qp : n->qps_) r.pending_recvs += qp->posted_recvs();
    for (auto& srq : n->srqs_) r.pending_recvs += srq->posted();
  }
  // Only meaningful with checking enabled (the shadow accounting is the
  // source of truth for "posted but never completed"); 0 when off.
  r.outstanding_sends = check_.outstanding_sends();
  r.violations = check_.total();
  if (check_.on() && !r.clean()) check_.report_leak(r, "audit");
  return r;
}

Fabric::~Fabric() {
  if (!check_.on()) return;
  audit();  // report_leak never throws, so this is destructor-safe
}

void Fabric::set_fault_plan(std::unique_ptr<FaultPlan> plan) {
  fault_plan_ = std::move(plan);
  if (!fault_plan_) return;
  for (const auto& f : fault_plan_->scheduled()) sim_.spawn(apply_fault(f));
}

QueuePair* Fabric::find_qp(uint32_t qp_num) {
  for (auto& n : nodes_)
    for (auto& qp : n->qps_)
      if (qp->qp_num() == qp_num) return qp.get();
  return nullptr;
}

Task<void> Fabric::injected_delay(QueuePair& src, const SendWr& wr) {
  FaultPlan* fp = fault_plan_.get();
  if (!fp) co_return;
  sim::Duration extra = fp->draw_delay();
  if (extra.count() > 0) {
    fp->note(sim_.now(), "delay " + wqe_tag(src, wr) + " ns=" +
                             std::to_string(extra.count()));
    co_await sim_.sleep(extra);
  }
}

Task<void> Fabric::apply_fault(FaultPlan::Scheduled f) {
  co_await sim_.sleep_until(f.at);
  FaultPlan* fp = fault_plan_.get();
  if (!fp) co_return;
  switch (f.kind) {
    case FaultPlan::Scheduled::Kind::kQpError:
      if (QueuePair* qp = find_qp(f.id)) {
        fp->note(sim_.now(), "qp-error qp=" + std::to_string(f.id));
        qp->enter_error();
      }
      break;
    case FaultPlan::Scheduled::Kind::kNodeCrash:
      if (f.id < nodes_.size() && !nodes_[f.id]->crashed()) {
        fp->note(sim_.now(), "node-crash node=" + std::to_string(f.id));
        nodes_[f.id]->crash();
      }
      break;
    case FaultPlan::Scheduled::Kind::kRevokeMrs:
      if (f.id < nodes_.size()) {
        fp->note(sim_.now(), "revoke-mrs node=" + std::to_string(f.id));
        nodes_[f.id]->pd().revoke_all();
      }
      break;
    case FaultPlan::Scheduled::Kind::kNodeRestart:
      if (f.id < nodes_.size() && nodes_[f.id]->crashed()) {
        fp->note(sim_.now(), "node-restart node=" + std::to_string(f.id));
        nodes_[f.id]->restart();
      }
      break;
  }
}

void QueuePair::count_post(uint64_t wqes) {
  obs::CounterSet& n = node_.counters();
  n.add(obs::Ctr::kDoorbells);
  n.add(obs::Ctr::kWqesPosted, wqes);
  // Every WQE past the first rode this doorbell instead of ringing its own
  // (a chained post or a coalesced batch — same MMIO arithmetic).
  if (wqes > 1) n.add(obs::Ctr::kDoorbellCoalescedWqes, wqes - 1);
  if (chan_ctrs_) {
    chan_ctrs_->add(obs::Ctr::kDoorbells);
    chan_ctrs_->add(obs::Ctr::kWqesPosted, wqes);
    if (wqes > 1)
      chan_ctrs_->add(obs::Ctr::kDoorbellCoalescedWqes, wqes - 1);
  }
}

void Fabric::fail_wqe(QueuePair& src, const SendWr& wr, WcStatus status) {
  count_qp(src, obs::Ctr::kWqeErrors);
  if (obs_.tracer.enabled())
    obs_.tracer.instant(std::string("wqe-error/") + to_string(status),
                        "verbs", sim_.now(), src.node().id(), src.qp_num());
  // Error completions are generated even for unsignaled WRs, and the QP
  // moves to the error state so everything behind this WQE flushes.
  src.send_cq().deliver(Wc{.wr_id = wr.wr_id,
                           .opcode = send_side_opcode(wr.opcode),
                           .byte_len = 0,
                           .imm = 0,
                           .status = status,
                           .qp_num = src.qp_num()});
  src.enter_error();
}

Task<std::optional<RecvWr>> QueuePair::take_recv() {
  co_return co_await recv_queue_.pop();
}

uint32_t QueuePair::max_inline_data() const {
  return fabric_.cost().max_inline_data;
}

sim::Duration QueuePair::prepare_send(SendWr& wr) {
  const CostModel& cm = fabric_.cost();
  sim::Duration extra{};
  if (wr.inline_data) {
    if (wr.opcode == Opcode::kRead)
      throw std::logic_error("IBV_SEND_INLINE is invalid for RDMA READ");
    const uint64_t bytes = wr.total_bytes();
    if (bytes > cm.max_inline_data)
      throw std::length_error(
          "inline payload of " + std::to_string(bytes) +
          "B exceeds max_inline_data=" + std::to_string(cm.max_inline_data));
    // Snapshot the payload into the WQE: from here on the WQE carries the
    // bytes and the application buffers are free for reuse (inline's
    // buffer-release semantics — no slot cross-talk under pipelining).
    // The bytes come from the fabric's recycled snapshot pool.
    auto snap = fabric_.buf_arena().shared_lease(bytes);
    gather_payload(wr, snap->data());
    wr.sg_list.clear();
    wr.local = Sge{snap->data(), static_cast<uint32_t>(bytes)};
    wr.keep_alive = std::move(snap);
    extra += cm.inline_write_time(bytes);
    count_qp(*this, obs::Ctr::kInlineWqes);
  } else if (wr.sg_list.size() > 1) {
    extra += cm.post_sge_cpu * static_cast<int64_t>(wr.sg_list.size() - 1);
    count_qp(*this, obs::Ctr::kGatherSges, wr.sg_list.size());
  }
  return extra;
}

// Not a coroutine (see the send_doorbell declaration for why): everything up
// to the enqueue runs synchronously in the caller, so the WR never crosses a
// coroutine-frame boundary and rejections throw straight out of the call.
Task<void> QueuePair::post_send(SendWr wr) {
  if (!peer_) throw std::logic_error("QP not connected");
  {
    // Contract checks run against the WR as the application posted it,
    // before prepare_send snapshots inline payloads away.
    VerbsCheck& vc = fabric_.check();
    if (vc.on()) vc.on_post_send(*this, wr, "post_send");
  }
  const CostModel& cm = fabric_.cost();
  // Inline stores / extra gather elements add to the WR build time; a plain
  // single-SGE post charges exactly the pre-zero-copy cost.
  const sim::Duration build = cm.post_wqe_cpu + prepare_send(wr);
  sq_pending_.push_back(std::move(wr));
  return send_doorbell(build);
}

Task<void> QueuePair::send_doorbell(sim::Duration build) {
  const CostModel& cm = fabric_.cost();
  if (db_flushing_) {
    // Another poster's doorbell MMIO on this QP is still in flight: its
    // tail write sweeps every WQE in the queue, including ours. Charge the
    // WR build (overlapped with that MMIO) and wait for the sweep.
    uint64_t target = db_flush_seq_ + 1;
    co_await node_.cpu().compute(build);
    while (db_flush_seq_ < target) co_await db_flushed_.wait();
    co_return;
  }
  db_flushing_ = true;
  // Build + doorbell MMIO in one charge — identical cost to an uncoalesced
  // post when nobody else shows up before the MMIO lands.
  sim::Duration sw = build + cm.mmio_doorbell;
  if (!numa_local) sw += cm.numa_remote_penalty;
  co_await node_.cpu().compute(sw);
  flush_sends();
}

void QueuePair::flush_sends() {
  std::vector<SendWr> batch;
  batch.swap(sq_pending_);
  count_post(batch.size());
  for (auto& w : batch)
    fabric_.simulator().spawn(fabric_.execute_wqe(*this, w));
  ++db_flush_seq_;
  db_flushing_ = false;
  db_flushed_.notify_all();
}

// Like post_send, a plain function: the prepared chain enters chain_doorbell
// as a move from a named lvalue, never as a prvalue coroutine argument.
Task<void> QueuePair::post_send_chain(std::vector<SendWr> wrs) {
  if (!peer_) throw std::logic_error("QP not connected");
  {
    VerbsCheck& vc = fabric_.check();
    if (vc.on())
      for (const SendWr& w : wrs) vc.on_post_send(*this, w, "post_send_chain");
  }
  const CostModel& cm = fabric_.cost();
  // One WR build per element but a single doorbell MMIO for the chain.
  sim::Duration sw = cm.mmio_doorbell;
  for (SendWr& w : wrs) sw += cm.post_wqe_cpu + prepare_send(w);
  if (!numa_local) sw += cm.numa_remote_penalty;
  return chain_doorbell(sw, std::move(wrs));
}

Task<void> QueuePair::chain_doorbell(sim::Duration sw, std::vector<SendWr> wrs) {
  co_await node_.cpu().compute(sw);
  count_post(wrs.size());
  fabric_.simulator().spawn(fabric_.execute_chain(*this, std::move(wrs)));
}

Task<void> Fabric::wire_transfer(Nic& tx, Nic& rx, uint64_t bytes) {
  constexpr uint64_t kMtu = 4096;
  uint64_t off = 0;
  do {
    uint64_t take = std::min(kMtu, bytes - off);
    sim::Duration ser =
        sim::transfer_time(take + cost_.header_bytes, cost_.link_gbps);
    Time start = std::max({sim_.now(), tx.tx_free(), rx.rx_free()});
    tx.reserve_tx(start + ser, take);
    rx.reserve_rx(start + ser, take);
    co_await sim_.sleep_until(start + ser);
    off += take;
  } while (off < bytes);
}

Task<void> Fabric::execute_chain(QueuePair& src, std::vector<SendWr> wrs) {
  // The NIC pipelines chained WQEs: it starts WQE n+1 one processing slot
  // after initiating WQE n (it does NOT wait for n's ack). Wire ordering is
  // preserved by the FIFO tx-link reservations.
  for (auto& wr : wrs) {
    sim_.spawn(execute_wqe(src, wr));
    co_await sim_.sleep(cost_.nic_wqe);
  }
}

Task<void> Fabric::execute_wqe(QueuePair& src, SendWr wr) {
  if (!obs_.tracer.enabled()) {
    co_await execute_wqe_inner(src, wr);
    co_return;
  }
  // WR post -> completion span: one per WQE, keyed to the requester.
  Time t0 = sim_.now();
  uint32_t pid = src.node().id();
  uint32_t qpn = src.qp_num();
  co_await execute_wqe_inner(src, wr);
  obs_.tracer.complete(std::string("wqe/") + opcode_name(wr.opcode), "verbs",
                       t0, sim_.now() - t0, pid, qpn);
}

Task<void> Fabric::execute_wqe_inner(QueuePair& src, SendWr wr) {
  Node& s = src.node();
  QueuePair* dst_qp = src.peer();
  Node& d = dst_qp->node();
  const CostModel& cm = cost_;
  const uint64_t bytes = wr.total_bytes();
  FaultPlan* fp = fault_plan_.get();
  const FaultProfile prof = fp ? fp->profile : FaultProfile{};

  // WQE fetch + NIC processing at the initiator. An inline WQE arrived
  // whole (descriptor + payload) in the doorbell's write-combined MMIO
  // burst, so the NIC skips the host-memory fetch entirely.
  co_await sim_.sleep(wr.inline_data ? cm.nic_inline_wqe : cm.nic_wqe);

  if (src.in_error()) {
    fail_wqe(src, wr, WcStatus::kWrFlushErr);
    co_return;
  }
  if (dst_qp->in_error() || d.crashed()) {
    // Peer QP is gone: the transport retransmits into silence until the
    // retry counter runs out, then reports it.
    co_await sim_.sleep(prof.unreachable_penalty());
    if (fp) fp->note(sim_.now(), "unreachable " + wqe_tag(src, wr));
    fail_wqe(src, wr, WcStatus::kRetryExcErr);
    co_return;
  }
  switch (wr.opcode) {
    case Opcode::kSend:
    case Opcode::kWrite:
    case Opcode::kWriteImm: {
      {
        // RC in-order execution: WQE n+1's packets follow WQE n's on the
        // wire (packets of different QPs still interleave). The lock spans
        // only wire occupancy — flight time pipelines across WQEs.
        auto order_guard = co_await src.sq_order_.scoped();
        // Injected queueing delay sits INSIDE the ordered section: it must
        // stall this QP's whole send queue, or a delayed WRITE could be
        // overtaken by its own notify SEND (an RC ordering violation).
        co_await injected_delay(src, wr);
        unsigned attempt = 0;
        while (true) {
          co_await wire_transfer(s.nic(), d.nic(), bytes == 0 ? 1 : bytes);
          if (!fp) break;
          FaultPlan::LossKind loss = fp->draw_loss();
          if (loss == FaultPlan::LossKind::kNone) {
            if (fp->draw_duplicate()) {
              // Duplicate delivery is PSN-deduped at the responder: it
              // costs wire occupancy but has no semantic effect.
              count_qp(src, obs::Ctr::kDuplicates);
              fp->note(sim_.now(), "dup " + wqe_tag(src, wr));
              co_await wire_transfer(s.nic(), d.nic(),
                                     bytes == 0 ? 1 : bytes);
            }
            break;
          }
          // Dropped on the wire (ack timeout) or corrupted in flight
          // (ICRC mismatch, receiver discards): either way the transport
          // waits out the retransmit timer and sends the payload again.
          count_qp(src, obs::Ctr::kRetransmits);
          fp->note(sim_.now(),
                   (loss == FaultPlan::LossKind::kDrop ? "drop " : "corrupt ") +
                       wqe_tag(src, wr) + " attempt=" +
                       std::to_string(attempt + 1));
          if (++attempt > prof.retry_count) {
            fp->note(sim_.now(), "retry-exhausted " + wqe_tag(src, wr));
            fail_wqe(src, wr, WcStatus::kRetryExcErr);
            co_return;
          }
          co_await sim_.sleep(prof.retransmit_timeout);
        }
        // Payload crossed the wire: DMA engines touched it at both ends —
        // except that an inline payload was never DMA-fetched at the source
        // (it rode the MMIO), so only the destination engine moved it.
        if (!wr.inline_data) {
          s.counters().add(obs::Ctr::kDmaBytes, bytes);
          if (obs::CounterSet* chan = src.channel_counters())
            chan->add(obs::Ctr::kDmaBytes, bytes);
        }
        d.counters().add(obs::Ctr::kDmaBytes, bytes);
      }
      co_await sim_.sleep(cm.propagation);
      // Re-check after time passed on the wire: a scheduled fault may have
      // fired mid-flight.
      if (src.in_error()) {
        fail_wqe(src, wr, WcStatus::kWrFlushErr);
        co_return;
      }
      if (dst_qp->in_error() || d.crashed()) {
        co_await sim_.sleep(prof.unreachable_penalty());
        if (fp) fp->note(sim_.now(), "unreachable " + wqe_tag(src, wr));
        fail_wqe(src, wr, WcStatus::kRetryExcErr);
        co_return;
      }
      {
        if (wr.opcode == Opcode::kWrite || wr.opcode == Opcode::kWriteImm) {
          // One-sided placement into the registered remote region.
          MemoryRegion* mr = nullptr;
          try {
            mr = d.pd().check(wr.remote, bytes, kAccessRemoteWrite);
          } catch (const std::exception&) {
            // Responder NAKs the access (bad rkey, out of bounds, or a
            // revoked registration); handled below — co_await is not
            // allowed inside a handler.
          }
          if (!mr) {
            if (fp)
              fp->note(sim_.now(), "remote-access-nak " + wqe_tag(src, wr));
            co_await sim_.sleep(cm.ack_delay + cm.nic_cqe);
            fail_wqe(src, wr, WcStatus::kRemAccessErr);
            co_return;
          }
          if (bytes > 0)
            gather_payload(wr, reinterpret_cast<std::byte*>(wr.remote.addr));
          mr->notify_remote_write(wr.remote.addr, bytes);
        }
        if (wr.opcode == Opcode::kSend || wr.opcode == Opcode::kWriteImm) {
          // Two-sided: consume a posted receive at the target. Waiting here
          // models RNR backpressure; with a finite rnr_retry budget the
          // probes are paced by rnr_timer and exhaustion surfaces as
          // kRnrRetryExcErr at the requester.
          std::optional<RecvWr> rwr;
          SharedReceiveQueue* srq = dst_qp->srq();
          if (fp && prof.rnr_retry != FaultProfile::kRnrInfinite) {
            rwr = srq ? srq->try_take() : dst_qp->try_take_recv();
            unsigned probes = 0;
            while (!rwr && !dst_qp->in_error() &&
                   !(srq && srq->is_closed()) && probes < prof.rnr_retry) {
              count_qp(src, obs::Ctr::kRnrEvents);
              co_await sim_.sleep(prof.rnr_timer);
              rwr = srq ? srq->try_take() : dst_qp->try_take_recv();
              ++probes;
            }
            if (!rwr && !dst_qp->in_error() &&
                !(srq && srq->is_closed())) {
              fp->note(sim_.now(), "rnr-exhausted " + wqe_tag(src, wr));
              fail_wqe(src, wr, WcStatus::kRnrRetryExcErr);
              co_return;
            }
          } else if (srq) {
            // Unbounded RNR over a shared pool: pace probes on the RNR
            // timer. (A blocking pop cannot watch this QP's error state —
            // the pool is shared, so one QP dying must not close it.)
            while (!(rwr = srq->try_take())) {
              if (dst_qp->in_error() || d.crashed() || srq->is_closed())
                break;
              count_qp(src, obs::Ctr::kRnrEvents);
              co_await sim_.sleep(prof.rnr_timer);
            }
          } else {
            // Unbounded RNR: count the stall only when we actually wait.
            if (dst_qp->posted_recvs() == 0 && !dst_qp->in_error())
              count_qp(src, obs::Ctr::kRnrEvents);
            rwr = co_await dst_qp->take_recv();
          }
          if (!rwr) {
            // Receiver QP errored out while we waited for a buffer.
            co_await sim_.sleep(prof.unreachable_penalty());
            if (fp) fp->note(sim_.now(), "unreachable " + wqe_tag(src, wr));
            fail_wqe(src, wr, WcStatus::kRetryExcErr);
            co_return;
          }
          if (wr.opcode == Opcode::kSend) {
            if (rwr->buf.length < bytes) {
              // Local length error at the responder: its recv completes in
              // error and its QP dies; the requester sees a remote-op NAK.
              co_await sim_.sleep(cm.nic_cqe);
              dst_qp->recv_cq().deliver(
                  Wc{.wr_id = rwr->wr_id,
                     .opcode = WcOpcode::kRecv,
                     .byte_len = static_cast<uint32_t>(bytes),
                     .imm = 0,
                     .status = WcStatus::kLocLenErr,
                     .qp_num = dst_qp->qp_num()});
              dst_qp->enter_error();
              co_await sim_.sleep(cm.ack_delay + cm.nic_cqe);
              fail_wqe(src, wr, WcStatus::kRemOpErr);
              co_return;
            }
            if (bytes > 0) gather_payload(wr, rwr->buf.addr);
          }
          co_await sim_.sleep(cm.nic_cqe);
          dst_qp->recv_cq().deliver(Wc{
              .wr_id = rwr->wr_id,
              .opcode = wr.opcode == Opcode::kSend ? WcOpcode::kRecv
                                                   : WcOpcode::kRecvImm,
              .byte_len = static_cast<uint32_t>(bytes),
              .imm = wr.imm,
              .status = WcStatus::kSuccess,
              .qp_num = dst_qp->qp_num()});
        }
      }
      if (wr.signaled) {
        // Hardware ACK back to the requester, then CQE DMA.
        co_await sim_.sleep(cm.ack_delay + cm.nic_cqe);
        src.send_cq().deliver(Wc{
            .wr_id = wr.wr_id,
            .opcode = wr.opcode == Opcode::kSend ? WcOpcode::kSend
                                                 : WcOpcode::kRdmaWrite,
            .byte_len = static_cast<uint32_t>(bytes),
            .imm = 0,
            .status = WcStatus::kSuccess,
            .qp_num = src.qp_num()});
      } else if (check_.on()) {
        // No CQE for an unsignaled success: retire the shadow WR here so
        // the leak audit only flags WRs that truly never finished.
        check_.on_unsignaled_done(src, wr);
      }
      break;
    }

    case Opcode::kRead: {
      {
        auto order_guard = co_await src.sq_order_.scoped();
        co_await injected_delay(src, wr);
        // Request packet to the responder (header-only on the wire).
        sim::Duration req_ser = cm.wire_time(0);
        Time start = std::max(sim_.now(), s.nic().tx_free());
        s.nic().reserve_tx(start + req_ser, 0);
        co_await sim_.sleep_until(start + req_ser);
      }
      co_await sim_.sleep(cm.propagation);
      if (src.in_error()) {
        fail_wqe(src, wr, WcStatus::kWrFlushErr);
        co_return;
      }
      if (dst_qp->in_error() || d.crashed()) {
        co_await sim_.sleep(prof.unreachable_penalty());
        if (fp) fp->note(sim_.now(), "unreachable " + wqe_tag(src, wr));
        fail_wqe(src, wr, WcStatus::kRetryExcErr);
        co_return;
      }

      // Responder NIC serves the read in hardware: a non-posted PCIe DMA
      // read fetches the data (this PCIe round trip is what makes READ
      // latency exceed WRITE latency on real NICs). The memory is
      // snapshotted when the DMA engine reads it — NOT when the response
      // reaches the requester — so racing CPU stores at the responder
      // behave like real hardware.
      co_await sim_.sleep(cm.nic_read_response);
      sim::BufArena::Lease snapshot;
      bool nak = false;
      try {
        auto span = d.pd().resolve(wr.remote, bytes, kAccessRemoteRead);
        snapshot = buf_arena_.lease(span.size());
        if (!span.empty())
          std::memcpy(snapshot.data(), span.data(), span.size());
      } catch (const std::exception&) {
        nak = true;  // handled below — co_await is not allowed in a handler
      }
      if (nak) {
        if (fp) fp->note(sim_.now(), "remote-access-nak " + wqe_tag(src, wr));
        co_await sim_.sleep(cm.ack_delay + cm.nic_cqe);
        fail_wqe(src, wr, WcStatus::kRemAccessErr);
        co_return;
      }
      // Response data is subject to the same wire faults as a send.
      unsigned attempt = 0;
      while (true) {
        co_await wire_transfer(d.nic(), s.nic(), bytes == 0 ? 1 : bytes);
        if (!fp) break;
        FaultPlan::LossKind loss = fp->draw_loss();
        if (loss == FaultPlan::LossKind::kNone) break;
        count_qp(src, obs::Ctr::kRetransmits);
        fp->note(sim_.now(),
                 (loss == FaultPlan::LossKind::kDrop ? "drop " : "corrupt ") +
                     wqe_tag(src, wr) + " attempt=" +
                     std::to_string(attempt + 1));
        if (++attempt > prof.retry_count) {
          fp->note(sim_.now(), "retry-exhausted " + wqe_tag(src, wr));
          fail_wqe(src, wr, WcStatus::kRetryExcErr);
          co_return;
        }
        co_await sim_.sleep(prof.retransmit_timeout);
      }
      // Read response crossed the wire: responder-side DMA fetch plus the
      // requester-side placement.
      s.counters().add(obs::Ctr::kDmaBytes, bytes);
      d.counters().add(obs::Ctr::kDmaBytes, bytes);
      if (obs::CounterSet* chan = src.channel_counters())
        chan->add(obs::Ctr::kDmaBytes, bytes);
      co_await sim_.sleep(cm.propagation);
      if (src.in_error()) {
        fail_wqe(src, wr, WcStatus::kWrFlushErr);
        co_return;
      }
      if (bytes > 0) scatter_payload(wr, snapshot.data(), bytes);
      if (wr.signaled) {
        co_await sim_.sleep(cm.nic_cqe);
        src.send_cq().deliver(Wc{
            .wr_id = wr.wr_id,
            .opcode = WcOpcode::kRdmaRead,
            .byte_len = static_cast<uint32_t>(bytes),
            .imm = 0,
            .status = WcStatus::kSuccess,
            .qp_num = src.qp_num()});
      } else if (check_.on()) {
        check_.on_unsignaled_done(src, wr);
      }
      break;
    }
  }
}

}  // namespace hatrpc::verbs
