// VerbsCheck: a contract-verification layer for the simulated verbs API.
//
// All nine HatRPC protocols are distinguished only by the sequence of verbs
// operations they issue, so the reproduction stands or falls on those
// sequences obeying the ibverbs spec — and the simulated NIC is forgiving
// where ConnectX-5 hardware is not. VerbsCheck makes spec violations loud:
// every post and every completion is checked against the QP state machine,
// MR registration/bounds/access rules, inline and SGE caps, queue depths,
// and completion accounting, and each violation is produced as a structured
// diagnostic (rule, virtual timestamp, node, QP, wr_id, provenance).
//
// Modes (env var VERBSCHECK, or set_mode()):
//   * off    — every hook returns immediately; zero simulated cost, zero
//              behavioural change (the default).
//   * record — diagnostics are collected (diagnostics()/count()) and the
//              node's contract_violations counter is bumped; execution
//              continues with the simulator's forgiving semantics.
//   * abort  — like record, but the first violation throws ContractViolation
//              (the test-friendly analogue of hardware raising a fatal
//              async event). Violations detected in destructors are printed
//              to stderr instead of thrown.
//
// The checker never advances virtual time and never touches counters other
// than contract_violations, so enabling it cannot perturb a deterministic
// trace: same seed, same schedule, with or without checking.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "verbs/completion.h"
#include "verbs/qp.h"

namespace hatrpc::verbs {

class Fabric;
class SharedReceiveQueue;
class MemoryRegion;

/// The rule classes VerbsCheck enforces. Each diagnostic names exactly one.
enum class Rule : uint8_t {
  kQpState,         // posting in an illegal QP state / illegal transition
  kSge,             // local SGE not covered by a live MR (or overruns it)
  kUseAfterDereg,   // SGE or rkey backed by a deregistered registration
  kAccess,          // MR access flags forbid the operation
  kInlineCap,       // IBV_SEND_INLINE payload exceeds max_inline_data
  kSgeCap,          // gather list longer than cap.max_sge
  kCqOverflow,      // CQE delivered past the CQ's capacity
  kRqOverflow,      // recv queue / SRQ deeper than its cap
  kRkey,            // one-sided op against an rkey that was never registered
  kDoubleCompletion, // completion with no matching outstanding WR
  kUseAfterDestroy, // operation on a destroyed QP or closed SRQ
  kLeak,            // end-of-simulation audit: never-completed WRs
  kCount,
};

constexpr const char* to_string(Rule r) {
  switch (r) {
    case Rule::kQpState: return "qp-state";
    case Rule::kSge: return "sge";
    case Rule::kUseAfterDereg: return "use-after-dereg";
    case Rule::kAccess: return "access";
    case Rule::kInlineCap: return "inline-cap";
    case Rule::kSgeCap: return "sge-cap";
    case Rule::kCqOverflow: return "cq-overflow";
    case Rule::kRqOverflow: return "rq-overflow";
    case Rule::kRkey: return "rkey";
    case Rule::kDoubleCompletion: return "double-completion";
    case Rule::kUseAfterDestroy: return "use-after-destroy";
    case Rule::kLeak: return "leak";
    case Rule::kCount: break;
  }
  return "unknown";
}

/// One structured violation report.
struct Diagnostic {
  Rule rule = Rule::kCount;
  sim::Time at{};        // virtual timestamp of the offending operation
  uint32_t node = 0;     // requester node id
  uint32_t qp = 0;       // QP number (0 when not QP-scoped)
  uint64_t wr_id = 0;    // offending work request id (0 when not WR-scoped)
  std::string provenance;  // where it was detected: post_send, deliver, ...
  std::string detail;      // human-readable specifics

  /// "verbscheck[rule] t=<ns> node=<n> qp=<q> wr=<id> @<provenance>: detail"
  std::string str() const;
};

/// Thrown by abort mode at the point of violation.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const Diagnostic& d)
      : std::logic_error(d.str()), diagnostic(d) {}
  Diagnostic diagnostic;
};

/// End-of-simulation resource audit (Fabric::audit / ~Fabric). `clean()` is
/// the assertable invariant: every posted WR eventually completed. The other
/// fields are informational — servers legitimately tear down with pre-posted
/// recvs, and registration caches keep MRs pinned by design.
struct AuditReport {
  uint64_t live_qps = 0;
  uint64_t destroyed_qps = 0;
  uint64_t live_cqs = 0;
  uint64_t live_srqs = 0;
  uint64_t live_mrs = 0;
  uint64_t external_mrs = 0;      // reg_mr'd app memory still pinned
  uint64_t registered_bytes = 0;
  uint64_t outstanding_sends = 0;  // posted WQEs that never finished
  uint64_t pending_recvs = 0;      // posted recvs never consumed
  uint64_t unconsumed_cqes = 0;    // delivered CQEs never polled
  uint64_t violations = 0;         // diagnostics recorded so far

  bool clean() const { return outstanding_sends == 0; }
  std::string str() const;
};

class VerbsCheck {
 public:
  enum class Mode : uint8_t { kOff, kRecord, kAbort };

  /// Parses the VERBSCHECK environment variable: "abort" => kAbort,
  /// "record"/"on"/"1" => kRecord, anything else (or unset) => kOff.
  static Mode env_mode();

  explicit VerbsCheck(Fabric& fabric) : fabric_(fabric), mode_(env_mode()) {}

  Mode mode() const { return mode_; }
  void set_mode(Mode m) { mode_ = m; }
  bool on() const { return mode_ != Mode::kOff; }

  /// RAII scope for deliberate-violation tests: diagnostics are still
  /// recorded, but abort mode does not throw inside the scope.
  class Tolerate {
   public:
    explicit Tolerate(VerbsCheck& vc) : vc_(vc) { ++vc_.tolerate_; }
    ~Tolerate() { --vc_.tolerate_; }
    Tolerate(const Tolerate&) = delete;
    Tolerate& operator=(const Tolerate&) = delete;

   private:
    VerbsCheck& vc_;
  };

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  size_t total() const { return diags_.size(); }
  uint64_t count(Rule r) const {
    uint64_t n = 0;
    for (const auto& d : diags_) n += d.rule == r ? 1 : 0;
    return n;
  }
  void clear() { diags_.clear(); }

  // ---- Hooks (all return immediately when the mode is off) ---------------
  // Call sites live in fabric.cc (post/modify/deliver paths) and in the
  // Node/PD object-lifecycle code.

  void on_modify(QueuePair& qp, QpState from, QpState to);
  void on_post_send(QueuePair& qp, const SendWr& wr, const char* provenance);
  void on_post_recv(QueuePair& qp, const RecvWr& wr);
  void on_srq_post(SharedReceiveQueue& srq, uint32_t node_id,
                   const RecvWr& wr);
  void on_srq_close(SharedReceiveQueue& srq);
  void on_cqe(const Wc& wc, size_t depth_after, uint32_t capacity,
              uint32_t node_id);
  /// An unsignaled WQE finished executing without a CQE (the normal case).
  void on_unsignaled_done(QueuePair& qp, const SendWr& wr);
  void on_destroy_qp(QueuePair& qp);
  void on_dereg_mr(uint32_t node_id, const MemoryRegion& mr);

  // ---- Audit helpers (used by Fabric::audit) -----------------------------
  uint64_t outstanding_sends() const;
  uint64_t pending_recvs() const;

  /// Records a kLeak diagnostic for an audit that found orphaned WRs.
  void report_leak(const AuditReport& report, const char* provenance);

 private:
  struct InflightWr {
    uint64_t wr_id = 0;
    bool signaled = true;
    Opcode op = Opcode::kSend;
    sim::Time posted{};
  };
  struct QpTrack {
    std::deque<InflightWr> sends;
    std::deque<uint64_t> recvs;
  };
  /// A deregistered registration, kept so stale use reports name the MR.
  struct DeadReg {
    uint32_t node = 0;
    uint64_t addr = 0;
    uint64_t size = 0;
    uint32_t rkey = 0;
  };

  void report(Rule rule, uint32_t node, uint32_t qp, uint64_t wr_id,
              const char* provenance, std::string detail);
  void check_local_sge(QueuePair& qp, const SendWr& wr, const Sge& sge,
                       const char* provenance, bool needs_local_write);
  void check_remote(QueuePair& qp, const SendWr& wr, const char* provenance);
  const DeadReg* find_dead(uint32_t node, uint64_t addr, uint64_t len) const;
  const DeadReg* find_dead_rkey(uint32_t node, uint32_t rkey) const;

  Fabric& fabric_;
  Mode mode_;
  int tolerate_ = 0;
  std::vector<Diagnostic> diags_;
  std::unordered_map<uint32_t, QpTrack> qps_;  // keyed by qp_num
  std::unordered_map<const SharedReceiveQueue*, std::deque<uint64_t>> srqs_;
  std::deque<DeadReg> dead_regs_;  // bounded history of deregistrations
  static constexpr size_t kMaxDeadRegs = 512;
};

}  // namespace hatrpc::verbs
