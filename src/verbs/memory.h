// Registered memory: protection domains and memory regions.
//
// Memory regions are REAL host buffers — RDMA operations in the simulator
// memcpy between them, so everything above the verbs layer moves real bytes.
// Remote access is validated against (rkey, range) exactly like an RNIC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "obs/counters.h"

namespace hatrpc::verbs {

/// (address, rkey) pair naming remote registered memory, as exchanged
/// out-of-band during connection setup.
struct RemoteAddr {
  uint64_t addr = 0;
  uint32_t rkey = 0;
};

/// ibv_access_flags analogue. Registrations default to kAccessAll (the
/// common LOCAL_WRITE|REMOTE_READ|REMOTE_WRITE registration every channel
/// uses); restricted registrations NAK remote ops that exceed their grant
/// exactly like an RNIC, and VerbsCheck flags the requester at post time.
enum AccessFlags : uint32_t {
  kAccessNone = 0,
  kAccessLocalWrite = 1u << 0,   // required to land recvs / READ responses
  kAccessRemoteWrite = 1u << 1,  // required of a WRITE target
  kAccessRemoteRead = 1u << 2,   // required of a READ source
  kAccessAll = kAccessLocalWrite | kAccessRemoteWrite | kAccessRemoteRead,
};

/// A registered buffer. `addr()` is its simulated virtual address (the real
/// host pointer value), so RemoteAddr arithmetic behaves like the real thing.
/// Storage is deliberately UNINITIALIZED (like freshly mmap'd registration
/// in real verbs) so huge rarely-touched regions cost nothing; protocols
/// that poll control words before the first write zero them explicitly.
class MemoryRegion {
 public:
  MemoryRegion(size_t size, uint32_t lkey, uint32_t rkey,
               uint32_t access = kAccessAll)
      : data_(std::make_unique_for_overwrite<std::byte[]>(size)),
        ext_(nullptr), size_(size), lkey_(lkey), rkey_(rkey),
        access_(access) {}

  /// Registers EXISTING application memory (ibv_reg_mr over a user buffer):
  /// the region covers the caller's bytes in place and does not own them.
  /// This is the entry point MrCache uses for on-demand registration.
  MemoryRegion(std::byte* external, size_t size, uint32_t lkey, uint32_t rkey,
               uint32_t access = kAccessAll)
      : ext_(external), size_(size), lkey_(lkey), rkey_(rkey),
        access_(access) {}

  MemoryRegion(const MemoryRegion&) = delete;
  MemoryRegion& operator=(const MemoryRegion&) = delete;

  std::byte* data() { return ext_ ? ext_ : data_.get(); }
  const std::byte* data() const { return ext_ ? ext_ : data_.get(); }
  size_t size() const { return size_; }
  uint64_t addr() const { return reinterpret_cast<uint64_t>(data()); }
  uint32_t lkey() const { return lkey_; }
  uint32_t rkey() const { return rkey_; }
  uint32_t access() const { return access_; }
  bool has_access(uint32_t required) const {
    return (access_ & required) == required;
  }
  bool external() const { return ext_ != nullptr; }

  RemoteAddr remote(uint64_t offset = 0) const {
    return RemoteAddr{addr() + offset, rkey_};
  }

  std::span<std::byte> span(uint64_t offset, size_t len) {
    if (offset + len > size()) throw std::out_of_range("MR span");
    return {data() + offset, len};
  }

  /// Zeroes the first `n` bytes (control words that are polled before any
  /// remote write lands).
  void zero_prefix(size_t n) { std::memset(data(), 0, std::min(n, size_)); }

  /// Withdraws remote access (fault injection: a server losing its exported
  /// regions). Local use keeps working; remote ops NAK with kRemAccessErr.
  void revoke() { revoked_ = true; }
  bool revoked() const { return revoked_; }

  bool contains(uint64_t a, size_t len) const {
    return a >= addr() && a + len <= addr() + size();
  }

  /// Hook invoked by the fabric after a remote one-sided WRITE lands in this
  /// region. Lets server code model CPU memory polling (RFP/HERD style):
  /// the callback typically notifies a WaitQueue the spinning task sits on.
  void set_write_watch(std::function<void(uint64_t offset, size_t len)> cb) {
    on_remote_write_ = std::move(cb);
  }
  void notify_remote_write(uint64_t a, size_t len) {
    if (on_remote_write_) on_remote_write_(a - addr(), len);
  }

 private:
  std::function<void(uint64_t, size_t)> on_remote_write_;
  std::unique_ptr<std::byte[]> data_;
  std::byte* ext_ = nullptr;  // external (non-owned) registration base
  size_t size_;
  uint32_t lkey_;
  uint32_t rkey_;
  uint32_t access_ = kAccessAll;
  bool revoked_ = false;
};

class MrCache;
class VerbsCheck;

/// Per-node protection domain: allocates/registers MRs and resolves rkeys,
/// enforcing the same access checks an RNIC would.
class ProtectionDomain {
 public:
  explicit ProtectionDomain(uint32_t node_id) : node_id_(node_id) {}

  /// Wires registration accounting into the node's counter scope.
  void set_counters(obs::CounterSet* ctrs) { ctrs_ = ctrs; }

  /// Wires this PD into the fabric's contract checker (deregistrations are
  /// recorded so stale use can be reported as use-after-dereg).
  void set_check(VerbsCheck* check) { check_ = check; }

  /// Allocates and registers a fresh region.
  MemoryRegion* alloc_mr(size_t size, uint32_t access = kAccessAll) {
    uint32_t key = next_key_++;
    auto mr = std::make_unique<MemoryRegion>(size, key, key, access);
    MemoryRegion* raw = mr.get();
    by_rkey_[raw->rkey()] = raw;
    mrs_.push_back(std::move(mr));
    if (ctrs_) ctrs_->add(obs::Ctr::kMrBytes, size);
    return raw;
  }

  /// Registers EXISTING application memory in place (ibv_reg_mr over a user
  /// buffer). The caller keeps ownership of the bytes and must dereg before
  /// freeing them.
  MemoryRegion* reg_mr(std::byte* addr, size_t size,
                       uint32_t access = kAccessAll) {
    uint32_t key = next_key_++;
    auto mr = std::make_unique<MemoryRegion>(addr, size, key, key, access);
    MemoryRegion* raw = mr.get();
    by_rkey_[raw->rkey()] = raw;
    mrs_.push_back(std::move(mr));
    if (ctrs_) ctrs_->add(obs::Ctr::kMrBytes, size);
    return raw;
  }

  // Also invalidates the MrCache entry and records the dead registration
  // with the contract checker. Defined in fabric.cc.
  void dereg_mr(MemoryRegion* mr);

  /// rkey + bounds + access check; returns the owning MR or throws (remote
  /// access violation == what the NIC would report as a protection error).
  MemoryRegion* check(RemoteAddr ra, size_t len,
                      uint32_t required = kAccessNone) {
    auto it = by_rkey_.find(ra.rkey);
    if (it == by_rkey_.end()) throw std::runtime_error("bad rkey");
    MemoryRegion* mr = it->second;
    if (mr->revoked()) throw std::runtime_error("remote access revoked");
    if (!mr->contains(ra.addr, len))
      throw std::runtime_error("remote access out of MR bounds");
    if (!mr->has_access(required))
      throw std::runtime_error("remote access flags violation");
    return mr;
  }

  /// Looks up a registration by rkey without side effects (VerbsCheck's
  /// post-time remote validation). Returns nullptr when unknown.
  MemoryRegion* find_rkey(uint32_t rkey) {
    auto it = by_rkey_.find(rkey);
    return it == by_rkey_.end() ? nullptr : it->second;
  }

  /// Finds the live registration fully covering [addr, addr+len), if any
  /// (VerbsCheck's local-SGE validation; linear like a real MR table walk).
  MemoryRegion* find_containing(const std::byte* addr, size_t len) {
    const uint64_t a = reinterpret_cast<uint64_t>(addr);
    for (auto& m : mrs_)
      if (m->contains(a, len)) return m.get();
    return nullptr;
  }

  /// Revokes remote access to every region currently registered (fault
  /// injection; regions registered afterwards are unaffected).
  void revoke_all() {
    for (auto& m : mrs_) m->revoke();
  }

  std::span<std::byte> resolve(RemoteAddr ra, size_t len,
                               uint32_t required = kAccessNone) {
    check(ra, len, required);
    return {reinterpret_cast<std::byte*>(ra.addr), len};
  }

  uint32_t node_id() const { return node_id_; }
  size_t registered_bytes() const {
    size_t total = 0;
    for (auto& m : mrs_) total += m->size();
    return total;
  }
  size_t mr_count() const { return mrs_.size(); }
  size_t external_mr_count() const {
    size_t n = 0;
    for (auto& m : mrs_) n += m->external() ? 1 : 0;
    return n;
  }

  /// This PD's registration cache (created lazily on first use).
  MrCache& mr_cache();

  obs::CounterSet* counters() { return ctrs_; }

 private:
  void dereg_mr_raw(MemoryRegion* mr) {
    by_rkey_.erase(mr->rkey());
    std::erase_if(mrs_, [&](auto& p) { return p.get() == mr; });
  }

  uint32_t node_id_;
  obs::CounterSet* ctrs_ = nullptr;
  VerbsCheck* check_ = nullptr;
  uint32_t next_key_ = 1;
  std::vector<std::unique_ptr<MemoryRegion>> mrs_;
  std::unordered_map<uint32_t, MemoryRegion*> by_rkey_;
  std::unique_ptr<MrCache> cache_;
};

/// MR registration cache (the Storm / registration-cache idiom): zero-copy
/// send paths call get() with an arbitrary application buffer; the cache
/// returns a covering registration, registering on demand and evicting the
/// least-recently-used entry past capacity. Entries are invalidated when
/// the buffer is deregistered through the PD and when the rkey-revoke fault
/// fires (a revoked entry is a miss, never stale success — remote peers
/// still holding the old rkey get kRemAccessErr from the PD check).
///
/// Linear scan over an LRU list: capacities are small (a few dozen hot
/// buffers) exactly like real registration caches.
class MrCache {
 public:
  explicit MrCache(ProtectionDomain& pd, size_t capacity = kDefaultCapacity)
      : pd_(pd), cap_(capacity == 0 ? 1 : capacity) {}

  static constexpr size_t kDefaultCapacity = 32;

  /// Returns a registration covering [addr, addr+len). `chan` (may be null)
  /// mirrors the hit/miss/evict counters into a channel scope on top of the
  /// node scope.
  MemoryRegion* get(const std::byte* addr, size_t len,
                    obs::CounterSet* chan = nullptr) {
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (!covers(*it, addr, len)) continue;
      if (it->mr->revoked()) {
        // The rkey-revoke fault hit this registration: drop the stale
        // entry and fall through to a fresh miss-path registration.
        MemoryRegion* dead = it->mr;
        lru_.erase(it);
        pd_.dereg_mr(dead);
        break;
      }
      count(obs::Ctr::kMrCacheHits, chan);
      lru_.splice(lru_.begin(), lru_, it);  // move to MRU position
      return lru_.front().mr;
    }
    count(obs::Ctr::kMrCacheMisses, chan);
    MemoryRegion* mr = pd_.reg_mr(const_cast<std::byte*>(addr), len);
    lru_.push_front(Entry{addr, len, mr});
    while (lru_.size() > cap_) {
      MemoryRegion* victim = lru_.back().mr;
      lru_.pop_back();
      count(obs::Ctr::kMrCacheEvictions, chan);
      pd_.dereg_mr(victim);
    }
    return mr;
  }

  /// Drops the entry backed by `mr` if present (called by PD::dereg_mr so a
  /// deregistered buffer can never be served from the cache).
  void invalidate(MemoryRegion* mr) {
    lru_.remove_if([mr](const Entry& e) { return e.mr == mr; });
  }

  size_t size() const { return lru_.size(); }
  size_t capacity() const { return cap_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    const std::byte* base = nullptr;
    size_t len = 0;
    MemoryRegion* mr = nullptr;
  };

  static bool covers(const Entry& e, const std::byte* addr, size_t len) {
    return addr >= e.base && addr + len <= e.base + e.len;
  }

  void count(obs::Ctr c, obs::CounterSet* chan) {
    if (c == obs::Ctr::kMrCacheHits) ++hits_;
    if (c == obs::Ctr::kMrCacheMisses) ++misses_;
    if (c == obs::Ctr::kMrCacheEvictions) ++evictions_;
    if (obs::CounterSet* n = pd_.counters()) n->add(c);
    if (chan) chan->add(c);
  }

  ProtectionDomain& pd_;
  size_t cap_;
  std::list<Entry> lru_;  // front = most recently used
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

inline MrCache& ProtectionDomain::mr_cache() {
  if (!cache_) cache_ = std::make_unique<MrCache>(*this);
  return *cache_;
}

}  // namespace hatrpc::verbs
