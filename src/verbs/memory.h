// Registered memory: protection domains and memory regions.
//
// Memory regions are REAL host buffers — RDMA operations in the simulator
// memcpy between them, so everything above the verbs layer moves real bytes.
// Remote access is validated against (rkey, range) exactly like an RNIC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "obs/counters.h"

namespace hatrpc::verbs {

/// (address, rkey) pair naming remote registered memory, as exchanged
/// out-of-band during connection setup.
struct RemoteAddr {
  uint64_t addr = 0;
  uint32_t rkey = 0;
};

/// A registered buffer. `addr()` is its simulated virtual address (the real
/// host pointer value), so RemoteAddr arithmetic behaves like the real thing.
/// Storage is deliberately UNINITIALIZED (like freshly mmap'd registration
/// in real verbs) so huge rarely-touched regions cost nothing; protocols
/// that poll control words before the first write zero them explicitly.
class MemoryRegion {
 public:
  MemoryRegion(size_t size, uint32_t lkey, uint32_t rkey)
      : data_(std::make_unique_for_overwrite<std::byte[]>(size)),
        size_(size), lkey_(lkey), rkey_(rkey) {}

  MemoryRegion(const MemoryRegion&) = delete;
  MemoryRegion& operator=(const MemoryRegion&) = delete;

  std::byte* data() { return data_.get(); }
  const std::byte* data() const { return data_.get(); }
  size_t size() const { return size_; }
  uint64_t addr() const { return reinterpret_cast<uint64_t>(data_.get()); }
  uint32_t lkey() const { return lkey_; }
  uint32_t rkey() const { return rkey_; }

  RemoteAddr remote(uint64_t offset = 0) const {
    return RemoteAddr{addr() + offset, rkey_};
  }

  std::span<std::byte> span(uint64_t offset, size_t len) {
    if (offset + len > size()) throw std::out_of_range("MR span");
    return {data_.get() + offset, len};
  }

  /// Zeroes the first `n` bytes (control words that are polled before any
  /// remote write lands).
  void zero_prefix(size_t n) { std::memset(data_.get(), 0, std::min(n, size_)); }

  /// Withdraws remote access (fault injection: a server losing its exported
  /// regions). Local use keeps working; remote ops NAK with kRemAccessErr.
  void revoke() { revoked_ = true; }
  bool revoked() const { return revoked_; }

  bool contains(uint64_t a, size_t len) const {
    return a >= addr() && a + len <= addr() + size();
  }

  /// Hook invoked by the fabric after a remote one-sided WRITE lands in this
  /// region. Lets server code model CPU memory polling (RFP/HERD style):
  /// the callback typically notifies a WaitQueue the spinning task sits on.
  void set_write_watch(std::function<void(uint64_t offset, size_t len)> cb) {
    on_remote_write_ = std::move(cb);
  }
  void notify_remote_write(uint64_t a, size_t len) {
    if (on_remote_write_) on_remote_write_(a - addr(), len);
  }

 private:
  std::function<void(uint64_t, size_t)> on_remote_write_;
  std::unique_ptr<std::byte[]> data_;
  size_t size_;
  uint32_t lkey_;
  uint32_t rkey_;
  bool revoked_ = false;
};

/// Per-node protection domain: allocates/registers MRs and resolves rkeys,
/// enforcing the same access checks an RNIC would.
class ProtectionDomain {
 public:
  explicit ProtectionDomain(uint32_t node_id) : node_id_(node_id) {}

  /// Wires registration accounting into the node's counter scope.
  void set_counters(obs::CounterSet* ctrs) { ctrs_ = ctrs; }

  /// Allocates and registers a fresh region.
  MemoryRegion* alloc_mr(size_t size) {
    uint32_t key = next_key_++;
    auto mr = std::make_unique<MemoryRegion>(size, key, key);
    MemoryRegion* raw = mr.get();
    by_rkey_[raw->rkey()] = raw;
    mrs_.push_back(std::move(mr));
    if (ctrs_) ctrs_->add(obs::Ctr::kMrBytes, size);
    return raw;
  }

  void dereg_mr(MemoryRegion* mr) {
    by_rkey_.erase(mr->rkey());
    std::erase_if(mrs_, [&](auto& p) { return p.get() == mr; });
  }

  /// rkey + bounds check; returns the owning MR or throws (remote access
  /// violation == what the NIC would report as a protection error).
  MemoryRegion* check(RemoteAddr ra, size_t len) {
    auto it = by_rkey_.find(ra.rkey);
    if (it == by_rkey_.end()) throw std::runtime_error("bad rkey");
    MemoryRegion* mr = it->second;
    if (mr->revoked()) throw std::runtime_error("remote access revoked");
    if (!mr->contains(ra.addr, len))
      throw std::runtime_error("remote access out of MR bounds");
    return mr;
  }

  /// Revokes remote access to every region currently registered (fault
  /// injection; regions registered afterwards are unaffected).
  void revoke_all() {
    for (auto& m : mrs_) m->revoke();
  }

  std::span<std::byte> resolve(RemoteAddr ra, size_t len) {
    check(ra, len);
    return {reinterpret_cast<std::byte*>(ra.addr), len};
  }

  uint32_t node_id() const { return node_id_; }
  size_t registered_bytes() const {
    size_t total = 0;
    for (auto& m : mrs_) total += m->size();
    return total;
  }
  size_t mr_count() const { return mrs_.size(); }

 private:
  uint32_t node_id_;
  obs::CounterSet* ctrs_ = nullptr;
  uint32_t next_key_ = 1;
  std::vector<std::unique_ptr<MemoryRegion>> mrs_;
  std::unordered_map<uint32_t, MemoryRegion*> by_rkey_;
};

}  // namespace hatrpc::verbs
