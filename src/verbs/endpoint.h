// One side of an RC connection: a QP plus its send/recv completion queues
// and the polling discipline the owning thread uses. Collapses the
// CQ/CQ/QP triple every protocol used to hand-build per side into a single
// value with a factory, so channel constructors read as two make_endpoint
// calls and a connect.
#pragma once

#include "verbs/fabric.h"

namespace hatrpc::verbs {

struct Endpoint {
  Node* node = nullptr;
  CompletionQueue* scq = nullptr;
  CompletionQueue* rcq = nullptr;
  QueuePair* qp = nullptr;
  sim::PollMode poll = sim::PollMode::kBusy;

  /// Next send/recv completion, polled with this side's discipline.
  sim::Task<Wc> send_wc() { return scq->wait(poll); }
  sim::Task<Wc> recv_wc() { return rcq->wait(poll); }

  /// Batched variants: one wake-up, up to max_n completions (in order).
  sim::Task<std::vector<Wc>> send_wcs(size_t max_n) {
    return scq->wait_many(poll, max_n);
  }
  sim::Task<std::vector<Wc>> recv_wcs(size_t max_n) {
    return rcq->wait_many(poll, max_n);
  }

  /// Closes both CQs so pollers unblock with flush errors (shutdown).
  void close() {
    scq->close();
    rcq->close();
  }

  /// Hard teardown: the QP flushes everything in flight.
  void enter_error() { qp->enter_error(); }
};

/// Builds the CQs and the QP on `node` in one go. The endpoint is not yet
/// connected — pair it with its peer via connect() below.
inline Endpoint make_endpoint(Node& node, sim::PollMode poll) {
  Endpoint ep;
  ep.node = &node;
  ep.poll = poll;
  ep.scq = node.create_cq();
  ep.rcq = node.create_cq();
  ep.qp = node.create_qp(*ep.scq, *ep.rcq);
  return ep;
}

inline void connect(Endpoint& a, Endpoint& b) {
  Fabric::connect(*a.qp, *b.qp);
}

}  // namespace hatrpc::verbs
