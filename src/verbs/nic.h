// Per-node NIC link resources. The tx and rx sides are FIFO time
// reservations: a message occupies the sender's tx and the receiver's rx for
// its serialization time (cut-through — charged once end-to-end). Incast to
// a single server serializes on that server's rx link, which is what caps
// aggregate throughput at line rate in the multi-client benchmarks.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.h"

namespace hatrpc::verbs {

class Nic {
 public:
  sim::Time tx_free() const { return tx_free_; }
  sim::Time rx_free() const { return rx_free_; }

  void reserve_tx(sim::Time until, uint64_t bytes) {
    tx_free_ = std::max(tx_free_, until);
    tx_bytes_ += bytes;
    ++tx_msgs_;
  }

  void reserve_rx(sim::Time until, uint64_t bytes) {
    rx_free_ = std::max(rx_free_, until);
    rx_bytes_ += bytes;
    ++rx_msgs_;
  }

  uint64_t tx_bytes() const { return tx_bytes_; }
  uint64_t rx_bytes() const { return rx_bytes_; }
  uint64_t tx_msgs() const { return tx_msgs_; }
  uint64_t rx_msgs() const { return rx_msgs_; }

 private:
  sim::Time tx_free_{0};
  sim::Time rx_free_{0};
  uint64_t tx_bytes_ = 0;
  uint64_t rx_bytes_ = 0;
  uint64_t tx_msgs_ = 0;
  uint64_t rx_msgs_ = 0;
};

}  // namespace hatrpc::verbs
