// Completion queues with the two polling disciplines the paper studies:
// busy polling (spin — low latency, occupies a core) and event polling
// (interrupt wake-up — ~3 us extra latency, frees the CPU). The discipline
// is chosen per wait, so one CQ can serve hints that differ per function.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "obs/counters.h"
#include "sim/cpu.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "verbs/cost_model.h"

namespace hatrpc::verbs {

using sim::PollMode;
using sim::Task;

enum class WcOpcode : uint8_t {
  kSend,
  kRdmaWrite,
  kRdmaRead,
  kRecv,
  kRecvImm,
};

/// Completion status, mirroring ibv_wc_status. Anything but kSuccess means
/// the QP has transitioned (or is transitioning) to the error state and
/// every WR behind the failed one completes as kWrFlushErr.
enum class WcStatus : uint8_t {
  kSuccess = 0,
  kLocLenErr,       // posted recv buffer too small for the incoming SEND
  kLocProtErr,      // local memory violated the MR registration
  kWrFlushErr,      // WR flushed: QP in error state or CQ shut down
  kRemAccessErr,    // responder rkey/bounds/revocation NAK
  kRemOpErr,        // responder could not complete the operation
  kRnrRetryExcErr,  // RNR NAK retry counter exceeded (no recv posted)
  kRetryExcErr,     // transport retry counter exceeded (peer dead / loss)
};

constexpr const char* to_string(WcStatus s) {
  switch (s) {
    case WcStatus::kSuccess: return "success";
    case WcStatus::kLocLenErr: return "local-length-error";
    case WcStatus::kLocProtErr: return "local-protection-error";
    case WcStatus::kWrFlushErr: return "wr-flush-error";
    case WcStatus::kRemAccessErr: return "remote-access-error";
    case WcStatus::kRemOpErr: return "remote-operation-error";
    case WcStatus::kRnrRetryExcErr: return "rnr-retry-exceeded";
    case WcStatus::kRetryExcErr: return "transport-retry-exceeded";
  }
  return "unknown";
}

/// Work completion, mirroring ibv_wc.
struct Wc {
  uint64_t wr_id = 0;
  WcOpcode opcode = WcOpcode::kSend;
  uint32_t byte_len = 0;
  uint32_t imm = 0;
  WcStatus status = WcStatus::kSuccess;
  uint32_t qp_num = 0;

  bool ok() const { return status == WcStatus::kSuccess; }
};

class VerbsCheck;

class CompletionQueue {
 public:
  /// `capacity` is the ibv_create_cq cqe argument (0 = the cost model's
  /// default depth); overflowing it is a VerbsCheck contract violation but,
  /// like every checker rule, does not change the simulator's behaviour.
  CompletionQueue(sim::Simulator& sim, sim::Cpu& cpu, const CostModel& cost,
                  obs::CounterSet* ctrs = nullptr,
                  VerbsCheck* check = nullptr, uint32_t capacity = 0,
                  uint32_t node_id = 0)
      : sim_(sim), cpu_(cpu), cost_(cost), ctrs_(ctrs), check_(check),
        capacity_(capacity == 0 ? cost.cq_depth : capacity),
        node_id_(node_id), avail_(sim) {}

  /// Called by the fabric when the NIC DMAs a CQE to host memory. Runs the
  /// contract checker's completion accounting (double-completion detection,
  /// CQ overflow). Defined in fabric.cc.
  void deliver(Wc wc);

  uint32_t capacity() const { return capacity_; }

  /// Pins this CQ's polling costs to one core (per-core sharded servers).
  /// Busy waits on a bound CQ do NOT register a per-wait spinning thread:
  /// the owning shard registers ONE persistent spinner (Cpu::pin_spinner)
  /// that all of its connections' waits multiplex onto.
  void bind_core(int core) { core_ = core; }
  int bound_core() const { return core_; }

  /// Mirrors per-CQE consumption into a shard-scope counter set (owned by
  /// the sharded server that steered this CQ's connection).
  void attach_shard(obs::CounterSet* shard) { shard_ = shard; }

  /// Non-blocking poll (ibv_poll_cq with no wait). No pickup delay applied —
  /// callers embedding this in their own spin loop charge their own time.
  std::optional<Wc> try_poll() {
    if (cqes_.empty()) return std::nullopt;
    Wc wc = cqes_.front();
    cqes_.pop_front();
    rc_pop();
    ++consumed_;
    count_polled();
    return wc;
  }

  /// Waits for the next completion with the given polling discipline,
  /// charging the discipline's pickup latency and the software CQE cost.
  Task<Wc> wait(PollMode mode) {
    if (mode == PollMode::kBusy && core_ < 0) {
      auto guard = cpu_.busy_guard();
      co_return co_await wait_inner(mode);
    }
    co_return co_await wait_inner(mode);
  }

  /// Non-blocking batch drain (ibv_poll_cq(cq, max_n)): pops up to max_n
  /// already-delivered CQEs in order. Like try_poll, no pickup delay — the
  /// caller's spin loop owns its own time.
  std::vector<Wc> poll(size_t max_n) {
    std::vector<Wc> out;
    size_t take = std::min(max_n, cqes_.size());
    out.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out.push_back(cqes_.front());
      cqes_.pop_front();
      rc_pop();
      ++consumed_;
      count_polled();
    }
    if (!out.empty() && ctrs_) ctrs_->add(obs::Ctr::kCqBatchPolls);
    return out;
  }

  /// Blocking batch drain: waits for the first CQE with the discipline's
  /// pickup latency, then sweeps up to max_n CQEs that are already visible,
  /// paying the per-CQE software cost for each but only one wake-up. This
  /// is what amortizes interrupt/poll overhead for pipelined channels.
  Task<std::vector<Wc>> wait_many(PollMode mode, size_t max_n) {
    if (mode == PollMode::kBusy && core_ < 0) {
      auto guard = cpu_.busy_guard();
      co_return co_await wait_many_inner(mode, max_n);
    }
    co_return co_await wait_many_inner(mode, max_n);
  }

  /// Unblocks all waiters with a kWrFlushErr Wc; used for clean shutdown of
  /// server polling loops.
  void close() {
    closed_ = true;
    avail_.notify_all();
  }
  bool is_closed() const { return closed_; }

  size_t depth() const { return cqes_.size(); }
  uint64_t delivered() const { return delivered_; }
  uint64_t consumed() const { return consumed_; }

 private:
  void count_polled() {
    if (ctrs_) ctrs_->add(obs::Ctr::kCqesPolled);
    if (shard_) shard_->add(obs::Ctr::kShardPolls);
  }

  // One racecheck token per delivered CQE, kept aligned with cqes_ (a
  // kNoClock placeholder is pushed even while the checker is off, so a
  // mid-run mode toggle cannot desynchronize the two queues). Consuming a
  // CQE joins the delivering segment's clock into the poller.
  void rc_pop() {
    if (!rc_tok_.empty()) {
      sim_.rc_consume(rc_tok_.front());
      rc_tok_.pop_front();
    }
  }

  Task<Wc> wait_inner(PollMode mode) {
    while (true) {
      while (cqes_.empty()) {
        if (closed_) co_return Wc{.status = WcStatus::kWrFlushErr};
        co_await avail_.wait();
      }
      co_await sim_.sleep(cpu_.pickup_delay(mode, core_));
      if (!cqes_.empty()) break;  // lost a race with another poller
      if (closed_) co_return Wc{.status = WcStatus::kWrFlushErr};
    }
    co_await sim_.sleep(cost_.poll_cqe_cpu);
    Wc wc = cqes_.front();
    cqes_.pop_front();
    rc_pop();
    ++consumed_;
    count_polled();
    co_return wc;
  }

  Task<std::vector<Wc>> wait_many_inner(PollMode mode, size_t max_n) {
    if (max_n == 0) max_n = 1;
    while (true) {
      while (cqes_.empty()) {
        if (closed_) {
          co_return std::vector<Wc>{Wc{.status = WcStatus::kWrFlushErr}};
        }
        co_await avail_.wait();
      }
      co_await sim_.sleep(cpu_.pickup_delay(mode, core_));
      if (!cqes_.empty()) break;  // lost a race with another poller
      if (closed_) {
        co_return std::vector<Wc>{Wc{.status = WcStatus::kWrFlushErr}};
      }
    }
    size_t take = std::min(max_n, cqes_.size());
    co_await sim_.sleep(cost_.poll_cqe_cpu * static_cast<int64_t>(take));
    std::vector<Wc> out;
    out.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out.push_back(cqes_.front());
      cqes_.pop_front();
      rc_pop();
      ++consumed_;
      count_polled();
    }
    if (ctrs_) ctrs_->add(obs::Ctr::kCqBatchPolls);
    co_return out;
  }

  sim::Simulator& sim_;
  sim::Cpu& cpu_;
  const CostModel& cost_;
  obs::CounterSet* ctrs_;
  obs::CounterSet* shard_ = nullptr;  // shard scope (sharded servers)
  VerbsCheck* check_;
  uint32_t capacity_;
  uint32_t node_id_;
  int core_ = sim::Cpu::kAnyCore;     // pinned polling core, -1 = floating
  sim::WaitQueue avail_;
  std::deque<Wc> cqes_;
  std::deque<uint32_t> rc_tok_;  // parallel to cqes_; see rc_pop()
  bool closed_ = false;
  uint64_t delivered_ = 0;
  uint64_t consumed_ = 0;
};

/// ibv_poll_cq-shaped free function: non-blocking batch drain.
inline std::vector<Wc> poll_cq(CompletionQueue& cq, size_t max_n) {
  return cq.poll(max_n);
}

}  // namespace hatrpc::verbs
