// VerbsCheck implementation: the rule logic behind every hook.
//
// Everything here is bookkeeping on the checker's own shadow state (in-flight
// WR deques, dead-registration history) plus lookups into live fabric objects
// (PDs, QPs, SRQs). No simulated time is charged and no counters other than
// contract_violations are touched, so record mode cannot perturb a schedule.

#include "verbs/check.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "verbs/fabric.h"
#include "verbs/memory.h"
#include "verbs/node.h"
#include "verbs/srq.h"

namespace hatrpc::verbs {

std::string Diagnostic::str() const {
  std::string out = "verbscheck[";
  out += to_string(rule);
  out += "] t=";
  out += std::to_string(at.count());
  out += "ns node=";
  out += std::to_string(node);
  out += " qp=";
  out += std::to_string(qp);
  out += " wr=";
  out += std::to_string(wr_id);
  out += " @";
  out += provenance;
  out += ": ";
  out += detail;
  return out;
}

std::string AuditReport::str() const {
  std::string out = "audit:";
  auto field = [&out](const char* k, uint64_t v) {
    out += ' ';
    out += k;
    out += '=';
    out += std::to_string(v);
  };
  field("live_qps", live_qps);
  field("destroyed_qps", destroyed_qps);
  field("live_cqs", live_cqs);
  field("live_srqs", live_srqs);
  field("live_mrs", live_mrs);
  field("external_mrs", external_mrs);
  field("registered_bytes", registered_bytes);
  field("outstanding_sends", outstanding_sends);
  field("pending_recvs", pending_recvs);
  field("unconsumed_cqes", unconsumed_cqes);
  field("violations", violations);
  out += clean() ? " clean=yes" : " clean=NO";
  return out;
}

VerbsCheck::Mode VerbsCheck::env_mode() {
  const char* v = std::getenv("VERBSCHECK");
  if (!v) return Mode::kOff;
  if (std::strcmp(v, "abort") == 0) return Mode::kAbort;
  if (std::strcmp(v, "record") == 0 || std::strcmp(v, "on") == 0 ||
      std::strcmp(v, "1") == 0)
    return Mode::kRecord;
  return Mode::kOff;
}

void VerbsCheck::report(Rule rule, uint32_t node, uint32_t qp, uint64_t wr_id,
                        const char* provenance, std::string detail) {
  Diagnostic d;
  d.rule = rule;
  d.at = fabric_.simulator().now();
  d.node = node;
  d.qp = qp;
  d.wr_id = wr_id;
  d.provenance = provenance;
  d.detail = std::move(detail);
  diags_.push_back(d);
  fabric_.obs().counters.node(node).add(obs::Ctr::kContractViolations);
  if (mode_ == Mode::kAbort && tolerate_ == 0) throw ContractViolation(d);
}

const VerbsCheck::DeadReg* VerbsCheck::find_dead(uint32_t node, uint64_t addr,
                                                 uint64_t len) const {
  for (const DeadReg& d : dead_regs_)
    if (d.node == node && addr >= d.addr && addr + len <= d.addr + d.size)
      return &d;
  return nullptr;
}

const VerbsCheck::DeadReg* VerbsCheck::find_dead_rkey(uint32_t node,
                                                      uint32_t rkey) const {
  for (const DeadReg& d : dead_regs_)
    if (d.node == node && d.rkey == rkey) return &d;
  return nullptr;
}

void VerbsCheck::on_modify(QueuePair& qp, QpState from, QpState to) {
  if (mode_ == Mode::kOff) return;
  const bool legal = (from == QpState::kReset && to == QpState::kInit) ||
                     (from == QpState::kInit && to == QpState::kRtr) ||
                     (from == QpState::kRtr && to == QpState::kRts) ||
                     (to == QpState::kError) ||
                     (from == QpState::kError && to == QpState::kReset);
  if (qp.destroyed()) {
    report(Rule::kUseAfterDestroy, qp.node().id(), qp.qp_num(), 0, "modify",
           "modify_qp on a destroyed QP");
    return;
  }
  if (!legal)
    report(Rule::kQpState, qp.node().id(), qp.qp_num(), 0, "modify",
           std::string("illegal transition ") + to_string(from) + " -> " +
               to_string(to));
}

void VerbsCheck::check_local_sge(QueuePair& qp, const SendWr& wr,
                                 const Sge& sge, const char* provenance,
                                 bool needs_local_write) {
  if (sge.length == 0 && sge.addr == nullptr) return;
  ProtectionDomain& pd = qp.node().pd();
  MemoryRegion* mr = pd.find_containing(sge.addr, sge.length);
  if (!mr) {
    const uint32_t node = qp.node().id();
    if (find_dead(node, reinterpret_cast<uint64_t>(sge.addr), sge.length)) {
      report(Rule::kUseAfterDereg, node, qp.qp_num(), wr.wr_id, provenance,
             "local SGE backed by a deregistered MR (" +
                 std::to_string(sge.length) + "B)");
    } else {
      report(Rule::kSge, node, qp.qp_num(), wr.wr_id, provenance,
             "local SGE not covered by any registered MR (" +
                 std::to_string(sge.length) + "B)");
    }
    return;
  }
  if (needs_local_write && !mr->has_access(kAccessLocalWrite))
    report(Rule::kAccess, qp.node().id(), qp.qp_num(), wr.wr_id, provenance,
           "MR lkey=" + std::to_string(mr->lkey()) +
               " lacks LOCAL_WRITE for a scatter target");
}

void VerbsCheck::check_remote(QueuePair& qp, const SendWr& wr,
                              const char* provenance) {
  QueuePair* peer = qp.peer();
  if (!peer) return;  // post_send rejects unconnected QPs before this hook
  Node& dst = peer->node();
  ProtectionDomain& pd = dst.pd();
  const uint64_t bytes = wr.total_bytes();
  MemoryRegion* mr = pd.find_rkey(wr.remote.rkey);
  if (!mr) {
    if (find_dead_rkey(dst.id(), wr.remote.rkey)) {
      report(Rule::kUseAfterDereg, qp.node().id(), qp.qp_num(), wr.wr_id,
             provenance,
             "rkey=" + std::to_string(wr.remote.rkey) +
                 " names a deregistered MR on node " +
                 std::to_string(dst.id()));
    } else {
      report(Rule::kRkey, qp.node().id(), qp.qp_num(), wr.wr_id, provenance,
             "rkey=" + std::to_string(wr.remote.rkey) +
                 " was never registered on node " + std::to_string(dst.id()));
    }
    return;
  }
  // Revocation is fault INJECTION, not an application bug: the requester
  // posted against an rkey that was valid when exchanged. The runtime NAK
  // (kRemAccessErr) already models the hardware response.
  if (mr->revoked()) return;
  if (!mr->contains(wr.remote.addr, bytes)) {
    report(Rule::kSge, qp.node().id(), qp.qp_num(), wr.wr_id, provenance,
           "remote access [" + std::to_string(wr.remote.addr) + ", +" +
               std::to_string(bytes) + ") overruns MR rkey=" +
               std::to_string(wr.remote.rkey));
    return;
  }
  const uint32_t required = wr.opcode == Opcode::kRead ? kAccessRemoteRead
                                                       : kAccessRemoteWrite;
  if (!mr->has_access(required))
    report(Rule::kAccess, qp.node().id(), qp.qp_num(), wr.wr_id, provenance,
           std::string("remote MR rkey=") + std::to_string(wr.remote.rkey) +
               " lacks " +
               (wr.opcode == Opcode::kRead ? "REMOTE_READ" : "REMOTE_WRITE"));
}

void VerbsCheck::on_post_send(QueuePair& qp, const SendWr& wr,
                              const char* provenance) {
  if (mode_ == Mode::kOff) return;
  const uint32_t node = qp.node().id();
  if (qp.destroyed()) {
    report(Rule::kUseAfterDestroy, node, qp.qp_num(), wr.wr_id, provenance,
           "post_send on a destroyed QP");
  }
  // Sends are legal in RTS only. Posting to an ERROR QP is legal verbs
  // (WRs flush back) — the state machine rule is about never-connected QPs.
  if (qp.state() == QpState::kReset || qp.state() == QpState::kInit ||
      qp.state() == QpState::kRtr) {
    report(Rule::kQpState, node, qp.qp_num(), wr.wr_id, provenance,
           std::string("post_send in ") + to_string(qp.state()) +
               " (sends require RTS)");
  }
  const CostModel& cm = fabric_.cost();
  if (!wr.sg_list.empty() && wr.sg_list.size() > cm.max_sge)
    report(Rule::kSgeCap, node, qp.qp_num(), wr.wr_id, provenance,
           "gather list of " + std::to_string(wr.sg_list.size()) +
               " SGEs exceeds max_sge=" + std::to_string(cm.max_sge));
  if (wr.inline_data) {
    if (wr.opcode == Opcode::kRead) {
      report(Rule::kInlineCap, node, qp.qp_num(), wr.wr_id, provenance,
             "IBV_SEND_INLINE is invalid for RDMA READ");
      return;  // prepare_send rejects this WR: it never enters the queue
    }
    if (wr.total_bytes() > cm.max_inline_data) {
      report(Rule::kInlineCap, node, qp.qp_num(), wr.wr_id, provenance,
             "inline payload of " + std::to_string(wr.total_bytes()) +
                 "B exceeds max_inline_data=" +
                 std::to_string(cm.max_inline_data));
      return;  // ditto: post_send throws before the WQE is built
    }
    // Inline payloads are snapshotted into the WQE at post time; the source
    // buffer needs no registration (that is the point of INLINE).
  } else {
    const bool scatter = wr.opcode == Opcode::kRead;
    if (wr.sg_list.empty()) {
      check_local_sge(qp, wr, wr.local, provenance, scatter);
    } else {
      for (const Sge& s : wr.sg_list)
        check_local_sge(qp, wr, s, provenance, scatter);
    }
  }
  if (wr.opcode != Opcode::kSend) check_remote(qp, wr, provenance);
  qps_[qp.qp_num()].sends.push_back(InflightWr{
      wr.wr_id, wr.signaled, wr.opcode, fabric_.simulator().now()});
}

void VerbsCheck::on_post_recv(QueuePair& qp, const RecvWr& wr) {
  if (mode_ == Mode::kOff) return;
  const uint32_t node = qp.node().id();
  if (qp.destroyed()) {
    report(Rule::kUseAfterDestroy, node, qp.qp_num(), wr.wr_id, "post_recv",
           "post_recv on a destroyed QP");
  }
  // Recvs are legal from INIT onwards (and on an ERROR QP, where they
  // flush); only a RESET QP rejects them.
  if (qp.state() == QpState::kReset) {
    report(Rule::kQpState, node, qp.qp_num(), wr.wr_id, "post_recv",
           "post_recv in RESET (recvs require INIT or later)");
  }
  const CostModel& cm = fabric_.cost();
  if (qp.posted_recvs() + 1 > cm.max_recv_wr)
    report(Rule::kRqOverflow, node, qp.qp_num(), wr.wr_id, "post_recv",
           "receive queue would exceed max_recv_wr=" +
               std::to_string(cm.max_recv_wr));
  // Bufferless recvs (wr.buf == {nullptr, 0}) are legal for WRITE_IMM-only
  // QPs: the CQE carries the immediate and no bytes land.
  if (wr.buf.addr != nullptr || wr.buf.length != 0) {
    ProtectionDomain& pd = qp.node().pd();
    MemoryRegion* mr = pd.find_containing(wr.buf.addr, wr.buf.length);
    if (!mr) {
      if (find_dead(node, reinterpret_cast<uint64_t>(wr.buf.addr),
                    wr.buf.length)) {
        report(Rule::kUseAfterDereg, node, qp.qp_num(), wr.wr_id, "post_recv",
               "recv buffer backed by a deregistered MR (" +
                   std::to_string(wr.buf.length) + "B)");
      } else {
        report(Rule::kSge, node, qp.qp_num(), wr.wr_id, "post_recv",
               "recv buffer not covered by any registered MR (" +
                   std::to_string(wr.buf.length) + "B)");
      }
    } else if (!mr->has_access(kAccessLocalWrite)) {
      report(Rule::kAccess, node, qp.qp_num(), wr.wr_id, "post_recv",
             "MR lkey=" + std::to_string(mr->lkey()) +
                 " lacks LOCAL_WRITE for a recv buffer");
    }
  }
  qps_[qp.qp_num()].recvs.push_back(wr.wr_id);
}

void VerbsCheck::on_srq_post(SharedReceiveQueue& srq, uint32_t node_id,
                             const RecvWr& wr) {
  if (mode_ == Mode::kOff) return;
  if (srq.is_closed()) {
    report(Rule::kUseAfterDestroy, node_id, 0, wr.wr_id, "srq_post",
           "post_srq_recv on a closed SRQ");
    return;  // the post is dropped; do not track it
  }
  if (srq.max_wr() != 0 && srq.posted() + 1 > srq.max_wr())
    report(Rule::kRqOverflow, node_id, 0, wr.wr_id, "srq_post",
           "SRQ would exceed max_srq_wr=" + std::to_string(srq.max_wr()));
  if (wr.buf.addr != nullptr || wr.buf.length != 0) {
    if (node_id < fabric_.node_count()) {
      ProtectionDomain& pd = fabric_.node(node_id)->pd();
      MemoryRegion* mr = pd.find_containing(wr.buf.addr, wr.buf.length);
      if (!mr) {
        if (find_dead(node_id, reinterpret_cast<uint64_t>(wr.buf.addr),
                      wr.buf.length)) {
          report(Rule::kUseAfterDereg, node_id, 0, wr.wr_id, "srq_post",
                 "SRQ recv buffer backed by a deregistered MR");
        } else {
          report(Rule::kSge, node_id, 0, wr.wr_id, "srq_post",
                 "SRQ recv buffer not covered by any registered MR (" +
                     std::to_string(wr.buf.length) + "B)");
        }
      } else if (!mr->has_access(kAccessLocalWrite)) {
        report(Rule::kAccess, node_id, 0, wr.wr_id, "srq_post",
               "MR lkey=" + std::to_string(mr->lkey()) +
                   " lacks LOCAL_WRITE for an SRQ recv buffer");
      }
    }
  }
  srqs_[&srq].push_back(wr.wr_id);
}

void VerbsCheck::on_srq_close(SharedReceiveQueue& srq) {
  if (mode_ == Mode::kOff) return;
  // Pooled recvs are discarded by close (ibv_destroy_srq frees them); they
  // are no longer pending, so drop the shadow tracking.
  srqs_.erase(&srq);
}

void VerbsCheck::on_cqe(const Wc& wc, size_t depth_after, uint32_t capacity,
                        uint32_t node_id) {
  if (mode_ == Mode::kOff) return;
  if (capacity != 0 && depth_after > capacity)
    report(Rule::kCqOverflow, node_id, wc.qp_num, wc.wr_id, "deliver",
           "CQ depth " + std::to_string(depth_after) + " exceeds capacity " +
               std::to_string(capacity));
  const bool is_recv =
      wc.opcode == WcOpcode::kRecv || wc.opcode == WcOpcode::kRecvImm;
  auto erase_id = [](std::deque<uint64_t>& q, uint64_t id) {
    for (auto it = q.begin(); it != q.end(); ++it)
      if (*it == id) {
        q.erase(it);
        return true;
      }
    return false;
  };
  if (is_recv) {
    // The consumed recv came either from the QP's private queue or, when
    // the QP is attached to an SRQ, from the shared pool.
    if (QueuePair* qp = fabric_.find_qp(wc.qp_num)) {
      if (SharedReceiveQueue* srq = qp->srq()) {
        auto it = srqs_.find(srq);
        if (it != srqs_.end() && erase_id(it->second, wc.wr_id)) return;
      }
    }
    auto it = qps_.find(wc.qp_num);
    if (it != qps_.end() && erase_id(it->second.recvs, wc.wr_id)) return;
    report(Rule::kDoubleCompletion, node_id, wc.qp_num, wc.wr_id, "deliver",
           std::string("recv completion (") + to_string(wc.status) +
               ") with no matching posted recv");
    return;
  }
  auto it = qps_.find(wc.qp_num);
  if (it != qps_.end()) {
    auto& sends = it->second.sends;
    for (auto s = sends.begin(); s != sends.end(); ++s)
      if (s->wr_id == wc.wr_id) {
        sends.erase(s);
        return;
      }
  }
  report(Rule::kDoubleCompletion, node_id, wc.qp_num, wc.wr_id, "deliver",
         std::string("send completion (") + to_string(wc.status) +
             ") with no matching outstanding WR");
}

void VerbsCheck::on_unsignaled_done(QueuePair& qp, const SendWr& wr) {
  if (mode_ == Mode::kOff) return;
  auto it = qps_.find(qp.qp_num());
  if (it == qps_.end()) return;
  auto& sends = it->second.sends;
  for (auto s = sends.begin(); s != sends.end(); ++s)
    if (s->wr_id == wr.wr_id && !s->signaled) {
      sends.erase(s);
      return;
    }
}

void VerbsCheck::on_destroy_qp(QueuePair& qp) {
  if (mode_ == Mode::kOff) return;
  if (qp.destroyed())
    report(Rule::kUseAfterDestroy, qp.node().id(), qp.qp_num(), 0,
           "destroy_qp", "double destroy_qp");
}

void VerbsCheck::on_dereg_mr(uint32_t node_id, const MemoryRegion& mr) {
  if (mode_ == Mode::kOff) return;
  dead_regs_.push_back(DeadReg{node_id, mr.addr(), mr.size(), mr.rkey()});
  if (dead_regs_.size() > kMaxDeadRegs) dead_regs_.pop_front();
}

uint64_t VerbsCheck::outstanding_sends() const {
  uint64_t n = 0;
  for (const auto& [qpn, track] : qps_) n += track.sends.size();
  return n;
}

uint64_t VerbsCheck::pending_recvs() const {
  uint64_t n = 0;
  for (const auto& [qpn, track] : qps_) n += track.recvs.size();
  for (const auto& [srq, q] : srqs_) n += q.size();
  return n;
}

void VerbsCheck::report_leak(const AuditReport& rep, const char* provenance) {
  if (mode_ == Mode::kOff) return;
  Diagnostic d;
  d.rule = Rule::kLeak;
  d.at = fabric_.simulator().now();
  d.provenance = provenance;
  d.detail = rep.str();
  diags_.push_back(d);
  fabric_.obs().counters.node(0).add(obs::Ctr::kContractViolations);
  // Leaks are found during teardown/audit, where throwing is either UB
  // (destructors) or hostile to the caller inspecting the report — print
  // instead when abort mode would have thrown.
  if (mode_ == Mode::kAbort && tolerate_ == 0)
    std::fprintf(stderr, "%s\n", d.str().c_str());
}

}  // namespace hatrpc::verbs
