// Queue pairs and work requests, mirroring the ibverbs RC programming
// model: post_send (SEND / RDMA WRITE / RDMA READ / WRITE_WITH_IMM,
// optionally chained under one doorbell), post_recv, and per-QP recv queues
// with RNR-style backpressure when no receive is posted.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "obs/counters.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "verbs/memory.h"

namespace hatrpc::verbs {

class Fabric;
class Node;
class CompletionQueue;
class SharedReceiveQueue;

enum class Opcode : uint8_t {
  kSend,      // two-sided: consumes a remote posted recv
  kWrite,     // one-sided: no remote completion
  kWriteImm,  // WRITE_WITH_IMM: one-sided data + remote recv completion
  kRead,      // one-sided fetch: responder CPU not involved
};

/// Scatter/gather element.
struct Sge {
  std::byte* addr = nullptr;
  uint32_t length = 0;
};

struct SendWr {
  uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  /// Single-SGE fast path; ignored when sg_list is non-empty.
  Sge local{};
  /// Multi-element gather list: the NIC DMA-gathers the segments in order
  /// and they appear contiguous at the destination (for kRead, the fetched
  /// bytes are scattered back across the segments).
  ///
  /// Build gather WRs as named objects (push_back into wr.sg_list, then
  /// post_send(std::move(wr))). Do NOT write a braced SendWr temporary with
  /// `.sg_list = std::move(vec)` inside a co_await expression: GCC 12's
  /// coroutine frame promotion copies such temporaries memberwise without
  /// running the vector move constructor, leaving `vec` and the WR aliasing
  /// one heap buffer — a double free when both die. scripts/lint.sh rejects
  /// the pattern.
  std::vector<Sge> sg_list;
  RemoteAddr remote{};  // for kWrite / kWriteImm / kRead
  uint32_t imm = 0;     // for kWriteImm
  bool signaled = true;
  /// IBV_SEND_INLINE: the payload is snapshotted into the WQE at post time,
  /// so the application buffer is reusable the moment post_send returns.
  /// Rejected (std::length_error) when total_bytes() exceeds the QP's
  /// max_inline_data, and invalid for kRead.
  bool inline_data = false;
  /// Ownership that must survive until the WQE finishes executing (the sim
  /// analogue of "don't touch the buffer until the CQE"): zero-copy senders
  /// park a moved-from Buffer here instead of staging a copy.
  std::shared_ptr<const void> keep_alive;

  uint64_t total_bytes() const {
    if (sg_list.empty()) return local.length;
    uint64_t n = 0;
    for (const Sge& s : sg_list) n += s.length;
    return n;
  }
};

struct RecvWr {
  uint64_t wr_id = 0;
  Sge buf{};
};

/// The RC QP state machine, mirroring ibv_qp_state. A QP is created in
/// kReset and walked RESET -> INIT -> RTR -> RTS by Fabric::connect (the
/// modify-QP dance real connection setup performs). The simulator's data
/// path only distinguishes "working" from kError (fatal fault or injected
/// failure — all outstanding and future WRs complete as kWrFlushErr), but
/// VerbsCheck enforces the full transition legality and the per-state
/// posting rules (recvs legal from INIT, sends only in RTS) that real
/// hardware rejects with immediate errors.
enum class QpState : uint8_t { kReset, kInit, kRtr, kRts, kError };

constexpr const char* to_string(QpState s) {
  switch (s) {
    case QpState::kReset: return "RESET";
    case QpState::kInit: return "INIT";
    case QpState::kRtr: return "RTR";
    case QpState::kRts: return "RTS";
    case QpState::kError: return "ERROR";
  }
  return "?";
}

/// A reliable-connected queue pair. Created via Node::create_qp and wired to
/// its peer with Fabric::connect.
class QueuePair {
 public:
  QueuePair(Fabric& fabric, Node& node, CompletionQueue& send_cq,
            CompletionQueue& recv_cq, uint32_t qp_num);

  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  /// Posts one work request: charges the caller's CPU for WR construction
  /// plus one doorbell MMIO, then hands the WQE to the (simulated) NIC.
  /// Returns once the doorbell is rung — completions arrive on the CQs.
  ///
  /// Doorbell coalescing: WRs whose construction finishes while another
  /// poster's doorbell MMIO on this QP is still in flight ride that same
  /// MMIO (the tail write picks up every WQE built so far), so concurrent
  /// windowed lanes ring fewer doorbells than they post WQEs. A lone post
  /// is exactly the pre-coalescing cost: build + one MMIO.
  sim::Task<void> post_send(SendWr wr);

  /// Posts a chain of WRs with a single doorbell (the Chained-Write-Send
  /// optimization: one MMIO for the whole chain). The NIC executes the
  /// chain in order.
  sim::Task<void> post_send_chain(std::vector<SendWr> wrs);

  /// Posts a receive buffer (no simulated cost; buffers are pre-posted off
  /// the critical path in all protocols). Posting to an errored QP flushes
  /// the WR straight back as a kWrFlushErr completion, like a real RC QP.
  void post_recv(RecvWr wr);

  QpState state() const { return state_; }
  bool in_error() const { return state_ == QpState::kError; }

  /// ibv_modify_qp analogue: applies the transition unconditionally (the
  /// simulator stays forgiving) but reports illegal ones through VerbsCheck.
  /// Legal: RESET->INIT->RTR->RTS, any->ERROR, ERROR->RESET.
  void modify(QpState next);

  /// True once Node::destroy_qp has been called; any further use is a
  /// use-after-destroy contract violation (the object itself stays alive in
  /// the node's graveyard so stale pointers fail loudly, not with UB).
  bool destroyed() const { return destroyed_; }

  /// Inline capacity of this QP (ibv_query_qp's cap.max_inline_data);
  /// posts with inline_data set and a larger payload are rejected.
  uint32_t max_inline_data() const;

  /// RTS -> ERR transition: posted recvs flush with kWrFlushErr, in-flight
  /// RNR waiters are released, and every later WR fails.
  void enter_error();

  Node& node() { return node_; }
  QueuePair* peer() { return peer_; }
  CompletionQueue& send_cq() { return send_cq_; }
  CompletionQueue& recv_cq() { return recv_cq_; }
  uint32_t qp_num() const { return qp_num_; }
  size_t posted_recvs() const { return recv_queue_.size(); }

  /// Attaches this QP to a shared receive queue: incoming SEND/WRITE_IMM
  /// messages consume recvs from the shared pool instead of the private
  /// per-QP queue (which then goes unused, like ibv_create_qp with a srq).
  void set_srq(SharedReceiveQueue* srq) { srq_ = srq; }
  SharedReceiveQueue* srq() const { return srq_; }

  /// Mirrors this QP's doorbell/WQE/DMA charges into a channel-scoped
  /// counter set (on top of the always-on node scope).
  void attach_counters(obs::CounterSet* ctrs) { chan_ctrs_ = ctrs; }
  obs::CounterSet* channel_counters() { return chan_ctrs_; }

  /// NUMA placement of the thread driving this QP relative to the NIC.
  /// Off-socket posting pays CostModel::numa_remote_penalty per doorbell.
  bool numa_local = true;

 private:
  friend class Fabric;
  friend class Node;

  /// Fabric-side: takes the next posted recv, waiting (RNR backpressure)
  /// if the application has not replenished the queue yet. Returns nullopt
  /// if the QP errors out while waiting.
  sim::Task<std::optional<RecvWr>> take_recv();

  /// Fabric-side, non-blocking variant for paced finite-RNR re-probing.
  std::optional<RecvWr> try_take_recv() { return recv_queue_.try_pop(); }

  /// Counts one doorbell ring carrying `wqes` work requests (node scope
  /// always, channel scope when attached). Defined in fabric.cc.
  void count_post(uint64_t wqes);

  /// Validates and finalizes a WR before it enters the send queue: rejects
  /// oversized/invalid inline posts, snapshots inline payloads into the WQE
  /// (freeing the app buffer), counts inline/gather WQEs, and returns the
  /// extra software build time (inline stores + per-SGE setup) the poster
  /// must charge on top of post_wqe_cpu.
  sim::Duration prepare_send(SendWr& wr);

  /// Sweeps sq_pending_ into the NIC under the doorbell that just landed.
  void flush_sends();

  /// Suspending halves of post_send / post_send_chain. The public entry
  /// points are deliberately NOT coroutines: everything that touches the WR
  /// runs synchronously in the caller, so rejections throw straight out of
  /// the call and no WR is ever copied into a coroutine frame as a
  /// parameter. These tails carry only trivially-copyable costs, or a
  /// vector moved from a named lvalue (see the sg_list note above for the
  /// compiler hazard this layout avoids).
  sim::Task<void> send_doorbell(sim::Duration build);
  sim::Task<void> chain_doorbell(sim::Duration sw, std::vector<SendWr> wrs);

  Fabric& fabric_;
  Node& node_;
  CompletionQueue& send_cq_;
  CompletionQueue& recv_cq_;
  uint32_t qp_num_;
  QpState state_ = QpState::kReset;
  bool destroyed_ = false;
  QueuePair* peer_ = nullptr;
  obs::CounterSet* chan_ctrs_ = nullptr;
  SharedReceiveQueue* srq_ = nullptr;
  sim::Channel<RecvWr> recv_queue_;
  /// Doorbell batcher: WQEs built while a flush MMIO is in progress wait
  /// here and are swept by that flush (see post_send).
  std::vector<SendWr> sq_pending_;
  bool db_flushing_ = false;
  uint64_t db_flush_seq_ = 0;
  sim::WaitQueue db_flushed_;
  /// RC ordering: all packets of WQE n precede WQE n+1 on this QP, even
  /// though the wire multiplexes packets across different QPs.
  sim::Mutex sq_order_;
};

}  // namespace hatrpc::verbs
