// Calibrated cost model of the RDMA data path.
//
// Every protocol in src/proto is distinguished ONLY by how many of these
// primitive costs it incurs (doorbells, WQEs, copies, round trips, pickup
// delays). The constants below are calibrated against published verbs
// microbenchmarks for ConnectX-5 EDR (100 Gbps) — ~0.9-1.0 us one-way for a
// small RDMA WRITE, ~1.9-2.1 us small-message RPC round trip with busy
// polling, 12.5 GB/s line rate — matching the paper's testbed (§5.1).
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace hatrpc::verbs {

using sim::Duration;
using namespace std::chrono_literals;

struct CostModel {
  // -- Link ----------------------------------------------------------------
  double link_gbps = 12.5;          // EDR 100 Gbps payload rate, GB/s
  Duration propagation = 350ns;     // wire + one switch hop, one way
  Duration ack_delay = 250ns;       // hardware ACK back to the requester
  uint32_t header_bytes = 30;       // per-message RC transport overhead

  // -- Initiator-side software/PCIe ----------------------------------------
  Duration post_wqe_cpu = 80ns;     // building one WR in software
  Duration post_sge_cpu = 15ns;     // each gather element past the first
  Duration mmio_doorbell = 180ns;   // uncached PCIe doorbell write (per post)
  Duration poll_cqe_cpu = 60ns;     // consuming one CQE in software

  // -- Inline sends (IBV_SEND_INLINE / BlueFlame) ----------------------------
  // The payload is written into the WQE with CPU stores and crosses PCIe in
  // the same write-combined MMIO burst as the doorbell, so the NIC never DMA
  // fetches it: the requester pays CPU store time per byte, the NIC skips
  // the WQE/payload fetch (nic_inline_wqe < nic_wqe).
  uint32_t max_inline_data = 220;   // per-QP inline capacity (CX-5 default)
  double inline_write_gbps = 16.0;  // CPU store bandwidth into the WQE
  Duration nic_inline_wqe = 40ns;   // processing a WQE that arrived via MMIO

  // -- Contract limits (ibv_device_attr-style caps) ---------------------------
  // The simulated data path does not enforce these — real queues are plain
  // std:: containers — but VerbsCheck flags any post that exceeds them,
  // because ConnectX-5 hardware rejects such posts outright.
  uint32_t max_sge = 16;       // gather/scatter elements per WR
  uint32_t max_recv_wr = 4096; // per-QP receive queue depth
  uint32_t max_srq_wr = 4096;  // shared receive queue depth
  uint32_t cq_depth = 4096;    // default CQE capacity (create_cq's cqe arg)

  // -- NIC processing --------------------------------------------------------
  Duration nic_wqe = 120ns;         // WQE fetch + processing per work request
  Duration nic_cqe = 80ns;          // DMA of a CQE to host memory
  Duration nic_read_response = 600ns;  // responder-side non-posted PCIe
                                       // DMA read serving a READ

  // -- Protocol software bookkeeping -----------------------------------------
  Duration eager_match_cpu = 250ns;  // slot/credit management + message
                                     // matching per eager message, each side

  // -- Host memory ------------------------------------------------------------
  double memcpy_gbps = 11.0;        // single-core copy bandwidth, GB/s
  Duration memcpy_setup = 40ns;     // fixed cost per software copy

  // -- NUMA -------------------------------------------------------------------
  Duration numa_remote_penalty = 180ns;  // extra PCIe hop when thread is on
                                         // the NUMA node away from the NIC
  double numa_memcpy_factor = 0.75;      // remote-socket copy bandwidth ratio

  /// Wire serialization time for a payload (headers added).
  Duration wire_time(uint64_t payload_bytes) const {
    return sim::transfer_time(payload_bytes + header_bytes, link_gbps);
  }

  /// Software memcpy of `bytes` (charged to a CPU via Cpu::compute).
  Duration copy_time(uint64_t bytes, bool numa_local = true) const {
    double bw = numa_local ? memcpy_gbps : memcpy_gbps * numa_memcpy_factor;
    return memcpy_setup + sim::transfer_time(bytes, bw);
  }

  /// CPU stores placing an inline payload into the WQE (charged to the
  /// posting CPU on top of post_wqe_cpu; no setup cost — the stores land in
  /// the WQE the CPU is already writing).
  Duration inline_write_time(uint64_t bytes) const {
    return sim::transfer_time(bytes, inline_write_gbps);
  }
};

}  // namespace hatrpc::verbs
