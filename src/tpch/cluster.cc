#include "tpch/cluster.h"

namespace hatrpc::tpch {

using sim::Task;

namespace {
// Worker-side execution cost model: charged per fact row scanned (scaled
// by the query's pass count) and per partial row produced; the coordinator
// pays a merge cost per gathered row. Serialization itself is charged by
// the engine on the actual message bytes.
constexpr sim::Duration kScanRowCpu = std::chrono::nanoseconds(6);
constexpr sim::Duration kPartialRowCpu = std::chrono::nanoseconds(40);
constexpr sim::Duration kMergeRowCpu = std::chrono::nanoseconds(40);
}  // namespace

std::string_view to_string(TpchMode m) {
  switch (m) {
    case TpchMode::kThriftIpoib: return "Thrift-IPoIB";
    case TpchMode::kHatService: return "HatRPC-Service";
    case TpchMode::kHatFunction: return "HatRPC-Function";
  }
  return "?";
}

struct TpchCluster::WorkerRt {
  verbs::Node* node = nullptr;
  TpchSlice slice;
  std::unique_ptr<core::HatServer> server;
  std::unique_ptr<core::HatConnection> conn;
};

std::string TpchCluster::method_name(int qid) {
  return "Q" + std::to_string(qid);
}

hint::ServiceHints TpchCluster::build_hints() const {
  using namespace hatrpc::hint;
  ServiceHints h;
  h.service().add(Side::kShared, Key::kConcurrency,
                  parse_value(Key::kConcurrency, "1"));
  switch (mode_) {
    case TpchMode::kThriftIpoib:
      h.service().add(Side::kShared, Key::kTransport,
                      parse_value(Key::kTransport, "tcp"));
      break;
    case TpchMode::kHatService:
      // Service-granularity only: an overall goal, but no per-function
      // payload knowledge — the engine stays on the adaptive default.
      h.service().add(Side::kShared, Key::kPerfGoal,
                      parse_value(Key::kPerfGoal, "throughput"));
      break;
    case TpchMode::kHatFunction: {
      h.service().add(Side::kShared, Key::kPerfGoal,
                      parse_value(Key::kPerfGoal, "throughput"));
      h.service().add(Side::kShared, Key::kNumaBinding,
                      parse_value(Key::kNumaBinding, "true"));
      for (const Query& q : all_queries()) {
        HintGroup& fg = h.function(method_name(q.id));
        uint64_t bytes =
            std::max<uint64_t>(partial_size_hint_[size_t(q.id)], 64);
        fg.add(Side::kShared, Key::kPayloadSize,
               parse_value(Key::kPayloadSize, std::to_string(bytes)));
        fg.add(Side::kShared, Key::kPerfGoal,
               parse_value(Key::kPerfGoal,
                           q.small_partial ? "latency" : "throughput"));
      }
      break;
    }
  }
  return h;
}

TpchCluster::TpchCluster(sim::Simulator& sim, int workers, DbgenConfig dbcfg,
                         TpchMode mode)
    : sim_(sim), mode_(mode), fabric_(sim), net_(fabric_) {
  coordinator_ = fabric_.add_node();
  std::vector<TpchSlice> slices = dbgen(dbcfg, workers);

  // Coordinator keeps a dimensions-only replica (Q13/Q20/Q22 merges).
  dims_.region = slices[0].region;
  dims_.nation = slices[0].nation;
  dims_.supplier = slices[0].supplier;
  dims_.customer = slices[0].customer;
  dims_.part = slices[0].part;
  dims_.partsupp = slices[0].partsupp;

  // Calibration pass on worker 0's slice: measured partial sizes become
  // the payload hints of the kHatFunction configuration.
  partial_size_hint_.assign(all_queries().size() + 1, 0);
  for (const Query& q : all_queries())
    partial_size_hint_[size_t(q.id)] =
        serialize_rows(q.local(slices[0])).size();

  hint::ServiceHints hints = build_hints();
  for (int w = 0; w < workers; ++w) {
    auto rt = std::make_unique<WorkerRt>();
    rt->node = fabric_.add_node();
    rt->slice = std::move(slices[size_t(w)]);
    core::EngineConfig ecfg;
    ecfg.tcp_port = uint16_t(9900 + w);
    rt->server = std::make_unique<core::HatServer>(*rt->node, hints, ecfg,
                                                   &net_);
    WorkerRt* raw = rt.get();
    for (const Query& q : all_queries()) {
      rt->server->dispatcher().register_method(
          method_name(q.id),
          [raw, &q](core::View) -> Task<core::Buffer> {
            verbs::Node& node = *raw->node;
            // Scan/join passes over the local partition.
            int64_t rows = int64_t(raw->slice.fact_rows());
            co_await node.cpu().compute(
                sim::scale(kScanRowCpu * rows, q.cpu_factor));
            std::vector<Row> partial = q.local(raw->slice);
            co_await node.cpu().compute(kPartialRowCpu *
                                        int64_t(partial.size()));
            co_return serialize_rows(partial);
          });
    }
    rt->conn = std::make_unique<core::HatConnection>(*coordinator_,
                                                     *rt->server);
    workers_.push_back(std::move(rt));
  }
}

TpchCluster::~TpchCluster() { stop(); }

void TpchCluster::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& w : workers_) w->server->stop();
}

Task<QueryResult> TpchCluster::run_query(int qid) {
  const Query& q = all_queries().at(size_t(qid - 1));
  std::string method = method_name(qid);
  sim::Time t0 = sim_.now();

  std::vector<core::Buffer> partial_bufs(workers_.size());
  sim::WaitGroup wg(sim_);
  wg.add(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    sim_.spawn([](TpchCluster* self, const std::string& method, size_t w,
                  std::vector<core::Buffer>& bufs,
                  sim::WaitGroup& wg) -> Task<void> {
      bufs[w] = co_await self->workers_[w]->conn->call(method, {});
      wg.done();
    }(this, method, w, partial_bufs, wg));
  }
  co_await wg.wait();

  std::vector<Row> gathered;
  uint64_t bytes = 0;
  for (core::Buffer& b : partial_bufs) {
    bytes += b.size();
    std::vector<Row> rows = deserialize_rows(b);
    gathered.insert(gathered.end(), std::make_move_iterator(rows.begin()),
                    std::make_move_iterator(rows.end()));
  }
  co_await coordinator_->cpu().compute(kMergeRowCpu *
                                       int64_t(gathered.size()));
  MergeContext ctx{&dims_};
  QueryResult result = q.merge(std::move(gathered), ctx);
  last_elapsed_ = sim_.now() - t0;
  last_partial_bytes_ = bytes;
  co_return result;
}

}  // namespace hatrpc::tpch
