#include "tpch/queries.h"

#include <cmath>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

namespace hatrpc::tpch {

namespace {

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

bool contains(const std::string& s, std::string_view sub) {
  return s.find(sub) != std::string::npos;
}

bool starts_with(const std::string& s, std::string_view pre) {
  return s.rfind(pre, 0) == 0;
}

bool ends_with(const std::string& s, std::string_view suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

int year_of(Date d) { return d / 10000; }

double revenue(const Lineitem& l) {
  return l.extendedprice * (1.0 - l.discount);
}

/// Generic merge combiner: columns [0, nkey) are the group key, remaining
/// numeric columns are summed (strings past nkey keep the first value).
std::vector<Row> merge_sum(const std::vector<Row>& rows, size_t nkey) {
  std::unordered_map<std::string, size_t> index;
  std::vector<Row> out;
  for (const Row& r : rows) {
    std::string key;
    for (size_t i = 0; i < nkey; ++i) {
      const Value& v = r[i];
      if (std::holds_alternative<int64_t>(v))
        key += std::to_string(std::get<int64_t>(v));
      else if (std::holds_alternative<double>(v))
        key += std::to_string(std::get<double>(v));
      else
        key += std::get<std::string>(v);
      key += '\x1f';
    }
    auto [it, fresh] = index.try_emplace(key, out.size());
    if (fresh) {
      out.push_back(r);
      continue;
    }
    Row& acc = out[it->second];
    for (size_t c = nkey; c < r.size(); ++c) {
      if (std::holds_alternative<int64_t>(r[c]))
        acc[c] = as_i64(acc[c]) + as_i64(r[c]);
      else if (std::holds_alternative<double>(r[c]))
        acc[c] = as_f64(acc[c]) + as_f64(r[c]);
    }
  }
  return out;
}

std::unordered_map<int32_t, std::string> nation_names(const TpchSlice& s) {
  std::unordered_map<int32_t, std::string> m;
  for (const Nation& n : s.nation) m[n.nationkey] = n.name;
  return m;
}

std::unordered_set<int32_t> nations_in_region(const TpchSlice& s,
                                              std::string_view region) {
  int32_t rk = -1;
  for (const Region& r : s.region)
    if (r.name == region) rk = r.regionkey;
  std::unordered_set<int32_t> out;
  for (const Nation& n : s.nation)
    if (n.regionkey == rk) out.insert(n.nationkey);
  return out;
}

int32_t nation_key(const TpchSlice& s, std::string_view name) {
  for (const Nation& n : s.nation)
    if (n.name == name) return n.nationkey;
  return -1;
}

std::unordered_map<int32_t, const Customer*> customer_by_key(
    const TpchSlice& s) {
  std::unordered_map<int32_t, const Customer*> m;
  m.reserve(s.customer.size());
  for (const Customer& c : s.customer) m[c.custkey] = &c;
  return m;
}

std::unordered_map<int32_t, const Supplier*> supplier_by_key(
    const TpchSlice& s) {
  std::unordered_map<int32_t, const Supplier*> m;
  m.reserve(s.supplier.size());
  for (const Supplier& su : s.supplier) m[su.suppkey] = &su;
  return m;
}

std::unordered_map<int32_t, const Part*> part_by_key(const TpchSlice& s) {
  std::unordered_map<int32_t, const Part*> m;
  m.reserve(s.part.size());
  for (const Part& p : s.part) m[p.partkey] = &p;
  return m;
}

uint64_t ps_key(int32_t pk, int32_t sk) {
  return (uint64_t(uint32_t(pk)) << 32) | uint32_t(sk);
}

bool mine(const TpchSlice& s, int32_t key) {
  return key % s.workers == s.worker_id;
}

// ---------------------------------------------------------------------------
// Q1 — pricing summary report
// ---------------------------------------------------------------------------

std::vector<Row> q1_local(const TpchSlice& s) {
  const Date cutoff = make_date(1998, 9, 2);
  struct Acc {
    double qty = 0, base = 0, disc_price = 0, charge = 0, disc = 0;
    int64_t count = 0;
  };
  std::unordered_map<std::string, Acc> groups;
  for (const Lineitem& l : s.lineitem) {
    if (l.shipdate > cutoff) continue;
    std::string key{l.returnflag, l.linestatus};
    Acc& a = groups[key];
    a.qty += l.quantity;
    a.base += l.extendedprice;
    a.disc_price += revenue(l);
    a.charge += revenue(l) * (1 + l.tax);
    a.disc += l.discount;
    ++a.count;
  }
  std::vector<Row> out;
  for (auto& [key, a] : groups)
    out.push_back({std::string(1, key[0]), std::string(1, key[1]), a.qty,
                   a.base, a.disc_price, a.charge, a.disc, a.count});
  return out;
}

QueryResult q1_merge(std::vector<Row> partials, const MergeContext&) {
  std::vector<Row> rows = merge_sum(partials, 2);
  for (Row& r : rows) {
    double cnt = double(as_i64(r[7]));
    r.push_back(as_f64(r[2]) / cnt);  // avg_qty
    r.push_back(as_f64(r[3]) / cnt);  // avg_price
    r.push_back(as_f64(r[6]) / cnt);  // avg_disc
  }
  sort_rows(rows, {{0, true}, {1, true}});
  return {{"l_returnflag", "l_linestatus", "sum_qty", "sum_base_price",
           "sum_disc_price", "sum_charge", "sum_disc", "count_order",
           "avg_qty", "avg_price", "avg_disc"},
          std::move(rows)};
}

// ---------------------------------------------------------------------------
// Q2 — minimum cost supplier (size=15, %BRASS, EUROPE)
// ---------------------------------------------------------------------------

std::vector<Row> q2_local(const TpchSlice& s) {
  auto europe = nations_in_region(s, "EUROPE");
  auto supp = supplier_by_key(s);
  auto nnames = nation_names(s);
  // partsupp grouped by part for the min-cost scan.
  std::unordered_map<int32_t, std::vector<const PartSupp*>> by_part;
  for (const PartSupp& ps : s.partsupp) by_part[ps.partkey].push_back(&ps);

  std::vector<Row> out;
  for (const Part& p : s.part) {
    if (!mine(s, p.partkey)) continue;
    if (p.size != 15 || !ends_with(p.type, "BRASS")) continue;
    double min_cost = 1e18;
    auto it = by_part.find(p.partkey);
    if (it == by_part.end()) continue;
    for (const PartSupp* ps : it->second) {
      const Supplier* su = supp[ps->suppkey];
      if (europe.count(su->nationkey)) min_cost = std::min(min_cost,
                                                           ps->supplycost);
    }
    for (const PartSupp* ps : it->second) {
      const Supplier* su = supp[ps->suppkey];
      if (!europe.count(su->nationkey) || ps->supplycost != min_cost)
        continue;
      out.push_back({su->acctbal, su->name, nnames[su->nationkey],
                     int64_t(p.partkey), p.mfgr, su->address, su->phone,
                     su->comment});
    }
  }
  return out;
}

QueryResult q2_merge(std::vector<Row> partials, const MergeContext&) {
  sort_rows(partials, {{0, false}, {2, true}, {1, true}, {3, true}});
  truncate(partials, 100);
  return {{"s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr",
           "s_address", "s_phone", "s_comment"},
          std::move(partials)};
}

// ---------------------------------------------------------------------------
// Q3 — shipping priority (BUILDING, 1995-03-15)
// ---------------------------------------------------------------------------

std::vector<Row> q3_local(const TpchSlice& s) {
  const Date d = make_date(1995, 3, 15);
  std::unordered_set<int32_t> building;
  for (const Customer& c : s.customer)
    if (c.mktsegment == "BUILDING") building.insert(c.custkey);
  struct OInfo {
    Date orderdate;
    int32_t shippriority;
  };
  std::unordered_map<int32_t, OInfo> open_orders;
  for (const Order& o : s.orders)
    if (o.orderdate < d && building.count(o.custkey))
      open_orders[o.orderkey] = {o.orderdate, o.shippriority};
  std::unordered_map<int32_t, double> rev;
  for (const Lineitem& l : s.lineitem)
    if (l.shipdate > d && open_orders.count(l.orderkey))
      rev[l.orderkey] += revenue(l);
  std::vector<Row> out;
  for (auto& [ok, r] : rev) {
    const OInfo& oi = open_orders[ok];
    out.push_back({int64_t(ok), r, int64_t(oi.orderdate),
                   int64_t(oi.shippriority)});
  }
  return out;
}

QueryResult q3_merge(std::vector<Row> partials, const MergeContext&) {
  sort_rows(partials, {{1, false}, {2, true}});
  truncate(partials, 10);
  return {{"l_orderkey", "revenue", "o_orderdate", "o_shippriority"},
          std::move(partials)};
}

// ---------------------------------------------------------------------------
// Q4 — order priority checking (1993-07 quarter)
// ---------------------------------------------------------------------------

std::vector<Row> q4_local(const TpchSlice& s) {
  const Date d0 = make_date(1993, 7, 1), d1 = add_months(d0, 3);
  std::unordered_set<int32_t> late;
  for (const Lineitem& l : s.lineitem)
    if (l.commitdate < l.receiptdate) late.insert(l.orderkey);
  std::unordered_map<std::string, int64_t> counts;
  for (const Order& o : s.orders)
    if (o.orderdate >= d0 && o.orderdate < d1 && late.count(o.orderkey))
      ++counts[o.orderpriority];
  std::vector<Row> out;
  for (auto& [p, c] : counts) out.push_back({p, c});
  return out;
}

QueryResult q4_merge(std::vector<Row> partials, const MergeContext&) {
  std::vector<Row> rows = merge_sum(partials, 1);
  sort_rows(rows, {{0, true}});
  return {{"o_orderpriority", "order_count"}, std::move(rows)};
}

// ---------------------------------------------------------------------------
// Q5 — local supplier volume (ASIA, 1994)
// ---------------------------------------------------------------------------

std::vector<Row> q5_local(const TpchSlice& s) {
  auto asia = nations_in_region(s, "ASIA");
  auto nnames = nation_names(s);
  std::unordered_map<int32_t, int32_t> cust_nation;
  for (const Customer& c : s.customer)
    if (asia.count(c.nationkey)) cust_nation[c.custkey] = c.nationkey;
  std::unordered_map<int32_t, int32_t> supp_nation;
  for (const Supplier& su : s.supplier)
    if (asia.count(su.nationkey)) supp_nation[su.suppkey] = su.nationkey;
  std::unordered_map<int32_t, int32_t> order_cust_nation;  // orderkey -> nk
  for (const Order& o : s.orders) {
    if (year_of(o.orderdate) != 1994) continue;
    auto it = cust_nation.find(o.custkey);
    if (it != cust_nation.end()) order_cust_nation[o.orderkey] = it->second;
  }
  std::unordered_map<int32_t, double> by_nation;
  for (const Lineitem& l : s.lineitem) {
    auto oit = order_cust_nation.find(l.orderkey);
    if (oit == order_cust_nation.end()) continue;
    auto sit = supp_nation.find(l.suppkey);
    if (sit == supp_nation.end() || sit->second != oit->second) continue;
    by_nation[sit->second] += revenue(l);
  }
  std::vector<Row> out;
  for (auto& [nk, r] : by_nation) out.push_back({nnames[nk], r});
  return out;
}

QueryResult q5_merge(std::vector<Row> partials, const MergeContext&) {
  std::vector<Row> rows = merge_sum(partials, 1);
  sort_rows(rows, {{1, false}});
  return {{"n_name", "revenue"}, std::move(rows)};
}

// ---------------------------------------------------------------------------
// Q6 — forecasting revenue change (1994, disc 0.05-0.07, qty < 24)
// ---------------------------------------------------------------------------

std::vector<Row> q6_local(const TpchSlice& s) {
  double rev = 0;
  for (const Lineitem& l : s.lineitem)
    if (year_of(l.shipdate) == 1994 && l.discount >= 0.05 - 1e-9 &&
        l.discount <= 0.07 + 1e-9 && l.quantity < 24)
      rev += l.extendedprice * l.discount;
  return {{rev}};
}

QueryResult q6_merge(std::vector<Row> partials, const MergeContext&) {
  double total = 0;
  for (const Row& r : partials) total += as_f64(r[0]);
  return {{"revenue"}, {{total}}};
}

// ---------------------------------------------------------------------------
// Q7 — volume shipping (FRANCE <-> GERMANY, 1995-1996)
// ---------------------------------------------------------------------------

std::vector<Row> q7_local(const TpchSlice& s) {
  int32_t fr = nation_key(s, "FRANCE"), de = nation_key(s, "GERMANY");
  auto nnames = nation_names(s);
  std::unordered_map<int32_t, int32_t> cust_nation, supp_nation;
  for (const Customer& c : s.customer)
    if (c.nationkey == fr || c.nationkey == de)
      cust_nation[c.custkey] = c.nationkey;
  for (const Supplier& su : s.supplier)
    if (su.nationkey == fr || su.nationkey == de)
      supp_nation[su.suppkey] = su.nationkey;
  std::unordered_map<int32_t, int32_t> order_cust;
  for (const Order& o : s.orders) {
    auto it = cust_nation.find(o.custkey);
    if (it != cust_nation.end()) order_cust[o.orderkey] = it->second;
  }
  std::map<std::tuple<int32_t, int32_t, int>, double> vol;
  for (const Lineitem& l : s.lineitem) {
    int y = year_of(l.shipdate);
    if (y != 1995 && y != 1996) continue;
    auto oit = order_cust.find(l.orderkey);
    auto sit = supp_nation.find(l.suppkey);
    if (oit == order_cust.end() || sit == supp_nation.end()) continue;
    if (oit->second == sit->second) continue;  // cross-border only
    vol[{sit->second, oit->second, y}] += revenue(l);
  }
  std::vector<Row> out;
  for (auto& [key, v] : vol)
    out.push_back({nnames[std::get<0>(key)], nnames[std::get<1>(key)],
                   int64_t(std::get<2>(key)), v});
  return out;
}

QueryResult q7_merge(std::vector<Row> partials, const MergeContext&) {
  std::vector<Row> rows = merge_sum(partials, 3);
  sort_rows(rows, {{0, true}, {1, true}, {2, true}});
  return {{"supp_nation", "cust_nation", "l_year", "revenue"},
          std::move(rows)};
}

// ---------------------------------------------------------------------------
// Q8 — national market share (BRAZIL in AMERICA, ECONOMY ANODIZED STEEL)
// ---------------------------------------------------------------------------

std::vector<Row> q8_local(const TpchSlice& s) {
  auto america = nations_in_region(s, "AMERICA");
  int32_t brazil = nation_key(s, "BRAZIL");
  auto parts = part_by_key(s);
  auto supp = supplier_by_key(s);
  std::unordered_set<int32_t> am_cust;
  for (const Customer& c : s.customer)
    if (america.count(c.nationkey)) am_cust.insert(c.custkey);
  std::unordered_map<int32_t, int> order_year;
  for (const Order& o : s.orders) {
    int y = year_of(o.orderdate);
    if ((y == 1995 || y == 1996) && am_cust.count(o.custkey))
      order_year[o.orderkey] = y;
  }
  double vol[2][2] = {{0, 0}, {0, 0}};  // [year-1995][0=total,1=brazil]
  for (const Lineitem& l : s.lineitem) {
    auto oit = order_year.find(l.orderkey);
    if (oit == order_year.end()) continue;
    const Part* p = parts[l.partkey];
    if (p->type != "ECONOMY ANODIZED STEEL") continue;
    int yi = oit->second - 1995;
    double v = revenue(l);
    vol[yi][0] += v;
    if (supp[l.suppkey]->nationkey == brazil) vol[yi][1] += v;
  }
  return {{int64_t(1995), vol[0][1], vol[0][0]},
          {int64_t(1996), vol[1][1], vol[1][0]}};
}

QueryResult q8_merge(std::vector<Row> partials, const MergeContext&) {
  std::vector<Row> rows = merge_sum(partials, 1);
  sort_rows(rows, {{0, true}});
  for (Row& r : rows) {
    double total = as_f64(r[2]);
    r.push_back(total > 0 ? as_f64(r[1]) / total : 0.0);
  }
  return {{"o_year", "brazil_volume", "total_volume", "mkt_share"},
          std::move(rows)};
}

// ---------------------------------------------------------------------------
// Q9 — product type profit measure (parts containing "green")
// ---------------------------------------------------------------------------

std::vector<Row> q9_local(const TpchSlice& s) {
  auto parts = part_by_key(s);
  auto supp = supplier_by_key(s);
  auto nnames = nation_names(s);
  std::unordered_map<uint64_t, double> cost;
  for (const PartSupp& ps : s.partsupp)
    cost[ps_key(ps.partkey, ps.suppkey)] = ps.supplycost;
  std::unordered_map<int32_t, Date> order_date;
  for (const Order& o : s.orders) order_date[o.orderkey] = o.orderdate;
  std::map<std::pair<int32_t, int>, double> profit;
  for (const Lineitem& l : s.lineitem) {
    const Part* p = parts[l.partkey];
    if (!contains(p->name, "green")) continue;
    auto cit = cost.find(ps_key(l.partkey, l.suppkey));
    double c = cit == cost.end() ? 0.0 : cit->second;
    double amount = revenue(l) - c * l.quantity;
    profit[{supp[l.suppkey]->nationkey, year_of(order_date[l.orderkey])}] +=
        amount;
  }
  std::vector<Row> out;
  for (auto& [key, v] : profit)
    out.push_back({nnames[key.first], int64_t(key.second), v});
  return out;
}

QueryResult q9_merge(std::vector<Row> partials, const MergeContext&) {
  std::vector<Row> rows = merge_sum(partials, 2);
  sort_rows(rows, {{0, true}, {1, false}});
  return {{"nation", "o_year", "sum_profit"}, std::move(rows)};
}

// ---------------------------------------------------------------------------
// Q10 — returned item reporting (1993-10 quarter)
// ---------------------------------------------------------------------------

std::vector<Row> q10_local(const TpchSlice& s) {
  const Date d0 = make_date(1993, 10, 1), d1 = add_months(d0, 3);
  auto cust = customer_by_key(s);
  auto nnames = nation_names(s);
  std::unordered_map<int32_t, int32_t> order_cust;
  for (const Order& o : s.orders)
    if (o.orderdate >= d0 && o.orderdate < d1)
      order_cust[o.orderkey] = o.custkey;
  std::unordered_map<int32_t, double> rev;
  for (const Lineitem& l : s.lineitem) {
    if (l.returnflag != 'R') continue;
    auto it = order_cust.find(l.orderkey);
    if (it != order_cust.end()) rev[it->second] += revenue(l);
  }
  std::vector<Row> out;
  for (auto& [ck, r] : rev) {
    const Customer* c = cust[ck];
    out.push_back({int64_t(ck), c->name, c->acctbal, nnames[c->nationkey],
                   c->address, c->phone, c->comment, r});
  }
  return out;
}

QueryResult q10_merge(std::vector<Row> partials, const MergeContext&) {
  std::vector<Row> rows = merge_sum(partials, 7);  // all attrs are key cols
  sort_rows(rows, {{7, false}});
  truncate(rows, 20);
  return {{"c_custkey", "c_name", "c_acctbal", "n_name", "c_address",
           "c_phone", "c_comment", "revenue"},
          std::move(rows)};
}

// ---------------------------------------------------------------------------
// Q11 — important stock identification (GERMANY)
// ---------------------------------------------------------------------------

std::vector<Row> q11_local(const TpchSlice& s) {
  int32_t de = nation_key(s, "GERMANY");
  std::unordered_set<int32_t> german;
  for (const Supplier& su : s.supplier)
    if (su.nationkey == de) german.insert(su.suppkey);
  std::unordered_map<int32_t, double> value;
  for (const PartSupp& ps : s.partsupp) {
    if (!mine(s, ps.partkey) || !german.count(ps.suppkey)) continue;
    value[ps.partkey] += ps.supplycost * ps.availqty;
  }
  std::vector<Row> out;
  for (auto& [pk, v] : value) out.push_back({int64_t(pk), v});
  return out;
}

QueryResult q11_merge(std::vector<Row> partials, const MergeContext&) {
  double total = 0;
  for (const Row& r : partials) total += as_f64(r[1]);
  std::vector<Row> rows;
  for (Row& r : partials)
    if (as_f64(r[1]) > total * 0.0001) rows.push_back(std::move(r));
  sort_rows(rows, {{1, false}});
  return {{"ps_partkey", "value"}, std::move(rows)};
}

// ---------------------------------------------------------------------------
// Q12 — shipping modes and order priority (MAIL/SHIP, 1994)
// ---------------------------------------------------------------------------

std::vector<Row> q12_local(const TpchSlice& s) {
  std::unordered_map<int32_t, const Order*> orders;
  for (const Order& o : s.orders) orders[o.orderkey] = &o;
  std::map<std::string, std::pair<int64_t, int64_t>> counts;
  for (const Lineitem& l : s.lineitem) {
    if (l.shipmode != "MAIL" && l.shipmode != "SHIP") continue;
    if (!(l.commitdate < l.receiptdate && l.shipdate < l.commitdate))
      continue;
    if (year_of(l.receiptdate) != 1994) continue;
    const Order* o = orders[l.orderkey];
    bool high = o->orderpriority == "1-URGENT" || o->orderpriority == "2-HIGH";
    auto& [h, lo] = counts[l.shipmode];
    (high ? h : lo) += 1;
  }
  std::vector<Row> out;
  for (auto& [mode, hl] : counts)
    out.push_back({mode, hl.first, hl.second});
  return out;
}

QueryResult q12_merge(std::vector<Row> partials, const MergeContext&) {
  std::vector<Row> rows = merge_sum(partials, 1);
  sort_rows(rows, {{0, true}});
  return {{"l_shipmode", "high_line_count", "low_line_count"},
          std::move(rows)};
}

// ---------------------------------------------------------------------------
// Q13 — customer distribution (excluding special requests)
// ---------------------------------------------------------------------------

std::vector<Row> q13_local(const TpchSlice& s) {
  std::unordered_map<int32_t, int64_t> per_cust;
  for (const Order& o : s.orders) {
    size_t sp = o.comment.find("special");
    if (sp != std::string::npos &&
        o.comment.find("requests", sp) != std::string::npos)
      continue;
    ++per_cust[o.custkey];
  }
  std::vector<Row> out;
  out.reserve(per_cust.size());
  for (auto& [ck, n] : per_cust) out.push_back({int64_t(ck), n});
  return out;
}

QueryResult q13_merge(std::vector<Row> partials, const MergeContext& ctx) {
  std::vector<Row> per_cust = merge_sum(partials, 1);
  std::map<int64_t, int64_t> hist;
  for (const Row& r : per_cust) ++hist[as_i64(r[1])];
  hist[0] += int64_t(ctx.dims->customer.size()) - int64_t(per_cust.size());
  std::vector<Row> rows;
  for (auto& [c_count, custdist] : hist)
    rows.push_back({c_count, custdist});
  sort_rows(rows, {{1, false}, {0, false}});
  return {{"c_count", "custdist"}, std::move(rows)};
}

// ---------------------------------------------------------------------------
// Q14 — promotion effect (1995-09)
// ---------------------------------------------------------------------------

std::vector<Row> q14_local(const TpchSlice& s) {
  const Date d0 = make_date(1995, 9, 1), d1 = add_months(d0, 1);
  auto parts = part_by_key(s);
  double promo = 0, total = 0;
  for (const Lineitem& l : s.lineitem) {
    if (l.shipdate < d0 || l.shipdate >= d1) continue;
    double r = revenue(l);
    total += r;
    if (starts_with(parts[l.partkey]->type, "PROMO")) promo += r;
  }
  return {{promo, total}};
}

QueryResult q14_merge(std::vector<Row> partials, const MergeContext&) {
  double promo = 0, total = 0;
  for (const Row& r : partials) {
    promo += as_f64(r[0]);
    total += as_f64(r[1]);
  }
  return {{"promo_revenue"}, {{total > 0 ? 100.0 * promo / total : 0.0}}};
}

// ---------------------------------------------------------------------------
// Q15 — top supplier (quarter from 1996-01)
// ---------------------------------------------------------------------------

std::vector<Row> q15_local(const TpchSlice& s) {
  const Date d0 = make_date(1996, 1, 1), d1 = add_months(d0, 3);
  auto supp = supplier_by_key(s);
  std::unordered_map<int32_t, double> rev;
  for (const Lineitem& l : s.lineitem)
    if (l.shipdate >= d0 && l.shipdate < d1) rev[l.suppkey] += revenue(l);
  std::vector<Row> out;
  for (auto& [sk, r] : rev) {
    const Supplier* su = supp[sk];
    out.push_back({int64_t(sk), su->name, su->address, su->phone, r});
  }
  return out;
}

QueryResult q15_merge(std::vector<Row> partials, const MergeContext&) {
  std::vector<Row> rows = merge_sum(partials, 4);
  double max_rev = 0;
  for (const Row& r : rows) max_rev = std::max(max_rev, as_f64(r[4]));
  std::vector<Row> top;
  for (Row& r : rows)
    if (as_f64(r[4]) >= max_rev - 1e-6) top.push_back(std::move(r));
  sort_rows(top, {{0, true}});
  return {{"s_suppkey", "s_name", "s_address", "s_phone", "total_revenue"},
          std::move(top)};
}

// ---------------------------------------------------------------------------
// Q16 — parts/supplier relationship
// ---------------------------------------------------------------------------

std::vector<Row> q16_local(const TpchSlice& s) {
  static const std::unordered_set<int32_t> sizes{49, 14, 23, 45, 19, 3, 36,
                                                 9};
  std::unordered_set<int32_t> complaining;
  for (const Supplier& su : s.supplier)
    if (contains(su.comment, "Customer Complaints"))
      complaining.insert(su.suppkey);
  auto parts = part_by_key(s);
  std::vector<Row> out;
  for (const PartSupp& ps : s.partsupp) {
    if (!mine(s, ps.partkey) || complaining.count(ps.suppkey)) continue;
    const Part* p = parts[ps.partkey];
    if (p->brand == "Brand#45" || starts_with(p->type, "MEDIUM POLISHED") ||
        !sizes.count(p->size))
      continue;
    out.push_back({p->brand, p->type, int64_t(p->size),
                   int64_t(ps.suppkey)});
  }
  return out;
}

QueryResult q16_merge(std::vector<Row> partials, const MergeContext&) {
  std::unordered_map<std::string, std::unordered_set<int64_t>> distinct;
  std::unordered_map<std::string, Row> heads;
  for (Row& r : partials) {
    std::string key = group_key(r, {0, 1, 2});
    distinct[key].insert(as_i64(r[3]));
    heads.try_emplace(key, Row{r[0], r[1], r[2]});
  }
  std::vector<Row> rows;
  for (auto& [key, suppliers] : distinct) {
    Row r = heads[key];
    r.push_back(int64_t(suppliers.size()));
    rows.push_back(std::move(r));
  }
  sort_rows(rows, {{3, false}, {0, true}, {1, true}, {2, true}});
  return {{"p_brand", "p_type", "p_size", "supplier_cnt"}, std::move(rows)};
}

// ---------------------------------------------------------------------------
// Q17 — small-quantity-order revenue (Brand#23, MED BOX)
// ---------------------------------------------------------------------------

std::vector<Row> q17_local(const TpchSlice& s) {
  std::unordered_set<int32_t> candidates;
  for (const Part& p : s.part)
    if (p.brand == "Brand#23" && p.container == "MED BOX")
      candidates.insert(p.partkey);
  std::vector<Row> out;
  for (const Lineitem& l : s.lineitem)
    if (candidates.count(l.partkey))
      out.push_back({int64_t(l.partkey), l.quantity, l.extendedprice});
  return out;
}

QueryResult q17_merge(std::vector<Row> partials, const MergeContext&) {
  std::unordered_map<int64_t, std::pair<double, int64_t>> qty;  // sum, count
  for (const Row& r : partials) {
    auto& [sum, cnt] = qty[as_i64(r[0])];
    sum += as_f64(r[1]);
    ++cnt;
  }
  double total = 0;
  for (const Row& r : partials) {
    auto& [sum, cnt] = qty[as_i64(r[0])];
    double avg = sum / double(cnt);
    if (as_f64(r[1]) < 0.2 * avg) total += as_f64(r[2]);
  }
  return {{"avg_yearly"}, {{total / 7.0}}};
}

// ---------------------------------------------------------------------------
// Q18 — large volume customer (> 300 units)
// ---------------------------------------------------------------------------

std::vector<Row> q18_local(const TpchSlice& s) {
  auto cust = customer_by_key(s);
  std::unordered_map<int32_t, double> order_qty;
  for (const Lineitem& l : s.lineitem) order_qty[l.orderkey] += l.quantity;
  std::vector<Row> out;
  for (const Order& o : s.orders) {
    auto it = order_qty.find(o.orderkey);
    if (it == order_qty.end() || it->second <= 300) continue;
    const Customer* c = cust[o.custkey];
    out.push_back({c->name, int64_t(o.custkey), int64_t(o.orderkey),
                   int64_t(o.orderdate), o.totalprice, it->second});
  }
  return out;
}

QueryResult q18_merge(std::vector<Row> partials, const MergeContext&) {
  sort_rows(partials, {{4, false}, {3, true}});
  truncate(partials, 100);
  return {{"c_name", "c_custkey", "o_orderkey", "o_orderdate",
           "o_totalprice", "sum_qty"},
          std::move(partials)};
}

// ---------------------------------------------------------------------------
// Q19 — discounted revenue (three branch disjunction)
// ---------------------------------------------------------------------------

std::vector<Row> q19_local(const TpchSlice& s) {
  auto parts = part_by_key(s);
  double rev = 0;
  for (const Lineitem& l : s.lineitem) {
    if (l.shipmode != "AIR" && l.shipmode != "REG AIR") continue;
    if (l.shipinstruct != "DELIVER IN PERSON") continue;
    const Part* p = parts[l.partkey];
    bool b1 = p->brand == "Brand#12" && starts_with(p->container, "SM") &&
              l.quantity >= 1 && l.quantity <= 11 && p->size >= 1 &&
              p->size <= 5;
    bool b2 = p->brand == "Brand#23" && starts_with(p->container, "MED") &&
              l.quantity >= 10 && l.quantity <= 20 && p->size >= 1 &&
              p->size <= 10;
    bool b3 = p->brand == "Brand#34" && starts_with(p->container, "LG") &&
              l.quantity >= 20 && l.quantity <= 30 && p->size >= 1 &&
              p->size <= 15;
    if (b1 || b2 || b3) rev += revenue(l);
  }
  return {{rev}};
}

QueryResult q19_merge(std::vector<Row> partials, const MergeContext&) {
  double total = 0;
  for (const Row& r : partials) total += as_f64(r[0]);
  return {{"revenue"}, {{total}}};
}

// ---------------------------------------------------------------------------
// Q20 — potential part promotion (CANADA, forest%)
// ---------------------------------------------------------------------------

std::vector<Row> q20_local(const TpchSlice& s) {
  std::unordered_set<int32_t> forest;
  for (const Part& p : s.part)
    if (starts_with(p.name, "forest")) forest.insert(p.partkey);
  std::unordered_map<uint64_t, double> qty;  // (partkey,suppkey) -> qty
  for (const Lineitem& l : s.lineitem)
    if (year_of(l.shipdate) == 1994 && forest.count(l.partkey))
      qty[ps_key(l.partkey, l.suppkey)] += l.quantity;
  std::vector<Row> out;
  for (auto& [key, q] : qty)
    out.push_back({int64_t(key >> 32), int64_t(uint32_t(key)), q});
  return out;
}

QueryResult q20_merge(std::vector<Row> partials, const MergeContext& ctx) {
  std::vector<Row> sums = merge_sum(partials, 2);
  std::unordered_map<uint64_t, double> qty;
  for (const Row& r : sums)
    qty[ps_key(int32_t(as_i64(r[0])), int32_t(as_i64(r[1])))] = as_f64(r[2]);
  const TpchSlice& dims = *ctx.dims;
  int32_t canada = nation_key(dims, "CANADA");
  std::unordered_set<int32_t> chosen;
  for (const PartSupp& ps : dims.partsupp) {
    auto it = qty.find(ps_key(ps.partkey, ps.suppkey));
    if (it != qty.end() && double(ps.availqty) > 0.5 * it->second)
      chosen.insert(ps.suppkey);
  }
  std::vector<Row> rows;
  for (const Supplier& su : dims.supplier)
    if (su.nationkey == canada && chosen.count(su.suppkey))
      rows.push_back({su.name, su.address});
  sort_rows(rows, {{0, true}});
  return {{"s_name", "s_address"}, std::move(rows)};
}

// ---------------------------------------------------------------------------
// Q21 — suppliers who kept orders waiting (SAUDI ARABIA)
// ---------------------------------------------------------------------------

std::vector<Row> q21_local(const TpchSlice& s) {
  int32_t saudi = nation_key(s, "SAUDI ARABIA");
  auto supp = supplier_by_key(s);
  std::unordered_map<int32_t, char> order_status;
  for (const Order& o : s.orders) order_status[o.orderkey] = o.orderstatus;
  std::unordered_map<int32_t, std::vector<const Lineitem*>> by_order;
  for (const Lineitem& l : s.lineitem) by_order[l.orderkey].push_back(&l);

  std::unordered_map<int32_t, int64_t> waits;  // suppkey -> numwait
  for (auto& [ok, lines] : by_order) {
    if (order_status[ok] != 'F') continue;
    for (const Lineitem* l1 : lines) {
      if (supp[l1->suppkey]->nationkey != saudi) continue;
      if (l1->receiptdate <= l1->commitdate) continue;
      bool exists_other = false, exists_other_late = false;
      for (const Lineitem* l2 : lines) {
        if (l2->suppkey == l1->suppkey) continue;
        exists_other = true;
        if (l2->receiptdate > l2->commitdate) exists_other_late = true;
      }
      if (exists_other && !exists_other_late) ++waits[l1->suppkey];
    }
  }
  std::vector<Row> out;
  for (auto& [sk, n] : waits) out.push_back({supp[sk]->name, n});
  return out;
}

QueryResult q21_merge(std::vector<Row> partials, const MergeContext&) {
  std::vector<Row> rows = merge_sum(partials, 1);
  sort_rows(rows, {{1, false}, {0, true}});
  truncate(rows, 100);
  return {{"s_name", "numwait"}, std::move(rows)};
}

// ---------------------------------------------------------------------------
// Q22 — global sales opportunity
// ---------------------------------------------------------------------------

const std::unordered_set<std::string>& q22_codes() {
  static const std::unordered_set<std::string> codes{"13", "31", "23", "29",
                                                     "30", "18", "17"};
  return codes;
}

std::vector<Row> q22_local(const TpchSlice& s) {
  // Candidate custkeys (target country codes) that DO have orders here.
  std::unordered_map<int32_t, std::string> code_of;
  for (const Customer& c : s.customer) {
    std::string code = c.phone.substr(0, 2);
    if (q22_codes().count(code)) code_of[c.custkey] = code;
  }
  std::unordered_set<int32_t> with_orders;
  for (const Order& o : s.orders)
    if (code_of.count(o.custkey)) with_orders.insert(o.custkey);
  std::vector<Row> out;
  out.reserve(with_orders.size());
  for (int32_t ck : with_orders) out.push_back({int64_t(ck)});
  return out;
}

QueryResult q22_merge(std::vector<Row> partials, const MergeContext& ctx) {
  std::unordered_set<int64_t> with_orders;
  for (const Row& r : partials) with_orders.insert(as_i64(r[0]));
  const TpchSlice& dims = *ctx.dims;
  double sum = 0;
  int64_t n = 0;
  for (const Customer& c : dims.customer) {
    if (!q22_codes().count(c.phone.substr(0, 2))) continue;
    if (c.acctbal > 0) {
      sum += c.acctbal;
      ++n;
    }
  }
  double avg = n ? sum / double(n) : 0;
  std::map<std::string, std::pair<int64_t, double>> groups;
  for (const Customer& c : dims.customer) {
    std::string code = c.phone.substr(0, 2);
    if (!q22_codes().count(code)) continue;
    if (c.acctbal <= avg || with_orders.count(c.custkey)) continue;
    auto& [cnt, bal] = groups[code];
    ++cnt;
    bal += c.acctbal;
  }
  std::vector<Row> rows;
  for (auto& [code, g] : groups)
    rows.push_back({code, g.first, g.second});
  sort_rows(rows, {{0, true}});
  return {{"cntrycode", "numcust", "totacctbal"}, std::move(rows)};
}

}  // namespace

const std::vector<Query>& all_queries() {
  static const std::vector<Query> queries = [] {
    std::vector<Query> qs;
    auto add = [&](int id, const char* name, auto local, auto merge,
                   bool small_partial, double cpu_factor) {
      qs.push_back(Query{id, name, local, merge, small_partial, cpu_factor});
    };
    add(1, "pricing summary report", q1_local, q1_merge, true, 1.2);
    add(2, "minimum cost supplier", q2_local, q2_merge, false, 0.6);
    add(3, "shipping priority", q3_local, q3_merge, false, 1.0);
    add(4, "order priority checking", q4_local, q4_merge, true, 1.0);
    add(5, "local supplier volume", q5_local, q5_merge, true, 1.2);
    add(6, "forecasting revenue change", q6_local, q6_merge, true, 0.7);
    add(7, "volume shipping", q7_local, q7_merge, true, 1.2);
    add(8, "national market share", q8_local, q8_merge, true, 1.3);
    add(9, "product type profit", q9_local, q9_merge, false, 1.6);
    add(10, "returned item reporting", q10_local, q10_merge, false, 1.2);
    add(11, "important stock", q11_local, q11_merge, false, 0.5);
    add(12, "shipping modes", q12_local, q12_merge, true, 1.0);
    add(13, "customer distribution", q13_local, q13_merge, false, 0.8);
    add(14, "promotion effect", q14_local, q14_merge, true, 0.9);
    add(15, "top supplier", q15_local, q15_merge, false, 0.9);
    add(16, "parts/supplier relationship", q16_local, q16_merge, false, 0.5);
    add(17, "small-quantity-order revenue", q17_local, q17_merge, false,
        0.9);
    add(18, "large volume customer", q18_local, q18_merge, false, 1.1);
    add(19, "discounted revenue", q19_local, q19_merge, true, 1.0);
    add(20, "potential part promotion", q20_local, q20_merge, false, 0.9);
    add(21, "suppliers who kept orders waiting", q21_local, q21_merge,
        false, 1.8);
    add(22, "global sales opportunity", q22_local, q22_merge, false, 0.7);
    return qs;
  }();
  return queries;
}

}  // namespace hatrpc::tpch
