#include "tpch/rows.h"

#include <algorithm>

namespace hatrpc::tpch {

namespace {
constexpr int8_t kTagI64 = 1;
constexpr int8_t kTagF64 = 2;
constexpr int8_t kTagStr = 3;
}  // namespace

std::vector<std::byte> serialize_rows(const std::vector<Row>& rows) {
  thrift::TMemoryBuffer buf;
  thrift::TBinaryProtocol p(buf);
  p.writeI32(static_cast<int32_t>(rows.size()));
  for (const Row& row : rows) {
    p.writeI32(static_cast<int32_t>(row.size()));
    for (const Value& v : row) {
      if (std::holds_alternative<int64_t>(v)) {
        p.writeByte(kTagI64);
        p.writeI64(std::get<int64_t>(v));
      } else if (std::holds_alternative<double>(v)) {
        p.writeByte(kTagF64);
        p.writeDouble(std::get<double>(v));
      } else {
        p.writeByte(kTagStr);
        p.writeString(std::get<std::string>(v));
      }
    }
  }
  return buf.take();
}

std::vector<Row> deserialize_rows(std::span<const std::byte> bytes) {
  thrift::TMemoryBuffer buf = thrift::TMemoryBuffer::wrap(bytes);
  thrift::TBinaryProtocol p(buf);
  int32_t n = p.readI32();
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    int32_t cols = p.readI32();
    Row row;
    row.reserve(static_cast<size_t>(cols));
    for (int32_t c = 0; c < cols; ++c) {
      switch (p.readByte()) {
        case kTagI64: row.emplace_back(p.readI64()); break;
        case kTagF64: row.emplace_back(p.readDouble()); break;
        case kTagStr: row.emplace_back(p.readString()); break;
        default:
          throw thrift::TProtocolException(
              thrift::TProtocolException::Kind::kInvalidData, "bad row tag");
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string group_key(const Row& row, std::initializer_list<int> cols) {
  std::string key;
  for (int c : cols) {
    const Value& v = row[static_cast<size_t>(c)];
    if (std::holds_alternative<int64_t>(v)) {
      key += std::to_string(std::get<int64_t>(v));
    } else if (std::holds_alternative<double>(v)) {
      key += std::to_string(std::get<double>(v));
    } else {
      key += std::get<std::string>(v);
    }
    key += '\x1f';
  }
  return key;
}

void sort_rows(std::vector<Row>& rows,
               std::initializer_list<std::pair<int, bool>> spec) {
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const Row& a, const Row& b) {
    for (auto [col, asc] : spec) {
      const Value& x = a[static_cast<size_t>(col)];
      const Value& y = b[static_cast<size_t>(col)];
      if (x == y) continue;
      bool lt;
      if (std::holds_alternative<std::string>(x)) {
        lt = std::get<std::string>(x) < std::get<std::string>(y);
      } else {
        double dx = std::holds_alternative<int64_t>(x)
                        ? double(std::get<int64_t>(x))
                        : std::get<double>(x);
        double dy = std::holds_alternative<int64_t>(y)
                        ? double(std::get<int64_t>(y))
                        : std::get<double>(y);
        if (dx == dy) continue;
        lt = dx < dy;
      }
      return asc ? lt : !lt;
    }
    return false;
  });
}

}  // namespace hatrpc::tpch
