// Generic rows exchanged between workers and the coordinator, with Thrift
// binary (de)serialization — partial results are real serialized payloads
// moving through the RPC layer.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "thrift/protocol.h"

namespace hatrpc::tpch {

using Value = std::variant<int64_t, double, std::string>;
using Row = std::vector<Value>;

inline int64_t as_i64(const Value& v) { return std::get<int64_t>(v); }
inline double as_f64(const Value& v) { return std::get<double>(v); }
inline const std::string& as_str(const Value& v) {
  return std::get<std::string>(v);
}

/// Serializes rows as: i32 row-count, then per row a tagged value list.
std::vector<std::byte> serialize_rows(const std::vector<Row>& rows);
std::vector<Row> deserialize_rows(std::span<const std::byte> bytes);

/// Hash key over a subset of columns (group-by re-aggregation at merge).
std::string group_key(const Row& row, std::initializer_list<int> cols);

/// Orders rows by the given (column, ascending) pairs; numeric columns
/// compare numerically, strings lexicographically.
void sort_rows(std::vector<Row>& rows,
               std::initializer_list<std::pair<int, bool>> spec);

inline void truncate(std::vector<Row>& rows, size_t k) {
  if (rows.size() > k) rows.resize(k);
}

}  // namespace hatrpc::tpch
