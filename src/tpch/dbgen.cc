// dbgen-style deterministic data generator. Follows the TPC-H column
// domains (nation/region catalog, brand/type/container vocabularies, date
// ranges, price formulas) at a configurable scale factor.
#include <array>
#include <cstdio>

#include "sim/rng.h"
#include "tpch/schema.h"

namespace hatrpc::tpch {

Date add_months(Date d, int months) {
  int y = d / 10000, m = (d / 100) % 100, day = d % 100;
  int total = y * 12 + (m - 1) + months;
  y = total / 12;
  m = total % 12 + 1;
  return make_date(y, m, day);
}

Date add_days(Date d, int days) {
  int y = d / 10000, m = (d / 100) % 100, day = d % 100;
  int total = (y * 12 + (m - 1)) * 28 + (day - 1) + days;
  y = total / (12 * 28);
  int rem = total % (12 * 28);
  return make_date(y, rem / 28 + 1, rem % 28 + 1);
}

namespace {

using sim::Rng;

constexpr std::array<std::pair<const char*, int>, 25> kNations{{
    {"ALGERIA", 0},   {"ARGENTINA", 1}, {"BRAZIL", 1},    {"CANADA", 1},
    {"EGYPT", 4},     {"ETHIOPIA", 0},  {"FRANCE", 3},    {"GERMANY", 3},
    {"INDIA", 2},     {"INDONESIA", 2}, {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},     {"JORDAN", 4},    {"KENYA", 0},     {"MOROCCO", 0},
    {"MOZAMBIQUE", 0},{"PERU", 1},      {"CHINA", 2},     {"ROMANIA", 3},
    {"SAUDI ARABIA", 4}, {"VIETNAM", 2},{"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1},
}};

constexpr std::array<const char*, 5> kRegions{"AFRICA", "AMERICA", "ASIA",
                                              "EUROPE", "MIDDLE EAST"};

constexpr std::array<const char*, 6> kTypes1{"STANDARD", "SMALL", "MEDIUM",
                                             "LARGE", "ECONOMY", "PROMO"};
constexpr std::array<const char*, 5> kTypes2{"ANODIZED", "BURNISHED",
                                             "PLATED", "POLISHED", "BRUSHED"};
constexpr std::array<const char*, 5> kTypes3{"TIN", "NICKEL", "BRASS",
                                             "STEEL", "COPPER"};
constexpr std::array<const char*, 5> kContainers1{"SM", "LG", "MED", "JUMBO",
                                                  "WRAP"};
constexpr std::array<const char*, 8> kContainers2{
    "CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"};
constexpr std::array<const char*, 7> kShipmodes{"REG AIR", "AIR",  "RAIL",
                                                "SHIP",    "TRUCK", "MAIL",
                                                "FOB"};
constexpr std::array<const char*, 5> kPriorities{"1-URGENT", "2-HIGH",
                                                 "3-MEDIUM", "4-NOT SPECIFIED",
                                                 "5-LOW"};
constexpr std::array<const char*, 5> kSegments{"AUTOMOBILE", "BUILDING",
                                               "FURNITURE", "MACHINERY",
                                               "HOUSEHOLD"};
constexpr std::array<const char*, 6> kPartNameWords{"almond", "antique",
                                                    "green", "metallic",
                                                    "misty", "forest"};

std::string pick(Rng& rng, const auto& arr) {
  return arr[rng.bounded(arr.size())];
}

/// Random order/ship dates in [1992-01-01, 1998-08-02] (TPC-H range).
Date random_date(Rng& rng, int min_year = 1992, int max_year = 1998) {
  int y = static_cast<int>(rng.uniform(min_year, max_year));
  int m = static_cast<int>(rng.uniform(1, 12));
  int d = static_cast<int>(rng.uniform(1, 28));
  return make_date(y, m, d);
}

std::string phone(Rng& rng, int nationkey) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%02d-%03d-%03d-%04d", 10 + nationkey,
                int(rng.uniform(100, 999)), int(rng.uniform(100, 999)),
                int(rng.uniform(1000, 9999)));
  return buf;
}

std::string comment(Rng& rng) {
  static constexpr std::array<const char*, 10> words{
      "carefully", "quickly", "furiously", "deposits", "packages",
      "requests",  "accounts", "ideas",    "pending",  "express"};
  std::string out;
  int n = static_cast<int>(rng.uniform(2, 5));
  for (int i = 0; i < n; ++i) {
    if (i) out += ' ';
    out += pick(rng, words);
  }
  // Q13's filter: a slice of orders must mention "special ... requests".
  if (rng.chance(0.02)) out += " special requests";
  return out;
}

}  // namespace

std::vector<TpchSlice> dbgen(const DbgenConfig& cfg, int workers) {
  Rng rng(cfg.seed);
  const double sf = cfg.scale_factor;
  const int32_t n_supplier = std::max<int32_t>(10, int32_t(10000 * sf));
  const int32_t n_customer = std::max<int32_t>(30, int32_t(150000 * sf));
  const int32_t n_part = std::max<int32_t>(20, int32_t(200000 * sf));
  const int32_t n_orders = std::max<int32_t>(50, int32_t(1500000 * sf));

  std::vector<TpchSlice> slices(static_cast<size_t>(workers));

  // --- replicated dimensions -------------------------------------------------
  TpchSlice shared;
  for (size_t r = 0; r < kRegions.size(); ++r)
    shared.region.push_back({int32_t(r), kRegions[r]});
  for (size_t n = 0; n < kNations.size(); ++n)
    shared.nation.push_back(
        {int32_t(n), kNations[n].first, kNations[n].second});

  for (int32_t s = 1; s <= n_supplier; ++s) {
    int32_t nk = int32_t(rng.bounded(25));
    char name[32];
    std::snprintf(name, sizeof name, "Supplier#%09d", s);
    std::string scomment = comment(rng);
    if (rng.chance(0.02)) scomment += " Customer Complaints";  // Q16 filter
    shared.supplier.push_back({s, name, "addr", nk, phone(rng, nk),
                               rng.uniform01() * 11000 - 1000,
                               std::move(scomment)});
  }
  for (int32_t c = 1; c <= n_customer; ++c) {
    int32_t nk = int32_t(rng.bounded(25));
    char name[32];
    std::snprintf(name, sizeof name, "Customer#%09d", c);
    shared.customer.push_back({c, name, "addr", nk, phone(rng, nk),
                               rng.uniform01() * 10999.99 - 999.99,
                               pick(rng, kSegments), comment(rng)});
  }
  for (int32_t p = 1; p <= n_part; ++p) {
    std::string type = pick(rng, kTypes1);
    type += ' ';
    type += pick(rng, kTypes2);
    type += ' ';
    type += pick(rng, kTypes3);
    char brand[16];
    std::snprintf(brand, sizeof brand, "Brand#%d%d",
                  int(rng.uniform(1, 5)), int(rng.uniform(1, 5)));
    std::string cont = pick(rng, kContainers1);
    cont += ' ';
    cont += pick(rng, kContainers2);
    std::string pname = pick(rng, kPartNameWords);
    pname += ' ';
    pname += pick(rng, kPartNameWords);
    shared.part.push_back({p, pname, "Manufacturer#" +
                               std::to_string(rng.uniform(1, 5)),
                           brand, type, int32_t(rng.uniform(1, 50)), cont,
                           900.0 + p % 1000});
    for (int ps = 0; ps < 4; ++ps) {
      int32_t sk = int32_t(1 + (p + ps * (n_supplier / 4 + 1)) % n_supplier);
      shared.partsupp.push_back({p, sk, int32_t(rng.uniform(1, 9999)),
                                 rng.uniform01() * 1000.0 + 1.0});
    }
  }
  for (size_t w = 0; w < slices.size(); ++w) {
    auto& slice = slices[w];
    slice.worker_id = static_cast<int>(w);
    slice.workers = workers;
    slice.region = shared.region;
    slice.nation = shared.nation;
    slice.supplier = shared.supplier;
    slice.customer = shared.customer;
    slice.part = shared.part;
    slice.partsupp = shared.partsupp;
  }

  // --- partitioned facts -------------------------------------------------------
  for (int32_t o = 1; o <= n_orders; ++o) {
    auto& slice = slices[static_cast<size_t>(o) % slices.size()];
    Order ord;
    ord.orderkey = o;
    ord.custkey = int32_t(1 + rng.bounded(uint64_t(n_customer)));
    ord.totalprice = 0;
    ord.orderdate = random_date(rng, 1992, 1998);
    ord.orderpriority = pick(rng, kPriorities);
    char clerk[24];
    std::snprintf(clerk, sizeof clerk, "Clerk#%09d",
                  int(rng.uniform(1, std::max(1, int(1000 * sf)))));
    ord.clerk = clerk;
    ord.shippriority = 0;
    ord.comment = comment(rng);

    int nlines = static_cast<int>(rng.uniform(1, 7));
    int finished = 0;
    for (int l = 1; l <= nlines; ++l) {
      Lineitem li;
      li.orderkey = o;
      li.partkey = int32_t(1 + rng.bounded(uint64_t(n_part)));
      li.suppkey = int32_t(1 + rng.bounded(uint64_t(n_supplier)));
      li.linenumber = l;
      li.quantity = double(rng.uniform(1, 50));
      li.extendedprice =
          li.quantity * (900.0 + double(li.partkey % 1000));
      li.discount = double(rng.uniform(0, 10)) / 100.0;
      li.tax = double(rng.uniform(0, 8)) / 100.0;
      li.shipdate = add_days(ord.orderdate, int(rng.uniform(1, 121)));
      li.commitdate = add_days(ord.orderdate, int(rng.uniform(30, 90)));
      li.receiptdate = add_days(li.shipdate, int(rng.uniform(1, 30)));
      li.shipinstruct =
          rng.chance(0.25) ? "DELIVER IN PERSON" : "NONE";
      li.shipmode = pick(rng, kShipmodes);
      if (li.receiptdate <= make_date(1998, 8, 2) && rng.chance(0.9)) {
        li.linestatus = 'F';
        li.returnflag = rng.chance(0.25) ? 'R' : (rng.chance(0.5) ? 'A' : 'N');
        ++finished;
      } else {
        li.linestatus = 'O';
        li.returnflag = 'N';
      }
      ord.totalprice += li.extendedprice * (1 - li.discount) * (1 + li.tax);
      slice.lineitem.push_back(std::move(li));
    }
    ord.orderstatus = finished == nlines ? 'F' : (finished == 0 ? 'O' : 'P');
    slice.orders.push_back(std::move(ord));
  }
  return slices;
}

}  // namespace hatrpc::tpch
