// TPC-H schema: the eight tables, with the columns the 22 queries touch.
// Dates are encoded as int32 yyyymmdd (comparisons and +N-months interval
// arithmetic stay trivial); money values are doubles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hatrpc::tpch {

using Date = int32_t;  // yyyymmdd

constexpr Date make_date(int y, int m, int d) { return y * 10000 + m * 100 + d; }
Date add_months(Date d, int months);
inline Date add_years(Date d, int years) { return d + years * 10000; }

/// Day arithmetic over the generator's uniform 28-day-month calendar (all
/// generated dates use days 1..28, so this is closed and order-preserving
/// against real-calendar constants in query predicates).
Date add_days(Date d, int days);

struct Region {
  int32_t regionkey;
  std::string name;
};

struct Nation {
  int32_t nationkey;
  std::string name;
  int32_t regionkey;
};

struct Supplier {
  int32_t suppkey;
  std::string name;
  std::string address;
  int32_t nationkey;
  std::string phone;
  double acctbal;
  std::string comment;
};

struct Customer {
  int32_t custkey;
  std::string name;
  std::string address;
  int32_t nationkey;
  std::string phone;
  double acctbal;
  std::string mktsegment;
  std::string comment;
};

struct Part {
  int32_t partkey;
  std::string name;
  std::string mfgr;
  std::string brand;
  std::string type;
  int32_t size;
  std::string container;
  double retailprice;
};

struct PartSupp {
  int32_t partkey;
  int32_t suppkey;
  int32_t availqty;
  double supplycost;
};

struct Order {
  int32_t orderkey;
  int32_t custkey;
  char orderstatus;
  double totalprice;
  Date orderdate;
  std::string orderpriority;
  std::string clerk;
  int32_t shippriority;
  std::string comment;
};

struct Lineitem {
  int32_t orderkey;
  int32_t partkey;
  int32_t suppkey;
  int32_t linenumber;
  double quantity;
  double extendedprice;
  double discount;
  double tax;
  char returnflag;
  char linestatus;
  Date shipdate;
  Date commitdate;
  Date receiptdate;
  std::string shipinstruct;
  std::string shipmode;
};

/// One node's slice of the database. `lineitem` and `orders` are
/// partitioned by orderkey (co-partitioned, so order-lineitem joins are
/// local); the remaining tables are replicated on every worker, mirroring
/// a standard shared-nothing TPC-H layout.
struct TpchSlice {
  std::vector<Region> region;
  std::vector<Nation> nation;
  std::vector<Supplier> supplier;
  std::vector<Customer> customer;
  std::vector<Part> part;
  std::vector<PartSupp> partsupp;
  std::vector<Order> orders;       // partitioned
  std::vector<Lineitem> lineitem;  // partitioned

  int worker_id = 0;  // this slice's index (replicated-table partitioning)
  int workers = 1;

  /// Total rows in the partitioned tables (CPU-cost accounting).
  size_t fact_rows() const { return orders.size() + lineitem.size(); }
};

struct DbgenConfig {
  double scale_factor = 0.01;  // SF1 = 6M lineitems; keep laptop-scale
  uint64_t seed = 20211114;    // SC'21 :-)
};

/// Generates the full database and partitions it across `workers` slices.
std::vector<TpchSlice> dbgen(const DbgenConfig& cfg, int workers);

}  // namespace hatrpc::tpch
