// The 22 TPC-H queries as distributed two-phase plans:
//   * local(slice): each worker evaluates its partition (orders/lineitem
//     are partitioned by orderkey and co-located; dimension tables are
//     replicated, so every join is local) and returns PARTIAL rows;
//   * merge(partials, ctx): the coordinator re-aggregates / sorts / limits
//     the gathered partials into the final answer. ctx.dims gives the
//     coordinator its own replica of the dimension tables (Q13/Q20/Q22
//     need customer counts / partsupp / customer attributes at merge time).
//
// Queries keep the standard TPC-H parameters (validation parameter set).
#pragma once

#include <functional>

#include "tpch/rows.h"
#include "tpch/schema.h"

namespace hatrpc::tpch {

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
};

struct MergeContext {
  const TpchSlice* dims = nullptr;  // coordinator's replicated dimensions
};

struct Query {
  int id;
  const char* name;
  std::function<std::vector<Row>(const TpchSlice&)> local;
  std::function<QueryResult(std::vector<Row>, const MergeContext&)> merge;
  /// Partial-result class, used to derive the HatRPC-Function hints:
  /// small partials suit latency plans, large ones throughput plans.
  bool small_partial;
  /// Relative local CPU weight (passes over the fact tables).
  double cpu_factor;
};

/// All 22 queries, in order.
const std::vector<Query>& all_queries();

}  // namespace hatrpc::tpch
