// The distributed TPC-H deployment of §5.5: one coordinator + N workers on
// the simulated cluster, with per-worker HatRPC servers exposing one RPC
// method per query ("Q1".."Q22"). Three transport configurations reproduce
// Fig. 17's bars:
//   * kThriftIpoib  — every method hinted transport=tcp (vanilla Thrift
//     over IPoIB);
//   * kHatService   — service-level hints only (perf_goal, concurrency):
//     no payload knowledge, so the engine keeps the conservative adaptive
//     protocol;
//   * kHatFunction  — per-query function-level hints: payload sizes
//     calibrated from the data, latency goals for small-partial queries,
//     and NUMA binding — the engine right-sizes pre-known-buffer protocols
//     per query.
#pragma once

#include <memory>

#include "core/engine.h"
#include "tpch/queries.h"

namespace hatrpc::tpch {

enum class TpchMode { kThriftIpoib, kHatService, kHatFunction };

std::string_view to_string(TpchMode m);

class TpchCluster {
 public:
  TpchCluster(sim::Simulator& sim, int workers, DbgenConfig dbcfg,
              TpchMode mode);
  ~TpchCluster();

  /// Runs query `qid` (1..22): fans the request out to all workers,
  /// gathers the partial results, merges on the coordinator. Returns the
  /// final rows; elapsed virtual time is in last_elapsed().
  sim::Task<QueryResult> run_query(int qid);

  sim::Duration last_elapsed() const { return last_elapsed_; }
  uint64_t last_partial_bytes() const { return last_partial_bytes_; }
  int workers() const { return static_cast<int>(workers_.size()); }
  TpchMode mode() const { return mode_; }

  void stop();

 private:
  struct WorkerRt;
  hint::ServiceHints build_hints() const;
  static std::string method_name(int qid);

  sim::Simulator& sim_;
  TpchMode mode_;
  verbs::Fabric fabric_;
  thrift::SocketNet net_;
  verbs::Node* coordinator_;
  TpchSlice dims_;  // coordinator's replica of the dimension tables
  std::vector<std::unique_ptr<WorkerRt>> workers_;
  /// Measured typical partial sizes per query (bytes), used to derive the
  /// kHatFunction payload hints — the "user pre-knowledge" of §4.4.
  std::vector<uint64_t> partial_size_hint_;
  sim::Duration last_elapsed_{};
  uint64_t last_partial_bytes_ = 0;
  bool stopped_ = false;
};

}  // namespace hatrpc::tpch
