// HatKV server runtime: the generated HatKV handler implemented over
// mdblite, with the backend tuned by hints (paper §4.4):
//   * max readers <- the service's concurrency hint (mdblite reader table);
//   * synchronous vs grouped commits <- the function's perf goal (latency
//     functions pay the commit I/O inline; throughput/res_util functions
//     batch it off the critical path);
//   * per-page CPU/I/O costs are charged to the server node so storage
//     work competes with communication for the same cores.
#pragma once

#include <memory>

#include "core/engine.h"
#include "hatkv_gen.h"
#include "kv/mdblite.h"

namespace hatrpc::kv {

struct HatKVConfig {
  /// Derived from the concurrency hint when constructed via from_hints().
  uint32_t max_readers = 126;
  /// Latency-pinned functions commit synchronously; others group-commit.
  bool sync_commits = false;
  /// Cost model for storage work (charged on the server node's CPU).
  sim::Duration page_cpu = std::chrono::nanoseconds(40);    // per page touched
  sim::Duration commit_io = std::chrono::nanoseconds(2500); // per synced page
  sim::Duration op_fixed = std::chrono::nanoseconds(150);

  static HatKVConfig from_hints(const hint::ServiceHints& hints);
};

/// The storage-side handler bound into a HatServer's dispatcher.
class HatKVHandler : public hatkv::HatKVIf {
 public:
  HatKVHandler(verbs::Node& node, HatKVConfig cfg)
      : node_(node), cfg_(cfg),
        env_(EnvOptions{.page_size = 4096, .max_readers = cfg.max_readers}),
        readers_(node.fabric().simulator(), cfg.max_readers),
        writer_(node.fabric().simulator(), 1) {}

  sim::Task<std::string> Get(const std::string& key) override;
  sim::Task<void> Put(const std::string& key,
                      const std::string& value) override;
  sim::Task<std::vector<std::string>> MultiGet(
      const std::vector<std::string>& keys) override;
  sim::Task<void> MultiPut(const std::vector<hatkv::KVPair>& pairs) override;

  Env& env() { return env_; }
  const HatKVConfig& config() const { return cfg_; }

 private:
  sim::Task<void> charge_pages(uint64_t pages);
  sim::Task<void> charge_commit(const CommitInfo& info);

  verbs::Node& node_;
  HatKVConfig cfg_;
  Env env_;
  // The reader semaphore makes an undersized reader table visible as
  // queueing delay instead of hard MDB_READERS_FULL errors.
  sim::Semaphore readers_;
  sim::Semaphore writer_;  // mdblite allows one writer at a time
};

/// Convenience: a fully wired HatKV server node (engine + handler).
class HatKVServer {
 public:
  HatKVServer(verbs::Node& node, core::EngineConfig engine_cfg,
              HatKVConfig kv_cfg)
      : server_(node, hatkv::HatKV_hints(), engine_cfg),
        handler_(node, kv_cfg) {
    hatkv::register_HatKV(server_.dispatcher(), handler_);
  }
  explicit HatKVServer(verbs::Node& node)
      : HatKVServer(node, {}, HatKVConfig::from_hints(hatkv::HatKV_hints())) {}

  core::HatServer& server() { return server_; }
  HatKVHandler& handler() { return handler_; }
  void stop() { server_.stop(); }

 private:
  core::HatServer server_;
  HatKVHandler handler_;
};

}  // namespace hatrpc::kv
