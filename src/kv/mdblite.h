// mdblite — an LMDB-style embedded B+-tree key-value store, built from
// scratch as the storage backend HatKV co-designs with (paper §4.4 uses
// LMDB; see DESIGN.md for the substitution notes).
//
// Reproduced LMDB semantics:
//   * copy-on-write B+-tree: writers never modify committed pages; a write
//     transaction shadows the root-to-leaf path it touches;
//   * dual meta pages: commit atomically publishes the new root by flipping
//     the newer meta, so crashes (or aborts) never corrupt readers;
//   * MVCC: read transactions pin the meta they started from and see a
//     stable snapshot while one writer proceeds concurrently;
//   * single writer / bounded readers: a reader-table of `max_readers`
//     slots (the knob HatKV tunes from the concurrency hint, §4.4);
//   * freelist with transaction-id tagging: shadowed pages are recycled
//     only once no live reader can still reference them;
//   * page-byte budgeting with page splits, borrow/merge rebalancing, and
//     overflow pages for values larger than a quarter page;
//   * cursors for ordered iteration.
//
// mdblite is pure (no simulator dependency): callers observe its cost via
// Stats (pages read/written per op) and charge simulated time themselves.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hatrpc::kv {

using PageId = uint64_t;
constexpr PageId kNoPage = ~PageId{0};

struct EnvOptions {
  size_t page_size = 4096;
  uint32_t max_readers = 126;  // LMDB's default reader-table size
};

struct EnvStats {
  uint64_t page_reads = 0;     // pages fetched on search paths
  uint64_t page_writes = 0;    // pages shadowed/written by commits
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t reclaimed = 0;      // freelist pages recycled
};

struct CommitInfo {
  uint64_t txn_id = 0;
  uint64_t pages_written = 0;  // dirty pages made durable by this commit
};

class Env;

/// A transaction. Move-only; aborts on destruction unless committed.
/// Read transactions may run concurrently (up to max_readers); at most one
/// write transaction exists at a time (Env::begin throws otherwise).
class Txn {
 public:
  Txn(Txn&&) noexcept;
  Txn& operator=(Txn&&) noexcept;
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;
  ~Txn();

  bool is_write() const { return write_; }
  uint64_t id() const { return txn_id_; }

  // Default (unnamed) database...
  std::optional<std::string> get(std::string_view key);
  void put(std::string_view key, std::string_view value);
  bool del(std::string_view key);
  size_t entry_count() const;

  // ...and named databases (LMDB's mdb_dbi_open): each name is its own
  // B+-tree; all trees commit atomically through the same meta flip. A
  // named tree springs into existence on first put.
  std::optional<std::string> get(std::string_view db, std::string_view key);
  void put(std::string_view db, std::string_view key,
           std::string_view value);
  bool del(std::string_view db, std::string_view key);
  size_t entry_count(std::string_view db) const;

  /// Pages this transaction has touched so far (for cost charging).
  uint64_t pages_touched() const { return pages_touched_; }

  CommitInfo commit();
  void abort();

 private:
  friend class Env;
  friend class Cursor;
  struct Meta;
  Txn(Env& env, bool write, int reader_slot);

  struct DbState {
    PageId root = kNoPage;
    uint64_t entries = 0;
  };
  DbState& state(std::string_view db);
  const DbState* state_if_exists(std::string_view db) const;

  struct Page* readable(PageId id);
  struct Page* shadow(PageId id);  // COW for the write path
  void finish();

  std::optional<std::string> get_in(DbState& st, std::string_view key);
  void put_in(DbState& st, std::string_view key, std::string_view value);
  bool del_in(DbState& st, std::string_view key);

  Env* env_ = nullptr;
  bool write_ = false;
  bool done_ = false;
  int reader_slot_ = -1;
  uint64_t txn_id_ = 0;
  std::map<std::string, DbState> dbs_;  // "" = the default database
  uint64_t pages_touched_ = 0;
  std::vector<PageId> dirty_;  // pages allocated by this txn
  std::vector<PageId> freed_;  // pages shadowed (released on commit)
};

/// Ordered forward iteration over a snapshot (default or named database).
class Cursor {
 public:
  explicit Cursor(Txn& txn) : Cursor(txn, "") {}
  Cursor(Txn& txn, std::string_view db);

  bool first();
  bool seek(std::string_view key);  // >= key
  bool next();
  bool valid() const { return valid_; }
  const std::string& key() const;
  const std::string& value() const;

 private:
  void descend_left(PageId id);
  Txn& txn_;
  PageId root_;
  struct Frame {
    PageId page;
    size_t index;
  };
  std::vector<Frame> stack_;
  bool valid_ = false;
  mutable std::string value_cache_;
};

class Env {
 public:
  explicit Env(EnvOptions opts);
  Env() : Env(EnvOptions{}) {}
  ~Env();
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  /// Begins a transaction. Throws std::runtime_error if a write txn is
  /// already active (write) or the reader table is full (read) — callers
  /// (HatKV) queue externally, which is how the concurrency hint shows up.
  Txn begin(bool write);

  uint32_t max_readers() const { return opts_.max_readers; }
  uint32_t active_readers() const { return active_readers_; }
  const EnvStats& stats() const { return stats_; }
  size_t page_count() const { return pages_.size(); }
  size_t live_pages() const;
  uint64_t last_txn_id() const;

 private:
  friend class Txn;
  friend class Cursor;
  struct MetaPage {
    std::map<std::string, Txn::DbState> dbs;
    uint64_t txn_id = 0;
  };

  Page* page(PageId id);
  Page* alloc_page(bool leaf, uint64_t txn_id);
  void free_page(PageId id, uint64_t txn_id);
  void reclaim();
  uint64_t oldest_reader_txn() const;

  EnvOptions opts_;
  std::vector<std::unique_ptr<Page>> pages_;
  MetaPage metas_[2];
  int newest_meta_ = 0;
  bool writer_active_ = false;
  uint32_t active_readers_ = 0;
  std::vector<uint64_t> reader_txns_;  // reader table (slot -> txn id)
  struct FreedPage {
    PageId id;
    uint64_t txn_id;
  };
  std::vector<FreedPage> freelist_;
  std::vector<PageId> reusable_;
  EnvStats stats_;
};

}  // namespace hatrpc::kv
