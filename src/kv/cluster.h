// Cluster-scale HatKV (DESIGN.md §11): consistent-hash sharding, chain
// replication with version-stamped records, Storm-style one-sided reads
// with torn/stale validation, and client-driven failover.
//
//   * ShardMap — the key→shard routing table plus each shard's replica
//     chain [head..tail]. The directory distributes it to clients through
//     the hint map (hint::Key::kShardMap), the same channel the paper uses
//     for protocol hints; clients re-fetch it after reporting a failure.
//   * ShardHandler/ShardReplica — one replica of one shard: a HatShard
//     service over its own mdblite environment. Records carry a per-shard
//     monotonic version; Put at the head assigns the version, applies
//     locally, and forwards down the chain before acking, so an ack means
//     every live replica holds the write. A per-replica applied-op cache
//     keyed by (client_id, seq) makes Put idempotent across failover
//     replays (the cross-channel analogue of ReliableChannel's seq dedupe).
//   * ReadView/ReadViewClient — each replica exports a registered bucket
//     region; GETs are served by one RDMA READ of the key's slot. Slots
//     are framed by duplicated version words written non-atomically, so a
//     concurrent READ can observe a torn slot (head != tail) and falls
//     back to the RPC path; a version below the client's acked floor is
//     stale (the read raced a failover) and falls back too.
//   * Cluster — the control plane: authoritative map, failure reports,
//     epoch bumps, chain re-wiring, and crash-recovery (a restarted node
//     rejoins each of its shards as the tail after draining a resync
//     stream from the head).
//   * ClusterClient — per-client-node routing: resolves the shard map from
//     the hints, keeps one ReliableChannel per (shard, head replica),
//     detects replica death via timeouts/kRetryExcErr-class errors,
//     reports it, re-resolves the map, and replays the in-flight op
//     against the surviving replica under the same (client_id, seq).
#pragma once

#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster_gen.h"
#include "core/engine.h"
#include "kv/hatkv.h"
#include "kv/mdblite.h"
#include "proto/reliable.h"
#include "verbs/endpoint.h"

namespace hatrpc::kv {

inline uint64_t fnv1a64(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Avalanche finalizer (splitmix64). Plain FNV-1a leaves the last few input
/// bytes almost no influence over the HIGH bits of the hash, and ring order
/// compares high bits first — sequential keys ("user0".."user3999") would
/// collapse onto a handful of ring arcs no matter how many vnodes the map
/// uses. Every ring placement and lookup must go through this.
inline uint64_t mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// ---------------------------------------------------------------------------
// ShardMap

struct ShardMap {
  struct Replica {
    uint32_t node = 0;         // verbs node id hosting the replica
    uint64_t incarnation = 0;  // bumped every time the node restarts
    bool operator==(const Replica&) const = default;
  };
  struct Shard {
    std::vector<Replica> chain;  // [head .. tail]; empty = unavailable
  };

  uint64_t epoch = 0;
  uint32_t vnodes = 16;  // ring points per shard
  std::vector<Shard> shards;

  /// Consistent-hash lookup: first ring point at or after the key's hash.
  uint32_t shard_of(std::string_view key) const;

  /// (Re)builds the ring from shards.size() and vnodes. Must be called
  /// after changing either; decode() does it automatically.
  void build_ring();

  /// Deterministic text form, small enough to ride in a hint value.
  std::string encode() const;
  static ShardMap decode(std::string_view s);

 private:
  std::vector<std::pair<uint64_t, uint32_t>> ring_;  // (point, shard), sorted
};

// ---------------------------------------------------------------------------
// One-sided read view (Storm-style version-validated READ path)

/// A record fetched through the one-sided path.
struct ViewRecord {
  std::string value;
  uint64_t version = 0;
};

/// Server side: a registered region of hash-bucket slots the replica
/// publishes committed records into. Slot layout:
///   [u64 head_version][u32 key_len][u32 val_len]
///   [key bytes, kKeyMax][value bytes, kValMax][u64 tail_version]
/// The two version words are written first and last with CPU work in
/// between, so a concurrent remote READ can snapshot head != tail — the
/// torn window one-sided readers must validate against.
class ReadView {
 public:
  static constexpr uint32_t kBuckets = 1024;
  static constexpr uint32_t kKeyMax = 64;
  static constexpr uint32_t kValMax = 1152;
  static constexpr uint32_t kSlotBytes = 8 + 4 + 4 + kKeyMax + kValMax + 8;

  explicit ReadView(verbs::Node& node)
      : node_(node), mr_(node.pd().alloc_mr(kBuckets * kSlotBytes)) {
    std::memset(mr_->data(), 0, mr_->size());
  }

  static uint32_t bucket_of(std::string_view key) {
    return static_cast<uint32_t>(fnv1a64(key) % kBuckets);
  }

  verbs::RemoteAddr base_remote() const { return mr_->remote(0); }
  verbs::MemoryRegion* mr() { return mr_; }

  /// Publishes a committed record into its bucket (last writer wins on
  /// bucket collisions — colliding keys simply miss and use RPC).
  sim::Task<void> publish(std::string_view key, std::string_view value,
                          uint64_t version);

 private:
  verbs::Node& node_;
  verbs::MemoryRegion* mr_;
};

/// Client side: one connected QP pair + a scratch slot per (client,
/// replica). read() issues one RDMA READ of the key's bucket and validates
/// the snapshot; returns nullopt on miss / torn slot / foreign key, and
/// throws RpcError on transport failure (the failover trigger).
class ReadViewClient {
 public:
  ReadViewClient(verbs::Node& client, verbs::Node& server,
                 verbs::RemoteAddr base);

  sim::Task<std::optional<ViewRecord>> read(std::string_view key);

 private:
  verbs::Endpoint cl_;
  verbs::Endpoint sv_;
  verbs::MemoryRegion* scratch_;
  verbs::RemoteAddr base_;
  sim::Simulator* rc_sim_;
  uint64_t next_wr_ = 1;
};

// ---------------------------------------------------------------------------
// Shard replica (server side)

/// One replica of one shard: the generated HatShard service over its own
/// mdblite environment, records stamped [u64 version][payload], plus the
/// applied-op cache ("applied" named db) that makes Put replays idempotent
/// across failovers. Forwards applied records down the chain.
class ShardHandler : public hatshard::HatShardIf {
 public:
  struct ChainLink {
    uint32_t node = 0;
    uint64_t incarnation = 0;
    hatshard::HatShardClient* stub = nullptr;  // owned by the Cluster
  };

  ShardHandler(verbs::Node& node, uint32_t shard_id, HatKVConfig cfg)
      : node_(node), shard_(shard_id), cfg_(cfg),
        env_(EnvOptions{.page_size = 4096, .max_readers = cfg.max_readers}),
        readers_(node.fabric().simulator(), cfg.max_readers),
        writer_(node.fabric().simulator(), 1), view_(node) {}

  sim::Task<hatshard::VersionedValue> Get(const std::string& key) override;
  sim::Task<int64_t> Put(const std::string& key, const std::string& value,
                         int64_t client_id, int64_t seq) override;
  sim::Task<int64_t> Replicate(const std::string& key,
                               const std::string& value, int64_t version,
                               int64_t client_id, int64_t seq) override;

  /// Replicas strictly downstream of this one in chain order (the Cluster
  /// rewires these on every membership change). forward() tries them in
  /// order and skips dead ones, so a mid-chain crash doesn't wedge writes.
  void set_downstream(std::vector<ChainLink> links) {
    downstream_ = std::move(links);
  }
  /// Server-side failure detection: invoked (not awaited) when a chain
  /// forward hits a dead peer, so the directory converges without waiting
  /// for a client report.
  void set_peer_down(std::function<void(uint32_t, uint64_t)> cb) {
    peer_down_ = std::move(cb);
  }
  /// Fencing: once the directory removes this replica from its chain, it
  /// must refuse every op. Without this a client holding a stale map can
  /// reconnect to a RESTARTED node, reach the old handler, and get writes
  /// solo-acked into state nobody will ever read (the deposed-head
  /// problem classic chain replication solves with config epochs).
  void depose() {
    deposed_ = true;
    peer_down_ = nullptr;  // a zombie must not file failure reports
  }
  bool deposed() const { return deposed_; }

  ReadView& view() { return view_; }
  uint32_t shard() const { return shard_; }

  /// Streams every record of this replica's snapshot to a rejoining tail
  /// (client_id 0 = resync: version-guarded apply, no dedupe entry).
  sim::Task<uint64_t> resync_to(hatshard::HatShardClient& stub);

  /// Synchronous snapshot read for white-box verification (no costs).
  std::optional<ViewRecord> peek(const std::string& key);
  uint64_t applied_ops() const { return applied_ops_; }
  uint64_t replays() const { return replays_; }
  uint64_t version_counter() const { return next_version_; }

 private:
  static std::string encode_record(uint64_t version, std::string_view value);
  static ViewRecord decode_record(std::string_view raw);
  static std::string op_key(int64_t client_id, int64_t seq);

  /// Version-guarded local apply + view publish + dedupe bookkeeping.
  /// Caller holds the writer semaphore.
  sim::Task<void> apply(const std::string& key, const std::string& value,
                        uint64_t version, int64_t client_id, int64_t seq);
  /// Forwards down the chain to the first live successor.
  sim::Task<void> forward(const std::string& key, const std::string& value,
                          uint64_t version, int64_t client_id, int64_t seq);
  sim::Task<void> charge_pages(uint64_t pages);
  sim::Task<void> charge_commit(const CommitInfo& info);
  /// Applied-op cache lookup; nullopt when (client_id, seq) is unseen.
  std::optional<uint64_t> applied_version(int64_t client_id, int64_t seq);

  verbs::Node& node_;
  uint32_t shard_;
  HatKVConfig cfg_;
  Env env_;
  sim::Semaphore readers_;
  sim::Semaphore writer_;
  ReadView view_;
  std::vector<ChainLink> downstream_;
  std::function<void(uint32_t, uint64_t)> peer_down_;
  uint64_t next_version_ = 0;
  uint64_t applied_ops_ = 0;
  uint64_t replays_ = 0;
  bool deposed_ = false;
};

/// One replica's full server stack: engine + handler on a node. A node
/// hosts several of these (one per shard it serves).
class ShardReplica {
 public:
  ShardReplica(verbs::Node& node, uint32_t shard, uint64_t incarnation,
               HatKVConfig kv_cfg, core::EngineConfig engine_cfg)
      : node_(node), shard_(shard), incarnation_(incarnation),
        server_(node, hatshard::HatShard_hints(), engine_cfg),
        handler_(node, shard, kv_cfg) {
    hatshard::register_HatShard(server_.dispatcher(), handler_);
  }

  verbs::Node& node() { return node_; }
  uint32_t shard() const { return shard_; }
  uint64_t incarnation() const { return incarnation_; }
  core::HatServer& server() { return server_; }
  ShardHandler& handler() { return handler_; }
  void stop() { server_.stop(); }

 private:
  verbs::Node& node_;
  uint32_t shard_;
  uint64_t incarnation_;
  core::HatServer server_;
  ShardHandler handler_;
};

// ---------------------------------------------------------------------------
// Cluster (directory / control plane)

struct ClusterConfig {
  uint32_t shards = 8;
  uint32_t replication = 2;  // chain length per shard
  uint32_t vnodes = 16;
  core::EngineConfig engine{};  // replica servers + chain connections
  HatKVConfig storage{};
  /// Client→head channels: bounded per-attempt timeout plus a total
  /// deadline so failover detection is fast and tail latency bounded.
  proto::ProtocolKind client_protocol = proto::ProtocolKind::kDirectWriteImm;
  proto::ChannelConfig client_channel{};
  proto::RetryPolicy client_retry{};
  bool one_sided_reads = true;
  /// Modeled latency of one directory interaction (report/fetch).
  sim::Duration control_latency = std::chrono::microseconds(2);

  ClusterConfig() {
    client_channel.client_poll = sim::PollMode::kEvent;
    client_channel.server_poll = sim::PollMode::kEvent;
    client_channel.max_msg = 16 << 10;
    client_retry.max_attempts = 3;
    client_retry.timeout = std::chrono::microseconds(500);
    client_retry.total_deadline = std::chrono::milliseconds(3);
    engine.channel.client_poll = sim::PollMode::kEvent;
    engine.channel.server_poll = sim::PollMode::kEvent;
  }
};

class Cluster {
 public:
  /// Lays shard s's chain over nodes (s + rank) % nodes.size() and starts
  /// one ShardReplica per (shard, rank).
  Cluster(verbs::Fabric& fabric, std::vector<verbs::Node*> server_nodes,
          ClusterConfig cfg);

  const ClusterConfig& config() const { return cfg_; }
  const ShardMap& map() const { return map_; }
  uint64_t epoch() const { return map_.epoch; }
  sim::Simulator& simulator() { return sim_; }

  /// The service hints with the current shard map attached at service
  /// level under hint::Key::kShardMap — how clients learn the routing.
  hint::ServiceHints hints() const;

  // -- Control-plane interactions (each models control_latency of RPC) ----
  /// Client-driven failure report: ignored when stale (wrong incarnation
  /// or already handled); otherwise removes the replica from every chain,
  /// bumps the epoch, and rewires the survivors.
  sim::Task<void> report_down(uint32_t node_id, uint64_t incarnation);
  /// Re-fetches the routing table (decode(encode()) — the same bytes a
  /// hint re-resolution would carry).
  sim::Task<ShardMap> fetch_map();

  /// Server-side failure note from a chain forward (no client involved).
  void note_peer_down(uint32_t node_id, uint64_t incarnation);

  /// Rejoin after FaultPlan's kNodeRestart fired: bumps the node's
  /// incarnation, rebuilds its replicas with fresh state, appends each as
  /// its shard's tail, and drains a resync stream from each head.
  sim::Task<void> recover(uint32_t node_id);

  /// Live replica lookup (nullptr when the node lost this shard).
  ShardReplica* replica(uint32_t shard, uint32_t node_id);
  verbs::Node* node(uint32_t id) { return nodes_.at(id); }
  uint64_t incarnation(uint32_t node_id) const {
    return incarnation_.at(node_id);
  }
  uint64_t resynced_records() const { return resynced_; }

  void stop();

 private:
  void remove_from_chains(uint32_t node_id, uint64_t incarnation);
  /// Reinstalls every live replica's downstream links from the map.
  void rebuild_chains();
  hatshard::HatShardClient* chain_stub(uint32_t from_node, uint32_t shard,
                                       const ShardMap::Replica& to);
  sim::Task<void> down_task(uint32_t node_id, uint64_t incarnation);

  verbs::Fabric& fabric_;
  sim::Simulator& sim_;
  std::vector<verbs::Node*> nodes_;
  ClusterConfig cfg_;
  ShardMap map_;
  std::vector<uint64_t> incarnation_;
  std::vector<bool> down_;
  std::vector<std::vector<uint32_t>> placement_;  // shard -> hosting nodes
  struct ChainConn {
    std::unique_ptr<core::HatConnection> conn;
    std::unique_ptr<hatshard::HatShardClient> stub;
  };
  // Destroyed after the replicas below: HatServer teardown closes the
  // HatConnections it tracks, so the connection objects must still exist.
  std::map<std::tuple<uint32_t, uint32_t, uint32_t, uint64_t>, ChainConn>
      chains_;  // (from_node, shard, to_node, to_incarnation)
  std::map<std::pair<uint32_t, uint32_t>, std::unique_ptr<ShardReplica>>
      live_;  // (shard, node)
  std::vector<std::unique_ptr<ShardReplica>> graveyard_;
  uint64_t resynced_ = 0;
  bool stopped_ = false;
};

// ---------------------------------------------------------------------------
// Cluster client

/// HatCaller over a ReliableChannel: the thrift envelope + serialization
/// charges of the engine path, with the reliability layer's retry/
/// reconnect/deadline machinery underneath.
class ReliableCaller : public core::HatCaller {
 public:
  ReliableCaller(proto::ReliableChannel& ch, verbs::Node& client,
                 const core::EngineConfig& cfg)
      : ch_(ch), cpu_(client.cpu()), cfg_(cfg) {}

  sim::Task<core::Buffer> call(std::string method,
                               core::View payload) override;

 private:
  proto::ReliableChannel& ch_;
  sim::Cpu& cpu_;
  core::EngineConfig cfg_;
  int32_t seq_ = 0;
};

class ClusterClient {
 public:
  struct GetResult {
    std::string value;
    uint64_t version = 0;
    bool found = false;
    bool one_sided = false;
  };
  struct Stats {
    uint64_t ops = 0;
    uint64_t failovers = 0;
    uint64_t one_sided_reads = 0;
    uint64_t one_sided_fallbacks = 0;
    uint64_t map_refreshes = 0;
  };

  /// Resolves the shard map from the cluster's hint hierarchy (the same
  /// lookup any hint consumer performs).
  ClusterClient(verbs::Node& node, Cluster& cluster, uint64_t client_id);

  sim::Task<GetResult> Get(const std::string& key);
  /// Returns the committed version. Safe to replay: the (client_id, seq)
  /// identity rides to the shard's applied-op cache.
  sim::Task<uint64_t> Put(const std::string& key, const std::string& value);
  sim::Task<std::vector<GetResult>> MultiGet(
      const std::vector<std::string>& keys);
  sim::Task<std::vector<uint64_t>> MultiPut(
      const std::vector<std::pair<std::string, std::string>>& pairs);

  void close();

  const Stats& stats() const { return stats_; }
  const ShardMap& map() const { return map_; }
  uint64_t client_id() const { return client_id_; }

 private:
  struct Conn {
    std::unique_ptr<proto::ReliableChannel> ch;
    std::unique_ptr<ReliableCaller> caller;
    std::unique_ptr<hatshard::HatShardClient> stub;
  };
  using ReplicaKey = std::tuple<uint32_t, uint32_t, uint64_t>;

  /// Throws RpcError(kChannelClosed) when the map entry is stale (replica
  /// object gone) — callers treat that like any replica death.
  Conn& conn_to(uint32_t shard, const ShardMap::Replica& r);
  ReadViewClient& view_client(uint32_t shard, const ShardMap::Replica& r);
  sim::Task<void> failover(const ShardMap::Replica& dead);
  sim::Task<void> refresh_map();
  void drop_replica(const ShardMap::Replica& dead);
  uint64_t acked_floor(const std::string& key) const {
    auto it = acked_.find(key);
    return it == acked_.end() ? 0 : it->second;
  }

  verbs::Node& node_;
  Cluster& cluster_;
  uint64_t client_id_;
  ShardMap map_;
  std::map<ReplicaKey, Conn> conns_;
  std::map<ReplicaKey, std::unique_ptr<ReadViewClient>> views_;
  std::vector<Conn> retired_;  // aborted conns kept until teardown
  int64_t next_seq_ = 0;
  /// Session floor per key: highest version this client wrote or read.
  /// One-sided results below it are stale and fall back to RPC.
  std::unordered_map<std::string, uint64_t> acked_;
  Stats stats_;
  static constexpr int kMaxFailovers = 4;
};

}  // namespace hatrpc::kv
