#include "kv/mdblite.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace hatrpc::kv {

namespace {
constexpr size_t kPageHeader = 32;
constexpr size_t kCellHeader = 16;
constexpr const char* kWriterActive = "mdblite: writer already active";
constexpr const char* kReadersFull = "mdblite: reader table full";
}  // namespace

/// In-memory page. Cells are structured (keys/values vectors) with byte
/// accounting against the configured page size, which preserves LMDB's
/// split/merge/occupancy behaviour without byte-level cell packing.
struct Page {
  PageId id = 0;
  bool leaf = true;
  bool overflow = false;
  uint64_t born_txn = 0;
  std::vector<std::string> keys;
  std::vector<std::string> values;   // leaf only; parallel to keys
  std::vector<uint8_t> ovf_flags;    // leaf: values[i] is an overflow ref
  std::vector<PageId> children;      // branch only; keys.size() + 1
  std::string ovf_data;              // overflow page payload

  size_t used(size_t /*page_size*/) const {
    size_t bytes = 0;
    for (const auto& k : keys) bytes += k.size() + kCellHeader;
    if (leaf) {
      for (size_t i = 0; i < values.size(); ++i)
        bytes += ovf_flags[i] ? sizeof(PageId) : values[i].size();
    } else {
      bytes += children.size() * sizeof(PageId);
    }
    return bytes;
  }
};

namespace {

PageId decode_ovf(const std::string& v) {
  PageId id;
  std::memcpy(&id, v.data(), sizeof id);
  return id;
}

std::string encode_ovf(PageId id) {
  return std::string(reinterpret_cast<const char*>(&id), sizeof id);
}

}  // namespace

// ===========================================================================
// Env
// ===========================================================================

Env::Env(EnvOptions opts) : opts_(opts) {
  reader_txns_.assign(opts_.max_readers, 0);
}

Env::~Env() = default;

Page* Env::page(PageId id) {
  assert(id < pages_.size());
  return pages_[id].get();
}

Page* Env::alloc_page(bool leaf, uint64_t txn_id) {
  PageId id;
  if (!reusable_.empty()) {
    id = reusable_.back();
    reusable_.pop_back();
    *pages_[id] = Page{};
    ++stats_.reclaimed;
  } else {
    id = pages_.size();
    pages_.push_back(std::make_unique<Page>());
  }
  Page* p = pages_[id].get();
  p->id = id;
  p->leaf = leaf;
  p->born_txn = txn_id;
  return p;
}

void Env::free_page(PageId id, uint64_t txn_id) {
  freelist_.push_back({id, txn_id});
}

uint64_t Env::oldest_reader_txn() const {
  uint64_t oldest = ~uint64_t{0};
  for (uint64_t t : reader_txns_)
    if (t != 0) oldest = std::min(oldest, t);
  return oldest;
}

void Env::reclaim() {
  // A page freed by commit T is still referenced by readers whose snapshot
  // predates T (reader slots store snapshot_txn + 1, so "needs it" means
  // slot value <= T). Recycle only when every live reader started at or
  // after T.
  uint64_t oldest = oldest_reader_txn();
  std::erase_if(freelist_, [&](const FreedPage& f) {
    if (oldest == ~uint64_t{0} || f.txn_id < oldest) {
      reusable_.push_back(f.id);
      return true;
    }
    return false;
  });
}

uint64_t Env::last_txn_id() const { return metas_[newest_meta_].txn_id; }

size_t Env::live_pages() const {
  return pages_.size() - reusable_.size() - freelist_.size();
}

Txn Env::begin(bool write) {
  if (write) {
    if (writer_active_) throw std::runtime_error(kWriterActive);
    writer_active_ = true;
    return Txn(*this, true, -1);
  }
  for (uint32_t i = 0; i < opts_.max_readers; ++i) {
    if (reader_txns_[i] == 0) {
      reader_txns_[i] = metas_[newest_meta_].txn_id + 1;  // 0 is "free"
      ++active_readers_;
      return Txn(*this, false, static_cast<int>(i));
    }
  }
  throw std::runtime_error(kReadersFull);
}

// ===========================================================================
// Txn
// ===========================================================================

Txn::Txn(Env& env, bool write, int reader_slot)
    : env_(&env), write_(write), reader_slot_(reader_slot) {
  const Env::MetaPage& meta = env.metas_[env.newest_meta_];
  dbs_ = meta.dbs;  // snapshot of every database's root
  txn_id_ = meta.txn_id + 1;  // readers remember "as of" id; writer gets next
}

Txn::DbState& Txn::state(std::string_view db) {
  return dbs_[std::string(db)];
}

const Txn::DbState* Txn::state_if_exists(std::string_view db) const {
  auto it = dbs_.find(std::string(db));
  return it == dbs_.end() ? nullptr : &it->second;
}

Txn::Txn(Txn&& o) noexcept { *this = std::move(o); }

Txn& Txn::operator=(Txn&& o) noexcept {
  if (this != &o) {
    if (env_ && !done_) abort();
    env_ = std::exchange(o.env_, nullptr);
    write_ = o.write_;
    done_ = o.done_;
    reader_slot_ = o.reader_slot_;
    txn_id_ = o.txn_id_;
    dbs_ = std::move(o.dbs_);
    pages_touched_ = o.pages_touched_;
    dirty_ = std::move(o.dirty_);
    freed_ = std::move(o.freed_);
    o.done_ = true;
  }
  return *this;
}

Txn::~Txn() {
  if (env_ && !done_) abort();
}

void Txn::finish() {
  done_ = true;
  if (write_) {
    env_->writer_active_ = false;
  } else if (reader_slot_ >= 0) {
    env_->reader_txns_[reader_slot_] = 0;
    --env_->active_readers_;
    env_->reclaim();
  }
}

void Txn::abort() {
  if (done_) return;
  if (write_) {
    // Dirty pages were never published; recycle them immediately.
    for (PageId id : dirty_) env_->reusable_.push_back(id);
    ++env_->stats_.aborts;
  }
  finish();
}

CommitInfo Txn::commit() {
  if (done_) throw std::logic_error("mdblite: txn already finished");
  if (!write_) {
    finish();
    return CommitInfo{txn_id_, 0};
  }
  Env::MetaPage& meta = env_->metas_[1 - env_->newest_meta_];
  meta.dbs = dbs_;
  meta.txn_id = txn_id_;
  env_->newest_meta_ = 1 - env_->newest_meta_;
  for (PageId id : freed_) env_->free_page(id, txn_id_);
  env_->stats_.page_writes += dirty_.size();
  ++env_->stats_.commits;
  uint64_t written = dirty_.size();
  finish();
  env_->reclaim();
  return CommitInfo{txn_id_, written};
}

size_t Txn::entry_count() const { return entry_count(""); }

size_t Txn::entry_count(std::string_view db) const {
  const DbState* st = state_if_exists(db);
  return st ? st->entries : 0;
}

Page* Txn::readable(PageId id) {
  ++pages_touched_;
  ++env_->stats_.page_reads;
  return env_->page(id);
}

Page* Txn::shadow(PageId id) {
  Page* old = env_->page(id);
  if (old->born_txn == txn_id_) return old;  // already ours
  Page* fresh = env_->alloc_page(old->leaf, txn_id_);
  PageId fid = fresh->id;
  *fresh = *old;
  fresh->id = fid;
  fresh->born_txn = txn_id_;
  dirty_.push_back(fid);
  freed_.push_back(id);
  ++pages_touched_;
  return fresh;
}

namespace {

// Routing: branch keys[i] is the smallest key of children[i+1].
size_t route(const Page& p, std::string_view key) {
  return static_cast<size_t>(
      std::upper_bound(p.keys.begin(), p.keys.end(), key) - p.keys.begin());
}

size_t leaf_pos(const Page& p, std::string_view key, bool& exact) {
  auto it = std::lower_bound(p.keys.begin(), p.keys.end(), key);
  exact = it != p.keys.end() && *it == key;
  return static_cast<size_t>(it - p.keys.begin());
}

}  // namespace

std::optional<std::string> Txn::get(std::string_view key) {
  return get("", key);
}

std::optional<std::string> Txn::get(std::string_view db,
                                    std::string_view key) {
  if (done_) throw std::logic_error("mdblite: txn finished");
  return get_in(state(db), key);
}

std::optional<std::string> Txn::get_in(DbState& st, std::string_view key) {
  if (st.root == kNoPage) return std::nullopt;
  Page* p = readable(st.root);
  while (!p->leaf) p = readable(p->children[route(*p, key)]);
  bool exact;
  size_t i = leaf_pos(*p, key, exact);
  if (!exact) return std::nullopt;
  if (p->ovf_flags[i]) {
    Page* ovf = readable(decode_ovf(p->values[i]));
    return ovf->ovf_data;
  }
  return p->values[i];
}

void Txn::put(std::string_view key, std::string_view value) {
  put("", key, value);
}

void Txn::put(std::string_view db, std::string_view key,
              std::string_view value) {
  if (done_ || !write_)
    throw std::logic_error("mdblite: put needs an active write txn");
  put_in(state(db), key, value);
}

void Txn::put_in(DbState& st, std::string_view key, std::string_view value) {
  const size_t psize = env_->opts_.page_size;
  const size_t capacity = psize - kPageHeader;
  const bool big = value.size() > psize / 4;

  auto store_value = [&](Page* leaf, size_t i) {
    if (big) {
      Page* ovf = env_->alloc_page(true, txn_id_);
      ovf->overflow = true;
      ovf->ovf_data = std::string(value);
      dirty_.push_back(ovf->id);
      env_->stats_.page_writes += value.size() / psize;  // chain accounting
      leaf->values[i] = encode_ovf(ovf->id);
      leaf->ovf_flags[i] = 1;
    } else {
      leaf->values[i] = std::string(value);
      leaf->ovf_flags[i] = 0;
    }
  };

  auto free_value = [&](Page* leaf, size_t i) {
    if (leaf->ovf_flags[i]) freed_.push_back(decode_ovf(leaf->values[i]));
  };

  if (st.root == kNoPage) {
    Page* leaf = env_->alloc_page(true, txn_id_);
    dirty_.push_back(leaf->id);
    leaf->keys.emplace_back(key);
    leaf->values.emplace_back();
    leaf->ovf_flags.push_back(0);
    store_value(leaf, 0);
    st.root = leaf->id;
    st.entries = 1;
    return;
  }

  struct SplitInfo {
    bool split = false;
    std::string sep;
    PageId right = kNoPage;
  };

  // Recursive COW insert.
  auto insert_rec = [&](auto&& self, PageId id) -> std::pair<PageId, SplitInfo> {
    Page* p = shadow(id);
    SplitInfo si;
    if (p->leaf) {
      bool exact;
      size_t i = leaf_pos(*p, key, exact);
      if (exact) {
        free_value(p, i);
        store_value(p, i);
      } else {
        p->keys.insert(p->keys.begin() + i, std::string(key));
        p->values.insert(p->values.begin() + i, std::string());
        p->ovf_flags.insert(p->ovf_flags.begin() + i, 0);
        store_value(p, i);
        ++st.entries;
      }
      if (p->used(psize) > capacity && p->keys.size() > 1) {
        size_t mid = p->keys.size() / 2;
        Page* right = env_->alloc_page(true, txn_id_);
        dirty_.push_back(right->id);
        right->keys.assign(p->keys.begin() + mid, p->keys.end());
        right->values.assign(p->values.begin() + mid, p->values.end());
        right->ovf_flags.assign(p->ovf_flags.begin() + mid,
                                p->ovf_flags.end());
        p->keys.resize(mid);
        p->values.resize(mid);
        p->ovf_flags.resize(mid);
        si = {true, right->keys.front(), right->id};
      }
      return {p->id, si};
    }
    size_t idx = route(*p, key);
    auto [child_id, child_split] = self(self, p->children[idx]);
    p->children[idx] = child_id;
    if (child_split.split) {
      p->keys.insert(p->keys.begin() + idx, child_split.sep);
      p->children.insert(p->children.begin() + idx + 1, child_split.right);
      if (p->used(psize) > capacity && p->keys.size() > 1) {
        size_t mid = p->keys.size() / 2;
        Page* right = env_->alloc_page(false, txn_id_);
        dirty_.push_back(right->id);
        std::string up = p->keys[mid];
        right->keys.assign(p->keys.begin() + mid + 1, p->keys.end());
        right->children.assign(p->children.begin() + mid + 1,
                               p->children.end());
        p->keys.resize(mid);
        p->children.resize(mid + 1);
        si = {true, std::move(up), right->id};
      }
    }
    return {p->id, si};
  };

  auto [new_root, split] = insert_rec(insert_rec, st.root);
  st.root = new_root;
  if (split.split) {
    Page* nr = env_->alloc_page(false, txn_id_);
    dirty_.push_back(nr->id);
    nr->keys.push_back(split.sep);
    nr->children = {st.root, split.right};
    st.root = nr->id;
  }
}

bool Txn::del(std::string_view key) { return del("", key); }

bool Txn::del(std::string_view db, std::string_view key) {
  if (done_ || !write_)
    throw std::logic_error("mdblite: del needs an active write txn");
  return del_in(state(db), key);
}

bool Txn::del_in(DbState& st, std::string_view key) {
  if (st.root == kNoPage) return false;
  const size_t psize = env_->opts_.page_size;
  const size_t capacity = psize - kPageHeader;

  bool removed = false;
  auto del_rec = [&](auto&& self, PageId id) -> PageId {
    Page* p = shadow(id);
    if (p->leaf) {
      bool exact;
      size_t i = leaf_pos(*p, key, exact);
      if (exact) {
        if (p->ovf_flags[i]) freed_.push_back(decode_ovf(p->values[i]));
        p->keys.erase(p->keys.begin() + i);
        p->values.erase(p->values.begin() + i);
        p->ovf_flags.erase(p->ovf_flags.begin() + i);
        removed = true;
        --st.entries;
      }
      return p->id;
    }
    size_t idx = route(*p, key);
    p->children[idx] = self(self, p->children[idx]);
    // Rebalance: merge an under-filled child into a sibling when the
    // combination fits (merge-only policy; under-filled pages are legal).
    // Peek with read-only pages FIRST — shadowing a page we end up not
    // modifying would push a still-referenced page onto the freelist.
    Page* child = env_->page(p->children[idx]);
    if (child->used(psize) < capacity / 4 && p->children.size() > 1) {
      size_t li = idx > 0 ? idx - 1 : idx;  // merge (li, li+1)
      Page* lpeek = env_->page(p->children[li]);
      Page* rpeek = env_->page(p->children[li + 1]);
      if (lpeek->leaf == rpeek->leaf &&
          lpeek->used(psize) + rpeek->used(psize) <= capacity) {
        Page* left = shadow(p->children[li]);
        p->children[li] = left->id;
        Page* right = shadow(p->children[li + 1]);
        if (left->leaf) {
          left->keys.insert(left->keys.end(), right->keys.begin(),
                            right->keys.end());
          left->values.insert(left->values.end(), right->values.begin(),
                              right->values.end());
          left->ovf_flags.insert(left->ovf_flags.end(),
                                 right->ovf_flags.begin(),
                                 right->ovf_flags.end());
        } else {
          left->keys.push_back(p->keys[li]);  // pull the separator down
          left->keys.insert(left->keys.end(), right->keys.begin(),
                            right->keys.end());
          left->children.insert(left->children.end(), right->children.begin(),
                                right->children.end());
        }
        // `right` is our own shadow (never published): recycle directly.
        std::erase(dirty_, right->id);
        env_->reusable_.push_back(right->id);
        p->keys.erase(p->keys.begin() + li);
        p->children.erase(p->children.begin() + li + 1);
        p->children[li] = left->id;
      }
    }
    return p->id;
  };

  st.root = del_rec(del_rec, st.root);
  // Collapse a root branch with a single child.
  Page* r = env_->page(st.root);
  while (!r->leaf && r->children.size() == 1) {
    PageId only = r->children[0];
    std::erase(dirty_, r->id);
    env_->reusable_.push_back(r->id);
    st.root = only;
    r = env_->page(st.root);
  }
  if (r->leaf && r->keys.empty()) {
    std::erase(dirty_, r->id);
    env_->reusable_.push_back(r->id);
    st.root = kNoPage;
  }
  return removed;
}

// ===========================================================================
// Cursor
// ===========================================================================

Cursor::Cursor(Txn& txn, std::string_view db) : txn_(txn) {
  const Txn::DbState* st = txn.state_if_exists(db);
  root_ = st ? st->root : kNoPage;
}

void Cursor::descend_left(PageId id) {
  Page* p = txn_.readable(id);
  stack_.push_back({id, 0});
  while (!p->leaf) {
    p = txn_.readable(p->children[0]);
    stack_.push_back({p->id, 0});
  }
  valid_ = !p->keys.empty();
}

bool Cursor::first() {
  stack_.clear();
  valid_ = false;
  if (root_ == kNoPage) return false;
  descend_left(root_);
  return valid_;
}

bool Cursor::seek(std::string_view key) {
  stack_.clear();
  valid_ = false;
  if (root_ == kNoPage) return false;
  Page* p = txn_.readable(root_);
  stack_.push_back({p->id, 0});
  while (!p->leaf) {
    size_t idx = route(*p, key);
    stack_.back().index = idx;
    p = txn_.readable(p->children[idx]);
    stack_.push_back({p->id, 0});
  }
  bool exact;
  size_t i = leaf_pos(*p, key, exact);
  stack_.back().index = i;
  if (i < p->keys.size()) {
    valid_ = true;
    return true;
  }
  return next();  // key is past this leaf; advance
}

bool Cursor::next() {
  if (stack_.empty()) return false;
  if (valid_) ++stack_.back().index;
  // Climb until a branch frame has a next child (or we are a valid leaf).
  while (!stack_.empty()) {
    Frame& f = stack_.back();
    Page* p = txn_.env_->page(f.page);
    if (p->leaf) {
      if (f.index < p->keys.size()) {
        valid_ = true;
        return true;
      }
      stack_.pop_back();
    } else {
      if (f.index + 1 < p->children.size()) {
        ++f.index;
        descend_left(p->children[f.index]);
        if (valid_) return true;
      } else {
        stack_.pop_back();
      }
    }
  }
  valid_ = false;
  return false;
}

const std::string& Cursor::key() const {
  const Frame& f = stack_.back();
  return txn_.env_->page(f.page)->keys[f.index];
}

const std::string& Cursor::value() const {
  const Frame& f = stack_.back();
  Page* p = txn_.env_->page(f.page);
  if (p->ovf_flags[f.index]) {
    value_cache_ = txn_.env_->page(decode_ovf(p->values[f.index]))->ovf_data;
    return value_cache_;
  }
  return p->values[f.index];
}

}  // namespace hatrpc::kv
