#include "kv/hatkv.h"

namespace hatrpc::kv {

using sim::Task;

HatKVConfig HatKVConfig::from_hints(const hint::ServiceHints& hints) {
  HatKVConfig cfg;
  if (const hint::Value* v = hints.lookup("", hint::Key::kConcurrency,
                                          hint::Perspective::kServer)) {
    // Size the reader table to the expected concurrency plus headroom,
    // instead of LMDB's fixed default (§4.4: "the number of max readers
    // can be set according to the concurrency hint").
    cfg.max_readers = static_cast<uint32_t>(v->num) + 8;
  }
  if (const hint::Value* v = hints.lookup("", hint::Key::kPerfGoal,
                                          hint::Perspective::kServer)) {
    cfg.sync_commits = v->goal == hint::PerfGoal::kLatency;
  }
  return cfg;
}

Task<void> HatKVHandler::charge_pages(uint64_t pages) {
  return node_.cpu().compute(cfg_.op_fixed +
                             cfg_.page_cpu * static_cast<int64_t>(pages));
}

Task<void> HatKVHandler::charge_commit(const CommitInfo& info) {
  if (cfg_.sync_commits) {
    // Durable before replying: the commit I/O sits on the critical path.
    co_await node_.cpu().compute(
        cfg_.commit_io * static_cast<int64_t>(std::max<uint64_t>(
                             info.pages_written, 1)));
  }
  // Group-commit mode: the flush happens in the background (the paper's
  // "commit strategies ... such that the interactions with LMDB will not
  // hinder the critical path").
}

Task<std::string> HatKVHandler::Get(const std::string& key) {
  // The reader slot is held for the (virtual) duration of the storage
  // work — an undersized reader table (concurrency hint too low) shows up
  // as queueing here, exactly like MDB_READERS_FULL pressure.
  co_await readers_.acquire();
  Txn txn = env_.begin(false);
  auto v = txn.get(key);
  co_await charge_pages(txn.pages_touched());
  txn.commit();
  readers_.release();
  co_return v.value_or(std::string());
}

Task<void> HatKVHandler::Put(const std::string& key,
                             const std::string& value) {
  // LMDB semantics: the single writer holds the write lock through its
  // work and (for sync commits) through the commit I/O.
  co_await writer_.acquire();
  Txn txn = env_.begin(true);
  txn.put(key, value);
  co_await charge_pages(txn.pages_touched());
  CommitInfo info = txn.commit();
  co_await charge_commit(info);
  writer_.release();
}

Task<std::vector<std::string>> HatKVHandler::MultiGet(
    const std::vector<std::string>& keys) {
  co_await readers_.acquire();
  Txn txn = env_.begin(false);
  std::vector<std::string> out;
  out.reserve(keys.size());
  for (const auto& k : keys) out.push_back(txn.get(k).value_or(""));
  co_await charge_pages(txn.pages_touched());
  txn.commit();
  readers_.release();
  co_return out;
}

Task<void> HatKVHandler::MultiPut(const std::vector<hatkv::KVPair>& pairs) {
  co_await writer_.acquire();
  Txn txn = env_.begin(true);
  for (const auto& kv : pairs) txn.put(kv.key, kv.value);
  co_await charge_pages(txn.pages_touched());
  CommitInfo info = txn.commit();
  co_await charge_commit(info);
  writer_.release();
}

}  // namespace hatrpc::kv
