#include "kv/cluster.h"

#include <algorithm>
#include <stdexcept>

#include "sim/rc_annotate.h"

namespace hatrpc::kv {

using sim::Task;

// ---------------------------------------------------------------------------
// ShardMap

void ShardMap::build_ring() {
  ring_.clear();
  ring_.reserve(size_t(shards.size()) * vnodes);
  for (uint32_t s = 0; s < shards.size(); ++s) {
    for (uint32_t v = 0; v < vnodes; ++v) {
      std::string point = "s" + std::to_string(s) + "v" + std::to_string(v);
      ring_.emplace_back(mix64(fnv1a64(point)), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

uint32_t ShardMap::shard_of(std::string_view key) const {
  if (ring_.empty()) return 0;
  const uint64_t h = mix64(fnv1a64(key));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<uint64_t, uint32_t>& p, uint64_t v) {
        return p.first < v;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::string ShardMap::encode() const {
  std::string out = "hsm1|" + std::to_string(epoch) + "|" +
                    std::to_string(vnodes) + "|" +
                    std::to_string(shards.size()) + "|";
  for (size_t s = 0; s < shards.size(); ++s) {
    if (s) out += ';';
    const auto& chain = shards[s].chain;
    for (size_t r = 0; r < chain.size(); ++r) {
      if (r) out += ',';
      out += std::to_string(chain[r].node) + ":" +
             std::to_string(chain[r].incarnation);
    }
  }
  return out;
}

ShardMap ShardMap::decode(std::string_view s) {
  auto fail = [] { throw hint::HintError("malformed shard map"); };
  auto take = [&](char delim) {
    size_t p = s.find(delim);
    if (p == std::string_view::npos) fail();
    std::string_view tok = s.substr(0, p);
    s.remove_prefix(p + 1);
    return tok;
  };
  auto num = [&](std::string_view tok) -> uint64_t {
    if (tok.empty()) fail();
    uint64_t v = 0;
    for (char c : tok) {
      if (c < '0' || c > '9') fail();
      v = v * 10 + uint64_t(c - '0');
    }
    return v;
  };
  if (take('|') != "hsm1") fail();
  ShardMap m;
  m.epoch = num(take('|'));
  m.vnodes = static_cast<uint32_t>(num(take('|')));
  const uint64_t nshards = num(take('|'));
  m.shards.resize(nshards);
  for (uint64_t i = 0; i < nshards; ++i) {
    std::string_view seg;
    if (i + 1 < nshards) {
      seg = take(';');
    } else {
      seg = s;
      s = {};
    }
    while (!seg.empty()) {
      size_t p = seg.find(',');
      std::string_view entry =
          p == std::string_view::npos ? seg : seg.substr(0, p);
      seg = p == std::string_view::npos ? std::string_view{}
                                        : seg.substr(p + 1);
      size_t colon = entry.find(':');
      if (colon == std::string_view::npos) fail();
      Replica r;
      r.node = static_cast<uint32_t>(num(entry.substr(0, colon)));
      r.incarnation = num(entry.substr(colon + 1));
      m.shards[i].chain.push_back(r);
    }
  }
  m.build_ring();
  return m;
}

// ---------------------------------------------------------------------------
// ReadView

Task<void> ReadView::publish(std::string_view key, std::string_view value,
                             uint64_t version) {
  // Publish cost: two store phases with real CPU between them, so the
  // torn window a remote READ can race is an actual span of virtual time.
  static constexpr auto kPhase = std::chrono::nanoseconds(120);
  std::byte* slot = mr_->data() + size_t(bucket_of(key)) * kSlotBytes;
  // The slot is racy BY DESIGN against remote READs (readers validate the
  // head/tail version pair), so both sides mark it with the relaxed update
  // class: update/update pairs never conflict, but a strict access sneaking
  // into the region would.
  sim::Simulator& rsim = node_.fabric().simulator();
  rsim.rc_update(slot, 0, "ReadView.slot", RC_HERE);
  auto put_u64 = [](std::byte* p, uint64_t v) { std::memcpy(p, &v, 8); };
  auto put_u32 = [](std::byte* p, uint32_t v) { std::memcpy(p, &v, 4); };
  if (key.size() > kKeyMax || value.size() > kValMax) {
    // Oversized records are not served one-sided: tombstone the slot so
    // readers fall back to RPC instead of seeing a stale resident.
    put_u64(slot, 0);
    put_u64(slot + kSlotBytes - 8, 0);
    co_return;
  }
  put_u64(slot, version);  // head first: mid-update reads show head != tail
  co_await node_.cpu().compute(kPhase);
  put_u32(slot + 8, static_cast<uint32_t>(key.size()));
  put_u32(slot + 12, static_cast<uint32_t>(value.size()));
  std::memcpy(slot + 16, key.data(), key.size());
  std::memcpy(slot + 16 + kKeyMax, value.data(), value.size());
  co_await node_.cpu().compute(kPhase);
  put_u64(slot + kSlotBytes - 8, version);  // tail last: slot whole again
  rsim.rc_update(slot, 0, "ReadView.slot", RC_HERE);
}

ReadViewClient::ReadViewClient(verbs::Node& client, verbs::Node& server,
                               verbs::RemoteAddr base)
    : cl_(verbs::make_endpoint(client, sim::PollMode::kBusy)),
      sv_(verbs::make_endpoint(server, sim::PollMode::kBusy)),
      scratch_(client.pd().alloc_mr(ReadView::kSlotBytes)), base_(base),
      rc_sim_(&client.fabric().simulator()) {
  // One-sided: the server endpoint only anchors the QP; nothing ever
  // polls its CQs.
  verbs::connect(cl_, sv_);
}

Task<std::optional<ViewRecord>> ReadViewClient::read(std::string_view key) {
  const uint32_t bucket = ReadView::bucket_of(key);
  co_await cl_.qp->post_send(verbs::SendWr{
      .wr_id = next_wr_++,
      .opcode = verbs::Opcode::kRead,
      .local = {scratch_->data(), ReadView::kSlotBytes},
      .remote = {base_.addr + uint64_t(bucket) * ReadView::kSlotBytes,
                 base_.rkey}});
  verbs::Wc wc = co_await cl_.send_wc();
  if (!wc.ok()) proto::throw_wc("view read", wc.status);
  // Same key the publisher uses: the remote address the READ targeted IS
  // the server slot's address in the sim. Relaxed class — a snapshot
  // racing a publish is the validated-torn-read path, not a bug.
  rc_sim_->rc_update(
      reinterpret_cast<const void*>(base_.addr +
                                    uint64_t(bucket) * ReadView::kSlotBytes),
      0, "ReadView.slot", RC_HERE);
  const std::byte* p = scratch_->data();
  auto u64 = [](const std::byte* q) {
    uint64_t v;
    std::memcpy(&v, q, 8);
    return v;
  };
  auto u32 = [](const std::byte* q) {
    uint32_t v;
    std::memcpy(&v, q, 4);
    return v;
  };
  const uint64_t head = u64(p);
  const uint64_t tail = u64(p + ReadView::kSlotBytes - 8);
  if (head == 0 || head != tail) co_return std::nullopt;  // empty or torn
  const uint32_t klen = u32(p + 8);
  const uint32_t vlen = u32(p + 12);
  if (klen == 0 || klen > ReadView::kKeyMax || vlen > ReadView::kValMax)
    co_return std::nullopt;
  if (std::string_view(reinterpret_cast<const char*>(p + 16), klen) != key)
    co_return std::nullopt;  // bucket collision: a different resident
  co_return ViewRecord{
      std::string(reinterpret_cast<const char*>(p + 16 + ReadView::kKeyMax),
                  vlen),
      head};
}

// ---------------------------------------------------------------------------
// ShardHandler

std::string ShardHandler::encode_record(uint64_t version,
                                        std::string_view value) {
  std::string rec(8 + value.size(), '\0');
  std::memcpy(rec.data(), &version, 8);
  std::memcpy(rec.data() + 8, value.data(), value.size());
  return rec;
}

ViewRecord ShardHandler::decode_record(std::string_view raw) {
  ViewRecord r;
  if (raw.size() < 8) return r;
  std::memcpy(&r.version, raw.data(), 8);
  r.value.assign(raw.data() + 8, raw.size() - 8);
  return r;
}

std::string ShardHandler::op_key(int64_t client_id, int64_t seq) {
  return std::to_string(client_id) + ":" + std::to_string(seq);
}

Task<void> ShardHandler::charge_pages(uint64_t pages) {
  return node_.cpu().compute(cfg_.op_fixed +
                             cfg_.page_cpu * static_cast<int64_t>(pages));
}

Task<void> ShardHandler::charge_commit(const CommitInfo& info) {
  if (cfg_.sync_commits) {
    co_await node_.cpu().compute(
        cfg_.commit_io * static_cast<int64_t>(std::max<uint64_t>(
                             info.pages_written, 1)));
  }
}

std::optional<uint64_t> ShardHandler::applied_version(int64_t client_id,
                                                      int64_t seq) {
  // Caller holds the writer semaphore, so a short read transaction is
  // always admissible (mdblite runs readers beside the single writer).
  Txn txn = env_.begin(false);
  auto hit = txn.get("applied", op_key(client_id, seq));
  if (!hit || hit->size() != 8) return std::nullopt;
  uint64_t v;
  std::memcpy(&v, hit->data(), 8);
  return v;
}

Task<hatshard::VersionedValue> ShardHandler::Get(const std::string& key) {
  if (deposed_) {
    throw proto::RpcError(proto::RpcErrc::kChannelClosed,
                          "replica deposed (stale chain epoch)");
  }
  co_await readers_.acquire();
  hatshard::VersionedValue out;
  uint64_t pages = 0;
  {
    Txn txn = env_.begin(false);
    auto raw = txn.get(key);
    pages = txn.pages_touched();
    if (raw) {
      ViewRecord rec = decode_record(*raw);
      out.value = std::move(rec.value);
      out.version = static_cast<int64_t>(rec.version);
      out.found = true;
    }
  }
  readers_.release();
  co_await charge_pages(pages);
  co_return out;
}

Task<void> ShardHandler::apply(const std::string& key,
                               const std::string& value, uint64_t version,
                               int64_t client_id, int64_t seq) {
  next_version_ = std::max(next_version_, version);
  uint64_t pages = 0;
  bool newer = false;
  {
    Txn txn = env_.begin(true);
    auto existing = txn.get(key);
    const uint64_t have =
        existing ? decode_record(*existing).version : 0;
    newer = version > have;
    if (newer) txn.put(key, encode_record(version, value));
    if (client_id != 0) {
      std::string stamp(8, '\0');
      std::memcpy(stamp.data(), &version, 8);
      txn.put("applied", op_key(client_id, seq), stamp);
    }
    pages = txn.pages_touched();
    CommitInfo info = txn.commit();
    co_await charge_pages(pages);
    co_await charge_commit(info);
  }
  if (newer) co_await view_.publish(key, value, version);
  ++applied_ops_;
}

Task<void> ShardHandler::forward(const std::string& key,
                                 const std::string& value, uint64_t version,
                                 int64_t client_id, int64_t seq) {
  // Copy: the directory may rewire downstream_ while we await a hop.
  std::vector<ChainLink> links = downstream_;
  for (const ChainLink& l : links) {
    try {
      co_await l.stub->Replicate(key, value, static_cast<int64_t>(version),
                                 client_id, seq);
      node_.counters().add(obs::Ctr::kChainForwards);
      co_return;  // the successor forwards further down itself
    } catch (const std::exception&) {
      // A failed hop has two readings and only one is "dead successor":
      // if WE crashed mid-forward, our own QPs are what died, and acking
      // solo would acknowledge a write that lives only in state the
      // directory is about to discard. Fail the op instead — the client
      // replays it against the re-formed chain.
      if (node_.crashed() || deposed_) {
        throw proto::RpcError(proto::RpcErrc::kChannelClosed,
                              "head crashed or deposed mid-forward");
      }
      // Dead successor: tell the directory (async) and try the next one,
      // so a mid-chain crash degrades the chain instead of wedging it.
      if (peer_down_) peer_down_(l.node, l.incarnation);
    }
  }
  // No live successor (tail, or every successor just died): ack solo —
  // unless this node itself is gone or deposed, in which case nothing
  // may ack (the write would live only in discarded state).
  if (node_.crashed() || deposed_) {
    throw proto::RpcError(proto::RpcErrc::kChannelClosed,
                          "node crashed or deposed mid-op");
  }
}

Task<int64_t> ShardHandler::Put(const std::string& key,
                                const std::string& value, int64_t client_id,
                                int64_t seq) {
  if (deposed_) {
    throw proto::RpcError(proto::RpcErrc::kChannelClosed,
                          "replica deposed (stale chain epoch)");
  }
  co_await writer_.acquire();
  if (auto hit = applied_version(client_id, seq)) {
    // A failover replay of an op this chain already committed: answer
    // with the original version, do not re-execute or re-forward.
    ++replays_;
    node_.counters().add(obs::Ctr::kReplays);
    writer_.release();
    co_return static_cast<int64_t>(*hit);
  }
  const uint64_t version = next_version_ + 1;
  try {
    co_await apply(key, value, version, client_id, seq);
    co_await forward(key, value, version, client_id, seq);
  } catch (...) {
    writer_.release();
    throw;
  }
  writer_.release();
  co_return static_cast<int64_t>(version);
}

Task<int64_t> ShardHandler::Replicate(const std::string& key,
                                      const std::string& value,
                                      int64_t version, int64_t client_id,
                                      int64_t seq) {
  if (deposed_) {
    throw proto::RpcError(proto::RpcErrc::kChannelClosed,
                          "replica deposed (stale chain epoch)");
  }
  co_await writer_.acquire();
  const uint64_t v = static_cast<uint64_t>(version);
  try {
    co_await apply(key, value, v, client_id, seq);
    co_await forward(key, value, v, client_id, seq);
  } catch (...) {
    writer_.release();
    throw;
  }
  writer_.release();
  co_return version;
}

std::optional<ViewRecord> ShardHandler::peek(const std::string& key) {
  Txn txn = env_.begin(false);
  auto raw = txn.get(key);
  if (!raw) return std::nullopt;
  return decode_record(*raw);
}

Task<uint64_t> ShardHandler::resync_to(hatshard::HatShardClient& stub) {
  // Snapshot under a reader slot, then stream without holding it so the
  // resync does not starve foreground readers.
  co_await readers_.acquire();
  std::vector<std::pair<std::string, std::string>> records;
  uint64_t pages = 0;
  {
    Txn txn = env_.begin(false);
    Cursor c(txn);
    for (bool ok = c.first(); ok; ok = c.next())
      records.emplace_back(c.key(), c.value());
    pages = txn.pages_touched();
  }
  readers_.release();
  co_await charge_pages(pages);
  for (const auto& [key, raw] : records) {
    ViewRecord rec = decode_record(raw);
    // client_id 0 = resync: version-guarded apply, no dedupe entry.
    co_await stub.Replicate(key, rec.value,
                            static_cast<int64_t>(rec.version), 0, 0);
    node_.counters().add(obs::Ctr::kResyncOps);
  }
  co_return records.size();
}

// ---------------------------------------------------------------------------
// Cluster

Cluster::Cluster(verbs::Fabric& fabric, std::vector<verbs::Node*> server_nodes,
                 ClusterConfig cfg)
    : fabric_(fabric), sim_(fabric.simulator()),
      nodes_(std::move(server_nodes)), cfg_(cfg) {
  if (nodes_.empty()) throw std::invalid_argument("cluster needs nodes");
  const uint32_t n = static_cast<uint32_t>(nodes_.size());
  const uint32_t rf = std::min(cfg_.replication, n);
  incarnation_.assign(n, 1);
  down_.assign(n, false);
  map_.epoch = 1;
  map_.vnodes = cfg_.vnodes;
  map_.shards.resize(cfg_.shards);
  placement_.resize(cfg_.shards);
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    for (uint32_t r = 0; r < rf; ++r) {
      const uint32_t host = (s + r) % n;
      placement_[s].push_back(host);
      map_.shards[s].chain.push_back({host, 1});
      live_[{s, host}] = std::make_unique<ShardReplica>(
          *nodes_[host], s, 1, cfg_.storage, cfg_.engine);
    }
  }
  map_.build_ring();
  rebuild_chains();
}

hint::ServiceHints Cluster::hints() const {
  hint::ServiceHints h = hatshard::HatShard_hints();
  h.service().add(hint::Side::kShared, hint::Key::kShardMap,
                  hint::parse_value(hint::Key::kShardMap, map_.encode()));
  return h;
}

hatshard::HatShardClient* Cluster::chain_stub(uint32_t from_node,
                                              uint32_t shard,
                                              const ShardMap::Replica& to) {
  auto key = std::make_tuple(from_node, shard, to.node, to.incarnation);
  auto it = chains_.find(key);
  if (it == chains_.end()) {
    auto rit = live_.find({shard, to.node});
    if (rit == live_.end()) return nullptr;
    ChainConn cc;
    cc.conn = std::make_unique<core::HatConnection>(*nodes_[from_node],
                                                    rit->second->server());
    cc.stub = std::make_unique<hatshard::HatShardClient>(*cc.conn);
    it = chains_.emplace(key, std::move(cc)).first;
  }
  return it->second.stub.get();
}

void Cluster::rebuild_chains() {
  for (uint32_t s = 0; s < map_.shards.size(); ++s) {
    const auto& chain = map_.shards[s].chain;
    for (size_t i = 0; i < chain.size(); ++i) {
      auto rit = live_.find({s, chain[i].node});
      if (rit == live_.end()) continue;
      std::vector<ShardHandler::ChainLink> links;
      for (size_t j = i + 1; j < chain.size(); ++j) {
        if (hatshard::HatShardClient* stub =
                chain_stub(chain[i].node, s, chain[j])) {
          links.push_back({chain[j].node, chain[j].incarnation, stub});
        }
      }
      rit->second->handler().set_downstream(std::move(links));
      rit->second->handler().set_peer_down(
          [this](uint32_t node, uint64_t inc) { note_peer_down(node, inc); });
    }
  }
}

void Cluster::remove_from_chains(uint32_t node_id, uint64_t incarnation) {
  for (uint32_t s = 0; s < map_.shards.size(); ++s) {
    auto& chain = map_.shards[s].chain;
    std::erase_if(chain, [&](const ShardMap::Replica& r) {
      return r.node == node_id && r.incarnation == incarnation;
    });
    auto rit = live_.find({s, node_id});
    if (rit != live_.end() && rit->second->incarnation() == incarnation) {
      // Keep the dead replica's processor alive for any channel still
      // unwinding against it, but fence it: a client with a stale map can
      // reconnect once the node restarts, and a deposed handler must
      // refuse every op rather than solo-ack into discarded state.
      rit->second->handler().depose();
      rit->second->stop();
      graveyard_.push_back(std::move(rit->second));
      live_.erase(rit);
    }
  }
}

Task<void> Cluster::down_task(uint32_t node_id, uint64_t incarnation) {
  co_await sim_.sleep(cfg_.control_latency);
  if (node_id >= down_.size()) co_return;
  if (down_[node_id] || incarnation_[node_id] != incarnation) co_return;
  // Confirm with the directory's own liveness probe before acting: a
  // client timing out against a slow-but-alive replica must not collapse
  // its chains (the reporter still rebuilds its own channel and retries).
  if (!nodes_[node_id]->crashed()) co_return;
  down_[node_id] = true;
  remove_from_chains(node_id, incarnation);
  ++map_.epoch;
  rebuild_chains();
}

Task<void> Cluster::report_down(uint32_t node_id, uint64_t incarnation) {
  co_await down_task(node_id, incarnation);
}

void Cluster::note_peer_down(uint32_t node_id, uint64_t incarnation) {
  sim_.spawn(down_task(node_id, incarnation));
}

Task<ShardMap> Cluster::fetch_map() {
  co_await sim_.sleep(cfg_.control_latency);
  // Round-trip through the encoded form: clients get exactly the bytes a
  // hint re-resolution would carry.
  co_return ShardMap::decode(map_.encode());
}

Task<void> Cluster::recover(uint32_t node_id) {
  co_await sim_.sleep(cfg_.control_latency);
  if (node_id >= down_.size() || !down_[node_id]) co_return;
  down_[node_id] = false;
  const uint64_t inc = ++incarnation_[node_id];
  // Rebuild this node's replicas with fresh (empty) state and append each
  // as its shard's tail BEFORE resyncing: once it is in the chain, every
  // new write reaches it, so the snapshot stream below cannot miss one
  // (overlap is harmless — applies are version-guarded).
  std::vector<uint32_t> myshards;
  for (uint32_t s = 0; s < placement_.size(); ++s) {
    for (uint32_t host : placement_[s]) {
      if (host == node_id) myshards.push_back(s);
    }
  }
  for (uint32_t s : myshards) {
    live_[{s, node_id}] = std::make_unique<ShardReplica>(
        *nodes_[node_id], s, inc, cfg_.storage, cfg_.engine);
    map_.shards[s].chain.push_back({node_id, inc});
  }
  ++map_.epoch;
  rebuild_chains();
  for (uint32_t s : myshards) {
    const auto& chain = map_.shards[s].chain;
    if (chain.empty() || chain.front().node == node_id) continue;
    auto head = live_.find({s, chain.front().node});
    if (head == live_.end()) continue;
    hatshard::HatShardClient* stub =
        chain_stub(chain.front().node, s, {node_id, inc});
    if (!stub) continue;
    resynced_ += co_await head->second->handler().resync_to(*stub);
  }
}

ShardReplica* Cluster::replica(uint32_t shard, uint32_t node_id) {
  auto it = live_.find({shard, node_id});
  return it == live_.end() ? nullptr : it->second.get();
}

void Cluster::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& [key, rep] : live_) rep->stop();
  for (auto& rep : graveyard_) rep->stop();
}

// ---------------------------------------------------------------------------
// ReliableCaller / ClusterClient

Task<core::Buffer> ReliableCaller::call(std::string method,
                                        core::View payload) {
  core::Buffer envelope =
      core::HatDispatcher::make_call(method, payload, ++seq_);
  co_await cpu_.compute(
      cfg_.serialize_fixed +
      sim::transfer_time(envelope.size(), cfg_.serialize_gbps));
  proto::CallResult r = co_await ch_.call(
      proto::View{envelope.data(), envelope.size()}, 2048);
  core::Buffer reply = std::move(r).value();  // throws RpcError on failure
  co_await cpu_.compute(
      cfg_.serialize_fixed +
      sim::transfer_time(reply.size(), cfg_.serialize_gbps));
  co_return core::HatDispatcher::parse_reply(reply, method);
}

ClusterClient::ClusterClient(verbs::Node& node, Cluster& cluster,
                             uint64_t client_id)
    : node_(node), cluster_(cluster), client_id_(client_id) {
  // Routing arrives through the hint hierarchy: resolve the service-level
  // shard-map hint exactly like any other hint consumer.
  hint::ServiceHints h = cluster_.hints();
  const hint::Value* v =
      h.lookup("Get", hint::Key::kShardMap, hint::Perspective::kClient);
  if (!v) throw hint::HintError("cluster hints carry no shard map");
  map_ = ShardMap::decode(v->raw);
}

ClusterClient::Conn& ClusterClient::conn_to(uint32_t shard,
                                            const ShardMap::Replica& r) {
  ReplicaKey key{shard, r.node, r.incarnation};
  auto it = conns_.find(key);
  if (it != conns_.end()) return it->second;
  ShardReplica* rep = cluster_.replica(shard, r.node);
  if (!rep || rep->incarnation() != r.incarnation) {
    throw proto::RpcError(proto::RpcErrc::kChannelClosed,
                          "shard map entry is stale");
  }
  const ClusterConfig& cfg = cluster_.config();
  proto::RetryPolicy policy = cfg.client_retry;
  policy.jitter_seed = client_id_ * 7919 + shard * 131 + r.node + 1;
  Conn c;
  c.ch = proto::make_reliable_channel(cfg.client_protocol, node_,
                                      rep->node(), rep->server().processor(),
                                      cfg.client_channel, policy);
  c.caller = std::make_unique<ReliableCaller>(*c.ch, node_, cfg.engine);
  c.stub = std::make_unique<hatshard::HatShardClient>(*c.caller);
  return conns_.emplace(std::move(key), std::move(c)).first->second;
}

ReadViewClient& ClusterClient::view_client(uint32_t shard,
                                           const ShardMap::Replica& r) {
  ReplicaKey key{shard, r.node, r.incarnation};
  auto it = views_.find(key);
  if (it != views_.end()) return *it->second;
  ShardReplica* rep = cluster_.replica(shard, r.node);
  if (!rep || rep->incarnation() != r.incarnation) {
    throw proto::RpcError(proto::RpcErrc::kChannelClosed,
                          "shard map entry is stale");
  }
  auto rv = std::make_unique<ReadViewClient>(
      node_, rep->node(), rep->handler().view().base_remote());
  return *views_.emplace(std::move(key), std::move(rv)).first->second;
}

void ClusterClient::drop_replica(const ShardMap::Replica& dead) {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (std::get<1>(it->first) == dead.node &&
        std::get<2>(it->first) == dead.incarnation) {
      it->second.ch->abort();
      retired_.push_back(std::move(it->second));
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = views_.begin(); it != views_.end();) {
    if (std::get<1>(it->first) == dead.node &&
        std::get<2>(it->first) == dead.incarnation) {
      it = views_.erase(it);
    } else {
      ++it;
    }
  }
}

Task<void> ClusterClient::refresh_map() {
  map_ = co_await cluster_.fetch_map();
  ++stats_.map_refreshes;
  node_.counters().add(obs::Ctr::kShardMapRefreshes);
}

Task<void> ClusterClient::failover(const ShardMap::Replica& dead) {
  ++stats_.failovers;
  node_.counters().add(obs::Ctr::kFailovers);
  co_await cluster_.report_down(dead.node, dead.incarnation);
  co_await refresh_map();
  drop_replica(dead);
}

Task<uint64_t> ClusterClient::Put(const std::string& key,
                                  const std::string& value) {
  const uint32_t shard = map_.shard_of(key);
  // One identity for the op's whole life: every retry and every failover
  // replay carries the same (client_id, seq), so the shard's applied-op
  // cache can answer a duplicate with the original version.
  const int64_t seq = ++next_seq_;
  for (int attempt = 0; attempt <= kMaxFailovers; ++attempt) {
    if (map_.shards.at(shard).chain.empty()) {
      throw proto::RpcError(proto::RpcErrc::kChannelClosed,
                            "shard has no live replicas");
    }
    const ShardMap::Replica head = map_.shards[shard].chain.front();
    bool head_died = false;
    try {
      Conn& c = conn_to(shard, head);
      const int64_t v = co_await c.stub->Put(
          key, value, static_cast<int64_t>(client_id_), seq);
      ++stats_.ops;
      const uint64_t uv = static_cast<uint64_t>(v);
      uint64_t& floor = acked_[key];
      floor = std::max(floor, uv);
      co_return uv;
    } catch (const std::exception&) {
      // Timeouts/retry-exhaustion surface as RpcError; a deposed replica's
      // refusal rides back as a thrift exception reply. Either way the
      // head is useless: re-resolve and replay under the same identity.
      head_died = true;
    }
    if (head_died) co_await failover(head);
  }
  throw proto::RpcError(proto::RpcErrc::kRetriesExhausted,
                        "put still failing after " +
                            std::to_string(kMaxFailovers) + " failovers");
}

Task<ClusterClient::GetResult> ClusterClient::Get(const std::string& key) {
  const uint32_t shard = map_.shard_of(key);
  for (int attempt = 0; attempt <= kMaxFailovers; ++attempt) {
    if (map_.shards.at(shard).chain.empty()) {
      throw proto::RpcError(proto::RpcErrc::kChannelClosed,
                            "shard has no live replicas");
    }
    // One-sided fast path against the tail: one RDMA READ, validated
    // against torn frames and this session's acked-version floor.
    if (cluster_.config().one_sided_reads) {
      const ShardMap::Replica tail = map_.shards[shard].chain.back();
      bool tail_died = false;
      try {
        ReadViewClient& rv = view_client(shard, tail);
        ++stats_.one_sided_reads;
        node_.counters().add(obs::Ctr::kOneSidedReads);
        std::optional<ViewRecord> rec = co_await rv.read(key);
        if (rec && rec->version >= acked_floor(key)) {
          ++stats_.ops;
          uint64_t& floor = acked_[key];
          floor = std::max(floor, rec->version);
          co_return GetResult{std::move(rec->value), rec->version, true,
                              true};
        }
        // Miss, torn, collision, or stale (raced a failover/replication):
        // the RPC path below is authoritative.
        ++stats_.one_sided_fallbacks;
        node_.counters().add(obs::Ctr::kOneSidedFallbacks);
      } catch (const proto::RpcError&) {
        tail_died = true;
      }
      if (tail_died) {
        const ShardMap::Replica dead = tail;
        co_await failover(dead);
        continue;
      }
    }
    const ShardMap::Replica head = map_.shards[shard].chain.front();
    bool head_died = false;
    try {
      Conn& c = conn_to(shard, head);
      hatshard::VersionedValue vv = co_await c.stub->Get(key);
      ++stats_.ops;
      const uint64_t uv = static_cast<uint64_t>(vv.version);
      if (vv.found) {
        uint64_t& floor = acked_[key];
        floor = std::max(floor, uv);
      }
      co_return GetResult{std::move(vv.value), uv, vv.found, false};
    } catch (const std::exception&) {
      head_died = true;
    }
    if (head_died) co_await failover(head);
  }
  throw proto::RpcError(proto::RpcErrc::kRetriesExhausted,
                        "get still failing after " +
                            std::to_string(kMaxFailovers) + " failovers");
}

Task<std::vector<ClusterClient::GetResult>> ClusterClient::MultiGet(
    const std::vector<std::string>& keys) {
  std::vector<GetResult> out;
  out.reserve(keys.size());
  for (const std::string& k : keys) out.push_back(co_await Get(k));
  co_return out;
}

Task<std::vector<uint64_t>> ClusterClient::MultiPut(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::vector<uint64_t> versions;
  versions.reserve(pairs.size());
  for (const auto& [k, v] : pairs) versions.push_back(co_await Put(k, v));
  co_return versions;
}

void ClusterClient::close() {
  for (auto& [key, c] : conns_) c.ch->abort();
  for (auto& c : retired_) c.ch->abort();
}

}  // namespace hatrpc::kv
