// Log-bucketed latency histogram (HDR-style: power-of-two octaves split
// into linear sub-buckets) with percentile extraction. Values are virtual
// nanoseconds; recording is O(1) and allocation-free after construction.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace hatrpc::obs {

class Histogram {
 public:
  /// 16 sub-buckets per octave: <= 6.25% relative error on percentiles.
  static constexpr int kSubBits = 4;
  static constexpr uint64_t kSub = uint64_t{1} << kSubBits;

  Histogram() : buckets_(kBucketCount, 0) {}

  void record(sim::Duration d) {
    record_ns(d.count() < 0 ? 0 : static_cast<uint64_t>(d.count()));
  }
  void record_ns(uint64_t v) {
    ++count_;
    total_ += v;
    min_ = count_ == 1 ? v : std::min(min_, v);
    max_ = std::max(max_, v);
    ++buckets_[index_of(v)];
  }

  uint64_t count() const { return count_; }
  uint64_t min_ns() const { return count_ ? min_ : 0; }
  uint64_t max_ns() const { return max_; }
  double mean_ns() const {
    return count_ ? static_cast<double>(total_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Value at quantile `q` in (0, 1], conservatively reported as the upper
  /// edge of the containing bucket (clamped to the observed max).
  uint64_t percentile_ns(double q) const {
    if (count_ == 0) return 0;
    uint64_t target = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    target = std::clamp<uint64_t>(target, 1, count_);
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= target) return std::min(bucket_upper(i), max_);
    }
    return max_;
  }
  sim::Duration percentile(double q) const {
    return sim::Duration(static_cast<int64_t>(percentile_ns(q)));
  }

  /// "count=N min=.. p50=.. p95=.. p99=.. p999=.. max=.." (ns, integers —
  /// deterministic text for dump comparisons).
  std::string summary() const {
    return "count=" + std::to_string(count_) +
           " min=" + std::to_string(min_ns()) +
           " p50=" + std::to_string(percentile_ns(0.50)) +
           " p95=" + std::to_string(percentile_ns(0.95)) +
           " p99=" + std::to_string(percentile_ns(0.99)) +
           " p999=" + std::to_string(percentile_ns(0.999)) +
           " max=" + std::to_string(max_);
  }

  static size_t index_of(uint64_t v) {
    if (v < kSub) return static_cast<size_t>(v);
    int msb = 63 - std::countl_zero(v);
    int shift = msb - kSubBits;
    return static_cast<size_t>(
        (static_cast<uint64_t>(msb - kSubBits + 1) << kSubBits) |
        ((v >> shift) & (kSub - 1)));
  }

  /// Inclusive upper edge of bucket `i` (lowest buckets are exact).
  static uint64_t bucket_upper(size_t i) {
    if (i < kSub) return i;
    uint64_t octave = i >> kSubBits;
    uint64_t sub = i & (kSub - 1);
    int msb = static_cast<int>(octave) + kSubBits - 1;
    uint64_t lower =
        (uint64_t{1} << msb) + (sub << (msb - kSubBits));
    return lower + (uint64_t{1} << (msb - kSubBits)) - 1;
  }

 private:
  static constexpr size_t kBucketCount =
      static_cast<size_t>((64 - kSubBits + 1)) << kSubBits;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t total_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace hatrpc::obs
