// Per-function footprint scopes: the live observations the adaptive hint
// controller (src/hint/adaptive.h) feeds on. Where Counters answers "how
// many doorbells did this channel ring", a FunctionFootprint answers "what
// does THIS RPC function look like right now" — payload and concurrency
// EWMAs plus a live in-flight gauge shared by every channel that carries
// the function, so a 100-connection client still observes one aggregate
// concurrency figure (the quantity the Fig-6 map classifies on).
//
// Footprints are pure bookkeeping: recording a sample costs no virtual
// time, and nothing here feeds the deterministic counter dump() oracles —
// a program that never reads its footprints behaves bit-identically to one
// without them.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

namespace hatrpc::obs {

/// One completed call's footprint, as observed by the issuing channel.
struct CallSample {
  uint64_t req_bytes = 0;
  uint64_t resp_bytes = 0;
  /// The call blocked on a full window before acquiring a slot.
  bool stalled = false;
  /// Live calls in flight on the function when this one was issued
  /// (aggregate across channels — the observed concurrency).
  uint32_t inflight = 0;
};

/// Aggregated live view of one RPC function.
class FunctionFootprint {
 public:
  explicit FunctionFootprint(std::string name) : name_(std::move(name)) {}

  /// Marks a call issued; returns the aggregate in-flight count INCLUDING
  /// this call (what CallSample::inflight should carry).
  uint32_t call_begin() {
    ++inflight_;
    if (inflight_ > peak_inflight_) peak_inflight_ = inflight_;
    return inflight_;
  }
  void call_end() {
    if (inflight_ > 0) --inflight_;
  }

  /// Folds one completed call into the EWMAs. `alpha` is the smoothing
  /// weight (new = old + alpha * (sample - old)).
  void record(const CallSample& s, double alpha) {
    ++calls_;
    if (s.stalled) ++stalls_;
    req_bytes_ += s.req_bytes;
    resp_bytes_ += s.resp_bytes;
    const double payload =
        static_cast<double>(s.req_bytes > s.resp_bytes ? s.req_bytes
                                                       : s.resp_bytes);
    if (calls_ == 1) {
      payload_ewma_ = payload;
      inflight_ewma_ = static_cast<double>(s.inflight);
    } else {
      payload_ewma_ += alpha * (payload - payload_ewma_);
      inflight_ewma_ += alpha * (static_cast<double>(s.inflight) -
                                 inflight_ewma_);
    }
  }

  const std::string& name() const { return name_; }
  uint64_t calls() const { return calls_; }
  uint64_t stalls() const { return stalls_; }
  uint64_t req_bytes() const { return req_bytes_; }
  uint64_t resp_bytes() const { return resp_bytes_; }
  uint32_t inflight() const { return inflight_; }
  uint32_t peak_inflight() const { return peak_inflight_; }
  /// max(request, response) bytes, exponentially smoothed.
  double payload_ewma() const { return payload_ewma_; }
  /// Aggregate in-flight calls at issue time, exponentially smoothed.
  double inflight_ewma() const { return inflight_ewma_; }

 private:
  std::string name_;
  uint64_t calls_ = 0;
  uint64_t stalls_ = 0;
  uint64_t req_bytes_ = 0;
  uint64_t resp_bytes_ = 0;
  uint32_t inflight_ = 0;
  uint32_t peak_inflight_ = 0;
  double payload_ewma_ = 0;
  double inflight_ewma_ = 0;
};

/// Registry of function footprints. Ids are handed out in registration
/// order (deterministic for a deterministic program); scopes live in a
/// deque so handed-out pointers stay stable as new functions appear.
class FootprintRegistry {
 public:
  uint32_t register_function(std::string name) {
    fns_.emplace_back(std::move(name));
    return static_cast<uint32_t>(fns_.size() - 1);
  }

  FunctionFootprint& function(uint32_t id) { return fns_.at(id); }
  const FunctionFootprint& function(uint32_t id) const { return fns_.at(id); }
  size_t function_count() const { return fns_.size(); }

  /// Deterministic text dump (id order), for tests and debug output.
  std::string dump() const {
    std::string out;
    for (uint32_t i = 0; i < fns_.size(); ++i) {
      const FunctionFootprint& f = fns_[i];
      out += "fn/";
      out += std::to_string(i);
      out += '/';
      out += f.name();
      out += ": calls=";
      out += std::to_string(f.calls());
      out += " stalls=";
      out += std::to_string(f.stalls());
      out += " req_bytes=";
      out += std::to_string(f.req_bytes());
      out += " resp_bytes=";
      out += std::to_string(f.resp_bytes());
      out += " peak_inflight=";
      out += std::to_string(f.peak_inflight());
      out += '\n';
    }
    return out;
  }

 private:
  std::deque<FunctionFootprint> fns_;
};

}  // namespace hatrpc::obs
