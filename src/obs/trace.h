// Virtual-time tracer: records spans and instants keyed to simulated
// nanoseconds and exports Chrome about:tracing / Perfetto JSON. Disabled
// tracers cost one branch per site; enabled ones append to a bounded
// in-memory vector (deterministic — events appear in simulator order).
//
// Mapping: pid = node id (or a per-scenario base when traces are merged),
// tid = channel id / QP number, ts/dur = virtual microseconds with
// nanosecond precision.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace hatrpc::obs {

class Tracer {
 public:
  void enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }

  /// A completed span ("X" phase): [start, start+dur).
  void complete(std::string name, const char* cat, sim::Time start,
                sim::Duration dur, uint32_t pid, uint64_t tid) {
    push({'X', std::move(name), cat, start.count(), dur.count(), pid, tid});
  }

  /// A point event ("i" phase).
  void instant(std::string name, const char* cat, sim::Time at, uint32_t pid,
               uint64_t tid) {
    push({'i', std::move(name), cat, at.count(), 0, pid, tid});
  }

  /// Names the process `pid` in the viewer (metadata event).
  void set_process_name(uint32_t pid, std::string name) {
    process_names_.emplace_back(pid, std::move(name));
  }

  /// Copies every event (and process name) from `other`, offsetting pids by
  /// `pid_base` — used to merge per-scenario traces into one file.
  void absorb(const Tracer& other, uint32_t pid_base) {
    for (const Event& e : other.events_) {
      Event copy = e;
      copy.pid += pid_base;
      push(std::move(copy));
    }
    for (const auto& [pid, name] : other.process_names_)
      process_names_.emplace_back(pid + pid_base, name);
    dropped_ += other.dropped_;
  }

  size_t event_count() const { return events_.size(); }
  size_t dropped() const { return dropped_; }

  /// Writes the Chrome trace-event JSON object ({"traceEvents": [...]}).
  void write_json(std::ostream& os) const;

 private:
  struct Event {
    char phase;  // 'X' (complete) or 'i' (instant)
    std::string name;
    const char* cat;
    int64_t ts_ns;
    int64_t dur_ns;
    uint32_t pid;
    uint64_t tid;
  };

  void push(Event e) {
    if (events_.size() >= kMaxEvents) {
      ++dropped_;
      return;
    }
    events_.push_back(std::move(e));
  }

  static constexpr size_t kMaxEvents = size_t{1} << 20;

  bool enabled_ = false;
  std::vector<Event> events_;
  std::vector<std::pair<uint32_t, std::string>> process_names_;
  size_t dropped_ = 0;
};

}  // namespace hatrpc::obs
