// Monotonic operation counters, scoped per node and per channel.
//
// Every cost the simulator charges (doorbell MMIOs, WQE posts, CQE polls,
// DMA'd bytes, software staging copies, retransmissions, timeouts...) is
// counted where it is charged, so the numbers the paper argues about in §3
// are observable instead of buried inside CostModel. Because the simulator
// is deterministic, two runs with the same seed produce byte-identical
// dump() output — tests use that as a regression oracle.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>

namespace hatrpc::obs {

enum class Ctr : uint8_t {
  kDoorbells,      // MMIO doorbell rings (a chained post counts once)
  kWqesPosted,     // work-queue elements handed to the NIC
  kCqesPolled,     // completions consumed by software
  kDmaBytes,       // payload bytes moved by the NIC DMA engines
  kCopyBytes,      // software staging-copy bytes charged to a CPU
  kMrBytes,        // bytes of registered (pinned) memory
  kRnrEvents,      // receiver-not-ready stalls / paced re-probes
  kRetransmits,    // transport retransmissions (drop or ICRC discard)
  kDuplicates,     // duplicate deliveries (PSN-deduped, wire cost only)
  kWqeErrors,      // WQEs completed with a non-success status
  kFailedCalls,    // calls that resolved to an RpcError
  kTimeouts,       // reliability-layer attempts abandoned at the deadline
  kBackoffSleeps,  // reliability-layer backoff waits
  kReconnects,     // channels rebuilt after a failure
  kFallbacks,      // degradations to the eager path
  kReplays,        // server-side dedupe hits (response replayed)
  kRequests,       // thrift server requests processed
  kDoorbellCoalescedWqes,  // WQEs that rode another post's doorbell MMIO
  kSrqPosts,       // recv WRs posted to a shared receive queue
  kCqBatchPolls,   // batched CQ drains (one pickup, many CQEs)
  kWindowStalls,   // call() blocked because the channel window was full
  kInlineWqes,     // WQEs whose payload rode the MMIO write (IBV_SEND_INLINE)
  kGatherSges,     // SGEs posted in multi-element gather lists
  kMrCacheHits,    // registration-cache lookups served from the cache
  kMrCacheMisses,  // lookups that had to register the buffer
  kMrCacheEvictions,  // cached registrations dropped by LRU pressure
  kPoolBufferReuses,  // pooled buffers re-acquired after a previous use
  kContractViolations,  // verbs-contract diagnostics recorded by VerbsCheck
  kRetryAttempts,      // reliability-layer attempts beyond a call's first
  kDeadlineExceeded,   // calls abandoned because the total budget ran out
  kFailovers,          // cluster clients switching to a surviving replica
  kShardMapRefreshes,  // shard-map re-resolutions from the directory
  kChainForwards,      // replication hops forwarded down a shard chain
  kOneSidedReads,      // GETs served by the one-sided READ path
  kOneSidedFallbacks,  // one-sided reads that fell back to RPC (torn/stale/miss)
  kResyncOps,          // records streamed to a rejoining replica
  kTimerCancels,       // deadline timers removed before firing (TimerHandle)
  kShardAccepts,       // connections steered onto a server shard at accept
  kShardPolls,         // CQEs consumed by a shard's polling loop
  kPlanSwitches,       // adaptive controller republished a function's plan
  kEpochSwaps,         // adaptive channels rebuilt for a new plan epoch
  kRecvLeases,         // responses delivered in place from the recv ring
  kRaceReports,        // race/lifetime diagnostics recorded by RaceCheck
  kCount,
};

constexpr const char* to_string(Ctr c) {
  switch (c) {
    case Ctr::kDoorbells: return "doorbells";
    case Ctr::kWqesPosted: return "wqes_posted";
    case Ctr::kCqesPolled: return "cqes_polled";
    case Ctr::kDmaBytes: return "dma_bytes";
    case Ctr::kCopyBytes: return "copy_bytes";
    case Ctr::kMrBytes: return "mr_bytes";
    case Ctr::kRnrEvents: return "rnr_events";
    case Ctr::kRetransmits: return "retransmits";
    case Ctr::kDuplicates: return "duplicates";
    case Ctr::kWqeErrors: return "wqe_errors";
    case Ctr::kFailedCalls: return "failed_calls";
    case Ctr::kTimeouts: return "timeouts";
    case Ctr::kBackoffSleeps: return "backoff_sleeps";
    case Ctr::kReconnects: return "reconnects";
    case Ctr::kFallbacks: return "fallbacks";
    case Ctr::kReplays: return "replays";
    case Ctr::kRequests: return "requests";
    case Ctr::kDoorbellCoalescedWqes: return "doorbell_coalesced_wqes";
    case Ctr::kSrqPosts: return "srq_posts";
    case Ctr::kCqBatchPolls: return "cq_batch_polls";
    case Ctr::kWindowStalls: return "window_stalls";
    case Ctr::kInlineWqes: return "inline_wqes";
    case Ctr::kGatherSges: return "gather_sges";
    case Ctr::kMrCacheHits: return "mr_cache_hits";
    case Ctr::kMrCacheMisses: return "mr_cache_misses";
    case Ctr::kMrCacheEvictions: return "mr_cache_evictions";
    case Ctr::kPoolBufferReuses: return "pool_buffer_reuses";
    case Ctr::kContractViolations: return "contract_violations";
    case Ctr::kRetryAttempts: return "retry_attempts";
    case Ctr::kDeadlineExceeded: return "deadline_exceeded";
    case Ctr::kFailovers: return "failovers";
    case Ctr::kShardMapRefreshes: return "shard_map_refreshes";
    case Ctr::kChainForwards: return "chain_forwards";
    case Ctr::kOneSidedReads: return "one_sided_reads";
    case Ctr::kOneSidedFallbacks: return "one_sided_fallbacks";
    case Ctr::kResyncOps: return "resync_ops";
    case Ctr::kTimerCancels: return "timer_cancels";
    case Ctr::kShardAccepts: return "shard_accepts";
    case Ctr::kShardPolls: return "shard_polls";
    case Ctr::kPlanSwitches: return "plan_switches";
    case Ctr::kEpochSwaps: return "epoch_swaps";
    case Ctr::kRecvLeases: return "recv_leases";
    case Ctr::kRaceReports: return "race_reports";
    case Ctr::kCount: break;
  }
  return "unknown";
}

/// One scope's worth of counters (a node or a channel).
struct CounterSet {
  std::array<uint64_t, static_cast<size_t>(Ctr::kCount)> v{};

  void add(Ctr c, uint64_t n = 1) { v[static_cast<size_t>(c)] += n; }
  uint64_t get(Ctr c) const { return v[static_cast<size_t>(c)]; }
  /// Stable slot reference for external mirrors (RaceCheck::bind_mirror).
  uint64_t& slot(Ctr c) { return v[static_cast<size_t>(c)]; }
  uint64_t operator[](Ctr c) const { return get(c); }

  CounterSet delta_since(const CounterSet& base) const {
    CounterSet d;
    for (size_t i = 0; i < v.size(); ++i) d.v[i] = v[i] - base.v[i];
    return d;
  }
};

/// Registry of counter scopes. Node scopes are keyed by node id; channel
/// and shard scopes are handed out in construction order via
/// register_channel()/register_shard(), so ids are deterministic for a
/// deterministic program. Scopes live in deques so handed-out references
/// stay stable as new scopes appear.
class Counters {
 public:
  CounterSet& node(uint32_t id) { return scope(nodes_, id); }
  const CounterSet& node(uint32_t id) const {
    return const_cast<Counters*>(this)->node(id);
  }
  CounterSet& channel(uint32_t id) { return scope(channels_, id); }
  const CounterSet& channel(uint32_t id) const {
    return const_cast<Counters*>(this)->channel(id);
  }
  CounterSet& shard(uint32_t id) { return scope(shards_, id); }
  const CounterSet& shard(uint32_t id) const {
    return const_cast<Counters*>(this)->shard(id);
  }

  uint32_t register_channel() {
    channels_.emplace_back();
    return static_cast<uint32_t>(channels_.size() - 1);
  }

  uint32_t register_shard() {
    shards_.emplace_back();
    return static_cast<uint32_t>(shards_.size() - 1);
  }

  size_t node_count() const { return nodes_.size(); }
  size_t channel_count() const { return channels_.size(); }
  size_t shard_count() const { return shards_.size(); }

  /// Sum of one counter over all shard scopes (steering/balance oracles).
  uint64_t shard_total(Ctr c) const {
    uint64_t t = 0;
    for (const auto& s : shards_) t += s.get(c);
    return t;
  }

  /// Sum of one counter over all node scopes (channel scopes mirror a
  /// subset of the node charges, so summing both would double-count).
  uint64_t node_total(Ctr c) const {
    uint64_t t = 0;
    for (const auto& s : nodes_) t += s.get(c);
    return t;
  }

  /// Deterministic text dump: scopes in id order, counters in enum order,
  /// zero-valued counters suppressed. Same seed => byte-identical output.
  std::string dump() const {
    std::string out;
    auto emit = [&out](const char* prefix, uint32_t id,
                       const CounterSet& s) {
      out += prefix;
      out += '/';
      out += std::to_string(id);
      out += ':';
      for (size_t i = 0; i < s.v.size(); ++i) {
        if (s.v[i] == 0) continue;
        out += ' ';
        out += to_string(static_cast<Ctr>(i));
        out += '=';
        out += std::to_string(s.v[i]);
      }
      out += '\n';
    };
    for (uint32_t i = 0; i < nodes_.size(); ++i) emit("node", i, nodes_[i]);
    for (uint32_t i = 0; i < channels_.size(); ++i)
      emit("channel", i, channels_[i]);
    // Shard lines come last so programs without shards dump byte-identical
    // output to the pre-sharding registry.
    for (uint32_t i = 0; i < shards_.size(); ++i) emit("shard", i, shards_[i]);
    return out;
  }

 private:
  static CounterSet& scope(std::deque<CounterSet>& v, uint32_t id) {
    while (v.size() <= id) v.emplace_back();
    return v[id];
  }

  std::deque<CounterSet> nodes_;
  std::deque<CounterSet> channels_;
  std::deque<CounterSet> shards_;
};

}  // namespace hatrpc::obs
