// Umbrella for the observability layer. One Obs is one observability
// domain; a verbs::Fabric owns one and every layer above charges into it.
#pragma once

#include "obs/counters.h"   // IWYU pragma: export
#include "obs/footprint.h"  // IWYU pragma: export
#include "obs/histogram.h"  // IWYU pragma: export
#include "obs/trace.h"      // IWYU pragma: export

namespace hatrpc::obs {

struct Obs {
  Counters counters;
  Tracer tracer;
  FootprintRegistry footprints;
};

}  // namespace hatrpc::obs
