#include "obs/trace.h"

#include <ostream>

namespace hatrpc::obs {

namespace {

// The names we emit are plain ASCII identifiers, but escape defensively so
// the file is valid JSON no matter what a caller labels a span with.
void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

// Chrome's ts/dur fields are microseconds; emit them as fixed-point
// integers-with-3-decimals so the output is deterministic (no
// double-formatting variance) while keeping nanosecond precision.
void write_us(std::ostream& os, int64_t ns) {
  os << ns / 1000 << '.';
  int64_t frac = ns % 1000;
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

void Tracer::write_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [pid, name] : process_names_) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"";
    write_escaped(os, name);
    os << "\"}}";
  }
  for (const Event& e : events_) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"" << e.phase << "\",\"name\":\"";
    write_escaped(os, e.name);
    os << "\",\"cat\":\"" << (e.cat ? e.cat : "sim") << "\",\"ts\":";
    write_us(os, e.ts_ns);
    if (e.phase == 'X') {
      os << ",\"dur\":";
      write_us(os, e.dur_ns);
    } else {
      os << ",\"s\":\"t\"";
    }
    os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid << '}';
  }
  os << "]}\n";
}

}  // namespace hatrpc::obs
