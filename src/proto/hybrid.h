// Adaptive two-protocol channels: eager below the rendezvous threshold
// (4 KB, paper §4.3), rendezvous above.
//   Hybrid-EagerRNDV — the paper's vanilla baseline (eager + Write-RNDV);
//   AR-gRPC          — the §5.4 comparator (eager + Read-RNDV).
// The decision uses max(request size, response-size hint), reproducing the
// "extra control messages just above the switching point" behaviour the
// paper attributes to AR-gRPC.
#pragma once

#include <memory>

#include "proto/channel.h"

namespace hatrpc::proto {

class HybridChannel : public RpcChannel {
 public:
  void shutdown() override {
    eager_->shutdown();
    rndv_->shutdown();
  }

  void abort() override {
    eager_->abort();
    rndv_->abort();
  }

  ProtocolKind kind() const override { return kind_; }

  ChannelStats stats() const override {
    ChannelStats s = stats_;
    for (const RpcChannel* c : {eager_.get(), rndv_.get()}) {
      ChannelStats cs = c->stats();
      s.sends += cs.sends;
      s.writes += cs.writes;
      s.write_imms += cs.write_imms;
      s.reads += cs.reads;
      s.read_retries += cs.read_retries;
      s.client_registered += cs.client_registered;
      s.server_registered += cs.server_registered;
    }
    return s;
  }

  RpcChannel& eager_path() { return *eager_; }
  RpcChannel& rndv_path() { return *rndv_; }

  /// Live reconfiguration forwards to both inner channels: the threshold
  /// split is per call, so either path may serve the next one.
  void set_poll_modes(sim::PollMode client, sim::PollMode server) override {
    eager_->set_poll_modes(client, server);
    rndv_->set_poll_modes(client, server);
  }

  bool resize_window(uint32_t n) override {
    const bool e = eager_->resize_window(n);
    const bool r = rndv_->resize_window(n);
    return e && r;
  }

 protected:
  sim::Task<Buffer> do_call(View req, uint32_t resp_size_hint) override {
    size_t decisive = std::max<size_t>(req.size(), resp_size_hint);
    RpcChannel& path = decisive <= threshold_ ? *eager_ : *rndv_;
    CallResult r = co_await path.call(req, resp_size_hint);
    if (!r) throw r.error();
    co_return std::move(*r);
  }

  sim::Task<LeasedReply> do_call_leased(View req,
                                        uint32_t resp_size_hint) override {
    size_t decisive = std::max<size_t>(req.size(), resp_size_hint);
    RpcChannel& path = decisive <= threshold_ ? *eager_ : *rndv_;
    LeasedResult r = co_await path.call_leased(req, resp_size_hint);
    if (!r) throw r.error();
    co_return std::move(*r);
  }

 private:
  HybridChannel(ProtocolKind kind, verbs::Node& client,
                std::unique_ptr<RpcChannel> eager,
                std::unique_ptr<RpcChannel> rndv, uint32_t threshold)
      : kind_(kind), eager_(std::move(eager)), rndv_(std::move(rndv)),
        threshold_(threshold) {
    bind_obs(client.fabric(), client.id());
  }

  friend std::unique_ptr<RpcChannel> make_channel(ProtocolKind,
                                                  verbs::Node&, verbs::Node&,
                                                  Handler, ChannelConfig);

  ProtocolKind kind_;
  std::unique_ptr<RpcChannel> eager_;
  std::unique_ptr<RpcChannel> rndv_;
  uint32_t threshold_;
};

}  // namespace hatrpc::proto
