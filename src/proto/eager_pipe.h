// One-directional eager message pipe over SEND/RECV circular buffers
// (Fig. 3a). Messages larger than one slot are segmented across the ring;
// the receiver reassembles. Each segment pays the eager bookkeeping CPU and
// a staging copy on both sides — eager's intrinsic cost that makes it a
// small-message protocol. Used by Eager-SendRecv (both directions), the
// hybrid baselines (below-threshold path), and HERD (response direction).
//
// Each side is an Endpoint: the pipe stages into a ring on src's node and
// assembles from a ring on dst's node, polling each side's CQs with that
// side's configured discipline.
#pragma once

#include <optional>

#include "proto/channel.h"
#include "proto/wire.h"
#include "sim/rc_annotate.h"
#include "sim/sync.h"

namespace hatrpc::proto {

class EagerPipe {
 public:
  /// Sender stages into a ring on `src`'s node; receiver assembles from a
  /// ring on `dst`'s node, with recvs pre-posted on dst's QP. `chan` (may
  /// be null) mirrors staging-copy bytes into the owning channel's scope.
  EagerPipe(verbs::Endpoint& src, verbs::Endpoint& dst,
            const ChannelConfig& cfg, ChannelStats* stats,
            obs::CounterSet* chan)
      : src_(src), dst_(dst), cfg_(cfg), stats_(stats), chan_(chan),
        cost_(src.node->fabric().cost()),
        rc_sim_(&src.node->fabric().simulator()),
        zc_leased_(cfg.eager_slots, false) {
    send_ring_ = src_.node->pd().alloc_mr(ring_bytes());
    recv_ring_ = dst_.node->pd().alloc_mr(ring_bytes());
    // Zero-copy sends still need a registered scratch ring for the tiny
    // wire header that is gathered ahead of the user payload.
    if (cfg_.zero_copy)
      zc_hdr_ = src_.node->pd().alloc_mr(
          static_cast<size_t>(kZcHdrBytes) * cfg_.eager_slots);
    for (uint32_t i = 0; i < cfg_.eager_slots; ++i) post_recv_slot(i);
  }

  EagerPipe(EagerPipe&&) = default;
  ~EagerPipe() {
    for (uint32_t i = 0; i < cfg_.eager_slots; ++i) rc_sim_->rc_forget(this, i);
  }

  size_t ring_bytes() const {
    return static_cast<size_t>(cfg_.eager_slot) * cfg_.eager_slots;
  }

  /// Sends one (possibly segmented) message. Multiple whole messages may be
  /// in flight back-to-back (windowed callers serialize send() itself); the
  /// staging cursor therefore persists across messages, and slot reuse is
  /// gated on send completions (polled with the sender's discipline) so a
  /// new message never overwrites a slot whose send is still outstanding.
  /// Returns false (with last_status() set) if a send completes in error.
  sim::Task<bool> send(View msg) {
    const uint32_t slot = cfg_.eager_slot;
    const uint32_t nslots = cfg_.eager_slots;
    size_t off = 0;
    bool first = true;
    // Lazily reclaim completions from previous messages (no charge when
    // they are already visible — ibv_poll_cq batch semantics).
    while (outstanding_ > 0 && src_.scq->try_poll()) --outstanding_;
    while (first || off < msg.size()) {
      uint32_t idx = cursor_ % nslots;
      std::byte* s = send_ring_->data() + static_cast<size_t>(idx) * slot;
      uint32_t hdr = first ? 4u : 0u;
      uint32_t take = static_cast<uint32_t>(
          std::min<size_t>(slot - hdr, msg.size() - off));
      // Slot reuse: the ring is full, wait for the oldest send to complete.
      while (outstanding_ >= nslots) {
        verbs::Wc wc = co_await src_.send_wc();
        if (!wc.ok()) {
          last_status_ = wc.status;
          co_return false;
        }
        --outstanding_;
      }
      charge_copy(*src_.node, take);
      co_await src_.node->cpu().compute(
          cost_.eager_match_cpu +
          cost_.copy_time(take, src_.qp->numa_local));
      if (first) put_u32(s, static_cast<uint32_t>(msg.size()));
      if (take > 0) std::memcpy(s + hdr, msg.data() + off, take);
      co_await src_.qp->post_send(verbs::SendWr{
          .wr_id = idx,
          .opcode = verbs::Opcode::kSend,
          .local = {s, hdr + take},
          .signaled = true});
      ++stats_->sends;
      ++outstanding_;
      off += take;
      ++cursor_;
      first = false;
    }
    co_return true;
  }

  /// Receives one message; nullopt when the CQ is closed (shutdown).
  sim::Task<std::optional<Buffer>> recv() {
    verbs::Wc wc = co_await dst_.recv_wc();
    if (!wc.ok()) {
      last_status_ = wc.status;
      co_return std::nullopt;
    }
    co_return co_await assemble(wc);
  }

  // ---- Zero-copy path ----------------------------------------------------

  /// What recv_zc() hands back: either an in-place view into the recv ring
  /// (single-segment message — the consumer must release(slot) when done so
  /// the slot can be reposted) or an owned buffer (multi-segment messages
  /// fall back to the staged assembly).
  struct ZcMsg {
    static constexpr uint32_t kNoSlot = UINT32_MAX;
    Buffer owned;
    View view{};
    uint32_t slot = kNoSlot;
    bool in_place() const { return slot != kNoSlot; }
    View bytes() const { return in_place() ? view : View(owned); }
  };

  /// Zero-copy send of a BORROWED payload: the caller guarantees `msg`
  /// stays valid until the send's WQE has executed (a client holding its
  /// request across the call does). Small messages go out inline; larger
  /// single-slot messages gather [header | payload] straight from the user
  /// buffer (registered through the sender node's MrCache). Messages that
  /// do not fit one slot fall back to the staged multi-segment path.
  /// `slot_prefix`, when set, is framed ahead of the payload exactly like
  /// the windowed staging path's 4-byte prefix.
  sim::Task<bool> send_zc(View msg, const uint32_t* slot_prefix = nullptr) {
    co_return co_await send_zc_impl(msg, slot_prefix, nullptr);
  }

  /// Zero-copy send of an OWNED payload (server responses whose Buffer dies
  /// when the serve task returns): ownership moves into the WQE's
  /// keep_alive, so the bytes outlive the caller without a staging copy.
  sim::Task<bool> send_zc_owned(Buffer&& msg,
                                const uint32_t* slot_prefix = nullptr) {
    auto keep = std::make_shared<const Buffer>(std::move(msg));
    co_return co_await send_zc_impl(View(*keep), slot_prefix, keep);
  }

  /// Receives one message without the staging copy where possible.
  sim::Task<std::optional<ZcMsg>> recv_zc() {
    verbs::Wc wc = co_await dst_.recv_wc();
    if (!wc.ok()) {
      last_status_ = wc.status;
      co_return std::nullopt;
    }
    uint32_t idx = static_cast<uint32_t>(wc.wr_id);
    const std::byte* s =
        recv_ring_->data() + static_cast<size_t>(idx) * cfg_.eager_slot;
    const size_t total = get_u32(s);
    if (total + 4 == wc.byte_len) {
      // Single segment: message matching is still bookkeeping work, but the
      // payload is consumed in place — no assembly copy.
      co_await dst_.node->cpu().compute(cost_.eager_match_cpu);
      zc_leased_[idx] = true;
      // The slot begins a leased lifetime owned by the consumer; the view
      // read below conflicts with anything that reposts the slot early.
      rc_sim_->rc_revive(this, idx);
      rc_sim_->rc_read(this, idx, "EagerPipe.recv_slot", RC_HERE);
      ZcMsg m;
      m.view = View{s + 4, total};
      m.slot = idx;
      co_return m;
    }
    // Multi-segment: assemble through the staged path (charged as usual).
    auto out = co_await assemble(wc);
    if (!out) co_return std::nullopt;
    ZcMsg m;
    m.owned = std::move(*out);
    co_return m;
  }

  /// Reposts an in-place message's ring slot once the consumer is done.
  /// Releasing a slot that is not leased (double release, or release after
  /// the slot was already reposted) is a no-op — reposting twice would put
  /// the slot in the recv queue twice and let two future messages land in
  /// the same bytes — and a RaceCheck lifetime diagnostic.
  void release(uint32_t slot) {
    if (slot >= zc_leased_.size() || !zc_leased_[slot]) {
      rc_sim_->rc_lifetime(this, slot, "EagerPipe.recv_slot", RC_HERE,
                           "release of a recv slot that is not leased");
      return;
    }
    zc_leased_[slot] = false;
    rc_sim_->rc_retire(this, slot, "EagerPipe.recv_slot", RC_HERE);
    post_recv_slot(slot);
  }

  /// Status of the completion that made send()/recv() bail out.
  verbs::WcStatus last_status() const { return last_status_; }

 private:
  // Staged multi-segment assembly — the legacy recv() body, with the first
  // (already polled, successful) completion handed in. Charges the eager
  // bookkeeping CPU and an assembly copy per segment, exactly as before.
  sim::Task<std::optional<Buffer>> assemble(verbs::Wc wc) {
    Buffer out;
    size_t total = 0;
    bool first = true;
    std::optional<verbs::Wc> pending;
    while (first || out.size() < total) {
      if (!first) {
        if (pending) {
          wc = *pending;
          pending.reset();
        } else {
          wc = co_await dst_.recv_wc();
          if (!wc.ok()) {
            last_status_ = wc.status;
            co_return std::nullopt;
          }
        }
      }
      uint32_t idx = static_cast<uint32_t>(wc.wr_id);
      const std::byte* s =
          recv_ring_->data() + static_cast<size_t>(idx) * cfg_.eager_slot;
      uint32_t hdr = first ? 4u : 0u;
      if (first) {
        total = get_u32(s);
        out.reserve(total);
        first = false;
      }
      uint32_t take = wc.byte_len - hdr;
      charge_copy(*dst_.node, take);
      co_await dst_.node->cpu().compute(
          cost_.eager_match_cpu +
          cost_.copy_time(take, dst_.qp->numa_local));
      out.insert(out.end(), s + hdr, s + hdr + take);
      post_recv_slot(idx);
      // Batch-drain CQEs that are already visible (ibv_poll_cq semantics) —
      // this is what keeps event-mode pickups per batch, not per segment.
      if (out.size() < total) pending = dst_.rcq->try_poll();
    }
    co_return out;
  }

  sim::Task<bool> send_zc_impl(View msg, const uint32_t* slot_prefix,
                               std::shared_ptr<const void> keep) {
    const uint32_t hdr = slot_prefix ? kZcHdrBytes : 4u;
    const uint32_t total =
        static_cast<uint32_t>(msg.size()) + (slot_prefix ? 4u : 0u);
    const uint32_t wire = hdr + static_cast<uint32_t>(msg.size());
    if (wire > cfg_.eager_slot) {
      // Does not fit one slot: segment with per-slot gather SGEs straight
      // from the user buffer (no staging copy — this copy used to dominate
      // the fig05 profile for multi-slot messages).
      co_return co_await send_zc_segmented(msg, slot_prefix, std::move(keep));
    }
    const uint32_t nslots = cfg_.eager_slots;
    while (outstanding_ > 0 && src_.scq->try_poll()) --outstanding_;
    while (outstanding_ >= nslots) {
      verbs::Wc wc = co_await src_.send_wc();
      if (!wc.ok()) {
        last_status_ = wc.status;
        co_return false;
      }
      --outstanding_;
    }
    const uint32_t idx = cursor_ % nslots;
    std::byte* h = zc_hdr_->data() + static_cast<size_t>(idx) * kZcHdrBytes;
    put_u32(h, total);
    if (slot_prefix) put_u32(h + 4, *slot_prefix);
    // Matching bookkeeping only — no staging copy on the zero-copy path.
    co_await src_.node->cpu().compute(cost_.eager_match_cpu);
    verbs::SendWr wr{.wr_id = idx,
                     .opcode = verbs::Opcode::kSend,
                     .signaled = true};
    wr.sg_list.push_back({h, hdr});
    if (!msg.empty())
      wr.sg_list.push_back(
          {const_cast<std::byte*>(msg.data()),
           static_cast<uint32_t>(msg.size())});
    if (wire <= src_.qp->max_inline_data()) {
      // Small message: the payload rides the doorbell (prepare_send
      // snapshots it into the WQE, so no lifetime obligation remains).
      wr.inline_data = true;
    } else if (!msg.empty()) {
      // Gather straight from the user buffer; register on demand.
      src_.node->pd().mr_cache().get(msg.data(), msg.size(), chan_);
      wr.keep_alive = std::move(keep);
    }
    co_await src_.qp->post_send(std::move(wr));
    ++stats_->sends;
    ++outstanding_;
    ++cursor_;
    co_return true;
  }

  // Multi-slot zero-copy send. The wire image is byte-identical to the
  // staged path — first segment [u32 total][u32 slot?][payload slice],
  // later segments raw payload slices, same per-segment byte_len — so the
  // receiver's assemble() is oblivious; only the sender-side staging copy
  // (and its copy_time compute) disappears. Each segment gathers [header |
  // payload slice]: the header rides the per-slot zc scratch ring (slot
  // reuse is gated on send completions exactly like the staged ring), the
  // payload slice comes from the user buffer registered once up front. For
  // owned payloads every segment's WQE shares the keep_alive, so the bytes
  // live until the last segment executes.
  sim::Task<bool> send_zc_segmented(View msg, const uint32_t* slot_prefix,
                                    std::shared_ptr<const void> keep) {
    const uint32_t slot = cfg_.eager_slot;
    const uint32_t nslots = cfg_.eager_slots;
    const uint32_t pfx = slot_prefix ? 4u : 0u;
    const uint32_t total = static_cast<uint32_t>(msg.size()) + pfx;
    size_t off = 0;
    bool first = true;
    while (outstanding_ > 0 && src_.scq->try_poll()) --outstanding_;
    if (!msg.empty())
      src_.node->pd().mr_cache().get(msg.data(), msg.size(), chan_);
    while (first || off < msg.size()) {
      const uint32_t idx = cursor_ % nslots;
      const uint32_t hdr = first ? 4u + pfx : 0u;
      const uint32_t take = static_cast<uint32_t>(
          std::min<size_t>(slot - hdr, msg.size() - off));
      while (outstanding_ >= nslots) {
        verbs::Wc wc = co_await src_.send_wc();
        if (!wc.ok()) {
          last_status_ = wc.status;
          co_return false;
        }
        --outstanding_;
      }
      // Matching bookkeeping only — no staging copy on the zero-copy path.
      co_await src_.node->cpu().compute(cost_.eager_match_cpu);
      verbs::SendWr wr{.wr_id = idx,
                       .opcode = verbs::Opcode::kSend,
                       .signaled = true};
      if (hdr > 0) {
        std::byte* h =
            zc_hdr_->data() + static_cast<size_t>(idx) * kZcHdrBytes;
        put_u32(h, total);
        if (slot_prefix) put_u32(h + 4, *slot_prefix);
        wr.sg_list.push_back({h, hdr});
      }
      if (take > 0)
        wr.sg_list.push_back(
            {const_cast<std::byte*>(msg.data() + off), take});
      if (keep) wr.keep_alive = keep;
      co_await src_.qp->post_send(std::move(wr));
      ++stats_->sends;
      ++outstanding_;
      off += take;
      ++cursor_;
      first = false;
    }
    co_return true;
  }

  void charge_copy(verbs::Node& node, uint64_t bytes) {
    node.counters().add(obs::Ctr::kCopyBytes, bytes);
    if (chan_) chan_->add(obs::Ctr::kCopyBytes, bytes);
  }

  void post_recv_slot(uint32_t idx) {
    dst_.qp->post_recv(verbs::RecvWr{
        .wr_id = idx,
        .buf = {recv_ring_->data() + static_cast<size_t>(idx) * cfg_.eager_slot,
                cfg_.eager_slot}});
  }

  verbs::Endpoint& src_;
  verbs::Endpoint& dst_;
  ChannelConfig cfg_;
  ChannelStats* stats_;
  obs::CounterSet* chan_;
  const verbs::CostModel& cost_;
  /// Per-slot wire-header scratch for zero-copy sends: [u32 total][u32 slot].
  static constexpr uint32_t kZcHdrBytes = 8;

  verbs::MemoryRegion* send_ring_;
  verbs::MemoryRegion* recv_ring_;
  verbs::MemoryRegion* zc_hdr_ = nullptr;
  sim::Simulator* rc_sim_;
  std::vector<bool> zc_leased_;  // in-place recv slots awaiting release()
  uint32_t outstanding_ = 0;
  uint32_t cursor_ = 0;  // staging slot cursor, persistent across messages
  verbs::WcStatus last_status_ = verbs::WcStatus::kSuccess;
};

}  // namespace hatrpc::proto
