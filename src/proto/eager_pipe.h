// One-directional eager message pipe over SEND/RECV circular buffers
// (Fig. 3a). Messages larger than one slot are segmented across the ring;
// the receiver reassembles. Each segment pays the eager bookkeeping CPU and
// a staging copy on both sides — eager's intrinsic cost that makes it a
// small-message protocol. Used by Eager-SendRecv (both directions), the
// hybrid baselines (below-threshold path), and HERD (response direction).
#pragma once

#include <optional>

#include "proto/channel.h"
#include "proto/wire.h"
#include "sim/sync.h"

namespace hatrpc::proto {

class EagerPipe {
 public:
  /// Sender stages into `send_ring` on `src`; receiver assembles from
  /// `recv_ring` on `dst`, with recvs pre-posted on dst's QP.
  EagerPipe(verbs::Node& src, verbs::QueuePair* src_qp,
            verbs::CompletionQueue* src_scq, verbs::Node& dst,
            verbs::QueuePair* dst_qp, verbs::CompletionQueue* dst_rcq,
            const ChannelConfig& cfg, bool src_numa_local, bool dst_numa_local,
            ChannelStats* stats)
      : src_(src), src_qp_(src_qp), src_scq_(src_scq), dst_(dst),
        dst_qp_(dst_qp), dst_rcq_(dst_rcq), cfg_(cfg),
        src_numa_(src_numa_local), dst_numa_(dst_numa_local), stats_(stats),
        cost_(src.fabric().cost()) {
    send_ring_ = src_.pd().alloc_mr(ring_bytes());
    recv_ring_ = dst_.pd().alloc_mr(ring_bytes());
    for (uint32_t i = 0; i < cfg_.eager_slots; ++i) post_recv_slot(i);
  }

  size_t ring_bytes() const {
    return static_cast<size_t>(cfg_.eager_slot) * cfg_.eager_slots;
  }

  /// Sends one (possibly segmented) message. Single outstanding message per
  /// pipe; slot reuse is gated on send completions (polled with the
  /// sender's discipline). Returns false (with last_status() set) if a send
  /// completes in error.
  sim::Task<bool> send(View msg, sim::PollMode sender_poll) {
    const uint32_t slot = cfg_.eager_slot;
    const uint32_t nslots = cfg_.eager_slots;
    size_t off = 0;
    uint32_t seg = 0;
    bool first = true;
    // Lazily reclaim completions from previous messages (no charge when
    // they are already visible — ibv_poll_cq batch semantics).
    while (outstanding_ > 0 && src_scq_->try_poll()) --outstanding_;
    while (first || off < msg.size()) {
      uint32_t idx = seg % nslots;
      std::byte* s = send_ring_->data() + static_cast<size_t>(idx) * slot;
      uint32_t hdr = first ? 4u : 0u;
      uint32_t take = static_cast<uint32_t>(
          std::min<size_t>(slot - hdr, msg.size() - off));
      // Slot reuse: the ring is full, wait for the oldest send to complete.
      while (outstanding_ >= nslots) {
        verbs::Wc wc = co_await src_scq_->wait(sender_poll);
        if (!wc.ok()) {
          last_status_ = wc.status;
          co_return false;
        }
        --outstanding_;
      }
      co_await src_.cpu().compute(cost_.eager_match_cpu +
                                  cost_.copy_time(take, src_numa_));
      if (first) put_u32(s, static_cast<uint32_t>(msg.size()));
      if (take > 0) std::memcpy(s + hdr, msg.data() + off, take);
      co_await src_qp_->post_send(verbs::SendWr{
          .wr_id = idx,
          .opcode = verbs::Opcode::kSend,
          .local = {s, hdr + take},
          .signaled = true});
      ++stats_->sends;
      ++outstanding_;
      off += take;
      ++seg;
      first = false;
    }
    co_return true;
  }

  /// Receives one message; nullopt when the CQ is closed (shutdown).
  sim::Task<std::optional<Buffer>> recv(sim::PollMode mode) {
    Buffer out;
    size_t total = 0;
    bool first = true;
    std::optional<verbs::Wc> pending;
    while (first || out.size() < total) {
      verbs::Wc wc;
      if (pending) {
        wc = *pending;
        pending.reset();
      } else {
        wc = co_await dst_rcq_->wait(mode);
        if (!wc.ok()) {
          last_status_ = wc.status;
          co_return std::nullopt;
        }
      }
      uint32_t idx = static_cast<uint32_t>(wc.wr_id);
      const std::byte* s =
          recv_ring_->data() + static_cast<size_t>(idx) * cfg_.eager_slot;
      uint32_t hdr = first ? 4u : 0u;
      if (first) {
        total = get_u32(s);
        out.reserve(total);
        first = false;
      }
      uint32_t take = wc.byte_len - hdr;
      co_await dst_.cpu().compute(cost_.eager_match_cpu +
                                  cost_.copy_time(take, dst_numa_));
      out.insert(out.end(), s + hdr, s + hdr + take);
      post_recv_slot(idx);
      // Batch-drain CQEs that are already visible (ibv_poll_cq semantics) —
      // this is what keeps event-mode pickups per batch, not per segment.
      if (out.size() < total) pending = dst_rcq_->try_poll();
    }
    co_return out;
  }

  /// Status of the completion that made send()/recv() bail out.
  verbs::WcStatus last_status() const { return last_status_; }

 private:
  void post_recv_slot(uint32_t idx) {
    dst_qp_->post_recv(verbs::RecvWr{
        .wr_id = idx,
        .buf = {recv_ring_->data() + static_cast<size_t>(idx) * cfg_.eager_slot,
                cfg_.eager_slot}});
  }

  verbs::Node& src_;
  verbs::QueuePair* src_qp_;
  verbs::CompletionQueue* src_scq_;
  verbs::Node& dst_;
  verbs::QueuePair* dst_qp_;
  verbs::CompletionQueue* dst_rcq_;
  ChannelConfig cfg_;
  bool src_numa_;
  bool dst_numa_;
  ChannelStats* stats_;
  const verbs::CostModel& cost_;
  verbs::MemoryRegion* send_ring_;
  verbs::MemoryRegion* recv_ring_;
  uint32_t outstanding_ = 0;
  verbs::WcStatus last_status_ = verbs::WcStatus::kSuccess;
};

}  // namespace hatrpc::proto
