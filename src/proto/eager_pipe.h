// One-directional eager message pipe over SEND/RECV circular buffers
// (Fig. 3a). Messages larger than one slot are segmented across the ring;
// the receiver reassembles. Each segment pays the eager bookkeeping CPU and
// a staging copy on both sides — eager's intrinsic cost that makes it a
// small-message protocol. Used by Eager-SendRecv (both directions), the
// hybrid baselines (below-threshold path), and HERD (response direction).
//
// Each side is an Endpoint: the pipe stages into a ring on src's node and
// assembles from a ring on dst's node, polling each side's CQs with that
// side's configured discipline.
#pragma once

#include <optional>

#include "proto/channel.h"
#include "proto/wire.h"
#include "sim/sync.h"

namespace hatrpc::proto {

class EagerPipe {
 public:
  /// Sender stages into a ring on `src`'s node; receiver assembles from a
  /// ring on `dst`'s node, with recvs pre-posted on dst's QP. `chan` (may
  /// be null) mirrors staging-copy bytes into the owning channel's scope.
  EagerPipe(verbs::Endpoint& src, verbs::Endpoint& dst,
            const ChannelConfig& cfg, ChannelStats* stats,
            obs::CounterSet* chan)
      : src_(src), dst_(dst), cfg_(cfg), stats_(stats), chan_(chan),
        cost_(src.node->fabric().cost()) {
    send_ring_ = src_.node->pd().alloc_mr(ring_bytes());
    recv_ring_ = dst_.node->pd().alloc_mr(ring_bytes());
    for (uint32_t i = 0; i < cfg_.eager_slots; ++i) post_recv_slot(i);
  }

  size_t ring_bytes() const {
    return static_cast<size_t>(cfg_.eager_slot) * cfg_.eager_slots;
  }

  /// Sends one (possibly segmented) message. Multiple whole messages may be
  /// in flight back-to-back (windowed callers serialize send() itself); the
  /// staging cursor therefore persists across messages, and slot reuse is
  /// gated on send completions (polled with the sender's discipline) so a
  /// new message never overwrites a slot whose send is still outstanding.
  /// Returns false (with last_status() set) if a send completes in error.
  sim::Task<bool> send(View msg) {
    const uint32_t slot = cfg_.eager_slot;
    const uint32_t nslots = cfg_.eager_slots;
    size_t off = 0;
    bool first = true;
    // Lazily reclaim completions from previous messages (no charge when
    // they are already visible — ibv_poll_cq batch semantics).
    while (outstanding_ > 0 && src_.scq->try_poll()) --outstanding_;
    while (first || off < msg.size()) {
      uint32_t idx = cursor_ % nslots;
      std::byte* s = send_ring_->data() + static_cast<size_t>(idx) * slot;
      uint32_t hdr = first ? 4u : 0u;
      uint32_t take = static_cast<uint32_t>(
          std::min<size_t>(slot - hdr, msg.size() - off));
      // Slot reuse: the ring is full, wait for the oldest send to complete.
      while (outstanding_ >= nslots) {
        verbs::Wc wc = co_await src_.send_wc();
        if (!wc.ok()) {
          last_status_ = wc.status;
          co_return false;
        }
        --outstanding_;
      }
      charge_copy(*src_.node, take);
      co_await src_.node->cpu().compute(
          cost_.eager_match_cpu +
          cost_.copy_time(take, src_.qp->numa_local));
      if (first) put_u32(s, static_cast<uint32_t>(msg.size()));
      if (take > 0) std::memcpy(s + hdr, msg.data() + off, take);
      co_await src_.qp->post_send(verbs::SendWr{
          .wr_id = idx,
          .opcode = verbs::Opcode::kSend,
          .local = {s, hdr + take},
          .signaled = true});
      ++stats_->sends;
      ++outstanding_;
      off += take;
      ++cursor_;
      first = false;
    }
    co_return true;
  }

  /// Receives one message; nullopt when the CQ is closed (shutdown).
  sim::Task<std::optional<Buffer>> recv() {
    Buffer out;
    size_t total = 0;
    bool first = true;
    std::optional<verbs::Wc> pending;
    while (first || out.size() < total) {
      verbs::Wc wc;
      if (pending) {
        wc = *pending;
        pending.reset();
      } else {
        wc = co_await dst_.recv_wc();
        if (!wc.ok()) {
          last_status_ = wc.status;
          co_return std::nullopt;
        }
      }
      uint32_t idx = static_cast<uint32_t>(wc.wr_id);
      const std::byte* s =
          recv_ring_->data() + static_cast<size_t>(idx) * cfg_.eager_slot;
      uint32_t hdr = first ? 4u : 0u;
      if (first) {
        total = get_u32(s);
        out.reserve(total);
        first = false;
      }
      uint32_t take = wc.byte_len - hdr;
      charge_copy(*dst_.node, take);
      co_await dst_.node->cpu().compute(
          cost_.eager_match_cpu +
          cost_.copy_time(take, dst_.qp->numa_local));
      out.insert(out.end(), s + hdr, s + hdr + take);
      post_recv_slot(idx);
      // Batch-drain CQEs that are already visible (ibv_poll_cq semantics) —
      // this is what keeps event-mode pickups per batch, not per segment.
      if (out.size() < total) pending = dst_.rcq->try_poll();
    }
    co_return out;
  }

  /// Status of the completion that made send()/recv() bail out.
  verbs::WcStatus last_status() const { return last_status_; }

 private:
  void charge_copy(verbs::Node& node, uint64_t bytes) {
    node.counters().add(obs::Ctr::kCopyBytes, bytes);
    if (chan_) chan_->add(obs::Ctr::kCopyBytes, bytes);
  }

  void post_recv_slot(uint32_t idx) {
    dst_.qp->post_recv(verbs::RecvWr{
        .wr_id = idx,
        .buf = {recv_ring_->data() + static_cast<size_t>(idx) * cfg_.eager_slot,
                cfg_.eager_slot}});
  }

  verbs::Endpoint& src_;
  verbs::Endpoint& dst_;
  ChannelConfig cfg_;
  ChannelStats* stats_;
  obs::CounterSet* chan_;
  const verbs::CostModel& cost_;
  verbs::MemoryRegion* send_ring_;
  verbs::MemoryRegion* recv_ring_;
  uint32_t outstanding_ = 0;
  uint32_t cursor_ = 0;  // staging slot cursor, persistent across messages
  verbs::WcStatus last_status_ = verbs::WcStatus::kSuccess;
};

}  // namespace hatrpc::proto
