// Typed RPC errors. Every failure a channel can surface maps onto a small
// set of categories the reliability layer keys its retry/fallback decisions
// off; the originating ibv_wc_status (when there is one) rides along for
// diagnostics.
#pragma once

#include <stdexcept>
#include <string>

#include "verbs/completion.h"

namespace hatrpc::proto {

enum class RpcErrc : uint8_t {
  kChannelClosed,     // CQ shut down / WRs flushed (local teardown)
  kTransport,         // retry or RNR exhaustion: peer dead or overloaded
  kRemoteAccess,      // rkey/bounds/revocation NAK or responder fault
  kTimeout,           // client-side per-attempt deadline expired
  kRetriesExhausted,  // the reliability layer gave up after max_attempts
  kDeadlineExceeded,  // the call's TOTAL retry budget ran out first
};

constexpr const char* to_string(RpcErrc e) {
  switch (e) {
    case RpcErrc::kChannelClosed: return "channel-closed";
    case RpcErrc::kTransport: return "transport";
    case RpcErrc::kRemoteAccess: return "remote-access";
    case RpcErrc::kTimeout: return "timeout";
    case RpcErrc::kRetriesExhausted: return "retries-exhausted";
    case RpcErrc::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "unknown";
}

class RpcError : public std::runtime_error {
 public:
  RpcError(RpcErrc errc, std::string what,
           verbs::WcStatus wc = verbs::WcStatus::kSuccess)
      : std::runtime_error(std::move(what)), errc_(errc), wc_(wc) {}

  RpcErrc errc() const { return errc_; }
  verbs::WcStatus wc_status() const { return wc_; }

 private:
  RpcErrc errc_;
  verbs::WcStatus wc_;
};

/// Maps a completion status onto the retry-relevant category.
constexpr RpcErrc classify(verbs::WcStatus s) {
  using S = verbs::WcStatus;
  switch (s) {
    case S::kRemAccessErr:
    case S::kRemOpErr:
    case S::kLocProtErr:
    case S::kLocLenErr:
      return RpcErrc::kRemoteAccess;
    case S::kRnrRetryExcErr:
    case S::kRetryExcErr:
      return RpcErrc::kTransport;
    default:
      return RpcErrc::kChannelClosed;
  }
}

[[noreturn]] inline void throw_wc(const char* who, verbs::WcStatus s) {
  throw RpcError(classify(s),
                 std::string(who) + ": " + verbs::to_string(s), s);
}

}  // namespace hatrpc::proto
