// Eager-SendRecv protocol (Fig. 3a): payloads travel inside pre-posted
// circular-buffer slots together with the control message. Cheap setup and
// modest pinned memory, but every byte is staged through a slot copy on
// both sides, so it suits small messages (and the res_util hint).
#pragma once

#include "proto/base.h"
#include "proto/eager_pipe.h"
#include "proto/error.h"

namespace hatrpc::proto {

class EagerChannel : public ChannelBase {
 public:
  sim::Task<Buffer> do_call(View req, uint32_t /*resp_size_hint*/) override {
    if (!co_await c2s_.send(req))
      throw_wc("eager send", c2s_.last_status());
    auto resp = co_await s2c_.recv();
    if (!resp) throw_wc("eager recv", s2c_.last_status());
    co_return std::move(*resp);
  }

 protected:
  sim::Task<void> serve() override {
    while (!stop_) {
      auto req = co_await c2s_.recv();
      if (!req) break;
      Buffer resp = co_await run_handler(*req);
      if (!co_await s2c_.send(resp)) break;
    }
  }

 private:
  EagerChannel(verbs::Node& client, verbs::Node& server, Handler handler,
               ChannelConfig cfg)
      : ChannelBase(ProtocolKind::kEagerSendRecv, client, server,
                    std::move(handler), cfg),
        c2s_(cep_, sep_, cfg_, &stats_, channel_counters()),
        s2c_(sep_, cep_, cfg_, &stats_, channel_counters()) {
    // Each pipe pins one ring per side.
    stats_.client_registered += c2s_.ring_bytes() + s2c_.ring_bytes();
    stats_.server_registered += c2s_.ring_bytes() + s2c_.ring_bytes();
  }

  friend std::unique_ptr<RpcChannel> make_channel(ProtocolKind,
                                                  verbs::Node&, verbs::Node&,
                                                  Handler, ChannelConfig);

  EagerPipe c2s_;
  EagerPipe s2c_;
};

}  // namespace hatrpc::proto
