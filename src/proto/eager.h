// Eager-SendRecv protocol (Fig. 3a): payloads travel inside pre-posted
// circular-buffer slots together with the control message. Cheap setup and
// modest pinned memory, but every byte is staged through a slot copy on
// both sides, so it suits small messages (and the res_util hint).
//
// Pipelining (window > 1): messages gain a 4-byte slot prefix so responses
// can be routed back to the right pending call; whole-message sends are
// serialized per pipe direction (the ring is a shared resource) while the
// window lets multiple requests be in flight and the server handle them
// concurrently. window=1 keeps the classic unprefixed framing bit-for-bit.
#pragma once

#include "proto/base.h"
#include "proto/eager_pipe.h"
#include "proto/error.h"

namespace hatrpc::proto {

class EagerChannel : public ChannelBase {
 public:
  sim::Task<Buffer> do_call(View req, uint32_t /*resp_size_hint*/) override {
    if (cfg_.window == 1) {
      if (cfg_.zero_copy) co_return co_await do_call_zc(req);
      if (!co_await c2s_.send(req))
        throw_wc("eager send", c2s_.last_status());
      auto resp = co_await s2c_.recv();
      if (!resp) throw_wc("eager recv", s2c_.last_status());
      co_return std::move(*resp);
    }
    uint32_t slot = co_await acquire_slot();
    if (dead_) {
      release_slot(slot);
      throw_wc("eager recv", dead_status_);
    }
    auto pend = sim::pooled_shared<PendingCall>(sim_);
    pending_[slot] = pend;
    bool sent;
    if (cfg_.zero_copy) {
      // The request gathers straight out of the caller's buffer (which
      // outlives the call); the slot tag rides the gathered wire header.
      auto guard = co_await send_mu_.scoped();
      sent = co_await c2s_.send_zc(req, &slot);
    } else {
      Buffer framed(4 + req.size());
      put_u32(framed.data(), slot);
      if (!req.empty())
        std::memcpy(framed.data() + 4, req.data(), req.size());
      auto guard = co_await send_mu_.scoped();
      sent = co_await c2s_.send(framed);
    }
    if (!sent) {
      pending_[slot].reset();
      release_slot(slot);
      throw_wc("eager send", c2s_.last_status());
    }
    co_await pend->done.wait();
    pending_[slot].reset();
    if (pend->status != verbs::WcStatus::kSuccess) {
      release_slot(slot);
      throw_wc("eager recv", pend->status);
    }
    Buffer out = std::move(pend->resp);
    release_slot(slot);
    co_return out;
  }

  /// Leased receive (the satellite of the fig05 profile): single-segment
  /// responses are handed to the caller as a view into the s2c recv ring,
  /// skipping the client-side materialization copy entirely; the ring slot
  /// is reposted when the LeasedReply dies. Every outstanding lease parks
  /// one of the pipe's eager_slots recvs, so leased delivery is only
  /// offered while the window cannot park more than half the ring —
  /// otherwise (and on non-zero-copy channels) fall back to the staged
  /// copying path with an owned buffer.
  sim::Task<LeasedReply> do_call_leased(View req,
                                        uint32_t resp_size_hint) override {
    if (!cfg_.zero_copy || 2 * cfg_.window > cfg_.eager_slots)
      co_return LeasedReply(co_await do_call(req, resp_size_hint));
    if (cfg_.window == 1) {
      if (!co_await c2s_.send_zc(req))
        throw_wc("eager send", c2s_.last_status());
      auto m = co_await s2c_.recv_zc();
      if (!m) throw_wc("eager recv", s2c_.last_status());
      if (!m->in_place()) co_return LeasedReply(std::move(m->owned));
      count_lease();
      const uint32_t ring = m->slot;
      co_return LeasedReply(m->view, [this, ring] { s2c_.release(ring); });
    }
    uint32_t slot = co_await acquire_slot();
    if (dead_) {
      release_slot(slot);
      throw_wc("eager recv", dead_status_);
    }
    auto pend = sim::pooled_shared<PendingCall>(sim_);
    pend->lease_wanted = true;
    pending_[slot] = pend;
    bool sent;
    {
      auto guard = co_await send_mu_.scoped();
      sent = co_await c2s_.send_zc(req, &slot);
    }
    if (!sent) {
      pending_[slot].reset();
      release_slot(slot);
      throw_wc("eager send", c2s_.last_status());
    }
    co_await pend->done.wait();
    pending_[slot].reset();
    if (pend->status != verbs::WcStatus::kSuccess) {
      release_slot(slot);
      throw_wc("eager recv", pend->status);
    }
    release_slot(slot);
    if (pend->lease_slot != UINT32_MAX) {
      count_lease();
      const uint32_t ring = pend->lease_slot;
      View v = pend->lease_view;
      co_return LeasedReply(v, [this, ring] { s2c_.release(ring); });
    }
    co_return LeasedReply(std::move(pend->resp));
  }

 protected:
  sim::Task<void> serve() override {
    if (cfg_.zero_copy) co_return co_await serve_zc();
    while (!stop_) {
      auto req = co_await c2s_.recv();
      if (!req) break;
      if (cfg_.window == 1) {
        Buffer resp = co_await run_handler(*req);
        if (!co_await s2c_.send(resp)) break;
      } else {
        sim_.spawn(serve_one(std::move(*req)));
      }
    }
  }

  void start() override {
    ChannelBase::start();
    if (cfg_.window > 1)
      sim_.spawn(cfg_.zero_copy ? client_dispatch_zc() : client_dispatch());
  }

 private:
  EagerChannel(verbs::Node& client, verbs::Node& server, Handler handler,
               ChannelConfig cfg)
      : ChannelBase(ProtocolKind::kEagerSendRecv, client, server,
                    std::move(handler), cfg),
        c2s_(cep_, sep_, cfg_, &stats_, channel_counters()),
        s2c_(sep_, cep_, cfg_, &stats_, channel_counters()),
        send_mu_(sim_), srv_send_mu_(sim_) {
    // Each pipe pins one ring per side.
    stats_.client_registered += c2s_.ring_bytes() + s2c_.ring_bytes();
    stats_.server_registered += c2s_.ring_bytes() + s2c_.ring_bytes();
    pending_.resize(cfg_.window);
  }

  friend std::unique_ptr<RpcChannel> make_channel(ProtocolKind,
                                                  verbs::Node&, verbs::Node&,
                                                  Handler, ChannelConfig);

  // ---- Zero-copy paths ---------------------------------------------------
  // The single payload copy per direction happens where the user-facing
  // Buffer is materialized (client side); the server handler runs over the
  // recv ring in place and responds from an owned buffer whose lifetime
  // rides the WQE. 64B echo: 1 client copy, 0 server copies, both sends
  // inline.

  void count_lease() {
    cl_.counters().add(obs::Ctr::kRecvLeases);
    if (auto* c = channel_counters()) c->add(obs::Ctr::kRecvLeases);
  }

  sim::Task<Buffer> do_call_zc(View req) {
    if (!co_await c2s_.send_zc(req))
      throw_wc("eager send", c2s_.last_status());
    auto m = co_await s2c_.recv_zc();
    if (!m) throw_wc("eager recv", s2c_.last_status());
    if (!m->in_place()) co_return std::move(m->owned);
    co_await charge_client_copy(m->view.size());
    Buffer out(m->view.begin(), m->view.end());
    s2c_.release(m->slot);
    co_return out;
  }

  sim::Task<void> serve_zc() {
    while (!stop_) {
      auto m = co_await c2s_.recv_zc();
      if (!m) break;
      if (cfg_.window == 1) {
        Buffer resp = co_await run_handler(m->bytes());
        if (m->in_place()) c2s_.release(m->slot);
        if (!co_await s2c_.send_zc_owned(std::move(resp))) break;
      } else {
        sim_.spawn(serve_one_zc(std::move(*m)));
      }
    }
  }

  sim::Task<void> serve_one_zc(EagerPipe::ZcMsg m) {
    View b = m.bytes();
    uint32_t slot = get_u32(b.data());
    Buffer resp = co_await run_handler(View{b.data() + 4, b.size() - 4});
    if (m.in_place()) c2s_.release(m.slot);
    auto guard = co_await srv_send_mu_.scoped();
    co_await s2c_.send_zc_owned(std::move(resp), &slot);
  }

  sim::Task<void> client_dispatch_zc() {
    for (;;) {
      auto m = co_await s2c_.recv_zc();
      if (!m) {
        mark_dead(s2c_.last_status());
        for (auto& p : pending_)
          if (p) {
            p->status = dead_status_;
            p->done.set();
          }
        co_return;
      }
      View b = m->bytes();
      uint32_t slot = get_u32(b.data());
      if (slot < pending_.size()) {
        if (auto& p = pending_[slot]) {
          if (p->lease_wanted && m->in_place()) {
            // Park the in-place view; the caller's LeasedReply owns the
            // ring slot now and reposts it on release — no copy here.
            p->lease_view = View{b.data() + 4, b.size() - 4};
            p->lease_slot = m->slot;
            p->status = verbs::WcStatus::kSuccess;
            p->done.set();
            continue;
          }
          co_await charge_client_copy(b.size() - 4);
          p->resp.assign(b.begin() + 4, b.end());
          p->status = verbs::WcStatus::kSuccess;
          p->done.set();
        }
      }
      if (m->in_place()) s2c_.release(m->slot);
    }
  }

  sim::Task<void> serve_one(Buffer req) {
    uint32_t slot = get_u32(req.data());
    Buffer resp =
        co_await run_handler(View{req.data() + 4, req.size() - 4});
    Buffer framed(4 + resp.size());
    put_u32(framed.data(), slot);
    if (!resp.empty())
      std::memcpy(framed.data() + 4, resp.data(), resp.size());
    auto guard = co_await srv_send_mu_.scoped();
    co_await s2c_.send(framed);
  }

  sim::Task<void> client_dispatch() {
    for (;;) {
      auto m = co_await s2c_.recv();
      if (!m) {
        mark_dead(s2c_.last_status());
        for (auto& p : pending_)
          if (p) {
            p->status = dead_status_;
            p->done.set();
          }
        co_return;
      }
      uint32_t slot = get_u32(m->data());
      if (slot < pending_.size()) {
        if (auto& p = pending_[slot]) {
          p->resp.assign(m->begin() + 4, m->end());
          p->status = verbs::WcStatus::kSuccess;
          p->done.set();
        }
      }
    }
  }

  EagerPipe c2s_;
  EagerPipe s2c_;
  sim::Mutex send_mu_;
  sim::Mutex srv_send_mu_;
  std::vector<std::shared_ptr<PendingCall>> pending_;
};

}  // namespace hatrpc::proto
