// Eager-SendRecv protocol (Fig. 3a): payloads travel inside pre-posted
// circular-buffer slots together with the control message. Cheap setup and
// modest pinned memory, but every byte is staged through a slot copy on
// both sides, so it suits small messages (and the res_util hint).
#pragma once

#include "proto/base.h"
#include "proto/eager_pipe.h"
#include "proto/error.h"

namespace hatrpc::proto {

class EagerChannel : public ChannelBase {
 public:
  EagerChannel(verbs::Node& client, verbs::Node& server, Handler handler,
               ChannelConfig cfg)
      : ChannelBase(ProtocolKind::kEagerSendRecv, client, server,
                    std::move(handler), cfg),
        c2s_(cl_, cqp_, c_scq_, sv_, sqp_, s_rcq_, cfg_,
             cfg_.client_numa_local, cfg_.server_numa_local, &stats_),
        s2c_(sv_, sqp_, s_scq_, cl_, cqp_, c_rcq_, cfg_,
             cfg_.server_numa_local, cfg_.client_numa_local, &stats_) {
    // Each pipe pins one ring per side.
    stats_.client_registered += c2s_.ring_bytes() + s2c_.ring_bytes();
    stats_.server_registered += c2s_.ring_bytes() + s2c_.ring_bytes();
  }

  sim::Task<Buffer> call(View req, uint32_t /*resp_size_hint*/) override {
    ++stats_.calls;
    if (!co_await c2s_.send(req, cfg_.client_poll))
      throw_wc("eager send", c2s_.last_status());
    auto resp = co_await s2c_.recv(cfg_.client_poll);
    if (!resp) throw_wc("eager recv", s2c_.last_status());
    co_return std::move(*resp);
  }

 protected:
  sim::Task<void> serve() override {
    while (!stop_) {
      auto req = co_await c2s_.recv(cfg_.server_poll);
      if (!req) break;
      Buffer resp = co_await handler_(*req);
      if (!co_await s2c_.send(resp, cfg_.server_poll)) break;
    }
  }

 private:
  EagerPipe c2s_;
  EagerPipe s2c_;
};

}  // namespace hatrpc::proto
