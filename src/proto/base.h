// Shared scaffolding for protocol implementations: one connected Endpoint
// per side (QP + send/recv CQs + polling discipline), MR accounting, copy
// charging, and serve-loop lifecycle. Each protocol subclass implements
// do_call() and serve().
//
// Software-copy charging policy (kept consistent across protocols so the
// comparison is fair — see DESIGN.md):
//   * eager-style slot staging IS charged on both sides (bounded slots force
//     a user<->slot copy; this is eager's intrinsic cost);
//   * rendezvous / direct / READ-based payload paths are zero-copy (the
//     "user buffer" is the channel's pre-registered payload region);
//   * server-bypass protocols (Pilaf/FaRM/RFP) charge the server-side copy
//     of the response into the exported region the client READs from;
//   * HERD's SEND response is eager-style and charged like eager.
#pragma once

#include <memory>

#include "proto/channel.h"
#include "proto/wire.h"
#include "sim/sync.h"

namespace hatrpc::proto {

/// One in-flight call's rendezvous point between do_call() and the
/// channel's completion dispatcher: the dispatcher fills len/status and
/// fires done; do_call() resumes and reads its slot's buffers.
struct PendingCall {
  explicit PendingCall(sim::Simulator& sim) : done(sim) {}
  sim::Event done;
  uint32_t len = 0;
  Buffer resp;  // used by protocols whose dispatcher owns the resp bytes
  verbs::WcStatus status = verbs::WcStatus::kSuccess;
  /// Leased delivery (call_leased): the caller asks the dispatcher to park
  /// the in-place ring view instead of materializing a copy; the ring slot
  /// rides to the caller's LeasedReply, which reposts it on release.
  bool lease_wanted = false;
  View lease_view{};
  uint32_t lease_slot = UINT32_MAX;  // UINT32_MAX = delivered owned
};

class ChannelBase : public RpcChannel {
 public:
  ProtocolKind kind() const override { return kind_; }

  void shutdown() override {
    stop_ = true;
    cep_.close();
    sep_.close();
    extra_shutdown();
  }

  // ---- Live reconfiguration (adaptive hints) ----------------------------

  /// The polling discipline is read per CQ wait, so flipping it here takes
  /// effect on the very next wait without disturbing anything in flight.
  void set_poll_modes(sim::PollMode client, sim::PollMode server) override {
    cep_.poll = client;
    sep_.poll = server;
    cfg_.client_poll = client;
    cfg_.server_poll = server;
  }

  /// Bounds the circulating window to `n` slots without reallocating ring
  /// resources. Shrinking withholds free slots synchronously (and catches
  /// the rest in release_slot as in-flight calls drain); growing re-releases
  /// withheld slots up to the allocated cfg_.window. Everything here is
  /// synchronous — no awaits — so an in-flight slot is never reconfigured.
  bool resize_window(uint32_t n) override {
    if (n == 0) n = 1;
    if (n > cfg_.window) return false;  // beyond allocation: rebuild needed
    if (cfg_.window == 1) return n == 1;  // unwindowed channels have no pool
    target_window_ = n;
    while (live_window_ > target_window_) {
      auto s = free_slots_.try_pop();
      if (!s) break;  // the rest are in flight; release_slot withholds them
      withheld_.push_back(*s);
      --live_window_;
    }
    while (live_window_ < target_window_ && !withheld_.empty()) {
      free_slots_.push(withheld_.back());
      withheld_.pop_back();
      ++live_window_;
    }
    return true;
  }

  void abort() override {
    cep_.enter_error();
    sep_.enter_error();
    shutdown();
  }

 protected:
  ChannelBase(ProtocolKind kind, verbs::Node& client, verbs::Node& server,
              Handler handler, ChannelConfig cfg)
      : kind_(kind), cl_(client), sv_(server), handler_(std::move(handler)),
        cfg_(cfg), cost_(client.fabric().cost()),
        sim_(client.fabric().simulator()),
        cep_(verbs::make_endpoint(client, cfg.client_poll)),
        sep_(verbs::make_endpoint(server, cfg.server_poll)),
        free_slots_(client.fabric().simulator()) {
    cep_.qp->numa_local = cfg_.client_numa_local;
    sep_.qp->numa_local = cfg_.server_numa_local;
    verbs::connect(cep_, sep_);
    bind_obs(client.fabric(), client.id());
    cep_.qp->attach_counters(channel_counters());
    sep_.qp->attach_counters(channel_counters());
    // Per-core sharded servers: pin the server-side polling to the shard's
    // core and mirror CQE consumption into the shard's counter scope.
    if (cfg_.server_core >= 0) {
      sep_.scq->bind_core(cfg_.server_core);
      sep_.rcq->bind_core(cfg_.server_core);
    }
    if (cfg_.shard_counters) {
      sep_.scq->attach_shard(cfg_.shard_counters);
      sep_.rcq->attach_shard(cfg_.shard_counters);
    }
    if (cfg_.window == 0) cfg_.window = 1;
    if (cfg_.window > kMaxWindow)
      throw std::length_error("channel window exceeds the slot-tag range");
    for (uint32_t s = 0; s < cfg_.window; ++s) free_slots_.push(s);
    live_window_ = target_window_ = cfg_.window;
    inflight_gauge_ = cfg_.shard_inflight;
  }

  /// Spawns the protocol's server loop(s); called by the factory after the
  /// subclass is fully constructed.
  virtual void start() { sim_.spawn(serve()); }
  virtual sim::Task<void> serve() = 0;
  virtual void extra_shutdown() {}

  /// Runs the user handler, wrapped in a virtual-time span when tracing.
  sim::Task<Buffer> run_handler(View req) {
    if (!obs_->tracer.enabled()) co_return co_await handler_(req);
    const sim::Time t0 = sim_.now();
    Buffer resp = co_await handler_(req);
    obs_->tracer.complete("handler", "rpc", t0, sim_.now() - t0, sv_.id(),
                          obs_channel_id());
    co_return resp;
  }

  verbs::MemoryRegion* alloc_client_mr(size_t n) {
    stats_.client_registered += n;
    return cl_.pd().alloc_mr(n);
  }
  verbs::MemoryRegion* alloc_server_mr(size_t n) {
    stats_.server_registered += n;
    return sv_.pd().alloc_mr(n);
  }

  /// Eager-style staging copy at the client / server (see policy above).
  sim::Task<void> charge_client_copy(size_t bytes) {
    cl_.counters().add(obs::Ctr::kCopyBytes, bytes);
    channel_counters()->add(obs::Ctr::kCopyBytes, bytes);
    return cl_.cpu().compute(
        cost_.copy_time(bytes, cfg_.client_numa_local));
  }
  sim::Task<void> charge_server_copy(size_t bytes) {
    sv_.counters().add(obs::Ctr::kCopyBytes, bytes);
    channel_counters()->add(obs::Ctr::kCopyBytes, bytes);
    return sv_.cpu().compute(
        cost_.copy_time(bytes, cfg_.server_numa_local));
  }

  // ---- Sliding-window scaffolding ---------------------------------------
  // Completions carry the originating call's window slot in the top byte of
  // the 32-bit imm (the low 24 bits keep the length), so a dispatcher can
  // route each completion to the right pending call().
  static constexpr uint32_t kSlotShift = 24;
  static constexpr uint32_t kLenMask = (1u << kSlotShift) - 1;
  static constexpr uint32_t kMaxWindow = 256;
  static constexpr uint32_t slot_imm(uint32_t slot, uint32_t len) {
    return (slot << kSlotShift) | len;
  }
  static constexpr uint32_t imm_slot(uint32_t imm) {
    return imm >> kSlotShift;
  }
  static constexpr uint32_t imm_len(uint32_t imm) { return imm & kLenMask; }

  /// Claims a window slot, blocking (and counting a window_stall) while all
  /// cfg_.window slots are in flight.
  sim::Task<uint32_t> acquire_slot() {
    if (free_slots_.size() == 0) {
      cl_.counters().add(obs::Ctr::kWindowStalls);
      channel_counters()->add(obs::Ctr::kWindowStalls);
      if (cfg_.shard_counters)
        cfg_.shard_counters->add(obs::Ctr::kWindowStalls);
    }
    auto s = co_await free_slots_.pop();
    if (!s)  // the pool is never closed; defensive
      throw RpcError(RpcErrc::kChannelClosed, "window slot pool closed");
    co_return *s;
  }
  void release_slot(uint32_t s) {
    // A live shrink withholds slots as their calls come home instead of
    // recirculating them (resize_window above).
    if (live_window_ > target_window_) {
      withheld_.push_back(s);
      --live_window_;
      return;
    }
    free_slots_.push(s);
  }

  /// Once a dispatcher consumes a terminal completion the channel is dead:
  /// calls that acquire a slot after that point fail immediately instead of
  /// waiting for a response that will never be routed.
  void mark_dead(verbs::WcStatus st) {
    if (!dead_) {
      dead_ = true;
      dead_status_ = st;
    }
  }

  ProtocolKind kind_;
  verbs::Node& cl_;
  verbs::Node& sv_;
  Handler handler_;
  ChannelConfig cfg_;
  const verbs::CostModel& cost_;
  sim::Simulator& sim_;
  verbs::Endpoint cep_;  // client side
  verbs::Endpoint sep_;  // server side
  sim::Channel<uint32_t> free_slots_;
  uint32_t live_window_ = 1;    // slots circulating (free or in flight)
  uint32_t target_window_ = 1;  // live bound set by resize_window
  std::vector<uint32_t> withheld_;  // parked slots awaiting a re-grow
  bool stop_ = false;
  bool dead_ = false;
  verbs::WcStatus dead_status_ = verbs::WcStatus::kWrFlushErr;

  friend std::unique_ptr<RpcChannel> make_channel(ProtocolKind,
                                                  verbs::Node&, verbs::Node&,
                                                  Handler, ChannelConfig);
};

}  // namespace hatrpc::proto
