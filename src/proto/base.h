// Shared scaffolding for protocol implementations: connected endpoints
// (QPs + CQs on both nodes), MR accounting, copy charging, and serve-loop
// lifecycle. Each protocol subclass implements call() and serve().
//
// Software-copy charging policy (kept consistent across protocols so the
// comparison is fair — see DESIGN.md):
//   * eager-style slot staging IS charged on both sides (bounded slots force
//     a user<->slot copy; this is eager's intrinsic cost);
//   * rendezvous / direct / READ-based payload paths are zero-copy (the
//     "user buffer" is the channel's pre-registered payload region);
//   * server-bypass protocols (Pilaf/FaRM/RFP) charge the server-side copy
//     of the response into the exported region the client READs from;
//   * HERD's SEND response is eager-style and charged like eager.
#pragma once

#include <memory>

#include "proto/channel.h"
#include "proto/wire.h"
#include "sim/sync.h"

namespace hatrpc::proto {

class ChannelBase : public RpcChannel {
 public:
  ProtocolKind kind() const override { return kind_; }

  void shutdown() override {
    stop_ = true;
    c_scq_->close();
    c_rcq_->close();
    s_scq_->close();
    s_rcq_->close();
    extra_shutdown();
  }

  void abort() override {
    cqp_->enter_error();
    sqp_->enter_error();
    shutdown();
  }

 protected:
  ChannelBase(ProtocolKind kind, verbs::Node& client, verbs::Node& server,
              Handler handler, ChannelConfig cfg)
      : kind_(kind), cl_(client), sv_(server), handler_(std::move(handler)),
        cfg_(cfg), cost_(client.fabric().cost()),
        sim_(client.fabric().simulator()) {
    c_scq_ = cl_.create_cq();
    c_rcq_ = cl_.create_cq();
    s_scq_ = sv_.create_cq();
    s_rcq_ = sv_.create_cq();
    cqp_ = cl_.create_qp(*c_scq_, *c_rcq_);
    sqp_ = sv_.create_qp(*s_scq_, *s_rcq_);
    cqp_->numa_local = cfg_.client_numa_local;
    sqp_->numa_local = cfg_.server_numa_local;
    verbs::Fabric::connect(*cqp_, *sqp_);
  }

  /// Spawns the protocol's server loop(s); called by the factory after the
  /// subclass is fully constructed.
  virtual void start() { sim_.spawn(serve()); }
  virtual sim::Task<void> serve() = 0;
  virtual void extra_shutdown() {}

  verbs::MemoryRegion* alloc_client_mr(size_t n) {
    stats_.client_registered += n;
    return cl_.pd().alloc_mr(n);
  }
  verbs::MemoryRegion* alloc_server_mr(size_t n) {
    stats_.server_registered += n;
    return sv_.pd().alloc_mr(n);
  }

  /// Eager-style staging copy at the client / server (see policy above).
  sim::Task<void> charge_client_copy(size_t bytes) {
    return cl_.cpu().compute(
        cost_.copy_time(bytes, cfg_.client_numa_local));
  }
  sim::Task<void> charge_server_copy(size_t bytes) {
    return sv_.cpu().compute(
        cost_.copy_time(bytes, cfg_.server_numa_local));
  }

  ProtocolKind kind_;
  verbs::Node& cl_;
  verbs::Node& sv_;
  Handler handler_;
  ChannelConfig cfg_;
  const verbs::CostModel& cost_;
  sim::Simulator& sim_;
  verbs::CompletionQueue* c_scq_;
  verbs::CompletionQueue* c_rcq_;
  verbs::CompletionQueue* s_scq_;
  verbs::CompletionQueue* s_rcq_;
  verbs::QueuePair* cqp_;
  verbs::QueuePair* sqp_;
  bool stop_ = false;

  friend std::unique_ptr<RpcChannel> make_channel(ProtocolKind,
                                                  verbs::Node&, verbs::Node&,
                                                  Handler, ChannelConfig);
};

}  // namespace hatrpc::proto
