// Pooled, pre-registered serialization buffers for the zero-copy send path.
//
// A BufferPool owns one slab of host memory, registers it up front through
// the owning node's MrCache (so every send posted from a lease is a cache
// hit, never a per-call registration), and hands out fixed-size blocks as
// RAII leases. Serialization writes land directly in registered memory —
// the Thrift bridge (thrift::TRdma) serializes into a lease and the channel
// gathers from it without a staging copy.
//
// Re-acquiring a block that served an earlier call is the pool working as
// intended (warm, registered memory) and is counted as a pool_buffer_reuse.
// When the pool is exhausted the lease falls back to a plain heap block;
// sends from it still work (the MrCache registers it on demand) but lose
// the pre-registration benefit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/counters.h"
#include "sim/rc_annotate.h"
#include "verbs/verbs.h"

namespace hatrpc::proto {

class BufferPool {
 public:
  /// `chan` (may be null) mirrors pool counters into a channel scope.
  BufferPool(verbs::Node& node, uint32_t block_bytes, uint32_t blocks,
             obs::CounterSet* chan = nullptr)
      : node_(node), chan_(chan), block_(block_bytes),
        blocks_(blocks == 0 ? 1 : blocks),
        storage_(std::make_unique_for_overwrite<std::byte[]>(
            static_cast<size_t>(block_bytes) * (blocks == 0 ? 1 : blocks))),
        used_(blocks_, false), leased_(blocks_, false),
        rc_sim_(&node.fabric().simulator()) {
    slab_mr_ = node.pd().mr_cache().get(
        storage_.get(), static_cast<size_t>(block_) * blocks_, chan_);
    free_.reserve(blocks_);
    for (uint32_t i = blocks_; i-- > 0;) free_.push_back(i);
  }

  // Racecheck histories are keyed on the pool's address; the moved-from
  // shell's destructor forgets them, so a recycled address starts clean.
  // (Runtime never actually moves a live pool — containers emplace in
  // place — but vector/optional require move-constructibility.)
  BufferPool(BufferPool&&) = default;
  ~BufferPool() {
    for (uint32_t i = 0; i < blocks_; ++i) rc_sim_->rc_forget(this, i);
  }

  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept { *this = std::move(o); }
    Lease& operator=(Lease&& o) noexcept {
      release();
      pool_ = o.pool_;
      idx_ = o.idx_;
      data_ = o.data_;
      cap_ = o.cap_;
      heap_ = std::move(o.heap_);
      o.pool_ = nullptr;
      o.data_ = nullptr;
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    std::byte* data() { return data_; }
    const std::byte* data() const { return data_; }
    uint32_t capacity() const { return cap_; }
    /// False for the heap-fallback lease handed out past pool capacity.
    bool pooled() const { return pool_ != nullptr; }
    explicit operator bool() const { return data_ != nullptr; }

    void release() {
      if (pool_) pool_->release_block(idx_);
      pool_ = nullptr;
      data_ = nullptr;
      heap_.reset();
    }

    /// Marks a mutation of the leased block for the race checker (the
    /// serialization paths that fill leases call this; tests use it to
    /// inject deliberate conflicts). No-op for heap-fallback leases.
    void annotate_write(const char* site) {
      if (pool_)
        pool_->rc_sim_->rc_write(pool_, idx_, "BufferPool.slot", site);
    }

   private:
    friend class BufferPool;
    BufferPool* pool_ = nullptr;
    uint32_t idx_ = 0;
    std::byte* data_ = nullptr;
    uint32_t cap_ = 0;
    std::unique_ptr<std::byte[]> heap_;  // exhaustion fallback storage
  };

  Lease acquire() {
    Lease l;
    l.cap_ = block_;
    if (free_.empty()) {
      ++exhausted_;
      l.heap_ = std::make_unique_for_overwrite<std::byte[]>(block_);
      l.data_ = l.heap_.get();
      return l;
    }
    uint32_t idx = free_.back();
    free_.pop_back();
    if (used_[idx]) {
      ++reuses_;
      node_.counters().add(obs::Ctr::kPoolBufferReuses);
      if (chan_) chan_->add(obs::Ctr::kPoolBufferReuses);
    }
    used_[idx] = true;
    leased_[idx] = true;
    // Lease handoff: the previous holder's release orders before this
    // acquire; the slot then begins a fresh lifetime owned by the caller.
    rc_sim_->rc_sync_acquire(this, idx);
    rc_sim_->rc_revive(this, idx);
    rc_sim_->rc_write(this, idx, "BufferPool.slot", RC_HERE);
    l.pool_ = this;
    l.idx_ = idx;
    l.data_ = storage_.get() + static_cast<size_t>(idx) * block_;
    return l;
  }

  uint32_t block_bytes() const { return block_; }
  uint32_t blocks() const { return blocks_; }
  uint32_t in_use() const { return blocks_ - static_cast<uint32_t>(free_.size()); }
  uint64_t reuses() const { return reuses_; }
  uint64_t exhausted() const { return exhausted_; }
  verbs::MemoryRegion* slab_mr() { return slab_mr_; }

 private:
  void release_block(uint32_t idx) {
    if (!leased_[idx]) {
      // Double release: a no-op for the pool (the slot is already free —
      // pushing again would hand it to two owners), diagnosed as a
      // lifetime violation when the checker is on.
      rc_sim_->rc_lifetime(this, idx, "BufferPool.slot", RC_HERE,
                           "release of a slot that is not leased");
      return;
    }
    leased_[idx] = false;
    rc_sim_->rc_write(this, idx, "BufferPool.slot", RC_HERE);
    rc_sim_->rc_retire(this, idx, "BufferPool.slot", RC_HERE);
    rc_sim_->rc_sync_release(this, idx);
    free_.push_back(idx);
  }

  verbs::Node& node_;
  obs::CounterSet* chan_;
  uint32_t block_;
  uint32_t blocks_;
  std::unique_ptr<std::byte[]> storage_;
  verbs::MemoryRegion* slab_mr_ = nullptr;
  std::vector<uint32_t> free_;
  std::vector<bool> used_;
  std::vector<bool> leased_;  // guards against double release
  sim::Simulator* rc_sim_;
  uint64_t reuses_ = 0;
  uint64_t exhausted_ = 0;
};

}  // namespace hatrpc::proto
