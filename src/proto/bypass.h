// Server-bypass / comparator protocols (Figs. 3g-3i and the §5.4
// emulations). Request delivery is a one-sided WRITE into a pre-known
// server slot; the response is fetched by the CLIENT with RDMA READs, so
// the server NIC serves responses without server CPU posts (in-bound RDMA
// is much cheaper for the server than out-bound — the RFP insight).
//
//   Pilaf: 2 metadata READs + 1 payload READ per call (the paper's ~3.2
//          READs/GET emulated as exactly 3 when ready on first probe);
//   FaRM:  1 metadata READ + 1 payload READ;
//   RFP:   1 READ fetching metadata+payload together (sized by the caller's
//          response-size hint; undersized fetches pay a second READ);
//   HERD:  WRITE request + SEND response (two-sided response path).
//
// With a busy-polling server the request WRITE is detected by CPU memory
// polling (no completion); with an event server the request is sent as
// WRITE_WITH_IMM so an interrupt can be raised.
//
// Pipelining (window > 1): the request slot and export region become rings
// of per-slot strides. The busy server scans every slot per wakeup (one
// pickup charge per detected batch) and spawns a handler per ready slot;
// the event server recovers the slot from the imm tag. Client READs are
// tagged wr_id=slot and routed by a send-CQ dispatcher so concurrent
// fetches never steal each other's completions. window=1 keeps the classic
// single-slot layout and charges bit-for-bit.
#pragma once

#include "proto/base.h"
#include "proto/eager_pipe.h"
#include "proto/error.h"

namespace hatrpc::proto {

class BypassChannel : public ChannelBase {
 protected:
  sim::Task<Buffer> do_call(View req, uint32_t resp_size_hint) override {
    if (req.size() > cfg_.max_msg)
      throw std::length_error("bypass protocol: request exceeds slot");
    if (cfg_.window > 1) co_return co_await do_call_w(req, resp_size_hint);
    const uint64_t seq = ++seq_;
    // Request: [u64 seq][u32 len][payload] written into the server slot.
    std::byte* p = cli_req_src_->data();
    put_u64(p, seq);
    put_u32(p + 8, static_cast<uint32_t>(req.size()));
    const uint32_t wire = kReqHdr + static_cast<uint32_t>(req.size());
    verbs::SendWr wr;
    wr.remote = srv_req_slot_->remote(0);
    wr.signaled = false;
    if (cfg_.zero_copy) {
      // Gather [header | payload] straight from the staged header slot and
      // the caller's buffer — fully inline when the wire frame fits.
      wr.sg_list.push_back({p, kReqHdr});
      if (!req.empty())
        wr.sg_list.push_back({const_cast<std::byte*>(req.data()),
                              static_cast<uint32_t>(req.size())});
      if (wire <= cep_.qp->max_inline_data())
        wr.inline_data = true;
      else if (!req.empty())
        cl_.pd().mr_cache().get(req.data(), req.size(), channel_counters());
    } else {
      std::memcpy(p + kReqHdr, req.data(), req.size());
      wr.local = {p, wire};
    }
    if (event_server()) {
      ++stats_.write_imms;
      wr.opcode = verbs::Opcode::kWriteImm;
      wr.imm = wire;
    } else {
      ++stats_.writes;
      wr.opcode = verbs::Opcode::kWrite;
    }
    co_await cep_.qp->post_send(std::move(wr));

    if (kind_ == ProtocolKind::kHerd) {
      auto resp = co_await resp_pipe_->recv();
      if (!resp) throw_wc("herd recv", resp_pipe_->last_status());
      co_return std::move(*resp);
    }
    co_return co_await fetch_response(seq, resp_size_hint);
  }

  sim::Task<void> serve() override {
    if (cfg_.window > 1) {
      if (event_server())
        co_await serve_event_w();
      else
        co_await serve_busy_w();
      co_return;
    }
    while (!stop_) {
      uint32_t req_len = 0;
      if (event_server()) {
        verbs::Wc wc = co_await sep_.recv_wc();
        if (!wc.ok()) break;
        repost_recv(static_cast<uint32_t>(wc.wr_id));
        req_len = wc.imm - kReqHdr;
      } else {
        // CPU memory polling: spin (occupying a core) until the request
        // header's sequence number advances.
        auto guard = sv_.cpu().busy_guard();
        while (!stop_ && get_u64(srv_req_slot_->data()) == served_) {
          co_await watch_.wait();
        }
        if (stop_) break;
        co_await sim_.sleep(sv_.cpu().pickup_delay(sim::PollMode::kBusy));
        req_len = get_u32(srv_req_slot_->data() + 8);
      }
      served_ = get_u64(srv_req_slot_->data());

      Buffer resp = co_await run_handler(
          View{srv_req_slot_->data() + kReqHdr, req_len});
      if (resp.size() > cfg_.max_msg)
        throw std::length_error("bypass protocol: response exceeds slot");

      if (kind_ == ProtocolKind::kHerd) {
        if (cfg_.zero_copy) {
          if (!co_await resp_pipe_->send_zc_owned(std::move(resp))) break;
        } else {
          if (!co_await resp_pipe_->send(resp)) break;
        }
        continue;
      }
      // Place the response in the exported region (intrinsic server-side
      // copy — the client can only READ from registered export space).
      co_await charge_server_copy(resp.size());
      std::byte* e = srv_export_->data();
      std::memcpy(e + kExportHdr, resp.data(), resp.size());
      // meta2 then meta1 (ready flag last, matching write ordering).
      put_u64(e + 16, served_);
      put_u32(e + 24, static_cast<uint32_t>(resp.size()));
      put_u64(e, served_);
    }
  }

  void start() override {
    ChannelBase::start();
    if (cfg_.window > 1) {
      if (kind_ == ProtocolKind::kHerd)
        sim_.spawn(herd_dispatch());
      else
        sim_.spawn(read_dispatch());
    }
  }

  void extra_shutdown() override { watch_.notify_all(); }

 private:
  BypassChannel(ProtocolKind kind, verbs::Node& client, verbs::Node& server,
                Handler handler, ChannelConfig cfg)
      : ChannelBase(kind, client, server, std::move(handler), cfg),
        watch_(client.fabric().simulator()),
        srv_send_mu_(client.fabric().simulator()) {
    const uint32_t w = cfg_.window;
    req_stride_ = kReqHdr + cfg_.max_msg;
    exp_stride_ = kExportHdr + cfg_.max_msg;
    if (w > 1 && event_server() && req_stride_ > kLenMask)
      throw std::length_error("bypass protocol: max_msg exceeds the 24-bit "
                              "imm length field");
    cli_req_src_ = alloc_client_mr(size_t(req_stride_) * w);
    srv_req_slot_ = alloc_server_mr(size_t(req_stride_) * w);
    if (w == 1) {
      cli_read_buf_ = alloc_client_mr(kMetaBytes + cfg_.max_msg);
      srv_req_slot_->zero_prefix(kReqHdr);  // polled before the first write
      cli_read_buf_->zero_prefix(kExportHdr);
    } else {
      cli_read_buf_ = alloc_client_mr(size_t(exp_stride_) * w);
      for (uint32_t s = 0; s < w; ++s) {
        std::memset(srv_req_slot_->data() + size_t(s) * req_stride_, 0,
                    kReqHdr);
        std::memset(cli_read_buf_->data() + size_t(s) * exp_stride_, 0,
                    kExportHdr);
      }
      served_v_.assign(w, 0);
      if (kind_ == ProtocolKind::kHerd) {
        pending_.resize(w);
      } else {
        for (uint32_t s = 0; s < w; ++s)
          read_done_.push_back(
              std::make_unique<sim::Channel<verbs::WcStatus>>(sim_));
      }
    }
    if (kind_ == ProtocolKind::kHerd) {
      resp_pipe_.emplace(sep_, cep_, cfg_, &stats_, channel_counters());
      stats_.client_registered += resp_pipe_->ring_bytes();
      stats_.server_registered += resp_pipe_->ring_bytes();
    } else {
      // Exported region the client READs: [meta1 16B][meta2 16B][payload].
      srv_export_ = alloc_server_mr(size_t(exp_stride_) * w);
      if (w == 1)
        srv_export_->zero_prefix(kExportHdr);
      else
        for (uint32_t s = 0; s < w; ++s)
          std::memset(srv_export_->data() + size_t(s) * exp_stride_, 0,
                      kExportHdr);
    }
    if (event_server()) {
      if (cfg_.server_srq) sep_.qp->set_srq(cfg_.server_srq);
      const uint32_t ring = std::max(cfg_.eager_slots, w);
      for (uint32_t i = 0; i < ring; ++i)
        if (!cfg_.server_srq) sep_.qp->post_recv(verbs::RecvWr{.wr_id = i});
    } else {
      srv_req_slot_->set_write_watch(
          [this](uint64_t, size_t) { watch_.notify_all(); });
    }
  }

  friend std::unique_ptr<RpcChannel> make_channel(ProtocolKind,
                                                  verbs::Node&, verbs::Node&,
                                                  Handler, ChannelConfig);

  static constexpr uint32_t kReqHdr = 12;    // [u64 seq][u32 len]
  static constexpr uint32_t kMetaBytes = 16;
  static constexpr uint32_t kExportHdr = 32;  // meta1 + meta2

  bool event_server() const {
    return cfg_.server_poll == sim::PollMode::kEvent;
  }

  void repost_recv(uint32_t idx) {
    if (verbs::SharedReceiveQueue* srq = sep_.qp->srq())
      srq->post_recv(verbs::RecvWr{.wr_id = idx}, channel_counters());
    else
      sep_.qp->post_recv(verbs::RecvWr{.wr_id = idx});
  }

  sim::Task<verbs::Wc> issue_read(uint64_t remote_off, uint32_t len,
                                  uint64_t local_off = 0) {
    ++stats_.reads;
    co_await cep_.qp->post_send(verbs::SendWr{
        .wr_id = 3,
        .opcode = verbs::Opcode::kRead,
        .local = {cli_read_buf_->data() + local_off, len},
        .remote = srv_export_->remote(remote_off)});
    verbs::Wc wc = co_await cep_.send_wc();
    if (!wc.ok()) throw_wc("bypass read", wc.status);
    co_return wc;
  }

  sim::Task<Buffer> fetch_response(uint64_t seq, uint32_t hint) {
    const std::byte* b = cli_read_buf_->data();
    switch (kind_) {
      case ProtocolKind::kPilaf: {
        // Probe meta1 until the server published our sequence number...
        while (true) {
          co_await issue_read(0, kMetaBytes);
          if (get_u64(b) == seq) break;
          ++stats_.read_retries;
        }
        // ...then fetch meta2 (extent) and finally the payload.
        co_await issue_read(16, kMetaBytes);
        uint32_t len = get_u32(b + 8);
        co_await issue_read(kExportHdr, len);
        co_return Buffer(b, b + len);
      }
      case ProtocolKind::kFarm: {
        // meta1+meta2 in one aligned object read, then the payload.
        uint32_t len = 0;
        while (true) {
          co_await issue_read(0, kExportHdr);
          if (get_u64(b) == seq) {
            len = get_u32(b + 24);
            break;
          }
          ++stats_.read_retries;
        }
        co_await issue_read(kExportHdr, len);
        co_return Buffer(b, b + len);
      }
      case ProtocolKind::kRfp: {
        // RFP's adaptive remote fetching: wait out the LEARNED server
        // response delay (EWMA over past calls), then fetch header+payload
        // in one READ sized by the caller's hint. A mistimed optimistic
        // fetch costs a wasted payload-sized READ, so misses poll with
        // cheap header-only reads, then one payload read — and feed the
        // observed delay back into the estimate.
        uint32_t guess = hint > 0 ? std::min(hint, cfg_.max_msg)
                                  : cfg_.eager_slot;
        sim::Time t0 = sim_.now();
        if (fetch_delay_ > sim::Duration{0}) co_await sim_.sleep(fetch_delay_);
        co_await issue_read(0, kExportHdr + guess);
        if (get_u64(b) != seq) {
          ++stats_.read_retries;
          while (true) {
            co_await issue_read(0, kExportHdr);
            if (get_u64(b) == seq) break;
            ++stats_.read_retries;
          }
          // The response became visible roughly one read RTT before the
          // succeeding poll returned; learn the larger delay.
          sim::Duration observed = sim_.now() - t0;
          fetch_delay_ = (fetch_delay_ * 3 + observed) / 4;
          uint32_t len = get_u32(b + 24);
          co_await issue_read(kExportHdr, len, kExportHdr);
          co_return Buffer(b + kExportHdr, b + kExportHdr + len);
        }
        // Hit on the first fetch: decay the delay so we stay optimistic.
        fetch_delay_ = fetch_delay_ * 7 / 8;
        uint32_t len = get_u32(b + 24);
        if (len > guess) {
          // Undersized fetch: one more READ for the tail.
          co_await issue_read(kExportHdr + guess, len - guess,
                              kExportHdr + guess);
        }
        co_return Buffer(b + kExportHdr, b + kExportHdr + len);
      }
      default:
        throw std::logic_error("not a bypass protocol");
    }
  }

  // ---- Windowed path ----------------------------------------------------

  sim::Task<Buffer> do_call_w(View req, uint32_t hint) {
    uint32_t slot = co_await acquire_slot();
    if (dead_) {
      release_slot(slot);
      throw_wc("bypass", dead_status_);
    }
    try {
      Buffer out = co_await run_call_w(slot, req, hint);
      release_slot(slot);
      co_return out;
    } catch (...) {
      release_slot(slot);
      throw;
    }
  }

  sim::Task<Buffer> run_call_w(uint32_t slot, View req, uint32_t hint) {
    const uint64_t seq = ++seq_;
    std::byte* p = cli_req_src_->data() + size_t(slot) * req_stride_;
    put_u64(p, seq);
    put_u32(p + 8, static_cast<uint32_t>(req.size()));
    const uint32_t wire = kReqHdr + static_cast<uint32_t>(req.size());
    std::shared_ptr<PendingCall> pend;
    if (kind_ == ProtocolKind::kHerd) {
      pend = sim::pooled_shared<PendingCall>(sim_);
      pending_[slot] = pend;
    }
    verbs::SendWr wr;
    wr.remote = srv_req_slot_->remote(size_t(slot) * req_stride_);
    wr.signaled = false;
    if (cfg_.zero_copy) {
      wr.sg_list.push_back({p, kReqHdr});
      if (!req.empty())
        wr.sg_list.push_back({const_cast<std::byte*>(req.data()),
                              static_cast<uint32_t>(req.size())});
      if (wire <= cep_.qp->max_inline_data())
        wr.inline_data = true;
      else if (!req.empty())
        cl_.pd().mr_cache().get(req.data(), req.size(), channel_counters());
    } else {
      std::memcpy(p + kReqHdr, req.data(), req.size());
      wr.local = {p, wire};
    }
    if (event_server()) {
      ++stats_.write_imms;
      wr.opcode = verbs::Opcode::kWriteImm;
      wr.imm = slot_imm(slot, wire);
    } else {
      ++stats_.writes;
      wr.opcode = verbs::Opcode::kWrite;
    }
    co_await cep_.qp->post_send(std::move(wr));
    if (kind_ == ProtocolKind::kHerd) {
      co_await pend->done.wait();
      pending_[slot].reset();
      if (pend->status != verbs::WcStatus::kSuccess)
        throw_wc("herd recv", pend->status);
      co_return std::move(pend->resp);
    }
    co_return co_await fetch_response_w(slot, seq, hint);
  }

  /// Slot-tagged READ: wr_id carries the slot so read_dispatch can route
  /// the completion back to this call's mailbox.
  sim::Task<void> issue_read_w(uint32_t slot, uint64_t remote_off,
                               uint32_t len, uint64_t local_off = 0) {
    ++stats_.reads;
    const size_t base = size_t(slot) * exp_stride_;
    co_await cep_.qp->post_send(verbs::SendWr{
        .wr_id = slot,
        .opcode = verbs::Opcode::kRead,
        .local = {cli_read_buf_->data() + base + local_off, len},
        .remote = srv_export_->remote(base + remote_off)});
    auto st = co_await read_done_[slot]->pop();
    if (!st || *st != verbs::WcStatus::kSuccess)
      throw_wc("bypass read", st ? *st : verbs::WcStatus::kWrFlushErr);
  }

  sim::Task<Buffer> fetch_response_w(uint32_t slot, uint64_t seq,
                                     uint32_t hint) {
    const std::byte* b = cli_read_buf_->data() + size_t(slot) * exp_stride_;
    switch (kind_) {
      case ProtocolKind::kPilaf: {
        while (true) {
          co_await issue_read_w(slot, 0, kMetaBytes);
          if (get_u64(b) == seq) break;
          ++stats_.read_retries;
        }
        co_await issue_read_w(slot, 16, kMetaBytes);
        uint32_t len = get_u32(b + 8);
        co_await issue_read_w(slot, kExportHdr, len);
        co_return Buffer(b, b + len);
      }
      case ProtocolKind::kFarm: {
        uint32_t len = 0;
        while (true) {
          co_await issue_read_w(slot, 0, kExportHdr);
          if (get_u64(b) == seq) {
            len = get_u32(b + 24);
            break;
          }
          ++stats_.read_retries;
        }
        co_await issue_read_w(slot, kExportHdr, len);
        co_return Buffer(b, b + len);
      }
      case ProtocolKind::kRfp: {
        uint32_t guess = hint > 0 ? std::min(hint, cfg_.max_msg)
                                  : cfg_.eager_slot;
        sim::Time t0 = sim_.now();
        if (fetch_delay_ > sim::Duration{0}) co_await sim_.sleep(fetch_delay_);
        co_await issue_read_w(slot, 0, kExportHdr + guess);
        if (get_u64(b) != seq) {
          ++stats_.read_retries;
          while (true) {
            co_await issue_read_w(slot, 0, kExportHdr);
            if (get_u64(b) == seq) break;
            ++stats_.read_retries;
          }
          sim::Duration observed = sim_.now() - t0;
          fetch_delay_ = (fetch_delay_ * 3 + observed) / 4;
          uint32_t len = get_u32(b + 24);
          co_await issue_read_w(slot, kExportHdr, len, kExportHdr);
          co_return Buffer(b + kExportHdr, b + kExportHdr + len);
        }
        fetch_delay_ = fetch_delay_ * 7 / 8;
        uint32_t len = get_u32(b + 24);
        if (len > guess) {
          co_await issue_read_w(slot, kExportHdr + guess, len - guess,
                                kExportHdr + guess);
        }
        co_return Buffer(b + kExportHdr, b + kExportHdr + len);
      }
      default:
        throw std::logic_error("not a bypass protocol");
    }
  }

  /// Routes slot-tagged READ completions to their fetch; a terminal
  /// completion fails every slot and marks the channel dead.
  sim::Task<void> read_dispatch() {
    for (;;) {
      auto wcs = co_await cep_.send_wcs(cfg_.window);
      for (verbs::Wc& wc : wcs) {
        if (!wc.ok()) {
          mark_dead(wc.status);
          for (auto& m : read_done_) m->push(wc.status);
          co_return;
        }
        read_done_[wc.wr_id]->push(wc.status);
      }
    }
  }

  /// HERD: routes slot-prefixed SEND responses to their pending calls.
  sim::Task<void> herd_dispatch() {
    for (;;) {
      auto m = co_await resp_pipe_->recv();
      if (!m) {
        mark_dead(resp_pipe_->last_status());
        for (auto& p : pending_)
          if (p) {
            p->status = dead_status_;
            p->done.set();
          }
        co_return;
      }
      uint32_t slot = get_u32(m->data());
      if (slot < pending_.size()) {
        if (auto& p = pending_[slot]) {
          p->resp.assign(m->begin() + 4, m->end());
          p->status = verbs::WcStatus::kSuccess;
          p->done.set();
        }
      }
    }
  }

  sim::Task<void> serve_event_w() {
    for (;;) {
      auto wcs = co_await sep_.recv_wcs(cfg_.window);
      for (verbs::Wc& wc : wcs) {
        if (!wc.ok()) co_return;
        repost_recv(static_cast<uint32_t>(wc.wr_id));
        const uint32_t slot = imm_slot(wc.imm);
        const uint32_t wire = imm_len(wc.imm);
        served_v_[slot] = get_u64(slot_req(slot));
        sim_.spawn(handle_slot(slot, wire - kReqHdr));
      }
    }
  }

  sim::Task<void> serve_busy_w() {
    std::vector<uint32_t> found;
    while (!stop_) {
      found.clear();
      {
        auto guard = sv_.cpu().busy_guard();
        for (;;) {
          for (uint32_t s = 0; s < cfg_.window; ++s)
            if (get_u64(slot_req(s)) != served_v_[s]) found.push_back(s);
          if (!found.empty() || stop_) break;
          co_await watch_.wait();
        }
      }
      if (stop_) break;
      // One pickup charge covers the whole detected batch.
      co_await sim_.sleep(sv_.cpu().pickup_delay(sim::PollMode::kBusy));
      for (uint32_t s : found) {
        served_v_[s] = get_u64(slot_req(s));
        sim_.spawn(handle_slot(s, get_u32(slot_req(s) + 8)));
      }
    }
  }

  sim::Task<void> handle_slot(uint32_t slot, uint32_t req_len) {
    const std::byte* r = slot_req(slot);
    const uint64_t seq = get_u64(r);
    Buffer resp = co_await run_handler(View{r + kReqHdr, req_len});
    if (resp.size() > cfg_.max_msg)
      throw std::length_error("bypass protocol: response exceeds slot");
    if (kind_ == ProtocolKind::kHerd) {
      if (cfg_.zero_copy) {
        // The slot tag rides the gathered wire header; the response Buffer's
        // ownership rides the WQE.
        auto guard = co_await srv_send_mu_.scoped();
        co_await resp_pipe_->send_zc_owned(std::move(resp), &slot);
        co_return;
      }
      Buffer framed(4 + resp.size());
      put_u32(framed.data(), slot);
      if (!resp.empty())
        std::memcpy(framed.data() + 4, resp.data(), resp.size());
      auto guard = co_await srv_send_mu_.scoped();
      co_await resp_pipe_->send(framed);
      co_return;
    }
    co_await charge_server_copy(resp.size());
    std::byte* e = srv_export_->data() + size_t(slot) * exp_stride_;
    std::memcpy(e + kExportHdr, resp.data(), resp.size());
    put_u64(e + 16, seq);
    put_u32(e + 24, static_cast<uint32_t>(resp.size()));
    put_u64(e, seq);
  }

  std::byte* slot_req(uint32_t slot) const {
    return srv_req_slot_->data() + size_t(slot) * req_stride_;
  }

  verbs::MemoryRegion* cli_req_src_ = nullptr;
  verbs::MemoryRegion* cli_read_buf_ = nullptr;
  verbs::MemoryRegion* srv_req_slot_ = nullptr;
  verbs::MemoryRegion* srv_export_ = nullptr;
  std::optional<EagerPipe> resp_pipe_;  // HERD response path
  sim::WaitQueue watch_;
  sim::Mutex srv_send_mu_;  // serializes windowed HERD pipe responses
  uint64_t seq_ = 0;
  uint64_t served_ = 0;                  // window=1: last served request seq
  std::vector<uint64_t> served_v_;       // window>1: per-slot served seq
  uint32_t req_stride_ = 0;
  uint32_t exp_stride_ = 0;
  std::vector<std::unique_ptr<sim::Channel<verbs::WcStatus>>> read_done_;
  std::vector<std::shared_ptr<PendingCall>> pending_;  // HERD window>1
  sim::Duration fetch_delay_{};  // RFP adaptive-fetch delay estimate
};

}  // namespace hatrpc::proto
