// Server-bypass / comparator protocols (Figs. 3g-3i and the §5.4
// emulations). Request delivery is a one-sided WRITE into a pre-known
// server slot; the response is fetched by the CLIENT with RDMA READs, so
// the server NIC serves responses without server CPU posts (in-bound RDMA
// is much cheaper for the server than out-bound — the RFP insight).
//
//   Pilaf: 2 metadata READs + 1 payload READ per call (the paper's ~3.2
//          READs/GET emulated as exactly 3 when ready on first probe);
//   FaRM:  1 metadata READ + 1 payload READ;
//   RFP:   1 READ fetching metadata+payload together (sized by the caller's
//          response-size hint; undersized fetches pay a second READ);
//   HERD:  WRITE request + SEND response (two-sided response path).
//
// With a busy-polling server the request WRITE is detected by CPU memory
// polling (no completion); with an event server the request is sent as
// WRITE_WITH_IMM so an interrupt can be raised.
#pragma once

#include "proto/base.h"
#include "proto/eager_pipe.h"
#include "proto/error.h"

namespace hatrpc::proto {

class BypassChannel : public ChannelBase {
 protected:
  sim::Task<Buffer> do_call(View req, uint32_t resp_size_hint) override {
    if (req.size() > cfg_.max_msg)
      throw std::length_error("bypass protocol: request exceeds slot");
    const uint64_t seq = ++seq_;
    // Request: [u64 seq][u32 len][payload] written into the server slot.
    std::byte* p = cli_req_src_->data();
    put_u64(p, seq);
    put_u32(p + 8, static_cast<uint32_t>(req.size()));
    std::memcpy(p + kReqHdr, req.data(), req.size());
    const uint32_t wire = kReqHdr + static_cast<uint32_t>(req.size());
    if (event_server()) {
      ++stats_.write_imms;
      co_await cep_.qp->post_send(verbs::SendWr{
          .opcode = verbs::Opcode::kWriteImm,
          .local = {p, wire},
          .remote = srv_req_slot_->remote(0),
          .imm = wire,
          .signaled = false});
    } else {
      ++stats_.writes;
      co_await cep_.qp->post_send(verbs::SendWr{
          .opcode = verbs::Opcode::kWrite,
          .local = {p, wire},
          .remote = srv_req_slot_->remote(0),
          .signaled = false});
    }

    if (kind_ == ProtocolKind::kHerd) {
      auto resp = co_await resp_pipe_->recv();
      if (!resp) throw_wc("herd recv", resp_pipe_->last_status());
      co_return std::move(*resp);
    }
    co_return co_await fetch_response(seq, resp_size_hint);
  }

  sim::Task<void> serve() override {
    while (!stop_) {
      uint32_t req_len = 0;
      if (event_server()) {
        verbs::Wc wc = co_await sep_.recv_wc();
        if (!wc.ok()) break;
        sep_.qp->post_recv(verbs::RecvWr{.wr_id = wc.wr_id});
        req_len = wc.imm - kReqHdr;
      } else {
        // CPU memory polling: spin (occupying a core) until the request
        // header's sequence number advances.
        auto guard = sv_.cpu().busy_guard();
        while (!stop_ && get_u64(srv_req_slot_->data()) == served_) {
          co_await watch_.wait();
        }
        if (stop_) break;
        co_await sim_.sleep(sv_.cpu().pickup_delay(sim::PollMode::kBusy));
        req_len = get_u32(srv_req_slot_->data() + 8);
      }
      served_ = get_u64(srv_req_slot_->data());

      Buffer resp = co_await run_handler(
          View{srv_req_slot_->data() + kReqHdr, req_len});
      if (resp.size() > cfg_.max_msg)
        throw std::length_error("bypass protocol: response exceeds slot");

      if (kind_ == ProtocolKind::kHerd) {
        if (!co_await resp_pipe_->send(resp)) break;
        continue;
      }
      // Place the response in the exported region (intrinsic server-side
      // copy — the client can only READ from registered export space).
      co_await charge_server_copy(resp.size());
      std::byte* e = srv_export_->data();
      std::memcpy(e + kExportHdr, resp.data(), resp.size());
      // meta2 then meta1 (ready flag last, matching write ordering).
      put_u64(e + 16, served_);
      put_u32(e + 24, static_cast<uint32_t>(resp.size()));
      put_u64(e, served_);
    }
  }

  void extra_shutdown() override { watch_.notify_all(); }

 private:
  BypassChannel(ProtocolKind kind, verbs::Node& client, verbs::Node& server,
                Handler handler, ChannelConfig cfg)
      : ChannelBase(kind, client, server, std::move(handler), cfg),
        watch_(client.fabric().simulator()) {
    cli_req_src_ = alloc_client_mr(kReqHdr + cfg_.max_msg);
    cli_read_buf_ = alloc_client_mr(kMetaBytes + cfg_.max_msg);
    srv_req_slot_ = alloc_server_mr(kReqHdr + cfg_.max_msg);
    srv_req_slot_->zero_prefix(kReqHdr);   // polled before the first write
    cli_read_buf_->zero_prefix(kExportHdr);
    if (kind_ == ProtocolKind::kHerd) {
      resp_pipe_.emplace(sep_, cep_, cfg_, &stats_, channel_counters());
      stats_.client_registered += resp_pipe_->ring_bytes();
      stats_.server_registered += resp_pipe_->ring_bytes();
    } else {
      // Exported region the client READs: [meta1 16B][meta2 16B][payload].
      srv_export_ = alloc_server_mr(kExportHdr + cfg_.max_msg);
      srv_export_->zero_prefix(kExportHdr);
    }
    if (event_server()) {
      for (uint32_t i = 0; i < cfg_.eager_slots; ++i)
        sep_.qp->post_recv(verbs::RecvWr{.wr_id = i});
    } else {
      srv_req_slot_->set_write_watch(
          [this](uint64_t, size_t) { watch_.notify_all(); });
    }
  }

  friend std::unique_ptr<RpcChannel> make_channel(ProtocolKind,
                                                  verbs::Node&, verbs::Node&,
                                                  Handler, ChannelConfig);

  static constexpr uint32_t kReqHdr = 12;    // [u64 seq][u32 len]
  static constexpr uint32_t kMetaBytes = 16;
  static constexpr uint32_t kExportHdr = 32;  // meta1 + meta2

  bool event_server() const {
    return cfg_.server_poll == sim::PollMode::kEvent;
  }

  sim::Task<verbs::Wc> issue_read(uint64_t remote_off, uint32_t len,
                                  uint64_t local_off = 0) {
    ++stats_.reads;
    co_await cep_.qp->post_send(verbs::SendWr{
        .wr_id = 3,
        .opcode = verbs::Opcode::kRead,
        .local = {cli_read_buf_->data() + local_off, len},
        .remote = srv_export_->remote(remote_off)});
    verbs::Wc wc = co_await cep_.send_wc();
    if (!wc.ok()) throw_wc("bypass read", wc.status);
    co_return wc;
  }

  sim::Task<Buffer> fetch_response(uint64_t seq, uint32_t hint) {
    const std::byte* b = cli_read_buf_->data();
    switch (kind_) {
      case ProtocolKind::kPilaf: {
        // Probe meta1 until the server published our sequence number...
        while (true) {
          co_await issue_read(0, kMetaBytes);
          if (get_u64(b) == seq) break;
          ++stats_.read_retries;
        }
        // ...then fetch meta2 (extent) and finally the payload.
        co_await issue_read(16, kMetaBytes);
        uint32_t len = get_u32(b + 8);
        co_await issue_read(kExportHdr, len);
        co_return Buffer(b, b + len);
      }
      case ProtocolKind::kFarm: {
        // meta1+meta2 in one aligned object read, then the payload.
        uint32_t len = 0;
        while (true) {
          co_await issue_read(0, kExportHdr);
          if (get_u64(b) == seq) {
            len = get_u32(b + 24);
            break;
          }
          ++stats_.read_retries;
        }
        co_await issue_read(kExportHdr, len);
        co_return Buffer(b, b + len);
      }
      case ProtocolKind::kRfp: {
        // RFP's adaptive remote fetching: wait out the LEARNED server
        // response delay (EWMA over past calls), then fetch header+payload
        // in one READ sized by the caller's hint. A mistimed optimistic
        // fetch costs a wasted payload-sized READ, so misses poll with
        // cheap header-only reads, then one payload read — and feed the
        // observed delay back into the estimate.
        uint32_t guess = hint > 0 ? std::min(hint, cfg_.max_msg)
                                  : cfg_.eager_slot;
        sim::Time t0 = sim_.now();
        if (fetch_delay_ > sim::Duration{0}) co_await sim_.sleep(fetch_delay_);
        co_await issue_read(0, kExportHdr + guess);
        if (get_u64(b) != seq) {
          ++stats_.read_retries;
          while (true) {
            co_await issue_read(0, kExportHdr);
            if (get_u64(b) == seq) break;
            ++stats_.read_retries;
          }
          // The response became visible roughly one read RTT before the
          // succeeding poll returned; learn the larger delay.
          sim::Duration observed = sim_.now() - t0;
          fetch_delay_ = (fetch_delay_ * 3 + observed) / 4;
          uint32_t len = get_u32(b + 24);
          co_await issue_read(kExportHdr, len, kExportHdr);
          co_return Buffer(b + kExportHdr, b + kExportHdr + len);
        }
        // Hit on the first fetch: decay the delay so we stay optimistic.
        fetch_delay_ = fetch_delay_ * 7 / 8;
        uint32_t len = get_u32(b + 24);
        if (len > guess) {
          // Undersized fetch: one more READ for the tail.
          co_await issue_read(kExportHdr + guess, len - guess,
                              kExportHdr + guess);
        }
        co_return Buffer(b + kExportHdr, b + kExportHdr + len);
      }
      default:
        throw std::logic_error("not a bypass protocol");
    }
  }

  verbs::MemoryRegion* cli_req_src_ = nullptr;
  verbs::MemoryRegion* cli_read_buf_ = nullptr;
  verbs::MemoryRegion* srv_req_slot_ = nullptr;
  verbs::MemoryRegion* srv_export_ = nullptr;
  std::optional<EagerPipe> resp_pipe_;  // HERD response path
  sim::WaitQueue watch_;
  uint64_t seq_ = 0;
  uint64_t served_ = 0;
  sim::Duration fetch_delay_{};  // RFP adaptive-fetch delay estimate
};

}  // namespace hatrpc::proto
