// The pre-known-buffer protocols of Figs. 3b/3c/3f. All three write the
// payload directly into a pre-registered per-connection message buffer on
// the remote side (zero-copy), differing only in how the remote side is
// notified:
//   * Direct-Write-Send  — WRITE + separate SEND notify (2 doorbells);
//   * Chained-Write-Send — WRITE + SEND chained under one doorbell;
//   * Direct-WriteIMM    — single WRITE_WITH_IMM (1 WQE, best latency).
// Their shared cost is the reserved max_msg buffer per connection — the
// memory-scaling weakness the paper's res_util hint steers away from.
//
// Pipelining: the message buffers are rings of cfg_.window slots, one per
// in-flight call. Notifications carry the slot (in the imm's top byte for
// WRITE_IMM, in the notify payload for the SEND variants); a client-side
// dispatcher drains the recv CQ in batches and routes each completion to
// its pending call, while the server spawns one handler task per request so
// slots are served concurrently. window=1 degenerates to the classic
// one-outstanding-call channel with identical per-call charges.
#pragma once

#include "proto/base.h"
#include "proto/error.h"

namespace hatrpc::proto {

class DirectChannel : public ChannelBase {
 protected:
  sim::Task<Buffer> do_call(View req, uint32_t /*resp_size_hint*/) override {
    if (req.size() > cfg_.max_msg)
      throw std::length_error("direct protocol: request exceeds the "
                              "pre-known buffer");
    uint32_t slot = co_await acquire_slot();
    if (dead_) {
      release_slot(slot);
      throw_wc("direct recv", dead_status_);
    }
    auto pend = sim::pooled_shared<PendingCall>(sim_);
    pending_[slot] = pend;
    const size_t off = slot * size_t(cfg_.max_msg);
    const uint32_t len = static_cast<uint32_t>(req.size());
    if (cfg_.zero_copy) {
      // Zero-copy: the WRITE gathers straight from the caller's buffer
      // (valid until the response resolves), inline when it fits the
      // doorbell, registered on demand through the MrCache otherwise.
      const bool inl = len <= cep_.qp->max_inline_data();
      if (!inl && len > 0)
        cl_.pd().mr_cache().get(req.data(), len, channel_counters());
      co_await push(cep_.qp, const_cast<std::byte*>(req.data()),
                    srv_req_buf_->remote(off), len, slot, cli_notify_src_,
                    inl);
    } else {
      std::byte* src = cli_req_src_->data() + off;
      std::memcpy(src, req.data(), req.size());
      co_await push(cep_.qp, src, srv_req_buf_->remote(off), len, slot,
                    cli_notify_src_);
    }
    co_await pend->done.wait();
    pending_[slot].reset();
    if (pend->status != verbs::WcStatus::kSuccess) {
      release_slot(slot);
      throw_wc("direct recv", pend->status);
    }
    const std::byte* p = cli_resp_buf_->data() + off;
    Buffer resp(p, p + pend->len);
    release_slot(slot);
    co_return resp;
  }

  sim::Task<void> serve() override {
    while (!stop_) {
      auto wcs = co_await sep_.recv_wcs(cfg_.window);
      for (verbs::Wc& wc : wcs) {
        if (!wc.ok()) co_return;
        uint32_t slot = 0, len = 0;
        decode(wc, srv_notify_ring_, &slot, &len);
        repost(sep_.qp, srv_notify_ring_, static_cast<uint32_t>(wc.wr_id));
        sim_.spawn(serve_one(slot, len));
      }
    }
  }

  void start() override {
    ChannelBase::start();
    sim_.spawn(client_dispatch());
  }

 private:
  DirectChannel(ProtocolKind kind, verbs::Node& client, verbs::Node& server,
                Handler handler, ChannelConfig cfg)
      : ChannelBase(kind, client, server, std::move(handler), cfg) {
    if (cfg_.max_msg > kLenMask)
      throw std::length_error("direct protocol: max_msg exceeds the 24-bit "
                              "notify length field");
    const size_t stride = cfg_.max_msg;
    const uint32_t w = cfg_.window;
    cli_req_src_ = alloc_client_mr(stride * w);
    cli_resp_buf_ = alloc_client_mr(stride * w);
    srv_req_buf_ = alloc_server_mr(stride * w);
    srv_resp_src_ = alloc_server_mr(stride * w);
    pending_.resize(w);
    ring_slots_ = std::max(cfg_.eager_slots, w);
    if (kind_ == ProtocolKind::kDirectWriteImm) {
      // WRITE_WITH_IMM consumes a (bufferless) posted recv on each side.
      // The server drains the shared pool instead when one is configured.
      if (cfg_.server_srq) sep_.qp->set_srq(cfg_.server_srq);
      for (uint32_t i = 0; i < ring_slots_; ++i) {
        cep_.qp->post_recv(verbs::RecvWr{.wr_id = i});
        if (!cfg_.server_srq) sep_.qp->post_recv(verbs::RecvWr{.wr_id = i});
      }
    } else {
      cli_notify_src_ = alloc_client_mr(kNotifyBytes * w);
      srv_notify_src_ = alloc_server_mr(kNotifyBytes * w);
      cli_notify_ring_ = alloc_client_mr(kNotifyBytes * ring_slots_);
      srv_notify_ring_ = alloc_server_mr(kNotifyBytes * ring_slots_);
      for (uint32_t i = 0; i < ring_slots_; ++i) {
        post_notify_recv(cep_.qp, cli_notify_ring_, i);
        post_notify_recv(sep_.qp, srv_notify_ring_, i);
      }
    }
  }

  friend std::unique_ptr<RpcChannel> make_channel(ProtocolKind,
                                                  verbs::Node&, verbs::Node&,
                                                  Handler, ChannelConfig);

  static constexpr uint32_t kNotifyBytes = 16;

  /// Routes response completions to their pending calls by slot. A
  /// terminal completion (CQ closed / QP flushed) fails every in-flight
  /// call and marks the channel dead for calls that arrive later.
  sim::Task<void> client_dispatch() {
    for (;;) {
      auto wcs = co_await cep_.recv_wcs(cfg_.window);
      for (verbs::Wc& wc : wcs) {
        if (!wc.ok()) {
          mark_dead(wc.status);
          for (auto& p : pending_)
            if (p) {
              p->status = wc.status;
              p->done.set();
            }
          co_return;
        }
        uint32_t slot = 0, len = 0;
        decode(wc, cli_notify_ring_, &slot, &len);
        repost(cep_.qp, cli_notify_ring_, static_cast<uint32_t>(wc.wr_id));
        if (auto& p = pending_[slot]) {
          p->len = len;
          p->status = verbs::WcStatus::kSuccess;
          p->done.set();
        }
      }
    }
  }

  sim::Task<void> serve_one(uint32_t slot, uint32_t len) {
    const size_t off = slot * size_t(cfg_.max_msg);
    Buffer resp = co_await run_handler(View{srv_req_buf_->data() + off, len});
    if (resp.size() > cfg_.max_msg)
      throw std::length_error("direct protocol: response exceeds the "
                              "pre-known buffer");
    const uint32_t rlen = static_cast<uint32_t>(resp.size());
    if (cfg_.zero_copy && rlen <= sep_.qp->max_inline_data()) {
      // Small response rides the doorbell (snapshotted at post time, so the
      // handler's Buffer may die immediately after) — no staging copy.
      co_await push(sep_.qp, resp.data(), cli_resp_buf_->remote(off), rlen,
                    slot, srv_notify_src_, true);
    } else {
      // Large responses keep the staged path: the WQE reads the payload at
      // execution time, after this task's Buffer is gone.
      std::memcpy(srv_resp_src_->data() + off, resp.data(), resp.size());
      co_await push(sep_.qp, srv_resp_src_->data() + off,
                    cli_resp_buf_->remote(off), rlen, slot, srv_notify_src_);
    }
  }

  /// Delivers `len` bytes from `src` into the peer's pre-known buffer slot
  /// using the variant's doorbell/notify scheme. `inl` posts the payload
  /// WRITE inline (zero-copy path, len pre-checked against max_inline_data).
  sim::Task<void> push(verbs::QueuePair* qp, std::byte* src,
                       verbs::RemoteAddr dst, uint32_t len, uint32_t slot,
                       verbs::MemoryRegion* notify_region, bool inl = false) {
    switch (kind_) {
      case ProtocolKind::kDirectWriteImm: {
        ++stats_.write_imms;
        co_await qp->post_send(verbs::SendWr{.opcode = verbs::Opcode::kWriteImm,
                                             .local = {src, len},
                                             .remote = dst,
                                             .imm = slot_imm(slot, len),
                                             .signaled = false,
                                             .inline_data = inl});
        break;
      }
      case ProtocolKind::kDirectWriteSend:
      case ProtocolKind::kChainedWriteSend: {
        ++stats_.writes;
        ++stats_.sends;
        std::byte* n = notify_region->data() + size_t(slot) * kNotifyBytes;
        put_u32(n, len);
        put_u32(n + 4, slot);
        verbs::SendWr write{.opcode = verbs::Opcode::kWrite,
                            .local = {src, len},
                            .remote = dst,
                            .signaled = false,
                            .inline_data = inl};
        verbs::SendWr notify{.opcode = verbs::Opcode::kSend,
                             .local = {n, 8},
                             .signaled = false,
                             // The 8-byte notify always fits the doorbell.
                             .inline_data = cfg_.zero_copy};
        if (kind_ == ProtocolKind::kChainedWriteSend) {
          std::vector<verbs::SendWr> chain;
          chain.push_back(write);
          chain.push_back(notify);
          co_await qp->post_send_chain(std::move(chain));
        } else {
          co_await qp->post_send(write);
          co_await qp->post_send(notify);
        }
        break;
      }
      default:
        throw std::logic_error("not a direct protocol");
    }
  }

  void decode(const verbs::Wc& wc, verbs::MemoryRegion* ring, uint32_t* slot,
              uint32_t* len) const {
    if (kind_ == ProtocolKind::kDirectWriteImm) {
      *slot = imm_slot(wc.imm);
      *len = imm_len(wc.imm);
      return;
    }
    const std::byte* p = ring->data() + size_t(wc.wr_id) * kNotifyBytes;
    *len = get_u32(p);
    *slot = get_u32(p + 4);
  }

  void post_notify_recv(verbs::QueuePair* qp, verbs::MemoryRegion* ring,
                        uint32_t idx) {
    qp->post_recv(verbs::RecvWr{
        .wr_id = idx,
        .buf = {ring->data() + static_cast<size_t>(idx) * kNotifyBytes,
                kNotifyBytes}});
  }

  void repost(verbs::QueuePair* qp, verbs::MemoryRegion* ring, uint32_t idx) {
    if (kind_ == ProtocolKind::kDirectWriteImm) {
      if (verbs::SharedReceiveQueue* srq = qp->srq())
        srq->post_recv(verbs::RecvWr{.wr_id = idx}, channel_counters());
      else
        qp->post_recv(verbs::RecvWr{.wr_id = idx});
    } else {
      post_notify_recv(qp, ring, idx);
    }
  }

  verbs::MemoryRegion* cli_req_src_ = nullptr;
  verbs::MemoryRegion* cli_resp_buf_ = nullptr;
  verbs::MemoryRegion* srv_req_buf_ = nullptr;
  verbs::MemoryRegion* srv_resp_src_ = nullptr;
  verbs::MemoryRegion* cli_notify_src_ = nullptr;
  verbs::MemoryRegion* srv_notify_src_ = nullptr;
  verbs::MemoryRegion* cli_notify_ring_ = nullptr;
  verbs::MemoryRegion* srv_notify_ring_ = nullptr;
  std::vector<std::shared_ptr<PendingCall>> pending_;
  uint32_t ring_slots_ = 0;
};

}  // namespace hatrpc::proto
