// The pre-known-buffer protocols of Figs. 3b/3c/3f. All three write the
// payload directly into a pre-registered per-connection message buffer on
// the remote side (zero-copy), differing only in how the remote side is
// notified:
//   * Direct-Write-Send  — WRITE + separate SEND notify (2 doorbells);
//   * Chained-Write-Send — WRITE + SEND chained under one doorbell;
//   * Direct-WriteIMM    — single WRITE_WITH_IMM (1 WQE, best latency).
// Their shared cost is the reserved max_msg buffer per connection — the
// memory-scaling weakness the paper's res_util hint steers away from.
#pragma once

#include "proto/base.h"
#include "proto/error.h"

namespace hatrpc::proto {

class DirectChannel : public ChannelBase {
 protected:
  sim::Task<Buffer> do_call(View req, uint32_t /*resp_size_hint*/) override {
    if (req.size() > cfg_.max_msg)
      throw std::length_error("direct protocol: request exceeds the "
                              "pre-known buffer");
    std::memcpy(cli_req_src_->data(), req.data(), req.size());
    co_await push(cep_.qp, cli_req_src_, srv_req_buf_,
                  static_cast<uint32_t>(req.size()), cli_notify_src_);
    // Response arrives in the pre-known client buffer.
    verbs::Wc wc = co_await cep_.recv_wc();
    if (!wc.ok()) throw_wc("direct recv", wc.status);
    uint32_t len = notified_len(wc, cli_notify_ring_);
    repost(cep_.qp, cli_notify_ring_, static_cast<uint32_t>(wc.wr_id));
    const std::byte* p = cli_resp_buf_->data();
    co_return Buffer(p, p + len);
  }

  sim::Task<void> serve() override {
    while (!stop_) {
      verbs::Wc wc = co_await sep_.recv_wc();
      if (!wc.ok()) break;
      uint32_t len = notified_len(wc, srv_notify_ring_);
      repost(sep_.qp, srv_notify_ring_, static_cast<uint32_t>(wc.wr_id));
      Buffer resp =
          co_await run_handler(View{srv_req_buf_->data(), len});
      if (resp.size() > cfg_.max_msg)
        throw std::length_error("direct protocol: response exceeds the "
                                "pre-known buffer");
      std::memcpy(srv_resp_src_->data(), resp.data(), resp.size());
      co_await push(sep_.qp, srv_resp_src_, cli_resp_buf_,
                    static_cast<uint32_t>(resp.size()), srv_notify_src_);
    }
  }

 private:
  DirectChannel(ProtocolKind kind, verbs::Node& client, verbs::Node& server,
                Handler handler, ChannelConfig cfg)
      : ChannelBase(kind, client, server, std::move(handler), cfg) {
    cli_req_src_ = alloc_client_mr(cfg_.max_msg);
    cli_resp_buf_ = alloc_client_mr(cfg_.max_msg);
    srv_req_buf_ = alloc_server_mr(cfg_.max_msg);
    srv_resp_src_ = alloc_server_mr(cfg_.max_msg);
    if (kind_ == ProtocolKind::kDirectWriteImm) {
      // WRITE_WITH_IMM consumes a (bufferless) posted recv on each side.
      for (uint32_t i = 0; i < cfg_.eager_slots; ++i) {
        cep_.qp->post_recv(verbs::RecvWr{.wr_id = i});
        sep_.qp->post_recv(verbs::RecvWr{.wr_id = i});
      }
    } else {
      cli_notify_src_ = alloc_client_mr(kNotifyBytes);
      srv_notify_src_ = alloc_server_mr(kNotifyBytes);
      cli_notify_ring_ = alloc_client_mr(kNotifyBytes * cfg_.eager_slots);
      srv_notify_ring_ = alloc_server_mr(kNotifyBytes * cfg_.eager_slots);
      for (uint32_t i = 0; i < cfg_.eager_slots; ++i) {
        post_notify_recv(cep_.qp, cli_notify_ring_, i);
        post_notify_recv(sep_.qp, srv_notify_ring_, i);
      }
    }
  }

  friend std::unique_ptr<RpcChannel> make_channel(ProtocolKind,
                                                  verbs::Node&, verbs::Node&,
                                                  Handler, ChannelConfig);

  static constexpr uint32_t kNotifyBytes = 16;

  /// Delivers `len` bytes from `src` into the peer's pre-known `dst` buffer
  /// using the variant's doorbell/notify scheme.
  sim::Task<void> push(verbs::QueuePair* qp, verbs::MemoryRegion* src,
                       verbs::MemoryRegion* dst, uint32_t len,
                       verbs::MemoryRegion* notify_src) {
    switch (kind_) {
      case ProtocolKind::kDirectWriteImm: {
        ++stats_.write_imms;
        co_await qp->post_send(verbs::SendWr{.opcode = verbs::Opcode::kWriteImm,
                                             .local = {src->data(), len},
                                             .remote = dst->remote(0),
                                             .imm = len,
                                             .signaled = false});
        break;
      }
      case ProtocolKind::kDirectWriteSend:
      case ProtocolKind::kChainedWriteSend: {
        ++stats_.writes;
        ++stats_.sends;
        put_u32(notify_src->data(), len);
        verbs::SendWr write{.opcode = verbs::Opcode::kWrite,
                            .local = {src->data(), len},
                            .remote = dst->remote(0),
                            .signaled = false};
        verbs::SendWr notify{.opcode = verbs::Opcode::kSend,
                             .local = {notify_src->data(), 4},
                             .signaled = false};
        if (kind_ == ProtocolKind::kChainedWriteSend) {
          std::vector<verbs::SendWr> chain;
          chain.push_back(write);
          chain.push_back(notify);
          co_await qp->post_send_chain(std::move(chain));
        } else {
          co_await qp->post_send(write);
          co_await qp->post_send(notify);
        }
        break;
      }
      default:
        throw std::logic_error("not a direct protocol");
    }
  }

  uint32_t notified_len(const verbs::Wc& wc, verbs::MemoryRegion* ring) const {
    if (kind_ == ProtocolKind::kDirectWriteImm) return wc.imm;
    return get_u32(ring->data() +
                   static_cast<size_t>(wc.wr_id) * kNotifyBytes);
  }

  void post_notify_recv(verbs::QueuePair* qp, verbs::MemoryRegion* ring,
                        uint32_t idx) {
    qp->post_recv(verbs::RecvWr{
        .wr_id = idx,
        .buf = {ring->data() + static_cast<size_t>(idx) * kNotifyBytes,
                kNotifyBytes}});
  }

  void repost(verbs::QueuePair* qp, verbs::MemoryRegion* ring, uint32_t idx) {
    if (kind_ == ProtocolKind::kDirectWriteImm) {
      qp->post_recv(verbs::RecvWr{.wr_id = idx});
    } else {
      post_notify_recv(qp, ring, idx);
    }
  }

  verbs::MemoryRegion* cli_req_src_ = nullptr;
  verbs::MemoryRegion* cli_resp_buf_ = nullptr;
  verbs::MemoryRegion* srv_req_buf_ = nullptr;
  verbs::MemoryRegion* srv_resp_src_ = nullptr;
  verbs::MemoryRegion* cli_notify_src_ = nullptr;
  verbs::MemoryRegion* srv_notify_src_ = nullptr;
  verbs::MemoryRegion* cli_notify_ring_ = nullptr;
  verbs::MemoryRegion* srv_notify_ring_ = nullptr;
};

}  // namespace hatrpc::proto
