// Little-endian scalar packing for protocol control blocks and headers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace hatrpc::proto {

inline void put_u32(std::byte* p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void put_u64(std::byte* p, uint64_t v) { std::memcpy(p, &v, 8); }

inline uint32_t get_u32(const std::byte* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t get_u64(const std::byte* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace hatrpc::proto
