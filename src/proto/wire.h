// Little-endian scalar packing for protocol control blocks and headers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace hatrpc::proto {

inline void put_u32(std::byte* p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void put_u64(std::byte* p, uint64_t v) { std::memcpy(p, &v, 8); }

inline uint32_t get_u32(const std::byte* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t get_u64(const std::byte* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Framing header the reliability layer prepends to every request so
/// retried attempts are idempotent: the server dedupes on `seq` and replays
/// its cached response instead of re-executing the handler.
struct RpcHeader {
  uint64_t seq = 0;
  uint32_t attempt = 0;
  uint32_t len = 0;  // payload bytes following the header
};

inline constexpr size_t kRpcHeaderBytes = 16;

inline void put_rpc_header(std::byte* p, const RpcHeader& h) {
  put_u64(p, h.seq);
  put_u32(p + 8, h.attempt);
  put_u32(p + 12, h.len);
}

inline RpcHeader get_rpc_header(const std::byte* p) {
  return RpcHeader{get_u64(p), get_u32(p + 8), get_u32(p + 12)};
}

}  // namespace hatrpc::proto
