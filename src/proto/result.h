// Result<T, E>: a call either produced a value or a typed error. Channels
// return this from call() so every caller sees transport failures the same
// way the reliability layer classifies them (RpcErrc), instead of each
// call site inventing its own try/catch shape. Errors a retry cannot fix
// (handler bugs, oversized messages) still propagate as exceptions.
#pragma once

#include <utility>
#include <variant>

namespace hatrpc::proto {

template <typename T, typename E>
class Result {
 public:
  Result(T value) : v_(std::in_place_index<0>, std::move(value)) {}
  Result(E error) : v_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return v_.index() == 0; }
  explicit operator bool() const { return ok(); }

  /// The value; only valid when ok().
  T& operator*() & { return std::get<0>(v_); }
  const T& operator*() const& { return std::get<0>(v_); }
  T&& operator*() && { return std::get<0>(std::move(v_)); }
  T* operator->() { return &std::get<0>(v_); }
  const T* operator->() const { return &std::get<0>(v_); }

  /// The error; only valid when !ok().
  E& error() & { return std::get<1>(v_); }
  const E& error() const& { return std::get<1>(v_); }

  /// The value, or — when this holds an error and E is throwable — the
  /// error raised as an exception. Bridges Result-style call sites back
  /// into exception-style control flow.
  T& value() & {
    if (!ok()) throw std::get<1>(v_);
    return std::get<0>(v_);
  }
  T&& value() && {
    if (!ok()) throw std::get<1>(std::move(v_));
    return std::get<0>(std::move(v_));
  }

 private:
  std::variant<T, E> v_;
};

}  // namespace hatrpc::proto
