// Rendezvous protocols (Figs. 3d/3e): the peers first exchange payload
// metadata over small control messages, then move the payload zero-copy
// with a one-sided operation. Extra control round trips cost latency, but
// no slot copies and no per-connection max-size reservations — the MPI
// work-horses for large messages and memory-efficient scaling.
//
//   Write-RNDV: RTS -> CTS(receiver buffer) -> WRITE_WITH_IMM payload
//   Read-RNDV:  RTS(sender buffer) -> receiver READs payload -> FIN
#pragma once

#include "proto/base.h"
#include "proto/error.h"

namespace hatrpc::proto {

class RendezvousChannel : public ChannelBase {
 protected:
  sim::Task<Buffer> do_call(View req, uint32_t /*resp_size_hint*/) override {
    if (req.size() > cfg_.max_msg)
      throw std::length_error("rendezvous: request exceeds payload pool");
    std::memcpy(cli_payload_->data(), req.data(), req.size());
    const uint32_t len = static_cast<uint32_t>(req.size());

    if (kind_ == ProtocolKind::kWriteRndv) {
      // RTS -> wait CTS -> WRITE_IMM payload into the server's buffer.
      co_await send_ctrl(cep_, cli_ctrl_src_, kRts, len, {});
      Ctrl cts = co_await recv_ctrl(cep_, cli_ctrl_ring_);
      ++stats_.write_imms;
      co_await cep_.qp->post_send(verbs::SendWr{
          .opcode = verbs::Opcode::kWriteImm,
          .local = {cli_payload_->data(), len},
          .remote = cts.addr,
          .imm = len,
          .signaled = false});
      // Response (reverse Write-RNDV): RTS' -> we reply CTS -> recv-imm.
      Ctrl rts = co_await recv_ctrl(cep_, cli_ctrl_ring_);
      co_await send_ctrl(cep_, cli_ctrl_src_, kCts, rts.len,
                         cli_resp_buf_->remote(0));
      verbs::Wc wc = co_await cep_.recv_wc();
      if (!wc.ok()) throw_wc("rndv recv-imm", wc.status);
      repost_from_wc(cep_, cli_ctrl_ring_, wc);
      const std::byte* p = cli_resp_buf_->data();
      co_return Buffer(p, p + wc.imm);
    }

    // Read-RNDV: RTS carries our buffer; the server READs the request.
    co_await send_ctrl(cep_, cli_ctrl_src_, kRts, len,
                       cli_payload_->remote(0));
    // Server processes, then announces its response buffer.
    Ctrl rts = co_await recv_ctrl(cep_, cli_ctrl_ring_);
    ++stats_.reads;
    co_await cep_.qp->post_send(verbs::SendWr{.wr_id = 1,
                                              .opcode = verbs::Opcode::kRead,
                                              .local = {cli_resp_buf_->data(),
                                                        rts.len},
                                              .remote = rts.addr});
    verbs::Wc rwc = co_await cep_.send_wc();
    if (!rwc.ok()) throw_wc("rndv read", rwc.status);
    // FIN releases the server's response buffer for the next call.
    co_await send_ctrl(cep_, cli_ctrl_src_, kFin, 0, {});
    const std::byte* p = cli_resp_buf_->data();
    co_return Buffer(p, p + rts.len);
  }

  sim::Task<void> serve() override {
    while (!stop_) {
      // Request arrival.
      uint32_t req_len = 0;
      if (kind_ == ProtocolKind::kWriteRndv) {
        Ctrl rts = co_await recv_ctrl(sep_, srv_ctrl_ring_, /*eof_ok=*/true);
        if (stop_ || rts.type != kRts) break;
        co_await send_ctrl(sep_, srv_ctrl_src_, kCts, rts.len,
                           srv_payload_->remote(0));
        verbs::Wc wc = co_await sep_.recv_wc();
        if (!wc.ok()) break;
        repost_from_wc(sep_, srv_ctrl_ring_, wc);
        req_len = wc.imm;
      } else {
        Ctrl rts = co_await recv_ctrl(sep_, srv_ctrl_ring_, /*eof_ok=*/true);
        if (stop_ || rts.type != kRts) break;
        ++stats_.reads;
        co_await sep_.qp->post_send(verbs::SendWr{
            .wr_id = 2,
            .opcode = verbs::Opcode::kRead,
            .local = {srv_payload_->data(), rts.len},
            .remote = rts.addr});
        verbs::Wc rwc = co_await sep_.send_wc();
        if (!rwc.ok()) break;
        req_len = rts.len;
      }

      Buffer resp =
          co_await run_handler(View{srv_payload_->data(), req_len});
      if (resp.size() > cfg_.max_msg)
        throw std::length_error("rendezvous: response exceeds payload pool");
      std::memcpy(srv_resp_src_->data(), resp.data(), resp.size());
      const uint32_t rlen = static_cast<uint32_t>(resp.size());

      if (kind_ == ProtocolKind::kWriteRndv) {
        co_await send_ctrl(sep_, srv_ctrl_src_, kRts, rlen, {});
        Ctrl cts = co_await recv_ctrl(sep_, srv_ctrl_ring_, /*eof_ok=*/true);
        if (stop_ || cts.type != kCts) break;
        ++stats_.write_imms;
        co_await sep_.qp->post_send(verbs::SendWr{
            .opcode = verbs::Opcode::kWriteImm,
            .local = {srv_resp_src_->data(), rlen},
            .remote = cts.addr,
            .imm = rlen,
            .signaled = false});
      } else {
        co_await send_ctrl(sep_, srv_ctrl_src_, kRts, rlen,
                           srv_resp_src_->remote(0));
        // Wait FIN before reusing the response buffer.
        Ctrl fin = co_await recv_ctrl(sep_, srv_ctrl_ring_, /*eof_ok=*/true);
        if (stop_ || fin.type != kFin) break;
      }
    }
  }

 private:
  RendezvousChannel(ProtocolKind kind, verbs::Node& client,
                    verbs::Node& server, Handler handler, ChannelConfig cfg)
      : ChannelBase(kind, client, server, std::move(handler), cfg) {
    cli_payload_ = alloc_client_mr(cfg_.max_msg);
    cli_resp_buf_ = alloc_client_mr(cfg_.max_msg);
    srv_payload_ = alloc_server_mr(cfg_.max_msg);
    srv_resp_src_ = alloc_server_mr(cfg_.max_msg);
    // Ctrl SENDs are unsignaled and the payload is copied out in flight, so
    // the source slots rotate: reusing one buffer would let a later message
    // overwrite an earlier one that is still on the wire (FIN chased by the
    // next call's RTS).
    cli_ctrl_src_ = alloc_client_mr(kCtrlBytes * cfg_.eager_slots);
    srv_ctrl_src_ = alloc_server_mr(kCtrlBytes * cfg_.eager_slots);
    cli_ctrl_ring_ = alloc_client_mr(kCtrlBytes * cfg_.eager_slots);
    srv_ctrl_ring_ = alloc_server_mr(kCtrlBytes * cfg_.eager_slots);
    for (uint32_t i = 0; i < cfg_.eager_slots; ++i) {
      post_ctrl_recv(cep_, cli_ctrl_ring_, i);
      post_ctrl_recv(sep_, srv_ctrl_ring_, i);
    }
  }

  friend std::unique_ptr<RpcChannel> make_channel(ProtocolKind,
                                                  verbs::Node&, verbs::Node&,
                                                  Handler, ChannelConfig);

  static constexpr uint32_t kCtrlBytes = 32;
  static constexpr uint32_t kRts = 1;
  static constexpr uint32_t kCts = 2;
  static constexpr uint32_t kFin = 3;

  struct Ctrl {
    uint32_t type = 0;
    uint32_t len = 0;
    verbs::RemoteAddr addr{};
  };

  sim::Task<void> send_ctrl(verbs::Endpoint& ep, verbs::MemoryRegion* src,
                            uint32_t type, uint32_t len,
                            verbs::RemoteAddr addr) {
    ++stats_.sends;
    uint32_t& seq = &ep == &cep_ ? cli_ctrl_seq_ : srv_ctrl_seq_;
    std::byte* p = src->data() +
                   static_cast<size_t>(seq++ % cfg_.eager_slots) * kCtrlBytes;
    put_u32(p, type);
    put_u32(p + 4, len);
    put_u64(p + 8, addr.addr);
    put_u32(p + 16, addr.rkey);
    co_await ep.qp->post_send(verbs::SendWr{.opcode = verbs::Opcode::kSend,
                                            .local = {p, 20},
                                            .signaled = false});
  }

  sim::Task<Ctrl> recv_ctrl(verbs::Endpoint& ep, verbs::MemoryRegion* ring,
                            bool eof_ok = false) {
    verbs::Wc wc = co_await ep.recv_wc();
    if (!wc.ok()) {
      if (eof_ok) co_return Ctrl{};
      throw_wc("rndv ctrl", wc.status);
    }
    const std::byte* p =
        ring->data() + static_cast<size_t>(wc.wr_id) * kCtrlBytes;
    Ctrl c{get_u32(p), get_u32(p + 4), {get_u64(p + 8), get_u32(p + 16)}};
    repost_from_wc(ep, ring, wc);
    co_return c;
  }

  void post_ctrl_recv(verbs::Endpoint& ep, verbs::MemoryRegion* ring,
                      uint32_t idx) {
    ep.qp->post_recv(verbs::RecvWr{
        .wr_id = idx,
        .buf = {ring->data() + static_cast<size_t>(idx) * kCtrlBytes,
                kCtrlBytes}});
  }

  void repost_from_wc(verbs::Endpoint& ep, verbs::MemoryRegion* ring,
                      const verbs::Wc& wc) {
    post_ctrl_recv(ep, ring, static_cast<uint32_t>(wc.wr_id));
  }

  verbs::MemoryRegion* cli_payload_ = nullptr;
  verbs::MemoryRegion* cli_resp_buf_ = nullptr;
  verbs::MemoryRegion* srv_payload_ = nullptr;
  verbs::MemoryRegion* srv_resp_src_ = nullptr;
  verbs::MemoryRegion* cli_ctrl_src_ = nullptr;
  verbs::MemoryRegion* srv_ctrl_src_ = nullptr;
  verbs::MemoryRegion* cli_ctrl_ring_ = nullptr;
  verbs::MemoryRegion* srv_ctrl_ring_ = nullptr;
  uint32_t cli_ctrl_seq_ = 0;
  uint32_t srv_ctrl_seq_ = 0;
};

}  // namespace hatrpc::proto
