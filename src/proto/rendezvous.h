// Rendezvous protocols (Figs. 3d/3e): the peers first exchange payload
// metadata over small control messages, then move the payload zero-copy
// with a one-sided operation. Extra control round trips cost latency, but
// no slot copies and no per-connection max-size reservations — the MPI
// work-horses for large messages and memory-efficient scaling.
//
//   Write-RNDV: RTS -> CTS(receiver buffer) -> WRITE_WITH_IMM payload
//   Read-RNDV:  RTS(sender buffer) -> receiver READs payload -> FIN
//
// Pipelining (window > 1): payload pools become per-slot rings, control
// messages carry the slot, and each side runs a recv-CQ dispatcher that
// routes control/imm/read completions into per-slot mailboxes — the client
// side feeding in-flight do_call()s, the server side feeding one worker
// task per slot so handlers run concurrently. window=1 keeps the classic
// sequential state machine (and its 20-byte ctrl frames) unchanged.
#pragma once

#include "proto/base.h"
#include "proto/error.h"

namespace hatrpc::proto {

class RendezvousChannel : public ChannelBase {
 protected:
  sim::Task<Buffer> do_call(View req, uint32_t /*resp_size_hint*/) override {
    if (req.size() > cfg_.max_msg)
      throw std::length_error("rendezvous: request exceeds payload pool");
    if (cfg_.window > 1) co_return co_await do_call_w(req);
    // Zero-copy mode sources the request straight from the caller's buffer
    // (valid until the response resolves) instead of the payload pool.
    if (!cfg_.zero_copy)
      std::memcpy(cli_payload_->data(), req.data(), req.size());
    const uint32_t len = static_cast<uint32_t>(req.size());

    if (kind_ == ProtocolKind::kWriteRndv) {
      // RTS -> wait CTS -> WRITE_IMM payload into the server's buffer.
      co_await send_ctrl(cep_, cli_ctrl_src_, kRts, len, {});
      Ctrl cts = co_await recv_ctrl(cep_, cli_ctrl_ring_);
      ++stats_.write_imms;
      std::byte* src = cli_payload_->data();
      const bool inl = cfg_.zero_copy && len <= cep_.qp->max_inline_data();
      if (cfg_.zero_copy) {
        src = const_cast<std::byte*>(req.data());
        if (!inl && len > 0)
          cl_.pd().mr_cache().get(req.data(), len, channel_counters());
      }
      co_await cep_.qp->post_send(verbs::SendWr{
          .opcode = verbs::Opcode::kWriteImm,
          .local = {src, len},
          .remote = cts.addr,
          .imm = len,
          .signaled = false,
          .inline_data = inl});
      // Response (reverse Write-RNDV): RTS' -> we reply CTS -> recv-imm.
      Ctrl rts = co_await recv_ctrl(cep_, cli_ctrl_ring_);
      co_await send_ctrl(cep_, cli_ctrl_src_, kCts, rts.len,
                         cli_resp_buf_->remote(0));
      verbs::Wc wc = co_await cep_.recv_wc();
      if (!wc.ok()) throw_wc("rndv recv-imm", wc.status);
      repost_from_wc(cep_, cli_ctrl_ring_, wc);
      const std::byte* p = cli_resp_buf_->data();
      co_return Buffer(p, p + wc.imm);
    }

    // Read-RNDV: RTS carries our buffer; the server READs the request. In
    // zero-copy mode that buffer is the caller's own (registered on demand
    // through the MrCache), so the READ pulls user memory directly.
    if (cfg_.zero_copy) {
      verbs::MemoryRegion* mr =
          cl_.pd().mr_cache().get(req.data(), len, channel_counters());
      co_await send_ctrl(
          cep_, cli_ctrl_src_, kRts, len,
          verbs::RemoteAddr{reinterpret_cast<uint64_t>(req.data()),
                            mr->rkey()});
    } else {
      co_await send_ctrl(cep_, cli_ctrl_src_, kRts, len,
                         cli_payload_->remote(0));
    }
    // Server processes, then announces its response buffer.
    Ctrl rts = co_await recv_ctrl(cep_, cli_ctrl_ring_);
    ++stats_.reads;
    co_await cep_.qp->post_send(verbs::SendWr{.wr_id = 1,
                                              .opcode = verbs::Opcode::kRead,
                                              .local = {cli_resp_buf_->data(),
                                                        rts.len},
                                              .remote = rts.addr});
    verbs::Wc rwc = co_await cep_.send_wc();
    if (!rwc.ok()) throw_wc("rndv read", rwc.status);
    // FIN releases the server's response buffer for the next call.
    co_await send_ctrl(cep_, cli_ctrl_src_, kFin, 0, {});
    const std::byte* p = cli_resp_buf_->data();
    co_return Buffer(p, p + rts.len);
  }

  sim::Task<void> serve() override {
    if (cfg_.window > 1) {
      for (uint32_t s = 0; s < cfg_.window; ++s) sim_.spawn(serve_slot_w(s));
      co_await recv_dispatch(sep_, srv_ctrl_ring_, srv_mail_,
                             /*client_side=*/false);
      co_return;
    }
    while (!stop_) {
      // Request arrival.
      uint32_t req_len = 0;
      if (kind_ == ProtocolKind::kWriteRndv) {
        Ctrl rts = co_await recv_ctrl(sep_, srv_ctrl_ring_, /*eof_ok=*/true);
        if (stop_ || rts.type != kRts) break;
        co_await send_ctrl(sep_, srv_ctrl_src_, kCts, rts.len,
                           srv_payload_->remote(0));
        verbs::Wc wc = co_await sep_.recv_wc();
        if (!wc.ok()) break;
        repost_from_wc(sep_, srv_ctrl_ring_, wc);
        req_len = wc.imm;
      } else {
        Ctrl rts = co_await recv_ctrl(sep_, srv_ctrl_ring_, /*eof_ok=*/true);
        if (stop_ || rts.type != kRts) break;
        ++stats_.reads;
        co_await sep_.qp->post_send(verbs::SendWr{
            .wr_id = 2,
            .opcode = verbs::Opcode::kRead,
            .local = {srv_payload_->data(), rts.len},
            .remote = rts.addr});
        verbs::Wc rwc = co_await sep_.send_wc();
        if (!rwc.ok()) break;
        req_len = rts.len;
      }

      Buffer resp =
          co_await run_handler(View{srv_payload_->data(), req_len});
      if (resp.size() > cfg_.max_msg)
        throw std::length_error("rendezvous: response exceeds payload pool");
      const uint32_t rlen = static_cast<uint32_t>(resp.size());
      // Small Write-RNDV responses go out inline straight from the
      // handler's Buffer (snapshotted at post time); everything else is
      // staged because the WQE reads the payload after `resp` is gone
      // (Write-RNDV large) or the client READs it later (Read-RNDV).
      const bool zc_inl = cfg_.zero_copy &&
                          kind_ == ProtocolKind::kWriteRndv &&
                          rlen <= sep_.qp->max_inline_data();
      if (!zc_inl)
        std::memcpy(srv_resp_src_->data(), resp.data(), resp.size());

      if (kind_ == ProtocolKind::kWriteRndv) {
        co_await send_ctrl(sep_, srv_ctrl_src_, kRts, rlen, {});
        Ctrl cts = co_await recv_ctrl(sep_, srv_ctrl_ring_, /*eof_ok=*/true);
        if (stop_ || cts.type != kCts) break;
        ++stats_.write_imms;
        co_await sep_.qp->post_send(verbs::SendWr{
            .opcode = verbs::Opcode::kWriteImm,
            .local = {zc_inl ? resp.data() : srv_resp_src_->data(), rlen},
            .remote = cts.addr,
            .imm = rlen,
            .signaled = false,
            .inline_data = zc_inl});
      } else {
        co_await send_ctrl(sep_, srv_ctrl_src_, kRts, rlen,
                           srv_resp_src_->remote(0));
        // Wait FIN before reusing the response buffer.
        Ctrl fin = co_await recv_ctrl(sep_, srv_ctrl_ring_, /*eof_ok=*/true);
        if (stop_ || fin.type != kFin) break;
      }
    }
  }

  void start() override {
    ChannelBase::start();
    if (cfg_.window > 1) {
      sim_.spawn(recv_dispatch(cep_, cli_ctrl_ring_, cli_mail_,
                               /*client_side=*/true));
      if (kind_ == ProtocolKind::kReadRndv) {
        // Only READs are signaled; WriteRndv has nothing on the send CQs.
        sim_.spawn(send_dispatch(cep_, cli_mail_, /*client_side=*/true));
        sim_.spawn(send_dispatch(sep_, srv_mail_, /*client_side=*/false));
      }
    }
  }

 private:
  RendezvousChannel(ProtocolKind kind, verbs::Node& client,
                    verbs::Node& server, Handler handler, ChannelConfig cfg)
      : ChannelBase(kind, client, server, std::move(handler), cfg) {
    if (cfg_.max_msg > kLenMask)
      throw std::length_error("rendezvous: max_msg exceeds the 24-bit imm "
                              "length field");
    const size_t stride = cfg_.max_msg;
    const uint32_t w = cfg_.window;
    cli_payload_ = alloc_client_mr(stride * w);
    cli_resp_buf_ = alloc_client_mr(stride * w);
    srv_payload_ = alloc_server_mr(stride * w);
    srv_resp_src_ = alloc_server_mr(stride * w);
    // Ctrl SENDs are unsignaled and the payload is copied out in flight, so
    // the source slots rotate: reusing one buffer would let a later message
    // overwrite an earlier one that is still on the wire (FIN chased by the
    // next call's RTS). With a window, several calls keep ctrl messages in
    // flight at once, so the rings scale with the window too.
    ctrl_slots_ = std::max(cfg_.eager_slots, 4 * w);
    cli_ctrl_src_ = alloc_client_mr(kCtrlBytes * ctrl_slots_);
    srv_ctrl_src_ = alloc_server_mr(kCtrlBytes * ctrl_slots_);
    cli_ctrl_ring_ = alloc_client_mr(kCtrlBytes * ctrl_slots_);
    srv_ctrl_ring_ = alloc_server_mr(kCtrlBytes * ctrl_slots_);
    for (uint32_t i = 0; i < ctrl_slots_; ++i) {
      post_ctrl_recv(cep_, cli_ctrl_ring_, i);
      post_ctrl_recv(sep_, srv_ctrl_ring_, i);
    }
    if (w > 1) {
      for (uint32_t s = 0; s < w; ++s) {
        cli_mail_.push_back(std::make_unique<sim::Channel<RMsg>>(sim_));
        srv_mail_.push_back(std::make_unique<sim::Channel<RMsg>>(sim_));
      }
    }
  }

  friend std::unique_ptr<RpcChannel> make_channel(ProtocolKind,
                                                  verbs::Node&, verbs::Node&,
                                                  Handler, ChannelConfig);

  static constexpr uint32_t kCtrlBytes = 32;
  static constexpr uint32_t kRts = 1;
  static constexpr uint32_t kCts = 2;
  static constexpr uint32_t kFin = 3;

  struct Ctrl {
    uint32_t type = 0;
    uint32_t len = 0;
    verbs::RemoteAddr addr{};
    uint32_t slot = 0;
  };

  /// What a dispatcher routes into a slot mailbox.
  struct RMsg {
    enum Kind : uint8_t { kCtrlMsg, kData, kReadDone, kErr };
    Kind kind = kCtrlMsg;
    Ctrl ctrl{};
    uint32_t len = 0;  // kData: payload length from the imm
    verbs::WcStatus status = verbs::WcStatus::kSuccess;
  };
  using Mailboxes = std::vector<std::unique_ptr<sim::Channel<RMsg>>>;

  sim::Task<void> send_ctrl(verbs::Endpoint& ep, verbs::MemoryRegion* src,
                            uint32_t type, uint32_t len,
                            verbs::RemoteAddr addr) {
    ++stats_.sends;
    uint32_t& seq = &ep == &cep_ ? cli_ctrl_seq_ : srv_ctrl_seq_;
    std::byte* p = src->data() +
                   static_cast<size_t>(seq++ % ctrl_slots_) * kCtrlBytes;
    put_u32(p, type);
    put_u32(p + 4, len);
    put_u64(p + 8, addr.addr);
    put_u32(p + 16, addr.rkey);
    co_await ep.qp->post_send(verbs::SendWr{.opcode = verbs::Opcode::kSend,
                                            .local = {p, 20},
                                            .signaled = false,
                                            // 20B always fits the doorbell
                                            .inline_data = cfg_.zero_copy});
  }

  sim::Task<Ctrl> recv_ctrl(verbs::Endpoint& ep, verbs::MemoryRegion* ring,
                            bool eof_ok = false) {
    verbs::Wc wc = co_await ep.recv_wc();
    if (!wc.ok()) {
      if (eof_ok) co_return Ctrl{};
      throw_wc("rndv ctrl", wc.status);
    }
    const std::byte* p =
        ring->data() + static_cast<size_t>(wc.wr_id) * kCtrlBytes;
    Ctrl c{get_u32(p), get_u32(p + 4), {get_u64(p + 8), get_u32(p + 16)}};
    repost_from_wc(ep, ring, wc);
    co_return c;
  }

  // ---- Windowed path ----------------------------------------------------

  /// 24-byte ctrl frame: the classic 20 bytes plus the window slot.
  sim::Task<void> send_ctrl_w(verbs::Endpoint& ep, verbs::MemoryRegion* src,
                              uint32_t type, uint32_t len,
                              verbs::RemoteAddr addr, uint32_t slot) {
    ++stats_.sends;
    uint32_t& seq = &ep == &cep_ ? cli_ctrl_seq_ : srv_ctrl_seq_;
    std::byte* p = src->data() +
                   static_cast<size_t>(seq++ % ctrl_slots_) * kCtrlBytes;
    put_u32(p, type);
    put_u32(p + 4, len);
    put_u64(p + 8, addr.addr);
    put_u32(p + 16, addr.rkey);
    put_u32(p + 20, slot);
    co_await ep.qp->post_send(verbs::SendWr{.opcode = verbs::Opcode::kSend,
                                            .local = {p, 24},
                                            .signaled = false,
                                            // 24B always fits the doorbell
                                            .inline_data = cfg_.zero_copy});
  }

  sim::Task<void> recv_dispatch(verbs::Endpoint& ep,
                                verbs::MemoryRegion* ring, Mailboxes& mail,
                                bool client_side) {
    for (;;) {
      auto wcs = co_await ep.recv_wcs(cfg_.window);
      for (verbs::Wc& wc : wcs) {
        if (!wc.ok()) {
          if (client_side) mark_dead(wc.status);
          fail_mail(mail, wc.status);
          co_return;
        }
        if (wc.opcode == verbs::WcOpcode::kRecvImm) {
          repost_from_wc(ep, ring, wc);
          RMsg m;
          m.kind = RMsg::kData;
          m.len = imm_len(wc.imm);
          mail[imm_slot(wc.imm)]->push(m);
          continue;
        }
        const std::byte* p =
            ring->data() + static_cast<size_t>(wc.wr_id) * kCtrlBytes;
        RMsg m;
        m.kind = RMsg::kCtrlMsg;
        m.ctrl = Ctrl{get_u32(p), get_u32(p + 4),
                      {get_u64(p + 8), get_u32(p + 16)}, get_u32(p + 20)};
        repost_from_wc(ep, ring, wc);
        mail[m.ctrl.slot]->push(m);
      }
    }
  }

  /// Routes signaled READ completions (wr_id = slot) back to their slot.
  sim::Task<void> send_dispatch(verbs::Endpoint& ep, Mailboxes& mail,
                                bool client_side) {
    for (;;) {
      auto wcs = co_await ep.send_wcs(cfg_.window);
      for (verbs::Wc& wc : wcs) {
        if (!wc.ok()) {
          if (client_side) mark_dead(wc.status);
          fail_mail(mail, wc.status);
          co_return;
        }
        RMsg m;
        m.kind = RMsg::kReadDone;
        mail[wc.wr_id]->push(m);
      }
    }
  }

  void fail_mail(Mailboxes& mail, verbs::WcStatus st) {
    for (auto& m : mail) {
      RMsg e;
      e.kind = RMsg::kErr;
      e.status = st;
      m->push(e);
    }
  }

  sim::Task<RMsg> expect(uint32_t slot) {
    auto m = co_await cli_mail_[slot]->pop();
    if (!m || m->kind == RMsg::kErr)
      throw_wc("rndv", m ? m->status : verbs::WcStatus::kWrFlushErr);
    co_return *m;
  }

  sim::Task<Buffer> do_call_w(View req) {
    uint32_t slot = co_await acquire_slot();
    if (dead_) {
      release_slot(slot);
      throw_wc("rndv", dead_status_);
    }
    try {
      Buffer out = co_await run_call_w(slot, req);
      release_slot(slot);
      co_return out;
    } catch (...) {
      release_slot(slot);
      throw;
    }
  }

  sim::Task<Buffer> run_call_w(uint32_t slot, View req) {
    const size_t off = slot * size_t(cfg_.max_msg);
    const uint32_t len = static_cast<uint32_t>(req.size());
    std::memcpy(cli_payload_->data() + off, req.data(), req.size());

    if (kind_ == ProtocolKind::kWriteRndv) {
      co_await send_ctrl_w(cep_, cli_ctrl_src_, kRts, len, {}, slot);
      RMsg cts = co_await expect(slot);  // kCts with the server's buffer
      ++stats_.write_imms;
      co_await cep_.qp->post_send(verbs::SendWr{
          .opcode = verbs::Opcode::kWriteImm,
          .local = {cli_payload_->data() + off, len},
          .remote = cts.ctrl.addr,
          .imm = slot_imm(slot, len),
          .signaled = false});
      RMsg rts = co_await expect(slot);  // server's response RTS'
      co_await send_ctrl_w(cep_, cli_ctrl_src_, kCts, rts.ctrl.len,
                           cli_resp_buf_->remote(off), slot);
      RMsg data = co_await expect(slot);  // response WRITE_IMM landed
      const std::byte* p = cli_resp_buf_->data() + off;
      co_return Buffer(p, p + data.len);
    }

    // Read-RNDV.
    co_await send_ctrl_w(cep_, cli_ctrl_src_, kRts, len,
                         cli_payload_->remote(off), slot);
    RMsg rts = co_await expect(slot);  // server's response RTS'
    ++stats_.reads;
    co_await cep_.qp->post_send(verbs::SendWr{
        .wr_id = slot,
        .opcode = verbs::Opcode::kRead,
        .local = {cli_resp_buf_->data() + off, rts.ctrl.len},
        .remote = rts.ctrl.addr});
    co_await expect(slot);  // kReadDone
    co_await send_ctrl_w(cep_, cli_ctrl_src_, kFin, 0, {}, slot);
    const std::byte* p = cli_resp_buf_->data() + off;
    co_return Buffer(p, p + rts.ctrl.len);
  }

  /// One server worker per window slot: pops its mailbox, runs the
  /// protocol's server half, and loops for the slot's next request.
  sim::Task<void> serve_slot_w(uint32_t slot) {
    const size_t off = slot * size_t(cfg_.max_msg);
    for (;;) {
      auto m0 = co_await srv_mail_[slot]->pop();
      if (!m0 || m0->kind != RMsg::kCtrlMsg || m0->ctrl.type != kRts) co_return;
      uint32_t req_len = 0;
      if (kind_ == ProtocolKind::kWriteRndv) {
        co_await send_ctrl_w(sep_, srv_ctrl_src_, kCts, m0->ctrl.len,
                             srv_payload_->remote(off), slot);
        auto data = co_await srv_mail_[slot]->pop();
        if (!data || data->kind != RMsg::kData) co_return;
        req_len = data->len;
      } else {
        ++stats_.reads;
        co_await sep_.qp->post_send(verbs::SendWr{
            .wr_id = slot,
            .opcode = verbs::Opcode::kRead,
            .local = {srv_payload_->data() + off, m0->ctrl.len},
            .remote = m0->ctrl.addr});
        auto done = co_await srv_mail_[slot]->pop();
        if (!done || done->kind != RMsg::kReadDone) co_return;
        req_len = m0->ctrl.len;
      }

      Buffer resp =
          co_await run_handler(View{srv_payload_->data() + off, req_len});
      if (resp.size() > cfg_.max_msg)
        throw std::length_error("rendezvous: response exceeds payload pool");
      std::memcpy(srv_resp_src_->data() + off, resp.data(), resp.size());
      const uint32_t rlen = static_cast<uint32_t>(resp.size());

      if (kind_ == ProtocolKind::kWriteRndv) {
        co_await send_ctrl_w(sep_, srv_ctrl_src_, kRts, rlen, {}, slot);
        auto cts = co_await srv_mail_[slot]->pop();
        if (!cts || cts->kind != RMsg::kCtrlMsg || cts->ctrl.type != kCts)
          co_return;
        ++stats_.write_imms;
        co_await sep_.qp->post_send(verbs::SendWr{
            .opcode = verbs::Opcode::kWriteImm,
            .local = {srv_resp_src_->data() + off, rlen},
            .remote = cts->ctrl.addr,
            .imm = slot_imm(slot, rlen),
            .signaled = false});
      } else {
        co_await send_ctrl_w(sep_, srv_ctrl_src_, kRts, rlen,
                             srv_resp_src_->remote(off), slot);
        auto fin = co_await srv_mail_[slot]->pop();
        if (!fin || fin->kind != RMsg::kCtrlMsg || fin->ctrl.type != kFin)
          co_return;
      }
    }
  }

  void post_ctrl_recv(verbs::Endpoint& ep, verbs::MemoryRegion* ring,
                      uint32_t idx) {
    ep.qp->post_recv(verbs::RecvWr{
        .wr_id = idx,
        .buf = {ring->data() + static_cast<size_t>(idx) * kCtrlBytes,
                kCtrlBytes}});
  }

  void repost_from_wc(verbs::Endpoint& ep, verbs::MemoryRegion* ring,
                      const verbs::Wc& wc) {
    post_ctrl_recv(ep, ring, static_cast<uint32_t>(wc.wr_id));
  }

  verbs::MemoryRegion* cli_payload_ = nullptr;
  verbs::MemoryRegion* cli_resp_buf_ = nullptr;
  verbs::MemoryRegion* srv_payload_ = nullptr;
  verbs::MemoryRegion* srv_resp_src_ = nullptr;
  verbs::MemoryRegion* cli_ctrl_src_ = nullptr;
  verbs::MemoryRegion* srv_ctrl_src_ = nullptr;
  verbs::MemoryRegion* cli_ctrl_ring_ = nullptr;
  verbs::MemoryRegion* srv_ctrl_ring_ = nullptr;
  uint32_t cli_ctrl_seq_ = 0;
  uint32_t srv_ctrl_seq_ = 0;
  uint32_t ctrl_slots_ = 0;
  Mailboxes cli_mail_;
  Mailboxes srv_mail_;
};

}  // namespace hatrpc::proto
