#include <stdexcept>

#include "proto/bypass.h"
#include "proto/channel.h"
#include "proto/direct.h"
#include "proto/eager.h"
#include "proto/hybrid.h"
#include "proto/rendezvous.h"

namespace hatrpc::proto {

std::string_view to_string(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kEagerSendRecv: return "Eager-SendRecv";
    case ProtocolKind::kDirectWriteSend: return "Direct-Write-Send";
    case ProtocolKind::kChainedWriteSend: return "Chained-Write-Send";
    case ProtocolKind::kWriteRndv: return "Write-RNDV";
    case ProtocolKind::kReadRndv: return "Read-RNDV";
    case ProtocolKind::kDirectWriteImm: return "Direct-WriteIMM";
    case ProtocolKind::kPilaf: return "Pilaf";
    case ProtocolKind::kFarm: return "FaRM";
    case ProtocolKind::kRfp: return "RFP";
    case ProtocolKind::kHerd: return "HERD";
    case ProtocolKind::kHybridEagerRndv: return "Hybrid-EagerRNDV";
    case ProtocolKind::kArGrpc: return "AR-gRPC";
  }
  return "unknown";
}

std::unique_ptr<RpcChannel> make_channel(ProtocolKind kind,
                                         verbs::Node& client,
                                         verbs::Node& server, Handler handler,
                                         ChannelConfig cfg) {
  // Channel constructors are private (make_channel is the single entry
  // point), so the concrete objects are built with plain new.
  auto start = [](auto* raw) -> std::unique_ptr<RpcChannel> {
    std::unique_ptr<RpcChannel> ch(raw);
    raw->start();
    return ch;
  };
  switch (kind) {
    case ProtocolKind::kEagerSendRecv:
      return start(new EagerChannel(client, server, std::move(handler), cfg));
    case ProtocolKind::kDirectWriteSend:
    case ProtocolKind::kChainedWriteSend:
    case ProtocolKind::kDirectWriteImm:
      return start(
          new DirectChannel(kind, client, server, std::move(handler), cfg));
    case ProtocolKind::kWriteRndv:
    case ProtocolKind::kReadRndv:
      return start(new RendezvousChannel(kind, client, server,
                                         std::move(handler), cfg));
    case ProtocolKind::kPilaf:
    case ProtocolKind::kFarm:
    case ProtocolKind::kRfp:
    case ProtocolKind::kHerd:
      return start(
          new BypassChannel(kind, client, server, std::move(handler), cfg));
    case ProtocolKind::kHybridEagerRndv:
    case ProtocolKind::kArGrpc: {
      auto eager = make_channel(ProtocolKind::kEagerSendRecv, client, server,
                                handler, cfg);
      auto rndv = make_channel(kind == ProtocolKind::kArGrpc
                                   ? ProtocolKind::kReadRndv
                                   : ProtocolKind::kWriteRndv,
                               client, server, std::move(handler), cfg);
      return std::unique_ptr<RpcChannel>(
          new HybridChannel(kind, client, std::move(eager), std::move(rndv),
                            cfg.rndv_threshold));
    }
  }
  throw std::invalid_argument("unknown protocol kind");
}

}  // namespace hatrpc::proto
