// Uniform RPC-channel interface implemented by every RDMA protocol of the
// paper's Figure 3 (plus the comparator emulations of §5.4). A channel is
// one client<->server connection: call() carries one request and returns
// the response; the server side runs a serve loop invoking a user handler.
//
// Channels are REAL: request/response bytes move through registered memory
// via the simulated verbs layer, and every protocol-specific cost (copies,
// doorbells, control messages, memory polling) is charged where it occurs.
//
// API shape: call() is a non-virtual wrapper that owns the cross-cutting
// concerns (call counting, failure accounting, virtual-time spans) and
// folds transport failures into Result<Buffer, RpcError>; protocols
// implement the protected do_call() and throw RpcError. Construction goes
// through make_channel() — the concrete protocol classes are not
// constructible directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "proto/error.h"
#include "proto/result.h"
#include "sim/rc_annotate.h"
#include "sim/task.h"
#include "verbs/verbs.h"

namespace hatrpc::proto {

using Buffer = std::vector<std::byte>;
using View = std::span<const std::byte>;

/// What a call resolves to: the response bytes, or the typed transport
/// error the reliability layer keys retries off.
using CallResult = Result<Buffer, RpcError>;

/// Server-side request processor. Runs on the server node; implementations
/// charge their own compute via the node's Cpu.
using Handler = std::function<sim::Task<Buffer>(View)>;

/// The protocols of Fig. 3 plus the baseline/comparator emulations.
enum class ProtocolKind : uint8_t {
  kEagerSendRecv,    // Fig 3a
  kDirectWriteSend,  // Fig 3b
  kChainedWriteSend, // Fig 3c
  kWriteRndv,        // Fig 3d
  kReadRndv,         // Fig 3e
  kDirectWriteImm,   // Fig 3f
  kPilaf,            // Fig 3g: 2 metadata READs + 1 payload READ
  kFarm,             // Fig 3h: 1 metadata READ + 1 payload READ
  kRfp,              // Fig 3i: WRITE request, READ response
  kHerd,             // comparator: WRITE request, SEND response
  kHybridEagerRndv,  // baseline: eager <=4KB, Write-RNDV above
  kArGrpc,           // comparator: eager <=4KB, Read-RNDV above
};

std::string_view to_string(ProtocolKind k);

struct ChannelConfig {
  sim::PollMode client_poll = sim::PollMode::kBusy;
  sim::PollMode server_poll = sim::PollMode::kBusy;
  /// Size of the pre-known per-connection message buffers used by the
  /// Direct-*/server-bypass protocols (and the rendezvous buffer pool).
  uint32_t max_msg = 256 << 10;
  /// Eager circular-buffer geometry (paper §4.3: slot = 4KB threshold).
  uint32_t eager_slot = 4096;
  uint32_t eager_slots = 16;
  /// Hybrid protocols switch from eager to rendezvous above this.
  uint32_t rndv_threshold = 4096;
  /// Sliding window: how many calls may be in flight on the channel at
  /// once. Every protocol allocates `window` slots of its per-connection
  /// rings; call() blocks (and counts a window_stall) when all slots are
  /// busy. window=1 is the classic one-outstanding-call channel.
  uint32_t window = 1;
  /// When set, the server side of recv-consuming protocols (Direct-WriteIMM
  /// and event-polled bypass) attaches its QP to this shared receive queue
  /// instead of posting per-connection recvs. Owned by the caller
  /// (typically thrift::TServerRdma), which also replenishes it.
  verbs::SharedReceiveQueue* server_srq = nullptr;
  /// NUMA placement of the driving threads relative to their NICs.
  bool client_numa_local = true;
  bool server_numa_local = true;
  /// Per-core sharded servers: when >= 0, the server endpoint's CQs charge
  /// their polling costs to this core, and busy waits skip the per-wait
  /// spinner registration (the owning shard registers ONE persistent
  /// polling thread via Cpu::pin_spinner that every connection on the
  /// shard multiplexes onto). -1 keeps the legacy floating behaviour.
  int server_core = -1;
  /// Shard-scope counter set owned by the steering server; the channel
  /// mirrors shard-attributable events into it (CQE polls via the server
  /// CQs, window stalls). Null = not sharded.
  obs::CounterSet* shard_counters = nullptr;
  /// Live in-flight gauge owned by the steering server's shard: call()
  /// increments it while the call is outstanding, so kLeastLoaded steering
  /// ranks shards by what they are doing NOW, not by how many connections
  /// they ever accepted. Null = not tracked. Only leaf channels (those
  /// built on ChannelBase) honour it, so a hybrid's inner call counts once.
  uint64_t* shard_inflight = nullptr;
  /// Zero-copy send path: payloads go out inline (≤ max_inline_data) or as
  /// gather SGE lists straight from the caller's buffer (registered on
  /// demand through the PD's MrCache) instead of being staged through slot
  /// copies. Off by default: the legacy staging path stays bit-identical
  /// for trace/counter regression oracles.
  bool zero_copy = false;

  // Chainable named setters, so configurations read as a sentence:
  //   ChannelConfig{}.with_poll(kEvent).with_max_msg(64 << 10)
  ChannelConfig& with_client_poll(sim::PollMode m) {
    client_poll = m;
    return *this;
  }
  ChannelConfig& with_server_poll(sim::PollMode m) {
    server_poll = m;
    return *this;
  }
  ChannelConfig& with_poll(sim::PollMode m) {
    client_poll = m;
    server_poll = m;
    return *this;
  }
  ChannelConfig& with_max_msg(uint32_t bytes) {
    max_msg = bytes;
    return *this;
  }
  ChannelConfig& with_eager(uint32_t slot_bytes, uint32_t slots) {
    eager_slot = slot_bytes;
    eager_slots = slots;
    return *this;
  }
  ChannelConfig& with_rndv_threshold(uint32_t bytes) {
    rndv_threshold = bytes;
    return *this;
  }
  ChannelConfig& with_window(uint32_t n) {
    window = n == 0 ? 1 : n;
    return *this;
  }
  ChannelConfig& with_server_srq(verbs::SharedReceiveQueue* srq) {
    server_srq = srq;
    return *this;
  }
  ChannelConfig& with_server_core(int core) {
    server_core = core;
    return *this;
  }
  ChannelConfig& with_shard_counters(obs::CounterSet* shard) {
    shard_counters = shard;
    return *this;
  }
  ChannelConfig& with_shard_inflight(uint64_t* gauge) {
    shard_inflight = gauge;
    return *this;
  }
  ChannelConfig& with_numa(bool client_local, bool server_local) {
    client_numa_local = client_local;
    server_numa_local = server_local;
    return *this;
  }
  ChannelConfig& with_zero_copy(bool on = true) {
    zero_copy = on;
    return *this;
  }
};

/// Per-channel operation counters, used by tests to pin down each
/// protocol's verbs footprint and by the res_util hint evaluation.
struct ChannelStats {
  uint64_t calls = 0;
  uint64_t sends = 0;       // two-sided SENDs issued (both directions)
  uint64_t writes = 0;      // one-sided WRITEs
  uint64_t write_imms = 0;  // WRITE_WITH_IMMs
  uint64_t reads = 0;       // one-sided READs
  uint64_t read_retries = 0;  // extra READs spent polling for readiness
  size_t client_registered = 0;  // bytes of MR pinned at the client
  size_t server_registered = 0;  // bytes of MR pinned at the server
};

/// A response delivered without the client-side materialization copy where
/// the protocol can manage it: either a view into the channel's pooled recv
/// ring (released — i.e. the ring slot reposted — when the lease dies) or
/// an owned Buffer fallback. A lease must not outlive its channel.
class LeasedReply {
 public:
  LeasedReply() = default;
  explicit LeasedReply(Buffer owned) : owned_(std::move(owned)) {}
  LeasedReply(View v, std::function<void()> release)
      : view_(v), release_(std::move(release)) {}
  LeasedReply(LeasedReply&& o) noexcept
      : owned_(std::move(o.owned_)), view_(o.view_),
        release_(std::move(o.release_)) {
    o.release_ = nullptr;
    o.view_ = {};
  }
  LeasedReply& operator=(LeasedReply&& o) noexcept {
    if (this != &o) {
      release();
      owned_ = std::move(o.owned_);
      view_ = o.view_;
      release_ = std::move(o.release_);
      o.release_ = nullptr;
      o.view_ = {};
    }
    return *this;
  }
  LeasedReply(const LeasedReply&) = delete;
  LeasedReply& operator=(const LeasedReply&) = delete;
  ~LeasedReply() { release(); }

  View bytes() const { return release_ ? view_ : View(owned_); }
  /// True when the bytes live in the channel's recv ring (no copy paid).
  bool in_place() const { return static_cast<bool>(release_); }
  /// Reposts the underlying ring slot early (the dtor does it otherwise).
  void release() {
    if (release_) {
      release_();
      release_ = nullptr;
    }
    view_ = {};
  }

 private:
  Buffer owned_;
  View view_{};
  std::function<void()> release_;
};

using LeasedResult = Result<LeasedReply, RpcError>;

class RpcChannel {
 public:
  virtual ~RpcChannel() = default;

  /// Issues one RPC: sends `req`, resolves to the server handler's response
  /// or the RpcError that ended the attempt. `resp_size_hint` bounds the
  /// expected response (protocols that fetch the response with RDMA READ
  /// size their read from it; 0 = max_msg). Non-transport failures
  /// (handler exceptions, oversized messages) propagate as exceptions.
  sim::Task<CallResult> call(View req, uint32_t resp_size_hint = 0);

  /// Like call(), but the response may be delivered in place from the
  /// channel's recv ring (zero-copy receive). Protocols without an in-place
  /// path fall back to call() semantics with an owned buffer.
  sim::Task<LeasedResult> call_leased(View req, uint32_t resp_size_hint = 0);

  /// Stops the server-side serve loop(s) so the simulation can drain.
  virtual void shutdown() = 0;

  /// Hard teardown: shutdown() plus transitioning the underlying QPs into
  /// the error state so in-flight NIC work flushes instead of lingering.
  /// Used by the reliability layer before abandoning a timed-out channel.
  virtual void abort() { shutdown(); }

  virtual ProtocolKind kind() const = 0;
  virtual ChannelStats stats() const { return stats_; }

  // ---- Live reconfiguration (adaptive hints) ----------------------------
  // The adaptive controller re-selects polling and window online; protocol
  // changes need a channel rebuild (epoch swap). Defaults are conservative
  // no-ops so non-reconfigurable channels simply report "rebuild me".

  /// Switches the polling discipline each side uses from the next CQ wait
  /// on. Takes effect immediately and never touches in-flight calls (the
  /// discipline is consumed per wait).
  virtual void set_poll_modes(sim::PollMode /*client*/,
                              sim::PollMode /*server*/) {}

  /// Bounds the number of in-flight calls to `n` without reallocating:
  /// shrinking withholds free slots as they come home (in-flight calls
  /// drain untouched), growing re-releases withheld ones. Returns false if
  /// `n` exceeds what the channel allocated — that needs an epoch swap.
  virtual bool resize_window(uint32_t /*n*/) { return false; }

  /// This channel's counter scope (null when unbound). Lets the adaptive
  /// layer read window_stalls and copy deltas without friending obs.
  virtual const obs::CounterSet* counters() const {
    return obs_ ? &obs_->counters.channel(obs_id_) : nullptr;
  }

 protected:
  /// Protocol-specific call body. Throws RpcError for transport failures
  /// (the call() wrapper folds those into the Result).
  virtual sim::Task<Buffer> do_call(View req, uint32_t resp_size_hint) = 0;

  /// Protocol-specific leased-call body; the default materializes through
  /// do_call. Overrides deliver single-segment responses in place.
  virtual sim::Task<LeasedReply> do_call_leased(View req,
                                                uint32_t resp_size_hint) {
    co_return LeasedReply(co_await do_call(req, resp_size_hint));
  }

  /// Hooks this channel into the fabric's observability layer: allocates a
  /// channel-scoped counter set and remembers the client node id as the
  /// trace pid. Every constructor path calls this exactly once.
  void bind_obs(verbs::Fabric& fabric, uint32_t client_node_id) {
    obs_ = &fabric.obs();
    sim_clock_ = &fabric.simulator();
    obs_id_ = obs_->counters.register_channel();
    obs_pid_ = client_node_id;
  }
  obs::CounterSet* channel_counters() {
    return obs_ ? &obs_->counters.channel(obs_id_) : nullptr;
  }
  uint32_t obs_channel_id() const { return obs_id_; }
  uint32_t obs_pid() const { return obs_pid_; }

  /// Scoped increment of the owning shard's live in-flight gauge (the
  /// kLeastLoaded steering signal). Exception-safe: the decrement rides the
  /// coroutine frame's unwinding whichever way the call resolves.
  struct InflightGuard {
    explicit InflightGuard(uint64_t* g) : g_(g) {
      if (g_) ++*g_;
    }
    InflightGuard(const InflightGuard&) = delete;
    InflightGuard& operator=(const InflightGuard&) = delete;
    ~InflightGuard() {
      if (g_) --*g_;
    }
    uint64_t* g_;
  };

  ChannelStats stats_;
  obs::Obs* obs_ = nullptr;
  sim::Simulator* sim_clock_ = nullptr;
  uint32_t obs_id_ = 0;
  uint32_t obs_pid_ = 0;
  uint64_t* inflight_gauge_ = nullptr;  // set by ChannelBase from the config
};

inline sim::Task<CallResult> RpcChannel::call(View req,
                                              uint32_t resp_size_hint) {
  ++stats_.calls;
  InflightGuard gauge(inflight_gauge_);
  // Relaxed access: the gauge is read by kLeastLoaded steering with no
  // ordering on purpose (a stale load balance decision is still correct).
  if (inflight_gauge_ && sim_clock_)
    sim_clock_->rc_update(inflight_gauge_, 0, "shard.inflight_gauge", RC_HERE);
  const bool trace = obs_ && obs_->tracer.enabled();
  const sim::Time t0 = trace ? sim_clock_->now() : sim::Time{};
  try {
    Buffer resp = co_await do_call(req, resp_size_hint);
    if (trace)
      obs_->tracer.complete("call/" + std::string(to_string(kind())), "rpc",
                            t0, sim_clock_->now() - t0, obs_pid_, obs_id_);
    co_return CallResult(std::move(resp));
  } catch (const RpcError& e) {
    if (obs_) {
      obs_->counters.channel(obs_id_).add(obs::Ctr::kFailedCalls);
      obs_->counters.node(obs_pid_).add(obs::Ctr::kFailedCalls);
    }
    if (trace)
      obs_->tracer.complete(
          "call-failed/" + std::string(to_string(kind())), "rpc", t0,
          sim_clock_->now() - t0, obs_pid_, obs_id_);
    co_return CallResult(e);
  }
}

inline sim::Task<LeasedResult> RpcChannel::call_leased(
    View req, uint32_t resp_size_hint) {
  ++stats_.calls;
  InflightGuard gauge(inflight_gauge_);
  if (inflight_gauge_ && sim_clock_)
    sim_clock_->rc_update(inflight_gauge_, 0, "shard.inflight_gauge", RC_HERE);
  const bool trace = obs_ && obs_->tracer.enabled();
  const sim::Time t0 = trace ? sim_clock_->now() : sim::Time{};
  try {
    LeasedReply resp = co_await do_call_leased(req, resp_size_hint);
    if (trace)
      obs_->tracer.complete("call/" + std::string(to_string(kind())), "rpc",
                            t0, sim_clock_->now() - t0, obs_pid_, obs_id_);
    co_return LeasedResult(std::move(resp));
  } catch (const RpcError& e) {
    if (obs_) {
      obs_->counters.channel(obs_id_).add(obs::Ctr::kFailedCalls);
      obs_->counters.node(obs_pid_).add(obs::Ctr::kFailedCalls);
    }
    if (trace)
      obs_->tracer.complete(
          "call-failed/" + std::string(to_string(kind())), "rpc", t0,
          sim_clock_->now() - t0, obs_pid_, obs_id_);
    co_return LeasedResult(e);
  }
}

/// Creates a connected channel of the given protocol between two nodes and
/// spawns its server loop with `handler`. The returned channel is ready for
/// call() from a client-side task. This is the single construction entry
/// point for protocol channels (their constructors are private).
std::unique_ptr<RpcChannel> make_channel(ProtocolKind kind,
                                         verbs::Node& client,
                                         verbs::Node& server, Handler handler,
                                         ChannelConfig cfg);

/// Convenience helpers for moving bytes in and out of Buffers.
inline Buffer to_buffer(std::string_view s) {
  auto p = reinterpret_cast<const std::byte*>(s.data());
  return Buffer(p, p + s.size());
}
inline std::string_view as_string(View b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace hatrpc::proto
