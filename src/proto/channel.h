// Uniform RPC-channel interface implemented by every RDMA protocol of the
// paper's Figure 3 (plus the comparator emulations of §5.4). A channel is
// one client<->server connection: call() carries one request and returns
// the response; the server side runs a serve loop invoking a user handler.
//
// Channels are REAL: request/response bytes move through registered memory
// via the simulated verbs layer, and every protocol-specific cost (copies,
// doorbells, control messages, memory polling) is charged where it occurs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "sim/task.h"
#include "verbs/verbs.h"

namespace hatrpc::proto {

using Buffer = std::vector<std::byte>;
using View = std::span<const std::byte>;

/// Server-side request processor. Runs on the server node; implementations
/// charge their own compute via the node's Cpu.
using Handler = std::function<sim::Task<Buffer>(View)>;

/// The protocols of Fig. 3 plus the baseline/comparator emulations.
enum class ProtocolKind : uint8_t {
  kEagerSendRecv,    // Fig 3a
  kDirectWriteSend,  // Fig 3b
  kChainedWriteSend, // Fig 3c
  kWriteRndv,        // Fig 3d
  kReadRndv,         // Fig 3e
  kDirectWriteImm,   // Fig 3f
  kPilaf,            // Fig 3g: 2 metadata READs + 1 payload READ
  kFarm,             // Fig 3h: 1 metadata READ + 1 payload READ
  kRfp,              // Fig 3i: WRITE request, READ response
  kHerd,             // comparator: WRITE request, SEND response
  kHybridEagerRndv,  // baseline: eager <=4KB, Write-RNDV above
  kArGrpc,           // comparator: eager <=4KB, Read-RNDV above
};

std::string_view to_string(ProtocolKind k);

struct ChannelConfig {
  sim::PollMode client_poll = sim::PollMode::kBusy;
  sim::PollMode server_poll = sim::PollMode::kBusy;
  /// Size of the pre-known per-connection message buffers used by the
  /// Direct-*/server-bypass protocols (and the rendezvous buffer pool).
  uint32_t max_msg = 256 << 10;
  /// Eager circular-buffer geometry (paper §4.3: slot = 4KB threshold).
  uint32_t eager_slot = 4096;
  uint32_t eager_slots = 16;
  /// Hybrid protocols switch from eager to rendezvous above this.
  uint32_t rndv_threshold = 4096;
  /// NUMA placement of the driving threads relative to their NICs.
  bool client_numa_local = true;
  bool server_numa_local = true;
};

/// Per-channel operation counters, used by tests to pin down each
/// protocol's verbs footprint and by the res_util hint evaluation.
struct ChannelStats {
  uint64_t calls = 0;
  uint64_t sends = 0;       // two-sided SENDs issued (both directions)
  uint64_t writes = 0;      // one-sided WRITEs
  uint64_t write_imms = 0;  // WRITE_WITH_IMMs
  uint64_t reads = 0;       // one-sided READs
  uint64_t read_retries = 0;  // extra READs spent polling for readiness
  size_t client_registered = 0;  // bytes of MR pinned at the client
  size_t server_registered = 0;  // bytes of MR pinned at the server
};

class RpcChannel {
 public:
  virtual ~RpcChannel() = default;

  /// Issues one RPC: sends `req`, returns the server handler's response.
  /// `resp_size_hint` bounds the expected response (protocols that fetch
  /// the response with RDMA READ size their read from it; 0 = max_msg).
  virtual sim::Task<Buffer> call(View req, uint32_t resp_size_hint) = 0;
  sim::Task<Buffer> call(View req) { return call(req, 0); }

  /// Stops the server-side serve loop(s) so the simulation can drain.
  virtual void shutdown() = 0;

  /// Hard teardown: shutdown() plus transitioning the underlying QPs into
  /// the error state so in-flight NIC work flushes instead of lingering.
  /// Used by the reliability layer before abandoning a timed-out channel.
  virtual void abort() { shutdown(); }

  virtual ProtocolKind kind() const = 0;
  virtual ChannelStats stats() const { return stats_; }

 protected:
  ChannelStats stats_;
};

/// Creates a connected channel of the given protocol between two nodes and
/// spawns its server loop with `handler`. The returned channel is ready for
/// call() from a client-side task.
std::unique_ptr<RpcChannel> make_channel(ProtocolKind kind,
                                         verbs::Node& client,
                                         verbs::Node& server, Handler handler,
                                         ChannelConfig cfg);

/// Convenience helpers for moving bytes in and out of Buffers.
inline Buffer to_buffer(std::string_view s) {
  auto p = reinterpret_cast<const std::byte*>(s.data());
  return Buffer(p, p + s.size());
}
inline std::string_view as_string(View b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace hatrpc::proto
