// End-to-end RPC reliability on top of any Fig. 3 protocol channel:
// client-side timeouts, exponential backoff with jitter, reconnection
// through fresh QPs, idempotent retries via sequence-numbered requests with
// server-side response replay, and graceful degradation to the eager
// SEND/RECV path when a one-sided protocol's remote-access assumptions
// break (e.g. the server's exported region was revoked).
//
// The wrapped handler sees exactly the bytes the caller passed to call();
// the RpcHeader framing (seq, attempt, len) is internal to this layer.
#pragma once

#include <algorithm>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "proto/channel.h"
#include "proto/error.h"
#include "proto/wire.h"
#include "sim/rng.h"
#include "sim/sync.h"

namespace hatrpc::proto {

struct RetryPolicy {
  int max_attempts = 4;
  /// Per-attempt client-side deadline (virtual time). On expiry the
  /// underlying channel is aborted and the call is retried on a fresh one.
  sim::Duration timeout = std::chrono::milliseconds(2);
  /// Backoff before attempt n+1 is uniform in [d/2, d) with
  /// d = min(backoff_base << (n-1), backoff_max) — exponential with jitter
  /// so synchronized clients do not retry in lockstep.
  sim::Duration backoff_base = std::chrono::microseconds(50);
  sim::Duration backoff_max = std::chrono::milliseconds(1);
  uint64_t jitter_seed = 1;
  /// Degrade to kEagerSendRecv after remote-access faults or repeated
  /// failures of the configured protocol.
  bool fallback_to_eager = true;
  /// TOTAL per-call budget across every attempt and backoff (zero =
  /// unbounded, the historical behavior). A call that would retry past
  /// this deadline surfaces kDeadlineExceeded instead — failover logic can
  /// bound tail latency instead of riding max_attempts against a dead
  /// replica. Attempt deadlines are clipped to whatever budget remains.
  sim::Duration total_deadline = sim::Duration::zero();
};

struct ReliabilityStats {
  uint64_t attempts = 0;    // inner call()s issued (>= calls)
  uint64_t retries = 0;     // attempts beyond a call's first
  uint64_t timeouts = 0;    // attempts abandoned at the deadline
  uint64_t failures = 0;    // attempts that surfaced a typed error
  uint64_t reconnects = 0;  // fresh channels built (incl. fallbacks)
  uint64_t fallbacks = 0;   // degradations to the eager path
  uint64_t replays = 0;     // server-side dedupe hits (response replayed)
};

/// Wraps a protocol channel with retry/timeout/reconnect logic. Holds the
/// two nodes so a failed connection can be torn down and rebuilt via
/// make_channel (fresh QPs + CQs through Fabric::connect).
class ReliableChannel : public RpcChannel {
 public:
  ReliableChannel(ProtocolKind kind, verbs::Node& client,
                  verbs::Node& server, Handler handler, ChannelConfig cfg,
                  RetryPolicy policy = {})
      : kind_(kind), active_kind_(kind), cl_(client), sv_(server),
        user_handler_(std::move(handler)), cfg_(cfg), policy_(policy),
        sim_(client.fabric().simulator()), jitter_(policy.jitter_seed),
        dedupe_(std::make_shared<DedupeState>()) {
    bind_obs(client.fabric(), client.id());
    ch_ = make_channel(kind_, cl_, sv_, wrap_handler(), cfg_);
  }

  void shutdown() override { ch_->shutdown(); }
  void abort() override { ch_->abort(); }

  ProtocolKind kind() const override { return kind_; }
  /// The protocol currently carrying traffic (kEagerSendRecv once degraded).
  ProtocolKind active_kind() const { return active_kind_; }
  bool degraded() const { return active_kind_ != kind_; }
  const ReliabilityStats& reliability() const { return rstats_; }
  uint64_t server_replays() const { return dedupe_->replays; }

  ChannelStats stats() const override {
    ChannelStats s = stats_;
    merge(s, ch_->stats());
    for (const auto& dead : graveyard_) merge(s, dead->stats());
    return s;
  }

 protected:
  sim::Task<Buffer> do_call(View req, uint32_t resp_size_hint) override {
    const uint64_t seq = ++next_seq_;
    const bool budgeted = policy_.total_deadline.count() > 0;
    const sim::Time budget_end = sim_.now() + policy_.total_deadline;
    RpcErrc last = RpcErrc::kTimeout;
    std::string last_what = "no attempt made";
    for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
      ++rstats_.attempts;
      // With a windowed channel several calls retry concurrently; remember
      // which incarnation this attempt ran on so only the FIRST failure of
      // an incarnation rebuilds it (the others retry on the new channel).
      const uint64_t at_epoch = epoch_;
      if (attempt > 1) {
        ++rstats_.retries;
        count(obs::Ctr::kRetryAttempts);
        if (obs_->tracer.enabled())
          obs_->tracer.instant("retry-attempt", "reliable", sim_.now(),
                               obs_pid(), obs_channel_id());
      }
      sim::Time attempt_end = sim_.now() + policy_.timeout;
      if (budgeted && budget_end < attempt_end) attempt_end = budget_end;
      auto state = sim::pooled_shared<CallState>(sim_);
      sim_.spawn(invoke(ch_.get(), state,
                        frame(req, seq, static_cast<uint32_t>(attempt)),
                        resp_size_hint));
      bool done = co_await state->done.wait_until(attempt_end);
      if (done && sim_.now() < attempt_end) {
        // The attempt finished early: its deadline timer was cancelled
        // instead of lingering in the scheduler until attempt_end.
        count(obs::Ctr::kTimerCancels);
      }
      if (!done) {
        // Deadline expired with the attempt still in flight: tear the
        // channel down so the inner call unwinds (flush completions), then
        // join it before the channel object is retired.
        ++rstats_.timeouts;
        count(obs::Ctr::kTimeouts);
        ch_->abort();
        co_await state->done.wait();
        last = RpcErrc::kTimeout;
        last_what = "attempt timed out";
      } else if (state->err) {
        ++rstats_.failures;
        bool rethrow = false;
        try {
          std::rethrow_exception(state->err);
        } catch (const RpcError& e) {
          last = e.errc();
          last_what = e.what();
        } catch (...) {
          // Not a transport-layer failure (handler bug, length error...):
          // retrying will not help, so surface it to the caller.
          rethrow = true;
        }
        if (rethrow) std::rethrow_exception(state->err);
      } else {
        co_return std::move(*state->resp);
      }
      if (budgeted && sim_.now() >= budget_end) {
        count(obs::Ctr::kDeadlineExceeded);
        throw RpcError(RpcErrc::kDeadlineExceeded,
                       "rpc exceeded its " +
                           std::to_string(policy_.total_deadline.count()) +
                           "ns budget after " + std::to_string(attempt) +
                           " attempts (last: " + last_what + ")");
      }
      if (attempt == policy_.max_attempts) break;
      co_await backoff(attempt, budgeted ? &budget_end : nullptr);
      reconnect(last, attempt, at_epoch);
    }
    throw RpcError(RpcErrc::kRetriesExhausted,
                   "rpc failed after " +
                       std::to_string(policy_.max_attempts) +
                       " attempts (last: " + last_what + ")");
  }

 private:
  /// Completion rendezvous between do_call() and the spawned attempt.
  /// Shared so a timed-out attempt can outlive the call frame briefly
  /// while it unwinds.
  struct CallState {
    explicit CallState(sim::Simulator& sim) : done(sim) {}
    sim::Event done;
    std::optional<Buffer> resp;
    std::exception_ptr err;
  };

  /// Server-side idempotency: responses cached by sequence number so a
  /// retried request is answered by replay, not re-execution. Shared across
  /// reconnects — a rebuilt channel must still recognize old sequence
  /// numbers.
  struct DedupeState {
    std::unordered_map<uint64_t, Buffer> cache;
    std::deque<uint64_t> order;
    uint64_t replays = 0;
    static constexpr size_t kMaxCached = 256;
  };

  static void merge(ChannelStats& into, const ChannelStats& from) {
    into.sends += from.sends;
    into.writes += from.writes;
    into.write_imms += from.write_imms;
    into.reads += from.reads;
    into.read_retries += from.read_retries;
    into.client_registered += from.client_registered;
    into.server_registered += from.server_registered;
  }

  /// Counts a reliability event in this channel's scope and on the client
  /// node (where the retry machinery runs).
  void count(obs::Ctr c) {
    channel_counters()->add(c);
    cl_.counters().add(c);
  }

  Handler wrap_handler() {
    auto dedupe = dedupe_;
    Handler user = user_handler_;
    obs::CounterSet* chan = channel_counters();
    obs::CounterSet* node = &sv_.counters();
    sim::Simulator* rsim = &sim_;
    return [dedupe, user, chan, node, rsim](View req) -> sim::Task<Buffer> {
      RpcHeader h = get_rpc_header(req.data());
      // Relaxed per-seq access: concurrent executions of a retried seq are
      // racy by design — whichever finishes first populates the cache and
      // the loser's insert is a harmless overwrite of an equal response.
      rsim->rc_update(dedupe.get(), h.seq, "ReliableChannel.dedupe", RC_HERE);
      if (auto it = dedupe->cache.find(h.seq); it != dedupe->cache.end()) {
        ++dedupe->replays;
        chan->add(obs::Ctr::kReplays);
        node->add(obs::Ctr::kReplays);
        co_return it->second;
      }
      Buffer resp = co_await user(req.subspan(kRpcHeaderBytes, h.len));
      dedupe->cache.emplace(h.seq, resp);
      dedupe->order.push_back(h.seq);
      while (dedupe->order.size() > DedupeState::kMaxCached) {
        dedupe->cache.erase(dedupe->order.front());
        dedupe->order.pop_front();
      }
      co_return resp;
    };
  }

  Buffer frame(View req, uint64_t seq, uint32_t attempt) const {
    Buffer b(kRpcHeaderBytes + req.size());
    put_rpc_header(b.data(),
                   RpcHeader{seq, attempt,
                             static_cast<uint32_t>(req.size())});
    std::copy(req.begin(), req.end(), b.begin() + kRpcHeaderBytes);
    return b;
  }

  /// One attempt, run as its own task so do_call() can abandon it at the
  /// deadline. Owns its framed request; always sets `done`. The inner
  /// call() resolves to a Result; the error arm is re-raised here so the
  /// retry loop can classify it alongside non-transport exceptions.
  static sim::Task<void> invoke(RpcChannel* ch,
                                std::shared_ptr<CallState> state,
                                Buffer framed, uint32_t hint) {
    try {
      CallResult r = co_await ch->call(
          View{framed.data(), framed.size()}, hint);
      if (r)
        state->resp = std::move(*r);
      else
        state->err = std::make_exception_ptr(r.error());
    } catch (...) {
      state->err = std::current_exception();
    }
    state->done.set();
  }

  sim::Task<void> backoff(int attempt, const sim::Time* budget_end) {
    count(obs::Ctr::kBackoffSleeps);
    auto d = policy_.backoff_base.count();
    for (int i = 1; i < attempt && d < policy_.backoff_max.count(); ++i)
      d <<= 1;
    d = std::min(d, policy_.backoff_max.count());
    // Jitter: uniform in [d/2, d).
    int64_t jittered = d / 2 + static_cast<int64_t>(
                                   jitter_.bounded(
                                       static_cast<uint64_t>(d - d / 2)));
    // Never sleep past the call's total budget — the next attempt should
    // get whatever time remains rather than none.
    if (budget_end) {
      int64_t remaining = (*budget_end - sim_.now()).count();
      jittered = std::min(jittered, std::max<int64_t>(remaining, 0));
    }
    co_await sim_.sleep(sim::Duration(jittered));
  }

  /// Retires the current channel and connects a fresh one; degrades to the
  /// eager two-sided path when one-sided access keeps failing. A no-op when
  /// the failing attempt ran on an already-replaced incarnation (its
  /// rebuild is done; aborting again would kill the replacement's traffic).
  void reconnect(RpcErrc why, int attempt, uint64_t at_epoch) {
    if (at_epoch != epoch_) return;
    ++epoch_;
    ++rstats_.reconnects;
    count(obs::Ctr::kReconnects);
    bool degrade = policy_.fallback_to_eager &&
                   active_kind_ != ProtocolKind::kEagerSendRecv &&
                   (why == RpcErrc::kRemoteAccess || attempt >= 2);
    if (degrade) {
      ++rstats_.fallbacks;
      count(obs::Ctr::kFallbacks);
      active_kind_ = ProtocolKind::kEagerSendRecv;
    }
    ch_->abort();
    // The dead channel's serve loop may still be unwinding inside the
    // simulator; keep the object alive until the channel itself dies.
    graveyard_.push_back(std::move(ch_));
    ch_ = make_channel(active_kind_, cl_, sv_, wrap_handler(), cfg_);
  }

  ProtocolKind kind_;
  ProtocolKind active_kind_;
  verbs::Node& cl_;
  verbs::Node& sv_;
  Handler user_handler_;
  ChannelConfig cfg_;
  RetryPolicy policy_;
  sim::Simulator& sim_;
  sim::Rng jitter_;
  std::shared_ptr<DedupeState> dedupe_;
  std::unique_ptr<RpcChannel> ch_;
  std::vector<std::unique_ptr<RpcChannel>> graveyard_;
  ReliabilityStats rstats_;
  uint64_t next_seq_ = 0;
  uint64_t epoch_ = 0;  // bumped on every rebuild; guards double-reconnect
};

inline std::unique_ptr<ReliableChannel> make_reliable_channel(
    ProtocolKind kind, verbs::Node& client, verbs::Node& server,
    Handler handler, ChannelConfig cfg, RetryPolicy policy = {}) {
  return std::make_unique<ReliableChannel>(kind, client, server,
                                           std::move(handler), cfg, policy);
}

}  // namespace hatrpc::proto
