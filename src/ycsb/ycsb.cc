#include "ycsb/ycsb.h"

#include <cstdio>

namespace hatrpc::ycsb {

std::string_view to_string(OpType t) {
  switch (t) {
    case OpType::kGet: return "GET";
    case OpType::kPut: return "PUT";
    case OpType::kMultiGet: return "MultiGET";
    case OpType::kMultiPut: return "MultiPUT";
  }
  return "?";
}

namespace {

double zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

uint64_t fnv1a(uint64_t v) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

ZipfianChooser::ZipfianChooser(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = zeta(n, theta);
  zeta2_ = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfianChooser::raw_next(sim::Rng& rng) {
  double u = rng.uniform01();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

uint64_t ZipfianChooser::next(sim::Rng& rng) {
  // Scrambled zipfian: spread the hot items across the keyspace.
  return fnv1a(raw_next(rng)) % n_;
}

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec, uint64_t seed)
    : spec_(spec), rng_(seed), zipf_(spec.record_count, spec.zipf_theta),
      inserted_(spec.record_count) {}

std::string WorkloadGenerator::key_of(uint64_t index) const {
  char buf[64];
  int n = std::snprintf(buf, sizeof buf, "user%019llu",
                        static_cast<unsigned long long>(index));
  std::string key(buf, static_cast<size_t>(n));
  key.resize(spec_.key_len, '0');
  return key;
}

std::string WorkloadGenerator::make_value(sim::Rng& rng) const {
  std::string v(spec_.value_len(), '\0');
  for (auto& c : v)
    c = static_cast<char>('a' + rng.bounded(26));
  return v;
}

std::vector<std::string> WorkloadGenerator::load_keys() const {
  std::vector<std::string> keys;
  keys.reserve(spec_.record_count);
  for (uint64_t i = 0; i < spec_.record_count; ++i) keys.push_back(key_of(i));
  return keys;
}

uint64_t WorkloadGenerator::choose_key() {
  switch (spec_.dist) {
    case Distribution::kUniform:
      return rng_.bounded(spec_.record_count);
    case Distribution::kZipfian:
      return zipf_.next(rng_);
    case Distribution::kLatest: {
      uint64_t off = zipf_.next(rng_) % inserted_;
      return inserted_ - 1 - off;
    }
  }
  return 0;
}

Op WorkloadGenerator::next() {
  double dice = rng_.uniform01();
  Op op;
  if (dice < spec_.get) {
    op.type = OpType::kGet;
    op.keys.push_back(key_of(choose_key()));
  } else if (dice < spec_.get + spec_.put) {
    op.type = OpType::kPut;
    op.keys.push_back(key_of(choose_key()));
    op.values.push_back(make_value(rng_));
  } else if (dice < spec_.get + spec_.put + spec_.multi_get) {
    op.type = OpType::kMultiGet;
    for (int i = 0; i < spec_.batch; ++i)
      op.keys.push_back(key_of(choose_key()));
  } else {
    op.type = OpType::kMultiPut;
    for (int i = 0; i < spec_.batch; ++i) {
      op.keys.push_back(key_of(choose_key()));
      op.values.push_back(make_value(rng_));
    }
  }
  return op;
}

}  // namespace hatrpc::ycsb
