// YCSB core in C++ — the workload generator and statistics collector the
// paper extends with MultiGET/MultiPUT (§5.4):
//   * workload A: 50/50 read/update, halved into 25% GET / 25% PUT /
//     25% MultiGET / 25% MultiPUT;
//   * workload B: 95/5 read/update, halved into 47.5% GET / 47.5% MultiGET
//     / 2.5% PUT / 2.5% MultiPUT;
//   * 24-byte keys, 10 fields x 100 bytes (1000-byte values), batch 10.
// Key choosers: uniform, YCSB-standard scrambled zipfian, latest.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace hatrpc::ycsb {

enum class OpType : uint8_t { kGet, kPut, kMultiGet, kMultiPut };

constexpr OpType kAllOps[] = {OpType::kGet, OpType::kPut, OpType::kMultiGet,
                              OpType::kMultiPut};

std::string_view to_string(OpType t);

enum class Distribution : uint8_t { kUniform, kZipfian, kLatest };

struct WorkloadSpec {
  // Operation mix (must sum to 1).
  double get = 0.25;
  double put = 0.25;
  double multi_get = 0.25;
  double multi_put = 0.25;

  uint64_t record_count = 10000;
  size_t key_len = 24;
  size_t field_len = 100;
  int field_count = 10;   // value size = field_len * field_count
  int batch = 10;         // MultiGET/MultiPUT batch size
  Distribution dist = Distribution::kZipfian;
  double zipf_theta = 0.99;

  size_t value_len() const { return field_len * static_cast<size_t>(field_count); }

  /// Paper workload A: update-heavy 25/25/25/25.
  static WorkloadSpec workload_a() { return WorkloadSpec{}; }

  /// Paper workload B: read-intensive 47.5/2.5/47.5/2.5.
  static WorkloadSpec workload_b() {
    WorkloadSpec w;
    w.get = 0.475;
    w.put = 0.025;
    w.multi_get = 0.475;
    w.multi_put = 0.025;
    return w;
  }
};

/// YCSB's scrambled zipfian over [0, n): popular items spread across the
/// keyspace via FNV hashing, matching the reference implementation.
class ZipfianChooser {
 public:
  ZipfianChooser(uint64_t n, double theta);
  uint64_t next(sim::Rng& rng);

 private:
  uint64_t raw_next(sim::Rng& rng);
  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double zeta2_;
};

struct Op {
  OpType type;
  std::vector<std::string> keys;    // 1 entry for GET/PUT, `batch` for multi
  std::vector<std::string> values;  // PUT/MultiPUT payloads
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadSpec spec, uint64_t seed);

  /// Fixed-width zero-padded key (spec.key_len bytes).
  std::string key_of(uint64_t index) const;

  /// A fresh field_count x field_len value.
  std::string make_value(sim::Rng& rng) const;

  /// All keys for the load phase.
  std::vector<std::string> load_keys() const;

  Op next();

  const WorkloadSpec& spec() const { return spec_; }

 private:
  uint64_t choose_key();

  WorkloadSpec spec_;
  sim::Rng rng_;
  ZipfianChooser zipf_;
  uint64_t inserted_;  // high-water mark for kLatest
};

/// Latency/throughput accounting per operation type (the shape of the
/// paper's Fig. 15/16 panels).
class StatsCollector {
 public:
  void record(OpType type, sim::Duration latency) {
    Slot& s = slots_[static_cast<size_t>(type)];
    ++s.count;
    s.total += latency;
    s.max = std::max(s.max, latency);
  }

  uint64_t count(OpType t) const {
    return slots_[static_cast<size_t>(t)].count;
  }
  uint64_t total_ops() const {
    uint64_t n = 0;
    for (const Slot& s : slots_) n += s.count;
    return n;
  }
  sim::Duration mean_latency(OpType t) const {
    const Slot& s = slots_[static_cast<size_t>(t)];
    return s.count ? s.total / static_cast<int64_t>(s.count) : sim::Duration{};
  }
  sim::Duration max_latency(OpType t) const {
    return slots_[static_cast<size_t>(t)].max;
  }
  /// Aggregate throughput in kops/s over `elapsed` of virtual time.
  double throughput_kops(OpType t, sim::Duration elapsed) const {
    double secs = sim::to_seconds(elapsed);
    return secs > 0 ? static_cast<double>(count(t)) / secs / 1e3 : 0;
  }
  double total_throughput_kops(sim::Duration elapsed) const {
    double secs = sim::to_seconds(elapsed);
    return secs > 0 ? static_cast<double>(total_ops()) / secs / 1e3 : 0;
  }

 private:
  struct Slot {
    uint64_t count = 0;
    sim::Duration total{};
    sim::Duration max{};
  };
  Slot slots_[4];
};

}  // namespace hatrpc::ycsb
