// Recursive-descent parser for the HatRPC IDL (the Bison-parser
// counterpart of paper §4.2), implementing the Fig. 7 grammar:
//
//   Service      := 'service' Identifier ('extends' Identifier)?
//                   '{' HintGroup* Function* '}'
//   Function     := 'oneway'? FunctionType Identifier '(' Field* ')'
//                   Throws? ListSeparator? FunctionHint?
//   FunctionHint := '[' HintGroup* ']'
//   HintGroup    := ('hint' | 'c_hint' | 's_hint') ':' HintList ';'
//   HintList     := Hint (',' Hint)*
//   Hint         := key '=' value
//
// plus the standard Thrift constructs (namespace, include, const, typedef,
// enum, struct, exception).
#pragma once

#include "idl/ast.h"
#include "idl/lexer.h"

namespace hatrpc::idl {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, const Token& at)
      : std::runtime_error(what + " at line " + std::to_string(at.line) +
                           " (near '" + (at.kind == Tok::kEof ? "<eof>"
                                                              : at.text) +
                           "')") {}
};

/// Parses a whole document. Throws ParseError / LexError on bad input.
Program parse(std::string_view source);

}  // namespace hatrpc::idl
