// Abstract syntax tree for HatRPC IDL documents — Thrift's IDL extended
// with the hint grammar of Fig. 7. Hint-bearing nodes (services and
// functions) carry raw key=value pairs; the checker pass (check.h)
// validates them against the hint schema and builds hint::ServiceHints.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hint/hint.h"

namespace hatrpc::idl {

struct TypeRef {
  enum class Kind : uint8_t {
    kVoid, kBool, kByte, kI16, kI32, kI64, kDouble, kString, kBinary,
    kNamed,  // struct / enum / typedef reference
    kList, kSet, kMap,
  };
  Kind kind = Kind::kVoid;
  std::string name;            // for kNamed
  std::vector<TypeRef> args;   // element type(s) for containers

  bool is_container() const {
    return kind == Kind::kList || kind == Kind::kSet || kind == Kind::kMap;
  }
};

struct Field {
  int16_t id = 0;
  bool optional = false;
  TypeRef type;
  std::string name;
  std::optional<std::string> default_raw;
};

struct StructDef {
  std::string name;
  bool is_exception = false;
  std::vector<Field> fields;
};

struct EnumDef {
  std::string name;
  std::vector<std::pair<std::string, int32_t>> values;
};

struct ConstDef {
  std::string name;
  TypeRef type;
  std::string value_raw;
  bool is_string_literal = false;
};

/// One `key = value` from a HintGroup, before validation.
struct RawHint {
  hint::Side side = hint::Side::kShared;
  std::string key;
  std::string value;
  int line = 0;
};

struct FunctionDef {
  std::string name;
  bool oneway = false;
  TypeRef ret;
  std::vector<Field> args;
  std::vector<Field> throws;
  std::vector<RawHint> hints;  // Fig. 7 FunctionHint
};

struct ServiceDef {
  std::string name;
  std::string extends;
  std::vector<RawHint> hints;  // Fig. 7 service-level HintGroups
  std::vector<FunctionDef> functions;
};

struct Program {
  std::string cpp_namespace;  // from `namespace cpp x.y`
  std::vector<std::string> includes;
  std::vector<ConstDef> consts;
  std::vector<EnumDef> enums;
  std::vector<StructDef> structs;
  std::vector<ServiceDef> services;
};

}  // namespace hatrpc::idl
