// The compiler's check/merge pass (paper §4.2): validates every hint
// key=value pair against the hint schema, filters out hints with undefined
// keys or unsupported values (collecting diagnostics), and merges the
// survivors into the hierarchical hint::ServiceHints map that the code
// generator embeds in its output.
#pragma once

#include <string>
#include <vector>

#include "idl/ast.h"

namespace hatrpc::idl {

struct Diagnostic {
  enum class Severity { kWarning, kError };
  Severity severity;
  std::string message;
  int line;
};

struct CheckedService {
  std::string name;
  hint::ServiceHints hints;
};

struct CheckResult {
  std::vector<CheckedService> services;
  std::vector<Diagnostic> diagnostics;

  bool has_errors() const {
    for (const auto& d : diagnostics)
      if (d.severity == Diagnostic::Severity::kError) return true;
    return false;
  }
};

/// Validates and merges hints for every service in the program. In strict
/// mode invalid hints are errors; otherwise they are filtered with a
/// warning (the paper's behaviour).
CheckResult check(const Program& prog, bool strict = false);

}  // namespace hatrpc::idl
