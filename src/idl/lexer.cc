#include "idl/lexer.h"

#include <cctype>

namespace hatrpc::idl {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1, col = 1;

  auto advance = [&](size_t n = 1) {
    for (size_t k = 0; k < n && i < src.size(); ++k) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };

  while (i < src.size()) {
    char c = src[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    // Comments: //, #, /* */.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance();
      continue;
    }
    if (c == '#') {
      while (i < src.size() && src[i] != '\n') advance();
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      int start_line = line, start_col = col;
      advance(2);
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/'))
        advance();
      if (i + 1 >= src.size())
        throw LexError("unterminated block comment", start_line, start_col);
      advance(2);
      continue;
    }
    // String literals (single or double quoted, Thrift-style).
    if (c == '"' || c == '\'') {
      char quote = c;
      int start_line = line, start_col = col;
      advance();
      std::string text;
      while (i < src.size() && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < src.size()) {
          advance();
          switch (src[i]) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            default: text += src[i];
          }
        } else {
          text += src[i];
        }
        advance();
      }
      if (i >= src.size())
        throw LexError("unterminated string literal", start_line, start_col);
      advance();  // closing quote
      out.push_back({Tok::kString, std::move(text), start_line, start_col});
      continue;
    }
    // Numbers, including suffixed forms (128k) and negatives.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      int start_line = line, start_col = col;
      std::string text;
      if (c == '-') {
        text += '-';
        advance();
      }
      bool has_alpha = false;
      bool seen_dot = false;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) ||
              (src[i] == '.' && !seen_dot && i + 1 < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[i + 1]))))) {
        if (src[i] == '.') seen_dot = true;
        has_alpha |=
            std::isalpha(static_cast<unsigned char>(src[i])) != 0;
        text += src[i];
        advance();
      }
      out.push_back({has_alpha ? Tok::kIdent : Tok::kInt, std::move(text),
                     start_line, start_col});
      continue;
    }
    // Identifiers / contextual keywords.
    if (ident_start(c)) {
      int start_line = line, start_col = col;
      std::string text;
      while (i < src.size() && ident_char(src[i])) {
        text += src[i];
        advance();
      }
      out.push_back({Tok::kIdent, std::move(text), start_line, start_col});
      continue;
    }
    // Punctuation.
    if (std::string_view("{}()[]<>,;:=*").find(c) != std::string_view::npos) {
      out.push_back({Tok::kSymbol, std::string(1, c), line, col});
      advance();
      continue;
    }
    throw LexError(std::string("unexpected character '") + c + "'", line,
                   col);
  }
  out.push_back({Tok::kEof, "", line, col});
  return out;
}

}  // namespace hatrpc::idl
