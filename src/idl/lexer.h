// Lexical analysis for the HatRPC IDL (the flex-scanner counterpart of
// paper §4.2). Produces the token stream the recursive-descent parser
// consumes. Handles Thrift comments (//, #, /* */), string literals,
// integers, and suffixed numerics like `128k` used in hint values.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hatrpc::idl {

enum class Tok : uint8_t {
  kIdent,    // identifiers and contextual keywords
  kInt,      // decimal integer literal
  kString,   // quoted string literal (quotes stripped)
  kSymbol,   // single-character punctuation: { } ( ) [ ] < > , ; : = .
  kEof,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;
  int line = 1;
  int col = 1;

  bool is_symbol(char c) const {
    return kind == Tok::kSymbol && text.size() == 1 && text[0] == c;
  }
  bool is_ident(std::string_view s) const {
    return kind == Tok::kIdent && text == s;
  }
};

class LexError : public std::runtime_error {
 public:
  LexError(const std::string& what, int line, int col)
      : std::runtime_error(what + " at line " + std::to_string(line) +
                           ", col " + std::to_string(col)),
        line(line), col(col) {}
  int line;
  int col;
};

/// Tokenizes a whole IDL document; the final token is kEof.
std::vector<Token> lex(std::string_view src);

}  // namespace hatrpc::idl
