#include "idl/parser.h"

#include <charconv>
#include <map>

namespace hatrpc::idl {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : toks_(lex(src)) {}

  Program run() {
    Program prog;
    while (!at_eof()) {
      const Token& t = peek();
      if (t.is_ident("include")) {
        next();
        prog.includes.push_back(expect(Tok::kString, "include path").text);
      } else if (t.is_ident("namespace")) {
        next();
        std::string lang = expect(Tok::kIdent, "namespace language").text;
        std::string ns = expect(Tok::kIdent, "namespace value").text;
        if (lang == "cpp" || lang == "*") prog.cpp_namespace = ns;
      } else if (t.is_ident("const")) {
        prog.consts.push_back(parse_const());
      } else if (t.is_ident("typedef")) {
        next();
        TypeRef ty = parse_type();
        std::string name = expect(Tok::kIdent, "typedef name").text;
        typedefs_[name] = ty;
        eat_list_separator();
      } else if (t.is_ident("enum")) {
        prog.enums.push_back(parse_enum());
      } else if (t.is_ident("struct") || t.is_ident("exception")) {
        prog.structs.push_back(parse_struct());
      } else if (t.is_ident("service")) {
        prog.services.push_back(parse_service());
      } else {
        throw ParseError("expected a definition", t);
      }
    }
    return prog;
  }

 private:
  const Token& peek(size_t k = 0) const {
    return toks_[std::min(pos_ + k, toks_.size() - 1)];
  }
  const Token& next() { return toks_[std::min(pos_++, toks_.size() - 1)]; }
  bool at_eof() const { return peek().kind == Tok::kEof; }

  const Token& expect(Tok kind, const char* what) {
    if (peek().kind != kind)
      throw ParseError(std::string("expected ") + what, peek());
    return next();
  }

  void expect_symbol(char c) {
    if (!peek().is_symbol(c))
      throw ParseError(std::string("expected '") + c + "'", peek());
    next();
  }

  bool accept_symbol(char c) {
    if (peek().is_symbol(c)) {
      next();
      return true;
    }
    return false;
  }

  bool accept_ident(std::string_view s) {
    if (peek().is_ident(s)) {
      next();
      return true;
    }
    return false;
  }

  void eat_list_separator() {
    if (peek().is_symbol(',') || peek().is_symbol(';')) next();
  }

  // --- types ---------------------------------------------------------------

  TypeRef parse_type() {
    const Token& t = expect(Tok::kIdent, "type");
    using K = TypeRef::Kind;
    static const std::map<std::string, K> base{
        {"void", K::kVoid},   {"bool", K::kBool},     {"byte", K::kByte},
        {"i8", K::kByte},     {"i16", K::kI16},       {"i32", K::kI32},
        {"i64", K::kI64},     {"double", K::kDouble}, {"string", K::kString},
        {"binary", K::kBinary}};
    if (auto it = base.find(t.text); it != base.end())
      return TypeRef{it->second, {}, {}};
    if (t.text == "list" || t.text == "set") {
      TypeRef ty{t.text == "list" ? K::kList : K::kSet, {}, {}};
      expect_symbol('<');
      ty.args.push_back(parse_type());
      expect_symbol('>');
      return ty;
    }
    if (t.text == "map") {
      TypeRef ty{K::kMap, {}, {}};
      expect_symbol('<');
      ty.args.push_back(parse_type());
      expect_symbol(',');
      ty.args.push_back(parse_type());
      expect_symbol('>');
      return ty;
    }
    // typedef resolution, then named type
    if (auto it = typedefs_.find(t.text); it != typedefs_.end())
      return it->second;
    return TypeRef{K::kNamed, t.text, {}};
  }

  // --- definitions -----------------------------------------------------------

  ConstDef parse_const() {
    next();  // 'const'
    ConstDef c;
    c.type = parse_type();
    c.name = expect(Tok::kIdent, "const name").text;
    expect_symbol('=');
    c.is_string_literal = peek().kind == Tok::kString;
    c.value_raw = next().text;  // scalar literal only
    eat_list_separator();
    return c;
  }

  EnumDef parse_enum() {
    next();  // 'enum'
    EnumDef e;
    e.name = expect(Tok::kIdent, "enum name").text;
    expect_symbol('{');
    int32_t auto_value = 0;
    while (!accept_symbol('}')) {
      std::string name = expect(Tok::kIdent, "enum value name").text;
      int32_t value = auto_value;
      if (accept_symbol('=')) {
        const Token& v = expect(Tok::kInt, "enum value");
        std::from_chars(v.text.data(), v.text.data() + v.text.size(), value);
      }
      auto_value = value + 1;
      e.values.emplace_back(std::move(name), value);
      eat_list_separator();
    }
    return e;
  }

  StructDef parse_struct() {
    StructDef s;
    s.is_exception = peek().is_ident("exception");
    next();  // 'struct' / 'exception'
    s.name = expect(Tok::kIdent, "struct name").text;
    expect_symbol('{');
    int16_t auto_id = 1;
    while (!accept_symbol('}')) {
      s.fields.push_back(parse_field(auto_id));
      auto_id = static_cast<int16_t>(s.fields.back().id + 1);
    }
    return s;
  }

  Field parse_field(int16_t auto_id) {
    Field f;
    f.id = auto_id;
    if (peek().kind == Tok::kInt) {
      const Token& idt = next();
      int id = 0;
      std::from_chars(idt.text.data(), idt.text.data() + idt.text.size(), id);
      f.id = static_cast<int16_t>(id);
      expect_symbol(':');
    }
    if (accept_ident("optional")) f.optional = true;
    else accept_ident("required");
    f.type = parse_type();
    f.name = expect(Tok::kIdent, "field name").text;
    if (accept_symbol('=')) {
      // Default values may span tokens (e.g. `Consistency::EVENTUAL`);
      // join everything up to the next separator / scope close.
      std::string raw;
      while (!at_eof() && !peek().is_symbol(',') && !peek().is_symbol(';') &&
             !peek().is_symbol('}') && !peek().is_symbol(')')) {
        raw += next().text;
      }
      f.default_raw = raw;
    }
    eat_list_separator();
    return f;
  }

  // --- hints (Fig. 7) ----------------------------------------------------------

  bool at_hint_group() const {
    return (peek().is_ident("hint") || peek().is_ident("s_hint") ||
            peek().is_ident("c_hint")) &&
           peek(1).is_symbol(':');
  }

  void parse_hint_group(std::vector<RawHint>& out) {
    const Token& kw = next();
    hint::Side side = hint::Side::kShared;
    if (kw.text == "s_hint") side = hint::Side::kServer;
    else if (kw.text == "c_hint") side = hint::Side::kClient;
    expect_symbol(':');
    // HintList := Hint (',' Hint)*  terminated by ';'
    while (true) {
      RawHint h;
      h.side = side;
      h.line = peek().line;
      h.key = expect(Tok::kIdent, "hint key").text;
      expect_symbol('=');
      const Token& v = peek();
      if (v.kind != Tok::kIdent && v.kind != Tok::kInt &&
          v.kind != Tok::kString)
        throw ParseError("expected hint value", v);
      h.value = next().text;
      out.push_back(std::move(h));
      if (accept_symbol(',')) continue;
      expect_symbol(';');
      break;
    }
  }

  // --- services -------------------------------------------------------------

  ServiceDef parse_service() {
    next();  // 'service'
    ServiceDef s;
    s.name = expect(Tok::kIdent, "service name").text;
    if (accept_ident("extends"))
      s.extends = expect(Tok::kIdent, "base service").text;
    expect_symbol('{');
    while (at_hint_group()) parse_hint_group(s.hints);
    while (!accept_symbol('}')) s.functions.push_back(parse_function());
    return s;
  }

  FunctionDef parse_function() {
    FunctionDef f;
    if (accept_ident("oneway")) f.oneway = true;
    f.ret = parse_type();
    f.name = expect(Tok::kIdent, "function name").text;
    expect_symbol('(');
    int16_t auto_id = 1;
    while (!accept_symbol(')')) {
      f.args.push_back(parse_field(auto_id));
      auto_id = static_cast<int16_t>(f.args.back().id + 1);
    }
    if (accept_ident("throws")) {
      expect_symbol('(');
      int16_t throw_id = 1;
      while (!accept_symbol(')')) {
        f.throws.push_back(parse_field(throw_id));
        throw_id = static_cast<int16_t>(f.throws.back().id + 1);
      }
    }
    eat_list_separator();
    // FunctionHint := '[' HintGroup* ']'
    if (accept_symbol('[')) {
      while (at_hint_group()) parse_hint_group(f.hints);
      expect_symbol(']');
      eat_list_separator();
    }
    return f;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  std::map<std::string, TypeRef> typedefs_;
};

}  // namespace

Program parse(std::string_view source) { return Parser(source).run(); }

}  // namespace hatrpc::idl
