#include "idl/codegen.h"

#include <set>
#include <sstream>

namespace hatrpc::idl {

namespace {

class Writer {
 public:
  Writer& line(const std::string& s = "") {
    for (int i = 0; i < indent_ && !s.empty(); ++i) out_ << "  ";
    out_ << s << "\n";
    return *this;
  }
  void open(const std::string& s) {
    line(s);
    ++indent_;
  }
  void close(const std::string& s = "}") {
    --indent_;
    line(s);
  }
  std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
  int indent_ = 0;
};

class Generator {
 public:
  Generator(const Program& prog, const CheckResult& checked,
            const CodegenOptions& opts)
      : prog_(prog), checked_(checked), opts_(opts) {
    for (const auto& e : prog.enums) enums_.insert(e.name);
    for (const auto& s : prog.structs) structs_.insert(s.name);
  }

  std::string run() {
    w_.line("// " + opts_.guard_comment);
    w_.line("#pragma once");
    w_.line();
    w_.line("#include <map>");
    w_.line("#include <set>");
    w_.line("#include <string>");
    w_.line("#include <vector>");
    w_.line();
    w_.line("#include \"core/runtime.h\"");
    w_.line("#include \"hint/hint.h\"");
    w_.line();
    std::string ns = prog_.cpp_namespace;
    for (auto& c : ns)
      if (c == '.') c = ':';
    // "a.b" became "a:b"; expand single colons to "::".
    std::string ns2;
    for (size_t i = 0; i < ns.size(); ++i) {
      ns2 += ns[i];
      if (ns[i] == ':' && (i + 1 >= ns.size() || ns[i + 1] != ':'))
        ns2 += ':';
    }
    if (!ns2.empty()) w_.open("namespace " + ns2 + " {");
    w_.line();
    for (const auto& c : prog_.consts) emit_const(c);
    if (!prog_.consts.empty()) w_.line();
    for (const auto& e : prog_.enums) emit_enum(e);
    for (const auto& s : prog_.structs) emit_struct(s);
    for (const auto& s : prog_.services) emit_service(s);
    if (!ns2.empty()) w_.close("}  // namespace " + ns2);
    return w_.str();
  }

 private:
  // --- type helpers ----------------------------------------------------------

  std::string cpp_type(const TypeRef& t) const {
    using K = TypeRef::Kind;
    switch (t.kind) {
      case K::kVoid: return "void";
      case K::kBool: return "bool";
      case K::kByte: return "int8_t";
      case K::kI16: return "int16_t";
      case K::kI32: return "int32_t";
      case K::kI64: return "int64_t";
      case K::kDouble: return "double";
      case K::kString:
      case K::kBinary: return "std::string";
      case K::kNamed: return t.name;
      case K::kList: return "std::vector<" + cpp_type(t.args[0]) + ">";
      case K::kSet: return "std::set<" + cpp_type(t.args[0]) + ">";
      case K::kMap:
        return "std::map<" + cpp_type(t.args[0]) + ", " +
               cpp_type(t.args[1]) + ">";
    }
    return "void";
  }

  std::string arg_type(const TypeRef& t) const {
    std::string ty = cpp_type(t);
    using K = TypeRef::Kind;
    bool by_value = t.kind == K::kBool || t.kind == K::kByte ||
                    t.kind == K::kI16 || t.kind == K::kI32 ||
                    t.kind == K::kI64 || t.kind == K::kDouble ||
                    (t.kind == K::kNamed && enums_.count(t.name));
    return by_value ? ty : "const " + ty + "&";
  }

  std::string ttype_of(const TypeRef& t) const {
    using K = TypeRef::Kind;
    switch (t.kind) {
      case K::kBool: return "kBool";
      case K::kByte: return "kByte";
      case K::kI16: return "kI16";
      case K::kI32: return "kI32";
      case K::kI64: return "kI64";
      case K::kDouble: return "kDouble";
      case K::kString:
      case K::kBinary: return "kString";
      case K::kNamed: return enums_.count(t.name) ? "kI32" : "kStruct";
      case K::kList: return "kList";
      case K::kSet: return "kSet";
      case K::kMap: return "kMap";
      case K::kVoid: break;
    }
    return "kStop";
  }

  std::string tt(const std::string& name) const {
    return "hatrpc::thrift::TType::" + name;
  }

  // --- value (de)serialization ---------------------------------------------

  void emit_write_value(const TypeRef& t, const std::string& expr) {
    using K = TypeRef::Kind;
    switch (t.kind) {
      case K::kBool: w_.line("_p.writeBool(" + expr + ");"); return;
      case K::kByte: w_.line("_p.writeByte(" + expr + ");"); return;
      case K::kI16: w_.line("_p.writeI16(" + expr + ");"); return;
      case K::kI32: w_.line("_p.writeI32(" + expr + ");"); return;
      case K::kI64: w_.line("_p.writeI64(" + expr + ");"); return;
      case K::kDouble: w_.line("_p.writeDouble(" + expr + ");"); return;
      case K::kString:
      case K::kBinary: w_.line("_p.writeString(" + expr + ");"); return;
      case K::kNamed:
        if (enums_.count(t.name))
          w_.line("_p.writeI32(static_cast<int32_t>(" + expr + "));");
        else
          w_.line(expr + ".write(_p);");
        return;
      case K::kList:
      case K::kSet: {
        std::string begin = t.kind == K::kList ? "writeListBegin"
                                               : "writeSetBegin";
        std::string end = t.kind == K::kList ? "writeListEnd" : "writeSetEnd";
        w_.line("_p." + begin + "(" + tt(ttype_of(t.args[0])) +
                ", static_cast<uint32_t>(" + expr + ".size()));");
        std::string v = fresh("_e");
        w_.open("for (const auto& " + v + " : " + expr + ") {");
        emit_write_value(t.args[0], v);
        w_.close();
        w_.line("_p." + end + "();");
        return;
      }
      case K::kMap: {
        w_.line("_p.writeMapBegin(" + tt(ttype_of(t.args[0])) + ", " +
                tt(ttype_of(t.args[1])) + ", static_cast<uint32_t>(" + expr +
                ".size()));");
        std::string v = fresh("_kv");
        w_.open("for (const auto& " + v + " : " + expr + ") {");
        emit_write_value(t.args[0], v + ".first");
        emit_write_value(t.args[1], v + ".second");
        w_.close();
        w_.line("_p.writeMapEnd();");
        return;
      }
      case K::kVoid: return;
    }
  }

  void emit_read_value(const TypeRef& t, const std::string& expr) {
    using K = TypeRef::Kind;
    switch (t.kind) {
      case K::kBool: w_.line(expr + " = _p.readBool();"); return;
      case K::kByte: w_.line(expr + " = _p.readByte();"); return;
      case K::kI16: w_.line(expr + " = _p.readI16();"); return;
      case K::kI32: w_.line(expr + " = _p.readI32();"); return;
      case K::kI64: w_.line(expr + " = _p.readI64();"); return;
      case K::kDouble: w_.line(expr + " = _p.readDouble();"); return;
      case K::kString:
      case K::kBinary: w_.line(expr + " = _p.readString();"); return;
      case K::kNamed:
        if (enums_.count(t.name))
          w_.line(expr + " = static_cast<" + t.name + ">(_p.readI32());");
        else
          w_.line(expr + ".read(_p);");
        return;
      case K::kList: {
        std::string h = fresh("_lh"), i = fresh("_i"), v = fresh("_v");
        w_.line("auto " + h + " = _p.readListBegin();");
        w_.line(expr + ".clear();");
        w_.line(expr + ".reserve(" + h + ".size);");
        w_.open("for (uint32_t " + i + " = 0; " + i + " < " + h + ".size; ++" +
                i + ") {");
        w_.line(cpp_type(t.args[0]) + " " + v + "{};");
        emit_read_value(t.args[0], v);
        w_.line(expr + ".push_back(std::move(" + v + "));");
        w_.close();
        w_.line("_p.readListEnd();");
        return;
      }
      case K::kSet: {
        std::string h = fresh("_sh"), i = fresh("_i"), v = fresh("_v");
        w_.line("auto " + h + " = _p.readSetBegin();");
        w_.line(expr + ".clear();");
        w_.open("for (uint32_t " + i + " = 0; " + i + " < " + h + ".size; ++" +
                i + ") {");
        w_.line(cpp_type(t.args[0]) + " " + v + "{};");
        emit_read_value(t.args[0], v);
        w_.line(expr + ".insert(std::move(" + v + "));");
        w_.close();
        w_.line("_p.readSetEnd();");
        return;
      }
      case K::kMap: {
        std::string h = fresh("_mh"), i = fresh("_i"), k = fresh("_k"),
                    v = fresh("_v");
        w_.line("auto " + h + " = _p.readMapBegin();");
        w_.line(expr + ".clear();");
        w_.open("for (uint32_t " + i + " = 0; " + i + " < " + h + ".size; ++" +
                i + ") {");
        w_.line(cpp_type(t.args[0]) + " " + k + "{};");
        emit_read_value(t.args[0], k);
        w_.line(cpp_type(t.args[1]) + " " + v + "{};");
        emit_read_value(t.args[1], v);
        w_.line(expr + ".emplace(std::move(" + k + "), std::move(" + v +
                "));");
        w_.close();
        w_.line("_p.readMapEnd();");
        return;
      }
      case K::kVoid: return;
    }
  }

  void emit_struct_fields_write(const std::vector<Field>& fields,
                                const std::string& name) {
    w_.line("_p.writeStructBegin(\"" + name + "\");");
    for (const Field& f : fields) {
      w_.line("_p.writeFieldBegin(" + tt(ttype_of(f.type)) + ", " +
              std::to_string(f.id) + ");");
      emit_write_value(f.type, f.name);
      w_.line("_p.writeFieldEnd();");
    }
    w_.line("_p.writeFieldStop();");
    w_.line("_p.writeStructEnd();");
  }

  // --- top-level emitters -----------------------------------------------------

  void emit_const(const ConstDef& c) {
    using K = TypeRef::Kind;
    if (c.is_string_literal || c.type.kind == K::kString) {
      w_.line("inline const std::string " + c.name + " = \"" +
              c.value_raw + "\";");
    } else if (c.type.kind == K::kBool) {
      w_.line("inline constexpr bool " + c.name + " = " + c.value_raw + ";");
    } else if (c.type.kind == K::kDouble) {
      w_.line("inline constexpr double " + c.name + " = " + c.value_raw +
              ";");
    } else {
      w_.line("inline constexpr " + cpp_type(c.type) + " " + c.name + " = " +
              c.value_raw + ";");
    }
  }

  void emit_enum(const EnumDef& e) {
    w_.open("enum class " + e.name + " : int32_t {");
    for (const auto& [name, value] : e.values)
      w_.line(name + " = " + std::to_string(value) + ",");
    w_.close("};");
    w_.line();
  }

  void emit_field_read_switch(const std::vector<Field>& fields) {
    w_.line("_p.readStructBegin();");
    w_.open("while (true) {");
    w_.line("auto _f = _p.readFieldBegin();");
    w_.line("if (_f.type == hatrpc::thrift::TType::kStop) break;");
    w_.line("bool _known = false;");
    for (const Field& f : fields) {
      w_.open("if (!_known && _f.id == " + std::to_string(f.id) +
              " && _f.type == " + tt(ttype_of(f.type)) + ") {");
      emit_read_value(f.type, f.name);
      w_.line("_known = true;");
      w_.close();
    }
    w_.line("if (!_known) _p.skip(_f.type);");
    w_.line("_p.readFieldEnd();");
    w_.close();
    w_.line("_p.readStructEnd();");
  }

  void emit_struct(const StructDef& s) {
    if (s.is_exception)
      w_.line("// exception type — throwable from handlers, rethrown at "
              "clients");
    w_.open("struct " + s.name + " {");
    for (const Field& f : s.fields) {
      std::string def = f.default_raw ? " = " + *f.default_raw : "{}";
      w_.line(cpp_type(f.type) + " " + f.name + def + ";");
    }
    w_.line();
    w_.line("bool operator==(const " + s.name + "&) const = default;");
    w_.line();
    w_.open("void write(hatrpc::thrift::TProtocol& _p) const {");
    emit_struct_fields_write(s.fields, s.name);
    w_.close();
    w_.line();
    w_.open("void read(hatrpc::thrift::TProtocol& _p) {");
    emit_field_read_switch(s.fields);
    w_.close();
    w_.close("};");
    w_.line();
  }

  void emit_service(const ServiceDef& s) {
    emit_hints(s);
    emit_client(s);
    emit_handler(s);
  }

  const hint::ServiceHints* checked_hints(const std::string& service) const {
    for (const auto& cs : checked_.services)
      if (cs.name == service) return &cs.hints;
    return nullptr;
  }

  void emit_hints(const ServiceDef& s) {
    w_.line("/// The hierarchical hint map of service " + s.name +
            " (§4.2: emitted with the generated skeletons).");
    w_.open("inline hatrpc::hint::ServiceHints " + s.name + "_hints() {");
    w_.line("using hatrpc::hint::Key;");
    w_.line("using hatrpc::hint::Side;");
    w_.line("using hatrpc::hint::parse_key;");
    w_.line("using hatrpc::hint::parse_value;");
    w_.line("hatrpc::hint::ServiceHints _h;");
    auto emit_group = [&](const hint::HintGroup& g, const std::string& dest) {
      for (auto side : {hint::Side::kShared, hint::Side::kServer,
                        hint::Side::kClient}) {
        for (const auto& [key, value] : g.side(side)) {
          std::string side_name =
              side == hint::Side::kShared  ? "kShared"
              : side == hint::Side::kServer ? "kServer"
                                            : "kClient";
          w_.line(dest + ".add(Side::" + side_name + ", Key::" +
                  key_enum(key) + ", parse_value(Key::" + key_enum(key) +
                  ", \"" + value.raw + "\"));");
        }
      }
    };
    if (const hint::ServiceHints* h = checked_hints(s.name)) {
      emit_group(h->service(), "_h.service()");
      for (const auto& [fn, group] : h->functions())
        emit_group(group, "_h.function(\"" + fn + "\")");
    }
    w_.line("return _h;");
    w_.close();
    w_.line();
  }

  static std::string key_enum(hint::Key k) {
    switch (k) {
      case hint::Key::kPerfGoal: return "kPerfGoal";
      case hint::Key::kConcurrency: return "kConcurrency";
      case hint::Key::kPayloadSize: return "kPayloadSize";
      case hint::Key::kNumaBinding: return "kNumaBinding";
      case hint::Key::kTransport: return "kTransport";
      case hint::Key::kPolling: return "kPolling";
      case hint::Key::kPriority: return "kPriority";
      case hint::Key::kShardMap: return "kShardMap";
    }
    return "?";
  }

  std::string args_decl(const FunctionDef& f) const {
    std::string out;
    for (size_t i = 0; i < f.args.size(); ++i) {
      if (i) out += ", ";
      out += arg_type(f.args[i].type) + " " + f.args[i].name;
    }
    return out;
  }

  void emit_client(const ServiceDef& s) {
    w_.line("/// Client stub for service " + s.name + ".");
    w_.open("class " + s.name + "Client {");
    w_.line(" public:");
    w_.line("explicit " + s.name +
            "Client(hatrpc::core::HatCaller& _caller) : caller_(_caller) {}");
    w_.line();
    for (const FunctionDef& f : s.functions) {
      std::string ret = f.oneway ? "void" : cpp_type(f.ret);
      w_.open("hatrpc::sim::Task<" + ret + "> " + f.name + "(" +
              args_decl(f) + ") {");
      w_.line("hatrpc::thrift::TMemoryBuffer _buf;");
      w_.line("hatrpc::thrift::TBinaryProtocol _p(_buf);");
      emit_struct_fields_write(f.args, f.name + "_args");
      w_.line("hatrpc::core::Buffer _reply = co_await caller_.call(\"" +
              f.name + "\", _buf.view());");
      if (f.oneway) {
        w_.line("(void)_reply;");
        w_.line("co_return;");
        w_.close();
        w_.line();
        continue;
      }
      w_.line("hatrpc::thrift::TMemoryBuffer _rb = "
              "hatrpc::thrift::TMemoryBuffer::wrap(_reply);");
      w_.line("hatrpc::thrift::TBinaryProtocol _rp(_rb);");
      // Result struct: field 0 = success, declared throws by their ids.
      bool has_ret = f.ret.kind != TypeRef::Kind::kVoid;
      if (has_ret) w_.line(cpp_type(f.ret) + " _success{};");
      for (const Field& t : f.throws)
        w_.line(cpp_type(t.type) + " " + t.name + "{}; bool _has_" + t.name +
                " = false;");
      w_.line("{");
      w_.line("auto& _p = _rp;");
      w_.line("_p.readStructBegin();");
      w_.open("while (true) {");
      w_.line("auto _f = _p.readFieldBegin();");
      w_.line("if (_f.type == hatrpc::thrift::TType::kStop) break;");
      w_.line("bool _known = false;");
      if (has_ret) {
        w_.open("if (_f.id == 0 && _f.type == " + tt(ttype_of(f.ret)) +
                ") {");
        emit_read_value(f.ret, "_success");
        w_.line("_known = true;");
        w_.close();
      }
      for (const Field& t : f.throws) {
        w_.open("if (!_known && _f.id == " + std::to_string(t.id) +
                " && _f.type == " + tt(ttype_of(t.type)) + ") {");
        emit_read_value(t.type, t.name);
        w_.line("_has_" + t.name + " = true;");
        w_.line("_known = true;");
        w_.close();
      }
      w_.line("if (!_known) _p.skip(_f.type);");
      w_.close();
      w_.line("_p.readStructEnd();");
      w_.line("}");
      for (const Field& t : f.throws)
        w_.line("if (_has_" + t.name + ") throw " + t.name + ";");
      if (has_ret) w_.line("co_return _success;");
      else w_.line("co_return;");
      w_.close();
      w_.line();
    }
    w_.line(" private:");
    w_.line("hatrpc::core::HatCaller& caller_;");
    w_.close("};");
    w_.line();
  }

  void emit_handler(const ServiceDef& s) {
    w_.line("/// Abstract handler interface for service " + s.name + ".");
    w_.open("class " + s.name + "If {");
    w_.line(" public:");
    w_.line("virtual ~" + s.name + "If() = default;");
    for (const FunctionDef& f : s.functions) {
      std::string ret = f.oneway ? "void" : cpp_type(f.ret);
      w_.line("virtual hatrpc::sim::Task<" + ret + "> " + f.name + "(" +
              args_decl(f) + ") = 0;");
    }
    w_.close("};");
    w_.line();
    w_.line("/// Binds a handler into a dispatcher (server skeleton).");
    w_.open("inline void register_" + s.name +
            "(hatrpc::core::HatDispatcher& _d, " + s.name + "If& _h) {");
    for (const FunctionDef& f : s.functions) {
      w_.open("_d.register_method(\"" + f.name +
              "\", [&_h](hatrpc::core::View _in) -> "
              "hatrpc::sim::Task<hatrpc::core::Buffer> {");
      w_.line("hatrpc::thrift::TMemoryBuffer _ab = "
              "hatrpc::thrift::TMemoryBuffer::wrap(_in);");
      w_.line("hatrpc::thrift::TBinaryProtocol _ap(_ab);");
      for (const Field& a : f.args) w_.line(cpp_type(a.type) + " " + a.name + "{};");
      w_.line("{");
      w_.line("auto& _p = _ap;");
      w_.line("_p.readStructBegin();");
      w_.open("while (true) {");
      w_.line("auto _f = _p.readFieldBegin();");
      w_.line("if (_f.type == hatrpc::thrift::TType::kStop) break;");
      w_.line("bool _known = false;");
      for (const Field& a : f.args) {
        w_.open("if (!_known && _f.id == " + std::to_string(a.id) +
                " && _f.type == " + tt(ttype_of(a.type)) + ") {");
        emit_read_value(a.type, a.name);
        w_.line("_known = true;");
        w_.close();
      }
      w_.line("if (!_known) _p.skip(_f.type);");
      w_.close();
      w_.line("_p.readStructEnd();");
      w_.line("}");
      w_.line("hatrpc::thrift::TMemoryBuffer _rb;");
      w_.line("hatrpc::thrift::TBinaryProtocol _rp(_rb);");
      std::string call_args;
      for (size_t i = 0; i < f.args.size(); ++i) {
        if (i) call_args += ", ";
        call_args += "std::move(" + f.args[i].name + ")";
      }
      bool has_ret = !f.oneway && f.ret.kind != TypeRef::Kind::kVoid;
      w_.line("_rp.writeStructBegin(\"" + f.name + "_result\");");
      bool has_throws = !f.throws.empty();
      if (has_throws) w_.open("try {");
      else w_.open("{");
      if (has_ret) {
        w_.line(cpp_type(f.ret) + " _ret = co_await _h." + f.name + "(" +
                call_args + ");");
        w_.line("_rp.writeFieldBegin(" + tt(ttype_of(f.ret)) + ", 0);");
        {
          // emit write of _ret via a local alias named _p
          w_.line("{");
          w_.line("auto& _p = _rp;");
          emit_write_value(f.ret, "_ret");
          w_.line("}");
        }
        w_.line("_rp.writeFieldEnd();");
      } else {
        w_.line("co_await _h." + f.name + "(" + call_args + ");");
      }
      for (const Field& t : f.throws) {
        w_.close("} catch (const " + cpp_type(t.type) + "& _ex) {");
        ++dummy_;  // keep fresh() names unique across branches
        w_.open("");
        w_.line("_rp.writeFieldBegin(" + tt(ttype_of(t.type)) + ", " +
                std::to_string(t.id) + ");");
        w_.line("{");
        w_.line("auto& _p = _rp;");
        emit_write_value(t.type, "_ex");
        w_.line("}");
        w_.line("_rp.writeFieldEnd();");
      }
      w_.close("}");
      w_.line("_rp.writeFieldStop();");
      w_.line("_rp.writeStructEnd();");
      w_.line("co_return _rb.take();");
      w_.close("});");
    }
    w_.close("}");
    w_.line();
  }

  std::string fresh(const std::string& base) {
    return base + std::to_string(dummy_++);
  }

  const Program& prog_;
  const CheckResult& checked_;
  CodegenOptions opts_;
  Writer w_;
  std::set<std::string> enums_;
  std::set<std::string> structs_;
  int dummy_ = 0;
};

}  // namespace

std::string generate_cpp(const Program& prog, const CheckResult& checked,
                         const CodegenOptions& opts) {
  return Generator(prog, checked, opts).run();
}

}  // namespace hatrpc::idl
