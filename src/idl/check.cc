#include "idl/check.h"

namespace hatrpc::idl {

namespace {

void check_hints(const std::vector<RawHint>& raw, hint::HintGroup& into,
                 const std::string& scope, bool strict, CheckResult& result) {
  for (const RawHint& rh : raw) {
    auto fail = [&](const std::string& why) {
      result.diagnostics.push_back(
          {strict ? Diagnostic::Severity::kError
                  : Diagnostic::Severity::kWarning,
           scope + ": dropping hint '" + rh.key + "=" + rh.value + "': " +
               why,
           rh.line});
    };
    auto key = hint::parse_key(rh.key);
    if (!key) {
      fail("unknown hint key");
      continue;
    }
    try {
      hint::Value v = hint::parse_value(*key, rh.value);
      into.add(rh.side, *key, std::move(v));
    } catch (const hint::HintError& e) {
      fail(e.what());
    }
  }
}

}  // namespace

CheckResult check(const Program& prog, bool strict) {
  CheckResult result;
  for (const ServiceDef& svc : prog.services) {
    CheckedService cs;
    cs.name = svc.name;
    check_hints(svc.hints, cs.hints.service(), "service " + svc.name, strict,
                result);
    for (const FunctionDef& fn : svc.functions) {
      check_hints(fn.hints, cs.hints.function(fn.name),
                  svc.name + "." + fn.name, strict, result);
    }
    result.services.push_back(std::move(cs));
  }
  return result;
}

}  // namespace hatrpc::idl
