// hatrpc-gen: the HatRPC IDL compiler CLI.
//
//   hatrpc-gen <input.hatrpc> -o <output.h> [--strict] [--dump-hints]
//
// Parses the IDL (Fig. 7 grammar), checks/merges hints (warnings for
// filtered hints go to stderr), and emits the C++ header with client stubs,
// server skeletons, and the hierarchical hint map.
#include <fstream>
#include <iostream>
#include <sstream>

#include "hint/selection.h"
#include "idl/codegen.h"
#include "idl/parser.h"

namespace {

int usage() {
  std::cerr << "usage: hatrpc-gen <input.hatrpc> -o <output.h> "
               "[--strict] [--dump-hints]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, output;
  bool strict = false, dump_hints = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) output = argv[++i];
    else if (arg == "--strict") strict = true;
    else if (arg == "--dump-hints") dump_hints = true;
    else if (!arg.empty() && arg[0] == '-') return usage();
    else input = arg;
  }
  if (input.empty()) return usage();

  std::ifstream in(input);
  if (!in) {
    std::cerr << "hatrpc-gen: cannot open " << input << "\n";
    return 1;
  }
  std::ostringstream src;
  src << in.rdbuf();

  try {
    hatrpc::idl::Program prog = hatrpc::idl::parse(src.str());
    hatrpc::idl::CheckResult checked = hatrpc::idl::check(prog, strict);
    for (const auto& d : checked.diagnostics) {
      std::cerr << input << ":" << d.line << ": "
                << (d.severity == hatrpc::idl::Diagnostic::Severity::kError
                        ? "error: "
                        : "warning: ")
                << d.message << "\n";
    }
    if (checked.has_errors()) return 1;

    if (dump_hints) {
      for (const auto& cs : checked.services) {
        std::cout << "service " << cs.name << ":\n";
        for (const auto& [fn, group] : cs.hints.functions()) {
          hatrpc::hint::Plan plan = hatrpc::hint::select_plan(
              cs.hints, fn, hatrpc::hint::SelectionParams{});
          std::cout << "  " << fn << " -> "
                    << hatrpc::proto::to_string(plan.protocol) << " (client "
                    << (plan.client_poll == hatrpc::sim::PollMode::kBusy
                            ? "busy"
                            : "event")
                    << ", server "
                    << (plan.server_poll == hatrpc::sim::PollMode::kBusy
                            ? "busy"
                            : "event")
                    << (plan.transport == hatrpc::hint::Transport::kTcp
                            ? ", tcp"
                            : "")
                    << ")\n";
        }
      }
    }

    std::string code = hatrpc::idl::generate_cpp(prog, checked);
    if (output.empty()) {
      std::cout << code;
    } else {
      std::ofstream out(output);
      if (!out) {
        std::cerr << "hatrpc-gen: cannot write " << output << "\n";
        return 1;
      }
      out << code;
    }
  } catch (const std::exception& e) {
    std::cerr << "hatrpc-gen: " << input << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}
