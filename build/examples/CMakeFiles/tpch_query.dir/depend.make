# Empty dependencies file for tpch_query.
# This may be replaced when dependencies are built.
