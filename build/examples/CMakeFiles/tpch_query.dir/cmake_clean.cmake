file(REMOVE_RECURSE
  "CMakeFiles/tpch_query.dir/tpch_query.cpp.o"
  "CMakeFiles/tpch_query.dir/tpch_query.cpp.o.d"
  "tpch_query"
  "tpch_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
