# Empty dependencies file for hybrid_transport.
# This may be replaced when dependencies are built.
