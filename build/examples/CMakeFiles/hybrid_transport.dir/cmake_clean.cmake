file(REMOVE_RECURSE
  "CMakeFiles/hybrid_transport.dir/hybrid_transport.cpp.o"
  "CMakeFiles/hybrid_transport.dir/hybrid_transport.cpp.o.d"
  "hybrid_transport"
  "hybrid_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
