# Empty dependencies file for kvstore.
# This may be replaced when dependencies are built.
