file(REMOVE_RECURSE
  "CMakeFiles/kvstore.dir/kvstore.cpp.o"
  "CMakeFiles/kvstore.dir/kvstore.cpp.o.d"
  "kvstore"
  "kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
