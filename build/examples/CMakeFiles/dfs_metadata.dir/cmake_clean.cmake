file(REMOVE_RECURSE
  "CMakeFiles/dfs_metadata.dir/dfs_metadata.cpp.o"
  "CMakeFiles/dfs_metadata.dir/dfs_metadata.cpp.o.d"
  "dfs_metadata"
  "dfs_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
