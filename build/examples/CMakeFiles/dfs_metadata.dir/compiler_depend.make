# Empty compiler generated dependencies file for dfs_metadata.
# This may be replaced when dependencies are built.
