# Empty dependencies file for hatrpc_core.
# This may be replaced when dependencies are built.
