file(REMOVE_RECURSE
  "CMakeFiles/hatrpc_core.dir/engine.cc.o"
  "CMakeFiles/hatrpc_core.dir/engine.cc.o.d"
  "libhatrpc_core.a"
  "libhatrpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hatrpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
