file(REMOVE_RECURSE
  "libhatrpc_core.a"
)
