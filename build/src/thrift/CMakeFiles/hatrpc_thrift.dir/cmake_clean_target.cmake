file(REMOVE_RECURSE
  "libhatrpc_thrift.a"
)
