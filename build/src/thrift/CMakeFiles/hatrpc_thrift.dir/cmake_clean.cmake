file(REMOVE_RECURSE
  "CMakeFiles/hatrpc_thrift.dir/json_protocol.cc.o"
  "CMakeFiles/hatrpc_thrift.dir/json_protocol.cc.o.d"
  "CMakeFiles/hatrpc_thrift.dir/protocol.cc.o"
  "CMakeFiles/hatrpc_thrift.dir/protocol.cc.o.d"
  "CMakeFiles/hatrpc_thrift.dir/socket.cc.o"
  "CMakeFiles/hatrpc_thrift.dir/socket.cc.o.d"
  "libhatrpc_thrift.a"
  "libhatrpc_thrift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hatrpc_thrift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
