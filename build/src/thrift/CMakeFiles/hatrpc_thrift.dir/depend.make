# Empty dependencies file for hatrpc_thrift.
# This may be replaced when dependencies are built.
