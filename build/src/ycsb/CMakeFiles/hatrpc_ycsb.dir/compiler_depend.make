# Empty compiler generated dependencies file for hatrpc_ycsb.
# This may be replaced when dependencies are built.
