file(REMOVE_RECURSE
  "CMakeFiles/hatrpc_ycsb.dir/ycsb.cc.o"
  "CMakeFiles/hatrpc_ycsb.dir/ycsb.cc.o.d"
  "libhatrpc_ycsb.a"
  "libhatrpc_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hatrpc_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
