file(REMOVE_RECURSE
  "libhatrpc_ycsb.a"
)
