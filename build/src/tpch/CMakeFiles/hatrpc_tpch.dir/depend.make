# Empty dependencies file for hatrpc_tpch.
# This may be replaced when dependencies are built.
