file(REMOVE_RECURSE
  "CMakeFiles/hatrpc_tpch.dir/cluster.cc.o"
  "CMakeFiles/hatrpc_tpch.dir/cluster.cc.o.d"
  "CMakeFiles/hatrpc_tpch.dir/dbgen.cc.o"
  "CMakeFiles/hatrpc_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/hatrpc_tpch.dir/queries.cc.o"
  "CMakeFiles/hatrpc_tpch.dir/queries.cc.o.d"
  "CMakeFiles/hatrpc_tpch.dir/rows.cc.o"
  "CMakeFiles/hatrpc_tpch.dir/rows.cc.o.d"
  "libhatrpc_tpch.a"
  "libhatrpc_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hatrpc_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
