file(REMOVE_RECURSE
  "libhatrpc_tpch.a"
)
