file(REMOVE_RECURSE
  "libhatrpc_verbs.a"
)
