# Empty dependencies file for hatrpc_verbs.
# This may be replaced when dependencies are built.
