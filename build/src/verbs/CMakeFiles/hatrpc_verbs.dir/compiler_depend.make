# Empty compiler generated dependencies file for hatrpc_verbs.
# This may be replaced when dependencies are built.
