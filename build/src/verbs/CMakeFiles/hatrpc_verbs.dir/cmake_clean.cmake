file(REMOVE_RECURSE
  "CMakeFiles/hatrpc_verbs.dir/fabric.cc.o"
  "CMakeFiles/hatrpc_verbs.dir/fabric.cc.o.d"
  "libhatrpc_verbs.a"
  "libhatrpc_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hatrpc_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
