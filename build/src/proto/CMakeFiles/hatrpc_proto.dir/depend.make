# Empty dependencies file for hatrpc_proto.
# This may be replaced when dependencies are built.
