file(REMOVE_RECURSE
  "libhatrpc_proto.a"
)
