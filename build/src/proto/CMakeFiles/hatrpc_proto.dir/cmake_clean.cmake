file(REMOVE_RECURSE
  "CMakeFiles/hatrpc_proto.dir/factory.cc.o"
  "CMakeFiles/hatrpc_proto.dir/factory.cc.o.d"
  "libhatrpc_proto.a"
  "libhatrpc_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hatrpc_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
