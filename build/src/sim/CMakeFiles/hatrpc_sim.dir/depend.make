# Empty dependencies file for hatrpc_sim.
# This may be replaced when dependencies are built.
