file(REMOVE_RECURSE
  "libhatrpc_sim.a"
)
