file(REMOVE_RECURSE
  "CMakeFiles/hatrpc_sim.dir/simulator.cc.o"
  "CMakeFiles/hatrpc_sim.dir/simulator.cc.o.d"
  "libhatrpc_sim.a"
  "libhatrpc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hatrpc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
