file(REMOVE_RECURSE
  "libhatrpc_hint.a"
)
