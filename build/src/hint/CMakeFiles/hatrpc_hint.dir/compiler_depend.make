# Empty compiler generated dependencies file for hatrpc_hint.
# This may be replaced when dependencies are built.
