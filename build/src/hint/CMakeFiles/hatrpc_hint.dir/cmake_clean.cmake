file(REMOVE_RECURSE
  "CMakeFiles/hatrpc_hint.dir/hint.cc.o"
  "CMakeFiles/hatrpc_hint.dir/hint.cc.o.d"
  "CMakeFiles/hatrpc_hint.dir/selection.cc.o"
  "CMakeFiles/hatrpc_hint.dir/selection.cc.o.d"
  "libhatrpc_hint.a"
  "libhatrpc_hint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hatrpc_hint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
