# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("verbs")
subdirs("proto")
subdirs("thrift")
subdirs("hint")
subdirs("idl")
subdirs("core")
subdirs("kv")
subdirs("ycsb")
subdirs("tpch")
