# Empty dependencies file for hatrpc-gen.
# This may be replaced when dependencies are built.
