file(REMOVE_RECURSE
  "CMakeFiles/hatrpc-gen.dir/tool_main.cc.o"
  "CMakeFiles/hatrpc-gen.dir/tool_main.cc.o.d"
  "hatrpc-gen"
  "hatrpc-gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hatrpc-gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
