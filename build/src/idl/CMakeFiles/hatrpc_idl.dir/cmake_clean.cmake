file(REMOVE_RECURSE
  "CMakeFiles/hatrpc_idl.dir/check.cc.o"
  "CMakeFiles/hatrpc_idl.dir/check.cc.o.d"
  "CMakeFiles/hatrpc_idl.dir/codegen.cc.o"
  "CMakeFiles/hatrpc_idl.dir/codegen.cc.o.d"
  "CMakeFiles/hatrpc_idl.dir/lexer.cc.o"
  "CMakeFiles/hatrpc_idl.dir/lexer.cc.o.d"
  "CMakeFiles/hatrpc_idl.dir/parser.cc.o"
  "CMakeFiles/hatrpc_idl.dir/parser.cc.o.d"
  "libhatrpc_idl.a"
  "libhatrpc_idl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hatrpc_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
