# Empty dependencies file for hatrpc_idl.
# This may be replaced when dependencies are built.
