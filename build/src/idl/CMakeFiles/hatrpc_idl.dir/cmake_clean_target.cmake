file(REMOVE_RECURSE
  "libhatrpc_idl.a"
)
