# Empty compiler generated dependencies file for hatrpc_kv.
# This may be replaced when dependencies are built.
