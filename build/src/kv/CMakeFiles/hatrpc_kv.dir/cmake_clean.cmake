file(REMOVE_RECURSE
  "CMakeFiles/hatrpc_kv.dir/hatkv.cc.o"
  "CMakeFiles/hatrpc_kv.dir/hatkv.cc.o.d"
  "CMakeFiles/hatrpc_kv.dir/mdblite.cc.o"
  "CMakeFiles/hatrpc_kv.dir/mdblite.cc.o.d"
  "hatkv_gen.h"
  "libhatrpc_kv.a"
  "libhatrpc_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hatrpc_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
