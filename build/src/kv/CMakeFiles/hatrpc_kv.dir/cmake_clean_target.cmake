file(REMOVE_RECURSE
  "libhatrpc_kv.a"
)
