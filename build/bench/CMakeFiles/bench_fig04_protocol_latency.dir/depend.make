# Empty dependencies file for bench_fig04_protocol_latency.
# This may be replaced when dependencies are built.
