file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_protocol_latency.dir/bench_fig04_protocol_latency.cc.o"
  "CMakeFiles/bench_fig04_protocol_latency.dir/bench_fig04_protocol_latency.cc.o.d"
  "bench_fig04_protocol_latency"
  "bench_fig04_protocol_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_protocol_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
