# Empty compiler generated dependencies file for bench_fig11_atb_latency.
# This may be replaced when dependencies are built.
