file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_atb_latency.dir/bench_fig11_atb_latency.cc.o"
  "CMakeFiles/bench_fig11_atb_latency.dir/bench_fig11_atb_latency.cc.o.d"
  "bench_fig11_atb_latency"
  "bench_fig11_atb_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_atb_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
