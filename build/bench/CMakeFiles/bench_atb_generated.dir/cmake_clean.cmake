file(REMOVE_RECURSE
  "CMakeFiles/bench_atb_generated.dir/bench_atb_generated.cc.o"
  "CMakeFiles/bench_atb_generated.dir/bench_atb_generated.cc.o.d"
  "atb_gen.h"
  "bench_atb_generated"
  "bench_atb_generated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_atb_generated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
