# Empty compiler generated dependencies file for bench_atb_generated.
# This may be replaced when dependencies are built.
