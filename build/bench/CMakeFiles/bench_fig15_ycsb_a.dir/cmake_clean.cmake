file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_ycsb_a.dir/bench_fig15_ycsb_a.cc.o"
  "CMakeFiles/bench_fig15_ycsb_a.dir/bench_fig15_ycsb_a.cc.o.d"
  "bench_fig15_ycsb_a"
  "bench_fig15_ycsb_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_ycsb_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
