# Empty dependencies file for bench_fig15_ycsb_a.
# This may be replaced when dependencies are built.
