
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_hints.cc" "bench/CMakeFiles/bench_ablation_hints.dir/bench_ablation_hints.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_hints.dir/bench_ablation_hints.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kv/CMakeFiles/hatrpc_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hatrpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hint/CMakeFiles/hatrpc_hint.dir/DependInfo.cmake"
  "/root/repo/build/src/thrift/CMakeFiles/hatrpc_thrift.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/hatrpc_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/hatrpc_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hatrpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
