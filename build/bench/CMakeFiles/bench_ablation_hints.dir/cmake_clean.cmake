file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hints.dir/bench_ablation_hints.cc.o"
  "CMakeFiles/bench_ablation_hints.dir/bench_ablation_hints.cc.o.d"
  "bench_ablation_hints"
  "bench_ablation_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
