# Empty dependencies file for bench_ablation_hints.
# This may be replaced when dependencies are built.
