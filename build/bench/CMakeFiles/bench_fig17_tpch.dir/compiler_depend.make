# Empty compiler generated dependencies file for bench_fig17_tpch.
# This may be replaced when dependencies are built.
