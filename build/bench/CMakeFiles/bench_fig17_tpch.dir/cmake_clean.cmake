file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_tpch.dir/bench_fig17_tpch.cc.o"
  "CMakeFiles/bench_fig17_tpch.dir/bench_fig17_tpch.cc.o.d"
  "bench_fig17_tpch"
  "bench_fig17_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
