# Empty dependencies file for bench_fig12_atb_throughput.
# This may be replaced when dependencies are built.
