file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_atb_throughput.dir/bench_fig12_atb_throughput.cc.o"
  "CMakeFiles/bench_fig12_atb_throughput.dir/bench_fig12_atb_throughput.cc.o.d"
  "bench_fig12_atb_throughput"
  "bench_fig12_atb_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_atb_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
