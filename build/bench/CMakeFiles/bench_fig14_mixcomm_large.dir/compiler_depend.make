# Empty compiler generated dependencies file for bench_fig14_mixcomm_large.
# This may be replaced when dependencies are built.
