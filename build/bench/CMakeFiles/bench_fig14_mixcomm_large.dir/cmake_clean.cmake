file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_mixcomm_large.dir/bench_fig14_mixcomm_large.cc.o"
  "CMakeFiles/bench_fig14_mixcomm_large.dir/bench_fig14_mixcomm_large.cc.o.d"
  "bench_fig14_mixcomm_large"
  "bench_fig14_mixcomm_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_mixcomm_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
