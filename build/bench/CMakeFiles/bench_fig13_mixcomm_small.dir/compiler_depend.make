# Empty compiler generated dependencies file for bench_fig13_mixcomm_small.
# This may be replaced when dependencies are built.
