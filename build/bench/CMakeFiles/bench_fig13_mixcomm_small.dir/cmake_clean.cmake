file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_mixcomm_small.dir/bench_fig13_mixcomm_small.cc.o"
  "CMakeFiles/bench_fig13_mixcomm_small.dir/bench_fig13_mixcomm_small.cc.o.d"
  "bench_fig13_mixcomm_small"
  "bench_fig13_mixcomm_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_mixcomm_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
