# Empty dependencies file for bench_fig16_ycsb_b.
# This may be replaced when dependencies are built.
