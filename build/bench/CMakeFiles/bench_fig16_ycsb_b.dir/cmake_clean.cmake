file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_ycsb_b.dir/bench_fig16_ycsb_b.cc.o"
  "CMakeFiles/bench_fig16_ycsb_b.dir/bench_fig16_ycsb_b.cc.o.d"
  "bench_fig16_ycsb_b"
  "bench_fig16_ycsb_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_ycsb_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
