# Empty compiler generated dependencies file for bench_fig05_protocol_throughput.
# This may be replaced when dependencies are built.
