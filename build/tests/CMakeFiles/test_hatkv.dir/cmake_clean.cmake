file(REMOVE_RECURSE
  "CMakeFiles/test_hatkv.dir/test_hatkv.cc.o"
  "CMakeFiles/test_hatkv.dir/test_hatkv.cc.o.d"
  "test_hatkv"
  "test_hatkv.pdb"
  "test_hatkv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hatkv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
