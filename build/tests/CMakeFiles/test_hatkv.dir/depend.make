# Empty dependencies file for test_hatkv.
# This may be replaced when dependencies are built.
