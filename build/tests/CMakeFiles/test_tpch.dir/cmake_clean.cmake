file(REMOVE_RECURSE
  "CMakeFiles/test_tpch.dir/test_tpch.cc.o"
  "CMakeFiles/test_tpch.dir/test_tpch.cc.o.d"
  "test_tpch"
  "test_tpch.pdb"
  "test_tpch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
