# Empty dependencies file for test_tpch.
# This may be replaced when dependencies are built.
