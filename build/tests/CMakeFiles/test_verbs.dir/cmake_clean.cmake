file(REMOVE_RECURSE
  "CMakeFiles/test_verbs.dir/test_verbs.cc.o"
  "CMakeFiles/test_verbs.dir/test_verbs.cc.o.d"
  "test_verbs"
  "test_verbs.pdb"
  "test_verbs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
