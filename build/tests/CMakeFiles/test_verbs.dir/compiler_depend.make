# Empty compiler generated dependencies file for test_verbs.
# This may be replaced when dependencies are built.
