# Empty dependencies file for test_thrift_protocol.
# This may be replaced when dependencies are built.
