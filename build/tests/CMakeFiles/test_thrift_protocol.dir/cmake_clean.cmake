file(REMOVE_RECURSE
  "CMakeFiles/test_thrift_protocol.dir/test_thrift_protocol.cc.o"
  "CMakeFiles/test_thrift_protocol.dir/test_thrift_protocol.cc.o.d"
  "test_thrift_protocol"
  "test_thrift_protocol.pdb"
  "test_thrift_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thrift_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
