# Empty compiler generated dependencies file for test_ycsb.
# This may be replaced when dependencies are built.
