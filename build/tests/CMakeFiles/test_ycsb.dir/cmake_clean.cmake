file(REMOVE_RECURSE
  "CMakeFiles/test_ycsb.dir/test_ycsb.cc.o"
  "CMakeFiles/test_ycsb.dir/test_ycsb.cc.o.d"
  "test_ycsb"
  "test_ycsb.pdb"
  "test_ycsb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
