# Empty dependencies file for test_thrift_transport.
# This may be replaced when dependencies are built.
