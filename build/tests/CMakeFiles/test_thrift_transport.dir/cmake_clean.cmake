file(REMOVE_RECURSE
  "CMakeFiles/test_thrift_transport.dir/test_thrift_transport.cc.o"
  "CMakeFiles/test_thrift_transport.dir/test_thrift_transport.cc.o.d"
  "test_thrift_transport"
  "test_thrift_transport.pdb"
  "test_thrift_transport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thrift_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
