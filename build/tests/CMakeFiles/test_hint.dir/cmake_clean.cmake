file(REMOVE_RECURSE
  "CMakeFiles/test_hint.dir/test_hint.cc.o"
  "CMakeFiles/test_hint.dir/test_hint.cc.o.d"
  "test_hint"
  "test_hint.pdb"
  "test_hint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
