# Empty dependencies file for test_hint.
# This may be replaced when dependencies are built.
