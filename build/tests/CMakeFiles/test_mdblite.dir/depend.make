# Empty dependencies file for test_mdblite.
# This may be replaced when dependencies are built.
