file(REMOVE_RECURSE
  "CMakeFiles/test_mdblite.dir/test_mdblite.cc.o"
  "CMakeFiles/test_mdblite.dir/test_mdblite.cc.o.d"
  "test_mdblite"
  "test_mdblite.pdb"
  "test_mdblite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdblite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
