# Empty compiler generated dependencies file for test_idl_generated.
# This may be replaced when dependencies are built.
