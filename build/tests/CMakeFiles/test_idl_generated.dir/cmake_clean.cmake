file(REMOVE_RECURSE
  "CMakeFiles/test_idl_generated.dir/test_idl_generated.cc.o"
  "CMakeFiles/test_idl_generated.dir/test_idl_generated.cc.o.d"
  "echo_kv_gen.h"
  "test_idl_generated"
  "test_idl_generated.pdb"
  "test_idl_generated[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idl_generated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
