# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_verbs[1]_include.cmake")
include("/root/repo/build/tests/test_proto[1]_include.cmake")
include("/root/repo/build/tests/test_thrift_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_thrift_transport[1]_include.cmake")
include("/root/repo/build/tests/test_hint[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_idl[1]_include.cmake")
include("/root/repo/build/tests/test_idl_generated[1]_include.cmake")
include("/root/repo/build/tests/test_mdblite[1]_include.cmake")
include("/root/repo/build/tests/test_hatkv[1]_include.cmake")
include("/root/repo/build/tests/test_ycsb[1]_include.cmake")
include("/root/repo/build/tests/test_tpch[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
add_test(hatrpc_gen_dump_hints "/root/repo/build/src/idl/hatrpc-gen" "/root/repo/src/kv/hatkv.hatrpc" "--dump-hints" "-o" "/root/repo/build/hatkv_cli_test.h")
set_tests_properties(hatrpc_gen_dump_hints PROPERTIES  PASS_REGULAR_EXPRESSION "MultiGet -> Direct-WriteIMM" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hatrpc_gen_rejects_missing_file "/root/repo/build/src/idl/hatrpc-gen" "/nonexistent.hatrpc" "-o" "/dev/null")
set_tests_properties(hatrpc_gen_rejects_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
