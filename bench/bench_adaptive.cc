// Adaptive-hints study (ROADMAP item 4 / DESIGN.md §14): a phased workload
// whose right answer changes mid-run, driven against
//
//   adaptive     hint::AdaptiveChannel starting from the small-message IDL
//                prior (Eager-SendRecv, busy/busy) and re-selecting protocol
//                and polling online from its live footprint;
//   statics      the two plans a static hint would have frozen — the
//                small-message plan (eager + busy) and the large-message
//                plan (Write-Rndv + event) — each run over the SAME phased
//                workload;
//   frozen       the adaptive channel with its controller frozen: the
//                ablation. The run must be bit-identical (counter dump and
//                virtual end time) to the eager static, or the binary exits
//                non-zero — the controller's observation path costs nothing.
//
// Phases (8 client nodes; channels spread round-robin):
//   small-under  512 B echoes, 8 channels x 1 lane -> the eager prior is
//                already right
//   large-under  64 KB echoes, 8 channels x 1 lane -> payload EWMA crosses
//                4 KB, the controller swaps the epoch to Write-Rndv
//   small-over   512 B echoes, fan-in grows to 64 channels x 3 lanes ->
//                64 busy-polled connections park 64 spinners on the
//                28-core server (the Fig-5 collapse); the controllers see
//                192 aggregate in-flight calls, drop both sides to event
//                and return the protocol to eager
//
// Each phase reports full-phase throughput AND steady-state throughput
// (first `warmup_calls` per channel excluded, for every config alike) —
// the adaptive rows pay their re-selection inside the warm-up window, and
// the analysis block compares steady states. Windows are pinned to 8 in
// this study (min_window == max_window) so the per-transition plan-switch
// budget measures protocol/polling churn only; stall-driven window sizing
// is exercised by tests/test_adaptive.cc.
//
// Not a google-benchmark binary: the JSON carries only virtual-time-derived
// numbers, so same-seed runs are byte-identical and CI cmp's two of them.
//
//   bench_adaptive --seed 1 --out BENCH_adaptive.json
//     [--channels 8] [--small-bytes 512] [--large-bytes 65536]
//     [--warmup 12]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "hint/adaptive.h"
#include "sim/sync.h"
#include "verbs/fabric.h"

namespace {

using namespace hatrpc;
using namespace std::chrono_literals;
using sim::Task;

struct Options {
  uint64_t seed = 1;
  uint32_t channels = 8;       // under-subscribed phases
  uint32_t over_channels = 64; // fan-in of the over-subscribed phase
  uint32_t small_bytes = 512;
  uint32_t large_bytes = 64 << 10;
  uint32_t warmup = 12;  // per-channel steady-state cutoff, every config
  std::string out = "BENCH_adaptive.json";
};

struct PhaseSpec {
  const char* name;
  uint32_t bytes;
  uint32_t channels;         // connections live during the phase
  uint32_t lanes;            // concurrent lanes per channel
  uint32_t calls_per_chan;   // total calls per channel (across its lanes)
};

struct PhaseResult {
  uint64_t calls = 0;
  sim::Duration elapsed{};
  sim::Duration lat_sum{};
  uint64_t steady_calls = 0;
  sim::Duration steady_elapsed{};
  uint64_t switches = 0;     // controller adoptions during this phase
  uint64_t max_chan_switches = 0;  // worst single channel this phase
  uint64_t epoch_swaps = 0;
  std::string plan_after;    // protocol/clientpoll/serverpoll at phase end
};

struct RunResult {
  std::string config;
  std::vector<PhaseResult> phases;
  sim::Time end{};
  std::string dump;          // fabric counter dump (frozen-vs-static oracle)
  uint64_t total_switches = 0;
  double wall_s = 0;         // stdout only, never serialized
};

const char* poll_name(sim::PollMode m) {
  return m == sim::PollMode::kBusy ? "busy" : "event";
}

std::string plan_name(const hint::Plan& p) {
  return std::string(proto::to_string(p.protocol)) + "/" +
         poll_name(p.client_poll) + "/" + poll_name(p.server_poll);
}

// The ATB work model: dispatch cost plus a payload-proportional checksum.
proto::Handler checksum_handler(verbs::Node& server) {
  return [&server](proto::View req) -> Task<proto::Buffer> {
    co_await server.cpu().compute(1000ns +
                                  sim::transfer_time(req.size(), 20.0));
    co_return proto::Buffer(req.begin(), req.end());
  };
}

// Per-channel progress shared by its lanes (single-threaded sim: plain
// counters are race-free). `warm` fires once the channel has completed its
// steady-state cutoff for the current phase.
struct ChanProgress {
  uint32_t done = 0;
  bool warm_signalled = false;
};

enum class Mode { kAdaptive, kFrozen, kStaticEager, kStaticRndv };

hint::Plan eager_prior(uint32_t payload) {
  hint::Plan p;
  p.protocol = proto::ProtocolKind::kEagerSendRecv;
  p.client_poll = sim::PollMode::kBusy;
  p.server_poll = sim::PollMode::kBusy;
  p.expected_payload = payload;
  p.window = 8;
  return p;
}

hint::Plan rndv_plan(uint32_t payload) {
  hint::Plan p;
  p.protocol = proto::ProtocolKind::kWriteRndv;
  p.client_poll = sim::PollMode::kEvent;
  p.server_poll = sim::PollMode::kEvent;
  p.expected_payload = payload;
  p.window = 8;
  return p;
}

RunResult run_config(const Options& opt, Mode mode,
                     const std::vector<PhaseSpec>& phases) {
  sim::Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* server = fabric.add_node();
  std::vector<verbs::Node*> client_nodes;
  for (uint32_t c = 0; c < opt.channels; ++c)
    client_nodes.push_back(fabric.add_node());  // round-robin across nodes

  const hint::Plan prior = eager_prior(opt.small_bytes);
  const hint::Plan fixed =
      mode == Mode::kStaticRndv ? rndv_plan(opt.large_bytes) : prior;

  proto::ChannelConfig cfg;
  cfg.with_window(8).with_max_msg(std::max(128u << 10, 2 * opt.large_bytes));
  cfg.with_client_poll(fixed.client_poll).with_server_poll(fixed.server_poll);

  hint::AdaptiveParams params;
  params.min_samples = 4;
  params.cooldown = 30us;
  params.min_window = 8;  // pin the window: this study sweeps protocol+poll
  params.max_window = 8;

  // One footprint shared by every channel: the subscription signal is the
  // AGGREGATE in-flight count, which is what over-subscribes the server.
  obs::FunctionFootprint fp("bench_adaptive");

  std::vector<std::unique_ptr<proto::RpcChannel>> statics;
  std::vector<std::unique_ptr<hint::AdaptiveChannel>> adaptives;
  std::vector<proto::RpcChannel*> chans;
  // Connections are accepted lazily so the over-subscribed phase models a
  // live fan-in increase rather than 64 idle spinners from t=0.
  auto add_channel = [&] {
    verbs::Node& cn = *client_nodes[chans.size() % client_nodes.size()];
    if (mode == Mode::kStaticEager || mode == Mode::kStaticRndv) {
      statics.push_back(proto::make_channel(fixed.protocol, cn, *server,
                                            checksum_handler(*server), cfg));
      chans.push_back(statics.back().get());
    } else {
      adaptives.push_back(hint::make_adaptive_channel(
          cn, *server, checksum_handler(*server), cfg, prior, params, &fp));
      if (mode == Mode::kFrozen) adaptives.back()->freeze();
      chans.push_back(adaptives.back().get());
    }
  };

  auto total_switches = [&] {
    uint64_t n = 0;
    for (auto& a : adaptives) n += a->switches();
    return n;
  };
  auto total_epochs = [&] {
    uint64_t n = 0;
    for (auto& a : adaptives) n += a->epoch();
    return n;
  };

  RunResult res;
  res.phases.resize(phases.size());
  auto t0 = std::chrono::steady_clock::now();

  sim.spawn([](sim::Simulator& sim, const Options& opt,
               const std::vector<PhaseSpec>& phases,
               std::vector<proto::RpcChannel*>& chans,
               std::vector<std::unique_ptr<hint::AdaptiveChannel>>& adaptives,
               decltype(add_channel)& add_channel,
               decltype(total_switches)& total_switches,
               decltype(total_epochs)& total_epochs,
               RunResult& res) -> Task<void> {
    for (size_t ph = 0; ph < phases.size(); ++ph) {
      const PhaseSpec& spec = phases[ph];
      PhaseResult& out = res.phases[ph];
      while (chans.size() < spec.channels) add_channel();
      std::vector<uint64_t> sw_before(adaptives.size());
      for (size_t c = 0; c < adaptives.size(); ++c)
        sw_before[c] = adaptives[c]->switches();
      const uint64_t sw0 = total_switches();
      const uint64_t ep0 = total_epochs();
      const sim::Time start = sim.now();

      sim::WaitGroup done(sim);
      sim::WaitGroup warm(sim);
      std::vector<ChanProgress> prog(chans.size());
      for (size_t c = 0; c < chans.size(); ++c) {
        warm.add(1);
        for (uint32_t l = 0; l < spec.lanes; ++l) {
          uint32_t lane_iters = spec.calls_per_chan / spec.lanes +
                                (l < spec.calls_per_chan % spec.lanes ? 1 : 0);
          if (lane_iters == 0) continue;
          done.add(1);
          sim.spawn([](sim::Simulator& sim, proto::RpcChannel& ch,
                       const PhaseSpec& spec, uint32_t lane_iters,
                       uint32_t warmup, ChanProgress& prog,
                       sim::WaitGroup& done, sim::WaitGroup& warm,
                       PhaseResult& out) -> Task<void> {
            proto::Buffer payload(spec.bytes, std::byte{0x5a});
            for (uint32_t i = 0; i < lane_iters; ++i) {
              sim::Time c0 = sim.now();
              auto r = co_await ch.call(payload, spec.bytes);
              r.value();
              out.lat_sum += sim.now() - c0;
              ++prog.done;
              if (!prog.warm_signalled && prog.done >= warmup) {
                prog.warm_signalled = true;
                warm.done();
              }
            }
            done.done();
          }(sim, *chans[c], spec, lane_iters, opt.warmup, prog[c], done,
            warm, out));
        }
        // Channels whose phase quota is below the cutoff still settle.
        if (spec.calls_per_chan < opt.warmup) {
          prog[c].warm_signalled = true;
          warm.done();
        }
      }

      // Steady state begins when the SLOWEST channel passes the cutoff.
      sim::Time warm_at{};
      co_await warm.wait();
      warm_at = sim.now();
      co_await done.wait();

      out.calls = uint64_t(spec.calls_per_chan) * chans.size();
      out.elapsed = sim.now() - start;
      out.steady_calls =
          out.calls - uint64_t(std::min(spec.calls_per_chan, opt.warmup)) *
                          chans.size();
      out.steady_elapsed = sim.now() - warm_at;
      out.switches = total_switches() - sw0;
      for (size_t c = 0; c < adaptives.size(); ++c) {
        uint64_t before = c < sw_before.size() ? sw_before[c] : 0;
        out.max_chan_switches = std::max(out.max_chan_switches,
                                         adaptives[c]->switches() - before);
      }
      out.epoch_swaps = total_epochs() - ep0;
      out.plan_after = adaptives.empty()
                           ? std::string("static")
                           : plan_name(adaptives.front()->plan());
    }
    for (auto* ch : chans) ch->shutdown();
    co_return;
  }(sim, opt, phases, chans, adaptives, add_channel, total_switches,
    total_epochs, res));

  sim.run();

  res.end = sim.now();
  res.dump = fabric.obs().counters.dump();
  res.total_switches = total_switches();
  res.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
  return res;
}

double mops(uint64_t calls, sim::Duration elapsed) {
  double secs = sim::to_seconds(elapsed);
  return secs > 0 ? double(calls) / secs / 1e6 : 0;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto eat = [&](const char* flag, auto set) {
      if (a != flag) return false;
      const char* v = next(i);
      if (!v) throw std::runtime_error(a + " needs a value");
      set(v);
      return true;
    };
    bool ok =
        eat("--seed", [&](const char* v) { opt.seed = std::stoull(v); }) ||
        eat("--channels",
            [&](const char* v) { opt.channels = std::stoul(v); }) ||
        eat("--over-channels",
            [&](const char* v) { opt.over_channels = std::stoul(v); }) ||
        eat("--small-bytes",
            [&](const char* v) { opt.small_bytes = std::stoul(v); }) ||
        eat("--large-bytes",
            [&](const char* v) { opt.large_bytes = std::stoul(v); }) ||
        eat("--warmup", [&](const char* v) { opt.warmup = std::stoul(v); }) ||
        eat("--out", [&](const char* v) { opt.out = v; });
    if (!ok) {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  const std::vector<PhaseSpec> phases = {
      {"small-under", opt.small_bytes, opt.channels, 1, 96},
      {"large-under", opt.large_bytes, opt.channels, 1, 96},
      {"small-over", opt.small_bytes, opt.over_channels, 3, 96},
  };

  struct Series {
    Mode mode;
    const char* name;
    RunResult r;
  };
  std::vector<Series> series = {
      {Mode::kAdaptive, "adaptive", {}},
      {Mode::kFrozen, "frozen", {}},
      {Mode::kStaticEager, "static-eager-busy", {}},
      {Mode::kStaticRndv, "static-rndv-event", {}},
  };
  double wall_total = 0;
  for (auto& s : series) {
    s.r = run_config(opt, s.mode, phases);
    wall_total += s.r.wall_s;
    std::printf("%-18s end=%lldns switches=%llu (%.2fs wall)\n", s.name,
                (long long)s.r.end.count(),
                (unsigned long long)s.r.total_switches, s.r.wall_s);
    for (size_t ph = 0; ph < phases.size(); ++ph) {
      const PhaseResult& p = s.r.phases[ph];
      std::printf(
          "  %-12s %8.4f Mops (steady %8.4f)  sw=%llu (max/chan %llu)  "
          "plan=%s\n",
          phases[ph].name, mops(p.calls, p.elapsed),
          mops(p.steady_calls, p.steady_elapsed),
          (unsigned long long)p.switches,
          (unsigned long long)p.max_chan_switches, p.plan_after.c_str());
    }
  }

  // --- The ablation invariant: frozen == static prior, bit for bit. -------
  const RunResult& frozen = series[1].r;
  const RunResult& eager = series[2].r;
  bool frozen_ok = frozen.dump == eager.dump && frozen.end == eager.end;
  if (!frozen_ok) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATION: frozen adaptive diverged from its "
                 "static twin (end %lld vs %lld)\n",
                 (long long)frozen.end.count(), (long long)eager.end.count());
  }

  std::string json = "{\"bench\":\"adaptive\",\"config\":{";
  json += "\"seed\":" + std::to_string(opt.seed);
  json += ",\"channels\":" + std::to_string(opt.channels);
  json += ",\"small_bytes\":" + std::to_string(opt.small_bytes);
  json += ",\"large_bytes\":" + std::to_string(opt.large_bytes);
  json += ",\"warmup_calls\":" + std::to_string(opt.warmup);
  json += ",\"window\":8,\"cores\":28},\"phases\":[";
  for (size_t ph = 0; ph < phases.size(); ++ph) {
    if (ph) json += ",";
    json += std::string("{\"name\":\"") + phases[ph].name + "\"";
    json += ",\"bytes\":" + std::to_string(phases[ph].bytes);
    json += ",\"channels\":" + std::to_string(phases[ph].channels);
    json += ",\"lanes\":" + std::to_string(phases[ph].lanes);
    json += ",\"calls_per_channel\":" + std::to_string(phases[ph].calls_per_chan);
    json += "}";
  }
  json += "],\"series\":[";
  for (size_t s = 0; s < series.size(); ++s) {
    const RunResult& r = series[s].r;
    if (s) json += ",";
    json += std::string("{\"config\":\"") + series[s].name + "\"";
    json += ",\"end_ns\":" + std::to_string(r.end.count());
    json += ",\"total_switches\":" + std::to_string(r.total_switches);
    json += ",\"phases\":[";
    for (size_t ph = 0; ph < phases.size(); ++ph) {
      const PhaseResult& p = r.phases[ph];
      if (ph) json += ",";
      json += std::string("{\"name\":\"") + phases[ph].name + "\"";
      json += ",\"mops\":" + fmt(mops(p.calls, p.elapsed));
      json += ",\"steady_mops\":" + fmt(mops(p.steady_calls, p.steady_elapsed));
      json += ",\"mean_lat_us\":" +
              fmt(sim::to_seconds(p.lat_sum /
                                  int64_t(p.calls ? p.calls : 1)) *
                  1e6);
      json += ",\"switches\":" + std::to_string(p.switches);
      json += ",\"max_chan_switches\":" + std::to_string(p.max_chan_switches);
      json += ",\"epoch_swaps\":" + std::to_string(p.epoch_swaps);
      json += std::string(",\"plan_after\":\"") + p.plan_after + "\"";
      json += "}";
    }
    json += "]}";
  }
  json += "],\"analysis\":{\"per_phase\":[";

  // Adaptive vs the best and worst static, steady state, per phase.
  const RunResult& adaptive = series[0].r;
  bool adaptive_ok = true;   // >= 0.95x best static in every phase
  bool beats_wrong = false;  // >= 2x the worst static in some phase
  for (size_t ph = 0; ph < phases.size(); ++ph) {
    double a = mops(adaptive.phases[ph].steady_calls,
                    adaptive.phases[ph].steady_elapsed);
    double e = mops(series[2].r.phases[ph].steady_calls,
                    series[2].r.phases[ph].steady_elapsed);
    double v = mops(series[3].r.phases[ph].steady_calls,
                    series[3].r.phases[ph].steady_elapsed);
    double best = std::max(e, v), worst = std::min(e, v);
    const char* best_name =
        e >= v ? "static-eager-busy" : "static-rndv-event";
    if (a < 0.95 * best) adaptive_ok = false;
    if (worst > 0 && a >= 2.0 * worst) beats_wrong = true;
    if (ph) json += ",";
    json += std::string("{\"name\":\"") + phases[ph].name + "\"";
    json += ",\"adaptive_steady_mops\":" + fmt(a);
    json += std::string(",\"best_static\":\"") + best_name + "\"";
    json += ",\"best_static_mops\":" + fmt(best);
    json += ",\"worst_static_mops\":" + fmt(worst);
    json += ",\"adaptive_vs_best\":" + fmt(best > 0 ? a / best : 0);
    json += ",\"adaptive_vs_worst\":" + fmt(worst > 0 ? a / worst : 0);
    json += "}";
  }
  json += "],\"adaptive_ge_best_static\":";
  json += adaptive_ok ? "true" : "false";
  json += ",\"adaptive_2x_wrong_static\":";
  json += beats_wrong ? "true" : "false";
  json += ",\"frozen_matches_static\":";
  json += frozen_ok ? "true" : "false";
  json += ",\"adaptive_total_switches\":" +
          std::to_string(adaptive.total_switches);
  uint64_t max_chan_sw = 0;
  for (const PhaseResult& p : adaptive.phases)
    max_chan_sw = std::max(max_chan_sw, p.max_chan_switches);
  json += ",\"max_switches_per_channel_per_phase\":" +
          std::to_string(max_chan_sw);
  json += "}}\n";

  std::ofstream(opt.out) << json;
  std::printf("wrote %s (%.1fs wall total)\n", opt.out.c_str(), wall_total);
  return frozen_ok ? 0 : 1;
}
