// ATB end-to-end on generated skeletons: unlike the Fig-4/11 channel-level
// microbenchmarks, this binary exercises the COMPLETE stack the paper's
// ATB uses — hatrpc-gen output (atb.hatrpc) -> Thrift serialization ->
// envelope -> hint-planned RDMA channels — and reports full-stack latency
// and mixed-workload throughput. One row per scenario; manual time is
// simulated.
#include <benchmark/benchmark.h>

#include "atb_gen.h"
#include "core/engine.h"
#include "sim/rng.h"

namespace {

using namespace hatrpc;
using sim::Task;
using namespace std::chrono_literals;

class AtbHandler : public atb::AtbIf {
 public:
  explicit AtbHandler(verbs::Node& node) : node_(node) {}

  Task<std::string> Ping(const std::string& payload) override {
    co_await node_.cpu().compute(1us +
                                 sim::transfer_time(payload.size(), 20.0));
    co_return payload;
  }

  Task<std::string> Stream(const std::string& payload) override {
    co_await node_.cpu().compute(1us +
                                 sim::transfer_time(payload.size(), 20.0));
    co_return payload;
  }

 private:
  verbs::Node& node_;
};

struct AtbCluster {
  sim::Simulator sim;
  verbs::Fabric fabric{sim};
  verbs::Node* server_node = fabric.add_node();
  core::HatServer server{*server_node, atb::Atb_hints(), {}};
  AtbHandler handler{*server_node};

  AtbCluster() { atb::register_Atb(server.dispatcher(), handler); }
};

void latency_bench(benchmark::State& state, size_t bytes) {
  AtbCluster c;
  core::HatConnection conn(*c.fabric.add_node(), c.server);
  sim::Duration lat{};
  c.sim.spawn([](AtbCluster& c, core::HatConnection& conn, size_t bytes,
                 sim::Duration& lat) -> Task<void> {
    atb::AtbClient client(conn);
    std::string payload(bytes, 'p');
    co_await client.Ping(payload);  // warm-up (channel creation)
    sim::Time t0 = c.sim.now();
    for (int i = 0; i < 64; ++i) co_await client.Ping(payload);
    lat = (c.sim.now() - t0) / 64;
    c.server.stop();
  }(c, conn, bytes, lat));
  c.sim.run();
  for (auto _ : state) state.SetIterationTime(sim::to_seconds(lat));
  state.counters["latency_us"] = sim::to_micros(lat);
}

void mix_bench(benchmark::State& state, int clients) {
  AtbCluster c;
  std::vector<std::unique_ptr<core::HatConnection>> conns;
  std::vector<verbs::Node*> cnodes;
  for (int i = 0; i < 9; ++i) cnodes.push_back(c.fabric.add_node());
  sim::WaitGroup wg(c.sim);
  wg.add(size_t(clients));
  struct Totals {
    sim::Duration ping_total{};
    uint64_t pings = 0;
    uint64_t streams = 0;
  } totals;
  for (int i = 0; i < clients; ++i) {
    conns.push_back(std::make_unique<core::HatConnection>(
        *cnodes[size_t(i) % 9], c.server));
    c.sim.spawn([](AtbCluster& c, core::HatConnection& conn, int seed,
                   Totals& totals, sim::WaitGroup& wg) -> Task<void> {
      atb::AtbClient client(conn);
      sim::Rng rng(uint64_t(seed) + 11);
      std::string small(512, 's');
      std::string large(128 << 10, 'l');
      for (int op = 0; op < 20; ++op) {
        if (rng.chance(0.5)) {
          sim::Time t0 = c.sim.now();
          co_await client.Ping(small);
          totals.ping_total += c.sim.now() - t0;
          ++totals.pings;
        } else {
          co_await client.Stream(large);
          ++totals.streams;
        }
      }
      wg.done();
    }(c, *conns.back(), i, totals, wg));
  }
  sim::Time end{};
  c.sim.spawn([](AtbCluster& c, sim::WaitGroup& wg,
                 sim::Time& end) -> Task<void> {
    co_await wg.wait();
    end = c.sim.now();
    c.server.stop();
  }(c, wg, end));
  c.sim.run();
  for (auto _ : state) state.SetIterationTime(sim::to_seconds(end));
  state.counters["ping_lat_us"] = totals.pings
      ? sim::to_micros(totals.ping_total / int64_t(totals.pings))
      : 0;
  state.counters["stream_kops"] =
      sim::to_seconds(end) > 0
          ? double(totals.streams) / sim::to_seconds(end) / 1e3
          : 0;
}

void register_all() {
  for (size_t bytes : {size_t(64), size_t(512), size_t(4096)}) {
    std::string name = "ATB_e2e/Ping/" + std::to_string(bytes) + "B";
    benchmark::RegisterBenchmark(name.c_str(),
                                 [bytes](benchmark::State& s) {
                                   latency_bench(s, bytes);
                                 })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);
  }
  for (int clients : {4, 16, 64}) {
    std::string name = "ATB_e2e/Mix/c" + std::to_string(clients);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [clients](benchmark::State& s) {
                                   mix_bench(s, clients);
                                 })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
