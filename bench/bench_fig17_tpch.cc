// Figure 17 — TPC-H execution time per query on the 10-node cluster
// (1 coordinator + 9 workers): vanilla Thrift over IPoIB vs HatRPC-Service
// (service-granularity hints) vs HatRPC-Function (per-query payload/goal
// hints + NUMA binding). One benchmark row per (mode, query); manual time
// is the simulated query execution time. A summary block at the end prints
// total times and the per-query speedups the paper headlines (§5.5).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "tpch/cluster.h"

namespace {

using namespace hatrpc;
using sim::Task;

constexpr double kScaleFactor = 0.05;
constexpr int kWorkers = 9;

constexpr tpch::TpchMode kModes[] = {tpch::TpchMode::kThriftIpoib,
                                     tpch::TpchMode::kHatService,
                                     tpch::TpchMode::kHatFunction};

/// Runs all 22 queries once per mode; memoized so each benchmark row just
/// reads its number (one cluster per mode, queries run back to back like
/// the paper's power run).
struct ModeRun {
  std::array<sim::Duration, 23> per_query{};
  sim::Duration total{};
};

const ModeRun& run_for(tpch::TpchMode mode) {
  static std::array<std::optional<ModeRun>, 3> cache;
  auto& slot = cache[static_cast<size_t>(mode)];
  if (slot) return *slot;
  ModeRun run;
  sim::Simulator sim;
  tpch::TpchCluster cluster(sim, kWorkers,
                            tpch::DbgenConfig{.scale_factor = kScaleFactor},
                            mode);
  sim.spawn([](tpch::TpchCluster& cluster, ModeRun& run) -> Task<void> {
    for (int q = 1; q <= 22; ++q) {
      co_await cluster.run_query(q);
      run.per_query[size_t(q)] = cluster.last_elapsed();
      run.total += cluster.last_elapsed();
    }
    cluster.stop();
  }(cluster, run));
  sim.run();
  slot = run;
  return *slot;
}

void register_all() {
  for (auto mode : kModes) {
    for (int q = 1; q <= 22; ++q) {
      std::string name = "Fig17/" + std::string(tpch::to_string(mode)) +
                         "/Q" + std::to_string(q);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [mode, q](benchmark::State& state) {
            const ModeRun& run = run_for(mode);
            for (auto _ : state)
              state.SetIterationTime(
                  sim::to_seconds(run.per_query[size_t(q)]));
            state.counters["ms"] =
                sim::to_micros(run.per_query[size_t(q)]) / 1e3;
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_summary() {
  const ModeRun& ipoib = run_for(tpch::TpchMode::kThriftIpoib);
  const ModeRun& svc = run_for(tpch::TpchMode::kHatService);
  const ModeRun& fn = run_for(tpch::TpchMode::kHatFunction);
  std::printf("\n=== Fig 17 summary (SF %.3f, %d workers) ===\n",
              kScaleFactor, kWorkers);
  std::printf("%-5s %12s %14s %15s %9s %9s\n", "query", "IPoIB(ms)",
              "HatSvc(ms)", "HatFn(ms)", "svc_x", "fn_x");
  double best_fn = 0, best_svc = 0;
  int best_fn_q = 0, best_svc_q = 0;
  for (int q = 1; q <= 22; ++q) {
    double a = sim::to_seconds(ipoib.per_query[size_t(q)]) * 1e3;
    double b = sim::to_seconds(svc.per_query[size_t(q)]) * 1e3;
    double c = sim::to_seconds(fn.per_query[size_t(q)]) * 1e3;
    double sx = b > 0 ? a / b : 0, fx = c > 0 ? a / c : 0;
    if (sx > best_svc) best_svc = sx, best_svc_q = q;
    if (fx > best_fn) best_fn = fx, best_fn_q = q;
    std::printf("Q%-4d %12.3f %14.3f %15.3f %8.2fx %8.2fx\n", q, a, b, c,
                sx, fx);
  }
  double ta = sim::to_seconds(ipoib.total) * 1e3;
  double tb = sim::to_seconds(svc.total) * 1e3;
  double tc = sim::to_seconds(fn.total) * 1e3;
  std::printf("%-5s %12.3f %14.3f %15.3f %8.2fx %8.2fx\n", "total", ta, tb,
              tc, ta / tb, ta / tc);
  std::printf("best per-query speedup: HatRPC-Service %.2fx (Q%d), "
              "HatRPC-Function %.2fx (Q%d)\n",
              best_svc, best_svc_q, best_fn, best_fn_q);
  std::printf("paper shapes: total 1.27x / up-to 1.51x for -Function; "
              "total 1.08x / up-to 1.21x for -Service\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
