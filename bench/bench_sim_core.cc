// Sim-core microbenchmark: how fast the discrete-event scheduler itself
// runs, independent of any protocol model. Three seeded phases:
//
//   timers   a storm of sleeping tasks whose durations span every wheel
//            level plus the far-future overflow heap  -> events/sec
//   shallow  a handful of sleepers firing many short timers, staying under
//            the scheduler's small-queue capacity — the sparse-storm shape
//            the wheel rebuild regressed, now served by the sorted-vector
//            fast path                                 -> events/sec
//   cancels  timed waiters that are always notified before their deadline,
//            so every wait cancels its timer           -> cancels/sec
//   rpc      a small Eager-SendRecv echo workload, the end-to-end shape the
//            ROADMAP scalability sweeps care about     -> ops/sec
//
// Not a google-benchmark binary: wall-clock rates are machine-dependent, so
// --out JSON is informational, while --trace-out gets a byte-identical
// digest of the virtual-time outcome (end times, event counts, a counter
// hash) that CI runs twice with the same seed and cmp's. The cancels phase
// doubles as a correctness gate: if a cancelled timer ever fired, the run's
// virtual end time would land on the abandoned deadlines.
//
//   bench_sim_core --seed 1 --out BENCH_sim_core.json \
//                  --trace-out BENCH_sim_core.trace
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "proto/channel.h"
#include "sim/rng.h"
#include "sim/sync.h"
#include "verbs/fabric.h"

namespace {

using namespace hatrpc;
using namespace std::chrono_literals;
using sim::Task;

struct Options {
  uint64_t seed = 1;
  uint32_t timer_tasks = 64;
  uint32_t timers_per_task = 4000;
  uint32_t shallow_tasks = 8;  // stays well under Simulator::kSmallCap
  uint32_t shallow_timers_per_task = 50000;
  uint32_t cancel_waiters = 2000;
  uint32_t cancel_rounds = 10;
  uint32_t rpc_clients = 4;
  uint32_t rpc_ops = 20000;  // total across clients
  uint32_t rpc_bytes = 64;
  std::string out = "BENCH_sim_core.json";
  std::string trace_out;  // empty = skip the digest file
};

/// Wall-clock + virtual-time outcome of one phase. The Run fields are
/// deterministic for a given seed; wall_s is not.
struct PhaseResult {
  const char* name;
  sim::Simulator::RunResult run;
  double wall_s = 0;
  uint64_t units = 0;       // phase-specific numerator (events/cancels/ops)
  uint64_t counters_fnv = 0;  // rpc phase only: hash of the obs counter dump
};

double wall_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// --- phase 1: timer storm -------------------------------------------------

Task<void> ticker(sim::Simulator& sim, uint64_t seed, uint32_t sleeps) {
  sim::Rng rng(seed);
  for (uint32_t i = 0; i < sleeps; ++i) {
    uint64_t r = rng.next();
    sim::Duration d;
    switch (r % 16) {
      case 0:
        // Beyond the wheel's 2^48 ns span: lands in the overflow heap and
        // is migrated back into the wheel as the cursor catches up.
        d = std::chrono::nanoseconds((r % 86'400'000'000'000ull) +
                                     4 * 86'400'000'000'000ull);
        break;
      case 1:
      case 2:
        d = std::chrono::nanoseconds(r % 10'000'000);  // mid-level slots
        break;
      default:
        d = std::chrono::nanoseconds(r % 4096);  // bottom wheel levels
    }
    co_await sim.sleep(d);
  }
}

PhaseResult run_timer_phase(const Options& opt) {
  sim::Simulator sim;
  for (uint32_t t = 0; t < opt.timer_tasks; ++t)
    sim.spawn(ticker(sim, opt.seed * 1000003ull + t, opt.timers_per_task));
  auto t0 = std::chrono::steady_clock::now();
  sim::Simulator::RunResult r = sim.run();
  PhaseResult res{"timers", r, wall_since(t0), r.events_processed, 0};
  return res;
}

// --- phase 2: shallow storm -----------------------------------------------

Task<void> shallow_ticker(sim::Simulator& sim, uint64_t seed, uint32_t sleeps) {
  sim::Rng rng(seed);
  for (uint32_t i = 0; i < sleeps; ++i)
    co_await sim.sleep(std::chrono::nanoseconds(rng.next() % 2048));
}

PhaseResult run_shallow_phase(const Options& opt) {
  sim::Simulator sim;
  for (uint32_t t = 0; t < opt.shallow_tasks; ++t)
    sim.spawn(shallow_ticker(sim, opt.seed * 900001ull + t,
                             opt.shallow_timers_per_task));
  auto t0 = std::chrono::steady_clock::now();
  sim::Simulator::RunResult r = sim.run();
  return PhaseResult{"shallow", r, wall_since(t0), r.events_processed, 0};
}

// --- phase 3: cancel storm ------------------------------------------------

struct CancelShared {
  sim::WaitQueue q;
  uint64_t notified = 0;
  uint64_t timed_out = 0;
  explicit CancelShared(sim::Simulator& sim) : q(sim) {}
};

Task<void> cancel_waiter(sim::Simulator& sim, CancelShared& sh,
                         uint32_t rounds) {
  for (uint32_t r = 0; r < rounds; ++r) {
    // The driver notifies long before this deadline, so the wait always
    // wins and the deadline timer is always cancelled.
    bool ok = co_await sh.q.wait_until(sim.now() + 1ms);
    if (ok)
      ++sh.notified;
    else
      ++sh.timed_out;
  }
}

Task<void> cancel_driver(sim::Simulator& sim, CancelShared& sh,
                         uint32_t rounds) {
  for (uint32_t r = 0; r < rounds; ++r) {
    // Let every waiter re-link at the current timestamp, then release them.
    co_await sim.sleep(200ns);
    sh.q.notify_all();
  }
}

PhaseResult run_cancel_phase(const Options& opt) {
  sim::Simulator sim;
  CancelShared sh(sim);
  for (uint32_t w = 0; w < opt.cancel_waiters; ++w)
    sim.spawn(cancel_waiter(sim, sh, opt.cancel_rounds));
  sim.spawn(cancel_driver(sim, sh, opt.cancel_rounds));
  auto t0 = std::chrono::steady_clock::now();
  sim::Simulator::RunResult r = sim.run();
  PhaseResult res{"cancels", r, wall_since(t0), r.timers_cancelled, 0};
  // Correctness gate: every wait was notified, every deadline timer was
  // cancelled, and no cancelled timer fired (virtual time never reached the
  // 1ms deadlines — the run ends at rounds * 200ns).
  const uint64_t expect =
      uint64_t(opt.cancel_waiters) * opt.cancel_rounds;
  const sim::Time last_notify{int64_t(opt.cancel_rounds) * 200};
  if (sh.timed_out != 0 || sh.notified != expect ||
      r.timers_cancelled < expect || sim.now() != last_notify) {
    std::fprintf(stderr,
                 "cancel phase violation: notified=%llu/%llu timed_out=%llu "
                 "cancelled=%llu end_ns=%lld (cancelled timer fired?)\n",
                 (unsigned long long)sh.notified, (unsigned long long)expect,
                 (unsigned long long)sh.timed_out,
                 (unsigned long long)r.timers_cancelled,
                 (long long)sim.now().count());
    std::exit(1);
  }
  return res;
}

// --- phase 4: RPC echo ----------------------------------------------------

Task<void> rpc_client(proto::RpcChannel& ch, uint32_t bytes, uint32_t iters) {
  proto::Buffer payload(bytes, std::byte{0x2a});
  for (uint32_t i = 0; i < iters; ++i)
    (co_await ch.call(payload, bytes)).value();
  ch.shutdown();
}

PhaseResult run_rpc_phase(const Options& opt) {
  sim::Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* server = fabric.add_node();
  std::vector<verbs::Node*> clients;
  std::vector<std::unique_ptr<proto::RpcChannel>> channels;
  proto::ChannelConfig cfg;
  cfg.with_poll(sim::PollMode::kBusy);
  proto::Handler echo = [server](proto::View req) -> Task<proto::Buffer> {
    co_await server->cpu().compute(1000ns);
    co_return proto::Buffer(req.begin(), req.end());
  };
  for (uint32_t c = 0; c < opt.rpc_clients; ++c) {
    clients.push_back(fabric.add_node());
    channels.push_back(
        proto::make_channel(proto::ProtocolKind::kEagerSendRecv, *clients[c],
                            *server, echo, cfg));
  }
  const uint32_t per_client = opt.rpc_ops / std::max(1u, opt.rpc_clients);
  for (uint32_t c = 0; c < opt.rpc_clients; ++c)
    sim.spawn(rpc_client(*channels[c], opt.rpc_bytes, per_client));
  auto t0 = std::chrono::steady_clock::now();
  sim::Simulator::RunResult r = sim.run();
  PhaseResult res{"rpc", r, wall_since(t0),
                  uint64_t(per_client) * opt.rpc_clients, 0};
  // The counter dump covers every charge the workload made (doorbells,
  // WQEs, copies...) — one hash pins the whole data path's behavior.
  res.counters_fnv = fnv1a(fabric.obs().counters.dump());
  return res;
}

// --- output ---------------------------------------------------------------

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

double rate(uint64_t units, double secs) {
  return secs > 0 ? double(units) / secs : 0.0;
}

std::string phase_json(const PhaseResult& p) {
  std::string j = std::string("\"") + p.name + "\":{";
  j += "\"wall_s\":" + fmt(p.wall_s);
  j += ",\"units\":" + std::to_string(p.units);
  j += ",\"per_sec\":" + fmt(rate(p.units, p.wall_s));
  j += ",\"virtual_end_ns\":" + std::to_string(p.run.end_time.count());
  j += ",\"events_processed\":" + std::to_string(p.run.events_processed);
  j += ",\"timers_cancelled\":" + std::to_string(p.run.timers_cancelled);
  j += ",\"peak_queue_depth\":" + std::to_string(p.run.peak_queue_depth);
  j += ",\"live_tasks\":" + std::to_string(p.run.live_tasks);
  if (p.counters_fnv) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "\"0x%016llx\"",
                  (unsigned long long)p.counters_fnv);
    j += std::string(",\"counters_fnv\":") + buf;
  }
  j += "}";
  return j;
}

/// Deterministic digest line: everything about the phase EXCEPT wall time.
std::string phase_trace(const PhaseResult& p) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s end_ns=%lld processed=%llu cancelled=%llu peak=%llu "
                "live=%llu units=%llu counters_fnv=0x%016llx\n",
                p.name, (long long)p.run.end_time.count(),
                (unsigned long long)p.run.events_processed,
                (unsigned long long)p.run.timers_cancelled,
                (unsigned long long)p.run.peak_queue_depth,
                (unsigned long long)p.run.live_tasks,
                (unsigned long long)p.units,
                (unsigned long long)p.counters_fnv);
  return buf;
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto eat = [&](const char* flag, auto set) {
      if (a != flag) return false;
      const char* v = next(i);
      if (!v) throw std::runtime_error(a + " needs a value");
      set(v);
      return true;
    };
    bool ok =
        eat("--seed", [&](const char* v) { opt.seed = std::stoull(v); }) ||
        eat("--timer-tasks",
            [&](const char* v) { opt.timer_tasks = std::stoul(v); }) ||
        eat("--timers-per-task",
            [&](const char* v) { opt.timers_per_task = std::stoul(v); }) ||
        eat("--shallow-tasks",
            [&](const char* v) { opt.shallow_tasks = std::stoul(v); }) ||
        eat("--shallow-timers-per-task",
            [&](const char* v) { opt.shallow_timers_per_task = std::stoul(v); }) ||
        eat("--cancel-waiters",
            [&](const char* v) { opt.cancel_waiters = std::stoul(v); }) ||
        eat("--cancel-rounds",
            [&](const char* v) { opt.cancel_rounds = std::stoul(v); }) ||
        eat("--rpc-clients",
            [&](const char* v) { opt.rpc_clients = std::stoul(v); }) ||
        eat("--rpc-ops", [&](const char* v) { opt.rpc_ops = std::stoul(v); }) ||
        eat("--rpc-bytes",
            [&](const char* v) { opt.rpc_bytes = std::stoul(v); }) ||
        eat("--out", [&](const char* v) { opt.out = v; }) ||
        eat("--trace-out", [&](const char* v) { opt.trace_out = v; });
    if (!ok) {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  PhaseResult phases[] = {run_timer_phase(opt), run_shallow_phase(opt),
                          run_cancel_phase(opt), run_rpc_phase(opt)};
  constexpr size_t kPhases = sizeof(phases) / sizeof(phases[0]);

  std::string json = "{\"bench\":\"sim_core\",\"config\":{";
  json += "\"seed\":" + std::to_string(opt.seed);
  json += ",\"timer_tasks\":" + std::to_string(opt.timer_tasks);
  json += ",\"timers_per_task\":" + std::to_string(opt.timers_per_task);
  json += ",\"shallow_tasks\":" + std::to_string(opt.shallow_tasks);
  json += ",\"shallow_timers_per_task\":" +
          std::to_string(opt.shallow_timers_per_task);
  json += ",\"cancel_waiters\":" + std::to_string(opt.cancel_waiters);
  json += ",\"cancel_rounds\":" + std::to_string(opt.cancel_rounds);
  json += ",\"rpc_clients\":" + std::to_string(opt.rpc_clients);
  json += ",\"rpc_ops\":" + std::to_string(opt.rpc_ops);
  json += ",\"rpc_bytes\":" + std::to_string(opt.rpc_bytes);
  json += ",\"frame_arena_pooled\":";
  json += sim::FrameArena::pooling_enabled() ? "true" : "false";
  json += "},";
  std::string trace = "sim_core_trace_v1 seed=" + std::to_string(opt.seed) +
                      "\n";
  for (size_t i = 0; i < kPhases; ++i) {
    if (i) json += ",";
    json += phase_json(phases[i]);
    trace += phase_trace(phases[i]);
    std::printf("%-7s %12llu units in %7.3fs = %12.0f/s  (virtual end %lld ns)\n",
                phases[i].name, (unsigned long long)phases[i].units,
                phases[i].wall_s, rate(phases[i].units, phases[i].wall_s),
                (long long)phases[i].run.end_time.count());
  }
  json += "}\n";
  std::ofstream(opt.out) << json;
  std::printf("wrote %s\n", opt.out.c_str());
  if (!opt.trace_out.empty()) {
    std::ofstream(opt.trace_out) << trace;
    std::printf("wrote %s\n", opt.trace_out.c_str());
  }
  return 0;
}
