// Figure 5 — multi-client aggregate throughput of the RDMA protocols for
// 512 B and 128 KB payloads under under-/full-/over-subscription, busy vs
// event polling. The manual time is the whole scenario's simulated span;
// the `mops` counter is the figure's y-axis.
#include "common.h"

namespace {

using namespace hatbench;

constexpr proto::ProtocolKind kProtocols[] = {
    proto::ProtocolKind::kEagerSendRecv,
    proto::ProtocolKind::kDirectWriteSend,
    proto::ProtocolKind::kChainedWriteSend,
    proto::ProtocolKind::kWriteRndv,
    proto::ProtocolKind::kReadRndv,
    proto::ProtocolKind::kDirectWriteImm,
    proto::ProtocolKind::kPilaf,
    proto::ProtocolKind::kFarm,
    proto::ProtocolKind::kRfp,
    proto::ProtocolKind::kHybridEagerRndv,
};

void throughput_bench(benchmark::State& state, proto::ProtocolKind kind,
                      size_t bytes, int clients, sim::PollMode poll) {
  // Fewer per-client iterations at scale keeps total call counts sane.
  int iters = clients >= 128 ? 10 : (clients >= 28 ? 20 : 40);
  // A window needs enough calls per client to actually fill it.
  iters = std::max<int>(iters, int(2 * bench_window()));
  ThroughputResult r;
  BenchProbe probe;
  for (auto _ : state) {
    r = measure_throughput(kind, bytes, clients, poll, iters,
                           /*numa_bind=*/true, &probe);
    // Achieved throughput = calls over the run's elapsed virtual time (NOT
    // latency x calls, which overstates the span once calls overlap).
    state.SetIterationTime(sim::to_seconds(r.elapsed));
  }
  state.counters["mops"] = r.mops;
  state.counters["clients"] = clients;
  state.counters["window"] = bench_window();
  state.counters["mean_latency_us"] = sim::to_seconds(r.mean_latency) * 1e6;
  probe.report(state);
}

void register_all() {
  for (size_t bytes : {size_t(64), size_t(512), size_t(128 << 10)}) {
    for (auto kind : kProtocols) {
      for (int clients : client_counts()) {
        for (auto poll : {sim::PollMode::kBusy, sim::PollMode::kEvent}) {
          std::string name = "Fig05/" + std::to_string(bytes) + "B/" +
                             std::string(proto::to_string(kind)) + "/c" +
                             std::to_string(clients) + "/" + poll_name(poll);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [kind, bytes, clients, poll](benchmark::State& s) {
                throughput_bench(s, kind, bytes, clients, poll);
              })
              ->UseManualTime()
              ->Iterations(1)
              ->Unit(benchmark::kMillisecond);
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  hatbench::parse_bench_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hatbench::write_trace();
  benchmark::Shutdown();
  return 0;
}
