// Cluster-scale HatKV under seeded faults (DESIGN.md §11): YCSB A/B across
// a sharded, chain-replicated cluster while the FaultPlan crashes a server
// node mid-run and restarts it later. Emits BENCH_cluster.json with
// throughput and latency percentiles per phase (before / during / after the
// crash window), the failover time, and the safety invariants the CI chaos
// job asserts: zero lost acknowledged writes and a clean fabric audit.
//
// Not a google-benchmark binary: the run IS the experiment (one seeded
// timeline), so a plain main with flags keeps same-seed runs byte-identical.
//
//   bench_cluster --shards 8 --rf 2 --server-nodes 8 --client-nodes 100
//                 --records 4000 --seed 1 --workload both
//                 --crash-at-us 1500 --recover-at-us 3000
//                 --run-until-us 6000 --out BENCH_cluster.json

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "kv/cluster.h"
#include "obs/histogram.h"
#include "ycsb/ycsb.h"

namespace {

using namespace hatrpc;
using namespace std::chrono_literals;
using sim::Task;

struct Options {
  uint32_t shards = 8;
  uint32_t rf = 2;
  uint32_t server_nodes = 8;
  uint32_t client_nodes = 100;
  uint64_t records = 4000;
  uint64_t seed = 1;
  std::string workload = "both";  // a | b | both
  // Fault schedule, relative to the start of the run phase (virtual us).
  int64_t crash_at_us = 1500;
  int64_t recover_at_us = 3000;
  int64_t run_until_us = 6000;
  std::string out = "BENCH_cluster.json";
};

struct PhaseStats {
  obs::Histogram lat;
  uint64_t ops = 0;
};

/// Everything the client tasks and the control task share about the
/// seeded timeline.
struct RunShared {
  sim::Time run_start{};
  sim::Time crash_at{};
  sim::Time restart_at{};
  sim::Time run_end{};
  std::optional<sim::Time> recover_done;
  std::set<uint32_t> affected;  // shards whose chain head was the victim
  sim::Event start;             // released once the fault plan is armed
  std::optional<sim::Time> first_recovered_write;
  PhaseStats before, during, after;
  // Acked-write ledger: key -> (highest acked version, its value).
  std::map<std::string, std::pair<uint64_t, std::string>> ledger;
  uint64_t op_errors = 0;

  explicit RunShared(sim::Simulator& sim) : start(sim) {}

  PhaseStats& phase_of(sim::Time t) {
    if (t <= crash_at) return before;
    if (recover_done && t >= *recover_done) return after;
    return during;
  }
};

ycsb::WorkloadSpec spec_for(char workload, uint64_t records) {
  ycsb::WorkloadSpec spec = workload == 'a' ? ycsb::WorkloadSpec::workload_a()
                                            : ycsb::WorkloadSpec::workload_b();
  spec.record_count = records;
  return spec;
}

Task<void> client_task(sim::Simulator& sim, kv::ClusterClient& client,
                       ycsb::WorkloadSpec spec, const kv::ShardMap& routing,
                       uint32_t c, uint32_t clients, RunShared& sh,
                       sim::WaitGroup& loaded, sim::WaitGroup& done) {
  ycsb::WorkloadGenerator gen(spec, uint64_t(c) * 101 + 7);
  sim::Rng vrng(uint64_t(c) * 13 + 1);
  // Load phase: each client loads its stripe of the keyspace.
  for (uint64_t k = c; k < spec.record_count; k += clients) {
    std::string key = gen.key_of(k);
    std::string value = gen.make_value(vrng);
    uint64_t v = co_await client.Put(key, value);
    auto& slot = sh.ledger[key];
    if (v > slot.first) slot = {v, std::move(value)};
  }
  loaded.done();
  co_await sh.start.wait();
  // Run phase: fixed virtual-time window so the crash lands mid-run, kept
  // open past recovery (run_end is stretched when recover() finishes) so
  // the post-recovery phase is always exercised.
  while (sim.now() < sh.run_end || !sh.recover_done) {
    ycsb::Op op = gen.next();
    const sim::Time t0 = sim.now();
    bool wrote = false;
    try {
      switch (op.type) {
        case ycsb::OpType::kGet:
          co_await client.Get(op.keys[0]);
          break;
        case ycsb::OpType::kPut: {
          uint64_t v = co_await client.Put(op.keys[0], op.values[0]);
          auto& slot = sh.ledger[op.keys[0]];
          if (v > slot.first) slot = {v, op.values[0]};
          wrote = true;
          break;
        }
        case ycsb::OpType::kMultiGet:
          co_await client.MultiGet(op.keys);
          break;
        case ycsb::OpType::kMultiPut: {
          std::vector<std::pair<std::string, std::string>> pairs;
          pairs.reserve(op.keys.size());
          for (size_t j = 0; j < op.keys.size(); ++j)
            pairs.emplace_back(op.keys[j], op.values[j]);
          std::vector<uint64_t> versions = co_await client.MultiPut(pairs);
          for (size_t j = 0; j < pairs.size(); ++j) {
            auto& slot = sh.ledger[pairs[j].first];
            if (versions[j] > slot.first)
              slot = {versions[j], pairs[j].second};
          }
          wrote = true;
          break;
        }
      }
    } catch (const std::exception&) {
      ++sh.op_errors;  // an op that exhausted every failover; expect none
      continue;
    }
    const sim::Time t1 = sim.now();
    PhaseStats& ph = sh.phase_of(t1);
    ++ph.ops;
    ph.lat.record(t1 - t0);
    // Failover time: first acknowledged WRITE on a shard that lost its
    // head, measured from the crash instant (reads can ride the live tail
    // one-sided, so only writes prove the chain re-formed).
    if (wrote && t1 > sh.crash_at && !sh.first_recovered_write &&
        sh.affected.count(routing.shard_of(op.keys[0]))) {
      sh.first_recovered_write = t1;
    }
  }
  done.done();
}

struct WorkloadResult {
  char workload;
  Options opt;
  sim::Duration load_span{}, run_span{};
  PhaseStats before, during, after;
  uint64_t total_ops = 0;
  std::optional<sim::Duration> failover_time;
  sim::Duration recovery_span{};  // crash -> recover() finished
  kv::ClusterClient::Stats client_totals;
  uint64_t chain_forwards = 0, replays = 0, resynced = 0;
  uint64_t one_sided_reads = 0, one_sided_fallbacks = 0;
  uint64_t retry_attempts = 0, reconnects = 0, deadline_exceeded = 0;
  uint64_t op_errors = 0, lost_acked_writes = 0, replica_lag = 0;
  uint64_t ledger_size = 0;
  bool audit_clean = false;
  uint64_t audit_violations = 0, leaked_tasks = 0;
  std::vector<std::string> fault_trace;
};

WorkloadResult run_workload(char workload, const Options& opt) {
  sim::Simulator sim;
  verbs::Fabric fabric(sim);
  if (!fabric.check().on())
    fabric.check().set_mode(verbs::VerbsCheck::Mode::kRecord);
  std::vector<verbs::Node*> servers;
  for (uint32_t i = 0; i < opt.server_nodes; ++i)
    servers.push_back(fabric.add_node());
  std::vector<verbs::Node*> client_nodes;
  for (uint32_t i = 0; i < opt.client_nodes; ++i)
    client_nodes.push_back(fabric.add_node());

  kv::ClusterConfig ccfg;
  ccfg.shards = opt.shards;
  ccfg.replication = opt.rf;
  kv::Cluster cluster(fabric, servers, ccfg);
  const kv::ShardMap routing = cluster.map();  // shard_of is epoch-stable

  std::vector<std::unique_ptr<kv::ClusterClient>> clients;
  for (uint32_t c = 0; c < opt.client_nodes; ++c)
    clients.push_back(std::make_unique<kv::ClusterClient>(*client_nodes[c],
                                                          cluster, c + 1));

  RunShared sh(sim);
  sim::WaitGroup loaded(sim), done(sim);
  loaded.add(opt.client_nodes);
  done.add(opt.client_nodes);
  const ycsb::WorkloadSpec spec = spec_for(workload, opt.records);
  for (uint32_t c = 0; c < opt.client_nodes; ++c) {
    sim.spawn(client_task(sim, *clients[c], spec, routing, c,
                          opt.client_nodes, sh, loaded, done));
  }

  WorkloadResult res;
  res.workload = workload;
  res.opt = opt;
  // Created by the control task, destroyed only after sim.run() drains:
  // tearing a client down while its aborted channels' dispatch tasks are
  // still unwinding inside the simulator is a use-after-free.
  std::unique_ptr<kv::ClusterClient> verifier;
  const uint32_t victim = 0;  // cluster-local node index AND fabric node id
  // Control task: arm the fault plan once loading finishes (so the crash
  // deterministically lands mid-run), drive recovery, verify the ledger.
  sim.spawn([](sim::Simulator& sim, verbs::Fabric& fabric,
               kv::Cluster& cluster, RunShared& sh, sim::WaitGroup& loaded,
               sim::WaitGroup& done, const Options& opt, uint32_t victim,
               std::vector<std::unique_ptr<kv::ClusterClient>>& clients,
               std::vector<verbs::Node*>& client_nodes,
               std::unique_ptr<kv::ClusterClient>& verifier,
               WorkloadResult& res) -> Task<void> {
    co_await loaded.wait();
    sh.run_start = sim.now();
    res.load_span = sh.run_start - sim::Time{};
    sh.crash_at = sh.run_start + std::chrono::microseconds(opt.crash_at_us);
    sh.restart_at =
        sh.run_start + std::chrono::microseconds(opt.recover_at_us);
    sh.run_end = sh.run_start + std::chrono::microseconds(opt.run_until_us);
    for (uint32_t s = 0; s < cluster.map().shards.size(); ++s) {
      const auto& chain = cluster.map().shards[s].chain;
      if (!chain.empty() && chain.front().node == victim)
        sh.affected.insert(s);
    }
    auto plan = std::make_unique<verbs::FaultPlan>(opt.seed);
    plan->crash_node_at(cluster.node(victim)->id(), sh.crash_at);
    plan->restart_node_at(cluster.node(victim)->id(), sh.restart_at);
    fabric.set_fault_plan(std::move(plan));
    sh.start.set();

    // Rejoin shortly after the hardware restart fires.
    co_await sim.sleep_until(sh.restart_at + 10us);
    co_await cluster.recover(victim);
    sh.recover_done = sim.now();
    res.recovery_span = *sh.recover_done - sh.crash_at;
    // Resync can outlast the nominal window; stretch the run so the
    // post-recovery phase is always measured for run_until - recover_at.
    sh.run_end = std::max(
        sh.run_end, *sh.recover_done + std::chrono::microseconds(
                                           opt.run_until_us -
                                           opt.recover_at_us));

    co_await done.wait();
    res.run_span = sim.now() - sh.run_start;
    // Quiesce, then verify: every acknowledged write must be readable at
    // its acked (or a newer) version, end-to-end and on every live
    // replica of its chain.
    co_await sim.sleep(200us);
    verifier = std::make_unique<kv::ClusterClient>(*client_nodes[0], cluster,
                                                   1'000'000);
    for (const auto& [key, acked] : sh.ledger) {
      kv::ClusterClient::GetResult got = co_await verifier->Get(key);
      if (!got.found || got.version < acked.first ||
          (got.version == acked.first && got.value != acked.second)) {
        ++res.lost_acked_writes;
      }
      const uint32_t s = cluster.map().shard_of(key);
      for (const auto& r : cluster.map().shards[s].chain) {
        kv::ShardReplica* rep = cluster.replica(s, r.node);
        if (!rep) continue;
        auto rec = rep->handler().peek(key);
        if (!rec || rec->version < acked.first) ++res.replica_lag;
      }
    }
    res.ledger_size = sh.ledger.size();
    verifier->close();
    for (auto& c : clients) c->close();
    cluster.stop();
  }(sim, fabric, cluster, sh, loaded, done, opt, victim, clients,
    client_nodes, verifier, res));

  sim.run();

  res.before = std::move(sh.before);
  res.during = std::move(sh.during);
  res.after = std::move(sh.after);
  res.total_ops = res.before.ops + res.during.ops + res.after.ops;
  if (sh.first_recovered_write)
    res.failover_time = *sh.first_recovered_write - sh.crash_at;
  res.op_errors = sh.op_errors;
  for (auto& c : clients) {
    const kv::ClusterClient::Stats& s = c->stats();
    res.client_totals.ops += s.ops;
    res.client_totals.failovers += s.failovers;
    res.client_totals.one_sided_reads += s.one_sided_reads;
    res.client_totals.one_sided_fallbacks += s.one_sided_fallbacks;
    res.client_totals.map_refreshes += s.map_refreshes;
  }
  auto sum = [&](obs::Ctr ctr) {
    uint64_t t = 0;
    for (verbs::Node* n : servers) t += n->counters().get(ctr);
    for (verbs::Node* n : client_nodes) t += n->counters().get(ctr);
    return t;
  };
  res.chain_forwards = sum(obs::Ctr::kChainForwards);
  res.replays = sum(obs::Ctr::kReplays);
  res.resynced = cluster.resynced_records();
  res.one_sided_reads = sum(obs::Ctr::kOneSidedReads);
  res.one_sided_fallbacks = sum(obs::Ctr::kOneSidedFallbacks);
  res.retry_attempts = sum(obs::Ctr::kRetryAttempts);
  res.reconnects = sum(obs::Ctr::kReconnects);
  res.deadline_exceeded = sum(obs::Ctr::kDeadlineExceeded);
  verbs::AuditReport audit = fabric.audit();
  res.audit_clean = audit.clean();
  res.audit_violations = audit.violations;
  res.leaked_tasks = sim.live_tasks();
  if (fabric.fault_plan()) res.fault_trace = fabric.fault_plan()->trace();
  return res;
}

// --- JSON emission (hand-rolled: deterministic field order + formatting) --

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

double kops(uint64_t ops, sim::Duration span) {
  double secs = sim::to_seconds(span);
  return secs > 0 ? double(ops) / secs / 1e3 : 0.0;
}

std::string phase_json(const char* name, const PhaseStats& ph,
                       sim::Duration span) {
  std::string j = std::string("\"") + name + "\":{";
  j += "\"ops\":" + std::to_string(ph.ops);
  j += ",\"kops\":" + fmt(kops(ph.ops, span));
  j += ",\"p50_us\":" + fmt(double(ph.lat.percentile_ns(0.50)) / 1e3);
  j += ",\"p99_us\":" + fmt(double(ph.lat.percentile_ns(0.99)) / 1e3);
  j += ",\"mean_us\":" + fmt(ph.lat.mean_ns() / 1e3);
  j += "}";
  return j;
}

std::string workload_json(const WorkloadResult& r) {
  const Options& o = r.opt;
  std::string j = "{";
  j += std::string("\"workload\":\"") + r.workload + "\"";
  j += ",\"config\":{";
  j += "\"shards\":" + std::to_string(o.shards);
  j += ",\"replication\":" + std::to_string(o.rf);
  j += ",\"server_nodes\":" + std::to_string(o.server_nodes);
  j += ",\"client_nodes\":" + std::to_string(o.client_nodes);
  j += ",\"records\":" + std::to_string(o.records);
  j += ",\"seed\":" + std::to_string(o.seed);
  j += ",\"crash_at_us\":" + std::to_string(o.crash_at_us);
  j += ",\"recover_at_us\":" + std::to_string(o.recover_at_us);
  j += ",\"run_until_us\":" + std::to_string(o.run_until_us);
  j += "}";
  j += ",\"totals\":{";
  j += "\"ops\":" + std::to_string(r.total_ops);
  j += ",\"kops\":" + fmt(kops(r.total_ops, r.run_span));
  j += ",\"load_span_us\":" + fmt(sim::to_micros(r.load_span));
  j += ",\"run_span_us\":" + fmt(sim::to_micros(r.run_span));
  j += ",\"failovers\":" + std::to_string(r.client_totals.failovers);
  j += ",\"map_refreshes\":" + std::to_string(r.client_totals.map_refreshes);
  j += ",\"one_sided_reads\":" + std::to_string(r.one_sided_reads);
  j += ",\"one_sided_fallbacks\":" + std::to_string(r.one_sided_fallbacks);
  j += ",\"chain_forwards\":" + std::to_string(r.chain_forwards);
  j += ",\"replays\":" + std::to_string(r.replays);
  j += ",\"resynced_records\":" + std::to_string(r.resynced);
  j += ",\"retry_attempts\":" + std::to_string(r.retry_attempts);
  j += ",\"reconnects\":" + std::to_string(r.reconnects);
  j += ",\"deadline_exceeded\":" + std::to_string(r.deadline_exceeded);
  j += "}";
  const sim::Duration before_span =
      std::chrono::microseconds(o.crash_at_us);
  const sim::Duration during_span = r.recovery_span;
  sim::Duration after_span = r.run_span - before_span - during_span;
  if (after_span < sim::Duration::zero())
    after_span = sim::Duration::zero();
  j += ",\"phases\":{";
  j += phase_json("before", r.before, before_span);
  j += "," + phase_json("during", r.during, during_span);
  j += "," + phase_json("after", r.after, after_span);
  j += "}";
  j += ",\"failover\":{";
  j += "\"detected\":" +
       std::string(r.failover_time ? "true" : "false");
  j += ",\"first_write_after_crash_us\":" +
       (r.failover_time ? fmt(sim::to_micros(*r.failover_time)) : "null");
  j += ",\"recovery_span_us\":" + fmt(sim::to_micros(r.recovery_span));
  j += "}";
  j += ",\"invariants\":{";
  j += "\"acked_writes\":" + std::to_string(r.ledger_size);
  j += ",\"lost_acked_writes\":" + std::to_string(r.lost_acked_writes);
  j += ",\"replica_lag\":" + std::to_string(r.replica_lag);
  j += ",\"op_errors\":" + std::to_string(r.op_errors);
  j += ",\"audit_clean\":" + std::string(r.audit_clean ? "true" : "false");
  j += ",\"audit_violations\":" + std::to_string(r.audit_violations);
  j += ",\"leaked_tasks\":" + std::to_string(r.leaked_tasks);
  j += ",\"fault_trace\":[";
  for (size_t i = 0; i < r.fault_trace.size(); ++i) {
    if (i) j += ",";
    j += "\"" + json_escape(r.fault_trace[i]) + "\"";
  }
  j += "]}";
  j += "}";
  return j;
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto eat = [&](const char* flag, auto set) {
      if (a != flag) return false;
      const char* v = next(i);
      if (!v) throw std::runtime_error(a + " needs a value");
      set(v);
      return true;
    };
    bool ok =
        eat("--shards", [&](const char* v) { opt.shards = std::stoul(v); }) ||
        eat("--rf", [&](const char* v) { opt.rf = std::stoul(v); }) ||
        eat("--server-nodes",
            [&](const char* v) { opt.server_nodes = std::stoul(v); }) ||
        eat("--client-nodes",
            [&](const char* v) { opt.client_nodes = std::stoul(v); }) ||
        eat("--records", [&](const char* v) { opt.records = std::stoull(v); }) ||
        eat("--seed", [&](const char* v) { opt.seed = std::stoull(v); }) ||
        eat("--workload", [&](const char* v) { opt.workload = v; }) ||
        eat("--crash-at-us",
            [&](const char* v) { opt.crash_at_us = std::stoll(v); }) ||
        eat("--recover-at-us",
            [&](const char* v) { opt.recover_at_us = std::stoll(v); }) ||
        eat("--run-until-us",
            [&](const char* v) { opt.run_until_us = std::stoll(v); }) ||
        eat("--out", [&](const char* v) { opt.out = v; });
    if (!ok) {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  if (opt.workload != "a" && opt.workload != "b" && opt.workload != "both") {
    std::fprintf(stderr, "--workload must be a, b, or both\n");
    return false;
  }
  if (opt.crash_at_us >= opt.recover_at_us ||
      opt.recover_at_us >= opt.run_until_us) {
    std::fprintf(stderr,
                 "need crash-at-us < recover-at-us < run-until-us\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;
  std::vector<char> workloads;
  if (opt.workload == "both")
    workloads = {'a', 'b'};
  else
    workloads = {opt.workload[0]};

  std::string json = "{\"bench\":\"cluster\",\"workloads\":[";
  bool any_lost = false, any_dirty_audit = false;
  for (size_t i = 0; i < workloads.size(); ++i) {
    WorkloadResult r = run_workload(workloads[i], opt);
    if (i) json += ",";
    json += workload_json(r);
    any_lost |= r.lost_acked_writes != 0 || r.replica_lag != 0 ||
                r.op_errors != 0;
    any_dirty_audit |= !r.audit_clean;
    std::printf(
        "workload %c: ops=%llu kops=%s failovers=%llu "
        "failover_first_write_us=%s lost_acked_writes=%llu "
        "replica_lag=%llu audit=%s\n",
        r.workload, static_cast<unsigned long long>(r.total_ops),
        fmt(kops(r.total_ops, r.run_span)).c_str(),
        static_cast<unsigned long long>(r.client_totals.failovers),
        r.failover_time ? fmt(sim::to_micros(*r.failover_time)).c_str()
                        : "n/a",
        static_cast<unsigned long long>(r.lost_acked_writes),
        static_cast<unsigned long long>(r.replica_lag),
        r.audit_clean ? "clean" : "DIRTY");
  }
  json += "]}\n";
  std::ofstream(opt.out) << json;
  std::printf("wrote %s\n", opt.out.c_str());
  if (any_lost || any_dirty_audit) {
    std::fprintf(stderr, "INVARIANT VIOLATION (see %s)\n", opt.out.c_str());
    return 1;
  }
  return 0;
}
