// Figure 12 — ATB aggregated throughput with service-level hints
// (perf_goal=throughput, payload_size, NUMA binding under-subscription):
// HatRPC re-derives its plan per client count (switching to RFP + event
// polling above the concurrency threshold 16 for large payloads, §5.2)
// against the four fixed baselines.
#include "common.h"

namespace {

using namespace hatbench;

const std::pair<const char*, proto::ProtocolKind> kBaselines[] = {
    {"Hybrid-EagerRNDV", proto::ProtocolKind::kHybridEagerRndv},
    {"Direct-Write-Send", proto::ProtocolKind::kDirectWriteSend},
    {"RFP", proto::ProtocolKind::kRfp},
    {"Direct-WriteIMM", proto::ProtocolKind::kDirectWriteImm},
};

int iters_for(int clients) {
  return clients >= 128 ? 10 : (clients >= 28 ? 20 : 40);
}

void baseline_bench(benchmark::State& state, proto::ProtocolKind kind,
                    size_t bytes, int clients) {
  ThroughputResult r;
  for (auto _ : state) {
    r = measure_throughput(kind, bytes, clients, sim::PollMode::kBusy,
                           iters_for(clients), /*numa_bind=*/true);
    state.SetIterationTime(sim::to_seconds(
        r.mean_latency * int64_t(clients) * iters_for(clients)));
  }
  state.counters["mops"] = r.mops;
}

void hatrpc_bench(benchmark::State& state, size_t bytes, int clients) {
  hint::Plan plan = hatrpc_plan(hint::PerfGoal::kThroughput,
                                uint32_t(clients), uint32_t(bytes));
  ThroughputResult r;
  for (auto _ : state) {
    r = measure_throughput(plan.protocol, bytes, clients, plan.client_poll,
                           iters_for(clients), plan.numa_bind);
    state.SetIterationTime(sim::to_seconds(
        r.mean_latency * int64_t(clients) * iters_for(clients)));
  }
  state.counters["mops"] = r.mops;
  state.SetLabel(std::string(proto::to_string(plan.protocol)) + "+" +
                 poll_name(plan.client_poll));
}

void register_all() {
  for (size_t bytes : {size_t(512), size_t(128 << 10)}) {
    for (int clients : client_counts()) {
      std::string suffix =
          std::to_string(bytes) + "B/c" + std::to_string(clients);
      benchmark::RegisterBenchmark(
          ("Fig12/HatRPC/" + suffix).c_str(),
          [bytes, clients](benchmark::State& s) {
            hatrpc_bench(s, bytes, clients);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
      for (auto [label, kind] : kBaselines) {
        benchmark::RegisterBenchmark(
            ("Fig12/" + std::string(label) + "/" + suffix).c_str(),
            [kind, bytes, clients](benchmark::State& s) {
              baseline_bench(s, kind, bytes, clients);
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
