// Figure 15 — YCSB workload A (25/25/25/25 GET/PUT/MultiGET/MultiPUT) on
// HatKV with 128 clients: HatRPC-Function / HatRPC-Service vs the emulated
// AR-gRPC, HERD, Pilaf, and RFP, sharing one mdblite backend. Counters
// report per-operation throughput (kops) and mean latency (us) — the two
// panels of the figure.
#include "ycsb_bench.h"

int main(int argc, char** argv) {
  hatrpc::ycsb::WorkloadSpec spec = hatrpc::ycsb::WorkloadSpec::workload_a();
  spec.record_count = 2000;
  hatbench::register_ycsb("Fig15_YCSB_A", spec);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
