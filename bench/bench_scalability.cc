// Scalability study (ROADMAP item 3 / DESIGN.md §13): one RDMA server,
// sharded per core, under a 1→1024-client closed-loop sweep. Each config is
// a fresh deterministic simulation: clients (event-polled, spread over
// client nodes) drive Direct-WriteIMM channels against a TServerRdma whose
// shard count, polling discipline and per-channel window are swept. The
// handler charges its compute on the shard's pinned core, so the run
// reproduces the three regimes the CPU model predicts:
//
//   knee      per-shard scaling stops when the pinned cores saturate
//             (concurrent handlers on one core stretch under processor
//             sharing);
//   collapse  busy-polling shards > physical cores — two spinners time-slice
//             one core, and throughput drops below the peak;
//   crossover past the collapse point event polling (which frees the core
//             between completions) overtakes busy polling.
//
// Not a google-benchmark binary: same-seed runs must be byte-identical, so
// the JSON contains only virtual-time-derived numbers (wall-clock goes to
// stdout only) and CI cmp's two runs of the reduced sweep.
//
//   bench_scalability --seed 1 --out BENCH_scalability.json
//     [--clients 1,4,...] [--windows 1,32] [--shards 0,1,...]
//     [--ops-per-client 40] [--bytes 128]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/sync.h"
#include "thrift/rdma.h"
#include "verbs/fabric.h"

namespace {

using namespace hatrpc;
using namespace std::chrono_literals;
using sim::Task;

struct Options {
  uint64_t seed = 1;
  std::vector<uint32_t> clients = {1, 4, 16, 64, 256, 1024};
  std::vector<uint32_t> windows = {1, 32};
  // 0 = the legacy unsharded server (pre-sharding baseline); the tail value
  // over-subscribes the 28 simulated cores to provoke the collapse.
  std::vector<uint32_t> shards = {0, 1, 4, 8, 16, 28, 56};
  uint32_t ops_per_client = 40;
  uint32_t bytes = 128;
  uint32_t max_msg = 1024;
  uint32_t clients_per_node = 8;
  std::string out = "BENCH_scalability.json";
};

struct Row {
  uint32_t shards = 0;
  sim::PollMode mode = sim::PollMode::kBusy;
  uint32_t window = 1;
  uint32_t clients = 1;
  uint64_t calls = 0;
  sim::Time end{};
  double mops = 0;
  double mean_lat_us = 0;
  uint64_t shard_accepts = 0;
  uint64_t shard_polls = 0;
  uint64_t window_stalls = 0;
  double wall_s = 0;  // stdout only, never serialized
};

const char* mode_name(sim::PollMode m) {
  return m == sim::PollMode::kBusy ? "busy" : "event";
}

// Handler compute pinned to the shard's core (-1 = legacy floating): a fixed
// dispatch cost plus a payload-proportional term, the same work model the
// figure benchmarks use.
proto::Handler pinned_handler(verbs::Node& server, int core) {
  return [&server, core](proto::View req) -> Task<proto::Buffer> {
    co_await server.cpu().compute(
        1000ns + sim::transfer_time(req.size(), 20.0), core);
    co_return proto::Buffer(req.begin(), req.end());
  };
}

Row run_config(const Options& opt, uint32_t shards, sim::PollMode mode,
               uint32_t window, uint32_t clients) {
  sim::Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* server = fabric.add_node();
  std::vector<verbs::Node*> client_nodes;
  const uint32_t nodes =
      (clients + opt.clients_per_node - 1) / opt.clients_per_node;
  for (uint32_t n = 0; n < std::max(1u, nodes); ++n)
    client_nodes.push_back(fabric.add_node());

  thrift::TServerRdma::Options so;
  so.shards = shards;
  so.steering = thrift::Steering::kRoundRobin;
  so.bind_cores = shards > 0;
  // Per-SRQ depth covers the shard's worst-case concurrent inbound burst
  // (its share of the connections, window deep each); channels replenish
  // consumed tokens, so the depth never needs to grow mid-run.
  const uint32_t per_shard_conns =
      shards > 0 ? (clients + shards - 1) / shards : clients;
  so.srq_depth = per_shard_conns * window + 64;

  std::optional<thrift::TServerRdma> srv;
  if (shards == 0) {
    srv.emplace(*server, pinned_handler(*server, -1), so);
  } else {
    thrift::TServerRdma::ShardProcessorFactory factory =
        [server](uint32_t, int core, proto::BufferPool*) {
          return pinned_handler(*server, core);
        };
    srv.emplace(*server, factory, so);
  }

  proto::ChannelConfig cfg;
  cfg.with_client_poll(sim::PollMode::kEvent)  // keep client CPU out of the
      .with_server_poll(mode)                  // study; sweep the server side
      .with_window(window)
      .with_max_msg(opt.max_msg);
  std::vector<thrift::TRdmaEndPoint*> eps;
  for (uint32_t c = 0; c < clients; ++c)
    eps.push_back(srv->accept(*client_nodes[c / opt.clients_per_node],
                              proto::ProtocolKind::kDirectWriteImm, cfg));

  // A window needs enough calls per client to actually fill it.
  const uint32_t iters = std::max(opt.ops_per_client, 2 * window);
  sim::WaitGroup wg(sim);
  sim::Duration lat_sum{};
  const std::byte fill{uint8_t(0x2a ^ (opt.seed & 0xff))};
  for (uint32_t c = 0; c < clients; ++c) {
    for (uint32_t l = 0; l < window; ++l) {
      uint32_t lane_iters = iters / window + (l < iters % window ? 1 : 0);
      if (lane_iters == 0) continue;
      wg.add(1);
      sim.spawn([](sim::Simulator& sim, proto::RpcChannel& ch, uint32_t bytes,
                   std::byte fill, uint32_t lane_iters, sim::WaitGroup& wg,
                   sim::Duration& lat_sum) -> Task<void> {
        proto::Buffer payload(bytes, fill);
        for (uint32_t i = 0; i < lane_iters; ++i) {
          sim::Time c0 = sim.now();
          (co_await ch.call(payload, bytes)).value();
          lat_sum += sim.now() - c0;
        }
        wg.done();
      }(sim, eps[c]->channel(), opt.bytes, fill, lane_iters, wg, lat_sum));
    }
  }
  sim::Time end{};
  sim.spawn([](sim::Simulator& sim, sim::WaitGroup& wg, sim::Time& end,
               thrift::TServerRdma& srv) -> Task<void> {
    co_await wg.wait();
    end = sim.now();
    srv.stop();
  }(sim, wg, end, *srv));

  auto t0 = std::chrono::steady_clock::now();
  sim.run();

  Row row;
  row.shards = shards;
  row.mode = mode;
  row.window = window;
  row.clients = clients;
  row.calls = uint64_t(clients) * iters;
  row.end = end;
  double secs = sim::to_seconds(end);
  row.mops = secs > 0 ? double(row.calls) / secs / 1e6 : 0;
  row.mean_lat_us =
      sim::to_seconds(lat_sum / int64_t(row.calls ? row.calls : 1)) * 1e6;
  auto& counters = fabric.obs().counters;
  row.shard_accepts = counters.shard_total(obs::Ctr::kShardAccepts);
  row.shard_polls = counters.shard_total(obs::Ctr::kShardPolls);
  row.window_stalls = counters.shard_total(obs::Ctr::kWindowStalls);
  row.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
  return row;
}

// --- analysis -------------------------------------------------------------

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

using SeriesKey = std::tuple<uint32_t, sim::PollMode, uint32_t>;  // shards,
                                                                  // mode, win

/// First client count whose throughput falls below 80% of the linear
/// extrapolation from the smallest point — the saturation knee. 0 = the
/// series stayed linear over the swept range.
uint32_t find_knee(const std::vector<const Row*>& pts) {
  if (pts.size() < 2 || pts.front()->mops <= 0) return 0;
  const double base = pts.front()->mops / pts.front()->clients;
  for (size_t i = 1; i < pts.size(); ++i) {
    double linear = base * pts[i]->clients;
    if (pts[i]->mops < 0.8 * linear) return pts[i]->clients;
  }
  return 0;
}

bool parse_list(const char* v, std::vector<uint32_t>& out) {
  out.clear();
  const char* p = v;
  while (*p) {
    char* endp = nullptr;
    unsigned long x = std::strtoul(p, &endp, 10);
    if (endp == p) return false;
    out.push_back(uint32_t(x));
    p = *endp == ',' ? endp + 1 : endp;
    if (*endp && *endp != ',') return false;
  }
  return !out.empty();
}

std::string list_json(const std::vector<uint32_t>& v) {
  std::string j = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) j += ",";
    j += std::to_string(v[i]);
  }
  return j + "]";
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto eat = [&](const char* flag, auto set) {
      if (a != flag) return false;
      const char* v = next(i);
      if (!v) throw std::runtime_error(a + " needs a value");
      set(v);
      return true;
    };
    bool ok =
        eat("--seed", [&](const char* v) { opt.seed = std::stoull(v); }) ||
        eat("--clients",
            [&](const char* v) {
              if (!parse_list(v, opt.clients))
                throw std::runtime_error("bad --clients list");
            }) ||
        eat("--windows",
            [&](const char* v) {
              if (!parse_list(v, opt.windows))
                throw std::runtime_error("bad --windows list");
            }) ||
        eat("--shards",
            [&](const char* v) {
              if (!parse_list(v, opt.shards))
                throw std::runtime_error("bad --shards list");
            }) ||
        eat("--ops-per-client",
            [&](const char* v) { opt.ops_per_client = std::stoul(v); }) ||
        eat("--bytes", [&](const char* v) { opt.bytes = std::stoul(v); }) ||
        eat("--max-msg",
            [&](const char* v) { opt.max_msg = std::stoul(v); }) ||
        eat("--out", [&](const char* v) { opt.out = v; });
    if (!ok) {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  std::vector<Row> rows;
  double wall_total = 0;
  for (uint32_t shards : opt.shards) {
    for (sim::PollMode mode : {sim::PollMode::kBusy, sim::PollMode::kEvent}) {
      for (uint32_t window : opt.windows) {
        for (uint32_t clients : opt.clients) {
          Row r = run_config(opt, shards, mode, window, clients);
          wall_total += r.wall_s;
          std::printf(
              "shards=%-3u %-5s w=%-3u c=%-5u  %8.4f Mops  "
              "lat=%9.2fus  stalls=%-8llu (%.2fs wall)\n",
              r.shards, mode_name(r.mode), r.window, r.clients, r.mops,
              r.mean_lat_us, (unsigned long long)r.window_stalls, r.wall_s);
          rows.push_back(std::move(r));
        }
      }
    }
  }

  // Group into (shards, mode, window) series ordered by client count; the
  // sweep above already emits clients in ascending order per series.
  std::map<SeriesKey, std::vector<const Row*>> series;
  for (const Row& r : rows)
    series[{r.shards, r.mode, r.window}].push_back(&r);

  std::string json = "{\"bench\":\"scalability\",\"config\":{";
  json += "\"seed\":" + std::to_string(opt.seed);
  json += ",\"clients\":" + list_json(opt.clients);
  json += ",\"windows\":" + list_json(opt.windows);
  json += ",\"shards\":" + list_json(opt.shards);
  json += ",\"ops_per_client\":" + std::to_string(opt.ops_per_client);
  json += ",\"bytes\":" + std::to_string(opt.bytes);
  json += ",\"max_msg\":" + std::to_string(opt.max_msg);
  json += ",\"cores\":28";
  json += "},\"series\":[";
  bool first = true;
  for (const auto& [key, pts] : series) {
    if (!first) json += ",";
    first = false;
    json += "{\"shards\":" + std::to_string(std::get<0>(key));
    json += std::string(",\"mode\":\"") + mode_name(std::get<1>(key)) + "\"";
    json += ",\"window\":" + std::to_string(std::get<2>(key));
    json += ",\"points\":[";
    for (size_t i = 0; i < pts.size(); ++i) {
      const Row& r = *pts[i];
      if (i) json += ",";
      json += "{\"clients\":" + std::to_string(r.clients);
      json += ",\"mops\":" + fmt(r.mops);
      json += ",\"mean_lat_us\":" + fmt(r.mean_lat_us);
      json += ",\"end_ns\":" + std::to_string(r.end.count());
      json += ",\"calls\":" + std::to_string(r.calls);
      json += ",\"shard_accepts\":" + std::to_string(r.shard_accepts);
      json += ",\"shard_polls\":" + std::to_string(r.shard_polls);
      json += ",\"window_stalls\":" + std::to_string(r.window_stalls);
      json += "}";
    }
    json += "]}";
  }
  json += "],\"analysis\":{";

  // Knee per series: where linear client scaling stops.
  json += "\"knees\":[";
  first = true;
  for (const auto& [key, pts] : series) {
    if (!first) json += ",";
    first = false;
    const Row* peak = pts.front();
    for (const Row* p : pts)
      if (p->mops > peak->mops) peak = p;
    uint32_t knee = find_knee(pts);
    json += "{\"shards\":" + std::to_string(std::get<0>(key));
    json += std::string(",\"mode\":\"") + mode_name(std::get<1>(key)) + "\"";
    json += ",\"window\":" + std::to_string(std::get<2>(key));
    json += ",\"knee_clients\":" + std::to_string(knee);
    json += ",\"peak_mops\":" + fmt(peak->mops);
    json += ",\"peak_clients\":" + std::to_string(peak->clients);
    json += "}";
  }
  json += "]";

  // Over-subscription collapse: at the largest client count, compare the
  // best shard count against the largest (over-subscribed) one.
  const uint32_t cmax = opt.clients.back();
  json += ",\"collapse\":[";
  first = true;
  for (sim::PollMode mode : {sim::PollMode::kBusy, sim::PollMode::kEvent}) {
    for (uint32_t window : opt.windows) {
      uint32_t peak_shards = 0, over_shards = 0;
      double peak_mops = 0, over_mops = 0;
      for (uint32_t shards : opt.shards) {
        auto it = series.find({shards, mode, window});
        if (it == series.end()) continue;
        for (const Row* p : it->second) {
          if (p->clients != cmax) continue;
          if (p->mops > peak_mops) {
            peak_mops = p->mops;
            peak_shards = shards;
          }
          if (shards >= over_shards) {
            over_shards = shards;
            over_mops = p->mops;
          }
        }
      }
      if (!first) json += ",";
      first = false;
      bool collapsed = over_shards > peak_shards && over_mops < 0.7 * peak_mops;
      json += std::string("{\"mode\":\"") + mode_name(mode) + "\"";
      json += ",\"window\":" + std::to_string(window);
      json += ",\"clients\":" + std::to_string(cmax);
      json += ",\"peak_shards\":" + std::to_string(peak_shards);
      json += ",\"peak_mops\":" + fmt(peak_mops);
      json += ",\"oversub_shards\":" + std::to_string(over_shards);
      json += ",\"oversub_mops\":" + fmt(over_mops);
      json += std::string(",\"collapsed\":") + (collapsed ? "true" : "false");
      json += "}";
    }
  }
  json += "]";

  // Event-vs-busy crossover on the over-subscribed shard count: the client
  // count where freeing the core between completions starts to win.
  const uint32_t smax = opt.shards.back();
  json += ",\"event_vs_busy_oversub\":[";
  first = true;
  for (uint32_t window : opt.windows) {
    auto bi = series.find({smax, sim::PollMode::kBusy, window});
    auto ei = series.find({smax, sim::PollMode::kEvent, window});
    uint32_t crossover = 0;
    if (bi != series.end() && ei != series.end()) {
      for (size_t i = 0; i < bi->second.size() && i < ei->second.size(); ++i) {
        if (ei->second[i]->mops > bi->second[i]->mops) {
          crossover = ei->second[i]->clients;
          break;
        }
      }
    }
    if (!first) json += ",";
    first = false;
    json += "{\"shards\":" + std::to_string(smax);
    json += ",\"window\":" + std::to_string(window);
    json += ",\"crossover_clients\":" + std::to_string(crossover);
    json += "}";
  }
  json += "]}}\n";

  std::ofstream(opt.out) << json;
  std::printf("wrote %s (%.1fs simulated wall total)\n", opt.out.c_str(),
              wall_total);
  return 0;
}
