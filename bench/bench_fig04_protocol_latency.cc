// Figure 4 — RPC-like communication latency of the nine RDMA protocols
// (plus the hybrid baseline), for busy and event CQ polling, across the
// payload ladder. One benchmark row per (protocol, size, polling); the
// reported manual time is the simulated per-call latency.
#include "common.h"

namespace {

using namespace hatbench;

constexpr proto::ProtocolKind kProtocols[] = {
    proto::ProtocolKind::kEagerSendRecv,
    proto::ProtocolKind::kDirectWriteSend,
    proto::ProtocolKind::kChainedWriteSend,
    proto::ProtocolKind::kWriteRndv,
    proto::ProtocolKind::kReadRndv,
    proto::ProtocolKind::kDirectWriteImm,
    proto::ProtocolKind::kPilaf,
    proto::ProtocolKind::kFarm,
    proto::ProtocolKind::kRfp,
    proto::ProtocolKind::kHybridEagerRndv,
};

void latency_bench(benchmark::State& state, proto::ProtocolKind kind,
                   size_t bytes, sim::PollMode poll) {
  sim::Duration lat{};
  BenchProbe probe;
  for (auto _ : state) {
    lat = measure_latency(kind, bytes, poll, /*iters=*/64,
                          /*numa_local=*/true, &probe);
    state.SetIterationTime(sim::to_seconds(lat));
  }
  state.counters["latency_us"] = sim::to_micros(lat);
  probe.report(state);
}

void register_all() {
  for (auto kind : kProtocols) {
    for (size_t bytes : latency_sizes()) {
      for (auto poll : {sim::PollMode::kBusy, sim::PollMode::kEvent}) {
        std::string name = "Fig04/" + std::string(proto::to_string(kind)) +
                           "/" + std::to_string(bytes) + "B/" +
                           poll_name(poll);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [kind, bytes, poll](benchmark::State& s) {
              latency_bench(s, kind, bytes, poll);
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  hatbench::parse_bench_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  hatbench::write_trace();
  benchmark::Shutdown();
  return 0;
}
