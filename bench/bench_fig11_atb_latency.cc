// Figure 11 — ATB latency benchmark with service-level hints: HatRPC
// (plan selected from perf_goal=latency, concurrency=1, payload_size=<n>)
// against Hybrid-EagerRNDV, Direct-Write-Send, RFP, and Direct-WriteIMM,
// across the payload ladder. Expected shape (§5.2): HatRPC tracks
// Direct-WriteIMM within a few percent and beats the others at all sizes.
#include "common.h"

namespace {

using namespace hatbench;

const std::pair<const char*, proto::ProtocolKind> kBaselines[] = {
    {"Hybrid-EagerRNDV", proto::ProtocolKind::kHybridEagerRndv},
    {"Direct-Write-Send", proto::ProtocolKind::kDirectWriteSend},
    {"RFP", proto::ProtocolKind::kRfp},
    {"Direct-WriteIMM", proto::ProtocolKind::kDirectWriteImm},
};

void baseline_bench(benchmark::State& state, proto::ProtocolKind kind,
                    size_t bytes) {
  sim::Duration lat{};
  for (auto _ : state) {
    lat = measure_latency(kind, bytes, sim::PollMode::kBusy);
    state.SetIterationTime(sim::to_seconds(lat));
  }
  state.counters["latency_us"] = sim::to_micros(lat);
}

void hatrpc_bench(benchmark::State& state, size_t bytes) {
  // Service-level hints: perf_goal=latency, concurrency=1, payload_size.
  hint::Plan plan = hatrpc_plan(hint::PerfGoal::kLatency, 1,
                                uint32_t(bytes));
  sim::Duration lat{};
  for (auto _ : state) {
    lat = measure_latency(plan.protocol, bytes, plan.client_poll);
    state.SetIterationTime(sim::to_seconds(lat));
  }
  state.counters["latency_us"] = sim::to_micros(lat);
  state.SetLabel(std::string(proto::to_string(plan.protocol)));
}

void register_all() {
  for (size_t bytes : latency_sizes()) {
    std::string hat = "Fig11/HatRPC/" + std::to_string(bytes) + "B";
    benchmark::RegisterBenchmark(hat.c_str(),
                                 [bytes](benchmark::State& s) {
                                   hatrpc_bench(s, bytes);
                                 })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);
    for (auto [label, kind] : kBaselines) {
      std::string name =
          "Fig11/" + std::string(label) + "/" + std::to_string(bytes) + "B";
      benchmark::RegisterBenchmark(
          name.c_str(),
          [kind, bytes](benchmark::State& s) {
            baseline_bench(s, kind, bytes);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
