// Shared harness for the figure benchmarks.
//
// All timing is SIMULATED time: each scenario builds a fresh deterministic
// simulation, runs it to completion, and reports virtual durations through
// google-benchmark's manual-time mode (so the printed "Time" column is
// virtual microseconds, reproducible to the nanosecond across runs).
//
// Topology mirrors the paper's testbed (§5.1): one server node and up to
// nine client nodes of 28 cores each, connected by the simulated EDR
// fabric. Clients are spread round-robin over the client nodes; NUMA
// binding is applied only when a scenario says so.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <vector>

#include "hint/selection.h"
#include "proto/channel.h"
#include "sim/rng.h"

namespace hatbench {

using namespace hatrpc;
using sim::Task;
using namespace std::chrono_literals;

constexpr int kClientNodes = 9;  // paper: 10-node cluster, 1 server

/// The payload ladder of Figs. 4 and 11.
inline const std::vector<size_t>& latency_sizes() {
  static const std::vector<size_t> sizes{4,    64,    512,   4096,
                                         16384, 65536, 262144, 524288};
  return sizes;
}

/// Client-count ladder of Figs. 5 and 12-14 (under / full / over
/// subscription splits at 16 and 28).
inline const std::vector<int>& client_counts() {
  static const std::vector<int> counts{1, 4, 16, 28, 64, 128, 256, 512};
  return counts;
}

struct Testbed {
  sim::Simulator sim;
  verbs::Fabric fabric{sim};
  verbs::Node* server = nullptr;
  std::vector<verbs::Node*> client_nodes;

  Testbed() {
    server = fabric.add_node();
    for (int i = 0; i < kClientNodes; ++i)
      client_nodes.push_back(fabric.add_node());
  }

  verbs::Node* client_node(int client_index) {
    return client_nodes[size_t(client_index) % client_nodes.size()];
  }
};

/// Echo-with-checksum handler (the ATB server work model: Thrift processor
/// dispatch + a checksum whose cost grows with payload, §5.3).
inline proto::Handler checksum_handler(verbs::Node& server,
                                       bool echo_payload = true) {
  return [&server, echo_payload](proto::View req) -> Task<proto::Buffer> {
    co_await server.cpu().compute(1000ns +
                                  sim::transfer_time(req.size(), 20.0));
    if (echo_payload) co_return proto::Buffer(req.begin(), req.end());
    co_return proto::Buffer(8);
  };
}

/// Single-client mean RPC latency over `iters` calls.
inline sim::Duration measure_latency(proto::ProtocolKind kind, size_t bytes,
                                     sim::PollMode poll, int iters = 64,
                                     bool numa_local = true) {
  Testbed bed;
  proto::ChannelConfig cfg;
  cfg.client_poll = poll;
  cfg.server_poll = poll;
  cfg.max_msg = std::max<uint32_t>(64 << 10, uint32_t(bytes) * 2);
  cfg.client_numa_local = numa_local;
  cfg.server_numa_local = numa_local;
  auto ch = proto::make_channel(kind, *bed.client_node(0), *bed.server,
                                checksum_handler(*bed.server), cfg);
  sim::Time total{};
  bed.sim.spawn([](Testbed& bed, proto::RpcChannel& ch, size_t bytes,
                   int iters, sim::Time& total) -> Task<void> {
    proto::Buffer payload(bytes, std::byte{0x2a});
    // Warm-up call (connection/buffer effects).
    co_await ch.call(payload, uint32_t(bytes));
    sim::Time t0 = bed.sim.now();
    for (int i = 0; i < iters; ++i)
      co_await ch.call(payload, uint32_t(bytes));
    total = bed.sim.now() - t0;
    ch.shutdown();
  }(bed, *ch, bytes, iters, total));
  bed.sim.run();
  return total / iters;
}

struct ThroughputResult {
  double mops = 0;            // aggregate million ops/s
  sim::Duration mean_latency{};
};

/// Multi-client closed-loop throughput: `clients` concurrent clients, each
/// issuing `iters` calls on its own connection.
inline ThroughputResult measure_throughput(proto::ProtocolKind kind,
                                           size_t bytes, int clients,
                                           sim::PollMode poll, int iters = 30,
                                           bool numa_bind = false) {
  Testbed bed;
  proto::ChannelConfig cfg;
  cfg.client_poll = poll;
  cfg.server_poll = poll;
  cfg.max_msg = std::max<uint32_t>(64 << 10, uint32_t(bytes) * 2);
  // NUMA binding is beneficial (and applied) only under-subscription.
  bool numa_local = numa_bind && clients <= 16;
  cfg.client_numa_local = numa_local;
  cfg.server_numa_local = numa_local;

  std::vector<std::unique_ptr<proto::RpcChannel>> channels;
  for (int c = 0; c < clients; ++c)
    channels.push_back(proto::make_channel(kind, *bed.client_node(c),
                                           *bed.server,
                                           checksum_handler(*bed.server),
                                           cfg));
  sim::WaitGroup wg(bed.sim);
  wg.add(size_t(clients));
  for (int c = 0; c < clients; ++c) {
    bed.sim.spawn([](proto::RpcChannel& ch, size_t bytes, int iters,
                     sim::WaitGroup& wg) -> Task<void> {
      proto::Buffer payload(bytes, std::byte{0x5a});
      for (int i = 0; i < iters; ++i)
        co_await ch.call(payload, uint32_t(bytes));
      wg.done();
    }(*channels[size_t(c)], bytes, iters, wg));
  }
  sim::Time end{};
  bed.sim.spawn([](Testbed& bed, sim::WaitGroup& wg, sim::Time& end,
                   std::vector<std::unique_ptr<proto::RpcChannel>>& channels)
                    -> Task<void> {
    co_await wg.wait();
    end = bed.sim.now();
    for (auto& ch : channels) ch->shutdown();
  }(bed, wg, end, channels));
  bed.sim.run();

  ThroughputResult r;
  double secs = sim::to_seconds(end);
  uint64_t total_calls = uint64_t(clients) * uint64_t(iters);
  r.mops = secs > 0 ? double(total_calls) / secs / 1e6 : 0;
  r.mean_latency = end / int64_t(total_calls ? total_calls : 1);
  return r;
}

/// The plan HatRPC derives for the given hint triple (used by the ATB
/// benchmarks to place the "HatRPC" series).
inline hint::Plan hatrpc_plan(hint::PerfGoal goal, uint32_t clients,
                              uint32_t payload) {
  return hint::select_plan_raw(goal, clients, payload, /*numa=*/true,
                               hint::SelectionParams{});
}

inline std::string poll_name(sim::PollMode m) {
  return m == sim::PollMode::kBusy ? "busy" : "event";
}

}  // namespace hatbench
