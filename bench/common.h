// Shared harness for the figure benchmarks.
//
// All timing is SIMULATED time: each scenario builds a fresh deterministic
// simulation, runs it to completion, and reports virtual durations through
// google-benchmark's manual-time mode (so the printed "Time" column is
// virtual microseconds, reproducible to the nanosecond across runs).
//
// Topology mirrors the paper's testbed (§5.1): one server node and up to
// nine client nodes of 28 cores each, connected by the simulated EDR
// fabric. Clients are spread round-robin over the client nodes; NUMA
// binding is applied only when a scenario says so.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "hint/selection.h"
#include "obs/obs.h"
#include "proto/channel.h"
#include "sim/rng.h"

namespace hatbench {

using namespace hatrpc;
using sim::Task;
using namespace std::chrono_literals;

constexpr int kClientNodes = 9;  // paper: 10-node cluster, 1 server

// ---- Observability: --trace <file> + per-scenario percentile/counter ----
// Each scenario runs in its own Testbed (its own Fabric-level Obs); when
// tracing is on, scenarios absorb their events into one process-wide sink
// under a fresh pid block so node timelines don't collide across scenarios.

inline std::string& trace_path() {
  static std::string path;
  return path;
}

inline obs::Tracer& trace_sink() {
  static obs::Tracer sink;
  return sink;
}

inline uint32_t next_trace_pid(uint32_t nodes_in_scenario) {
  static uint32_t next = 0;
  uint32_t base = next;
  next += nodes_in_scenario;
  return base;
}

/// Channel window used by the throughput scenarios (`--window N`). 1 keeps
/// the classic one-outstanding-call-per-connection closed loop.
inline uint32_t& bench_window() {
  static uint32_t w = 1;
  return w;
}

/// Zero-copy send path (`--zero-copy`): payloads go out inline or as gather
/// SGE lists instead of through the legacy staging copies.
inline bool& bench_zero_copy() {
  static bool zc = false;
  return zc;
}

/// Strips `--trace <file>` / `--trace=<file>`, `--window <n>` /
/// `--window=<n>` and `--zero-copy[=0|1]` from argv (call BEFORE
/// benchmark::Initialize, which rejects flags it doesn't know).
inline void parse_bench_flags(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path() = argv[++i];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path() = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      bench_window() = uint32_t(std::max(1, std::atoi(argv[++i])));
    } else if (std::strncmp(argv[i], "--window=", 9) == 0) {
      bench_window() = uint32_t(std::max(1, std::atoi(argv[i] + 9)));
    } else if (std::strcmp(argv[i], "--zero-copy") == 0) {
      bench_zero_copy() = true;
    } else if (std::strncmp(argv[i], "--zero-copy=", 12) == 0) {
      bench_zero_copy() = std::atoi(argv[i] + 12) != 0;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (!trace_path().empty()) trace_sink().enable();
}

/// Writes the merged Chrome about:tracing JSON if --trace was given.
inline void write_trace() {
  if (trace_path().empty()) return;
  std::ofstream os(trace_path());
  trace_sink().write_json(os);
  std::cerr << "trace: " << trace_sink().event_count() << " events -> "
            << trace_path() << "\n";
}

struct Testbed;

/// Per-scenario observability capture: call-latency histogram plus the
/// scenario's fabric-wide counter totals, scaled per call for reporting.
struct BenchProbe {
  obs::Histogram hist;
  obs::CounterSet totals;
  uint64_t calls = 0;

  void finish(Testbed& bed, uint64_t timed_calls, const std::string& label);
  /// Emits the percentile/counter table into the benchmark's counters.
  void report(benchmark::State& state) const {
    state.counters["p50_us"] = double(hist.percentile_ns(0.50)) / 1e3;
    state.counters["p95_us"] = double(hist.percentile_ns(0.95)) / 1e3;
    state.counters["p99_us"] = double(hist.percentile_ns(0.99)) / 1e3;
    double per = calls ? double(calls) : 1.0;
    state.counters["doorbells_per_call"] =
        double(totals.get(obs::Ctr::kDoorbells)) / per;
    state.counters["wqes_per_call"] =
        double(totals.get(obs::Ctr::kWqesPosted)) / per;
    state.counters["copy_bytes_per_call"] =
        double(totals.get(obs::Ctr::kCopyBytes)) / per;
    state.counters["dma_bytes_per_call"] =
        double(totals.get(obs::Ctr::kDmaBytes)) / per;
    state.counters["inline_wqes_per_call"] =
        double(totals.get(obs::Ctr::kInlineWqes)) / per;
    state.counters["gather_sges_per_call"] =
        double(totals.get(obs::Ctr::kGatherSges)) / per;
  }
};

/// The payload ladder of Figs. 4 and 11.
inline const std::vector<size_t>& latency_sizes() {
  static const std::vector<size_t> sizes{4,    64,    512,   4096,
                                         16384, 65536, 262144, 524288};
  return sizes;
}

/// Client-count ladder of Figs. 5 and 12-14 (under / full / over
/// subscription splits at 16 and 28).
inline const std::vector<int>& client_counts() {
  static const std::vector<int> counts{1, 4, 16, 28, 64, 128, 256, 512};
  return counts;
}

struct Testbed {
  sim::Simulator sim;
  verbs::Fabric fabric{sim};
  verbs::Node* server = nullptr;
  std::vector<verbs::Node*> client_nodes;

  Testbed() {
    server = fabric.add_node();
    for (int i = 0; i < kClientNodes; ++i)
      client_nodes.push_back(fabric.add_node());
    if (!trace_path().empty()) fabric.obs().tracer.enable();
  }

  verbs::Node* client_node(int client_index) {
    return client_nodes[size_t(client_index) % client_nodes.size()];
  }
};

inline void BenchProbe::finish(Testbed& bed, uint64_t timed_calls,
                               const std::string& label) {
  calls += timed_calls;
  for (size_t i = 0; i < size_t(obs::Ctr::kCount); ++i) {
    obs::Ctr c = obs::Ctr(i);
    totals.add(c, bed.fabric.obs().counters.node_total(c));
  }
  if (!trace_path().empty()) {
    uint32_t base = next_trace_pid(uint32_t(1 + kClientNodes));
    trace_sink().absorb(bed.fabric.obs().tracer, base);
    trace_sink().set_process_name(base, label + "/server");
  }
}

/// Echo-with-checksum handler (the ATB server work model: Thrift processor
/// dispatch + a checksum whose cost grows with payload, §5.3).
inline proto::Handler checksum_handler(verbs::Node& server,
                                       bool echo_payload = true) {
  return [&server, echo_payload](proto::View req) -> Task<proto::Buffer> {
    co_await server.cpu().compute(1000ns +
                                  sim::transfer_time(req.size(), 20.0));
    if (echo_payload) co_return proto::Buffer(req.begin(), req.end());
    co_return proto::Buffer(8);
  };
}

/// One benchmark call. Under --zero-copy the response is taken as a lease
/// into the recv ring (in-place delivery, no client materialization copy)
/// and released right after it is touched — the pattern a real consumer of
/// the fig05 profile would use. Staged channels keep the owned-buffer path
/// so their numbers are untouched.
inline Task<void> bench_call(proto::RpcChannel& ch, proto::View req,
                             uint32_t resp_hint) {
  if (bench_zero_copy()) {
    auto r = co_await ch.call_leased(req, resp_hint);
    proto::LeasedReply reply = std::move(r).value();
    benchmark::DoNotOptimize(reply.bytes().size());
    reply.release();
    co_return;
  }
  auto r = co_await ch.call(req, resp_hint);
  r.value();
}

/// Single-client mean RPC latency over `iters` calls.
inline sim::Duration measure_latency(proto::ProtocolKind kind, size_t bytes,
                                     sim::PollMode poll, int iters = 64,
                                     bool numa_local = true,
                                     BenchProbe* probe = nullptr) {
  Testbed bed;
  proto::ChannelConfig cfg;
  cfg.with_poll(poll)
      .with_max_msg(std::max<uint32_t>(64 << 10, uint32_t(bytes) * 2))
      .with_numa(numa_local, numa_local)
      .with_zero_copy(bench_zero_copy());
  auto ch = proto::make_channel(kind, *bed.client_node(0), *bed.server,
                                checksum_handler(*bed.server), cfg);
  sim::Time total{};
  bed.sim.spawn([](Testbed& bed, proto::RpcChannel& ch, size_t bytes,
                   int iters, sim::Time& total,
                   BenchProbe* probe) -> Task<void> {
    proto::Buffer payload(bytes, std::byte{0x2a});
    // Warm-up call (connection/buffer effects).
    co_await bench_call(ch, payload, uint32_t(bytes));
    sim::Time t0 = bed.sim.now();
    for (int i = 0; i < iters; ++i) {
      sim::Time c0 = bed.sim.now();
      co_await bench_call(ch, payload, uint32_t(bytes));
      if (probe) probe->hist.record(bed.sim.now() - c0);
    }
    total = bed.sim.now() - t0;
    ch.shutdown();
  }(bed, *ch, bytes, iters, total, probe));
  bed.sim.run();
  if (probe)
    probe->finish(bed, uint64_t(iters) + 1,
                  "lat/" + std::string(proto::to_string(kind)) + "/" +
                      std::to_string(bytes) + "B");
  return total / iters;
}

struct ThroughputResult {
  double mops = 0;            // aggregate million ops/s (calls / elapsed)
  sim::Duration mean_latency{};  // mean of the real per-call durations
  sim::Duration elapsed{};    // virtual makespan of the whole run
};

/// Multi-client closed-loop throughput: `clients` concurrent clients, each
/// issuing `iters` calls on its own connection. When bench_window() > 1 the
/// channels are windowed and each client drives `window` concurrent lanes
/// (its iters split across them), so the window is actually filled.
/// Achieved ops/s is total calls over the elapsed VIRTUAL time of the whole
/// run; mean latency is averaged over the real per-call durations (under
/// pipelining the two are no longer each other's reciprocal).
inline ThroughputResult measure_throughput(proto::ProtocolKind kind,
                                           size_t bytes, int clients,
                                           sim::PollMode poll, int iters = 30,
                                           bool numa_bind = false,
                                           BenchProbe* probe = nullptr) {
  Testbed bed;
  const uint32_t window = bench_window();
  proto::ChannelConfig cfg;
  // NUMA binding is beneficial (and applied) only under-subscription.
  bool numa_local = numa_bind && clients <= 16;
  cfg.with_poll(poll)
      .with_max_msg(std::max<uint32_t>(64 << 10, uint32_t(bytes) * 2))
      .with_numa(numa_local, numa_local)
      .with_window(window)
      .with_zero_copy(bench_zero_copy());

  std::vector<std::unique_ptr<proto::RpcChannel>> channels;
  for (int c = 0; c < clients; ++c)
    channels.push_back(proto::make_channel(kind, *bed.client_node(c),
                                           *bed.server,
                                           checksum_handler(*bed.server),
                                           cfg));
  sim::WaitGroup wg(bed.sim);
  sim::Duration lat_sum{};
  for (int c = 0; c < clients; ++c) {
    for (uint32_t l = 0; l < window; ++l) {
      // Spread the client's call budget over its window lanes.
      int lane_iters = iters / int(window) +
                       (int(l) < iters % int(window) ? 1 : 0);
      if (lane_iters == 0) continue;
      wg.add(1);
      bed.sim.spawn([](Testbed& bed, proto::RpcChannel& ch, size_t bytes,
                       int lane_iters, sim::WaitGroup& wg,
                       sim::Duration& lat_sum,
                       BenchProbe* probe) -> Task<void> {
        proto::Buffer payload(bytes, std::byte{0x5a});
        for (int i = 0; i < lane_iters; ++i) {
          sim::Time c0 = bed.sim.now();
          co_await bench_call(ch, payload, uint32_t(bytes));
          lat_sum += bed.sim.now() - c0;
          if (probe) probe->hist.record(bed.sim.now() - c0);
        }
        wg.done();
      }(bed, *channels[size_t(c)], bytes, lane_iters, wg, lat_sum, probe));
    }
  }
  sim::Time end{};
  bed.sim.spawn([](Testbed& bed, sim::WaitGroup& wg, sim::Time& end,
                   std::vector<std::unique_ptr<proto::RpcChannel>>& channels)
                    -> Task<void> {
    co_await wg.wait();
    end = bed.sim.now();
    for (auto& ch : channels) ch->shutdown();
  }(bed, wg, end, channels));
  bed.sim.run();
  uint64_t total_calls = uint64_t(clients) * uint64_t(iters);
  if (probe)
    probe->finish(bed, total_calls,
                  "thr/" + std::string(proto::to_string(kind)) + "/" +
                      std::to_string(bytes) + "B/c" +
                      std::to_string(clients));

  ThroughputResult r;
  double secs = sim::to_seconds(end);
  r.mops = secs > 0 ? double(total_calls) / secs / 1e6 : 0;
  r.mean_latency = lat_sum / int64_t(total_calls ? total_calls : 1);
  r.elapsed = end;
  return r;
}

/// The plan HatRPC derives for the given hint triple (used by the ATB
/// benchmarks to place the "HatRPC" series).
inline hint::Plan hatrpc_plan(hint::PerfGoal goal, uint32_t clients,
                              uint32_t payload) {
  return hint::select_plan_raw(goal, clients, payload, /*numa=*/true,
                               hint::SelectionParams{});
}

inline std::string poll_name(sim::PollMode m) {
  return m == sim::PollMode::kBusy ? "busy" : "event";
}

}  // namespace hatbench
