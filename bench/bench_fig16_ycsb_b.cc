// Figure 16 — YCSB workload B (47.5/2.5/47.5/2.5, read-intensive) on
// HatKV with 128 clients; same six-system comparison as Fig. 15.
#include "ycsb_bench.h"

int main(int argc, char** argv) {
  hatrpc::ycsb::WorkloadSpec spec = hatrpc::ycsb::WorkloadSpec::workload_b();
  spec.record_count = 2000;
  hatbench::register_ycsb("Fig16_YCSB_B", spec);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
