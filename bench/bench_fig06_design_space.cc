// Figure 6 — the hint -> design-space mapping. Not a measurement: prints
// the selected (protocol, polling) for every cell of the
// (performance-goal x concurrency-regime x payload-class) grid, i.e. the
// table the selection algorithm of §4.3 implements.
#include <cstdio>

#include "hint/selection.h"

using namespace hatrpc;

int main() {
  hint::SelectionParams params;
  struct Cell {
    const char* label;
    uint32_t concurrency;
  };
  const Cell regimes[] = {{"under-subscription", 8},
                          {"full-subscription", 24},
                          {"over-subscription", 128}};
  const std::pair<const char*, uint32_t> payloads[] = {{"small(512B)", 512},
                                                       {"large(128KB)",
                                                        128 << 10}};
  const std::pair<const char*, hint::PerfGoal> goals[] = {
      {"latency", hint::PerfGoal::kLatency},
      {"throughput", hint::PerfGoal::kThroughput},
      {"res_util", hint::PerfGoal::kResUtil}};

  std::printf("Figure 6: design space for hints and RDMA protocols\n");
  std::printf("%-12s %-20s %-14s -> %-20s %-6s/%-6s %s\n", "perf_goal",
              "concurrency", "payload", "protocol", "c_poll", "s_poll",
              "numa");
  for (auto [gname, goal] : goals) {
    for (const Cell& regime : regimes) {
      for (auto [pname, bytes] : payloads) {
        hint::Plan plan = hint::select_plan_raw(goal, regime.concurrency,
                                                bytes, true, params);
        std::printf("%-12s %-20s %-14s -> %-20s %-6s/%-6s %s\n", gname,
                    regime.label, pname,
                    std::string(proto::to_string(plan.protocol)).c_str(),
                    plan.client_poll == sim::PollMode::kBusy ? "busy"
                                                             : "event",
                    plan.server_poll == sim::PollMode::kBusy ? "busy"
                                                             : "event",
                    plan.numa_bind ? "bind" : "-");
      }
    }
  }
  std::printf("\n(unhinted payload -> %s: pre-known buffers cannot be "
              "sized without payload knowledge)\n",
              std::string(proto::to_string(
                  hint::select_plan_raw(hint::PerfGoal::kThroughput, 8, 0,
                                        false, params)
                      .protocol))
                  .c_str());
  return 0;
}
