// Figure 14 — ATB Mix-Comm with 128 KB payloads: above the concurrency
// threshold the throughput function's plan moves to event-polled RFP while
// the latency function stays on Direct-WriteIMM (optimization isolation).
#include "mixcomm.h"

int main(int argc, char** argv) {
  hatbench::register_mixcomm("Fig14", 128 << 10);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
