// Ablations of the design choices behind the hint scheme:
//   * Threshold  — the Hybrid-EagerRNDV eager/rendezvous switch (§4.3 fixes
//     it at 4 KB): sweep the threshold for a 16 KB workload;
//   * Numa       — NUMA binding on/off at under-subscription (§5.2 binds
//     only there);
//   * Readers    — the HatKV reader-table sizing from the concurrency hint
//     (§4.4): an undersized table turns into queueing delay;
//   * Commit     — sync vs group commits for write bursts (§4.4 "commit
//     strategies off the critical path").
#include "common.h"

#include "kv/hatkv.h"

namespace {

using namespace hatbench;

// --- (a) eager/rendezvous threshold ---------------------------------------

void threshold_bench(benchmark::State& state, uint32_t threshold) {
  constexpr size_t kBytes = 16 << 10;
  Testbed bed;
  proto::ChannelConfig cfg;
  cfg.rndv_threshold = threshold;
  cfg.max_msg = 1 << 20;
  auto ch = proto::make_channel(proto::ProtocolKind::kHybridEagerRndv,
                                *bed.client_node(0), *bed.server,
                                checksum_handler(*bed.server), cfg);
  sim::Time total{};
  bed.sim.spawn([](Testbed& bed, proto::RpcChannel& ch,
                   sim::Time& total) -> Task<void> {
    proto::Buffer payload(kBytes, std::byte{0x3c});
    for (int i = 0; i < 32; ++i)
      (co_await ch.call(payload, uint32_t(kBytes))).value();
    total = bed.sim.now();
    ch.shutdown();
  }(bed, *ch, total));
  bed.sim.run();
  sim::Duration lat = total / 32;
  for (auto _ : state) state.SetIterationTime(sim::to_seconds(lat));
  state.counters["latency_us"] = sim::to_micros(lat);
}

// --- (b) NUMA binding -------------------------------------------------------

void numa_bench(benchmark::State& state, bool bind) {
  sim::Duration lat = measure_latency(proto::ProtocolKind::kDirectWriteImm,
                                      512, sim::PollMode::kBusy, 64, bind);
  for (auto _ : state) state.SetIterationTime(sim::to_seconds(lat));
  state.counters["latency_us"] = sim::to_micros(lat);
}

// --- (c)/(d) HatKV backend hints --------------------------------------------

sim::Duration run_kv_burst(uint32_t max_readers, bool sync_commits,
                           double get_ratio) {
  using namespace hatrpc;
  sim::Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* sn = fabric.add_node();
  kv::HatKVConfig cfg = kv::HatKVConfig::from_hints(hatkv::HatKV_hints());
  cfg.max_readers = max_readers;
  cfg.sync_commits = sync_commits;
  kv::HatKVServer server(*sn, {}, cfg);
  constexpr int kClients = 64;
  std::vector<std::unique_ptr<core::HatConnection>> conns;
  std::vector<verbs::Node*> cnodes;
  for (int i = 0; i < 4; ++i) cnodes.push_back(fabric.add_node());
  sim::WaitGroup wg(sim);
  wg.add(kClients);
  for (int c = 0; c < kClients; ++c) {
    conns.push_back(std::make_unique<core::HatConnection>(
        *cnodes[size_t(c) % 4], server.server()));
    sim.spawn([](core::HatConnection& conn, int c, double get_ratio,
                 sim::WaitGroup& wg) -> Task<void> {
      hatkv::HatKVClient client(conn);
      sim::Rng rng(uint64_t(c) * 31 + 5);
      std::string value(1000, 'v');
      for (int i = 0; i < 30; ++i) {
        if (rng.uniform01() < get_ratio) {
          // Batched reads hold a reader slot for the whole storage scan.
          std::vector<std::string> keys;
          for (int k = 0; k < 10; ++k)
            keys.push_back("k" + std::to_string(rng.bounded(512)));
          co_await client.MultiGet(keys);
        } else {
          co_await client.Put("k" + std::to_string(rng.bounded(512)), value);
        }
      }
      wg.done();
    }(*conns.back(), c, get_ratio, wg));
  }
  sim::Time end{};
  sim.spawn([](sim::Simulator& sim, sim::WaitGroup& wg, sim::Time& end,
               kv::HatKVServer& server) -> Task<void> {
    co_await wg.wait();
    end = sim.now();
    server.stop();
  }(sim, wg, end, server));
  sim.run();
  return end;
}

void readers_bench(benchmark::State& state, uint32_t max_readers) {
  sim::Duration span = run_kv_burst(max_readers, false, 0.95);
  for (auto _ : state) state.SetIterationTime(sim::to_seconds(span));
  state.counters["span_us"] = sim::to_micros(span);
}

void commit_bench(benchmark::State& state, bool sync) {
  sim::Duration span = run_kv_burst(136, sync, 0.2);
  for (auto _ : state) state.SetIterationTime(sim::to_seconds(span));
  state.counters["span_us"] = sim::to_micros(span);
}

void register_all() {
  for (uint32_t threshold : {1u << 10, 4u << 10, 16u << 10, 64u << 10}) {
    std::string name =
        "Ablation/Threshold16KBmsg/" + std::to_string(threshold >> 10) + "KB";
    benchmark::RegisterBenchmark(name.c_str(),
                                 [threshold](benchmark::State& s) {
                                   threshold_bench(s, threshold);
                                 })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);
  }
  for (bool bind : {true, false}) {
    std::string name = std::string("Ablation/NumaBinding/") +
                       (bind ? "bound" : "unbound");
    benchmark::RegisterBenchmark(name.c_str(), [bind](benchmark::State& s) {
      numa_bench(s, bind);
    })->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
  }
  for (uint32_t readers : {4u, 16u, 136u}) {
    std::string name =
        "Ablation/ReaderTable64clients/" + std::to_string(readers);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [readers](benchmark::State& s) {
                                   readers_bench(s, readers);
                                 })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (bool sync : {false, true}) {
    std::string name = std::string("Ablation/CommitStrategy/") +
                       (sync ? "sync" : "group");
    benchmark::RegisterBenchmark(name.c_str(), [sync](benchmark::State& s) {
      commit_bench(s, sync);
    })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
