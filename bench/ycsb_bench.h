// Shared implementation of the YCSB-on-HatKV comparison (Figs. 15 and 16):
// six configurations — HatRPC-Function, HatRPC-Service, and the emulated
// AR-gRPC / HERD / Pilaf / RFP comparators — all sharing the SAME mdblite
// backend and dispatcher (the paper's "same backend implementation to
// avoid unfair comparison"), differing only in the communication path.
// Topology per §5.4: 1 server node, 128 clients over 4 client nodes.
#pragma once

#include <benchmark/benchmark.h>

#include "kv/hatkv.h"
#include "ycsb/ycsb.h"

namespace hatbench {

using namespace hatrpc;
using sim::Task;
using namespace std::chrono_literals;

struct YcsbSetup {
  const char* label;
  bool engine;  // true: HatConnection (hint-driven); false: fixed protocol
  bool function_hints;                 // engine only
  proto::ProtocolKind fixed_protocol;  // comparator only
};

inline const std::vector<YcsbSetup>& ycsb_setups() {
  static const std::vector<YcsbSetup> setups{
      {"HatRPC-Function", true, true, proto::ProtocolKind::kDirectWriteImm},
      {"HatRPC-Service", true, false, proto::ProtocolKind::kDirectWriteImm},
      {"AR-gRPC", false, false, proto::ProtocolKind::kArGrpc},
      {"HERD", false, false, proto::ProtocolKind::kHerd},
      {"Pilaf", false, false, proto::ProtocolKind::kPilaf},
      {"RFP", false, false, proto::ProtocolKind::kRfp},
  };
  return setups;
}

/// HatCaller over one fixed protocol channel (the comparator emulations),
/// charging the same serialization costs as the engine path.
class FixedCaller : public core::HatCaller {
 public:
  FixedCaller(verbs::Node& client, verbs::Node& server,
              proto::Handler processor, proto::ProtocolKind kind) {
    proto::ChannelConfig cfg;
    cfg.client_poll = sim::PollMode::kEvent;  // 128 clients: scalable mode
    cfg.server_poll = sim::PollMode::kEvent;
    cfg.max_msg = 64 << 10;
    channel_ = proto::make_channel(kind, client, server,
                                   std::move(processor), cfg);
    cpu_ = &client.cpu();
  }

  Task<core::Buffer> call(std::string method,
                          core::View payload) override {
    core::Buffer env = core::HatDispatcher::make_call(method, payload, 0);
    co_await cpu_->compute(2us + sim::transfer_time(env.size(), 1.0));
    // Response sizing pre-knowledge mirrors what each system's client
    // would configure: ~1KB single ops, ~11KB batched ops.
    uint32_t hint = method.starts_with("Multi") ? 11 << 10 : 1200;
    core::Buffer reply = (co_await channel_->call(env, hint)).value();
    co_await cpu_->compute(2us + sim::transfer_time(reply.size(), 1.0));
    co_return core::HatDispatcher::parse_reply(reply, method);
  }

  void shutdown() { channel_->shutdown(); }

 private:
  std::unique_ptr<proto::RpcChannel> channel_;
  sim::Cpu* cpu_ = nullptr;
};

struct YcsbRunResult {
  ycsb::StatsCollector stats;
  sim::Duration span{};
};

inline hint::ServiceHints service_only_hints() {
  hint::ServiceHints h;
  h.service().add(hint::Side::kShared, hint::Key::kConcurrency,
                  hint::parse_value(hint::Key::kConcurrency, "128"));
  h.service().add(hint::Side::kShared, hint::Key::kPerfGoal,
                  hint::parse_value(hint::Key::kPerfGoal, "throughput"));
  return h;
}

inline YcsbRunResult run_ycsb(const YcsbSetup& setup,
                              ycsb::WorkloadSpec spec, int clients,
                              int ops_per_client) {
  sim::Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* server_node = fabric.add_node();
  std::vector<verbs::Node*> client_nodes;
  for (int i = 0; i < 4; ++i) client_nodes.push_back(fabric.add_node());

  hint::ServiceHints hints = setup.engine && setup.function_hints
                                 ? hatkv::HatKV_hints()
                                 : service_only_hints();
  // Full-Thrift-stack software costs (the paper's server runs the complete
  // Apache Thrift processor; YCSB clients add comparable work): multi-us
  // per-message serialization keeps the system communication/CPU-bound,
  // like the paper's testbed, rather than storage-bound.
  core::EngineConfig ecfg;
  ecfg.serialize_fixed = 2us;
  ecfg.serialize_gbps = 1.0;
  core::HatServer server(*server_node, std::move(hints), ecfg);
  kv::HatKVHandler handler(
      *server_node, kv::HatKVConfig::from_hints(hatkv::HatKV_hints()));
  hatkv::register_HatKV(server.dispatcher(), handler);

  std::vector<std::unique_ptr<core::HatConnection>> conns;
  std::vector<std::unique_ptr<FixedCaller>> fixed;
  std::vector<core::HatCaller*> callers;
  for (int c = 0; c < clients; ++c) {
    verbs::Node* cn = client_nodes[size_t(c) % client_nodes.size()];
    if (setup.engine) {
      conns.push_back(std::make_unique<core::HatConnection>(*cn, server));
      callers.push_back(conns.back().get());
    } else {
      fixed.push_back(std::make_unique<FixedCaller>(
          *cn, *server_node, server.processor(), setup.fixed_protocol));
      callers.push_back(fixed.back().get());
    }
  }

  YcsbRunResult result;
  sim::WaitGroup wg(sim);
  wg.add(size_t(clients));
  for (int c = 0; c < clients; ++c) {
    sim.spawn([](sim::Simulator& sim, core::HatCaller* caller,
                 ycsb::WorkloadSpec spec, int c, int clients,
                 int ops_per_client, ycsb::StatsCollector& stats,
                 sim::WaitGroup& wg) -> Task<void> {
      hatkv::HatKVClient client(*caller);
      ycsb::WorkloadGenerator gen(spec, uint64_t(c) * 101 + 7);
      sim::Rng vrng(uint64_t(c) * 13 + 1);
      // Load phase: each client loads its stripe of the keyspace.
      for (uint64_t k = uint64_t(c); k < spec.record_count;
           k += uint64_t(clients))
        co_await client.Put(gen.key_of(k), gen.make_value(vrng));
      // Run phase.
      for (int i = 0; i < ops_per_client; ++i) {
        ycsb::Op op = gen.next();
        sim::Time t0 = sim.now();
        switch (op.type) {
          case ycsb::OpType::kGet:
            co_await client.Get(op.keys[0]);
            break;
          case ycsb::OpType::kPut:
            co_await client.Put(op.keys[0], op.values[0]);
            break;
          case ycsb::OpType::kMultiGet:
            co_await client.MultiGet(op.keys);
            break;
          case ycsb::OpType::kMultiPut: {
            std::vector<hatkv::KVPair> pairs(op.keys.size());
            for (size_t j = 0; j < op.keys.size(); ++j) {
              pairs[j].key = op.keys[j];
              pairs[j].value = op.values[j];
            }
            co_await client.MultiPut(pairs);
            break;
          }
        }
        stats.record(op.type, sim.now() - t0);
      }
      wg.done();
    }(sim, callers[size_t(c)], spec, c, clients, ops_per_client,
      result.stats, wg));
  }
  sim::Time end{};
  sim.spawn([](sim::Simulator& sim, sim::WaitGroup& wg, sim::Time& end,
               core::HatServer& server,
               std::vector<std::unique_ptr<FixedCaller>>& fixed)
                -> Task<void> {
    co_await wg.wait();
    end = sim.now();
    server.stop();
    for (auto& f : fixed) f->shutdown();
  }(sim, wg, end, server, fixed));
  sim.run();
  result.span = end;
  return result;
}

inline void register_ycsb(const char* fig, ycsb::WorkloadSpec spec) {
  for (const YcsbSetup& setup : ycsb_setups()) {
    std::string name = std::string(fig) + "/" + setup.label;
    const YcsbSetup* sp = &setup;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [sp, spec](benchmark::State& state) {
          YcsbRunResult r;
          for (auto _ : state) {
            r = run_ycsb(*sp, spec, /*clients=*/128, /*ops=*/25);
            state.SetIterationTime(sim::to_seconds(r.span));
          }
          state.counters["total_kops"] =
              r.stats.total_throughput_kops(r.span);
          for (ycsb::OpType t : ycsb::kAllOps) {
            std::string op(ycsb::to_string(t));
            state.counters[op + "_kops"] =
                r.stats.throughput_kops(t, r.span);
            state.counters[op + "_lat_us"] =
                sim::to_micros(r.stats.mean_latency(t));
          }
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace hatbench
