// Figure 13 — ATB Mix-Comm with 512 B payloads: function-level hints keep
// the latency RPC on busy-polled Direct-WriteIMM while the throughput RPC
// follows its own plan, across client counts.
#include "mixcomm.h"

int main(int argc, char** argv) {
  hatbench::register_mixcomm("Fig13", 512);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
