// Shared implementation of the ATB Mix-Comm benchmark (Figs. 13 and 14):
// every client issues a 50/50 random mix of a latency-hinted RPC and a
// throughput-hinted RPC (checksum server work scaling with payload, §5.3).
// HatRPC resolves a separate plan per function (optimization isolation:
// two channels per client); the baselines push both RPC types through one
// fixed protocol. Reported: mean latency of the latency calls and
// aggregate throughput of the throughput calls.
#pragma once

#include "common.h"

namespace hatbench {

struct MixResult {
  sim::Duration latency_fn_mean{};
  double throughput_fn_kops = 0;
};

inline MixResult measure_mixcomm(size_t bytes, int clients,
                                 std::optional<proto::ProtocolKind> fixed,
                                 int iters = 30) {
  Testbed bed;
  hint::Plan lat_plan = hatrpc_plan(hint::PerfGoal::kLatency,
                                    uint32_t(clients), uint32_t(bytes));
  hint::Plan thr_plan = hatrpc_plan(hint::PerfGoal::kThroughput,
                                    uint32_t(clients), uint32_t(bytes));

  auto make = [&](verbs::Node* cn, const hint::Plan& plan) {
    proto::ChannelConfig cfg;
    cfg.max_msg = std::max<uint32_t>(64 << 10, uint32_t(bytes) * 2);
    if (fixed) {
      cfg.client_poll = sim::PollMode::kBusy;
      cfg.server_poll = sim::PollMode::kBusy;
      return proto::make_channel(*fixed, *cn, *bed.server,
                                 checksum_handler(*bed.server), cfg);
    }
    cfg.client_poll = plan.client_poll;
    cfg.server_poll = plan.server_poll;
    bool numa = plan.numa_bind && clients <= 16;
    cfg.client_numa_local = numa;
    cfg.server_numa_local = numa;
    return proto::make_channel(plan.protocol, *cn, *bed.server,
                               checksum_handler(*bed.server), cfg);
  };

  struct ClientChannels {
    std::unique_ptr<proto::RpcChannel> lat;
    std::unique_ptr<proto::RpcChannel> thr;  // == lat for baselines
  };
  // Like HatConnection, channels are shared when two functions resolve to
  // the same plan (same protocol + polling).
  bool plans_equal = lat_plan.protocol == thr_plan.protocol &&
                     lat_plan.client_poll == thr_plan.client_poll &&
                     lat_plan.server_poll == thr_plan.server_poll;
  std::vector<ClientChannels> chans;
  for (int c = 0; c < clients; ++c) {
    ClientChannels cc;
    cc.lat = make(bed.client_node(c), lat_plan);
    cc.thr = (fixed || plans_equal) ? nullptr
                                    : make(bed.client_node(c), thr_plan);
    chans.push_back(std::move(cc));
  }

  struct Totals {
    sim::Duration lat_total{};
    uint64_t lat_calls = 0;
    uint64_t thr_calls = 0;
  } totals;

  sim::WaitGroup wg(bed.sim);
  wg.add(size_t(clients));
  for (int c = 0; c < clients; ++c) {
    bed.sim.spawn([](Testbed& bed, ClientChannels& cc, size_t bytes,
                     int iters, int seed, Totals& totals,
                     sim::WaitGroup& wg) -> Task<void> {
      sim::Rng rng(uint64_t(seed) * 7919 + 17);
      proto::Buffer payload(bytes, std::byte{0x11});
      proto::RpcChannel& thr_ch = cc.thr ? *cc.thr : *cc.lat;
      for (int i = 0; i < iters; ++i) {
        if (rng.chance(0.5)) {
          sim::Time t0 = bed.sim.now();
          (co_await cc.lat->call(payload, uint32_t(bytes))).value();
          totals.lat_total += bed.sim.now() - t0;
          ++totals.lat_calls;
        } else {
          (co_await thr_ch.call(payload, uint32_t(bytes))).value();
          ++totals.thr_calls;
        }
      }
      wg.done();
    }(bed, chans[size_t(c)], bytes, iters, c, totals, wg));
  }
  sim::Time end{};
  bed.sim.spawn([](Testbed& bed, sim::WaitGroup& wg, sim::Time& end,
                   std::vector<ClientChannels>& chans) -> Task<void> {
    co_await wg.wait();
    end = bed.sim.now();
    for (auto& cc : chans) {
      cc.lat->shutdown();
      if (cc.thr) cc.thr->shutdown();
    }
  }(bed, wg, end, chans));
  bed.sim.run();

  MixResult r;
  if (totals.lat_calls)
    r.latency_fn_mean = totals.lat_total / int64_t(totals.lat_calls);
  double secs = sim::to_seconds(end);
  r.throughput_fn_kops =
      secs > 0 ? double(totals.thr_calls) / secs / 1e3 : 0;
  return r;
}

inline void register_mixcomm(const char* fig, size_t bytes) {
  static const std::pair<const char*,
                         std::optional<proto::ProtocolKind>> kSeries[] = {
      {"HatRPC", std::nullopt},
      {"Hybrid-EagerRNDV", proto::ProtocolKind::kHybridEagerRndv},
      {"Direct-Write-Send", proto::ProtocolKind::kDirectWriteSend},
      {"RFP", proto::ProtocolKind::kRfp},
      {"Direct-WriteIMM", proto::ProtocolKind::kDirectWriteImm},
  };
  for (auto& [label, fixed] : kSeries) {
    for (int clients : client_counts()) {
      std::string name = std::string(fig) + "/" + label + "/c" +
                         std::to_string(clients);
      auto fixed_copy = fixed;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [bytes, clients, fixed_copy](benchmark::State& state) {
            int iters = clients >= 128 ? 10 : 30;
            MixResult r;
            for (auto _ : state) {
              r = measure_mixcomm(bytes, clients, fixed_copy, iters);
              state.SetIterationTime(
                  sim::to_seconds(r.latency_fn_mean) + 1e-9);
            }
            state.counters["lat_us"] = sim::to_micros(r.latency_fn_mean);
            state.counters["thr_kops"] = r.throughput_fn_kops;
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace hatbench
