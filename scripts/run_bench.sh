#!/usr/bin/env bash
# Runs the Fig. 4 protocol-latency and Fig. 5 protocol-throughput benchmarks
# plus the cluster failover benchmark, and emits JSON baselines
# (BENCH_fig04.json / BENCH_fig05.json / BENCH_cluster.json by default).
# All timing is simulated, so the output is bit-reproducible across machines
# and runs.
#
# Environment overrides:
#   BUILD_DIR     build tree containing bench/ binaries (default: build)
#   FILTER        --benchmark_filter regex              (default: all rows)
#   WINDOW        channel window driven per connection  (default: 1)
#   ZERO_COPY     1 = drive the zero-copy send path     (default: 0)
#   OUT04         fig04 output JSON path                (default: BENCH_fig04.json)
#   OUT           fig05 output JSON path                (default: BENCH_fig05.json)
#   OUTCLUSTER    cluster output JSON path              (default: BENCH_cluster.json)
#   CLUSTER_ARGS  extra bench_cluster flags, e.g. "--client-nodes 24 --records 1000"
#   SEED          cluster fault-schedule seed           (default: 1)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
FILTER="${FILTER:-.}"
WINDOW="${WINDOW:-1}"
ZERO_COPY="${ZERO_COPY:-0}"
OUT04="${OUT04:-BENCH_fig04.json}"
OUT="${OUT:-BENCH_fig05.json}"
OUTCLUSTER="${OUTCLUSTER:-BENCH_cluster.json}"
CLUSTER_ARGS="${CLUSTER_ARGS:-}"
SEED="${SEED:-1}"

BIN04="$BUILD_DIR/bench/bench_fig04_protocol_latency"
BIN05="$BUILD_DIR/bench/bench_fig05_protocol_throughput"
BINCLUSTER="$BUILD_DIR/bench/bench_cluster"
for bin in "$BIN04" "$BIN05" "$BINCLUSTER"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

"$BIN04" --zero-copy="$ZERO_COPY" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$OUT04" \
  --benchmark_out_format=json

"$BIN05" --window "$WINDOW" --zero-copy="$ZERO_COPY" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

# bench_cluster exits non-zero (and prints INVARIANT VIOLATION) if any
# acknowledged write is lost, a replica lags, or the fabric audit is dirty.
# shellcheck disable=SC2086
"$BINCLUSTER" --seed "$SEED" --out "$OUTCLUSTER" $CLUSTER_ARGS

echo "wrote $OUT04, $OUT and $OUTCLUSTER (window=$WINDOW, zero_copy=$ZERO_COPY, filter=$FILTER, seed=$SEED)"
