#!/usr/bin/env bash
# Runs the Fig. 4 protocol-latency and Fig. 5 protocol-throughput benchmarks,
# the cluster failover benchmark, the sim-core scheduler microbenchmark, and
# the sharded-server scalability sweep, emitting JSON baselines
# (BENCH_fig04.json / BENCH_fig05.json / BENCH_cluster.json /
# BENCH_sim_core.json / BENCH_scalability.json by default). All simulated
# timing is bit-reproducible across machines and runs; bench_sim_core
# additionally reports machine-dependent wall-clock rates next to a
# deterministic trace digest (BENCH_sim_core.trace) that CI cmp's across
# same-seed runs, and bench_scalability's JSON is wholly virtual-time-derived
# (wall-clock goes to stdout only) so same-seed outputs are byte-identical.
#
# Environment overrides:
#   BUILD_DIR     build tree containing bench/ binaries (default: build)
#   FILTER        --benchmark_filter regex              (default: all rows)
#   WINDOW        channel window driven per connection  (default: 1)
#   ZERO_COPY     1 = drive the zero-copy send path     (default: 0)
#   OUT04         fig04 output JSON path                (default: BENCH_fig04.json)
#   OUT           fig05 output JSON path                (default: BENCH_fig05.json)
#   OUTCLUSTER    cluster output JSON path              (default: BENCH_cluster.json)
#   OUTSIMCORE    sim-core output JSON path             (default: BENCH_sim_core.json)
#   TRACESIMCORE  sim-core trace digest path            (default: BENCH_sim_core.trace)
#   OUTSCAL       scalability output JSON path          (default: BENCH_scalability.json)
#   OUTADAPT      adaptive-hints output JSON path       (default: BENCH_adaptive.json)
#   CLUSTER_ARGS  extra bench_cluster flags, e.g. "--client-nodes 24 --records 1000"
#   SIMCORE_ARGS  extra bench_sim_core flags, e.g. "--cancel-rounds 100"
#   SCAL_ARGS     extra bench_scalability flags, e.g. "--clients 1,8,64 --shards 0,4"
#   ADAPT_ARGS    extra bench_adaptive flags, e.g. "--over-channels 32"
#   SEED          cluster + sim-core + scalability + adaptive seed (default: 1)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
FILTER="${FILTER:-.}"
WINDOW="${WINDOW:-1}"
ZERO_COPY="${ZERO_COPY:-0}"
OUT04="${OUT04:-BENCH_fig04.json}"
OUT="${OUT:-BENCH_fig05.json}"
OUTCLUSTER="${OUTCLUSTER:-BENCH_cluster.json}"
OUTSIMCORE="${OUTSIMCORE:-BENCH_sim_core.json}"
TRACESIMCORE="${TRACESIMCORE:-BENCH_sim_core.trace}"
OUTSCAL="${OUTSCAL:-BENCH_scalability.json}"
OUTADAPT="${OUTADAPT:-BENCH_adaptive.json}"
CLUSTER_ARGS="${CLUSTER_ARGS:-}"
SIMCORE_ARGS="${SIMCORE_ARGS:-}"
SCAL_ARGS="${SCAL_ARGS:-}"
ADAPT_ARGS="${ADAPT_ARGS:-}"
SEED="${SEED:-1}"

BIN04="$BUILD_DIR/bench/bench_fig04_protocol_latency"
BIN05="$BUILD_DIR/bench/bench_fig05_protocol_throughput"
BINCLUSTER="$BUILD_DIR/bench/bench_cluster"
BINSIMCORE="$BUILD_DIR/bench/bench_sim_core"
BINSCAL="$BUILD_DIR/bench/bench_scalability"
BINADAPT="$BUILD_DIR/bench/bench_adaptive"
for bin in "$BIN04" "$BIN05" "$BINCLUSTER" "$BINSIMCORE" "$BINSCAL" \
           "$BINADAPT"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

"$BIN04" --zero-copy="$ZERO_COPY" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$OUT04" \
  --benchmark_out_format=json

"$BIN05" --window "$WINDOW" --zero-copy="$ZERO_COPY" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

# bench_cluster exits non-zero (and prints INVARIANT VIOLATION) if any
# acknowledged write is lost, a replica lags, or the fabric audit is dirty.
# shellcheck disable=SC2086
"$BINCLUSTER" --seed "$SEED" --out "$OUTCLUSTER" $CLUSTER_ARGS

# bench_sim_core exits non-zero if a cancelled timer ever fires (the cancel
# phase pins the run's virtual end time to the notify schedule).
# shellcheck disable=SC2086
"$BINSIMCORE" --seed "$SEED" --out "$OUTSIMCORE" --trace-out "$TRACESIMCORE" \
  $SIMCORE_ARGS

# The 1→1024-client sharded-server sweep; its analysis block calls out the
# per-config saturation knee and the over-subscription collapse point.
# shellcheck disable=SC2086
"$BINSCAL" --seed "$SEED" --out "$OUTSCAL" $SCAL_ARGS

# bench_adaptive exits non-zero if the frozen-controller ablation diverges
# from its static twin (the adaptive observation path must cost nothing).
# shellcheck disable=SC2086
"$BINADAPT" --seed "$SEED" --out "$OUTADAPT" $ADAPT_ARGS

echo "wrote $OUT04, $OUT, $OUTCLUSTER, $OUTSIMCORE, $OUTSCAL and $OUTADAPT (window=$WINDOW, zero_copy=$ZERO_COPY, filter=$FILTER, seed=$SEED)"
