#!/usr/bin/env bash
# Runs the Fig. 5 protocol-throughput benchmark and emits a JSON baseline
# (BENCH_fig05.json by default). All timing is simulated, so the output is
# bit-reproducible across machines and runs.
#
# Environment overrides:
#   BUILD_DIR  build tree containing bench/ binaries   (default: build)
#   FILTER     --benchmark_filter regex                (default: all Fig05)
#   WINDOW     channel window driven per connection    (default: 1)
#   OUT        output JSON path                        (default: BENCH_fig05.json)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
FILTER="${FILTER:-.}"
WINDOW="${WINDOW:-1}"
OUT="${OUT:-BENCH_fig05.json}"

BIN="$BUILD_DIR/bench/bench_fig05_protocol_throughput"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
  exit 1
fi

"$BIN" --window "$WINDOW" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

echo "wrote $OUT (window=$WINDOW, filter=$FILTER)"
