#!/usr/bin/env bash
# Runs the Fig. 4 protocol-latency and Fig. 5 protocol-throughput benchmarks
# and emits JSON baselines (BENCH_fig04.json / BENCH_fig05.json by default).
# All timing is simulated, so the output is bit-reproducible across machines
# and runs.
#
# Environment overrides:
#   BUILD_DIR  build tree containing bench/ binaries   (default: build)
#   FILTER     --benchmark_filter regex                (default: all rows)
#   WINDOW     channel window driven per connection    (default: 1)
#   ZERO_COPY  1 = drive the zero-copy send path       (default: 0)
#   OUT04      fig04 output JSON path                  (default: BENCH_fig04.json)
#   OUT        fig05 output JSON path                  (default: BENCH_fig05.json)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
FILTER="${FILTER:-.}"
WINDOW="${WINDOW:-1}"
ZERO_COPY="${ZERO_COPY:-0}"
OUT04="${OUT04:-BENCH_fig04.json}"
OUT="${OUT:-BENCH_fig05.json}"

BIN04="$BUILD_DIR/bench/bench_fig04_protocol_latency"
BIN05="$BUILD_DIR/bench/bench_fig05_protocol_throughput"
for bin in "$BIN04" "$BIN05"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

"$BIN04" --zero-copy="$ZERO_COPY" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$OUT04" \
  --benchmark_out_format=json

"$BIN05" --window "$WINDOW" --zero-copy="$ZERO_COPY" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

echo "wrote $OUT04 and $OUT (window=$WINDOW, zero_copy=$ZERO_COPY, filter=$FILTER)"
