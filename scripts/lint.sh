#!/usr/bin/env bash
# Project lint pass: a handful of grep rules encoding invariants that the
# type system cannot, plus a clang-tidy sweep when the tool is available.
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir (default: build) is only consulted for compile_commands.json;
#   the grep rules need nothing but the checkout.
#
# Exit status: 0 when every rule passes, 1 otherwise.

set -u
cd "$(dirname "$0")/.."
build_dir="${1:-build}"
# Failures are flagged through a marker file because each rule runs on the
# receiving end of a pipeline (a subshell), where plain variables don't stick.
fail_marker="$(mktemp)"
trap 'rm -f "$fail_marker"' EXIT

red()  { printf '\033[31m%s\033[0m\n' "$*"; }
note() { printf '%s\n' "$*"; }

rule() {
  # rule <name> <explanation> -- prints matches fed on stdin, flags failure.
  local name="$1" why="$2" matches
  matches="$(cat)"
  if [ -n "$matches" ]; then
    red "lint: $name"
    note "  $why"
    printf '%s\n' "$matches" | sed 's/^/    /'
    echo 1 >>"$fail_marker"
  fi
}

# --- Rule 1: the send path goes through protocol channels. ------------------
# Only src/proto (the channel implementations) and src/verbs (the device
# model itself) may ring doorbells; upper layers that post raw WQEs bypass
# hint planning, reliability, and the observability counters.
# Exception: kv/cluster.cc's ReadViewClient — the one-sided READ path is
# channel-free BY DESIGN (Storm-style version-validated READ, DESIGN.md
# §11); it posts exactly one READ WQE and validates the snapshot itself.
grep -rn --include='*.h' --include='*.cc' -E '\bpost_send(_chain)?\(' src \
  | grep -v '^src/proto/' | grep -v '^src/verbs/' \
  | grep -v '^src/kv/cluster\.cc' \
  | rule 'raw-post-send-outside-proto' \
         'post_send belongs to src/proto and src/verbs; use a channel.'

# --- Rule 2: completion status is an enum, not a number. --------------------
# Comparing Wc::status against integer literals silently breaks when the
# WcStatus enum is reordered; spell the enumerator.
grep -rn --include='*.h' --include='*.cc' -E '\.status\s*[!=]=\s*[0-9]' \
    src tests bench examples \
  | rule 'wc-status-raw-int' \
         'compare Wc::status against WcStatus enumerators, not integers.'

# --- Rule 3: no ambient virtual time in headers. ----------------------------
# A global now() accessor in a header invites cross-simulator reads that
# break run-to-run determinism; time flows from an owned Simulator&.
grep -rn --include='*.h' -E '\bsim::now\(\)' src \
  | rule 'ambient-now-in-header' \
         'read time from the owning Simulator instance, never a global.'

# --- Rule 4: no braced SendWr temporaries that own memory. ------------------
# GCC 12 coroutine frame promotion copies a braced SendWr temporary
# memberwise without running vector/shared_ptr move constructors, so a
# `.sg_list = std::move(v)` initializer leaves two owners of one buffer and
# double-frees (see the SendWr::sg_list note in src/verbs/qp.h). Build such
# WRs as named objects and post_send(std::move(wr)).
grep -rnz --include='*.h' --include='*.cc' \
    -oE 'SendWr\{[^}]*\.(sg_list|keep_alive)' src tests bench examples \
  | tr '\0' '\n' | grep -v '^$' \
  | rule 'sendwr-brace-owning-member' \
         'braced SendWr temporaries with sg_list/keep_alive double-free under GCC 12 coroutines; use a named WR.'

# --- Rule 5: every observability counter has a producer. --------------------
# A Ctr enumerator nobody references outside counters.h is a dead counter:
# dashboards and DESIGN.md read as if the event were instrumented when
# nothing ever increments it. Add the add()/slot() site or delete the
# enumerator (and its doc claims) — see the kShardSteals note in DESIGN.md.
sed -n '/enum class Ctr/,/^};/p' src/obs/counters.h \
  | grep -oE '^  k[A-Za-z0-9]+' | tr -d ' ' | grep -v '^kCount$' \
  | while read -r ctr; do
      if ! grep -rq --include='*.h' --include='*.cc' --include='*.cpp' \
          "Ctr::$ctr\b" src tests bench examples \
          --exclude=counters.h; then
        echo "src/obs/counters.h: Ctr::$ctr has no use outside counters.h"
      fi
    done \
  | rule 'dead-counter' \
         'every Ctr enumerator needs a producer or reader outside counters.h.'

# --- clang-tidy (optional: degrades to a notice when absent). ---------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "$build_dir/compile_commands.json" ]; then
    note "lint: clang-tidy ($(clang-tidy --version | head -n1 | sed 's/^ *//'))"
    if ! find src -name '*.cc' -print0 \
        | xargs -0 clang-tidy -p "$build_dir" --quiet; then
      red "lint: clang-tidy reported errors"
      echo 1 >>"$fail_marker"
    fi
  else
    note "lint: skipping clang-tidy ($build_dir/compile_commands.json not found;"
    note "      configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
  fi
else
  note "lint: clang-tidy not installed; grep rules only."
fi

if [ -s "$fail_marker" ]; then
  exit 1
fi
note "lint: all rules pass."
exit 0
