// Cluster-scale HatKV (DESIGN.md §11): consistent-hash shard map carried
// through the hint machinery, chain replication with version-stamped
// records, Storm-style one-sided reads with torn/stale validation, and
// client-driven failover under seeded node crashes. Invariants:
//   * the shard map round-trips byte-exact through its hint encoding and
//     spreads keys across every shard;
//   * an acknowledged Put is durable on EVERY live replica of its chain;
//   * a replayed (client_id, seq) is answered from the applied-op cache
//     with the original version — never re-executed;
//   * a deposed replica refuses every op (the zombie-head fence);
//   * torn one-sided snapshots are detected and rejected;
//   * a crash → restart → resync cycle leaves the rejoined replica able to
//     serve the full keyspace after the OTHER replica dies;
//   * same-seed crash runs are byte-identical.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "kv/cluster.h"

namespace hatrpc {
namespace {

using sim::Simulator;
using sim::Task;
using verbs::FaultPlan;
using namespace std::chrono_literals;

TEST(ShardMap, EncodeDecodeRoundTrip) {
  kv::ShardMap m;
  m.epoch = 42;
  m.vnodes = 8;
  m.shards.resize(3);
  m.shards[0].chain = {{0, 1}, {1, 1}};
  m.shards[1].chain = {{1, 2}, {2, 1}};
  m.shards[2].chain = {};  // an unavailable shard survives the trip too
  m.build_ring();
  std::string enc = m.encode();
  kv::ShardMap d = kv::ShardMap::decode(enc);
  EXPECT_EQ(d.epoch, 42u);
  EXPECT_EQ(d.vnodes, 8u);
  ASSERT_EQ(d.shards.size(), 3u);
  EXPECT_EQ(d.shards[0].chain, m.shards[0].chain);
  EXPECT_EQ(d.shards[1].chain, m.shards[1].chain);
  EXPECT_TRUE(d.shards[2].chain.empty());
  EXPECT_EQ(d.encode(), enc);
  // Routing is a pure function of the encoded bytes.
  for (int i = 0; i < 64; ++i) {
    std::string key = "user" + std::to_string(i * 977);
    EXPECT_EQ(d.shard_of(key), m.shard_of(key));
  }
}

TEST(ShardMap, RejectsMalformedEncodings) {
  EXPECT_THROW(kv::ShardMap::decode("not-a-map"), hint::HintError);
  EXPECT_THROW(kv::ShardMap::decode("hsm1|1|16"), hint::HintError);
  EXPECT_THROW(kv::ShardMap::decode("hsm1|1|16|2|0:x"), hint::HintError);
  EXPECT_THROW(kv::ShardMap::decode(""), hint::HintError);
}

TEST(ShardMap, ConsistentHashSpreadsKeys) {
  kv::ShardMap m;
  m.vnodes = 16;
  m.shards.resize(8);
  m.build_ring();
  std::map<uint32_t, int> hits;
  for (int i = 0; i < 4000; ++i)
    ++hits[m.shard_of("user" + std::to_string(i))];
  EXPECT_EQ(hits.size(), 8u) << "some shard owns no keys";
  for (const auto& [s, n] : hits)
    EXPECT_GT(n, 100) << "shard " << s << " is starved";
}

/// Small-cluster fixture: `servers` fabric nodes, a client node, and one
/// ClusterClient. Test bodies run inside the simulator; the client object
/// outlives sim.run() (its channels' dispatch tasks unwind at later sim
/// events).
struct ClusterRig {
  Simulator sim;
  verbs::Fabric fabric{sim};
  std::vector<verbs::Node*> servers;
  verbs::Node* client_node = nullptr;
  std::unique_ptr<kv::Cluster> cluster;
  std::unique_ptr<kv::ClusterClient> client;

  explicit ClusterRig(uint32_t nodes, kv::ClusterConfig cfg = small_config()) {
    if (!fabric.check().on())
      fabric.check().set_mode(verbs::VerbsCheck::Mode::kRecord);
    for (uint32_t i = 0; i < nodes; ++i) servers.push_back(fabric.add_node());
    client_node = fabric.add_node();
    cluster = std::make_unique<kv::Cluster>(fabric, servers, cfg);
    client = std::make_unique<kv::ClusterClient>(*client_node, *cluster, 1);
  }

  static kv::ClusterConfig small_config() {
    kv::ClusterConfig cfg;
    cfg.shards = 4;
    cfg.replication = 2;
    return cfg;
  }

  void finish() {
    sim.run();
    EXPECT_EQ(sim.live_tasks(), 0u) << "cluster run leaked tasks";
    verbs::AuditReport audit = fabric.audit();
    EXPECT_TRUE(audit.clean()) << audit.str();
    EXPECT_EQ(audit.violations, 0u) << audit.str();
  }
};

TEST(Cluster, PutGetAcrossShardsWithReplication) {
  ClusterRig rig(3);
  sim::WaitGroup wg(rig.sim);
  wg.add(1);
  rig.sim.spawn([](ClusterRig& rig, sim::WaitGroup& wg) -> Task<void> {
    for (int i = 0; i < 40; ++i) {
      std::string key = "key" + std::to_string(i);
      uint64_t v = co_await rig.client->Put(key, "val" + std::to_string(i));
      EXPECT_GT(v, 0u);
    }
    for (int i = 0; i < 40; ++i) {
      std::string key = "key" + std::to_string(i);
      kv::ClusterClient::GetResult got = co_await rig.client->Get(key);
      EXPECT_TRUE(got.found) << key;
      EXPECT_EQ(got.value, "val" + std::to_string(i));
    }
    rig.client->close();
    rig.cluster->stop();
    wg.done();
  }(rig, wg));
  rig.finish();
  // The keyspace crossed several shards and the one-sided path served
  // at least part of the read traffic.
  std::set<uint32_t> used;
  for (int i = 0; i < 40; ++i)
    used.insert(rig.cluster->map().shard_of("key" + std::to_string(i)));
  EXPECT_GT(used.size(), 1u);
  EXPECT_GT(rig.client->stats().one_sided_reads, 0u);

  // Chain replication: every acknowledged record is on BOTH replicas of
  // its shard at the same version.
  for (int i = 0; i < 40; ++i) {
    std::string key = "key" + std::to_string(i);
    const uint32_t s = rig.cluster->map().shard_of(key);
    const auto& chain = rig.cluster->map().shards[s].chain;
    ASSERT_EQ(chain.size(), 2u);
    std::vector<uint64_t> versions;
    for (const auto& r : chain) {
      kv::ShardReplica* rep = rig.cluster->replica(s, r.node);
      ASSERT_NE(rep, nullptr);
      auto rec = rep->handler().peek(key);
      ASSERT_TRUE(rec.has_value()) << key << " missing on node " << r.node;
      versions.push_back(rec->version);
    }
    EXPECT_EQ(versions[0], versions[1]) << key;
  }
}

TEST(Cluster, DuplicatePutIsAnsweredFromAppliedOpCache) {
  ClusterRig rig(2);
  rig.sim.spawn([](ClusterRig& rig) -> Task<void> {
    const uint32_t s = rig.cluster->map().shard_of("dup-key");
    const uint32_t head = rig.cluster->map().shards[s].chain.front().node;
    kv::ShardHandler& h = rig.cluster->replica(s, head)->handler();
    // The same (client_id, seq) twice — the cross-channel analogue of a
    // failover replay. Second call must return the first version without
    // re-executing.
    int64_t v1 = co_await h.Put("dup-key", "v", 7, 3);
    uint64_t applied_after_first = h.applied_ops();
    int64_t v2 = co_await h.Put("dup-key", "v", 7, 3);
    EXPECT_EQ(v1, v2);
    EXPECT_EQ(h.applied_ops(), applied_after_first);
    EXPECT_EQ(h.replays(), 1u);
    // A different seq from the same client is a new op.
    int64_t v3 = co_await h.Put("dup-key", "v2", 7, 4);
    EXPECT_GT(v3, v1);
    rig.client->close();
    rig.cluster->stop();
  }(rig));
  rig.finish();
}

TEST(Cluster, DeposedReplicaRefusesEveryOp) {
  // The zombie-head fence: once the directory removes a replica from its
  // chain, that replica must fail ops instead of solo-acking writes into
  // state nobody will ever read (a client with a stale map can reconnect
  // to a restarted node and still reach the old handler).
  ClusterRig rig(2);
  rig.sim.spawn([](ClusterRig& rig) -> Task<void> {
    kv::ShardHandler& h = rig.cluster->replica(0, 0)->handler();
    co_await h.Put("k", "v", 1, 1);
    h.depose();
    EXPECT_TRUE(h.deposed());
    bool put_threw = false, get_threw = false, rep_threw = false;
    try {
      co_await h.Put("k2", "v2", 1, 2);
    } catch (const proto::RpcError&) {
      put_threw = true;
    }
    try {
      co_await h.Get("k");
    } catch (const proto::RpcError&) {
      get_threw = true;
    }
    try {
      co_await h.Replicate("k3", "v3", 99, 1, 3);
    } catch (const proto::RpcError&) {
      rep_threw = true;
    }
    EXPECT_TRUE(put_threw);
    EXPECT_TRUE(get_threw);
    EXPECT_TRUE(rep_threw);
    rig.client->close();
    rig.cluster->stop();
  }(rig));
  rig.finish();
}

TEST(Cluster, TornSlotFallsBackNeverServesMixedRecord) {
  // Write a deliberately torn slot (head != tail) straight into the view
  // region: the one-sided reader must reject it, and rejection must not
  // leak the half-written value.
  ClusterRig rig(2);
  rig.sim.spawn([](ClusterRig& rig) -> Task<void> {
    kv::ShardHandler& h = rig.cluster->replica(0, 0)->handler();
    co_await h.view().publish("torn-key", "good-value", 5);
    kv::ReadViewClient rv(*rig.client_node, *rig.servers[0],
                          h.view().base_remote());
    // Intact slot first: the READ path serves it.
    auto ok = co_await rv.read("torn-key");
    EXPECT_TRUE(ok.has_value());
    if (ok) {
      EXPECT_EQ(ok->value, "good-value");
      EXPECT_EQ(ok->version, 5u);
    }
    // Now tear it: bump the head version word only, as a writer that has
    // not reached the tail store yet would.
    std::byte* slot =
        h.view().mr()->data() +
        size_t(kv::ReadView::bucket_of("torn-key")) * kv::ReadView::kSlotBytes;
    uint64_t head = 6;
    std::memcpy(slot, &head, 8);
    auto torn = co_await rv.read("torn-key");
    EXPECT_FALSE(torn.has_value()) << "torn slot served one-sided";
    // Foreign resident: a key hashing elsewhere must miss, not mismatch.
    auto foreign = co_await rv.read("some-other-key");
    EXPECT_FALSE(foreign.has_value());
    rig.client->close();
    rig.cluster->stop();
  }(rig));
  rig.finish();
}

TEST(Cluster, StaleOneSidedReadFallsBackToRpc) {
  // A client whose acked floor is ahead of the tail's published version
  // (e.g. its read raced replication) must not accept the stale snapshot.
  ClusterRig rig(2);
  rig.sim.spawn([](ClusterRig& rig) -> Task<void> {
    uint64_t v1 = co_await rig.client->Put("stale-key", "v1");
    EXPECT_GT(v1, 0u);
    // Regress the TAIL's published view to an older version while the
    // authoritative record stays at v1 (replication lag in miniature).
    const uint32_t s = rig.cluster->map().shard_of("stale-key");
    const uint32_t tail = rig.cluster->map().shards[s].chain.back().node;
    kv::ShardHandler& h = rig.cluster->replica(s, tail)->handler();
    co_await h.view().publish("stale-key", "old-value", v1 - 1);
    kv::ClusterClient::GetResult got = co_await rig.client->Get("stale-key");
    EXPECT_TRUE(got.found);
    EXPECT_EQ(got.value, "v1") << "stale one-sided value served";
    EXPECT_GE(got.version, v1);
    EXPECT_FALSE(got.one_sided);
    rig.client->close();
    rig.cluster->stop();
  }(rig));
  rig.finish();
  EXPECT_GT(rig.client->stats().one_sided_fallbacks, 0u);
}

TEST(Cluster, FailoverPreservesEveryAckedWrite) {
  // Crash the head of shard 0 mid-workload: clients must fail over to the
  // surviving replica, replay under the same identity, and every write
  // acked before OR after the crash must remain readable at (at least)
  // its acked version.
  ClusterRig rig(3);
  std::map<std::string, uint64_t> acked;
  rig.sim.spawn(
      [](ClusterRig& rig, std::map<std::string, uint64_t>& acked) -> Task<void> {
        auto plan = std::make_unique<FaultPlan>(17);
        plan->crash_node_at(rig.servers[0]->id(), sim::Time(800us));
        rig.fabric.set_fault_plan(std::move(plan));
        for (int i = 0; i < 120; ++i) {
          std::string key = "fk" + std::to_string(i);
          uint64_t v = co_await rig.client->Put(key, "fv" + std::to_string(i));
          uint64_t& floor = acked[key];
          floor = std::max(floor, v);
          co_await rig.sim.sleep(15us);  // stretch the run across the crash
        }
        for (const auto& [key, version] : acked) {
          kv::ClusterClient::GetResult got = co_await rig.client->Get(key);
          EXPECT_TRUE(got.found) << key;
          EXPECT_GE(got.version, version) << key;
        }
        rig.client->close();
        rig.cluster->stop();
      }(rig, acked));
  rig.finish();
  EXPECT_EQ(acked.size(), 120u);
  EXPECT_GT(rig.client->stats().failovers, 0u);
  EXPECT_GT(rig.client->stats().map_refreshes, 0u);
  // The crashed node is out of every chain.
  for (const auto& shard : rig.cluster->map().shards) {
    for (const auto& r : shard.chain) EXPECT_NE(r.node, 0u);
  }
}

TEST(Cluster, CrashRestartResyncThenSurviveSecondCrash) {
  // The full recovery story: node 0 dies, restarts, rejoins every one of
  // its shards as tail, and drains a resync stream. Then the OTHER
  // replica of shard 0's chain dies — the rejoined node must serve the
  // whole keyspace alone, proving the resync really carried the data.
  ClusterRig rig(2);
  std::map<std::string, uint64_t> acked;
  rig.sim.spawn(
      [](ClusterRig& rig, std::map<std::string, uint64_t>& acked) -> Task<void> {
        auto plan = std::make_unique<FaultPlan>(23);
        plan->crash_node_at(rig.servers[0]->id(), sim::Time(500us));
        plan->restart_node_at(rig.servers[0]->id(), sim::Time(1500us));
        rig.fabric.set_fault_plan(std::move(plan));
        for (int i = 0; i < 60; ++i) {
          std::string key = "rk" + std::to_string(i);
          uint64_t v = co_await rig.client->Put(key, "rv" + std::to_string(i));
          uint64_t& floor = acked[key];
          floor = std::max(floor, v);
          co_await rig.sim.sleep(15us);
        }
        co_await rig.sim.sleep_until(sim::Time(1600us));
        co_await rig.cluster->recover(0);
        EXPECT_GT(rig.cluster->resynced_records(), 0u);
        EXPECT_EQ(rig.cluster->incarnation(0), 2u);
        // Now kill node 1. Every shard's only survivor is the rejoined
        // node 0 (incarnation 2).
        rig.servers[1]->crash();
        co_await rig.cluster->report_down(1, 1);
        for (const auto& [key, version] : acked) {
          kv::ClusterClient::GetResult got = co_await rig.client->Get(key);
          EXPECT_TRUE(got.found) << key;
          EXPECT_GE(got.version, version) << key;
        }
        rig.client->close();
        rig.cluster->stop();
      }(rig, acked));
  rig.finish();
  for (const auto& shard : rig.cluster->map().shards) {
    ASSERT_EQ(shard.chain.size(), 1u);
    EXPECT_EQ(shard.chain[0].node, 0u);
    EXPECT_EQ(shard.chain[0].incarnation, 2u);
  }
}

TEST(Cluster, ShardMapRidesTheHintChannel) {
  // Clients learn routing the same way they learn protocol hints: a
  // service-level kShardMap entry whose raw value decodes to the map.
  ClusterRig rig(2);
  hint::ServiceHints h = rig.cluster->hints();
  const hint::Value* v =
      h.lookup("Put", hint::Key::kShardMap, hint::Perspective::kClient);
  ASSERT_NE(v, nullptr);
  kv::ShardMap decoded = kv::ShardMap::decode(v->raw);
  EXPECT_EQ(decoded.encode(), rig.cluster->map().encode());
  // And the generated per-function protocol hints still resolve beside it.
  EXPECT_NE(h.lookup("Get", hint::Key::kPerfGoal, hint::Perspective::kClient),
            nullptr);
  rig.client->close();
  rig.cluster->stop();
  rig.finish();
}

TEST(Cluster, SameSeedCrashRunsAreDeterministic) {
  auto run = [](uint64_t seed) {
    ClusterRig rig(2);
    rig.sim.spawn([](ClusterRig& rig) -> Task<void> {
      auto plan = std::make_unique<FaultPlan>(31);
      plan->crash_node_at(rig.servers[0]->id(), sim::Time(400us));
      plan->restart_node_at(rig.servers[0]->id(), sim::Time(900us));
      rig.fabric.set_fault_plan(std::move(plan));
      for (int i = 0; i < 40; ++i) {
        std::string key = "dk" + std::to_string(i);
        co_await rig.client->Put(key, "dv" + std::to_string(i));
        co_await rig.client->Get(key);
        co_await rig.sim.sleep(20us);
      }
      co_await rig.cluster->recover(0);
      rig.client->close();
      rig.cluster->stop();
    }(rig));
    rig.finish();
    return std::tuple(rig.fabric.fault_plan()->trace(),
                      rig.sim.events_processed(),
                      rig.client->stats().failovers,
                      rig.cluster->map().encode());
  };
  auto a = run(9);
  auto b = run(9);
  EXPECT_EQ(a, b);
  EXPECT_GT(std::get<2>(a), 0u) << "crash schedule never triggered failover";
}

}  // namespace
}  // namespace hatrpc
